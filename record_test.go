package barrierpoint_test

import (
	"math"
	"path/filepath"
	"reflect"
	"testing"

	bp "barrierpoint"
	"barrierpoint/internal/workload"
)

// TestRecordedTraceEquivalence is the acceptance test for record/replay: a
// workload recorded to disk and re-opened must yield identical barrierpoint
// selections, identical ground-truth simulation results, and matching
// whole-program estimates compared to the in-memory run.
func TestRecordedTraceEquivalence(t *testing.T) {
	benches := []struct {
		name  string
		scale float64
		gzip  bool
	}{
		{"npb-ft", 0.1, true},
		{"npb-is", 0.1, false},
	}
	for _, bc := range benches {
		t.Run(bc.name, func(t *testing.T) {
			t.Parallel()
			prog := workload.New(bc.name, 8, workload.WithScale(bc.scale))
			path := filepath.Join(t.TempDir(), "trace.bptrace")
			if err := bp.SaveTrace(path, prog, bp.WithTraceGzip(bc.gzip)); err != nil {
				t.Fatal(err)
			}
			replay, err := bp.OpenTrace(path)
			if err != nil {
				t.Fatal(err)
			}
			defer replay.Close()

			mc := bp.TableIMachine(1)

			// Ground truth is fully deterministic: regions simulate in
			// order on one machine, so replayed results must be
			// bit-identical to the in-memory ones.
			fullMem, err := bp.SimulateFull(prog, mc)
			if err != nil {
				t.Fatal(err)
			}
			fullReplay, err := bp.SimulateFull(replay, mc)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fullMem, fullReplay) {
				t.Fatal("SimulateFull results differ between in-memory and replayed program")
			}

			// Selection: identical profiles feed the same seeded
			// clustering, so the chosen barrierpoints must match.
			aMem, err := bp.Analyze(prog, bp.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			aReplay, err := bp.Analyze(replay, bp.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if aMem.TotalInstrs() != aReplay.TotalInstrs() {
				t.Fatalf("total instrs differ: %d vs %d", aMem.TotalInstrs(), aReplay.TotalInstrs())
			}
			if !reflect.DeepEqual(aMem.Selection.Assignment, aReplay.Selection.Assignment) {
				t.Fatal("cluster assignments differ between in-memory and replayed analysis")
			}
			memPts, repPts := aMem.BarrierPoints(), aReplay.BarrierPoints()
			if len(memPts) != len(repPts) {
				t.Fatalf("selected %d barrierpoints from memory, %d from replay", len(memPts), len(repPts))
			}
			for i := range memPts {
				if memPts[i].Region != repPts[i].Region {
					t.Fatalf("barrierpoint %d: region %d from memory, %d from replay", i, memPts[i].Region, repPts[i].Region)
				}
				if math.Abs(memPts[i].Multiplier-repPts[i].Multiplier) > 1e-9*memPts[i].Multiplier {
					t.Fatalf("barrierpoint %d: multiplier %v vs %v", i, memPts[i].Multiplier, repPts[i].Multiplier)
				}
			}

			// Whole-program estimate. Point simulations are deterministic
			// per region; the reconstruction sums results in map iteration
			// order, so allow ulp-level float slack.
			estMem, err := aMem.Estimate(mc, bp.MRUWarmup)
			if err != nil {
				t.Fatal(err)
			}
			estReplay, err := aReplay.Estimate(mc, bp.MRUWarmup)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(estMem.TimeNs-estReplay.TimeNs) > 1e-9*estMem.TimeNs {
				t.Fatalf("estimated runtime differs: %v ns vs %v ns", estMem.TimeNs, estReplay.TimeNs)
			}
			if math.Abs(estMem.IPC()-estReplay.IPC()) > 1e-9*estMem.IPC() {
				t.Fatalf("estimated IPC differs: %v vs %v", estMem.IPC(), estReplay.IPC())
			}
		})
	}
}
