package barrierpoint_test

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	bp "barrierpoint"
	"barrierpoint/internal/workload"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	prog := workload.New("npb-ft", 8, workload.WithScale(0.2))
	a, err := bp.Analyze(prog, bp.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s, err := bp.LoadSelection(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s.Program != "npb-ft" || s.Threads != 8 || s.K != a.Selection.K {
		t.Errorf("metadata wrong: %+v", s)
	}
	bound, err := s.Bind(prog)
	if err != nil {
		t.Fatal(err)
	}
	// Bound analysis estimates identically to the original.
	mc := bp.TableIMachine(1)
	e1, err := a.Estimate(mc, bp.MRUWarmup)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := bound.Estimate(mc, bp.MRUWarmup)
	if err != nil {
		t.Fatal(err)
	}
	if e1.TimeNs != e2.TimeNs {
		t.Errorf("bound estimate differs: %v vs %v", e1.TimeNs, e2.TimeNs)
	}
	if a.SerialSpeedup() != bound.SerialSpeedup() {
		t.Errorf("bound speedup differs: %v vs %v", a.SerialSpeedup(), bound.SerialSpeedup())
	}
	// The adaptive sampler's geometry survives the round trip: per-region
	// representative distances and per-cluster spreads.
	if len(s.RepDists) != prog.Regions() {
		t.Errorf("saved selection has %d rep distances for %d regions", len(s.RepDists), prog.Regions())
	}
	for i, d := range a.Selection.RepDists {
		if bound.Selection.RepDists[i] != d {
			t.Errorf("region %d: bound rep distance %v != original %v", i, bound.Selection.RepDists[i], d)
		}
	}
	for i, p := range a.Selection.Points {
		if bound.Selection.Points[i].Spread != p.Spread {
			t.Errorf("point %d: bound spread %v != original %v", i, bound.Selection.Points[i].Spread, p.Spread)
		}
	}
}

func TestBindValidation(t *testing.T) {
	prog := workload.New("npb-ft", 8, workload.WithScale(0.2))
	a, _ := bp.Analyze(prog, bp.DefaultConfig())
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s, _ := bp.LoadSelection(&buf)
	if _, err := s.Bind(workload.New("npb-is", 8, workload.WithScale(0.2))); err == nil {
		t.Error("binding to a different program accepted")
	}
}

// TestTraceKey checks the public content-address helpers: file and reader
// keys agree, are stable for identical content, and differ across content.
func TestTraceKey(t *testing.T) {
	prog := workload.New("npb-is", 8, workload.WithScale(0.05))
	path := filepath.Join(t.TempDir(), "is.bptrace")
	if err := bp.SaveTrace(path, prog); err != nil {
		t.Fatal(err)
	}
	fileKey, err := bp.TraceKey(path)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := bp.RecordTrace(&buf, prog); err != nil {
		t.Fatal(err)
	}
	readerKey, err := bp.TraceKeyReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if fileKey != readerKey {
		t.Errorf("TraceKey %s != TraceKeyReader %s for identical recordings", fileKey, readerKey)
	}
	if len(fileKey) != 64 {
		t.Errorf("key %q is not a hex SHA-256", fileKey)
	}

	var gz bytes.Buffer
	if err := bp.RecordTrace(&gz, prog, bp.WithTraceGzip(true)); err != nil {
		t.Fatal(err)
	}
	gzKey, err := bp.TraceKeyReader(bytes.NewReader(gz.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gzKey == fileKey {
		t.Error("different trace bytes produced the same key")
	}
}

func TestLoadSelectionErrors(t *testing.T) {
	if _, err := bp.LoadSelection(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON accepted")
	}
	bad := `{"program":"x","threads":8,"regions":2,"assignment":[0],"points":[],"region_instrs":[1,2]}`
	if _, err := bp.LoadSelection(strings.NewReader(bad)); err == nil {
		t.Error("inconsistent selection accepted")
	}
	badPoint := `{"program":"x","threads":8,"regions":1,"assignment":[0],"points":[{"Region":5}],"region_instrs":[1]}`
	if _, err := bp.LoadSelection(strings.NewReader(badPoint)); err == nil {
		t.Error("out-of-range barrierpoint accepted")
	}
}
