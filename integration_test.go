package barrierpoint_test

import (
	"math"
	"testing"

	bp "barrierpoint"
	"barrierpoint/internal/stats"
	"barrierpoint/internal/workload"
)

// TestPipelineAccuracyFT validates the paper's headline claim end to end on
// the fastest benchmark at full scale: barrierpoint selection with perfect
// warmup predicts total runtime within a few percent, and the §IV warmup
// technique stays close to that.
func TestPipelineAccuracyFT(t *testing.T) {
	prog := workload.New("npb-ft", 8)
	mc := bp.TableIMachine(1)
	full, err := bp.SimulateFull(prog, mc)
	if err != nil {
		t.Fatal(err)
	}
	a, err := bp.Analyze(prog, bp.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	act := bp.ActualFrom(full)

	perfect, err := a.EstimateFrom(a.PerfectWarmup(full))
	if err != nil {
		t.Fatal(err)
	}
	if e := stats.AbsPctErr(perfect.TimeNs, act.TimeNs); e > 3 {
		t.Errorf("perfect-warmup runtime error %.2f%% exceeds 3%%", e)
	}
	if d := math.Abs(perfect.DRAMAPKI() - act.DRAMAPKI()); d > 0.7 {
		t.Errorf("APKI difference %.3f exceeds 0.7", d)
	}

	warm, err := a.Estimate(mc, bp.MRUPrevWarmup)
	if err != nil {
		t.Fatal(err)
	}
	if e := stats.AbsPctErr(warm.TimeNs, act.TimeNs); e > 4 {
		t.Errorf("warmed runtime error %.2f%% exceeds 4%%", e)
	}

	// The paper's ft finds exactly 9 barrierpoints; our schedule has 9
	// distinct behaviours by construction.
	if got := len(a.BarrierPoints()); got != 9 {
		t.Errorf("ft selected %d barrierpoints, want 9", got)
	}
}

// TestPipelineAccuracySuite spot-checks selection accuracy across the whole
// suite at reduced scale (scaled workloads have shorter regions, so the
// bound is looser than the full-scale paper-shape bound).
func TestPipelineAccuracySuite(t *testing.T) {
	if testing.Short() {
		t.Skip("suite accuracy check skipped in -short mode")
	}
	mc := bp.TableIMachine(1)
	for _, name := range []string{"npb-lu", "npb-is", "npb-mg"} {
		prog := workload.New(name, 8)
		full, err := bp.SimulateFull(prog, mc)
		if err != nil {
			t.Fatal(err)
		}
		a, err := bp.Analyze(prog, bp.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		est, err := a.EstimateFrom(a.PerfectWarmup(full))
		if err != nil {
			t.Fatal(err)
		}
		act := bp.ActualFrom(full)
		if e := stats.AbsPctErr(est.TimeNs, act.TimeNs); e > 4 {
			t.Errorf("%s: perfect-warmup error %.2f%% exceeds 4%%", name, e)
		}
	}
}

// TestEveryRegionItsOwnPoint: with maxK >= regions and distinct signatures
// (npb-is), reconstruction is exact.
func TestEveryRegionItsOwnPoint(t *testing.T) {
	prog := workload.New("npb-is", 8, workload.WithScale(0.25))
	mc := bp.TableIMachine(1)
	full, err := bp.SimulateFull(prog, mc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := bp.DefaultConfig()
	cfg.Cluster.MaxK = prog.Regions()
	a, err := bp.Analyze(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.BarrierPoints()) != prog.Regions() {
		t.Skipf("clustering merged some of is's regions (K=%d)", len(a.BarrierPoints()))
	}
	est, err := a.EstimateFrom(a.PerfectWarmup(full))
	if err != nil {
		t.Fatal(err)
	}
	act := bp.ActualFrom(full)
	if e := stats.AbsPctErr(est.TimeNs, act.TimeNs); e > 1e-9 {
		t.Errorf("exact reconstruction has error %v%%", e)
	}
}

// TestSpeedupAccounting checks Fig. 9's definitions.
func TestSpeedupAccounting(t *testing.T) {
	prog := workload.New("npb-sp", 8, workload.WithScale(0.25))
	a, err := bp.Analyze(prog, bp.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	serial, parallel := a.SerialSpeedup(), a.ParallelSpeedup()
	if serial < 1 {
		t.Errorf("serial speedup %.2f < 1", serial)
	}
	if parallel < serial {
		t.Errorf("parallel speedup %.2f < serial %.2f", parallel, serial)
	}
	if rr := a.ResourceReduction(); rr < 10 {
		t.Errorf("sp resource reduction %.1f unexpectedly small", rr)
	}
	// sp has 3601 regions and ~10 clusters: serial speedup must be large.
	if serial < 50 {
		t.Errorf("sp serial speedup %.1f, expected >> 50", serial)
	}
}

// TestCrossArchitectureTransfer: barrierpoints selected at 8 cores predict
// the 32-core machine (Fig. 6).
func TestCrossArchitectureTransfer(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-arch check skipped in -short mode")
	}
	prog32 := workload.New("npb-ft", 32)
	mc32 := bp.TableIMachine(4)
	full32, err := bp.SimulateFull(prog32, mc32)
	if err != nil {
		t.Fatal(err)
	}
	// Selection from the 8-thread profiles.
	prog8 := workload.New("npb-ft", 8)
	a8, err := bp.Analyze(prog8, bp.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Apply to the 32-core run via the public rebinding path used by the
	// experiments (region indices carry over; multipliers recomputed).
	a32, err := bp.Analyze(prog32, bp.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Both selections must cover the same phase structure.
	if got, want := len(a32.BarrierPoints()), len(a8.BarrierPoints()); got != want {
		t.Logf("note: 8-core selected %d, 32-core %d barrierpoints", want, got)
	}
	est, err := a32.EstimateFrom(a32.PerfectWarmup(full32))
	if err != nil {
		t.Fatal(err)
	}
	act := bp.ActualFrom(full32)
	if e := stats.AbsPctErr(est.TimeNs, act.TimeNs); e > 4 {
		t.Errorf("32-core error %.2f%%", e)
	}
}

// TestWarmupModesOrdering: cold is much worse than MRU; MRU+prev at least
// as good as MRU on branch-predictor-sensitive workloads.
func TestWarmupModesOrdering(t *testing.T) {
	prog := workload.New("npb-ft", 8)
	mc := bp.TableIMachine(1)
	full, err := bp.SimulateFull(prog, mc)
	if err != nil {
		t.Fatal(err)
	}
	a, err := bp.Analyze(prog, bp.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	act := bp.ActualFrom(full)
	errOf := func(mode bp.WarmupMode) float64 {
		est, err := a.Estimate(mc, mode)
		if err != nil {
			t.Fatal(err)
		}
		return stats.AbsPctErr(est.TimeNs, act.TimeNs)
	}
	cold, mru := errOf(bp.ColdWarmup), errOf(bp.MRUWarmup)
	if cold < 5*mru {
		t.Errorf("cold (%.2f%%) should be much worse than MRU (%.2f%%)", cold, mru)
	}
}

// TestDeterministicPipeline: the entire flow is bit-reproducible.
func TestDeterministicPipeline(t *testing.T) {
	run := func() ([]bp.BarrierPoint, float64) {
		prog := workload.New("npb-lu", 8, workload.WithScale(0.2))
		a, err := bp.Analyze(prog, bp.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		est, err := a.Estimate(bp.TableIMachine(1), bp.MRUWarmup)
		if err != nil {
			t.Fatal(err)
		}
		return a.BarrierPoints(), est.TimeNs
	}
	p1, t1 := run()
	p2, t2 := run()
	if t1 != t2 {
		t.Errorf("estimates differ: %v vs %v", t1, t2)
	}
	if len(p1) != len(p2) {
		t.Fatalf("selections differ in size")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Errorf("barrierpoint %d differs: %+v vs %+v", i, p1[i], p2[i])
		}
	}
}

// TestMismatchedMachine: thread/core mismatch is rejected, not silently
// misrun.
func TestMismatchedMachine(t *testing.T) {
	prog := workload.New("npb-ft", 8, workload.WithScale(0.1))
	if _, err := bp.SimulateFull(prog, bp.TableIMachine(4)); err == nil {
		t.Error("8-thread program on 32-core machine accepted")
	}
	a, err := bp.Analyze(prog, bp.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.SimulatePoints(bp.TableIMachine(4), bp.ColdWarmup); err == nil {
		t.Error("mismatched SimulatePoints accepted")
	}
}

// TestUnscaledAblation: dropping multiplier scaling hurts, as in §VI-A.
func TestUnscaledAblation(t *testing.T) {
	prog := workload.New("npb-sp", 8, workload.WithScale(0.5))
	mc := bp.TableIMachine(1)
	full, err := bp.SimulateFull(prog, mc)
	if err != nil {
		t.Fatal(err)
	}
	a, err := bp.Analyze(prog, bp.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	perfect := a.PerfectWarmup(full)
	act := bp.ActualFrom(full)
	scaled, err := a.EstimateFrom(perfect)
	if err != nil {
		t.Fatal(err)
	}
	unscaled, err := bp.EstimateUnscaled(a.Selection, perfect)
	if err != nil {
		t.Fatal(err)
	}
	es := stats.AbsPctErr(scaled.TimeNs, act.TimeNs)
	eu := stats.AbsPctErr(unscaled.TimeNs, act.TimeNs)
	if eu < es {
		t.Errorf("unscaled (%.2f%%) beat scaled (%.2f%%)", eu, es)
	}
}
