// Service example: the analysis service driven in-process — a recorded
// trace enters a content-addressed store, async jobs analyze it and
// estimate runtimes for both warmup modes, and a repeat analyze
// demonstrates the cache hit (no re-profiling).
//
//	go run ./examples/service
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	bp "barrierpoint"
	"barrierpoint/internal/service"
	"barrierpoint/internal/store"
	"barrierpoint/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "bpstore-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Record a workload and file it in the store under its content key.
	prog := workload.New("npb-ft", 8, workload.WithScale(0.2))
	tracePath := filepath.Join(dir, "ft.bptrace")
	if err := bp.SaveTrace(tracePath, prog); err != nil {
		log.Fatal(err)
	}
	st, err := store.Open(filepath.Join(dir, "store"))
	if err != nil {
		log.Fatal(err)
	}
	key, _, err := st.ImportTrace(tracePath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored %s as %s…\n", prog.Name(), key[:12])

	// 2. Submit async jobs; identical in-flight requests would coalesce.
	mgr := service.New(st, 0, 0)
	defer mgr.Shutdown(context.Background())
	ctx := context.Background()

	run := func(req service.Request) service.Snapshot {
		snap, err := mgr.Submit(req)
		if err != nil {
			log.Fatal(err)
		}
		snap, err = mgr.Wait(ctx, snap.ID)
		if err != nil {
			log.Fatal(err)
		}
		if snap.Status != service.StatusDone {
			log.Fatalf("job %s failed: %s", snap.ID, snap.Error)
		}
		return snap
	}

	snap := run(service.Request{Kind: service.KindAnalyze, Trace: key})
	fmt.Printf("%s: analyzed (cached=%v, %d result bytes)\n", snap.ID, snap.Cached, len(snap.Result))

	for _, warmup := range []string{"cold", "mru"} {
		snap := run(service.Request{Kind: service.KindEstimate, Trace: key, Warmup: warmup})
		fmt.Printf("%s: estimate %s warmup (cached=%v)\n", snap.ID, warmup, snap.Cached)
	}

	// 3. Repeat analyze: a pure cache hit, profiling never reruns.
	snap = run(service.Request{Kind: service.KindAnalyze, Trace: key})
	fmt.Printf("%s: analyzed again (cached=%v)\n", snap.ID, snap.Cached)

	s := mgr.Stats()
	fmt.Printf("stats: %d jobs done, %d cache hits, %d cold analyses\n",
		s.Done, s.CacheHits, s.ColdAnalyses)
}
