// Quickstart: the complete BarrierPoint flow on one workload in ~30 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	bp "barrierpoint"
	"barrierpoint/internal/workload"
)

func main() {
	// 1. A barrier-synchronized multi-threaded program (npb-ft stand-in,
	//    8 threads).
	prog := workload.New("npb-ft", 8)
	machine := bp.TableIMachine(1) // the paper's 8-core Table I machine

	// 2. One-time analysis: profile every inter-barrier region and select
	//    representative barrierpoints with multipliers.
	analysis, err := bp.Analyze(prog, bp.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d regions -> %d barrierpoints\n", prog.Regions(), len(analysis.BarrierPoints()))
	for _, p := range analysis.BarrierPoints() {
		fmt.Printf("  region %2d  multiplier %6.2f  weight %.3f\n", p.Region, p.Multiplier, p.Weight)
	}

	// 3. Simulate only the barrierpoints (in parallel, MRU-warmed) and
	//    reconstruct whole-program execution time.
	est, err := analysis.Estimate(machine, bp.MRUPrevWarmup)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nestimated runtime %.3f ms (IPC %.2f, DRAM APKI %.2f)\n",
		est.TimeNs/1e6, est.IPC(), est.DRAMAPKI())
	fmt.Printf("simulation reduction: %.1fx serial, %.1fx parallel\n",
		analysis.SerialSpeedup(), analysis.ParallelSpeedup())

	// 4. Validate against the full detailed simulation (the expensive path
	//    BarrierPoint replaces).
	full, err := bp.SimulateFull(prog, machine)
	if err != nil {
		log.Fatal(err)
	}
	act := bp.ActualFrom(full)
	fmt.Printf("actual    runtime %.3f ms -> error %.2f%%\n",
		act.TimeNs/1e6, 100*(est.TimeNs-act.TimeNs)/act.TimeNs)
}
