// Crossarch: barrierpoints are microarchitecture-independent units of work
// (paper §VI-A3, Figures 6 and 8). This example selects barrierpoints from
// 8-core profiles, reuses them unchanged on the 32-core machine, and
// predicts the 8→32-core scaling — including npb-cg's superlinear speedup
// from the quadrupled aggregate LLC.
//
//	go run ./examples/crossarch
package main

import (
	"fmt"
	"log"

	bp "barrierpoint"
	"barrierpoint/internal/cluster"
	"barrierpoint/internal/profile"
	"barrierpoint/internal/workload"
)

func main() {
	const bench = "npb-cg"
	const scale = 1.0

	// Analyze once, on the 8-thread run.
	prog8 := workload.New(bench, 8, workload.WithScale(scale))
	a8, err := bp.Analyze(prog8, bp.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d barrierpoints selected from 8-core signatures\n",
		bench, len(a8.BarrierPoints()))

	// Transfer the selection to the 32-thread run: same regions, same
	// clusters; only the multipliers are re-derived from the 32-thread
	// instruction counts (the unit of work is unchanged).
	prog32 := workload.New(bench, 32, workload.WithScale(scale))
	prof32 := profile.Program(prog32)
	weights := profile.Weights(prof32)
	a32 := &bp.Analysis{
		Program:   prog32,
		Config:    bp.DefaultConfig(),
		Profiles:  prof32,
		Selection: cluster.Rebind(a8.Selection, weights),
	}

	est8, err := a8.Estimate(bp.TableIMachine(1), bp.MRUPrevWarmup)
	if err != nil {
		log.Fatal(err)
	}
	est32, err := a32.Estimate(bp.TableIMachine(4), bp.MRUPrevWarmup)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted runtime: 8-core %.3f ms, 32-core %.3f ms -> speedup %.1fx\n",
		est8.TimeNs/1e6, est32.TimeNs/1e6, est8.TimeNs/est32.TimeNs)

	// Validate against full simulations of both machines.
	full8, err := bp.SimulateFull(prog8, bp.TableIMachine(1))
	if err != nil {
		log.Fatal(err)
	}
	full32, err := bp.SimulateFull(prog32, bp.TableIMachine(4))
	if err != nil {
		log.Fatal(err)
	}
	act8, act32 := bp.ActualFrom(full8), bp.ActualFrom(full32)
	fmt.Printf("actual    runtime: 8-core %.3f ms, 32-core %.3f ms -> speedup %.1fx\n",
		act8.TimeNs/1e6, act32.TimeNs/1e6, act8.TimeNs/act32.TimeNs)
	fmt.Println("\n(cg's >4x scaling is the LLC capacity effect: the 24 MB matrix")
	fmt.Println(" misses the 8 MB single-socket LLC but fits the 32 MB aggregate.)")
}
