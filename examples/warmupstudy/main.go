// Warmupstudy: compares microarchitectural state warmup strategies for
// barrierpoint simulation (paper §IV / Figure 7): cold start, the paper's
// MRU cache-line replay, MRU plus previous-regions functional warmup, and
// the perfect-warmup upper bound.
//
//	go run ./examples/warmupstudy
package main

import (
	"fmt"
	"log"
	"math"

	bp "barrierpoint"
	"barrierpoint/internal/workload"
)

func main() {
	const scale = 1.0
	benches := []string{"npb-ft", "npb-lu", "npb-is"}
	machine := bp.TableIMachine(1)

	fmt.Printf("%-10s %10s %10s %10s %10s\n", "benchmark", "perfect", "cold", "mru", "mru+prev")
	for _, bench := range benches {
		prog := workload.New(bench, 8, workload.WithScale(scale))
		full, err := bp.SimulateFull(prog, machine)
		if err != nil {
			log.Fatal(err)
		}
		analysis, err := bp.Analyze(prog, bp.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		act := bp.ActualFrom(full)

		errPct := func(est bp.Estimate) float64 {
			return math.Abs(est.TimeNs-act.TimeNs) / act.TimeNs * 100
		}

		perfect, err := analysis.EstimateFrom(analysis.PerfectWarmup(full))
		if err != nil {
			log.Fatal(err)
		}
		row := fmt.Sprintf("%-10s %9.2f%%", bench, errPct(perfect))
		for _, mode := range []bp.WarmupMode{bp.ColdWarmup, bp.MRUWarmup, bp.MRUPrevWarmup} {
			est, err := analysis.Estimate(machine, mode)
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf(" %9.2f%%", errPct(est))
		}
		fmt.Println(row)
	}
	fmt.Println("\ncold start overestimates runtime (every barrierpoint pays full")
	fmt.Println("cache miss costs); MRU replay restores cache and directory state;")
	fmt.Println("the +prev variant also re-trains branch predictors and L1-I.")
}
