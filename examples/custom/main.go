// Custom: sampling your own barrier-synchronized application. This example
// implements the barrierpoint.Program interface directly — no dependency on
// the bundled benchmark suite — for a toy iterative stencil that alternates
// compute-heavy and memory-heavy phases, then runs the full BarrierPoint
// flow over it.
//
//	go run ./examples/custom
package main

import (
	"fmt"
	"log"

	bp "barrierpoint"
)

// stencilProgram: T time steps, each with a "compute" and a "sweep" region
// (2T+1 regions including initialization). Threads partition a shared grid.
type stencilProgram struct {
	threads int
	steps   int
}

func (p *stencilProgram) Name() string { return "custom-stencil" }
func (p *stencilProgram) Threads() int { return p.threads }
func (p *stencilProgram) Regions() int { return 2*p.steps + 1 }
func (p *stencilProgram) Region(i int) bp.Region {
	if i == 0 {
		return &stencilRegion{p: p, kind: kindInit}
	}
	if i%2 == 1 {
		return &stencilRegion{p: p, kind: kindCompute}
	}
	return &stencilRegion{p: p, kind: kindSweep}
}

type regionKind int

const (
	kindInit regionKind = iota
	kindCompute
	kindSweep
)

type stencilRegion struct {
	p    *stencilProgram
	kind regionKind
}

func (r *stencilRegion) Thread(tid int) bp.Stream {
	return &stencilStream{region: r, tid: tid}
}

// Per-thread grid partition: 64 KB per thread at a fixed base.
const (
	gridBase  = uint64(1) << 40
	partBytes = 64 << 10
	lineSize  = 64
)

type stencilStream struct {
	region *stencilRegion
	tid    int
	iter   int
	accs   [4]bp.Access
}

func (s *stencilStream) Next(be *bp.BlockExec) bool {
	var iters, instrs, accs, block int
	switch s.region.kind {
	case kindInit:
		iters, instrs, accs, block = 1024, 12, 4, 100
	case kindCompute:
		iters, instrs, accs, block = 800, 40, 2, 200 // high instr/access ratio
	case kindSweep:
		iters, instrs, accs, block = 1200, 14, 4, 300 // memory-bound sweep
	}
	if s.iter >= iters {
		return false
	}
	base := gridBase + uint64(s.tid)*partBytes
	for j := 0; j < accs; j++ {
		off := uint64((s.iter*accs+j)*lineSize) % partBytes
		s.accs[j] = bp.Access{
			Addr:  base + off,
			Write: s.region.kind == kindInit || j == accs-1,
		}
	}
	s.iter++
	*be = bp.BlockExec{
		Block:  block,
		Instrs: instrs,
		Accs:   s.accs[:accs],
		Branch: true,
		Taken:  s.iter < iters,
	}
	return true
}

func main() {
	prog := &stencilProgram{threads: 8, steps: 50}
	machine := bp.TableIMachine(1)

	analysis, err := bp.Analyze(prog, bp.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d regions -> %d barrierpoints\n",
		prog.Name(), prog.Regions(), len(analysis.BarrierPoints()))
	for _, p := range analysis.BarrierPoints() {
		fmt.Printf("  region %3d  multiplier %6.2f\n", p.Region, p.Multiplier)
	}

	est, err := analysis.Estimate(machine, bp.MRUPrevWarmup)
	if err != nil {
		log.Fatal(err)
	}
	full, err := bp.SimulateFull(prog, machine)
	if err != nil {
		log.Fatal(err)
	}
	act := bp.ActualFrom(full)
	fmt.Printf("\nestimated %.3f ms vs actual %.3f ms (error %.2f%%), %.1fx fewer instructions simulated\n",
		est.TimeNs/1e6, act.TimeNs/1e6,
		100*(est.TimeNs-act.TimeNs)/act.TimeNs, analysis.SerialSpeedup())
}
