// Recorded: the record -> analyze -> simulate -> estimate pipeline from
// disk. A workload is recorded once to a binary trace file; every later
// stage — profiling, barrierpoint selection, warmed detailed simulation,
// whole-program reconstruction, even the ground-truth validation — replays
// regions straight off the file with O(region) memory, exactly as it would
// for a trace captured from a real application in another process.
//
//	go run ./examples/recorded
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	bp "barrierpoint"
	"barrierpoint/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "barrierpoint-recorded")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "npb-ft-8t.bptrace")

	// 1. Record: one forward pass over the workload's trace streams writes
	//    the compact varint-encoded file (gzip per chunk, random access via
	//    the trailing index). After this the in-memory program is gone.
	if err := bp.SaveTrace(path, workload.New("npb-ft", 8), bp.WithTraceGzip(true)); err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(path)
	fmt.Printf("recorded npb-ft to %s (%.1f MB, gzip)\n", filepath.Base(path), float64(st.Size())/(1<<20))

	// 2. Replay: the opened file is a bp.Program; regions stream off disk.
	prog, err := bp.OpenTrace(path)
	if err != nil {
		log.Fatal(err)
	}
	defer prog.Close()
	machine := bp.TableIMachine(prog.Threads() / 8)

	// 3. Analyze the recorded trace: profile every region, select
	//    barrierpoints. Identical to analyzing the in-memory original.
	analysis, err := bp.Analyze(prog, bp.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d regions -> %d barrierpoints\n",
		prog.Name(), prog.Regions(), len(analysis.BarrierPoints()))

	// 4. Simulate only the barrierpoints (MRU-warmed, in parallel) and
	//    reconstruct the whole-program estimate.
	est, err := analysis.Estimate(machine, bp.MRUPrevWarmup)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimated runtime %.3f ms (IPC %.2f, DRAM APKI %.2f)\n",
		est.TimeNs/1e6, est.IPC(), est.DRAMAPKI())

	// 5. Validate against the full detailed simulation, also from disk.
	full, err := bp.SimulateFull(prog, machine)
	if err != nil {
		log.Fatal(err)
	}
	act := bp.ActualFrom(full)
	fmt.Printf("actual    runtime %.3f ms -> error %.2f%%\n",
		act.TimeNs/1e6, 100*(est.TimeNs-act.TimeNs)/act.TimeNs)
}
