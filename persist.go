package barrierpoint

import (
	"encoding/json"
	"fmt"
	"io"

	"barrierpoint/internal/store"
	"barrierpoint/internal/tracefile"
)

// SavedSelection is the serializable form of a barrierpoint selection: the
// durable artifact of the one-time analysis (paper Fig. 2, "one-time
// costs"). It is machine-independent and can be reused across simulator
// configurations and core counts (with ReboundTo for different counts).
type SavedSelection struct {
	Program      string         `json:"program"`
	Threads      int            `json:"threads"`
	Regions      int            `json:"regions"`
	K            int            `json:"k"`
	Assignment   []int          `json:"assignment"`
	Points       []BarrierPoint `json:"points"`
	RegionInstrs []uint64       `json:"region_instrs"`
	Signature    string         `json:"signature"` // options label, e.g. "combine"
	// RepDists holds each region's signature distance to its cluster
	// representative (see cluster.Result.RepDists); the adaptive sampler's
	// runner-up ordering. Absent in selections saved by older versions,
	// which load with zero distances (promotion order degrades to region
	// index, confidence intervals stay valid but looser).
	RepDists []float64 `json:"rep_dists,omitempty"`
}

// Save serializes the analysis' selection to w as JSON.
func (a *Analysis) Save(w io.Writer) error {
	instrs := make([]uint64, len(a.Profiles))
	for i, rd := range a.Profiles {
		instrs[i] = rd.TotalInstrs
	}
	s := SavedSelection{
		Program:      a.Program.Name(),
		Threads:      a.Program.Threads(),
		Regions:      a.Program.Regions(),
		K:            a.Selection.K,
		Assignment:   a.Selection.Assignment,
		Points:       a.Selection.Points,
		RegionInstrs: instrs,
		Signature:    a.Config.Signature.Label(),
		RepDists:     a.Selection.RepDists,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("barrierpoint: saving selection: %w", err)
	}
	return nil
}

// LoadSelection deserializes a selection previously written by Save.
func LoadSelection(r io.Reader) (*SavedSelection, error) {
	var s SavedSelection
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("barrierpoint: loading selection: %w", err)
	}
	if len(s.Assignment) != s.Regions || len(s.RegionInstrs) != s.Regions {
		return nil, fmt.Errorf("barrierpoint: selection for %d regions has %d assignments and %d counts",
			s.Regions, len(s.Assignment), len(s.RegionInstrs))
	}
	if len(s.RepDists) != 0 && len(s.RepDists) != s.Regions {
		return nil, fmt.Errorf("barrierpoint: selection for %d regions has %d representative distances",
			s.Regions, len(s.RepDists))
	}
	for _, p := range s.Points {
		if p.Region < 0 || p.Region >= s.Regions {
			return nil, fmt.Errorf("barrierpoint: barrierpoint region %d out of range [0,%d)", p.Region, s.Regions)
		}
	}
	return &s, nil
}

// Bind attaches a saved selection to a program instance, validating that
// the program matches what was analyzed. The returned Analysis can simulate
// barrierpoints and estimate without re-profiling or re-clustering — the
// "per-simulation costs" path of the paper's Fig. 2.
func (s *SavedSelection) Bind(p Program) (*Analysis, error) {
	if p.Name() != s.Program && p.Name() != s.Program+"-coalesced" {
		return nil, fmt.Errorf("barrierpoint: selection is for %q, program is %q", s.Program, p.Name())
	}
	if p.Regions() != s.Regions {
		return nil, fmt.Errorf("barrierpoint: selection has %d regions, program has %d", s.Regions, p.Regions())
	}
	sel := &Selection{
		K:          s.K,
		Assignment: s.Assignment,
		Points:     s.Points,
		RepDists:   s.RepDists,
	}
	weights := make([]float64, len(s.RegionInstrs))
	for i, n := range s.RegionInstrs {
		weights[i] = float64(n)
	}
	sel.RegionWeights = weights
	return &Analysis{Program: p, Config: DefaultConfig(), Profiles: nil, Selection: sel}, nil
}

// Trace persistence: alongside saved selections, whole program traces can
// be recorded to disk and replayed later. A recorded trace is the durable
// input artifact (the Fig. 2 "application" box); a saved selection is the
// durable analysis artifact. Together they make every downstream step —
// profiling, warmup capture, detailed simulation — runnable out of process
// and long after the workload generator is gone.

// SaveTrace records p into a binary trace file at path (see
// internal/tracefile for the format). The trace captures the exact dynamic
// block and access streams of every inter-barrier region, so replaying it
// reproduces signatures, selections and simulation results bit-for-bit.
func SaveTrace(path string, p Program, opts ...TraceOption) error {
	return tracefile.RecordFile(path, p, opts...)
}

// RecordTrace streams p into w in the binary trace format. It is a single
// forward pass and never seeks.
func RecordTrace(w io.Writer, p Program, opts ...TraceOption) error {
	return tracefile.Record(w, p, opts...)
}

// OpenTrace opens a recorded trace for replay. The returned file is a
// Program whose regions stream straight off disk with O(region) memory;
// close it when done.
func OpenTrace(path string) (*TraceFile, error) {
	return tracefile.Open(path)
}

// Replay caching: regions of a recorded trace are decoded on every replay
// by default. A ReplayCache keeps fully decoded regions in a byte-bounded
// LRU keyed by trace content, so the pipeline stages that revisit regions
// — warmup capture before SimulatePoints, estimate+simulate pairs over one
// trace, campaign grids — decode each region once and replay it from
// memory with zero copies and zero allocations. Cached and uncached
// replays are bit-identical (see tracefile.RegionCache for the contract).

// ReplayCache is a bounded in-memory cache of decoded trace regions,
// shareable by any number of open traces and goroutines.
type ReplayCache = tracefile.RegionCache

// ReplayCacheStats is a snapshot of a ReplayCache's activity.
type ReplayCacheStats = tracefile.CacheStats

// DefaultReplayCacheBytes is the default ReplayCache budget (256 MiB).
const DefaultReplayCacheBytes = tracefile.DefaultRegionCacheBytes

// NewReplayCache returns a replay cache bounded to maxBytes of decoded
// region data (DefaultReplayCacheBytes if maxBytes <= 0).
func NewReplayCache(maxBytes int64) *ReplayCache {
	return tracefile.NewRegionCache(maxBytes)
}

// CachedTrace is an open recorded trace whose regions replay through a
// ReplayCache. It implements Program; Close releases the underlying file
// (cache entries survive and are shared with any other trace of the same
// content).
type CachedTrace struct {
	Program
	file *TraceFile
}

// File returns the underlying trace file.
func (t *CachedTrace) File() *TraceFile { return t.file }

// Close releases the underlying file handle.
func (t *CachedTrace) Close() error { return t.file.Close() }

// OpenTraceCached opens a recorded trace for replay through c, keyed by
// the trace's content address — so two opens of byte-identical traces
// share cached regions. A nil cache degrades to plain streaming replay
// without paying the content-hashing pass over the file.
func OpenTraceCached(path string, c *ReplayCache) (*CachedTrace, error) {
	f, err := tracefile.Open(path)
	if err != nil {
		return nil, err
	}
	if c == nil {
		return &CachedTrace{Program: f, file: f}, nil
	}
	key, err := store.FileKey(path)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &CachedTrace{Program: c.Program(f, key), file: f}, nil
}

// TraceKey returns the content address of the recorded trace at path: the
// lowercase hex SHA-256 of its file bytes. This is the key under which the
// analysis service (internal/store, used by bptool -cache and bpserve)
// files the trace and every artifact derived from it, so byte-identical
// traces — recorded twice, or uploaded from different machines — share one
// cache entry.
func TraceKey(path string) (string, error) { return store.FileKey(path) }

// TraceKeyReader computes the content address of a trace read from r.
func TraceKeyReader(r io.Reader) (string, error) { return store.ReaderKey(r) }
