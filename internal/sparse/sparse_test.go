package sparse

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestTableAgainstMap stresses the robin-hood table with a skewed key
// distribution (repeats, sequential runs, random jumps) against a map
// reference, through growth.
func TestTableAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tab := NewTable[int](4)
	ref := make(map[uint64]int)
	var keys []uint64
	for i := 0; i < 50000; i++ {
		var k uint64
		switch rng.Intn(3) {
		case 0: // revisit
			if len(keys) > 0 {
				k = keys[rng.Intn(len(keys))]
			}
		case 1: // sequential neighbourhood
			k = uint64(i % 2048)
		default: // random
			k = rng.Uint64()
		}
		keys = append(keys, k)
		prev, existed := tab.Swap(k, i)
		refPrev, refExisted := ref[k]
		if existed != refExisted || (existed && prev != refPrev) {
			t.Fatalf("op %d key %d: Swap = (%d,%v), want (%d,%v)", i, k, prev, existed, refPrev, refExisted)
		}
		ref[k] = i
	}
	if tab.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", tab.Len(), len(ref))
	}
	for k, v := range ref {
		if got, ok := tab.Get(k); !ok || got != v {
			t.Fatalf("Get(%d) = (%d,%v), want (%d,true)", k, got, ok, v)
		}
	}
	if _, ok := tab.Get(0xdeadbeefdeadbeef); ok && ref[0xdeadbeefdeadbeef] == 0 {
		if _, in := ref[0xdeadbeefdeadbeef]; !in {
			t.Error("Get found an absent key")
		}
	}
	// Range visits every entry exactly once.
	seen := make(map[uint64]int)
	tab.Range(func(k uint64, v int) { seen[k] = v })
	if len(seen) != len(ref) {
		t.Fatalf("Range visited %d entries, want %d", len(seen), len(ref))
	}
	// Reset empties but preserves capacity for reuse.
	tab.Reset()
	if tab.Len() != 0 {
		t.Error("Len after Reset != 0")
	}
	if _, ok := tab.Get(keys[0]); ok {
		t.Error("Get found an entry after Reset")
	}
	tab.Swap(7, 7)
	if v, ok := tab.Get(7); !ok || v != 7 {
		t.Error("table unusable after Reset")
	}
}

// TestTableZeroKey: key 0 is a legal key (line address 0 exists).
func TestTableZeroKey(t *testing.T) {
	tab := NewTable[int](4)
	if _, existed := tab.Swap(0, 9); existed {
		t.Error("zero key reported present in empty table")
	}
	if v, ok := tab.Get(0); !ok || v != 9 {
		t.Errorf("Get(0) = (%d,%v)", v, ok)
	}
}

func TestTableZeroValue(t *testing.T) {
	var tab Table[int] // zero value must be usable via Upsert
	p, existed := tab.Upsert(3)
	if existed || *p != 0 {
		t.Fatalf("Upsert on zero table = (%d,%v)", *p, existed)
	}
	*p = 11
	if v, _ := tab.Get(3); v != 11 {
		t.Error("value lost")
	}
}

func TestAccumulator(t *testing.T) {
	acc := NewAccumulator(4)
	rng := rand.New(rand.NewSource(1))
	ref := make(map[uint64]float64)
	for i := 0; i < 10000; i++ {
		k := uint64(rng.Intn(300))
		v := rng.Float64()
		acc.Add(k, v)
		ref[k] += v
	}
	got := acc.AppendSorted(nil)
	if len(got) != len(ref) {
		t.Fatalf("%d entries, want %d", len(got), len(ref))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Key < got[j].Key }) {
		t.Fatal("AppendSorted output not sorted")
	}
	for _, e := range got {
		if math.Abs(e.Val-ref[e.Key]) > 1e-9 {
			t.Fatalf("key %d: %v, want %v", e.Key, e.Val, ref[e.Key])
		}
	}
	// Append semantics: existing prefix is preserved.
	pre := Vector{{Key: ^uint64(0), Val: -1}}
	both := acc.AppendSorted(pre)
	if len(both) != 1+len(ref) || both[0].Key != ^uint64(0) {
		t.Error("AppendSorted clobbered the destination prefix")
	}
	acc.Reset()
	if acc.Len() != 0 || len(acc.AppendSorted(nil)) != 0 {
		t.Error("Reset did not empty the accumulator")
	}
}

func TestVectorOps(t *testing.T) {
	m := map[uint64]float64{9: 1, 2: 2, 5: 0.5}
	v := FromMap(m)
	if v.Get(9) != 1 || v.Get(2) != 2 || v.Get(5) != 0.5 || v.Get(4) != 0 {
		t.Errorf("Get wrong: %v", v)
	}
	if v.Total() != 3.5 {
		t.Errorf("Total = %v", v.Total())
	}
	back := v.ToMap()
	if len(back) != len(m) || back[9] != 1 || back[2] != 2 {
		t.Errorf("ToMap round trip: %v", back)
	}
	c := v.Clone()
	c[0].Val = 99
	if v[0].Val == 99 {
		t.Error("Clone shares storage")
	}
	c = v.Clone()
	c.Scale(2)
	if c.Total() != 7 || v.Total() != 3.5 {
		t.Error("Scale wrong")
	}
}

// mapDistance is the seed's map-based L1 distance, the reference for the
// merge join.
func mapDistance(a, b map[uint64]float64) float64 {
	var d float64
	for k, av := range a {
		bv := b[k]
		if av > bv {
			d += av - bv
		} else {
			d += bv - av
		}
	}
	for k, bv := range b {
		if _, ok := a[k]; !ok {
			d += bv
		}
	}
	return d
}

func TestDistanceAgainstMap(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		ma := make(map[uint64]float64)
		mb := make(map[uint64]float64)
		for i, x := range xs {
			ma[uint64(i%19)] += float64(x) / 255
			_ = i
		}
		for i, y := range ys {
			mb[uint64(i%23)] += float64(y) / 255
		}
		got := Distance(FromMap(ma), FromMap(mb))
		want := mapDistance(ma, mb)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSortMerge(t *testing.T) {
	v := Vector{{3, 1}, {1, 2}, {3, 4}, {2, 1}, {1, 1}}
	got := SortMerge(v)
	want := Vector{{1, 3}, {2, 1}, {3, 5}}
	if len(got) != len(want) {
		t.Fatalf("SortMerge = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortMerge[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if out := SortMerge(nil); len(out) != 0 {
		t.Errorf("SortMerge(nil) = %v, want empty", out)
	}
}

// unhash inverts hash (the murmur3 fmix64 finalizer), letting tests craft
// keys with chosen hash values.
func unhash(x uint64) uint64 {
	x ^= x >> 33
	x *= 0x9cb4b2f8129337db
	x ^= x >> 33
	x *= 0x4f74430c22a54005
	x ^= x >> 33
	return x
}

// TestTableAdversarialCollisions drives Table through the maxProbe
// overflow recovery with keys crafted to collide: two large groups whose
// hashes share their low 17 bits land on two adjacent home slots at every
// table size up to 2^17, building probe chains past maxProbe and forcing
// the mid-insertion grow path. Values must still match a reference map.
func TestTableAdversarialCollisions(t *testing.T) {
	const perGroup = 160 // two groups > maxProbe combined
	var keys []uint64
	// Fill the home-slot-2 group first so the slot-1 group then probes and
	// displaces through it (the recovery path needs a displacement before
	// the overflow).
	for _, g := range []uint64{2, 1} {
		for i := uint64(0); i < perGroup; i++ {
			h := (i+1)<<17 | g
			k := unhash(h)
			if hash(k) != h {
				t.Fatalf("unhash mismatch: hash(%#x) = %#x, want %#x", k, hash(k), h)
			}
			keys = append(keys, k)
		}
	}
	tbl := NewTable[int](0)
	ref := make(map[uint64]int, len(keys))
	for pass := 0; pass < 3; pass++ {
		for j, k := range keys {
			p, _ := tbl.Upsert(k)
			*p += j + 1
			ref[k] += j + 1
		}
	}
	if tbl.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", tbl.Len(), len(ref))
	}
	for k, want := range ref {
		if got, ok := tbl.Get(k); !ok || got != want {
			t.Errorf("Get(%#x) = %d, %v, want %d", k, got, ok, want)
		}
	}
}

func TestDistanceZeroAllocs(t *testing.T) {
	a := FromMap(map[uint64]float64{1: 1, 5: 2, 9: 3})
	b := FromMap(map[uint64]float64{2: 1, 5: 1, 11: 4})
	var sink float64
	if allocs := testing.AllocsPerRun(1000, func() { sink += Distance(a, b) }); allocs != 0 {
		t.Errorf("Distance allocates %.2f times per call", allocs)
	}
	_ = sink
}
