package sparse

import "slices"

// hash is the 64-bit finalizer used to spread keys over the table. Cache
// line addresses and feature keys are both strongly structured (sequential
// sweeps, strided accesses), so a full-avalanche mix is required to keep
// probe chains short.
func hash(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Table is an open-addressing robin-hood hash table keyed by uint64. It
// exists for the profiling hot loops, where the runtime map's overhead
// (hash interface, bucket pointers, write barriers) dominates: storage is
// two flat arrays plus one metadata byte per slot, lookups are a linear
// probe bounded by robin-hood displacement, and Reset reuses all storage.
//
// Entries cannot be deleted; the profiler only ever upserts. The zero
// value is ready to use.
type Table[V any] struct {
	keys []uint64
	vals []V
	// dist holds, per slot, the probe distance + 1 of the resident entry
	// (0 = empty). Robin-hood insertion keeps the maximum distance small
	// (O(log n) with high probability), so a uint8 suffices; an overflow
	// forces an early grow.
	dist []uint8
	n    int
	mask uint64
}

// maxProbe forces a rehash if an insertion would probe this far; with the
// growth threshold below it is effectively unreachable, but it bounds the
// uint8 distance encoding against adversarial key sets.
const maxProbe = 200

// NewTable returns a table pre-sized for roughly hint entries.
func NewTable[V any](hint int) *Table[V] {
	t := &Table[V]{}
	size := 16
	for size*3 < hint*4 { // initial load factor <= 0.75
		size *= 2
	}
	t.init(size)
	return t
}

func (t *Table[V]) init(size int) {
	t.keys = make([]uint64, size)
	t.vals = make([]V, size)
	t.dist = make([]uint8, size)
	t.mask = uint64(size - 1)
	t.n = 0
}

// Len returns the number of stored entries.
func (t *Table[V]) Len() int { return t.n }

// Reset removes all entries, keeping allocated storage for reuse.
func (t *Table[V]) Reset() {
	clear(t.dist)
	t.n = 0
}

// grow doubles the table and reinserts every entry.
func (t *Table[V]) grow() {
	oldKeys, oldVals, oldDist := t.keys, t.vals, t.dist
	size := 2 * len(oldKeys)
	if size == 0 {
		size = 16
	}
	t.init(size)
	for i, d := range oldDist {
		if d != 0 {
			*t.upsert(oldKeys[i]) = oldVals[i]
		}
	}
}

// Upsert returns a pointer to the value stored under k, inserting a zero
// value first if k is absent. existed reports whether k was already
// present. The pointer is valid until the next Upsert, Swap or Reset.
func (t *Table[V]) Upsert(k uint64) (p *V, existed bool) {
	if t.dist == nil {
		t.init(16)
	}
	// Lookup first: the common case in profiling loops is a revisit.
	i := hash(k) & t.mask
	d := uint8(1)
	for {
		di := t.dist[i]
		if di == 0 || di < d {
			break // would have been placed by now
		}
		if t.keys[i] == k {
			return &t.vals[i], true
		}
		i = (i + 1) & t.mask
		d++
	}
	return t.insert(k), false
}

// upsert is Upsert without the existence report, for rehashing.
func (t *Table[V]) upsert(k uint64) *V {
	p, _ := t.Upsert(k)
	return p
}

// insert places a fresh key (known absent) and returns its value slot.
func (t *Table[V]) insert(k uint64) *V {
	if (t.n+1)*4 >= len(t.keys)*3 { // grow at 75% load
		t.grow()
	}
retry:
	i := hash(k) & t.mask
	d := uint8(1)
	var ret *V
	curKey := k
	var curVal V
	for {
		if d >= maxProbe {
			t.grow()
			if ret == nil {
				goto retry
			}
			// k itself was already placed before the overflow. Finish
			// inserting the displaced entry first — its insertion can
			// robin-hood k's slot around — and only then re-find k, so the
			// returned pointer addresses k's final slot.
			*t.upsert(curKey) = curVal
			return t.upsert(k)
		}
		if t.dist[i] == 0 {
			t.keys[i], t.vals[i], t.dist[i] = curKey, curVal, d
			t.n++
			if ret == nil {
				ret = &t.vals[i]
			}
			return ret
		}
		if t.dist[i] < d {
			// Robin hood: the resident is closer to home; it yields its
			// slot and we continue inserting the displaced entry.
			t.keys[i], curKey = curKey, t.keys[i]
			t.vals[i], curVal = curVal, t.vals[i]
			t.dist[i], d = d, t.dist[i]
			if ret == nil {
				ret = &t.vals[i]
			}
		}
		i = (i + 1) & t.mask
		d++
	}
}

// Get returns the value stored under k.
func (t *Table[V]) Get(k uint64) (v V, ok bool) {
	if t.n == 0 {
		return v, false
	}
	i := hash(k) & t.mask
	d := uint8(1)
	for {
		di := t.dist[i]
		if di == 0 || di < d {
			return v, false
		}
		if t.keys[i] == k {
			return t.vals[i], true
		}
		i = (i + 1) & t.mask
		d++
	}
}

// Swap stores v under k and returns the previous value, if any. It is the
// single-operation form of the LDV profiler's "read last access time, write
// new one" step.
func (t *Table[V]) Swap(k uint64, v V) (prev V, existed bool) {
	p, existed := t.Upsert(k)
	prev = *p
	*p = v
	return prev, existed
}

// Range calls fn for every entry, in unspecified order.
func (t *Table[V]) Range(fn func(k uint64, v V)) {
	for i, d := range t.dist {
		if d != 0 {
			fn(t.keys[i], t.vals[i])
		}
	}
}

// Accumulator builds sparse vectors by summing float64 weights per key,
// without per-key allocations. It is the scratch structure behind BBV
// collection and thread-summed signatures; pool it and Reset between
// regions.
type Accumulator struct {
	t Table[float64]
}

// NewAccumulator returns an accumulator pre-sized for roughly hint keys.
func NewAccumulator(hint int) *Accumulator {
	return &Accumulator{t: *NewTable[float64](hint)}
}

// Add accumulates v under k.
func (a *Accumulator) Add(k uint64, v float64) { *a.t.upsert(k) += v }

// Len returns the number of distinct keys.
func (a *Accumulator) Len() int { return a.t.Len() }

// Reset removes all entries, keeping storage.
func (a *Accumulator) Reset() { a.t.Reset() }

// AppendSorted appends the accumulated entries to dst in ascending key
// order and returns the extended slice. The accumulator is unchanged.
func (a *Accumulator) AppendSorted(dst Vector) Vector {
	start := len(dst)
	if need := start + a.t.Len(); cap(dst) < need {
		grown := make(Vector, start, need)
		copy(grown, dst)
		dst = grown
	}
	a.t.Range(func(k uint64, v float64) {
		dst = append(dst, Entry{k, v})
	})
	// slices.SortFunc, not sort.Slice: the latter builds a reflect-based
	// swapper per call, which profiled as ~20% of allocated objects in the
	// whole analysis pass.
	slices.SortFunc(dst[start:], cmpEntry)
	return dst
}
