// Package sparse provides the flat sparse-vector representation behind the
// signature pipeline hot paths: sorted []Entry vectors with merge-join
// distance, plus an open-addressing robin-hood hash table used both to
// accumulate vectors without map churn and to back the LDV profiler's
// last-access index.
//
// The package exists because profiling and clustering dominate the
// BarrierPoint one-time cost (paper §III, the 20-30x Pintool slowdown), and
// the seed implementation spent most of that time in Go map operations.
// Sorted flat vectors make Distance a branch-predictable merge join with
// zero allocations, and the accumulator's storage is reusable across
// regions via Reset, so steady-state profiling does not allocate per
// region.
package sparse

import "slices"

// Entry is one (feature, weight) pair of a sparse vector.
type Entry struct {
	Key uint64
	Val float64
}

// Vector is a sparse vector: entries sorted by strictly increasing Key.
// The zero value is an empty vector.
type Vector []Entry

// FromMap converts a map into a sorted Vector. It exists as the conversion
// shim for callers (tests, serialization) that still speak maps; hot paths
// build vectors through Accumulator instead.
func FromMap(m map[uint64]float64) Vector {
	v := make(Vector, 0, len(m))
	for k, val := range m {
		v = append(v, Entry{k, val})
	}
	slices.SortFunc(v, cmpEntry)
	return v
}

func cmpEntry(a, b Entry) int {
	switch {
	case a.Key < b.Key:
		return -1
	case a.Key > b.Key:
		return 1
	default:
		return 0
	}
}

// SortMerge restores the Vector invariant of an entry list assembled out
// of order: it sorts v by key and sums entries sharing a key, in place,
// returning the (possibly shorter) slice. Values of merged entries add,
// matching the semantics of accumulating the same list through a map.
func SortMerge(v Vector) Vector {
	slices.SortFunc(v, cmpEntry)
	out := v[:0]
	for _, e := range v {
		if n := len(out); n > 0 && out[n-1].Key == e.Key {
			out[n-1].Val += e.Val
			continue
		}
		out = append(out, e)
	}
	return out
}

// ToMap converts v into a map, the inverse shim of FromMap.
func (v Vector) ToMap() map[uint64]float64 {
	m := make(map[uint64]float64, len(v))
	for _, e := range v {
		m[e.Key] = e.Val
	}
	return m
}

// Get returns the value stored under k, or 0 when absent.
func (v Vector) Get(k uint64) float64 {
	lo, hi := 0, len(v)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v[mid].Key < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(v) && v[lo].Key == k {
		return v[lo].Val
	}
	return 0
}

// Total returns the sum of all values.
func (v Vector) Total() float64 {
	var s float64
	for _, e := range v {
		s += e.Val
	}
	return s
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Scale multiplies every value by f in place.
func (v Vector) Scale(f float64) {
	for i := range v {
		v[i].Val *= f
	}
}

// Distance returns the L1 (Manhattan) distance between two sorted sparse
// vectors, treating missing entries as zero. It is a single merge join and
// never allocates.
func Distance(a, b Vector) float64 {
	var d float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Key == b[j].Key:
			if a[i].Val > b[j].Val {
				d += a[i].Val - b[j].Val
			} else {
				d += b[j].Val - a[i].Val
			}
			i++
			j++
		case a[i].Key < b[j].Key:
			if a[i].Val >= 0 {
				d += a[i].Val
			} else {
				d += -a[i].Val
			}
			i++
		default:
			if b[j].Val >= 0 {
				d += b[j].Val
			} else {
				d += -b[j].Val
			}
			j++
		}
	}
	for ; i < len(a); i++ {
		if a[i].Val >= 0 {
			d += a[i].Val
		} else {
			d += -a[i].Val
		}
	}
	for ; j < len(b); j++ {
		if b[j].Val >= 0 {
			d += b[j].Val
		} else {
			d += -b[j].Val
		}
	}
	return d
}
