package reconstruct

import (
	"math"

	"barrierpoint/internal/stats"
)

// IntervalEstimate is an Estimate with a symmetric confidence interval on
// every metric: Margin holds the per-metric half-widths at the stated
// two-sided Confidence level. The additive metrics' margins come from
// per-cluster variance propagation (see internal/adaptive); the derived
// metrics (IPC, APKI) propagate by the first-order delta method, ignoring
// the positive numerator/denominator correlation — which widens, never
// narrows, their intervals.
type IntervalEstimate struct {
	Estimate
	Margin     Estimate // per-metric half-widths at Confidence
	Confidence float64  // two-sided level, e.g. 0.95
}

// Time returns the runtime estimate as an interval.
func (ie IntervalEstimate) Time() stats.Interval {
	return stats.Interval{Center: ie.TimeNs, Half: ie.Margin.TimeNs}
}

// RelTime returns the relative half-width of the runtime interval — the
// quantity the adaptive sampler drives to its target.
func (ie IntervalEstimate) RelTime() float64 { return ie.Time().Rel() }

// CoversTime reports whether the runtime interval covers actualNs.
func (ie IntervalEstimate) CoversTime(actualNs float64) bool {
	return ie.Time().Covers(actualNs)
}

// relVar returns the squared relative half-width of (value, half).
func relVar(value, half float64) float64 {
	if value == 0 {
		return 0
	}
	r := half / value
	return r * r
}

// IPCInterval returns the estimated aggregate IPC with a delta-method
// margin: rel²(IPC) ≈ rel²(Instrs) + rel²(Cycles).
func (ie IntervalEstimate) IPCInterval() stats.Interval {
	ipc := ie.IPC()
	rel := math.Sqrt(relVar(ie.Instrs, ie.Margin.Instrs) + relVar(ie.Cycles, ie.Margin.Cycles))
	return stats.Interval{Center: ipc, Half: math.Abs(ipc) * rel}
}

// APKIInterval returns the estimated DRAM APKI with a delta-method margin:
// rel²(APKI) ≈ rel²(DRAMAccs) + rel²(Instrs).
func (ie IntervalEstimate) APKIInterval() stats.Interval {
	apki := ie.DRAMAPKI()
	rel := math.Sqrt(relVar(ie.DRAMAccs, ie.Margin.DRAMAccs) + relVar(ie.Instrs, ie.Margin.Instrs))
	return stats.Interval{Center: apki, Half: math.Abs(apki) * rel}
}
