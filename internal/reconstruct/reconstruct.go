// Package reconstruct implements whole-program runtime reconstruction
// (paper §III-D): given detailed simulation results for the selected
// barrierpoints and their multipliers, additive metrics extrapolate as
// metric_app = Σ_j metric_j · mult_j, and derived metrics (APKI, IPC) are
// recomputed from the extrapolated numerators and denominators.
package reconstruct

import (
	"fmt"

	"barrierpoint/internal/cluster"
	"barrierpoint/internal/sim"
)

// Estimate is a reconstructed whole-program prediction.
type Estimate struct {
	Cycles   float64 // estimated total execution cycles
	TimeNs   float64 // estimated total execution time
	Instrs   float64 // estimated aggregate instruction count
	DRAMAccs float64 // estimated DRAM transfers
	L3Misses float64
	L2Misses float64
	L1DAccs  float64
}

// DRAMAPKI returns estimated DRAM accesses per kilo-instruction.
func (e Estimate) DRAMAPKI() float64 {
	if e.Instrs == 0 {
		return 0
	}
	return 1000 * e.DRAMAccs / e.Instrs
}

// IPC returns estimated aggregate instructions per cycle.
func (e Estimate) IPC() float64 {
	if e.Cycles == 0 {
		return 0
	}
	return e.Instrs / e.Cycles
}

// Estimate reconstructs whole-program metrics from barrierpoint results.
// bpResults maps representative region index → its detailed simulation.
func Reconstruct(sel *cluster.Result, bpResults map[int]sim.RegionResult) (Estimate, error) {
	var est Estimate
	for _, p := range sel.Points {
		r, ok := bpResults[p.Region]
		if !ok {
			return Estimate{}, fmt.Errorf("reconstruct: missing simulation result for barrierpoint region %d", p.Region)
		}
		m := p.Multiplier
		est.Cycles += float64(r.Cycles) * m
		est.TimeNs += r.TimeNs * m
		est.Instrs += float64(r.Counters.Instrs) * m
		est.DRAMAccs += float64(r.Counters.DRAMAccs) * m
		est.L3Misses += float64(r.Counters.L3Misses) * m
		est.L2Misses += float64(r.Counters.L2Misses) * m
		est.L1DAccs += float64(r.Counters.L1DAccesses) * m
	}
	return est, nil
}

// ReconstructUnscaled is the ablation of §VI-A: multipliers are replaced by
// raw cluster member counts, ignoring instruction-count scaling. The paper
// reports average error growing from 0.6% to 19.4% without scaling.
func ReconstructUnscaled(sel *cluster.Result, bpResults map[int]sim.RegionResult) (Estimate, error) {
	counts := make(map[int]float64)
	for _, c := range sel.Assignment {
		counts[c]++
	}
	scaled := &cluster.Result{
		K:          sel.K,
		Assignment: sel.Assignment,
	}
	for _, p := range sel.Points {
		q := p
		q.Multiplier = counts[p.Cluster]
		scaled.Points = append(scaled.Points, q)
	}
	return Reconstruct(scaled, bpResults)
}

// Actual sums ground-truth per-region results into the same Estimate shape
// for error computation.
func Actual(results []sim.RegionResult) Estimate {
	var est Estimate
	for _, r := range results {
		est.Cycles += float64(r.Cycles)
		est.TimeNs += r.TimeNs
		est.Instrs += float64(r.Counters.Instrs)
		est.DRAMAccs += float64(r.Counters.DRAMAccs)
		est.L3Misses += float64(r.Counters.L3Misses)
		est.L2Misses += float64(r.Counters.L2Misses)
		est.L1DAccs += float64(r.Counters.L1DAccesses)
	}
	return est
}

// PerfectWarmupResults extracts barrierpoint results from a full detailed
// simulation: the paper's "perfect warmup" evaluation mode (§VI-A), which
// isolates selection error from warmup error.
func PerfectWarmupResults(sel *cluster.Result, full []sim.RegionResult) map[int]sim.RegionResult {
	out := make(map[int]sim.RegionResult, len(sel.Points))
	for _, p := range sel.Points {
		out[p.Region] = full[p.Region]
	}
	return out
}

// Series reconstructs the per-region metric series (paper Fig. 3): each
// region's value is taken from its representative's detailed result. The
// returned slice is indexed by region.
func Series(sel *cluster.Result, bpResults map[int]sim.RegionResult, metric func(sim.RegionResult) float64) ([]float64, error) {
	out := make([]float64, len(sel.Assignment))
	for i := range sel.Assignment {
		p := sel.PointFor(i)
		if p == nil {
			return nil, fmt.Errorf("reconstruct: region %d has no barrierpoint", i)
		}
		r, ok := bpResults[p.Region]
		if !ok {
			return nil, fmt.Errorf("reconstruct: missing result for barrierpoint region %d", p.Region)
		}
		out[i] = metric(r)
	}
	return out, nil
}
