package reconstruct

import (
	"math"
	"testing"
)

func TestIntervalEstimateTime(t *testing.T) {
	ie := IntervalEstimate{
		Estimate:   Estimate{TimeNs: 1000},
		Margin:     Estimate{TimeNs: 20},
		Confidence: 0.95,
	}
	if got := ie.Time(); got.Center != 1000 || got.Half != 20 {
		t.Errorf("Time() = %+v", got)
	}
	if got, want := ie.RelTime(), 0.02; math.Abs(got-want) > 1e-15 {
		t.Errorf("RelTime() = %v, want %v", got, want)
	}
	if !ie.CoversTime(985) || !ie.CoversTime(1020) {
		t.Error("interval should cover values within ±20")
	}
	if ie.CoversTime(1021) || ie.CoversTime(979) {
		t.Error("interval should not cover values outside ±20")
	}
}

func TestIPCIntervalDeltaMethod(t *testing.T) {
	ie := IntervalEstimate{
		Estimate: Estimate{Instrs: 2000, Cycles: 1000},
		Margin:   Estimate{Instrs: 60, Cycles: 40}, // rel 3% and 4%
	}
	iv := ie.IPCInterval()
	if iv.Center != 2.0 {
		t.Errorf("IPC center = %v, want 2", iv.Center)
	}
	wantRel := math.Sqrt(0.03*0.03 + 0.04*0.04) // 5%
	if got := iv.Half / iv.Center; math.Abs(got-wantRel) > 1e-12 {
		t.Errorf("IPC rel half-width = %v, want %v", got, wantRel)
	}
}

func TestAPKIIntervalDeltaMethod(t *testing.T) {
	ie := IntervalEstimate{
		Estimate: Estimate{DRAMAccs: 500, Instrs: 1e6},
		Margin:   Estimate{DRAMAccs: 25, Instrs: 0}, // rel 5% and 0%
	}
	iv := ie.APKIInterval()
	if want := 0.5; math.Abs(iv.Center-want) > 1e-12 {
		t.Errorf("APKI center = %v, want %v", iv.Center, want)
	}
	if got, want := iv.Half/iv.Center, 0.05; math.Abs(got-want) > 1e-12 {
		t.Errorf("APKI rel half-width = %v, want %v", got, want)
	}
}

func TestIntervalEstimateZeroMargin(t *testing.T) {
	// A fully-simulated program has zero margin everywhere: intervals are
	// degenerate points that cover exactly their centers.
	ie := IntervalEstimate{Estimate: Estimate{TimeNs: 42, Instrs: 10, Cycles: 5}, Confidence: 0.95}
	if ie.RelTime() != 0 {
		t.Errorf("RelTime() = %v, want 0", ie.RelTime())
	}
	if !ie.CoversTime(42) || ie.CoversTime(42.0001) {
		t.Error("zero-width interval should cover only its center")
	}
	if iv := ie.IPCInterval(); iv.Half != 0 || iv.Center != 2 {
		t.Errorf("IPCInterval() = %+v", iv)
	}
}
