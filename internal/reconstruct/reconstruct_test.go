package reconstruct

import (
	"math"
	"testing"

	"barrierpoint/internal/cluster"
	"barrierpoint/internal/sim"
)

func mkResult(cycles uint64, instrs, dram uint64) sim.RegionResult {
	return sim.RegionResult{
		Cycles: cycles,
		TimeNs: float64(cycles) / 2.0,
		Counters: sim.Counters{
			Instrs:   instrs,
			DRAMAccs: dram,
			L3Misses: dram,
		},
	}
}

func TestReconstructExactWhenAllRegionsSelected(t *testing.T) {
	// Every region its own cluster: reconstruction equals the sum.
	full := []sim.RegionResult{
		mkResult(100, 1000, 5),
		mkResult(250, 2000, 9),
		mkResult(50, 400, 1),
	}
	sel := &cluster.Result{
		K:          3,
		Assignment: []int{0, 1, 2},
		Points: []cluster.BarrierPoint{
			{Region: 0, Cluster: 0, Multiplier: 1},
			{Region: 1, Cluster: 1, Multiplier: 1},
			{Region: 2, Cluster: 2, Multiplier: 1},
		},
	}
	est, err := Reconstruct(sel, PerfectWarmupResults(sel, full))
	if err != nil {
		t.Fatal(err)
	}
	act := Actual(full)
	if est != act {
		t.Errorf("exact reconstruction differs: %+v vs %+v", est, act)
	}
}

func TestReconstructScalesByMultiplier(t *testing.T) {
	full := []sim.RegionResult{
		mkResult(100, 1000, 4),
		mkResult(100, 1000, 4),
		mkResult(100, 1000, 4),
	}
	sel := &cluster.Result{
		K:          1,
		Assignment: []int{0, 0, 0},
		Points:     []cluster.BarrierPoint{{Region: 1, Cluster: 0, Multiplier: 3}},
	}
	est, err := Reconstruct(sel, PerfectWarmupResults(sel, full))
	if err != nil {
		t.Fatal(err)
	}
	if est.Cycles != 300 || est.Instrs != 3000 || est.DRAMAccs != 12 {
		t.Errorf("scaled reconstruction wrong: %+v", est)
	}
}

func TestReconstructMissingResult(t *testing.T) {
	sel := &cluster.Result{
		Assignment: []int{0},
		Points:     []cluster.BarrierPoint{{Region: 0, Multiplier: 1}},
	}
	if _, err := Reconstruct(sel, map[int]sim.RegionResult{}); err == nil {
		t.Error("missing result not reported")
	}
}

func TestReconstructUnscaled(t *testing.T) {
	// Two regions of very different lengths in one cluster: the unscaled
	// variant uses the member count (2) instead of the instruction-ratio
	// multiplier.
	full := []sim.RegionResult{
		mkResult(100, 1000, 0),
		mkResult(400, 4000, 0),
	}
	sel := &cluster.Result{
		K:          1,
		Assignment: []int{0, 0},
		Points:     []cluster.BarrierPoint{{Region: 0, Cluster: 0, Multiplier: 5}},
	}
	scaled, err := Reconstruct(sel, PerfectWarmupResults(sel, full))
	if err != nil {
		t.Fatal(err)
	}
	unscaled, err := ReconstructUnscaled(sel, PerfectWarmupResults(sel, full))
	if err != nil {
		t.Fatal(err)
	}
	if scaled.Cycles != 500 {
		t.Errorf("scaled cycles = %v, want 500", scaled.Cycles)
	}
	if unscaled.Cycles != 200 {
		t.Errorf("unscaled cycles = %v, want 200 (2 members x 100)", unscaled.Cycles)
	}
	// The scaled estimate is exact for the aggregate; the unscaled one is
	// off by 2.5x here.
	if math.Abs(scaled.Cycles-500) > 1e-9 && math.Abs(unscaled.Cycles-500) < math.Abs(scaled.Cycles-500) {
		t.Error("unscaled unexpectedly better")
	}
}

func TestEstimateDerivedMetrics(t *testing.T) {
	e := Estimate{Cycles: 1000, Instrs: 4000, DRAMAccs: 8}
	if e.IPC() != 4 {
		t.Errorf("IPC = %v", e.IPC())
	}
	if e.DRAMAPKI() != 2 {
		t.Errorf("APKI = %v", e.DRAMAPKI())
	}
	var zero Estimate
	if zero.IPC() != 0 || zero.DRAMAPKI() != 0 {
		t.Error("zero estimate metrics not zero")
	}
}

func TestSeries(t *testing.T) {
	full := []sim.RegionResult{
		mkResult(100, 1000, 0),
		mkResult(300, 1000, 0),
		mkResult(100, 1000, 0),
	}
	sel := &cluster.Result{
		K:          2,
		Assignment: []int{0, 1, 0},
		Points: []cluster.BarrierPoint{
			{Region: 0, Cluster: 0, Multiplier: 2},
			{Region: 1, Cluster: 1, Multiplier: 1},
		},
	}
	s, err := Series(sel, PerfectWarmupResults(sel, full), func(r sim.RegionResult) float64 { return float64(r.Cycles) })
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{100, 300, 100}
	for i := range want {
		if s[i] != want[i] {
			t.Errorf("series[%d] = %v, want %v", i, s[i], want[i])
		}
	}
}

func TestActualSums(t *testing.T) {
	full := []sim.RegionResult{mkResult(10, 100, 1), mkResult(20, 200, 2)}
	a := Actual(full)
	if a.Cycles != 30 || a.Instrs != 300 || a.DRAMAccs != 3 {
		t.Errorf("Actual = %+v", a)
	}
}
