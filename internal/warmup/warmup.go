// Package warmup implements the paper's cache warmup technique (§IV): while
// instrumenting the application, each core tracks its most-recently-used
// cache lines up to a capacity equal to the largest shared LLC; before
// detailed simulation of a barrierpoint, each core replays its captured
// lines in LRU→MRU order through the machine's normal coherent access path,
// restoring cache and directory state without functional simulation of the
// full history.
package warmup

import (
	"sort"

	"barrierpoint/internal/sim"
	"barrierpoint/internal/trace"
)

// Entry is one captured cache line: line address shifted left once, with
// the low bit carrying the dirty flag (last access was a store).
type Entry uint64

// NewEntry packs a line address and dirty flag.
func NewEntry(line uint64, dirty bool) Entry {
	e := Entry(line << 1)
	if dirty {
		e |= 1
	}
	return e
}

// Line returns the cache line address.
func (e Entry) Line() uint64 { return uint64(e) >> 1 }

// Dirty reports whether the captured line was last written.
func (e Entry) Dirty() bool { return e&1 != 0 }

// Snapshot is per-core warmup data for one barrierpoint: for each core, its
// most recent lines in LRU→MRU replay order.
type Snapshot [][]Entry

// tracker accumulates one core's most-recent-access ordering.
type tracker struct {
	seq  uint64
	last map[uint64]lineInfo
}

type lineInfo struct {
	seq   uint64
	dirty bool
}

func newTracker() *tracker {
	return &tracker{last: make(map[uint64]lineInfo, 1024)}
}

func (t *tracker) touch(line uint64, write bool) {
	t.seq++
	li := t.last[line]
	li.seq = t.seq
	// Dirtiness is sticky: once written, a line that stays resident in the
	// private hierarchy remains Modified until evicted, so replaying it as
	// a store restores the common (cache-resident working set) case.
	li.dirty = li.dirty || write
	t.last[line] = li
}

// snapshot returns the capacity most recent lines in LRU→MRU order.
func (t *tracker) snapshot(capacityLines int) []Entry {
	type rec struct {
		line uint64
		li   lineInfo
	}
	recs := make([]rec, 0, len(t.last))
	for line, li := range t.last {
		recs = append(recs, rec{line, li})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].li.seq < recs[j].li.seq })
	if len(recs) > capacityLines {
		recs = recs[len(recs)-capacityLines:]
	}
	out := make([]Entry, len(recs))
	for i, r := range recs {
		out[i] = NewEntry(r.line, r.li.dirty)
	}
	return out
}

// Capture replays the program's trace functionally and snapshots each
// core's MRU state at the start of every region in atRegions. The capacity
// is expressed in cache lines and should equal the largest shared LLC the
// barrierpoint will ever be simulated on (paper §IV: only this one number
// must be known).
//
// The returned map is keyed by region index. Regions not in atRegions cost
// only the trace replay.
func Capture(p trace.Program, atRegions []int, capacityLines int) map[int]Snapshot {
	want := make(map[int]bool, len(atRegions))
	maxRegion := -1
	for _, r := range atRegions {
		want[r] = true
		if r > maxRegion {
			maxRegion = r
		}
	}
	threads := p.Threads()
	trackers := make([]*tracker, threads)
	for t := range trackers {
		trackers[t] = newTracker()
	}
	out := make(map[int]Snapshot, len(atRegions))

	for i := 0; i <= maxRegion && i < p.Regions(); i++ {
		if want[i] {
			snap := make(Snapshot, threads)
			for t := range trackers {
				snap[t] = trackers[t].snapshot(capacityLines)
			}
			out[i] = snap
		}
		r := p.Region(i)
		for t := 0; t < threads; t++ {
			s := r.Thread(t)
			var be trace.BlockExec
			for s.Next(&be) {
				for _, a := range be.Accs {
					trackers[t].touch(trace.LineAddr(a.Addr), a.Write)
				}
			}
		}
	}
	return out
}

// Replay restores cache state on a fresh machine by replaying each core's
// captured lines, oldest first, through the normal coherent access path.
// Dirty lines replay as stores so the directory records ownership.
func Replay(m *sim.Machine, snap Snapshot) {
	for c, entries := range snap {
		if c >= m.Config().Cores() {
			break
		}
		for _, e := range entries {
			m.WarmAccess(c, e.Line(), e.Dirty())
		}
	}
}
