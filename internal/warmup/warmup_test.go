package warmup

import (
	"testing"
	"testing/quick"

	"barrierpoint/internal/sim"
	"barrierpoint/internal/trace"
	"barrierpoint/internal/workload"
)

func TestEntryRoundTrip(t *testing.T) {
	f := func(line uint64, dirty bool) bool {
		line &= (1 << 57) - 1
		e := NewEntry(line, dirty)
		return e.Line() == line && e.Dirty() == dirty
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTrackerOrderAndCapacity(t *testing.T) {
	tr := newTracker()
	for i := 0; i < 10; i++ {
		tr.touch(uint64(i), false)
	}
	tr.touch(3, true) // refresh line 3, now MRU and dirty
	snap := tr.snapshot(5)
	if len(snap) != 5 {
		t.Fatalf("snapshot length %d, want 5", len(snap))
	}
	// MRU entry is last and is line 3, dirty.
	last := snap[len(snap)-1]
	if last.Line() != 3 || !last.Dirty() {
		t.Errorf("MRU entry = line %d dirty %v", last.Line(), last.Dirty())
	}
	// Entries are the 5 most recent: 6,7,8,9,3 in LRU→MRU order.
	want := []uint64{6, 7, 8, 9, 3}
	for i, e := range snap {
		if e.Line() != want[i] {
			t.Errorf("entry %d = line %d, want %d", i, e.Line(), want[i])
		}
	}
}

func TestTrackerDirtySticky(t *testing.T) {
	tr := newTracker()
	tr.touch(1, true)
	tr.touch(1, false) // read after write: line remains dirty in cache
	snap := tr.snapshot(10)
	if !snap[0].Dirty() {
		t.Error("written line lost dirtiness on read")
	}
}

func TestCaptureAtRegionStart(t *testing.T) {
	// The snapshot at region r must reflect regions < r only.
	p := workload.New("npb-is", 8, workload.WithScale(0.05))
	snaps := Capture(p, []int{0, 2}, 1<<20)
	if len(snaps[0]) != 8 {
		t.Fatalf("snapshot has %d cores", len(snaps[0]))
	}
	for c := 0; c < 8; c++ {
		if len(snaps[0][c]) != 0 {
			t.Errorf("core %d snapshot at region 0 not empty", c)
		}
		if len(snaps[2][c]) == 0 {
			t.Errorf("core %d snapshot at region 2 empty", c)
		}
	}
}

func TestReplayRestoresPrivateCaches(t *testing.T) {
	// After capture+replay of a partitioned sequential workload whose
	// footprint fits the private caches, the warmed machine must hold
	// exactly the lines a fully simulated machine holds in L2.
	p := workload.New("npb-sp", 8, workload.WithScale(0.5))
	cfg := sim.TableI(1)

	gt := sim.New(cfg)
	const upTo = 10
	for i := 0; i < upTo; i++ {
		gt.RunRegion(p.Region(i))
	}
	snaps := Capture(p, []int{upTo}, cfg.L3.Lines())
	wm := sim.New(cfg)
	Replay(wm, snaps[upTo])

	for c := 0; c < 2; c++ {
		for _, e := range snaps[upTo][c] {
			if gt.L2Has(c, e.Line()) && !wm.L2Has(c, e.Line()) {
				t.Fatalf("core %d line %#x present in ground truth L2 but missing after replay", c, e.Line())
			}
		}
	}
	if err := wm.CheckInclusion(); err != nil {
		t.Fatal(err)
	}
}

func TestReplayedRegionTimingClose(t *testing.T) {
	// End-to-end: the warmed barrierpoint run must land near the ground
	// truth timing of the same region (well under the cold-start error).
	p := workload.New("npb-ft", 8, workload.WithScale(0.5))
	cfg := sim.TableI(1)
	const r = 14 // a steady-state evolve instance

	gt := sim.New(cfg)
	var want sim.RegionResult
	for i := 0; i <= r; i++ {
		want = gt.RunRegion(p.Region(i))
	}

	snaps := Capture(p, []int{r}, cfg.L3.Lines())
	warm := sim.New(cfg)
	Replay(warm, snaps[r])
	for q := r - 3; q < r; q++ {
		warm.WarmRegion(p.Region(q))
	}
	got := warm.RunRegion(p.Region(r))

	cold := sim.New(cfg)
	coldRes := cold.RunRegion(p.Region(r))

	warmErr := relDiff(float64(got.Cycles), float64(want.Cycles))
	coldErr := relDiff(float64(coldRes.Cycles), float64(want.Cycles))
	if warmErr > 0.25 {
		t.Errorf("warmed run off by %.1f%%", warmErr*100)
	}
	if coldErr < 2*warmErr {
		t.Errorf("warmup did not help: warm %.2f vs cold %.2f", warmErr, coldErr)
	}
}

func relDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / b
}

func TestCaptureCapacityTruncation(t *testing.T) {
	// A tiny capacity keeps only the most recent lines.
	p := workload.New("npb-ft", 8, workload.WithScale(0.1))
	snaps := Capture(p, []int{5}, 16)
	for c, entries := range snaps[5] {
		if len(entries) > 16 {
			t.Errorf("core %d snapshot exceeds capacity: %d", c, len(entries))
		}
	}
}

func TestReplayMoreCoresThanSnapshot(t *testing.T) {
	// Replaying a snapshot with fewer cores than the machine must not
	// panic; extra machine cores just stay cold.
	cfg := sim.Tiny(4)
	m := sim.New(cfg)
	snap := Snapshot{{NewEntry(1, false)}, {NewEntry(2, true)}}
	Replay(m, snap)
	if !m.L2Has(0, 1) || !m.L2Has(1, 2) {
		t.Error("replay skipped provided cores")
	}
}

var _ = trace.LineSize // keep import for documentation symmetry
