package adaptive

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	bp "barrierpoint"
	"barrierpoint/internal/farm"
	"barrierpoint/internal/store"
	"barrierpoint/internal/tracefile"
	"barrierpoint/internal/workload"
)

// ftAnalysis analyzes the ft workload at the scale the adaptive constants
// were calibrated on.
func ftAnalysis(t testing.TB) (*bp.Analysis, bp.Program) {
	t.Helper()
	prog := workload.New("npb-ft", 8, workload.WithScale(0.25))
	a, err := bp.Analyze(prog, bp.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return a, prog
}

var tableI = bp.TableIMachine(1)

// TestIntervalsMatchPointEstimate: with exactly the representatives
// simulated, the interval estimate's center is bit-identical to the
// standard multiplier reconstruction — error bars attach to the existing
// estimate, they do not perturb it.
func TestIntervalsMatchPointEstimate(t *testing.T) {
	a, _ := ftAnalysis(t)
	results, err := a.SimulatePoints(tableI, bp.MRUPrevWarmup)
	if err != nil {
		t.Fatal(err)
	}
	want, err := a.EstimateFrom(results)
	if err != nil {
		t.Fatal(err)
	}
	ie, err := Intervals(a.Selection, results, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ie.Estimate != want {
		t.Errorf("interval center %+v differs from reconstruction %+v", ie.Estimate, want)
	}
	if ie.Margin.TimeNs <= 0 {
		t.Error("runtime margin should be positive with unsimulated cluster members")
	}
	if ie.Confidence != DefaultConfidence {
		t.Errorf("confidence = %v, want default %v", ie.Confidence, DefaultConfidence)
	}
}

// TestIntervalsRequireEveryCluster: a missing representative is an error,
// not a silent zero contribution.
func TestIntervalsRequireEveryCluster(t *testing.T) {
	a, _ := ftAnalysis(t)
	results, err := a.SimulatePoints(tableI, bp.ColdWarmup)
	if err != nil {
		t.Fatal(err)
	}
	delete(results, a.Selection.Points[0].Region)
	if _, err := Intervals(a.Selection, results, Options{}); err == nil {
		t.Error("Intervals accepted a cluster with no simulated member")
	}
}

// TestRunDeterminism: the same trace, selection and target produce
// byte-identical promotion sequences and final estimates across runs.
func TestRunDeterminism(t *testing.T) {
	a, _ := ftAnalysis(t)
	run := func() *Result {
		res, err := Run(a, bp.LocalRunner{}, tableI, bp.MRUPrevWarmup, Options{TargetRel: 0.02})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(), run()
	if r1.Estimate != r2.Estimate {
		t.Errorf("estimates differ:\n%+v\n%+v", r1.Estimate, r2.Estimate)
	}
	if !reflect.DeepEqual(r1.Simulated, r2.Simulated) {
		t.Errorf("simulated sets differ: %v vs %v", r1.Simulated, r2.Simulated)
	}
	if !reflect.DeepEqual(r1.Rounds, r2.Rounds) {
		t.Errorf("promotion rounds differ: %+v vs %+v", r1.Rounds, r2.Rounds)
	}
}

// TestFarmedMatchesLocal: the adaptive loop dispatched through a farm queue
// promotes the same regions in the same order and lands on a bit-identical
// estimate — the PointRunner bit-identity contract extends to promotions.
func TestFarmedMatchesLocal(t *testing.T) {
	a, prog := ftAnalysis(t)

	local, err := Run(a, bp.LocalRunner{}, tableI, bp.MRUPrevWarmup, Options{TargetRel: 0.02})
	if err != nil {
		t.Fatal(err)
	}

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tracefile.Record(&buf, prog); err != nil {
		t.Fatal(err)
	}
	key, _, err := st.PutTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	q := farm.NewQueue(st, farm.Config{})
	defer q.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 3; i++ {
		go farm.RunLocalWorker(ctx, q, st, "w")
	}

	farmed, err := Run(a, farm.QueueRunner{Q: q, TraceKey: key}, tableI, bp.MRUPrevWarmup, Options{TargetRel: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if farmed.Estimate != local.Estimate {
		t.Errorf("farmed estimate differs from local:\n%+v\n%+v", farmed.Estimate, local.Estimate)
	}
	if !reflect.DeepEqual(farmed.Simulated, local.Simulated) {
		t.Errorf("farmed simulated %v != local %v", farmed.Simulated, local.Simulated)
	}
	if !reflect.DeepEqual(farmed.Rounds, local.Rounds) {
		t.Errorf("farmed rounds %+v != local %+v", farmed.Rounds, local.Rounds)
	}
}

// TestTargetReachedWithSavingsAndCoverage is the acceptance shape: a ±2%
// target on ft is met simulating strictly fewer regions than the program
// has, and the reported interval covers the ground-truth runtime.
func TestTargetReachedWithSavingsAndCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("ground-truth simulation skipped in -short mode")
	}
	a, prog := ftAnalysis(t)
	res, err := Run(a, bp.LocalRunner{}, tableI, bp.MRUPrevWarmup, Options{TargetRel: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatalf("±2%% target not met (final rel %.4f)", res.Estimate.RelTime())
	}
	if got := res.Estimate.RelTime(); got > 0.02 {
		t.Errorf("final relative CI %.4f exceeds target", got)
	}
	if len(res.Simulated) >= prog.Regions() {
		t.Errorf("simulated %d of %d regions: no sampling savings", len(res.Simulated), prog.Regions())
	}
	if len(res.Simulated) <= a.Selection.K {
		t.Errorf("simulated %d regions but selection already had %d points: no promotion happened", len(res.Simulated), a.Selection.K)
	}
	if res.InitialRel <= 0.02 {
		t.Errorf("initial rel CI %.4f already under target: promotion untested", res.InitialRel)
	}

	full, err := bp.SimulateFull(prog, tableI)
	if err != nil {
		t.Fatal(err)
	}
	actual := bp.ActualFrom(full)
	if !res.Estimate.CoversTime(actual.TimeNs) {
		t.Errorf("interval %v does not cover ground-truth runtime %v",
			res.Estimate.Time(), actual.TimeNs)
	}
}

// TestTighterTargetSimulatesMore: halving the target can only grow the
// simulated set, and the loose run's promotions are a prefix of the tight
// run's (the controller is deterministic, so a tighter target just keeps
// going).
func TestTighterTargetSimulatesMore(t *testing.T) {
	a, _ := ftAnalysis(t)
	loose, err := Run(a, bp.LocalRunner{}, tableI, bp.MRUPrevWarmup, Options{TargetRel: 0.08})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Run(a, bp.LocalRunner{}, tableI, bp.MRUPrevWarmup, Options{TargetRel: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if len(tight.Simulated) <= len(loose.Simulated) {
		t.Errorf("tight target simulated %d regions, loose %d: want strictly more",
			len(tight.Simulated), len(loose.Simulated))
	}
	for i, round := range loose.Rounds {
		if !reflect.DeepEqual(round.Promoted, tight.Rounds[i].Promoted) {
			t.Errorf("round %d: loose promoted %v, tight %v — not a prefix", i, round.Promoted, tight.Rounds[i].Promoted)
		}
	}
}

// TestStoppingRuleSingletons: when every cluster has exactly one member
// there is nothing to promote — the controller halts immediately with the
// target unmet rather than spinning.
func TestStoppingRuleSingletons(t *testing.T) {
	prog := workload.New("npb-is", 8, workload.WithScale(0.25))
	cfg := bp.DefaultConfig()
	cfg.Cluster.MaxK = prog.Regions()
	a, err := bp.Analyze(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Selection.K != prog.Regions() {
		t.Skipf("clustering merged regions (K=%d of %d)", a.Selection.K, prog.Regions())
	}
	res, err := Run(a, bp.LocalRunner{}, tableI, bp.MRUPrevWarmup, Options{TargetRel: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 0 {
		t.Errorf("singleton clusters promoted %d rounds, want 0", len(res.Rounds))
	}
	if res.Met {
		t.Error("an unreachable target reported as met")
	}
	if len(res.Simulated) != prog.Regions() {
		t.Errorf("simulated %d regions, want all %d", len(res.Simulated), prog.Regions())
	}
	// Fully simulated: zero sampling variance, so the margin is exactly the
	// irreducible floor.
	if got, want := res.Estimate.RelTime(), DefaultRelFloor; got != want {
		t.Errorf("fully simulated rel CI %v, want floor %v", got, want)
	}
}

// TestExhaustionIsExact: an unreachable target drains every cluster; the
// fully simulated reconstruction scales by exactly 1.0, so the estimate
// equals the plain sum of the per-point results.
func TestExhaustionIsExact(t *testing.T) {
	a, prog := ftAnalysis(t)
	res, err := Run(a, bp.LocalRunner{}, tableI, bp.MRUPrevWarmup, Options{TargetRel: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if res.Met {
		t.Error("target below the floor reported as met")
	}
	if len(res.Simulated) != prog.Regions() {
		t.Fatalf("simulated %d of %d regions", len(res.Simulated), prog.Regions())
	}
	var flat []bp.RegionResult
	for r := 0; r < prog.Regions(); r++ {
		flat = append(flat, res.Results[r])
	}
	want := bp.ActualFrom(flat)
	if rel := (res.Estimate.TimeNs - want.TimeNs) / want.TimeNs; rel > 1e-9 || rel < -1e-9 {
		t.Errorf("fully simulated estimate %v differs from point sum %v (rel %v)",
			res.Estimate.TimeNs, want.TimeNs, rel)
	}
}

// TestNoTargetNoPromotion: TargetRel <= 0 computes intervals on the
// standard selection without promoting anything.
func TestNoTargetNoPromotion(t *testing.T) {
	a, _ := ftAnalysis(t)
	res, err := Run(a, bp.LocalRunner{}, tableI, bp.MRUPrevWarmup, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 0 || res.Met {
		t.Errorf("no-target run promoted %d rounds, met=%v", len(res.Rounds), res.Met)
	}
	if len(res.Simulated) != len(a.Selection.Points) {
		t.Errorf("simulated %d regions, want the %d selected points", len(res.Simulated), len(a.Selection.Points))
	}
}
