package adaptive

import (
	"fmt"
	"math"
	"sort"
	"time"

	bp "barrierpoint"
	"barrierpoint/internal/reconstruct"
	"barrierpoint/internal/stats"
)

// Tuning defaults. SpreadAlpha converts a cluster's signature spread (L1
// distance, in [0, 2]) into a relative standard deviation of its members'
// per-instruction rates; RelFloor is the irreducible relative error term
// covering warmup approximation bias. Both are calibrated on the npb suite
// so that 95% intervals cover ground-truth runtime (see adaptive_test.go
// and the CI adaptive smoke).
const (
	DefaultConfidence  = 0.95
	DefaultBatchSize   = 4
	DefaultSpreadAlpha = 0.25
	DefaultPilotRel    = 0.5
	DefaultRelFloor    = 0.01
)

// Options configures interval computation and the adaptive controller.
// Zero values take the documented defaults.
type Options struct {
	// TargetRel is the target relative half-width of the runtime interval
	// (e.g. 0.02 for ±2%). <= 0 means no promotion: Run stops after the
	// initial barrierpoint simulation, still reporting intervals.
	TargetRel float64
	// Confidence is the two-sided level: 0.90, 0.95 or 0.99 (default 0.95).
	Confidence float64
	// BatchSize is the number of clusters promoted per round (default 4).
	BatchSize int
	// SpreadAlpha scales the single-member spread proxy
	// (default DefaultSpreadAlpha).
	SpreadAlpha float64
	// PilotRel is the assumed relative rate dispersion of a cluster that
	// has only one simulated member but more unsimulated ones — the pilot
	// prior that forces a second sample before the cluster's measured
	// variance is trusted (default DefaultPilotRel).
	PilotRel float64
	// RelFloor is the irreducible relative margin term
	// (default DefaultRelFloor; negative disables it).
	RelFloor float64
	// Observer, when non-nil, receives stage timings as the run proceeds:
	// "simulate-points" for the initial barrierpoint simulation,
	// "reconstruct" for each interval evaluation/assembly pass, and
	// "adaptive-round" for each promotion batch's simulation. Telemetry
	// only — it never influences the promotion sequence or the estimate.
	Observer func(stage string, d time.Duration)
}

func (o Options) withDefaults() Options {
	if o.Confidence == 0 {
		o.Confidence = DefaultConfidence
	}
	if o.BatchSize <= 0 {
		o.BatchSize = DefaultBatchSize
	}
	if o.SpreadAlpha == 0 {
		o.SpreadAlpha = DefaultSpreadAlpha
	}
	if o.PilotRel == 0 {
		o.PilotRel = DefaultPilotRel
	}
	if o.RelFloor == 0 {
		o.RelFloor = DefaultRelFloor
	}
	if o.RelFloor < 0 {
		o.RelFloor = 0
	}
	return o
}

// The additive metrics carried through reconstruction, in Estimate field
// order. timeIdx is the runtime slot the controller targets and ranks by.
const (
	nMetrics = 7
	timeIdx  = 1
)

func metricVec(r bp.RegionResult) [nMetrics]float64 {
	return [nMetrics]float64{
		float64(r.Cycles),
		r.TimeNs,
		float64(r.Counters.Instrs),
		float64(r.Counters.DRAMAccs),
		float64(r.Counters.L3Misses),
		float64(r.Counters.L2Misses),
		float64(r.Counters.L1DAccesses),
	}
}

func vecEstimate(v [nMetrics]float64) reconstruct.Estimate {
	return reconstruct.Estimate{
		Cycles: v[0], TimeNs: v[1], Instrs: v[2], DRAMAccs: v[3],
		L3Misses: v[4], L2Misses: v[5], L1DAccs: v[6],
	}
}

// model is the per-cluster view of a selection the sampler works over.
type model struct {
	sel      *bp.Selection
	clusters []clusterInfo // in sel.Points order
}

// clusterInfo is the static structure of one cluster.
type clusterInfo struct {
	point   bp.BarrierPoint
	members []int   // region indices, ascending
	weight  float64 // Σ member instruction weights, summed ascending
}

func newModel(sel *bp.Selection) (*model, error) {
	if len(sel.RegionWeights) != len(sel.Assignment) {
		return nil, fmt.Errorf("adaptive: selection has %d weights for %d regions",
			len(sel.RegionWeights), len(sel.Assignment))
	}
	m := &model{sel: sel, clusters: make([]clusterInfo, len(sel.Points))}
	byCluster := make(map[int]int, len(sel.Points)) // cluster id -> index
	for i, p := range sel.Points {
		m.clusters[i] = clusterInfo{point: p}
		byCluster[p.Cluster] = i
	}
	// Ascending region order everywhere: member lists and weight sums use
	// the same iteration order as cluster.Select, so a cluster's recomputed
	// weight — and therefore the scale clusterW/w_rep of a single-rep
	// cluster — is bit-identical to the stored Multiplier's operands.
	for r, c := range sel.Assignment {
		i, ok := byCluster[c]
		if !ok {
			return nil, fmt.Errorf("adaptive: region %d assigned to cluster %d with no barrierpoint", r, c)
		}
		m.clusters[i].members = append(m.clusters[i].members, r)
		m.clusters[i].weight += sel.RegionWeights[r]
	}
	return m, nil
}

// repDist returns region r's signature distance to its cluster
// representative; selections saved before distances existed degrade to 0
// (promotion order falls back to region index).
func (m *model) repDist(r int) float64 {
	if len(m.sel.RepDists) == 0 {
		return 0
	}
	return m.sel.RepDists[r]
}

// clusterEval is one cluster's reconstruction contribution and uncertainty
// given the currently simulated regions.
type clusterEval struct {
	contrib  [nMetrics]float64 // scaled metric contribution
	unsimW   float64           // unsimulated instruction weight
	rateVars [nMetrics]float64 // variance of the per-instruction rate estimate
	dof      float64           // degrees of freedom (Inf for proxy / exact)
	simmed   []int             // simulated members, ascending
	unsimmed []int             // unsimulated members, ascending
}

// timeVar is the cluster's contribution to runtime variance — the
// controller's ranking key.
func (e clusterEval) timeVar() float64 { return e.unsimW * e.unsimW * e.rateVars[timeIdx] }

// evaluate splits every cluster's members into simulated and not, and
// computes each cluster's contribution and variance under opts.
func (m *model) evaluate(results map[int]bp.RegionResult, opts Options) ([]clusterEval, error) {
	evals := make([]clusterEval, len(m.clusters))
	for i, c := range m.clusters {
		e := &evals[i]
		var simW float64
		var sumVec [nMetrics]float64
		for _, r := range c.members {
			if _, ok := results[r]; !ok {
				e.unsimmed = append(e.unsimmed, r)
				continue
			}
			e.simmed = append(e.simmed, r)
			simW += m.sel.RegionWeights[r]
			v := metricVec(results[r])
			for k := range sumVec {
				sumVec[k] += v[k]
			}
		}
		if len(e.simmed) == 0 {
			return nil, fmt.Errorf("adaptive: cluster %d has no simulated member", c.point.Cluster)
		}

		// Contribution. A single simulated representative uses the stored
		// Multiplier so the reconstruction is bit-identical to
		// reconstruct.Reconstruct; otherwise scale the simulated metric sum
		// by remaining weight. A fully simulated cluster's scale is exactly
		// 1.0: simW sums the same weights in the same ascending order as
		// c.weight.
		scale := 0.0
		if len(e.simmed) == 1 && e.simmed[0] == c.point.Region {
			scale = c.point.Multiplier
		} else if simW > 0 {
			scale = c.weight / simW
		}
		for k := range sumVec {
			e.contrib[k] = sumVec[k] * scale
		}

		// Uncertainty: only the extrapolation onto unsimulated weight is
		// uncertain (see doc.go).
		e.unsimW = c.weight - simW
		if e.unsimW < 0 {
			e.unsimW = 0
		}
		e.dof = math.Inf(1)
		if e.unsimW == 0 {
			continue
		}
		if n := len(e.simmed); n >= 2 {
			rates := make([]float64, n)
			for k := 0; k < nMetrics; k++ {
				for j, r := range e.simmed {
					if w := m.sel.RegionWeights[r]; w > 0 {
						rates[j] = metricVec(results[r])[k] / w
					} else {
						rates[j] = 0
					}
				}
				e.rateVars[k] = stats.Variance(rates) / float64(n)
			}
			e.dof = float64(n - 1)
		} else {
			// One simulated member, more unsimulated: no sample variance
			// exists yet, and signature spread alone badly understates rate
			// dispersion (near-identical signatures do not imply similar
			// per-instruction time: region size and warmup effects dominate).
			// Assume a large pilot prior so the controller draws a second
			// sample before trusting the cluster.
			rep := e.simmed[0]
			w := m.sel.RegionWeights[rep]
			if w > 0 {
				rel := opts.PilotRel + opts.SpreadAlpha*m.spreadOf(i)
				v := metricVec(results[rep])
				for k := 0; k < nMetrics; k++ {
					sigma := math.Abs(v[k]/w) * rel
					e.rateVars[k] = sigma * sigma
				}
			}
		}
	}
	return evals, nil
}

// spreadOf returns cluster i's signature spread.
func (m *model) spreadOf(i int) float64 { return m.clusters[i].point.Spread }

// intervals assembles the interval estimate from per-cluster evaluations:
// contributions sum in selection order, cluster variances propagate as the
// weighted sum Σ W_un²·var_rate, degrees of freedom combine per
// Welch–Satterthwaite, and the t-margin widens in quadrature by the
// relative floor.
func assemble(evals []clusterEval, opts Options) (reconstruct.IntervalEstimate, error) {
	var estVec, varVec [nMetrics]float64
	wuns := make([]float64, len(evals))
	rvars := make([]float64, len(evals))
	for i := range evals {
		for k := range estVec {
			estVec[k] += evals[i].contrib[k]
		}
		wuns[i] = evals[i].unsimW
	}
	for k := 0; k < nMetrics; k++ {
		for i := range evals {
			rvars[i] = evals[i].rateVars[k]
		}
		v, err := stats.WeightedSumVariance(wuns, rvars)
		if err != nil {
			return reconstruct.IntervalEstimate{}, err
		}
		varVec[k] = v
	}

	// Welch–Satterthwaite over the runtime variance components; proxy and
	// exact clusters (infinite dof) contribute nothing to the denominator.
	var den float64
	for i := range evals {
		if v := evals[i].timeVar(); v > 0 && !math.IsInf(evals[i].dof, 1) {
			den += v * v / evals[i].dof
		}
	}
	dof := math.Inf(1)
	if den > 0 {
		dof = varVec[timeIdx] * varVec[timeIdx] / den
	}
	t, err := stats.TCritical(dof, opts.Confidence)
	if err != nil {
		return reconstruct.IntervalEstimate{}, err
	}

	var marginVec [nMetrics]float64
	for k := 0; k < nMetrics; k++ {
		sampling := t * t * varVec[k]
		floor := opts.RelFloor * estVec[k]
		marginVec[k] = math.Sqrt(sampling + floor*floor)
	}
	return reconstruct.IntervalEstimate{
		Estimate:   vecEstimate(estVec),
		Margin:     vecEstimate(marginVec),
		Confidence: opts.Confidence,
	}, nil
}

// Intervals computes the interval estimate for an existing set of simulated
// region results — at minimum one simulated member (normally the
// representative) per cluster. It is the error-bar attachment every
// estimate gets, whether or not the adaptive controller ran.
func Intervals(sel *bp.Selection, results map[int]bp.RegionResult, opts Options) (reconstruct.IntervalEstimate, error) {
	opts = opts.withDefaults()
	m, err := newModel(sel)
	if err != nil {
		return reconstruct.IntervalEstimate{}, err
	}
	evals, err := m.evaluate(results, opts)
	if err != nil {
		return reconstruct.IntervalEstimate{}, err
	}
	return assemble(evals, opts)
}

// nextBatch picks the regions to promote this round: the top BatchSize
// clusters by runtime variance contribution (ties to the lower cluster id)
// each contribute their runner-up — the unsimulated member nearest the
// representative in signature distance (ties to the lower region index).
// The returned batch is in ascending region order. Empty means exhausted.
func (m *model) nextBatch(evals []clusterEval, batchSize int) []int {
	order := make([]int, 0, len(evals))
	for i := range evals {
		if len(evals[i].unsimmed) > 0 {
			order = append(order, i)
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		va, vb := evals[order[a]].timeVar(), evals[order[b]].timeVar()
		if va != vb {
			return va > vb
		}
		return m.clusters[order[a]].point.Cluster < m.clusters[order[b]].point.Cluster
	})
	if len(order) > batchSize {
		order = order[:batchSize]
	}
	var batch []int
	for _, i := range order {
		best := -1
		for _, r := range evals[i].unsimmed {
			if best == -1 || m.repDist(r) < m.repDist(best) {
				best = r
			}
		}
		batch = append(batch, best)
	}
	sort.Ints(batch)
	return batch
}

// Round records one promotion round of the controller.
type Round struct {
	Promoted []int   `json:"promoted"` // regions promoted, ascending
	Rel      float64 `json:"rel"`      // runtime relative half-width after merging
}

// Result is the outcome of an adaptive run.
type Result struct {
	Estimate   reconstruct.IntervalEstimate
	Results    map[int]bp.RegionResult // every simulated region's result
	Simulated  []int                   // simulated region indices, ascending
	Rounds     []Round                 // promotion rounds, in order
	Met        bool                    // target reached (false: exhausted or no target)
	InitialRel float64                 // runtime relative half-width before any promotion
}

// Run executes the adaptive sampling loop: simulate the selected
// barrierpoints through runner, then repeatedly promote the runner-up
// regions of the most uncertain clusters — as one batch per round through
// the same runner, so promotions farm out exactly like the initial points —
// until the runtime interval's relative half-width reaches opts.TargetRel
// or every cluster is fully simulated. The promotion sequence and final
// estimate are pure functions of the selection, results and options:
// byte-identical across runs and across runners.
func Run(a *bp.Analysis, runner bp.PointRunner, mc bp.MachineConfig, mode bp.WarmupMode, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	observe := func(stage string, t0 time.Time) {
		if opts.Observer != nil {
			opts.Observer(stage, time.Since(t0))
		}
	}
	m, err := newModel(a.Selection)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	results, err := a.SimulatePointsWith(runner, mc, mode)
	observe("simulate-points", t0)
	if err != nil {
		return nil, err
	}

	res := &Result{Results: results}
	for {
		t0 := time.Now()
		evals, err := m.evaluate(results, opts)
		if err != nil {
			return nil, err
		}
		ie, err := assemble(evals, opts)
		observe("reconstruct", t0)
		if err != nil {
			return nil, err
		}
		res.Estimate = ie
		rel := ie.RelTime()
		if len(res.Rounds) == 0 {
			res.InitialRel = rel
		} else {
			res.Rounds[len(res.Rounds)-1].Rel = rel
		}
		if opts.TargetRel > 0 && rel <= opts.TargetRel {
			res.Met = true
			break
		}
		if opts.TargetRel <= 0 {
			break
		}
		batch := m.nextBatch(evals, opts.BatchSize)
		if len(batch) == 0 {
			break // exhausted: every cluster fully simulated
		}
		t1 := time.Now()
		promoted, err := runner.RunPoints(a.Program, batch, mc, mode)
		observe("adaptive-round", t1)
		if err != nil {
			return nil, fmt.Errorf("adaptive: promoting regions %v: %w", batch, err)
		}
		for r, rr := range promoted {
			results[r] = rr
		}
		res.Rounds = append(res.Rounds, Round{Promoted: batch})
	}

	res.Simulated = make([]int, 0, len(results))
	for r := range results {
		res.Simulated = append(res.Simulated, r)
	}
	sort.Ints(res.Simulated)
	return res, nil
}
