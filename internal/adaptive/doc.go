// Package adaptive adds statistical confidence to barrierpoint estimates
// and drives simulation effort from it: every reconstructed metric gets a
// confidence interval, and an adaptive controller promotes additional
// regions to detailed simulation — cheapest-first within the most uncertain
// clusters — until a target relative interval is met or the selection is
// exhausted.
//
// # Lineage
//
// The approach is SMARTS-style matched sampling (Wunderlich et al., ISCA
// 2003) transplanted onto BarrierPoint's clustered region sampling. SMARTS
// sizes a systematic sample of tiny instruction windows from the measured
// variance of the metric and reports a confidence interval with the
// estimate; BarrierPoint instead simulates one representative per cluster
// of inter-barrier regions and extrapolates with instruction-count
// multipliers (paper §III-D), which yields a point estimate with no error
// bar. This package closes that gap: the cluster structure becomes the
// stratification of a stratified sampling design, each cluster's simulated
// members become its stratum sample, and the per-cluster sampling variance
// propagates through the linear reconstruction exactly as in stratified
// mean estimation.
//
// # Variance model
//
// Reconstruction is linear in per-instruction rates. For cluster c with
// instruction weight W_c, simulated member set S_c carrying weight
// W_sim(c), and per-member rates x_r = metric_r / w_r, the cluster
// contributes the simulated members' metrics verbatim plus an
// extrapolation of the unsimulated weight W_un(c) = W_c − W_sim(c) at the
// simulated mean rate. Only the extrapolated part is uncertain:
//
//   - n ≥ 2 simulated members: the sample variance s² of the rates gives
//     var_c = W_un(c)² · s²/n with n−1 degrees of freedom — the standard
//     stratum variance of stratified sampling.
//   - n = 1 (the initial state of every cluster): there is no sample
//     variance, so the cluster gets a pilot prior
//     σ_rate = |x_rep| · (PilotRel + SpreadAlpha · Spread), where Spread is
//     the instruction-weighted mean L1 signature distance from members to
//     the representative (in [0, 2]). Signature spread alone badly
//     understates rate dispersion — near-identical signatures do not imply
//     similar per-instruction time, because region size and warmup effects
//     dominate — so PilotRel keeps the prior large enough that the
//     controller always draws a second sample from a multi-member cluster
//     before trusting it, the pilot phase of a SMARTS-style design. Proxy
//     variances get infinite degrees of freedom (a z quantile): they are
//     priors, not estimates.
//   - Fully simulated clusters contribute exactly zero variance, and their
//     reconstruction is exact (scale is exactly 1.0).
//
// Cluster variances combine as Σ var_c (strata are independent), the
// combined degrees of freedom follow Welch–Satterthwaite, and the t-based
// margin is widened in quadrature by RelFloor · estimate — an irreducible
// relative term covering warmup approximation error, which more sampling
// cannot shrink (it is a bias of every point simulation, not a sampling
// error). Derived metrics (IPC, APKI) get delta-method intervals from
// their numerator and denominator margins, ignoring their positive
// correlation — conservative, never anti-conservative.
//
// # The controller
//
// Run starts from the standard one-representative-per-cluster simulation
// and loops: compute intervals; stop if the runtime interval's relative
// half-width meets the target (or no cluster has an unsimulated member
// left); otherwise rank clusters by their runtime variance contribution
// and promote each top cluster's runner-up — its unsimulated member
// closest in signature distance to the representative — dispatching the
// whole batch through the caller's PointRunner, so promotions scale
// horizontally across a simulation farm exactly like the initial points.
// Every ranking and tie-break is deterministic (variance, then cluster id;
// distance, then region index), so the same trace, selection and target
// produce byte-identical promotion sequences and final estimates on any
// runner.
package adaptive
