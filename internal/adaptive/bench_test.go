package adaptive

import (
	"testing"

	bp "barrierpoint"
)

// BenchmarkIntervalsOnly is the no-target baseline: the standard
// one-rep-per-cluster simulation plus interval assembly, no promotion.
func BenchmarkIntervalsOnly(b *testing.B) {
	a, _ := ftAnalysis(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(a, bp.LocalRunner{}, tableI, bp.MRUPrevWarmup, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdaptiveTargetCI measures the adaptive-round overhead of the
// acceptance target (±2% on npb-ft) and reports the promotion effort as
// custom metrics, which cmd/benchjson folds into the benchmark record.
func BenchmarkAdaptiveTargetCI(b *testing.B) {
	a, _ := ftAnalysis(b)
	b.ResetTimer()
	var rounds, points int
	for i := 0; i < b.N; i++ {
		res, err := Run(a, bp.LocalRunner{}, tableI, bp.MRUPrevWarmup, Options{TargetRel: 0.02})
		if err != nil {
			b.Fatal(err)
		}
		rounds += len(res.Rounds)
		points += len(res.Simulated)
	}
	b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
	b.ReportMetric(float64(points)/float64(b.N), "points/op")
}
