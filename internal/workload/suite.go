package workload

import (
	"fmt"
	"sort"
)

// KB and MB are byte-size helpers for kernel working sets.
const (
	KB = 1 << 10
	MB = 1 << 20
)

// arrayBase computes a distinct address range per (benchmark, array).
// Benchmarks are 4 TiB apart and arrays 16 GiB apart, so partitioned
// per-thread working sets can never collide.
func arrayBase(bench, array int) uint64 {
	return uint64(bench+1)<<42 + uint64(array)<<34
}

// Option configures program construction.
type Option func(*options)

type options struct {
	scale float64
}

// WithScale multiplies every kernel's iteration count by s (0 < s <= 1 for
// scaled-down test runs). Region counts and phase structure are unchanged.
func WithScale(s float64) Option {
	return func(o *options) { o.scale = s }
}

func applyOptions(opts []Option) options {
	o := options{scale: 1}
	for _, f := range opts {
		f(&o)
	}
	return o
}

// constructor builds one benchmark at a given thread count and work scale.
type constructor func(threads int, scale float64) *Program

var registry = map[string]constructor{
	"npb-bt":           buildBT,
	"npb-ep":           buildEP,
	"npb-ua":           buildUA,
	"npb-cg":           buildCG,
	"npb-ft":           buildFT,
	"npb-is":           buildIS,
	"npb-lu":           buildLU,
	"npb-mg":           buildMG,
	"npb-sp":           buildSP,
	"parsec-bodytrack": buildBodytrack,
}

// extended marks benchmarks outside the paper's evaluated suite (the two
// NPB codes the paper excluded; see buildUA and buildEP).
var extended = map[string]bool{"npb-ua": true, "npb-ep": true}

// Names returns the paper's evaluated benchmark set in plotting order.
// The extended workloads (npb-ua, npb-ep) are constructible via New but
// excluded here so the experiment harness matches the paper's figures.
func Names() []string {
	ns := make([]string, 0, len(registry))
	for n := range registry {
		if !extended[n] {
			ns = append(ns, n)
		}
	}
	sort.Slice(ns, func(i, j int) bool {
		// parsec first, as in the paper's figures.
		pi, pj := ns[i][:3] == "par", ns[j][:3] == "par"
		if pi != pj {
			return pi
		}
		return ns[i] < ns[j]
	})
	return ns
}

// Exists reports whether name is a constructible benchmark, including the
// extended workloads that Names omits.
func Exists(name string) bool {
	_, ok := registry[name]
	return ok
}

// New constructs the named benchmark for the given thread count.
// It panics on unknown names; use Names for the valid set.
func New(name string, threads int, opts ...Option) *Program {
	c, ok := registry[name]
	if !ok {
		panic(fmt.Sprintf("workload: unknown benchmark %q", name))
	}
	o := applyOptions(opts)
	return c(threads, o.scale)
}

// perThread returns a helper dividing a fixed total array size into
// per-thread partitions (strong scaling: the data set does not grow with
// the thread count), floored at one cache line.
func perThread(threads int) func(total uint64) uint64 {
	return func(total uint64) uint64 {
		w := total / uint64(threads)
		if w < 64 {
			w = 64
		}
		return w
	}
}

// it scales an iteration count, keeping it at least one per thread.
func it(base int, scale float64, threads int) int {
	n := int(float64(base) * scale)
	if n < threads {
		n = threads
	}
	return n
}

// buildBT models NPB BT: an ADI solver time-stepping loop. 1001 regions:
// one initialization plus 200 time steps of (rhs, x_solve, y_solve,
// z_solve, add). All phases operate on the same solution grid U (the three
// solves differ in sweep direction/stride), with the RHS array written by
// rhs and read by add; initialization touches both, so only capacity
// effects — not cold data — differentiate instances of a phase.
func buildBT(threads int, scale float64) *Program {
	b := newBuilder("npb-bt", threads)
	baseU := arrayBase(0, 0)
	baseR := arrayBase(0, 1)
	n := func(v int) int { return it(v, scale, threads) }
	per := perThread(threads)

	initU := b.kernel(Kernel{Name: "init_u", Pattern: Random,
		Base: baseU, WSet: per(256 * KB), BodyInstrs: 16, Accs: 6, WriteFrac: 0.9})
	initR := b.kernel(Kernel{Name: "init_rhs", Pattern: Sequential,
		Base: baseR, WSet: per(256 * KB), BodyInstrs: 12, Accs: 6, WriteFrac: 0.9})
	rhs := b.kernel(Kernel{Name: "compute_rhs", Pattern: Sequential,
		Base: baseR, WSet: per(256 * KB), BodyInstrs: 24, Accs: 8, WriteFrac: 0.3})
	xs := b.kernel(Kernel{Name: "x_solve", Pattern: Sequential,
		Base: baseU, WSet: per(256 * KB), BodyInstrs: 18, Accs: 6, WriteFrac: 0.4})
	ys := b.kernel(Kernel{Name: "y_solve", Pattern: Strided, Stride: 512,
		Base: baseU, WSet: per(256 * KB), BodyInstrs: 18, Accs: 6, WriteFrac: 0.4})
	zs := b.kernel(Kernel{Name: "z_solve", Pattern: Strided, Stride: 4096,
		Base: baseU, WSet: per(256 * KB), BodyInstrs: 18, Accs: 6, WriteFrac: 0.4})
	add := b.kernel(Kernel{Name: "add", Pattern: Sequential,
		Base: baseR, WSet: per(256 * KB), BodyInstrs: 12, Accs: 4, WriteFrac: 0.5})

	b.region(Exec{K: initU, Iters: n(4800)}, Exec{K: initR, Iters: n(4800)})
	for step := 0; step < 200; step++ {
		// Every fourth step runs a shorter rhs (boundary-only update),
		// exercising same-cluster/different-length scaling.
		rhsScale := 1.0
		if step%4 == 3 {
			rhsScale = 0.5
		}
		b.region(Exec{K: rhs, Iters: n(4800), Scale: rhsScale})
		b.region(Exec{K: xs, Iters: n(4800)})
		b.region(Exec{K: ys, Iters: n(4800)})
		b.region(Exec{K: zs, Iters: n(4800)})
		b.region(Exec{K: add, Iters: n(3600)})
	}
	return b.build()
}

// buildCG models NPB CG: conjugate gradient. The sparse matrix is a shared
// 24 MB working set randomly gathered by spmv — it exceeds the 8-core LLC
// (8 MB) but fits the 32-core aggregate LLC (32 MB), producing the paper's
// superlinear 8→32 scaling (Fig. 8). 46 regions: one init plus 15
// iterations of (spmv, dot/axpy, norm), all over the same matrix/vectors.
func buildCG(threads int, scale float64) *Program {
	b := newBuilder("npb-cg", threads)
	baseM := arrayBase(1, 0)
	baseV := arrayBase(1, 1)
	baseAcc := arrayBase(1, 2)
	baseX := arrayBase(1, 3)
	n := func(v int) int { return it(v, scale, threads) }
	per := perThread(threads)

	matrixSlice := uint64(24*MB) / uint64(threads) // row-partitioned matrix
	initM := b.kernel(Kernel{Name: "makea", Pattern: Sequential,
		Base: baseM, WSet: matrixSlice, BodyInstrs: 14, Accs: 8, WriteFrac: 0.9})
	initV := b.kernel(Kernel{Name: "init_vectors", Pattern: Sequential,
		Base: baseV, WSet: per(512 * KB), BodyInstrs: 12, Accs: 6, WriteFrac: 0.9})
	initX := b.kernel(Kernel{Name: "init_x", Pattern: Sequential, Shared: true,
		Base: baseX, WSet: 2 * MB, BodyInstrs: 12, Accs: 6, WriteFrac: 0.9})
	spmv := b.kernel(Kernel{Name: "spmv", Pattern: Sequential,
		Base: baseM, WSet: matrixSlice, BodyInstrs: 20, Accs: 8})
	gather := b.kernel(Kernel{Name: "gather_x", Pattern: Random, Shared: true,
		Base: baseX, WSet: 2 * MB, BodyInstrs: 18, Accs: 6})
	dax := b.kernel(Kernel{Name: "dot_axpy", Pattern: Sequential,
		Base: baseV, WSet: per(512 * KB), BodyInstrs: 20, Accs: 8, WriteFrac: 0.25})
	norm := b.kernel(Kernel{Name: "norm", Pattern: Reduction,
		Base: baseV, WSet: per(512 * KB), BodyInstrs: 16, Accs: 6,
		SharedAcc: baseAcc})
	resid := b.kernel(Kernel{Name: "initial_residual", Pattern: Sequential,
		Base: baseV, WSet: per(512 * KB), BodyInstrs: 18, Accs: 8, WriteFrac: 0.6})

	b.region(Exec{K: initM, Iters: n(49152)}, Exec{K: initV, Iters: n(8000)},
		Exec{K: initX, Iters: n(44000)})
	for i := 0; i < 15; i++ {
		// CG's first iteration additionally computes the initial residual
		// r0 = b - A·x0, giving it a distinct code signature, exactly as
		// the real benchmark's untimed first iteration does.
		if i == 0 {
			b.region(Exec{K: spmv, Iters: n(49152)}, Exec{K: gather, Iters: n(8000)},
				Exec{K: resid, Iters: n(8000)})
			b.region(Exec{K: dax, Iters: n(8000)}, Exec{K: resid, Iters: n(4000)})
			b.region(Exec{K: norm, Iters: n(4000)})
			continue
		}
		b.region(Exec{K: spmv, Iters: n(49152)}, Exec{K: gather, Iters: n(8000)})
		b.region(Exec{K: dax, Iters: n(8000)})
		b.region(Exec{K: norm, Iters: n(4000)})
	}
	return b.build()
}

// buildFT models NPB FT: a 3-D FFT over one complex grid U. 34 regions:
// four distinct setup regions (which initialize U) plus six iterations of
// (evolve, fft_x, fft_y, fft_z, checksum), all reading and writing U in
// different orders. The paper finds exactly nine barrierpoints for ft;
// this schedule has nine distinct behaviours by construction.
func buildFT(threads int, scale float64) *Program {
	b := newBuilder("npb-ft", threads)
	baseU := arrayBase(2, 0)
	baseAcc := arrayBase(2, 1)
	n := func(v int) int { return it(v, scale, threads) }
	per := perThread(threads)
	ws := per(1 * MB)

	setup1 := b.kernel(Kernel{Name: "compute_indexmap", Pattern: Sequential,
		Base: baseU, WSet: ws, BodyInstrs: 14, Accs: 4, WriteFrac: 0.9})
	setup2 := b.kernel(Kernel{Name: "compute_initial_conditions", Pattern: Random,
		Base: baseU, WSet: ws, BodyInstrs: 18, Accs: 6, WriteFrac: 0.9})
	setup3 := b.kernel(Kernel{Name: "fft_init", Pattern: Sequential,
		Base: baseU, WSet: per(512 * KB), PartStride: ws, BodyInstrs: 30, Accs: 4, WriteFrac: 0.5})
	setup4 := b.kernel(Kernel{Name: "warmup_fft", Pattern: Strided, Stride: 1024,
		Base: baseU, WSet: ws, BodyInstrs: 24, Accs: 6, WriteFrac: 0.5})
	evolve := b.kernel(Kernel{Name: "evolve", Pattern: Sequential,
		Base: baseU, WSet: ws, BodyInstrs: 20, Accs: 6, WriteFrac: 0.5})
	fftx := b.kernel(Kernel{Name: "fft_x", Pattern: Sequential,
		Base: baseU, WSet: ws, BodyInstrs: 28, Accs: 8, WriteFrac: 0.5})
	ffty := b.kernel(Kernel{Name: "fft_y", Pattern: Strided, Stride: 1024,
		Base: baseU, WSet: ws, BodyInstrs: 28, Accs: 8, WriteFrac: 0.5})
	fftz := b.kernel(Kernel{Name: "fft_z", Pattern: Strided, Stride: 8192,
		Base: baseU, WSet: ws, BodyInstrs: 28, Accs: 8, WriteFrac: 0.5})
	cksum := b.kernel(Kernel{Name: "checksum", Pattern: Reduction,
		Base: baseU, WSet: ws, BodyInstrs: 14, Accs: 6, SharedAcc: baseAcc})

	b.region(Exec{K: setup1, Iters: n(8000)})
	b.region(Exec{K: setup2, Iters: n(8000)})
	b.region(Exec{K: setup3, Iters: n(4000)})
	b.region(Exec{K: setup4, Iters: n(8000)})
	for i := 0; i < 6; i++ {
		b.region(Exec{K: evolve, Iters: n(8000)})
		b.region(Exec{K: fftx, Iters: n(8000)})
		b.region(Exec{K: ffty, Iters: n(8000)})
		b.region(Exec{K: fftz, Iters: n(8000)})
		b.region(Exec{K: cksum, Iters: n(2000)})
	}
	return b.build()
}

// buildIS models NPB IS: bucket sort of integer keys. 11 regions, each a
// distinct behaviour (key generation, nine ranking passes over shared
// histograms of doubling size, verification) — matching the paper's
// finding that every is region is its own barrierpoint (multiplier 1.0).
func buildIS(threads int, scale float64) *Program {
	b := newBuilder("npb-is", threads)
	base := func(a int) uint64 { return arrayBase(3, a) }
	n := func(v int) int { return it(v, scale, threads) }
	per := perThread(threads)

	keygen := b.kernel(Kernel{Name: "create_seq", Pattern: Random,
		Base: base(0), WSet: per(4 * MB), BodyInstrs: 16, Accs: 8, WriteFrac: 0.9})
	b.region(Exec{K: keygen, Iters: n(16000)})
	for i := 0; i < 9; i++ {
		ws := uint64(128*KB) << i // 128 KB .. 32 MB shared histogram
		rank := b.kernel(Kernel{Name: fmt.Sprintf("rank_%d", i),
			Pattern: Random, Shared: true,
			Base: base(1 + i), WSet: ws,
			BodyInstrs: 18, Accs: 8, WriteFrac: 0.3})
		b.region(Exec{K: rank, Iters: n(16000)})
	}
	verify := b.kernel(Kernel{Name: "full_verify", Pattern: Sequential,
		Base: base(0), WSet: per(4 * MB), BodyInstrs: 12, Accs: 4})
	b.region(Exec{K: verify, Iters: n(8000)})
	return b.build()
}

// buildLU models NPB LU: an SSOR solver over one grid U plus an RHS array.
// 503 regions: three setup regions (initializing both arrays) plus 100
// time steps of (jacld, blts, jacu, buts, rhs). The triangular sweeps
// carry mild wavefront imbalance.
func buildLU(threads int, scale float64) *Program {
	b := newBuilder("npb-lu", threads)
	baseU := arrayBase(4, 0)
	baseR := arrayBase(4, 1)
	n := func(v int) int { return it(v, scale, threads) }
	per := perThread(threads)
	wave := []float64{1.15, 0.95, 1.0, 0.9}

	s1 := b.kernel(Kernel{Name: "setbv", Pattern: Sequential,
		Base: baseU, WSet: per(256 * KB), BodyInstrs: 12, Accs: 4, WriteFrac: 0.9})
	s2 := b.kernel(Kernel{Name: "setiv", Pattern: Strided, Stride: 1024,
		Base: baseU, WSet: per(256 * KB), BodyInstrs: 14, Accs: 6, WriteFrac: 0.9})
	s3 := b.kernel(Kernel{Name: "erhs", Pattern: Sequential,
		Base: baseR, WSet: per(512 * KB), BodyInstrs: 20, Accs: 6, WriteFrac: 0.9})
	jacld := b.kernel(Kernel{Name: "jacld", Pattern: Sequential,
		Base: baseU, WSet: per(256 * KB), BodyInstrs: 40, Accs: 4, WriteFrac: 0.5})
	blts := b.kernel(Kernel{Name: "blts", Pattern: Strided, Stride: 512,
		Base: baseU, WSet: per(256 * KB), BodyInstrs: 18, Accs: 6, WriteFrac: 0.4})
	jacu := b.kernel(Kernel{Name: "jacu", Pattern: Sequential,
		Base: baseU, WSet: per(256 * KB), BodyInstrs: 40, Accs: 4, WriteFrac: 0.5})
	buts := b.kernel(Kernel{Name: "buts", Pattern: Strided, Stride: 2048,
		Base: baseU, WSet: per(256 * KB), BodyInstrs: 18, Accs: 6, WriteFrac: 0.4})
	rhs := b.kernel(Kernel{Name: "rhs", Pattern: Sequential,
		Base: baseR, WSet: per(512 * KB), BodyInstrs: 24, Accs: 8, WriteFrac: 0.3})

	b.region(Exec{K: s1, Iters: n(4000)})
	b.region(Exec{K: s2, Iters: n(4000)})
	b.region(Exec{K: s3, Iters: n(4000)})
	for step := 0; step < 100; step++ {
		b.region(Exec{K: jacld, Iters: n(3600)})
		b.region(Exec{K: blts, Iters: n(3600), Imbalance: wave})
		b.region(Exec{K: jacu, Iters: n(3600)})
		b.region(Exec{K: buts, Iters: n(3600), Imbalance: wave})
		b.region(Exec{K: rhs, Iters: n(3600)})
	}
	return b.build()
}

// buildMG models NPB MG: a multigrid V-cycle. 245 regions: five setup
// regions (initializing every grid level) plus 20 V-cycles of 12 smoothing
// sweeps descending and ascending the level hierarchy. All smoothing
// regions run the *same code* (one kernel id) on per-level grids whose
// working sets halve per level — BBV-identical after normalization but
// LDV-distinct, the case motivating combined signatures (paper §III-A2,
// Fig. 5).
func buildMG(threads int, scale float64) *Program {
	b := newBuilder("npb-mg", threads)
	base := func(a int) uint64 { return arrayBase(5, a) }
	n := func(v int) int { return it(v, scale, threads) }
	const levels = 6
	gridBase := func(l int) uint64 { return base(2 + l) }
	per := perThread(threads)
	gridWS := func(l int) uint64 { return per(uint64(1*MB) >> l) }

	zero := b.kernel(Kernel{Name: "zero3", Pattern: Sequential,
		Base: gridBase(0), WSet: gridWS(0), BodyInstrs: 10, Accs: 4, WriteFrac: 1.0})
	seed := b.kernel(Kernel{Name: "zran3", Pattern: Random,
		Base: gridBase(0), WSet: gridWS(0), BodyInstrs: 18, Accs: 6, WriteFrac: 0.9})
	normK := b.kernel(Kernel{Name: "norm2u3", Pattern: Reduction,
		Base: gridBase(0), WSet: gridWS(0), BodyInstrs: 14, Accs: 6, SharedAcc: base(0)})

	// Coarse-grid initialization: one region touching every level once.
	coarseInit := make([]Exec, 0, levels-1)
	for l := 1; l < levels; l++ {
		k := b.kernel(Kernel{Name: fmt.Sprintf("init_grid_%d", l), Pattern: Sequential,
			Base: gridBase(l), WSet: gridWS(l), BodyInstrs: 10, Accs: 4, WriteFrac: 1.0})
		coarseInit = append(coarseInit, Exec{K: k, Iters: n(16000 >> l)})
	}
	interpInit := b.kernel(Kernel{Name: "interp_init", Pattern: Strided, Stride: 512,
		Base: gridBase(0), WSet: gridWS(0), BodyInstrs: 16, Accs: 6, WriteFrac: 0.5})

	// One smoother kernel; per-level variants share its id (same code).
	smooth := b.kernel(Kernel{Name: "psinv", Pattern: Sequential,
		Base: gridBase(0), WSet: gridWS(0), BodyInstrs: 20, Accs: 6, WriteFrac: 0.5})
	levelKernel := make([]*Kernel, levels)
	for l := 0; l < levels; l++ {
		v := *smooth // same ID: identical static code
		v.Base = gridBase(l)
		v.WSet = gridWS(l)
		levelKernel[l] = &v
	}

	b.region(Exec{K: zero, Iters: n(16000)})
	b.region(Exec{K: seed, Iters: n(16000)})
	b.region(Exec{K: normK, Iters: n(4000)})
	b.region(coarseInit...)
	b.region(Exec{K: interpInit, Iters: n(4000)})
	for cycle := 0; cycle < 20; cycle++ {
		for l := 0; l < levels; l++ { // restrict down
			b.region(Exec{K: levelKernel[l], Iters: n(16000 >> l)})
		}
		for l := levels - 1; l >= 0; l-- { // prolongate up
			b.region(Exec{K: levelKernel[l], Iters: n(16000 >> l)})
		}
	}
	return b.build()
}

// buildSP models NPB SP: a scalar pentadiagonal solver over one grid U and
// an RHS array. 3601 regions: one init plus 400 time steps of nine phases.
// The directional solves alternate between full- and half-length instances
// across steps, producing the fractional multipliers of Table III.
func buildSP(threads int, scale float64) *Program {
	b := newBuilder("npb-sp", threads)
	baseU := arrayBase(6, 0)
	baseR := arrayBase(6, 1)
	n := func(v int) int { return it(v, scale, threads) }
	per := perThread(threads)

	initU := b.kernel(Kernel{Name: "init_u", Pattern: Random,
		Base: baseU, WSet: per(128 * KB), BodyInstrs: 16, Accs: 6, WriteFrac: 0.9})
	initR := b.kernel(Kernel{Name: "init_rhs", Pattern: Sequential,
		Base: baseR, WSet: per(256 * KB), BodyInstrs: 12, Accs: 6, WriteFrac: 0.9})
	txinvr := b.kernel(Kernel{Name: "txinvr", Pattern: Sequential,
		Base: baseU, WSet: per(128 * KB), BodyInstrs: 14, Accs: 4, WriteFrac: 0.5})
	xs := b.kernel(Kernel{Name: "x_solve", Pattern: Sequential,
		Base: baseU, WSet: per(128 * KB), BodyInstrs: 16, Accs: 6, WriteFrac: 0.4})
	ys := b.kernel(Kernel{Name: "y_solve", Pattern: Strided, Stride: 512,
		Base: baseU, WSet: per(128 * KB), BodyInstrs: 16, Accs: 6, WriteFrac: 0.4})
	zs := b.kernel(Kernel{Name: "z_solve", Pattern: Strided, Stride: 4096,
		Base: baseU, WSet: per(128 * KB), BodyInstrs: 16, Accs: 6, WriteFrac: 0.4})
	rhs1 := b.kernel(Kernel{Name: "compute_rhs_a", Pattern: Sequential,
		Base: baseR, WSet: per(256 * KB), BodyInstrs: 22, Accs: 8, WriteFrac: 0.3})
	rhs2 := b.kernel(Kernel{Name: "compute_rhs_b", Pattern: Random,
		Base: baseR, WSet: per(256 * KB), BodyInstrs: 18, Accs: 6, WriteFrac: 0.3})
	add := b.kernel(Kernel{Name: "add", Pattern: Sequential,
		Base: baseU, WSet: per(128 * KB), BodyInstrs: 12, Accs: 4, WriteFrac: 0.5})

	b.region(Exec{K: initU, Iters: n(3600)}, Exec{K: initR, Iters: n(3600)})
	for step := 0; step < 400; step++ {
		solveScale := 1.0
		if step%10 == 9 {
			solveScale = 0.5 // periodic short relaxation steps
		}
		b.region(Exec{K: rhs1, Iters: n(1920)})
		b.region(Exec{K: rhs2, Iters: n(1920)})
		b.region(Exec{K: txinvr, Iters: n(1920)})
		b.region(Exec{K: xs, Iters: n(1920), Scale: solveScale})
		b.region(Exec{K: add, Iters: n(960)})
		b.region(Exec{K: ys, Iters: n(1920), Scale: solveScale})
		b.region(Exec{K: zs, Iters: n(1920), Scale: solveScale})
		b.region(Exec{K: txinvr, Iters: n(960)})
		b.region(Exec{K: add, Iters: n(1920)})
	}
	return b.build()
}

// buildBodytrack models PARSEC bodytrack: per-frame particle-filter
// tracking. 89 regions: one model-load region plus 8 frames of 11 stages.
// The image-processing stages share the frame buffers (overwritten every
// frame at the same addresses, as in the real code); the particle
// weighting stages gather from a large shared model and carry per-thread
// load imbalance, exercising the concatenated (not summed) multi-threaded
// signature combination (paper §III-A4).
func buildBodytrack(threads int, scale float64) *Program {
	b := newBuilder("parsec-bodytrack", threads)
	baseImg := arrayBase(7, 0) // frame/edge buffers, partitioned
	baseW := arrayBase(7, 1)   // shared appearance model
	baseP := arrayBase(7, 2)   // particle state
	baseAcc := arrayBase(7, 3) // weight accumulator
	baseWin := arrayBase(7, 4) // inside-model buffer
	n := func(v int) int { return it(v, scale, threads) }
	per := perThread(threads)
	imb := []float64{1.4, 0.7, 1.1, 0.8}

	load := b.kernel(Kernel{Name: "load_model", Pattern: Sequential, Shared: true,
		Base: baseW, WSet: 2 * MB, BodyInstrs: 14, Accs: 6, WriteFrac: 0.9})
	initImg := b.kernel(Kernel{Name: "alloc_frame_buffers", Pattern: Sequential,
		Base: baseImg, WSet: per(1 * MB), BodyInstrs: 10, Accs: 6, WriteFrac: 1.0})
	initP := b.kernel(Kernel{Name: "init_particles", Pattern: Sequential,
		Base: baseP, WSet: per(512 * KB), BodyInstrs: 12, Accs: 6, WriteFrac: 1.0})
	initWin := b.kernel(Kernel{Name: "load_inside_model", Pattern: Sequential, Shared: true,
		Base: baseWin, WSet: 1 * MB, BodyInstrs: 12, Accs: 6, WriteFrac: 1.0})
	stages := []*Kernel{
		b.kernel(Kernel{Name: "edge_detect", Pattern: Sequential,
			Base: baseImg, WSet: per(1 * MB), BodyInstrs: 20, Accs: 6, WriteFrac: 0.4}),
		b.kernel(Kernel{Name: "edge_smooth_x", Pattern: Sequential,
			Base: baseImg, WSet: per(1 * MB), BodyInstrs: 18, Accs: 6, WriteFrac: 0.5}),
		b.kernel(Kernel{Name: "edge_smooth_y", Pattern: Strided, Stride: 1024,
			Base: baseImg, WSet: per(1 * MB), BodyInstrs: 18, Accs: 6, WriteFrac: 0.5}),
		b.kernel(Kernel{Name: "binary_image", Pattern: Sequential,
			Base: baseImg, WSet: per(512 * KB), PartStride: per(1 * MB), BodyInstrs: 12, Accs: 4, WriteFrac: 0.5}),
		b.kernel(Kernel{Name: "sample_particles", Pattern: Random,
			Base: baseP, WSet: per(512 * KB), BodyInstrs: 22, Accs: 4,
			WriteFrac: 0.5, BranchProb: 0.35}),
		b.kernel(Kernel{Name: "weight_edge", Pattern: Random, Shared: true,
			Base: baseW, WSet: 2 * MB, BodyInstrs: 26, Accs: 8}),
		b.kernel(Kernel{Name: "weight_inside", Pattern: Random, Shared: true,
			Base: baseWin, WSet: 1 * MB, BodyInstrs: 24, Accs: 6}),
		b.kernel(Kernel{Name: "normalize_weights", Pattern: Reduction,
			Base: baseP, WSet: per(512 * KB), BodyInstrs: 14, Accs: 6,
			SharedAcc: baseAcc}),
		b.kernel(Kernel{Name: "resample", Pattern: Random,
			Base: baseP, WSet: per(512 * KB), BodyInstrs: 16, Accs: 6, WriteFrac: 0.5}),
		b.kernel(Kernel{Name: "update_model", Pattern: Sequential,
			Base: baseP, WSet: per(512 * KB), BodyInstrs: 18, Accs: 6, WriteFrac: 0.6}),
		b.kernel(Kernel{Name: "output_estimate", Pattern: Sequential,
			Base: baseP, WSet: per(256 * KB), PartStride: per(512 * KB), BodyInstrs: 10, Accs: 4, WriteFrac: 0.8}),
	}

	b.region(Exec{K: load, Iters: n(40000)},
		Exec{K: initImg, Iters: n(4000)},
		Exec{K: initP, Iters: n(2000)},
		Exec{K: initWin, Iters: n(24000)})
	for frame := 0; frame < 8; frame++ {
		for i, k := range stages {
			e := Exec{K: k, Iters: n(6000)}
			if i == 5 || i == 6 { // particle weighting: imbalanced
				e.Iters = n(12000)
				e.Imbalance = imb
			}
			if i == 10 {
				e.Iters = n(2000)
			}
			b.region(e)
		}
	}
	return b.build()
}

// Extended workloads: the two NPB benchmarks the paper excluded, provided
// here because the methodology extensions that handle them are implemented
// (see trace.Coalesce and the degenerate single-region path).

// buildUA models NPB UA (unstructured adaptive mesh): a very large number
// of small inter-barrier regions — 7603 barriers from 400 time steps of a
// cyclic 19-phase adaptive schedule plus setup. The paper's BarrierPoint
// could not process this many regions and leaves "filtering or combining
// regions" to future work; use trace.Coalesce to sample it.
func buildUA(threads int, scale float64) *Program {
	b := newBuilder("npb-ua", threads)
	baseU := arrayBase(8, 0)
	baseA := arrayBase(8, 1)
	n := func(v int) int { return it(v, scale, threads) }
	per := perThread(threads)

	init := b.kernel(Kernel{Name: "mesh_init", Pattern: Random,
		Base: baseU, WSet: per(256 * KB), BodyInstrs: 16, Accs: 6, WriteFrac: 0.9})
	phases := make([]*Kernel, 0, 6)
	specs := []struct {
		name    string
		pattern Pattern
		stride  uint64
		instrs  int
	}{
		{"transfer", Sequential, 0, 14},
		{"diffusion", Strided, 512, 18},
		{"adapt", Random, 0, 20},
		{"convect", Sequential, 0, 16},
		{"mortar", Strided, 2048, 15},
		{"utrans", Sequential, 0, 12},
	}
	for _, sp := range specs {
		phases = append(phases, b.kernel(Kernel{Name: sp.name, Pattern: sp.pattern,
			Stride: sp.stride, Base: baseA, WSet: per(256 * KB),
			BodyInstrs: sp.instrs, Accs: 5, WriteFrac: 0.4}))
	}

	b.region(Exec{K: init, Iters: n(2400)})
	b.region(Exec{K: init, Iters: n(1200)}, Exec{K: phases[0], Iters: n(600)})
	// 400 steps x 19 tiny regions + 2 setup regions + 1 final = 7603.
	for step := 0; step < 400; step++ {
		for r := 0; r < 19; r++ {
			k := phases[(step+r)%len(phases)]
			b.region(Exec{K: k, Iters: n(320)})
		}
	}
	b.region(Exec{K: phases[5], Iters: n(1200)})
	return b.build()
}

// buildEP models NPB EP (embarrassingly parallel): a single inter-barrier
// region of independent random-number work. The paper notes this workload
// class "does not apply to the BarrierPoint methodology" — with one region
// the pipeline degenerates gracefully to a single barrierpoint with
// multiplier 1 (i.e. no sampling benefit, full accuracy).
func buildEP(threads int, scale float64) *Program {
	b := newBuilder("npb-ep", threads)
	n := func(v int) int { return it(v, scale, threads) }
	per := perThread(threads)
	gauss := b.kernel(Kernel{Name: "gaussian_pairs", Pattern: Random,
		Base: arrayBase(9, 0), WSet: per(1 * MB),
		BodyInstrs: 34, Accs: 4, WriteFrac: 0.1, BranchProb: 0.3})
	b.region(Exec{K: gauss, Iters: n(64000)})
	return b.build()
}
