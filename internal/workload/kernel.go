// Package workload provides deterministic, synthetic, barrier-synchronized
// multi-threaded programs standing in for the paper's NPB 3.3 (class A) and
// PARSEC 2.1 benchmarks.
//
// Each program is built from a small library of parallel kernels (streaming
// sweeps, strided sweeps, random gathers, reductions, compute loops) arranged
// in the per-benchmark phase schedules of the real codes: time-step loops
// over a handful of distinct solver phases, multigrid V-cycles whose levels
// share code but not working sets, and so on. Dynamic barrier counts match
// the paper's Figure 1 / Table III, and are independent of thread count.
//
// Every stream is a pure function of (kernel identity, thread id, thread
// count); re-generating a region always yields bit-identical traces, which
// is what makes BarrierPoint signatures microarchitecture-independent here.
package workload

import "barrierpoint/internal/trace"

// Pattern selects how a kernel generates data addresses.
type Pattern int

// Supported address generation patterns.
const (
	// Sequential sweeps the working set with unit (Stride-byte) steps.
	Sequential Pattern = iota
	// Strided sweeps the working set with a fixed multi-line stride.
	Strided
	// Random touches pseudo-random lines within the working set.
	Random
	// Reduction reads the thread's partition sequentially and writes a
	// small shared accumulation area, creating coherence traffic.
	Reduction
)

// Kernel describes one static parallel kernel (an OpenMP parallel loop in
// the real benchmarks). A kernel owns its static basic block identifiers,
// so two regions running the same kernel have identical code signatures.
type Kernel struct {
	ID         int     // unique kernel id; block ids are derived from it
	Name       string  // human-readable phase name, e.g. "x_solve"
	BodyInstrs int     // instructions per loop iteration (>= Accs+2)
	Accs       int     // data accesses per loop iteration
	BranchProb float64 // >0: emit a data-dependent branch block per iteration
	Pattern    Pattern
	Base       uint64  // base byte address of the kernel's array space
	WSet       uint64  // working-set bytes: per thread if !Shared, total if Shared
	Stride     uint64  // bytes between consecutive accesses (Sequential/Strided)
	WriteFrac  float64 // fraction of accesses that are stores
	Shared     bool    // threads share one working set instead of partitions
	SharedAcc  uint64  // Reduction: base address of the shared accumulator
	// PartStride is the per-thread partition spacing for non-shared
	// kernels; 0 means WSet. Kernels touching a subset of an array that
	// other kernels partition with a larger working set must declare the
	// array's partition stride here, or thread ranges would alias.
	PartStride uint64
}

// Sub-block ids within a kernel: loop body, outer loop bookkeeping, and the
// optional data-dependent branch block.
const (
	subBody   = 0
	subOuter  = 1
	subBranch = 2
	blockStep = 16 // ids per kernel
)

// BodyBlock returns the static id of the kernel's loop body block.
func (k *Kernel) BodyBlock() int { return k.ID*blockStep + subBody }

// outerEvery controls how often the outer-loop bookkeeping block fires.
const outerEvery = 8

// Exec is one execution of a kernel inside a region, with a length scale.
// Scale multiplies the iteration count, modelling regions that run the same
// code for a different number of iterations (the source of the paper's
// non-integer multipliers, §III-D).
type Exec struct {
	K     *Kernel
	Iters int     // total iterations across all threads at Scale 1
	Scale float64 // iteration-count multiplier; 0 means 1 (unscaled)
	// Imbalance optionally skews per-thread iteration counts; entry t%len
	// multiplies thread t's share. nil means perfectly balanced.
	Imbalance []float64
}

// itersFor returns the iteration count for one thread.
func (e Exec) itersFor(tid, threads int) int {
	scale := e.Scale
	if scale == 0 {
		scale = 1
	}
	per := float64(e.Iters) * scale / float64(threads)
	if e.Imbalance != nil {
		per *= e.Imbalance[tid%len(e.Imbalance)]
	}
	n := int(per)
	if n < 1 {
		n = 1
	}
	return n
}

// xorshift64 is the deterministic PRNG used by kernel streams.
type xorshift64 uint64

func (x *xorshift64) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift64(v)
	return v
}

// seedFor derives the stream PRNG seed from kernel identity and thread id
// only — never from the region index — so that re-occurrences of a kernel
// produce identical traces.
func seedFor(kid, tid int) xorshift64 {
	s := uint64(kid)*0x9E3779B97F4A7C15 + uint64(tid)*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB
	if s == 0 {
		s = 1
	}
	return xorshift64(s)
}

// kernelStream generates the dynamic block sequence of one thread running
// one kernel execution.
type kernelStream struct {
	k       *Kernel
	tid     int
	threads int
	iters   int
	iter    int
	pos     uint64 // access position within the working set sweep
	rng     xorshift64
	pending int  // sub-block emission state within the current iteration
	outer   bool // outer-loop block already emitted for this iteration
	accs    []trace.Access
}

func newKernelStream(e Exec, tid, threads int) *kernelStream {
	s := &kernelStream{
		k:       e.K,
		tid:     tid,
		threads: threads,
		iters:   e.itersFor(tid, threads),
		rng:     seedFor(e.K.ID, tid),
		accs:    make([]trace.Access, 0, e.K.Accs),
	}
	// Shared sequential/strided sweeps are cooperative: each thread starts
	// at its own slice of the shared working set.
	if e.K.Shared && (e.K.Pattern == Sequential || e.K.Pattern == Strided) {
		stride := e.K.Stride
		if stride == 0 {
			stride = trace.LineSize
		}
		lines := e.K.WSet / stride
		if lines > 0 {
			s.pos = uint64(tid) * (lines / uint64(threads))
		}
	}
	return s
}

// base returns the start of this thread's address range.
func (s *kernelStream) base() uint64 {
	if s.k.Shared {
		return s.k.Base
	}
	stride := s.k.PartStride
	if stride == 0 {
		stride = s.k.WSet
	}
	return s.k.Base + uint64(s.tid)*stride
}

// wset returns the bytes this thread sweeps over.
func (s *kernelStream) wset() uint64 {
	w := s.k.WSet
	if w < trace.LineSize {
		w = trace.LineSize
	}
	return w
}

func (s *kernelStream) genAccs() []trace.Access {
	k := s.k
	s.accs = s.accs[:0]
	base, wset := s.base(), s.wset()
	stride := k.Stride
	if stride == 0 {
		stride = trace.LineSize
	}
	lines := wset / stride
	if lines == 0 {
		lines = 1
	}
	for j := 0; j < k.Accs; j++ {
		var off uint64
		switch k.Pattern {
		case Sequential:
			off = (s.pos % lines) * stride
			s.pos++
		case Strided:
			// Column-major sweep of a 2-D array with Stride-byte rows:
			// consecutive accesses jump a whole row apart, every line is
			// eventually covered, and each line is revisited once per
			// column at a reuse distance of ~rows lines — the locality
			// profile of real transposed/directional solver sweeps.
			rows := stride / trace.LineSize
			if rows < 2 {
				rows = 2
			}
			rowBytes := wset / rows / trace.LineSize * trace.LineSize
			if rowBytes < trace.LineSize {
				rowBytes = trace.LineSize
			}
			elemsPerRow := rowBytes / 8
			e := s.pos
			s.pos++
			row := e % rows
			col := (e / rows) % elemsPerRow
			off = row*rowBytes + col*8
		case Random:
			off = (s.rng.next() % lines) * stride
		case Reduction:
			// Reads stream the partition; the final access of each
			// iteration updates the shared accumulator instead.
			if j == k.Accs-1 {
				line := s.rng.next() % 8
				s.accs = append(s.accs, trace.Access{
					Addr:  k.SharedAcc + line*trace.LineSize,
					Write: true,
				})
				continue
			}
			off = (s.pos % lines) * stride
			s.pos++
		}
		write := false
		if k.WriteFrac > 0 {
			write = s.rng.next()&1023 < uint64(k.WriteFrac*1024)
		}
		s.accs = append(s.accs, trace.Access{Addr: base + off, Write: write})
	}
	return s.accs
}

// Next implements trace.Stream.
func (s *kernelStream) Next(be *trace.BlockExec) bool {
	k := s.k
	if s.pending == subBranch {
		s.pending = 0
		s.iter++
		s.outer = false
		taken := s.rng.next()&1023 < uint64(k.BranchProb*1024)
		*be = trace.BlockExec{
			Block:  k.ID*blockStep + subBranch,
			Instrs: 3,
			Accs:   nil,
			Branch: true,
			Taken:  taken,
		}
		return true
	}
	if s.iter >= s.iters {
		return false
	}
	if s.iter%outerEvery == 0 && s.iter > 0 && !s.outer {
		// Outer-loop bookkeeping block, once per outerEvery iterations.
		s.outer = true
		*be = trace.BlockExec{
			Block:  k.ID*blockStep + subOuter,
			Instrs: 4,
			Branch: true,
			Taken:  true,
		}
		return true
	}
	// Loop body block.
	if k.BranchProb > 0 {
		s.pending = subBranch
	} else {
		s.iter++
		s.outer = false
	}
	*be = trace.BlockExec{
		Block:  k.ID * blockStep,
		Instrs: k.BodyInstrs,
		Accs:   s.genAccs(),
		Branch: true,
		Taken:  s.iter < s.iters, // loop-back branch: not taken on exit
	}
	return true
}

// seqStream chains the streams of several kernel executions.
type seqStream struct {
	streams []trace.Stream
	idx     int
}

// Next implements trace.Stream.
func (s *seqStream) Next(be *trace.BlockExec) bool {
	for s.idx < len(s.streams) {
		if s.streams[s.idx].Next(be) {
			return true
		}
		s.idx++
	}
	return false
}

// Region is an inter-barrier region: a list of kernel executions each
// thread runs back to back.
type Region struct {
	Execs   []Exec
	threads int
}

// Thread implements trace.Region.
func (r *Region) Thread(tid int) trace.Stream {
	if len(r.Execs) == 1 {
		return newKernelStream(r.Execs[0], tid, r.threads)
	}
	ss := make([]trace.Stream, len(r.Execs))
	for i, e := range r.Execs {
		ss[i] = newKernelStream(e, tid, r.threads)
	}
	return &seqStream{streams: ss}
}

// Program is a schedule of regions instantiated for a thread count.
type Program struct {
	name    string
	threads int
	regions []*Region
}

// Name implements trace.Program.
func (p *Program) Name() string { return p.name }

// Threads implements trace.Program.
func (p *Program) Threads() int { return p.threads }

// Regions implements trace.Program.
func (p *Program) Regions() int { return len(p.regions) }

// Region implements trace.Program.
func (p *Program) Region(i int) trace.Region { return p.regions[i] }

// builder accumulates a region schedule.
type builder struct {
	name    string
	threads int
	regions []*Region
	nextID  int
	// jitter is the amplitude of deterministic per-region iteration-count
	// variation ("convergence noise"): real solver iterations are never
	// bit-identical, and this is what produces the paper's fractional
	// multipliers (Table III: 4.6, 399.9, ...).
	jitter float64
}

func newBuilder(name string, threads int) *builder {
	return &builder{name: name, threads: threads, nextID: 1, jitter: 0.02}
}

// kernel allocates a kernel with a unique id.
func (b *builder) kernel(k Kernel) *Kernel {
	k.ID = b.nextID
	b.nextID++
	return &k
}

// jitterFactor derives a deterministic multiplier in [1-jitter, 1+jitter]
// from a region index.
func (b *builder) jitterFactor(region int) float64 {
	h := uint64(region)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
	h ^= h >> 31
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 29
	u := float64(h>>11) / (1 << 53) // [0,1)
	return 1 + b.jitter*(2*u-1)
}

// region appends a region running the given executions, applying the
// per-region length jitter.
func (b *builder) region(execs ...Exec) {
	jf := b.jitterFactor(len(b.regions))
	for i := range execs {
		if execs[i].Scale == 0 {
			execs[i].Scale = 1
		}
		execs[i].Scale *= jf
	}
	b.regions = append(b.regions, &Region{Execs: execs, threads: b.threads})
}

func (b *builder) build() *Program {
	return &Program{name: b.name, threads: b.threads, regions: b.regions}
}

var _ trace.Program = (*Program)(nil)
var _ trace.Region = (*Region)(nil)
var _ trace.Stream = (*kernelStream)(nil)
