package workload

import (
	"testing"

	"barrierpoint/internal/trace"
)

// Paper Figure 1 / Table III dynamic barrier counts (regions - 1).
var wantBarriers = map[string]int{
	"npb-bt":           1001,
	"npb-cg":           46,
	"npb-ft":           34,
	"npb-is":           11,
	"npb-lu":           503,
	"npb-mg":           245,
	"npb-sp":           3601,
	"parsec-bodytrack": 89,
}

func TestRegionCountsMatchPaper(t *testing.T) {
	for name, want := range wantBarriers {
		// The parallel ROI is delimited by barriers on both sides, so the
		// paper's dynamic barrier count equals our region count.
		for _, threads := range []int{8, 32} {
			p := New(name, threads)
			if got := p.Regions(); got != want {
				t.Errorf("%s/%d: %d barriers, want %d", name, threads, got, want)
			}
		}
	}
}

func TestNames(t *testing.T) {
	ns := Names()
	if len(ns) != len(wantBarriers) {
		t.Fatalf("Names returned %d entries, want %d", len(ns), len(wantBarriers))
	}
	if ns[0] != "parsec-bodytrack" {
		t.Errorf("paper plotting order puts parsec first, got %q", ns[0])
	}
	for _, n := range ns {
		if _, ok := wantBarriers[n]; !ok {
			t.Errorf("unexpected benchmark %q", n)
		}
	}
}

func TestUnknownBenchmarkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with unknown name did not panic")
		}
	}()
	New("npb-nope", 8)
}

func TestStreamDeterminism(t *testing.T) {
	p := New("npb-ft", 8, WithScale(0.1))
	for _, ri := range []int{0, 5, 17} {
		a := collect(p.Region(ri).Thread(3))
		b := collect(p.Region(ri).Thread(3))
		if len(a) != len(b) {
			t.Fatalf("region %d: lengths differ %d vs %d", ri, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("region %d block %d differs", ri, i)
			}
		}
	}
}

// collect materializes a stream into comparable records.
type rec struct {
	block, instrs int
	branch, taken bool
	firstAddr     uint64
	nAccs         int
}

func collect(s trace.Stream) []rec {
	var out []rec
	var be trace.BlockExec
	for s.Next(&be) {
		r := rec{block: be.Block, instrs: be.Instrs, branch: be.Branch, taken: be.Taken, nAccs: len(be.Accs)}
		if len(be.Accs) > 0 {
			r.firstAddr = be.Accs[0].Addr
		}
		out = append(out, r)
	}
	return out
}

func TestKernelReoccurrenceIdentical(t *testing.T) {
	// The same kernel in different regions must produce identical traces
	// (modulo region length jitter): compare two instances of npb-ft's
	// evolve phase (regions 4 and 9) block-by-block over their common
	// prefix.
	p := New("npb-ft", 8, WithScale(0.1))
	a := collect(p.Region(4).Thread(0))
	b := collect(p.Region(9).Thread(0))
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		t.Fatal("empty streams")
	}
	for i := 0; i < n-2; i++ { // final blocks may differ in Taken
		if a[i].block != b[i].block || a[i].firstAddr != b[i].firstAddr {
			t.Fatalf("block %d differs across instances: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestPartitionsDisjoint(t *testing.T) {
	// Non-shared kernels must give threads disjoint address ranges.
	for _, name := range Names() {
		p := New(name, 8, WithScale(0.05))
		seen := make(map[uint64]int) // line -> thread
		r := p.Region(p.Regions() / 2)
		shared := false
		for tid := 0; tid < 8; tid++ {
			s := r.Thread(tid)
			var be trace.BlockExec
			for s.Next(&be) {
				for _, a := range be.Accs {
					line := trace.LineAddr(a.Addr)
					if prev, ok := seen[line]; ok && prev != tid {
						shared = true
					}
					seen[line] = tid
				}
			}
		}
		_ = shared // some benchmarks legitimately share; just exercise.
	}
}

func TestPartitionsDisjointStrict(t *testing.T) {
	// npb-bt's solver phases are strictly partitioned.
	p := New("npb-bt", 8, WithScale(0.1))
	r := p.Region(2) // x_solve
	owner := make(map[uint64]int)
	for tid := 0; tid < 8; tid++ {
		s := r.Thread(tid)
		var be trace.BlockExec
		for s.Next(&be) {
			for _, a := range be.Accs {
				line := trace.LineAddr(a.Addr)
				if prev, ok := owner[line]; ok && prev != tid {
					t.Fatalf("line %#x touched by threads %d and %d", line, prev, tid)
				}
				owner[line] = tid
			}
		}
	}
}

func TestTotalWorkConstantAcrossThreads(t *testing.T) {
	// Strong scaling: aggregate instruction count is roughly independent
	// of thread count (within rounding of per-thread iteration splits).
	for _, name := range []string{"npb-ft", "npb-cg", "npb-sp"} {
		p8 := New(name, 8, WithScale(0.5))
		p32 := New(name, 32, WithScale(0.5))
		var i8, i32 uint64
		for r := 0; r < p8.Regions(); r++ {
			_, t8 := trace.RegionInstrs(p8.Region(r), 8)
			_, t32 := trace.RegionInstrs(p32.Region(r), 32)
			i8 += t8
			i32 += t32
		}
		ratio := float64(i32) / float64(i8)
		if ratio < 0.8 || ratio > 1.25 {
			t.Errorf("%s: 32-thread work is %.2fx the 8-thread work", name, ratio)
		}
	}
}

func TestScaleReducesWork(t *testing.T) {
	full := New("npb-ft", 8)
	half := New("npb-ft", 8, WithScale(0.5))
	_, f := trace.RegionInstrs(full.Region(5), 8)
	_, h := trace.RegionInstrs(half.Region(5), 8)
	if h >= f {
		t.Errorf("scale 0.5 did not reduce work: %d vs %d", h, f)
	}
	if full.Regions() != half.Regions() {
		t.Error("scaling changed the region count")
	}
}

func TestJitterVariesRegionLengths(t *testing.T) {
	// Instances of the same phase differ slightly in length (the paper's
	// fractional multipliers come from this).
	p := New("npb-sp", 8, WithScale(1))
	_, a := trace.RegionInstrs(p.Region(4), 8)  // x_solve, step 0
	_, b := trace.RegionInstrs(p.Region(13), 8) // x_solve, step 1
	if a == b {
		t.Error("expected jittered region lengths to differ")
	}
	ratio := float64(a) / float64(b)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("jitter too large: ratio %.3f", ratio)
	}
}

func TestImbalance(t *testing.T) {
	// lu's triangular sweeps have per-thread imbalance.
	p := New("npb-lu", 8, WithScale(0.5))
	per, _ := trace.RegionInstrs(p.Region(4), 8) // blts
	min, max := per[0], per[0]
	for _, v := range per {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if min == max {
		t.Error("expected imbalanced per-thread instruction counts")
	}
}

func TestMGSameCodeDifferentLevels(t *testing.T) {
	// mg smoothing at different levels shares basic block ids (same code)
	// but touches different working-set sizes.
	p := New("npb-mg", 8, WithScale(0.5))
	l0 := p.Region(5) // first down-smooth, level 0
	l3 := p.Region(8) // level 3
	b0 := collect(l0.Thread(0))
	b3 := collect(l3.Thread(0))
	if b0[0].block != b3[0].block {
		t.Errorf("levels use different blocks: %d vs %d", b0[0].block, b3[0].block)
	}
	foot := func(rs []rec) int {
		// approximate footprint via address span of first accesses
		seen := make(map[uint64]bool)
		for _, r := range rs {
			seen[r.firstAddr>>6] = true
		}
		return len(seen)
	}
	if foot(b0) <= foot(b3) {
		t.Errorf("level 0 footprint (%d) should exceed level 3 (%d)", foot(b0), foot(b3))
	}
}

func TestExecItersFor(t *testing.T) {
	e := Exec{Iters: 800}
	if got := e.itersFor(0, 8); got != 100 {
		t.Errorf("itersFor = %d, want 100", got)
	}
	e.Scale = 0.5
	if got := e.itersFor(0, 8); got != 50 {
		t.Errorf("scaled itersFor = %d, want 50", got)
	}
	e.Imbalance = []float64{2.0}
	if got := e.itersFor(0, 8); got != 100 {
		t.Errorf("imbalanced itersFor = %d, want 100", got)
	}
	// Minimum of one iteration.
	tiny := Exec{Iters: 1}
	if got := tiny.itersFor(0, 8); got != 1 {
		t.Errorf("tiny itersFor = %d, want 1", got)
	}
}

func TestBranchProbEmitsBranchBlocks(t *testing.T) {
	p := New("parsec-bodytrack", 8, WithScale(0.2))
	// sample_particles (stage index 4) is region 1 + frame*11 + 4 -> region 5.
	rs := collect(p.Region(5).Thread(0))
	branchBlocks := 0
	takenSome, notTakenSome := false, false
	for _, r := range rs {
		if r.block%16 == 2 {
			branchBlocks++
			if r.taken {
				takenSome = true
			} else {
				notTakenSome = true
			}
		}
	}
	if branchBlocks == 0 {
		t.Fatal("no data-dependent branch blocks emitted")
	}
	if !takenSome || !notTakenSome {
		t.Error("data-dependent branch always resolved the same way")
	}
}
