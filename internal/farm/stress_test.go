package farm

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	bp "barrierpoint"
	"barrierpoint/internal/store"
)

// TestWALQueueStress is the durable queue's concurrency stress test,
// meant to run under -race (CI does): enqueuers, leasing/completing/
// failing workers and a heartbeater hammer a WAL-backed queue with an
// aggressive sweeper while Close races them all. The invariants:
//
//   - no data race and no deadlock (every goroutine returns);
//   - every WAL append happens under q.mu, so journal and memory never
//     diverge even while Close swaps the log out from under the ops;
//   - after the dust settles the journal replays into a queue whose live
//     tasks are consistent (no duplicates, no lost completions).
func TestWALQueueStress(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, "store", "farm.wal")
	cfg := Config{
		LeaseTTL:    10 * time.Millisecond, // leases expire mid-test
		SweepEvery:  2 * time.Millisecond,  // sweeper constantly requeues
		MaxAttempts: 2,
	}
	q, _, err := NewDurableQueue(st, cfg, walPath)
	if err != nil {
		t.Fatal(err)
	}

	result, err := json.Marshal(bp.RegionResult{})
	if err != nil {
		t.Fatal(err)
	}

	const (
		enqueuers = 4
		workers   = 4
		regions   = 64
	)
	var (
		wg       sync.WaitGroup
		enqueued atomic.Int64
		leasedN  atomic.Int64
		closing  atomic.Bool
	)
	for g := 0; g < enqueuers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; ; r++ {
				sp := Spec{TraceKey: fakeTraceKey, Region: (g*regions + r) % regions, Sockets: 1, Warmup: "cold"}
				if _, err := q.Enqueue(sp); err != nil {
					if errors.Is(err, ErrClosed) {
						return
					}
					t.Errorf("Enqueue: %v", err)
					return
				}
				enqueued.Add(1)
			}
		}(g)
	}
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := fmt.Sprintf("stress-%d", g)
			for {
				tasks := q.Lease(id, 3)
				if len(tasks) == 0 {
					if closing.Load() {
						return
					}
					time.Sleep(time.Millisecond)
					continue
				}
				leasedN.Add(int64(len(tasks)))
				for i, task := range tasks {
					var err error
					switch {
					case i%3 == 0:
						err = q.Fail(id, task.ID, "stress-injected failure")
					default:
						err = q.Complete(id, task.ID, result)
					}
					// After Close (or lease expiry) the task is gone; both are
					// fine — the point is no race, no wedge, no bogus error.
					if err != nil && !errors.Is(err, ErrUnknownTask) && !errors.Is(err, ErrClosed) {
						t.Errorf("worker %s: %v", id, err)
						return
					}
				}
			}
		}(g)
	}
	// A heartbeater renews whatever it sees, keeping the lease table warm
	// while the sweeper tries to expire it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !closing.Load() {
			for g := 0; g < workers; g++ {
				q.Heartbeat(fmt.Sprintf("stress-%d", g), nil)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Let real contention build up (progress-gated, not wall-clock: under
	// -race the same milliseconds buy far fewer operations), then Close
	// while all of it is still in flight.
	for start := time.Now(); leasedN.Load() < 50 || enqueued.Load() < 200; {
		if time.Since(start) > 30*time.Second {
			t.Fatalf("no stress progress: %d enqueued, %d leased", enqueued.Load(), leasedN.Load())
		}
		time.Sleep(time.Millisecond)
	}
	q.Close()
	closing.Store(true)
	wg.Wait()

	if enqueued.Load() == 0 || leasedN.Load() == 0 {
		t.Fatalf("stress proved nothing: %d enqueued, %d leased, stats %+v", enqueued.Load(), leasedN.Load(), q.Stats())
	}
	t.Logf("enqueued %d, leased %d, stats %+v", enqueued.Load(), leasedN.Load(), q.Stats())

	// The journal left behind must replay cleanly into a consistent queue:
	// no duplicate dedup keys, every live task intact.
	q2, rec, err := NewDurableQueue(st, cfg, walPath)
	if err != nil {
		t.Fatalf("journal after stress does not recover: %v", err)
	}
	defer q2.Close()
	q2.mu.Lock()
	seen := make(map[string]bool)
	for id, tk := range q2.tasks {
		if tk.ID != id || tk.TraceKey == "" || tk.Artifact == "" {
			t.Errorf("recovered task %s is malformed: %+v", id, tk.Task)
		}
		if seen[tk.dedup] {
			t.Errorf("two recovered tasks share dedup key %s", tk.dedup)
		}
		seen[tk.dedup] = true
	}
	q2.mu.Unlock()
	t.Logf("post-stress recovery: %+v", rec)
}

// TestWALQueueStressRepeated reruns a compressed version of the race a
// few times, recovering from the same journal each round — the geometry
// where append-vs-close and recover-vs-sweep windows hide.
func TestWALQueueStressRepeated(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, "store", "farm.wal")
	cfg := Config{LeaseTTL: 5 * time.Millisecond, SweepEvery: time.Millisecond, MaxAttempts: 1}
	result, err := json.Marshal(bp.RegionResult{})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		q, _, err := NewDurableQueue(st, cfg, walPath)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 6; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				id := fmt.Sprintf("r%d", g)
				for i := 0; i < 20; i++ {
					sp := Spec{TraceKey: fakeTraceKey, Region: 1000*round + g*20 + i, Sockets: 1, Warmup: "cold"}
					if _, err := q.Enqueue(sp); errors.Is(err, ErrClosed) {
						return
					}
					for _, task := range q.Lease(id, 1) {
						err := q.Complete(id, task.ID, result)
						if err != nil && !errors.Is(err, ErrUnknownTask) && !errors.Is(err, ErrClosed) {
							t.Errorf("round %d: %v", round, err)
						}
					}
				}
			}(g)
		}
		q.Close() // immediately races everything above
		wg.Wait()
	}
	// One final recovery proves five rounds of torn-down queues left a
	// replayable journal.
	q, rec, err := NewDurableQueue(st, cfg, walPath)
	if err != nil {
		t.Fatal(err)
	}
	q.Close()
	t.Logf("final recovery after 5 rounds: %+v", rec)
}
