// Package farm is the distributed work-distribution tier: it decomposes a
// barrierpoint estimate into independent per-point simulation tasks,
// places them on a lease-based in-memory queue served over HTTP by
// cmd/bpserve, and assembles the per-region results as a fleet of
// cmd/bpworker processes streams them back. The paper's core observation
// (conf_ispass_CarlsonHCE14 §III) is that barrierpoint simulations are
// mutually independent — each starts from a fresh machine whose warmup
// state is a pure function of the trace prefix — so simulation throughput
// is horizontal: adding workers on other machines shortens the critical
// path down to the single largest point (the paper's "parallel speedup").
//
// # Task lifecycle
//
// A task is one (trace, region, machine, warmup) simulation. Its life:
//
//		          Enqueue                Lease                Complete
//		  spec ────────────▶ queued ────────────▶ leased ────────────▶ done
//		            │           ▲                    │
//		  store hit │           │ requeue:           │ Fail, or lease TTL
//		            ▼           │ attempts < max     ▼ expiry (no heartbeat)
//		          done          └──────────────── retriable ──▶ failed
//		                                             (attempts == max)
//
//	  - Enqueue deduplicates twice: against the content-addressed store
//	    (the task's result artifact — named by trace key, machine-config
//	    hash and warmup mode, see PointArtifact — may already exist from an
//	    earlier farm run, a local cached run, or another job), and against
//	    live tasks (an identical task already queued or leased is shared,
//	    both waiters get the same Ticket).
//	  - Lease hands a worker up to max tasks, each with a lease that
//	    expires LeaseTTL from now. A worker holding leases must call
//	    Heartbeat before they expire; each heartbeat renews the full TTL.
//	  - A task whose lease expires — worker crashed, hung, or partitioned —
//	    is requeued with its failure logged, and handed to the next worker
//	    that leases. After MaxAttempts leases end in failure or expiry the
//	    task fails permanently, and every waiter sees the accumulated
//	    per-attempt failure log.
//	  - Complete uploads the simulated RegionResult. Uploads are
//	    idempotent and unconditionally accepted, even from a worker whose
//	    lease has expired and whose task was already reassigned or
//	    completed by someone else: point simulation is deterministic, so a
//	    late duplicate result is byte-identical to the accepted one and is
//	    simply acknowledged. The first upload stores the result as a store
//	    artifact (so future runs dedup against it) and wakes the waiters.
//
// # Determinism
//
// Every execution path — LocalRunner's in-process pool, CachedRunner's
// store-backed reuse, QueueRunner's farm distribution — funnels into
// bp.SimulatePoint, which warms a fresh machine from a snapshot that
// depends only on the trace bytes before the region. A farmed estimate is
// therefore bit-identical to the local one, regardless of worker count,
// task interleaving, retries, or mid-run worker loss.
//
// # Protocol (HTTP/JSON, mounted under /farm/ by cmd/bpserve)
//
//	POST /farm/register  {name}                → {worker, lease_ms}
//	POST /farm/lease     {worker, max}         → {tasks, lease_ms}
//	POST /farm/heartbeat {worker, tasks}       → {renewed, dropped}
//	POST /farm/result    {worker, task,
//	                      result | error}      → {status}
//	GET  /farm/workers                         → {workers, stats}
//	GET  /farm/trace/{key}                     → raw .bptrace bytes
//
// Workers are stateless: they hold no queue state, fetch any trace they
// are missing from /farm/trace/{key} into their own content-addressed
// store (verifying the key on ingest), and can join, leave or crash at
// any time. A heartbeat response's "dropped" list names leases the server
// no longer recognizes as the worker's; the worker must abandon those
// tasks (their results would still be accepted, but the work is likely
// being redone elsewhere).
//
// # Durability
//
// NewDurableQueue journals every state transition to a write-ahead log
// (store.WAL) before applying it in memory, so a coordinator killed -9
// mid-campaign restarts with exactly the queued and in-flight tasks it
// died with. NewQueue remains purely in-memory; cmd/bpserve opens the
// durable variant by default at <store>/farm.wal (disable with -wal off).
//
// Record format: the log is a sequence of frames, each a 4-byte
// little-endian payload length, a 4-byte little-endian CRC-32C
// (Castagnoli) of the payload, and the payload itself — a JSON walRecord
// with an "op" tag:
//
//	enqueue   {op, task{id, trace, region, sockets, warmup, artifact,
//	           attempt}, failures?}   a task entered the queue (compaction
//	                                  re-emits live tasks in this form)
//	lease     {op, id, worker, attempt}   a worker took the task
//	requeue   {op, id, msg}               a lease ended; task back to pending
//	complete  {op, id}                    result stored as artifact; done
//	fail      {op, id, msg}               attempts exhausted; failed for good
//
// Every append is fsynced before the transition is acknowledged, and the
// in-memory apply happens only after the append returns — so the journal
// is always at or ahead of memory, never behind. A crash between an
// append and its apply is therefore safe in every direction: the record
// describes work the caller was told had NOT happened yet (it got an
// error), and replay converges on the journaled state, which Enqueue's
// dedup then reconciles with the retrying caller. Complete orders its
// effects store-first: the result artifact is durable before the
// complete record is written, so a crash in between is healed at
// recovery by checking the store for each live task's artifact.
//
// Recovery (NewDurableQueue on a non-empty log) replays the valid frame
// prefix — a torn tail from a mid-append crash is detected by length/CRC
// and truncated away — folding records into per-task state. Tasks still
// pending re-enter the queue in their original order; tasks that were
// leased re-enter pending immediately after them (their workers may be
// gone; if not, their uploads are accepted idempotently), with the
// interruption logged as an attempt failure; tasks whose result artifact
// already reached the store resolve on the spot. Recovered tasks carry
// fresh tickets with no waiters — a re-submitted job re-attaches through
// Enqueue's dedup, so no simulation is lost or repeated.
//
// Each queue instance mints a random epoch embedded in the worker ids it
// issues and echoed in register/lease responses. A worker leasing from a
// restarted coordinator sees the epoch change (ErrServerRestarted),
// re-registers, and keeps working; the queue likewise refuses to lease
// to ids minted by a previous life.
//
// Compaction: the journal is rewritten (atomically, via temp file and
// rename) to just the live tasks — one enqueue record each, plus a lease
// record for tasks out on a worker — once it holds at least 1024 records
// and at least 4 records per live task, and always once at startup after
// replay. Compacted history is gone by design: the log's only job is to
// reconstruct live state, not to audit finished work.
package farm
