// Package farm is the distributed work-distribution tier: it decomposes a
// barrierpoint estimate into independent per-point simulation tasks,
// places them on a lease-based in-memory queue served over HTTP by
// cmd/bpserve, and assembles the per-region results as a fleet of
// cmd/bpworker processes streams them back. The paper's core observation
// (conf_ispass_CarlsonHCE14 §III) is that barrierpoint simulations are
// mutually independent — each starts from a fresh machine whose warmup
// state is a pure function of the trace prefix — so simulation throughput
// is horizontal: adding workers on other machines shortens the critical
// path down to the single largest point (the paper's "parallel speedup").
//
// # Task lifecycle
//
// A task is one (trace, region, machine, warmup) simulation. Its life:
//
//		          Enqueue                Lease                Complete
//		  spec ────────────▶ queued ────────────▶ leased ────────────▶ done
//		            │           ▲                    │
//		  store hit │           │ requeue:           │ Fail, or lease TTL
//		            ▼           │ attempts < max     ▼ expiry (no heartbeat)
//		          done          └──────────────── retriable ──▶ failed
//		                                             (attempts == max)
//
//	  - Enqueue deduplicates twice: against the content-addressed store
//	    (the task's result artifact — named by trace key, machine-config
//	    hash and warmup mode, see PointArtifact — may already exist from an
//	    earlier farm run, a local cached run, or another job), and against
//	    live tasks (an identical task already queued or leased is shared,
//	    both waiters get the same Ticket).
//	  - Lease hands a worker up to max tasks, each with a lease that
//	    expires LeaseTTL from now. A worker holding leases must call
//	    Heartbeat before they expire; each heartbeat renews the full TTL.
//	  - A task whose lease expires — worker crashed, hung, or partitioned —
//	    is requeued with its failure logged, and handed to the next worker
//	    that leases. After MaxAttempts leases end in failure or expiry the
//	    task fails permanently, and every waiter sees the accumulated
//	    per-attempt failure log.
//	  - Complete uploads the simulated RegionResult. Uploads are
//	    idempotent and unconditionally accepted, even from a worker whose
//	    lease has expired and whose task was already reassigned or
//	    completed by someone else: point simulation is deterministic, so a
//	    late duplicate result is byte-identical to the accepted one and is
//	    simply acknowledged. The first upload stores the result as a store
//	    artifact (so future runs dedup against it) and wakes the waiters.
//
// # Determinism
//
// Every execution path — LocalRunner's in-process pool, CachedRunner's
// store-backed reuse, QueueRunner's farm distribution — funnels into
// bp.SimulatePoint, which warms a fresh machine from a snapshot that
// depends only on the trace bytes before the region. A farmed estimate is
// therefore bit-identical to the local one, regardless of worker count,
// task interleaving, retries, or mid-run worker loss.
//
// # Protocol (HTTP/JSON, mounted under /farm/ by cmd/bpserve)
//
//	POST /farm/register  {name}                → {worker, lease_ms}
//	POST /farm/lease     {worker, max}         → {tasks, lease_ms}
//	POST /farm/heartbeat {worker, tasks}       → {renewed, dropped}
//	POST /farm/result    {worker, task,
//	                      result | error}      → {status}
//	GET  /farm/workers                         → {workers, stats}
//	GET  /farm/trace/{key}                     → raw .bptrace bytes
//
// Workers are stateless: they hold no queue state, fetch any trace they
// are missing from /farm/trace/{key} into their own content-addressed
// store (verifying the key on ingest), and can join, leave or crash at
// any time. A heartbeat response's "dropped" list names leases the server
// no longer recognizes as the worker's; the worker must abandon those
// tasks (their results would still be accepted, but the work is likely
// being redone elsewhere).
package farm
