package farm_test

import (
	"net/http/httptest"
	"testing"
	"time"

	"barrierpoint/internal/farm"
	"barrierpoint/internal/store"
)

// TestHTTPWorkerRoundTrip drives the full worker protocol over real HTTP:
// register, lease, fetch the trace into a separate worker-local store,
// heartbeat, simulate, upload — and checks the ticket resolves with the
// same result a server-local execution produces.
func TestHTTPWorkerRoundTrip(t *testing.T) {
	st, key := newTestStore(t)
	q := farm.NewQueue(st, farm.Config{LeaseTTL: 5 * time.Second})
	defer q.Close()
	srv := httptest.NewServer(farm.NewServer(q, st))
	defer srv.Close()

	tk, err := q.Enqueue(spec(key))
	if err != nil {
		t.Fatal(err)
	}

	c := &farm.Client{Base: srv.URL}
	if err := c.Register("http-test-worker"); err != nil {
		t.Fatal(err)
	}
	if c.Worker == "" || c.LeaseTTL != 5*time.Second {
		t.Fatalf("registration: worker %q ttl %v", c.Worker, c.LeaseTTL)
	}

	tasks, err := c.Lease(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 1 {
		t.Fatalf("leased %d tasks, want 1", len(tasks))
	}
	task := tasks[0]

	// The worker's own store starts empty; the trace arrives over HTTP
	// and is verified against its content key. A second fetch is a no-op.
	wst, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.FetchTrace(wst, task.TraceKey); err != nil {
		t.Fatal(err)
	}
	if !wst.HasTrace(key) {
		t.Fatal("trace not in worker store after fetch")
	}
	if err := c.FetchTrace(wst, task.TraceKey); err != nil {
		t.Fatalf("re-fetch: %v", err)
	}

	if dropped, err := c.Heartbeat([]string{task.ID}); err != nil || len(dropped) != 0 {
		t.Fatalf("heartbeat: dropped %v err %v", dropped, err)
	}

	res, err := farm.ExecuteTask(wst, task)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Complete(task, res); err != nil {
		t.Fatal(err)
	}
	got, err := waitTicket(t, tk)
	if err != nil {
		t.Fatal(err)
	}
	want, err := farm.ExecuteTask(st, task)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles != want.Cycles || got.Counters != want.Counters {
		t.Fatalf("HTTP result %+v != local %+v", got, want)
	}

	// Fleet status reflects the worker and its completion.
	workers := q.Workers()
	if len(workers) != 1 || workers[0].Name != "http-test-worker" || workers[0].Completed != 1 {
		t.Fatalf("workers: %+v", workers)
	}

	// Failure reporting for a task leased later: lease a second region,
	// report an error, and confirm the attempt is logged.
	sp := spec(key)
	sp.Region = 2
	if _, err := q.Enqueue(sp); err != nil {
		t.Fatal(err)
	}
	tasks, err = c.Lease(1)
	if err != nil || len(tasks) != 1 {
		t.Fatalf("second lease: %v (%d tasks)", err, len(tasks))
	}
	if err := c.Fail(tasks[0], "simulated worker error"); err != nil {
		t.Fatal(err)
	}
	if s := q.Stats(); s.Retries != 1 {
		t.Fatalf("fail not logged: %+v", s)
	}

	// Unknown trace fetches are clean errors, not junk stores.
	badKey := "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"
	if err := c.FetchTrace(wst, badKey); err == nil {
		t.Fatal("fetch of unknown trace should fail")
	}
}
