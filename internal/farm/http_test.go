package farm_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	bp "barrierpoint"
	"barrierpoint/internal/farm"
	"barrierpoint/internal/store"
)

// TestHTTPWorkerRoundTrip drives the full worker protocol over real HTTP:
// register, lease, fetch the trace into a separate worker-local store,
// heartbeat, simulate, upload — and checks the ticket resolves with the
// same result a server-local execution produces.
func TestHTTPWorkerRoundTrip(t *testing.T) {
	st, key := newTestStore(t)
	q := farm.NewQueue(st, farm.Config{LeaseTTL: 5 * time.Second})
	defer q.Close()
	srv := httptest.NewServer(farm.NewServer(q, st))
	defer srv.Close()

	tk, err := q.Enqueue(spec(key))
	if err != nil {
		t.Fatal(err)
	}

	c := &farm.Client{Base: srv.URL}
	if err := c.Register("http-test-worker"); err != nil {
		t.Fatal(err)
	}
	if c.Worker == "" || c.LeaseTTL != 5*time.Second {
		t.Fatalf("registration: worker %q ttl %v", c.Worker, c.LeaseTTL)
	}

	tasks, err := c.Lease(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 1 {
		t.Fatalf("leased %d tasks, want 1", len(tasks))
	}
	task := tasks[0]

	// The worker's own store starts empty; the trace arrives over HTTP
	// and is verified against its content key. A second fetch is a no-op.
	wst, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.FetchTrace(wst, task.TraceKey); err != nil {
		t.Fatal(err)
	}
	if !wst.HasTrace(key) {
		t.Fatal("trace not in worker store after fetch")
	}
	if err := c.FetchTrace(wst, task.TraceKey); err != nil {
		t.Fatalf("re-fetch: %v", err)
	}

	if dropped, err := c.Heartbeat([]string{task.ID}); err != nil || len(dropped) != 0 {
		t.Fatalf("heartbeat: dropped %v err %v", dropped, err)
	}

	res, err := farm.ExecuteTask(wst, task)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Complete(task, res); err != nil {
		t.Fatal(err)
	}
	got, err := waitTicket(t, tk)
	if err != nil {
		t.Fatal(err)
	}
	want, err := farm.ExecuteTask(st, task)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles != want.Cycles || got.Counters != want.Counters {
		t.Fatalf("HTTP result %+v != local %+v", got, want)
	}

	// Fleet status reflects the worker and its completion.
	workers := q.Workers()
	if len(workers) != 1 || workers[0].Name != "http-test-worker" || workers[0].Completed != 1 {
		t.Fatalf("workers: %+v", workers)
	}

	// Failure reporting for a task leased later: lease a second region,
	// report an error, and confirm the attempt is logged.
	sp := spec(key)
	sp.Region = 2
	if _, err := q.Enqueue(sp); err != nil {
		t.Fatal(err)
	}
	tasks, err = c.Lease(1)
	if err != nil || len(tasks) != 1 {
		t.Fatalf("second lease: %v (%d tasks)", err, len(tasks))
	}
	if err := c.Fail(tasks[0], "simulated worker error"); err != nil {
		t.Fatal(err)
	}
	if s := q.Stats(); s.Retries != 1 {
		t.Fatalf("fail not logged: %+v", s)
	}

	// Unknown trace fetches are clean errors, not junk stores.
	badKey := "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"
	if err := c.FetchTrace(wst, badKey); err == nil {
		t.Fatal("fetch of unknown trace should fail")
	}
}

// TestHTTPBodyLimits is the regression test for silent truncation: an
// oversized result upload is rejected with an explicit 413 (and an error
// message naming the limit), not truncated into a confusing JSON parse
// failure; an oversized response body is an explicit client-side error;
// and payloads under the caps still round-trip.
func TestHTTPBodyLimits(t *testing.T) {
	st, key := newTestStore(t)
	q := farm.NewQueue(st, farm.Config{LeaseTTL: 5 * time.Second})
	defer q.Close()
	fsrv := farm.NewServer(q, st)
	fsrv.MaxBody = 4 << 10
	srv := httptest.NewServer(fsrv)
	defer srv.Close()

	if _, err := q.Enqueue(spec(key)); err != nil {
		t.Fatal(err)
	}
	c := &farm.Client{Base: srv.URL}
	if err := c.Register("limit-test-worker"); err != nil {
		t.Fatal(err)
	}
	tasks, err := c.Lease(1)
	if err != nil || len(tasks) != 1 {
		t.Fatalf("lease: %v (%d tasks)", err, len(tasks))
	}
	task := tasks[0]

	// A result blown up past the body cap must be rejected explicitly.
	res := bp.RegionResult{}
	res.Counters.Instrs = 1
	big := farm.Client{Base: srv.URL, Worker: c.Worker}
	padded := struct {
		Worker  string          `json:"worker"`
		Task    string          `json:"task"`
		Result  json.RawMessage `json:"result"`
		Padding string          `json:"padding"`
	}{Worker: big.Worker, Task: task.ID, Padding: strings.Repeat("x", 8<<10)}
	if padded.Result, err = json.Marshal(res); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(padded)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.Post(srv.URL+"/farm/result", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized result upload = HTTP %d, want 413\nbody: %s", hr.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "4096 byte body limit") {
		t.Errorf("413 body does not name the limit: %s", raw)
	}
	// The task must still be leased (the attempt was not burned).
	if s := q.Stats(); s.Leased != 1 || s.Retries != 0 {
		t.Fatalf("queue stats after rejected upload: %+v", s)
	}

	// A tiny client-side response cap turns a large lease response into an
	// explicit error instead of a truncated parse.
	tiny := &farm.Client{Base: srv.URL, Worker: c.Worker, MaxResponse: 8}
	if _, err := tiny.Lease(1); err == nil || !strings.Contains(err.Error(), "exceeds the 8 byte limit") {
		t.Fatalf("tiny-cap lease error = %v, want explicit response-limit error", err)
	}

	// Under the caps, the normal flow still works.
	wst, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.FetchTrace(wst, task.TraceKey); err != nil {
		t.Fatal(err)
	}
	out, err := farm.ExecuteTask(wst, task)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Complete(task, out); err != nil {
		t.Fatal(err)
	}
}
