package farm

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"time"

	bp "barrierpoint"
	"barrierpoint/internal/fault"
	"barrierpoint/internal/store"
)

// Trace-propagation headers. The lease response lists the distinct job
// trace IDs of the handed-out tasks; result uploads echo the task's trace
// ID so coordinator-side logs and traces correlate without re-parsing
// bodies. Tasks also carry the ID in their JSON (Task.TraceID) — the
// headers are the protocol-level mirror, visible to proxies and tcpdump.
const (
	// TraceIDHeader carries one trace ID (result uploads).
	TraceIDHeader = "X-Bp-Trace-Id"
	// TraceIDsHeader carries a comma-joined list of distinct trace IDs
	// (lease responses handing out tasks from several jobs).
	TraceIDsHeader = "X-Bp-Trace-Ids"
)

// DefaultMaxBody caps farm request bodies (result uploads are the big
// ones: a RegionResult per simulated barrierpoint).
const DefaultMaxBody = 64 << 20

// Server exposes a Queue over the HTTP/JSON protocol described in the
// package documentation. It registers its routes with absolute /farm/
// paths, so cmd/bpserve mounts it directly on its own mux.
type Server struct {
	q   *Queue
	st  *store.Store
	mux *http.ServeMux
	// MaxBody caps request bodies, DefaultMaxBody if 0. Oversized requests
	// are rejected with 413 — explicitly, never by silent truncation.
	MaxBody int64
}

// NewServer wraps the queue and its store in an http.Handler.
func NewServer(q *Queue, st *store.Store) *Server {
	s := &Server{q: q, st: st, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /farm/register", s.handleRegister)
	s.mux.HandleFunc("POST /farm/lease", s.handleLease)
	s.mux.HandleFunc("POST /farm/heartbeat", s.handleHeartbeat)
	s.mux.HandleFunc("POST /farm/result", s.handleResult)
	s.mux.HandleFunc("GET /farm/workers", s.handleWorkers)
	s.mux.HandleFunc("GET /farm/trace/{key}", s.handleTrace)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) error(w http.ResponseWriter, code int, format string, args ...any) {
	s.writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	limit := s.MaxBody
	if limit <= 0 {
		limit = DefaultMaxBody
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit)).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.error(w, http.StatusRequestEntityTooLarge, "request exceeds the %d byte body limit", tooBig.Limit)
			return false
		}
		s.error(w, http.StatusBadRequest, "decoding request: %v", err)
		return false
	}
	return true
}

type registerRequest struct {
	Name string `json:"name"`
}

type registerResponse struct {
	Worker  string `json:"worker"`
	LeaseMs int64  `json:"lease_ms"`
	// Epoch identifies the queue instance; it changes when the
	// coordinator restarts, voiding worker ids and leases handed out
	// before.
	Epoch string `json:"epoch,omitempty"`
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Name == "" {
		req.Name = "anonymous"
	}
	s.writeJSON(w, http.StatusOK, registerResponse{
		Worker:  s.q.Register(req.Name),
		LeaseMs: s.q.LeaseTTL().Milliseconds(),
		Epoch:   s.q.Epoch(),
	})
}

type leaseRequest struct {
	Worker string `json:"worker"`
	Max    int    `json:"max"`
}

type leaseResponse struct {
	Tasks   []Task `json:"tasks"`
	LeaseMs int64  `json:"lease_ms"`
	Epoch   string `json:"epoch,omitempty"`
}

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Worker == "" {
		s.error(w, http.StatusBadRequest, "missing worker id")
		return
	}
	tasks := s.q.Lease(req.Worker, req.Max)
	if tasks == nil {
		tasks = []Task{}
	}
	if ids := distinctTraceIDs(tasks); ids != "" {
		w.Header().Set(TraceIDsHeader, ids)
	}
	s.writeJSON(w, http.StatusOK, leaseResponse{Tasks: tasks, LeaseMs: s.q.LeaseTTL().Milliseconds(), Epoch: s.q.Epoch()})
}

type heartbeatRequest struct {
	Worker string   `json:"worker"`
	Tasks  []string `json:"tasks"`
}

type heartbeatResponse struct {
	Renewed []string `json:"renewed"`
	Dropped []string `json:"dropped"`
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Worker == "" {
		s.error(w, http.StatusBadRequest, "missing worker id")
		return
	}
	renewed, dropped := s.q.Heartbeat(req.Worker, req.Tasks)
	if renewed == nil {
		renewed = []string{}
	}
	if dropped == nil {
		dropped = []string{}
	}
	s.writeJSON(w, http.StatusOK, heartbeatResponse{Renewed: renewed, Dropped: dropped})
}

// distinctTraceIDs joins the distinct, non-empty task trace IDs in first-
// appearance order for the TraceIDsHeader.
func distinctTraceIDs(tasks []Task) string {
	var sb strings.Builder
	seen := make(map[string]bool, len(tasks))
	for _, t := range tasks {
		if t.TraceID == "" || seen[t.TraceID] {
			continue
		}
		seen[t.TraceID] = true
		if sb.Len() > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(t.TraceID)
	}
	return sb.String()
}

type resultRequest struct {
	Worker string          `json:"worker"`
	Task   string          `json:"task"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	var req resultRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Worker == "" || req.Task == "" {
		s.error(w, http.StatusBadRequest, "missing worker or task id")
		return
	}
	if req.Error != "" {
		if err := s.q.Fail(req.Worker, req.Task, req.Error); err != nil {
			s.error(w, http.StatusInternalServerError, "%v", err)
			return
		}
		s.writeJSON(w, http.StatusOK, map[string]string{"status": "failed"})
		return
	}
	if len(req.Result) == 0 {
		s.error(w, http.StatusBadRequest, "result payload or error required")
		return
	}
	if err := s.q.Complete(req.Worker, req.Task, req.Result); err != nil {
		// A malformed payload is the client's fault; anything else (e.g.
		// a store write failure) is the server's, and the worker should
		// retry the upload rather than burn a task attempt.
		code := http.StatusInternalServerError
		if errors.Is(err, ErrBadResult) {
			code = http.StatusBadRequest
		}
		s.error(w, code, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleWorkers(w http.ResponseWriter, r *http.Request) {
	workers := s.q.Workers()
	if workers == nil {
		workers = []WorkerInfo{}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"workers": workers,
		"stats":   s.q.Stats(),
	})
}

// handleTrace serves the raw bytes of a stored trace so workers can pull
// content they are missing; the content address doubles as an integrity
// check on the worker side.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	p, err := s.st.TracePath(key)
	if err != nil {
		s.error(w, http.StatusNotFound, "trace %s not found", key)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	http.ServeFile(w, r, p)
}

// Client is a worker-side handle on a farm server. Register assigns the
// worker identity; the remaining calls map one-to-one onto the protocol.
//
// Every RPC runs under a per-attempt deadline (Timeout) and — because
// the whole protocol is idempotent (registration mints a fresh id,
// leases renew, completions dedup by task) — transparently retries
// transport errors and 5xx server trouble with capped, jittered
// exponential backoff (Retry). 4xx responses are the caller's bug and
// never retry. Each attempt consults the fault-injection site
// "rpc.<op>" (see internal/fault), which is how the chaos smokes make
// the network flaky.
type Client struct {
	// Base is the server URL, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the transport (http.DefaultClient if nil).
	HTTP *http.Client

	// Worker is the server-assigned id, set by Register.
	Worker string
	// LeaseTTL is the server's lease duration, set by Register/Lease.
	LeaseTTL time.Duration
	// Epoch is the queue-instance tag observed at Register; a Lease
	// response carrying a different epoch means the coordinator restarted
	// and Lease returns ErrServerRestarted so the caller re-registers.
	Epoch string
	// MaxResponse caps a response body read, DefaultMaxResponse if 0. A
	// larger response is an explicit error, never a silently truncated
	// (and then misparsed) payload.
	MaxResponse int64
	// Timeout bounds each RPC attempt, DefaultRPCTimeout if 0; negative
	// disables the deadline.
	Timeout time.Duration
	// Retry is the backoff policy for failed attempts; zero fields take
	// the DefaultRetry values. Retry.Attempts of 1 disables retries.
	Retry RetryPolicy
	// OnRetry, when set, observes every re-attempt (telemetry: the
	// worker's bp_rpc_retries_total counter); op is the protocol
	// operation ("register", "lease", "heartbeat", "result", "fetch"),
	// attempt the 1-based number of the attempt that just failed.
	OnRetry func(op string, attempt int, err error)
}

// RetryPolicy shapes the client's capped jittered exponential backoff.
type RetryPolicy struct {
	// Attempts is the total tries per RPC (first call included).
	Attempts int
	// Base is the backoff before the second attempt; each further wait
	// doubles, capped at Max, and is jittered to [d/2, d).
	Base time.Duration
	Max  time.Duration
}

// Default retry/timeout parameters: four attempts spanning ~1s of
// backoff rides out a coordinator restart or dropped connection without
// stalling a worker for long on a genuinely dead server.
const (
	DefaultRPCTimeout    = 30 * time.Second
	DefaultRetryAttempts = 4
	DefaultRetryBase     = 100 * time.Millisecond
	DefaultRetryMax      = 5 * time.Second
)

// DefaultRetry is the retry policy used where Client.Retry is zero.
var DefaultRetry = RetryPolicy{Attempts: DefaultRetryAttempts, Base: DefaultRetryBase, Max: DefaultRetryMax}

func (c *Client) retryPolicy() RetryPolicy {
	p := c.Retry
	if p.Attempts <= 0 {
		p.Attempts = DefaultRetry.Attempts
	}
	if p.Base <= 0 {
		p.Base = DefaultRetry.Base
	}
	if p.Max <= 0 {
		p.Max = DefaultRetry.Max
	}
	return p
}

// backoff returns the jittered wait before attempt+1 (attempt is
// 1-based): base·2^(attempt-1) capped at max, jittered to [d/2, d).
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.Base << (attempt - 1)
	if d <= 0 || d > p.Max {
		d = p.Max
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// statusError carries an HTTP status so the retry loop can tell server
// trouble (5xx, worth retrying) from caller bugs (4xx, not).
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string { return e.msg }

// retryable reports whether another attempt could help: transport
// errors and 5xx responses retry, anything the server answered
// deliberately with a 4xx does not.
func retryable(err error) bool {
	var se *statusError
	if errors.As(err, &se) {
		return se.code >= 500
	}
	return true
}

// call runs one idempotent RPC under the retry policy: per-attempt
// fault injection, deadline, and jittered backoff between attempts.
func (c *Client) call(op string, fn func(ctx context.Context) error) error {
	pol := c.retryPolicy()
	var err error
	for attempt := 1; ; attempt++ {
		err = func() error {
			if ferr := fault.Inject("rpc." + op); ferr != nil {
				return ferr
			}
			ctx := context.Background()
			if t := c.Timeout; t >= 0 {
				if t == 0 {
					t = DefaultRPCTimeout
				}
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, t)
				defer cancel()
			}
			return fn(ctx)
		}()
		if err == nil || !retryable(err) || attempt >= pol.Attempts {
			return err
		}
		if c.OnRetry != nil {
			c.OnRetry(op, attempt, err)
		}
		time.Sleep(pol.backoff(attempt))
	}
}

// DefaultMaxResponse caps farm response bodies read by the client (lease
// responses carrying a batch of tasks are the big ones).
const DefaultMaxResponse = 16 << 20

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// post sends a JSON request and decodes a JSON response under the
// retry policy, mapping non-2xx statuses onto errors carrying the
// server's error payload.
func (c *Client) post(op, path string, req, resp any) error {
	return c.postHeaders(op, path, req, resp, nil)
}

// postHeaders is post with extra request headers (trace propagation).
func (c *Client) postHeaders(op, path string, req, resp any, headers map[string]string) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	return c.call(op, func(ctx context.Context) error {
		return c.doPost(ctx, path, body, resp, headers)
	})
}

// doPost is one POST attempt: marshal-free (the body is pre-encoded so
// every retry sends identical bytes), bounded read, status mapping.
func (c *Client) doPost(ctx context.Context, path string, body []byte, resp any, headers map[string]string) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		hreq.Header.Set(k, v)
	}
	hr, err := c.httpClient().Do(hreq)
	if err != nil {
		return err
	}
	defer hr.Body.Close()
	limit := c.MaxResponse
	if limit <= 0 {
		limit = DefaultMaxResponse
	}
	// Read one byte past the cap: exactly-limit responses pass, anything
	// larger fails loudly instead of being truncated into a JSON error.
	b, err := io.ReadAll(io.LimitReader(hr.Body, limit+1))
	if err != nil {
		return err
	}
	if int64(len(b)) > limit {
		return fmt.Errorf("farm: %s: response exceeds the %d byte limit", path, limit)
	}
	if hr.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(b, &e) == nil && e.Error != "" {
			return &statusError{hr.StatusCode, fmt.Sprintf("farm: %s: %s", path, e.Error)}
		}
		return &statusError{hr.StatusCode, fmt.Sprintf("farm: %s: HTTP %d", path, hr.StatusCode)}
	}
	if resp == nil {
		return nil
	}
	return json.Unmarshal(b, resp)
}

// Register obtains a worker identity from the server.
func (c *Client) Register(name string) error {
	var resp registerResponse
	if err := c.post("register", "/farm/register", registerRequest{Name: name}, &resp); err != nil {
		return err
	}
	c.Worker = resp.Worker
	c.LeaseTTL = time.Duration(resp.LeaseMs) * time.Millisecond
	c.Epoch = resp.Epoch
	return nil
}

// Lease asks for up to max tasks. If the server's queue epoch no longer
// matches the one Register observed, the coordinator restarted — the
// worker id is stale and any held leases are void (the recovered queue
// already requeued them) — and Lease returns ErrServerRestarted without
// taking tasks; the caller should Register again and retry.
func (c *Client) Lease(max int) ([]Task, error) {
	var resp leaseResponse
	if err := c.post("lease", "/farm/lease", leaseRequest{Worker: c.Worker, Max: max}, &resp); err != nil {
		return nil, err
	}
	if resp.Epoch != "" && c.Epoch != "" && resp.Epoch != c.Epoch {
		return nil, ErrServerRestarted
	}
	c.LeaseTTL = time.Duration(resp.LeaseMs) * time.Millisecond
	return resp.Tasks, nil
}

// Heartbeat renews the leases on the listed tasks, returning the ids the
// server no longer recognizes as this worker's (abandon those).
func (c *Client) Heartbeat(ids []string) (dropped []string, err error) {
	var resp heartbeatResponse
	if err := c.post("heartbeat", "/farm/heartbeat", heartbeatRequest{Worker: c.Worker, Tasks: ids}, &resp); err != nil {
		return nil, err
	}
	return resp.Dropped, nil
}

// Complete uploads a task's simulation result, echoing the task's trace
// ID in the TraceIDHeader so the upload correlates with its job.
func (c *Client) Complete(t Task, res bp.RegionResult) error {
	b, err := json.Marshal(res)
	if err != nil {
		return err
	}
	return c.postHeaders("result", "/farm/result",
		resultRequest{Worker: c.Worker, Task: t.ID, Result: b}, nil, traceHeader(t))
}

// Fail reports a task failure with a message for the task's failure log.
func (c *Client) Fail(t Task, msg string) error {
	if msg == "" {
		msg = "unknown error"
	}
	return c.postHeaders("result", "/farm/result",
		resultRequest{Worker: c.Worker, Task: t.ID, Error: msg}, nil, traceHeader(t))
}

func traceHeader(t Task) map[string]string {
	if t.TraceID == "" {
		return nil
	}
	return map[string]string{TraceIDHeader: t.TraceID}
}

// FetchTrace downloads the trace with the given content key into the
// worker's local store, verifying that the received bytes hash to the
// requested key. Fetching a trace already present is a no-op. A failed
// or corrupt transfer retries under the client's policy — the store's
// content addressing makes the fetch idempotent.
func (c *Client) FetchTrace(st *store.Store, key string) error {
	if st.HasTrace(key) {
		return nil
	}
	return c.call("fetch", func(ctx context.Context) error {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/farm/trace/"+key, nil)
		if err != nil {
			return err
		}
		hr, err := c.httpClient().Do(hreq)
		if err != nil {
			return err
		}
		defer hr.Body.Close()
		if hr.StatusCode != http.StatusOK {
			return &statusError{hr.StatusCode, fmt.Sprintf("farm: fetching trace %.12s: HTTP %d", key, hr.StatusCode)}
		}
		got, _, err := st.PutTrace(hr.Body)
		if err != nil {
			return err
		}
		if got != key {
			st.RemoveTrace(got)
			return fmt.Errorf("farm: trace %.12s: server sent content %.12s (corrupt transfer?)", key, got)
		}
		return nil
	})
}
