package farm

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	bp "barrierpoint"
	"barrierpoint/internal/obs"
	"barrierpoint/internal/store"
)

// PointArtifact names the cached per-point simulation result for a region
// under a machine config and warmup mode. The name hashes everything the
// result depends on (store.HashJSON, the store-wide convention), so a
// farm run, a later bptool -cache run and a service job over the same
// store all share the same work.
func PointArtifact(region int, mc bp.MachineConfig, warmup string) string {
	return fmt.Sprintf("point-%06d-%s-%s.json", region, store.HashJSON(mc), store.SanitizeLabel(warmup))
}

// ExecuteTask performs a leased task against a local store: open the
// trace, simulate the single point, return the result. This is the one
// compute path shared by in-process workers and cmd/bpworker, and it
// funnels into bp.SimulatePoint — the same code LocalRunner runs — so
// farmed results are bit-identical to local ones.
func ExecuteTask(st *store.Store, t Task) (bp.RegionResult, error) {
	return ExecuteTaskCached(st, t, nil)
}

// ExecuteTaskCached is ExecuteTask with a region replay cache: a worker
// that leases many points of one trace (the common batch shape) decodes
// each warmup-prefix region once instead of once per point. rc is keyed by
// the task's trace content key; nil streams from disk. Cached and uncached
// execution are bit-identical.
func ExecuteTaskCached(st *store.Store, t Task, rc *bp.ReplayCache) (bp.RegionResult, error) {
	mode, err := bp.ParseWarmup(t.Warmup)
	if err != nil {
		return bp.RegionResult{}, err
	}
	f, err := st.OpenTrace(t.TraceKey)
	if err != nil {
		return bp.RegionResult{}, err
	}
	defer f.Close()
	return bp.SimulatePoint(rc.Program(f, t.TraceKey), t.Region, bp.TableIMachine(t.Sockets), mode)
}

// QueueRunner is a bp.PointRunner that farms each point out as a queue
// task and assembles the results as workers stream them back. Only Table
// I machines are supported: tasks describe their machine by socket count.
type QueueRunner struct {
	Q        *Queue
	TraceKey string
	// TraceID, when set, rides on every enqueued task so worker-side spans
	// link back to the submitting job (telemetry only; see Spec.TraceID).
	TraceID string
}

// RunPoints implements bp.PointRunner by enqueueing one task per distinct
// region and waiting for the fleet (or the store cache) to resolve all of
// them. The passed program is not simulated locally — workers replay
// their own copy of the trace — so p is only used for validation.
func (r QueueRunner) RunPoints(p bp.Program, regions []int, mc bp.MachineConfig, mode bp.WarmupMode) (map[int]bp.RegionResult, error) {
	if store.HashJSON(bp.TableIMachine(mc.Sockets)) != store.HashJSON(mc) {
		return nil, fmt.Errorf("farm: only Table I machines can be farmed (got a custom %d-socket config)", mc.Sockets)
	}
	if p.Threads() != mc.Cores() {
		return nil, fmt.Errorf("farm: program has %d threads but machine has %d cores", p.Threads(), mc.Cores())
	}
	seen := make(map[int]bool, len(regions))
	tickets := make([]*Ticket, 0, len(regions))
	for _, region := range regions {
		if seen[region] {
			continue
		}
		seen[region] = true
		tk, err := r.Q.Enqueue(Spec{
			TraceKey: r.TraceKey,
			Region:   region,
			Sockets:  mc.Sockets,
			Warmup:   mode.String(),
			TraceID:  r.TraceID,
		})
		if err != nil {
			return nil, err
		}
		tickets = append(tickets, tk)
	}
	return WaitAll(context.Background(), tickets)
}

// CachedRunner is a bp.PointRunner that serves points from the
// content-addressed store when their artifacts exist and delegates the
// misses to Inner, caching what it computes. It is how local execution
// (bptool -cache, bpserve local jobs) shares per-point work with the farm.
type CachedRunner struct {
	St       *store.Store
	TraceKey string
	Inner    bp.PointRunner

	// Hits and Misses are populated by RunPoints (not synchronized; read
	// them after it returns).
	Hits, Misses int
}

// RunPoints implements bp.PointRunner with read-through caching per point.
func (r *CachedRunner) RunPoints(p bp.Program, regions []int, mc bp.MachineConfig, mode bp.WarmupMode) (map[int]bp.RegionResult, error) {
	out := make(map[int]bp.RegionResult, len(regions))
	var missing []int
	seen := make(map[int]bool, len(regions))
	for _, region := range regions {
		if seen[region] {
			continue
		}
		seen[region] = true
		name := PointArtifact(region, mc, mode.String())
		if b, err := r.St.GetArtifact(r.TraceKey, name); err == nil {
			var res bp.RegionResult
			if err := json.Unmarshal(b, &res); err == nil {
				out[region] = res
				r.Hits++
				continue
			}
		} else if !errors.Is(err, store.ErrNotFound) {
			return nil, err
		}
		missing = append(missing, region)
		r.Misses++
	}
	if len(missing) == 0 {
		return out, nil
	}
	computed, err := r.Inner.RunPoints(p, missing, mc, mode)
	if err != nil {
		return nil, err
	}
	for region, res := range computed {
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := r.St.PutArtifact(r.TraceKey, PointArtifact(region, mc, mode.String()), b); err != nil {
			return nil, err
		}
		out[region] = res
	}
	return out, nil
}

// RunLocalWorker drives an in-process worker against the queue until ctx
// is done or the queue closes: lease, simulate via ExecuteTask over st
// (which must hold — or share — the traces), upload. It powers tests and
// benchmarks; cmd/bpworker is the same loop over the HTTP protocol.
func RunLocalWorker(ctx context.Context, q *Queue, st *store.Store, name string) {
	id := q.Register(name)
	// All in-process workers of one queue share a single decoded-region
	// cache: one budget, and each region decoded once for the whole fleet.
	rc := q.replayCache()
	idle := q.cfg.SweepEvery / 2
	if idle <= 0 || idle > 50*time.Millisecond {
		idle = 50 * time.Millisecond
	}
	for ctx.Err() == nil {
		tasks := q.Lease(id, 1)
		if len(tasks) == 0 {
			q.mu.Lock()
			closed := q.closed
			q.mu.Unlock()
			if closed {
				return
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(idle):
			}
			continue
		}
		for _, t := range tasks {
			// The span carries the enqueuing job's trace ID, so the queue's
			// WorkerSpans recorder answers "which worker ran this job's
			// points, and how long did each stage take".
			span := obs.NewSpan(t.TraceID, "farm-task")
			span.SetAttr("task", t.ID)
			span.SetAttr("worker", id)
			stop := span.StartStage("simulate")
			res, err := ExecuteTaskCached(st, t, rc)
			stop()
			if err != nil {
				q.Fail(id, t.ID, err.Error())
				span.SetAttr("error", err.Error())
				span.Finish()
				q.workerSpans.Record(span.Data())
				continue
			}
			b, err := json.Marshal(res)
			if err != nil {
				q.Fail(id, t.ID, err.Error())
				continue
			}
			stop = span.StartStage("upload")
			q.Complete(id, t.ID, b)
			stop()
			span.Finish()
			q.workerSpans.Record(span.Data())
		}
	}
}
