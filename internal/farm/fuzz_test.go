package farm

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// FuzzWALReplay hammers the journal replay with arbitrary bytes. Replay
// guards the coordinator's restart path, so it must never panic, never
// allocate unboundedly, and always produce a state that the compaction
// encoding can round-trip — a damaged journal may lose its tail, but it
// must never wedge recovery. Seeds are real journals written by a live
// queue plus damaged variants; `go test -run TestUpdateFuzzCorpus
// -update-corpus` rewrites the committed corpus under testdata/fuzz.

var fuzzCRC = crc32.MakeTable(crc32.Castagnoli)

// fuzzFrame encodes one record in the WAL framing (length, CRC-32C,
// payload) without going through a file, for seed and round-trip
// construction.
func fuzzFrame(payload []byte) []byte {
	b := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(b, uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[4:], crc32.Checksum(payload, fuzzCRC))
	copy(b[8:], payload)
	return b
}

// encodeLive serializes a replayed state exactly the way compactLocked
// would: per live task an enqueue record with its failure log, plus a
// lease record if it was in flight.
func encodeLive(s *walState) []byte {
	var buf bytes.Buffer
	emit := func(rec walRecord) {
		b, err := json.Marshal(rec)
		if err != nil {
			panic(err) // walRecord marshaling cannot fail
		}
		buf.Write(fuzzFrame(b))
	}
	for _, wt := range s.live() {
		emit(walRecord{Op: opEnqueue, Task: &wt.Task, Failures: wt.failures})
		if wt.leased {
			emit(walRecord{Op: opLease, ID: wt.ID, Worker: wt.worker, Attempt: wt.Attempt})
		}
	}
	return buf.Bytes()
}

// walFuzzSeeds records real journals: a fresh queue driven through every
// record type, and the compacted journal a restart of it leaves behind.
func walFuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	dir := tb.TempDir()
	q, _, st, walPath := newDurable(tb, dir)
	for r := 0; r < 3; r++ {
		if _, err := q.Enqueue(spec(r)); err != nil {
			tb.Fatal(err)
		}
	}
	tasks := q.Lease("w1", 2)
	if len(tasks) != 2 {
		tb.Fatalf("leased %d tasks, want 2", len(tasks))
	}
	if err := q.Fail("w1", tasks[0].ID, "seed failure"); err != nil {
		tb.Fatal(err)
	}
	if err := q.Complete("w1", tasks[1].ID, resultJSON(tb)); err != nil {
		tb.Fatal(err)
	}
	crash(q)
	full, err := os.ReadFile(walPath)
	if err != nil {
		tb.Fatal(err)
	}

	// Reopening compacts: the second seed is the canonical live-state form.
	q2, _ := reopenDurable(tb, st, walPath)
	crash(q2)
	compacted, err := os.ReadFile(walPath)
	if err != nil {
		tb.Fatal(err)
	}

	// Hand-built pathological records replay must shrug off: references to
	// unknown tasks, an id-less enqueue, a duplicate enqueue, a negative
	// attempt, and an intact frame that is not JSON at all.
	rec := func(w walRecord) []byte {
		b, err := json.Marshal(w)
		if err != nil {
			tb.Fatal(err)
		}
		return fuzzFrame(b)
	}
	var odd bytes.Buffer
	odd.Write(rec(walRecord{Op: opLease, ID: "task-999999", Worker: "ghost"}))
	odd.Write(rec(walRecord{Op: opEnqueue, Task: &Task{}}))
	odd.Write(rec(walRecord{Op: opComplete, ID: "never-existed"}))
	odd.Write(rec(walRecord{Op: opEnqueue, Task: &Task{ID: "task-000001", TraceKey: fakeTraceKey, Region: 1, Attempt: -3}}))
	odd.Write(rec(walRecord{Op: opEnqueue, Task: &Task{ID: "task-000001", TraceKey: fakeTraceKey, Region: 2}}))
	odd.Write(rec(walRecord{Op: opLease, ID: "task-000001", Worker: "w1"}))
	odd.Write(fuzzFrame([]byte("not json at all")))
	odd.Write(rec(walRecord{Op: opRequeue, ID: "task-000001", Msg: "requeued"}))

	return [][]byte{full, compacted, odd.Bytes()}
}

// corruptWAL derives damaged journal variants: truncations through frame
// boundaries and flips in the length, checksum and payload bytes.
func corruptWAL(seed []byte) [][]byte {
	if len(seed) < 16 {
		return nil
	}
	var out [][]byte
	for _, n := range []int{len(seed) / 2, len(seed) - 1, 9, 4} {
		if n > 0 && n < len(seed) {
			out = append(out, seed[:n])
		}
	}
	flip := func(off int, mask byte) {
		b := append([]byte(nil), seed...)
		b[off] ^= mask
		out = append(out, b)
	}
	flip(0, 0xff) // first frame's length field
	flip(4, 0x01) // first frame's checksum
	flip(9, 0x20) // payload byte (JSON damage behind a now-bad checksum)
	flip(len(seed)-1, 0x80)
	return out
}

func allWALSeeds(tb testing.TB) [][]byte {
	var all [][]byte
	for _, s := range walFuzzSeeds(tb) {
		all = append(all, s)
		all = append(all, corruptWAL(s)...)
	}
	return all
}

func FuzzWALReplay(f *testing.F) {
	for _, s := range allWALSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, valid, n, err := replayWALReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("replay returned error %v (must fold any byte stream)", err)
		}
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d out of range [0,%d]", valid, len(data))
		}
		if len(s.tasks) > n {
			t.Fatalf("%d live tasks from %d records", len(s.tasks), n)
		}
		live := s.live()
		for i, wt := range live {
			if wt.ID == "" {
				t.Fatal("live task with empty id survived replay")
			}
			if i > 0 && live[i-1].seq >= wt.seq {
				t.Fatalf("live order not strictly seq-sorted at %d", i)
			}
		}

		// Compaction must be a replay fixpoint: one encode/replay round
		// canonicalizes whatever a hostile journal produced (e.g. negative
		// attempt counts), after which encode∘replay is the identity. A
		// journal this property does not hold for would mutate queue state
		// on every coordinator restart.
		c1 := encodeLive(s)
		s2, _, _, err := replayWALReader(bytes.NewReader(c1))
		if err != nil {
			t.Fatalf("replaying compacted form: %v", err)
		}
		c2 := encodeLive(s2)
		s3, _, _, err := replayWALReader(bytes.NewReader(c2))
		if err != nil {
			t.Fatalf("replaying canonical form: %v", err)
		}
		if c3 := encodeLive(s3); !bytes.Equal(c2, c3) {
			t.Fatalf("compaction not a fixpoint:\n round 2: %q\n round 3: %q", c2, c3)
		}
		if len(s2.tasks) != len(s.tasks) || len(s3.tasks) != len(s2.tasks) {
			t.Fatalf("live task count drifted across compaction rounds: %d, %d, %d",
				len(s.tasks), len(s2.tasks), len(s3.tasks))
		}
	})
}

var updateCorpus = flag.Bool("update-corpus", false, "rewrite the committed fuzz seed corpus under testdata/fuzz")

// TestUpdateFuzzCorpus regenerates the committed seed corpus (in the Go
// fuzzing corpus-file encoding) so CI fuzz smoke runs start from real
// journal shapes even without a local fuzzing cache. Run with
// -update-corpus to rewrite.
func TestUpdateFuzzCorpus(t *testing.T) {
	if !*updateCorpus {
		t.Skip("run with -update-corpus to rewrite testdata/fuzz")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzWALReplay")
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range allWALSeeds(t) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(s)))
		path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
