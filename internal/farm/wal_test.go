package farm

// White-box tests of the queue's write-ahead log: exact recovery of
// pending and in-flight tasks, crash points injected between every WAL
// append and its in-memory apply (the crashHook seam), the
// artifact-already-stored race, and compaction as a replay fixpoint.

import (
	"encoding/json"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	bp "barrierpoint"
	"barrierpoint/internal/store"
)

// fakeTraceKey is a well-formed content key for queue-level tests that
// never execute tasks (nothing in Enqueue/Lease/Fail opens the trace).
const fakeTraceKey = "abababababababababababababababababababababababababababababababab"

func testConfig() Config {
	return Config{LeaseTTL: time.Minute, MaxAttempts: 3, SweepEvery: time.Hour}
}

func newDurable(t testing.TB, dir string) (*Queue, Recovery, *store.Store, string) {
	t.Helper()
	st, err := store.Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, "store", "farm.wal")
	q, rec, err := NewDurableQueue(st, testConfig(), walPath)
	if err != nil {
		t.Fatal(err)
	}
	return q, rec, st, walPath
}

func reopenDurable(t testing.TB, st *store.Store, walPath string) (*Queue, Recovery) {
	t.Helper()
	q, rec, err := NewDurableQueue(st, testConfig(), walPath)
	if err != nil {
		t.Fatal(err)
	}
	return q, rec
}

// crash abandons the queue the way kill -9 would: the sweeper stops and
// the WAL file handle drops, but — unlike Close — nothing is journaled,
// no tickets resolve, and no in-memory cleanup runs.
func crash(q *Queue) {
	q.mu.Lock()
	q.closed = true
	if q.wal != nil {
		q.wal.Close()
	}
	close(q.stopSweep)
	q.mu.Unlock()
	<-q.sweepDone
}

func spec(region int) Spec {
	return Spec{TraceKey: fakeTraceKey, Region: region, Sockets: 1, Warmup: "cold"}
}

func resultJSON(t testing.TB) []byte {
	t.Helper()
	b, err := json.Marshal(bp.RegionResult{})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestDurableQueueRecoversPendingAndInFlight(t *testing.T) {
	q1, rec, st, walPath := newDurable(t, t.TempDir())
	if rec != (Recovery{}) {
		t.Fatalf("fresh queue reported recovery %+v", rec)
	}
	for r := 0; r < 3; r++ {
		if _, err := q1.Enqueue(spec(r)); err != nil {
			t.Fatal(err)
		}
	}
	leased := q1.Lease("w1", 1)
	if len(leased) != 1 || leased[0].Region != 0 || leased[0].Attempt != 1 {
		t.Fatalf("lease = %+v, want region 0 attempt 1", leased)
	}
	crash(q1)

	q2, rec := reopenDurable(t, st, walPath)
	defer q2.Close()
	if rec.Pending != 2 || rec.Requeued != 1 || rec.StoreHits != 0 {
		t.Fatalf("recovery = %+v, want 2 pending, 1 requeued", rec)
	}
	if rec.Records != 4 { // 3 enqueues + 1 lease
		t.Errorf("recovery replayed %d records, want 4", rec.Records)
	}

	// Pending tasks come back first in their original order, then the
	// interrupted lease; the recovered lease keeps its attempt count, so
	// re-leasing it is attempt 2.
	got := q2.Lease("w2", 10)
	if len(got) != 3 {
		t.Fatalf("recovered queue leased %d tasks, want 3", len(got))
	}
	wantRegions := []int{1, 2, 0}
	wantAttempts := []int{1, 1, 2}
	for i, task := range got {
		if task.Region != wantRegions[i] || task.Attempt != wantAttempts[i] {
			t.Errorf("task %d = region %d attempt %d, want region %d attempt %d",
				i, task.Region, task.Attempt, wantRegions[i], wantAttempts[i])
		}
	}
	// The interruption is on the record for the requeued task.
	q2.mu.Lock()
	var interrupted *task
	for _, tk := range q2.tasks {
		if tk.Region == 0 {
			interrupted = tk
		}
	}
	q2.mu.Unlock()
	if interrupted == nil || len(interrupted.failures) != 1 ||
		!strings.Contains(interrupted.failures[0], "coordinator restarted") {
		t.Errorf("requeued task failures = %v, want one coordinator-restart entry", interrupted.failures)
	}

	// Task ids must not collide with the previous life's.
	tk, err := q2.Enqueue(Spec{TraceKey: fakeTraceKey, Region: 9, Sockets: 1, Warmup: "cold"})
	if err != nil {
		t.Fatal(err)
	}
	_ = tk
	q2.mu.Lock()
	if _, clash := q2.tasks["task-000004"]; !clash {
		t.Error("fresh enqueue after recovery did not continue the id sequence (want task-000004)")
	}
	q2.mu.Unlock()
}

func TestRecoveredTicketsReattachViaDedup(t *testing.T) {
	q1, _, st, walPath := newDurable(t, t.TempDir())
	if _, err := q1.Enqueue(spec(5)); err != nil {
		t.Fatal(err)
	}
	crash(q1)

	q2, rec := reopenDurable(t, st, walPath)
	defer q2.Close()
	if rec.Pending != 1 {
		t.Fatalf("recovery = %+v, want 1 pending", rec)
	}
	// A re-submitted job enqueues the same point and must share the
	// recovered task's ticket rather than duplicating the work.
	tk, err := q2.Enqueue(spec(5))
	if err != nil {
		t.Fatal(err)
	}
	if s := q2.Stats(); s.DedupInflight != 1 || s.Enqueued != 0 {
		t.Fatalf("stats = %+v, want the enqueue to dedup onto the recovered task", s)
	}
	tasks := q2.Lease("w1", 1)
	if len(tasks) != 1 {
		t.Fatal("no task leased")
	}
	if err := q2.Complete("w1", tasks[0].ID, resultJSON(t)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-tk.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("re-attached ticket never resolved")
	}
	if _, err := tk.Result(); err != nil {
		t.Fatalf("ticket error: %v", err)
	}
}

func TestRecoveryResolvesStoredArtifacts(t *testing.T) {
	q1, _, st, walPath := newDurable(t, t.TempDir())
	if _, err := q1.Enqueue(spec(2)); err != nil {
		t.Fatal(err)
	}
	tasks := q1.Lease("w1", 1)
	if len(tasks) != 1 {
		t.Fatal("no task leased")
	}
	// The worker's upload reached the store, but the crash beat the
	// journal's complete record.
	if err := st.PutArtifact(fakeTraceKey, tasks[0].Artifact, resultJSON(t)); err != nil {
		t.Fatal(err)
	}
	crash(q1)

	q2, rec := reopenDurable(t, st, walPath)
	defer q2.Close()
	if rec.StoreHits != 1 || rec.Pending != 0 || rec.Requeued != 0 {
		t.Fatalf("recovery = %+v, want exactly one store hit", rec)
	}
	// And the point is served from cache on re-enqueue.
	tk, err := q2.Enqueue(spec(2))
	if err != nil {
		t.Fatal(err)
	}
	if !tk.Cached() {
		t.Error("re-enqueued point did not resolve from the store")
	}
}

// TestCrashPointPerOp injects a crash between every WAL append and its
// in-memory apply — the window where journal and memory disagree — and
// proves recovery converges to a consistent state for each record type.
func TestCrashPointPerOp(t *testing.T) {
	armHook := func(q *Queue, op string) *int {
		fired := 0
		q.crashHook = func(got string) error {
			if got == op {
				fired++
				return errors.New("injected crash after append, before apply")
			}
			return nil
		}
		return &fired
	}

	t.Run("enqueue", func(t *testing.T) {
		q1, _, st, walPath := newDurable(t, t.TempDir())
		fired := armHook(q1, opEnqueue)
		if _, err := q1.Enqueue(spec(0)); err == nil {
			t.Fatal("crashed enqueue reported success")
		}
		if *fired != 1 {
			t.Fatalf("crash hook fired %d times, want 1", *fired)
		}
		if s := q1.Stats(); s.Pending != 0 || s.Enqueued != 0 {
			t.Fatalf("in-memory state after crashed enqueue: %+v, want untouched", s)
		}
		crash(q1)
		// The record was durable, so the task exists after recovery; the
		// client that saw the error re-enqueues and dedups onto it.
		q2, rec := reopenDurable(t, st, walPath)
		defer q2.Close()
		if rec.Pending != 1 {
			t.Fatalf("recovery = %+v, want the journaled task back", rec)
		}
		if _, err := q2.Enqueue(spec(0)); err != nil {
			t.Fatal(err)
		}
		if s := q2.Stats(); s.DedupInflight != 1 {
			t.Fatalf("re-enqueue did not dedup onto recovered task: %+v", s)
		}
	})

	t.Run("lease", func(t *testing.T) {
		q1, _, st, walPath := newDurable(t, t.TempDir())
		if _, err := q1.Enqueue(spec(0)); err != nil {
			t.Fatal(err)
		}
		fired := armHook(q1, opLease)
		if tasks := q1.Lease("w1", 1); len(tasks) != 0 {
			t.Fatalf("crashed lease handed out %d tasks", len(tasks))
		}
		if *fired != 1 {
			t.Fatalf("crash hook fired %d times, want 1", *fired)
		}
		// In memory the task went back to pending; disarm and verify it
		// leases cleanly.
		q1.crashHook = nil
		if tasks := q1.Lease("w1", 1); len(tasks) != 1 {
			t.Fatal("task lost after crashed lease")
		}
		crash(q1)
		// The journal holds two lease records; replay treats the task as
		// in-flight and requeues it.
		q2, rec := reopenDurable(t, st, walPath)
		defer q2.Close()
		if rec.Requeued != 1 || rec.Pending != 0 {
			t.Fatalf("recovery = %+v, want 1 requeued", rec)
		}
	})

	t.Run("requeue", func(t *testing.T) {
		q1, _, st, walPath := newDurable(t, t.TempDir())
		if _, err := q1.Enqueue(spec(0)); err != nil {
			t.Fatal(err)
		}
		tasks := q1.Lease("w1", 1)
		if len(tasks) != 1 {
			t.Fatal("no task leased")
		}
		fired := armHook(q1, opRequeue)
		if err := q1.Fail("w1", tasks[0].ID, "simulated failure"); err == nil {
			t.Fatal("crashed fail reported success")
		}
		if *fired != 1 {
			t.Fatalf("crash hook fired %d times, want 1", *fired)
		}
		// In memory the task is still leased (the transition did not
		// apply); after recovery the journaled requeue has.
		if s := q1.Stats(); s.Leased != 1 || s.Retries != 0 {
			t.Fatalf("in-memory state after crashed requeue: %+v", s)
		}
		crash(q1)
		q2, rec := reopenDurable(t, st, walPath)
		defer q2.Close()
		if rec.Pending != 1 || rec.Requeued != 0 {
			t.Fatalf("recovery = %+v, want 1 pending (requeue applied by replay)", rec)
		}
		q2.mu.Lock()
		var failures []string
		for _, tk := range q2.tasks {
			failures = tk.failures
		}
		q2.mu.Unlock()
		if len(failures) != 1 || !strings.Contains(failures[0], "simulated failure") {
			t.Errorf("recovered failure log = %v, want the journaled attempt failure", failures)
		}
	})

	t.Run("complete", func(t *testing.T) {
		q1, _, st, walPath := newDurable(t, t.TempDir())
		tk, err := q1.Enqueue(spec(0))
		if err != nil {
			t.Fatal(err)
		}
		tasks := q1.Lease("w1", 1)
		if len(tasks) != 1 {
			t.Fatal("no task leased")
		}
		fired := armHook(q1, opComplete)
		if err := q1.Complete("w1", tasks[0].ID, resultJSON(t)); err == nil {
			t.Fatal("crashed complete reported success")
		}
		if *fired != 1 {
			t.Fatalf("crash hook fired %d times, want 1", *fired)
		}
		select {
		case <-tk.Done():
			t.Fatal("ticket resolved although the apply never ran")
		default:
		}
		crash(q1)
		q2, rec := reopenDurable(t, st, walPath)
		defer q2.Close()
		if rec.Completed != 1 || rec.Pending != 0 || rec.Requeued != 0 {
			t.Fatalf("recovery = %+v, want the completion applied by replay", rec)
		}
	})

	t.Run("fail", func(t *testing.T) {
		st, err := store.Open(filepath.Join(t.TempDir(), "store"))
		if err != nil {
			t.Fatal(err)
		}
		walPath := filepath.Join(st.Root(), "farm.wal")
		cfg := testConfig()
		cfg.MaxAttempts = 1 // first failure is permanent
		q1, _, err := NewDurableQueue(st, cfg, walPath)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := q1.Enqueue(spec(0)); err != nil {
			t.Fatal(err)
		}
		tasks := q1.Lease("w1", 1)
		if len(tasks) != 1 {
			t.Fatal("no task leased")
		}
		fired := armHook(q1, opFail)
		if err := q1.Fail("w1", tasks[0].ID, "fatal"); err == nil {
			t.Fatal("crashed fail reported success")
		}
		if *fired != 1 {
			t.Fatalf("crash hook fired %d times, want 1", *fired)
		}
		if s := q1.Stats(); s.Failed != 0 || s.Leased != 1 {
			t.Fatalf("in-memory state after crashed fail: %+v", s)
		}
		crash(q1)
		q2, rec, err := NewDurableQueue(st, cfg, walPath)
		if err != nil {
			t.Fatal(err)
		}
		defer q2.Close()
		if rec.Failed != 1 || rec.Pending != 0 || rec.Requeued != 0 {
			t.Fatalf("recovery = %+v, want the permanent failure applied by replay", rec)
		}
	})
}

// TestCompactionFixpoint verifies that compacting and then replaying the
// journal reconstructs exactly the queue's live state, including pending
// order, attempt counts and failure logs — and that compaction is
// idempotent.
func TestCompactionFixpoint(t *testing.T) {
	q1, _, st, walPath := newDurable(t, t.TempDir())
	for r := 0; r < 5; r++ {
		if _, err := q1.Enqueue(spec(r)); err != nil {
			t.Fatal(err)
		}
	}
	// Build history: lease two, fail one back to pending, complete one.
	tasks := q1.Lease("w1", 2)
	if len(tasks) != 2 {
		t.Fatalf("leased %d, want 2", len(tasks))
	}
	if err := q1.Fail("w1", tasks[0].ID, "attempt failed"); err != nil {
		t.Fatal(err)
	}
	if err := q1.Complete("w1", tasks[1].ID, resultJSON(t)); err != nil {
		t.Fatal(err)
	}

	snapshot := func(q *Queue) (pending []string, leased map[string]int, failures map[string]int) {
		q.mu.Lock()
		defer q.mu.Unlock()
		leased = make(map[string]int)
		failures = make(map[string]int)
		for _, tk := range q.pending {
			if q.tasks[tk.ID] == tk && !tk.leased {
				pending = append(pending, tk.ID)
			}
		}
		for id, tk := range q.tasks {
			if tk.leased {
				leased[id] = tk.Attempt
			}
			failures[id] = len(tk.failures)
		}
		return
	}
	wantPending, wantLeased, wantFailures := snapshot(q1)

	q1.mu.Lock()
	if err := q1.compactLocked(); err != nil {
		q1.mu.Unlock()
		t.Fatal(err)
	}
	recsAfterOnce := q1.walRecs
	if err := q1.compactLocked(); err != nil {
		q1.mu.Unlock()
		t.Fatal(err)
	}
	if q1.walRecs != recsAfterOnce {
		q1.mu.Unlock()
		t.Fatalf("second compaction changed record count %d -> %d", recsAfterOnce, q1.walRecs)
	}
	q1.mu.Unlock()
	crash(q1)

	q2, rec := reopenDurable(t, st, walPath)
	defer q2.Close()
	if rec.Pending+rec.Requeued != len(wantPending)+len(wantLeased) {
		t.Fatalf("recovery = %+v, want %d live tasks", rec, len(wantPending)+len(wantLeased))
	}
	gotPending, _, gotFailures := snapshot(q2)
	// Recovered order: the compacted pending order first, then requeued
	// leases.
	for i, id := range wantPending {
		if i >= len(gotPending) || gotPending[i] != id {
			t.Fatalf("pending after recovery = %v, want prefix %v", gotPending, wantPending)
		}
	}
	for id, attempt := range wantLeased {
		q2.mu.Lock()
		tk, ok := q2.tasks[id]
		q2.mu.Unlock()
		if !ok {
			t.Fatalf("leased task %s lost in compaction", id)
		}
		if tk.Attempt != attempt {
			t.Errorf("task %s attempt %d after recovery, want %d", id, tk.Attempt, attempt)
		}
	}
	for id, n := range wantFailures {
		// Requeued in-flight tasks gain one coordinator-restart entry.
		extra := 0
		if _, wasLeased := wantLeased[id]; wasLeased {
			extra = 1
		}
		if got := gotFailures[id]; got != n+extra {
			t.Errorf("task %s has %d failure entries after recovery, want %d", id, got, n+extra)
		}
	}
}

// TestCompactionTriggersUnderChurn drives enough journal records through
// a small queue to cross the compaction thresholds and checks the log
// shrinks back to the live state.
func TestCompactionTriggersUnderChurn(t *testing.T) {
	q, _, _, _ := newDurable(t, t.TempDir())
	defer q.Close()
	// Each round is enqueue+lease+complete = 3 records with ~1 live task;
	// the trigger (>= 1024 records and >= 4x live) fires during the churn.
	for i := 0; i < 400; i++ {
		if _, err := q.Enqueue(spec(i)); err != nil {
			t.Fatal(err)
		}
		tasks := q.Lease("w1", 1)
		if len(tasks) != 1 {
			t.Fatal("no task leased")
		}
		if err := q.Complete("w1", tasks[0].ID, resultJSON(t)); err != nil {
			t.Fatal(err)
		}
	}
	s := q.Stats()
	if s.WALCompactions < 1 {
		t.Fatalf("no compaction after %d appends (stats %+v)", s.WALAppends, s)
	}
	q.mu.Lock()
	recs := q.walRecs
	q.mu.Unlock()
	if recs >= walCompactMinRecords+walCompactFactor {
		t.Errorf("journal still holds %d records after compaction", recs)
	}
}

func TestInMemoryQueueUnaffected(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	q := NewQueue(st, testConfig())
	defer q.Close()
	if _, err := q.Enqueue(spec(0)); err != nil {
		t.Fatal(err)
	}
	s := q.Stats()
	if s.WALAppends != 0 || s.WALBytes != 0 {
		t.Fatalf("in-memory queue touched a WAL: %+v", s)
	}
	if q.Recovery() != (Recovery{}) {
		t.Fatalf("in-memory queue reported recovery %+v", q.Recovery())
	}
}

func TestStaleWorkerIDGetsNoLease(t *testing.T) {
	q1, _, st, walPath := newDurable(t, t.TempDir())
	staleID := q1.Register("old-life")
	if _, err := q1.Enqueue(spec(0)); err != nil {
		t.Fatal(err)
	}
	crash(q1)

	q2, _ := reopenDurable(t, st, walPath)
	defer q2.Close()
	if tasks := q2.Lease(staleID, 1); len(tasks) != 0 {
		t.Fatalf("restarted queue leased %d tasks to a previous-epoch worker id", len(tasks))
	}
	// Free-form ids still auto-register and lease (test and ad-hoc
	// clients depend on it), and a fresh registration works.
	if tasks := q2.Lease("adhoc", 1); len(tasks) != 1 {
		t.Fatal("free-form worker id could not lease")
	}
	if q1.Epoch() == q2.Epoch() {
		t.Error("restarted queue kept the same epoch")
	}
}
