package farm_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	bp "barrierpoint"
	"barrierpoint/internal/farm"
	"barrierpoint/internal/store"
	"barrierpoint/internal/tracefile"
	"barrierpoint/internal/workload"
)

// newTestStore opens a fresh store holding one small recorded trace and
// returns it with the trace's content key.
func newTestStore(t testing.TB) (*store.Store, string) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	prog := workload.New("npb-is", 8, workload.WithScale(0.05))
	if err := tracefile.Record(&buf, prog); err != nil {
		t.Fatal(err)
	}
	key, _, err := st.PutTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return st, key
}

func spec(key string) farm.Spec {
	return farm.Spec{TraceKey: key, Region: 1, Sockets: 1, Warmup: "cold"}
}

// waitTicket fails the test if the ticket does not resolve in time.
func waitTicket(t *testing.T, tk *farm.Ticket) (bp.RegionResult, error) {
	t.Helper()
	select {
	case <-tk.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("ticket did not resolve")
	}
	return tk.Result()
}

// completeJSON simulates the task against the store and returns the wire
// payload a worker would upload.
func completeJSON(t *testing.T, st *store.Store, tk farm.Task) []byte {
	t.Helper()
	res, err := farm.ExecuteTask(st, tk)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestEnqueueDedupAndStoreReuse covers both dedup layers: identical specs
// share one live task and one ticket, and once a result lands in the
// store a later enqueue resolves immediately without queuing anything.
func TestEnqueueDedupAndStoreReuse(t *testing.T) {
	st, key := newTestStore(t)
	q := farm.NewQueue(st, farm.Config{})
	defer q.Close()

	tk1, err := q.Enqueue(spec(key))
	if err != nil {
		t.Fatal(err)
	}
	tk2, err := q.Enqueue(spec(key))
	if err != nil {
		t.Fatal(err)
	}
	if tk1 != tk2 {
		t.Fatal("identical live specs should share a ticket")
	}
	if s := q.Stats(); s.DedupInflight != 1 || s.Enqueued != 1 {
		t.Fatalf("stats after dup enqueue: %+v", s)
	}

	tasks := q.Lease("w1", 10)
	if len(tasks) != 1 {
		t.Fatalf("leased %d tasks, want 1", len(tasks))
	}
	if tasks[0].Attempt != 1 {
		t.Fatalf("attempt = %d, want 1", tasks[0].Attempt)
	}
	if err := q.Complete("w1", tasks[0].ID, completeJSON(t, st, tasks[0])); err != nil {
		t.Fatal(err)
	}
	res1, err := waitTicket(t, tk1)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Cycles == 0 || res1.Counters.Instrs == 0 {
		t.Fatalf("implausible result: %+v", res1)
	}

	// The result is now a store artifact: a fresh enqueue is a cache hit.
	tk3, err := q.Enqueue(spec(key))
	if err != nil {
		t.Fatal(err)
	}
	<-tk3.Done()
	if !tk3.Cached() {
		t.Fatal("post-completion enqueue should resolve from the store")
	}
	res3, _ := tk3.Result()
	b1, _ := json.Marshal(res1)
	b3, _ := json.Marshal(res3)
	if !bytes.Equal(b1, b3) {
		t.Fatalf("cached result differs: %s vs %s", b3, b1)
	}
	if !st.HasArtifact(key, tasks[0].Artifact) {
		t.Fatal("point artifact missing from store")
	}
}

// TestLeaseExpiryRequeue is the worker-loss scenario: a worker leases a
// task and dies silently; after the TTL the sweeper requeues it and a
// second worker completes it, resolving the original ticket.
func TestLeaseExpiryRequeue(t *testing.T) {
	st, key := newTestStore(t)
	q := farm.NewQueue(st, farm.Config{LeaseTTL: 60 * time.Millisecond, SweepEvery: 10 * time.Millisecond})
	defer q.Close()

	tk, err := q.Enqueue(spec(key))
	if err != nil {
		t.Fatal(err)
	}
	dead := q.Lease("dead-worker", 1)
	if len(dead) != 1 {
		t.Fatalf("leased %d, want 1", len(dead))
	}

	// Second worker polls until the expired task is reassigned to it.
	var got farm.Task
	deadline := time.Now().Add(10 * time.Second)
	for {
		if tasks := q.Lease("live-worker", 1); len(tasks) == 1 {
			got = tasks[0]
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("expired task never requeued")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got.ID != dead[0].ID {
		t.Fatalf("requeued task %s != original %s", got.ID, dead[0].ID)
	}
	if got.Attempt != 2 {
		t.Fatalf("attempt = %d, want 2", got.Attempt)
	}
	if err := q.Complete("live-worker", got.ID, completeJSON(t, st, got)); err != nil {
		t.Fatal(err)
	}
	if _, err := waitTicket(t, tk); err != nil {
		t.Fatal(err)
	}
	if s := q.Stats(); s.Expired != 1 || s.Retries != 1 || s.Completed != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestHeartbeatKeepsLease proves heartbeats renew leases past the TTL and
// that stopping them surrenders the task.
func TestHeartbeatKeepsLease(t *testing.T) {
	st, key := newTestStore(t)
	q := farm.NewQueue(st, farm.Config{LeaseTTL: 80 * time.Millisecond, SweepEvery: 10 * time.Millisecond})
	defer q.Close()

	if _, err := q.Enqueue(spec(key)); err != nil {
		t.Fatal(err)
	}
	tasks := q.Lease("w1", 1)
	if len(tasks) != 1 {
		t.Fatal("no lease")
	}
	id := tasks[0].ID

	// Heartbeat for ~4 TTLs; the task must never be leased to anyone else.
	for i := 0; i < 16; i++ {
		renewed, dropped := q.Heartbeat("w1", []string{id})
		if len(renewed) != 1 || len(dropped) != 0 {
			t.Fatalf("heartbeat %d: renewed %v dropped %v", i, renewed, dropped)
		}
		if stolen := q.Lease("w2", 1); len(stolen) != 0 {
			t.Fatalf("heartbeat %d: task reassigned while heartbeating", i)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if s := q.Stats(); s.Expired != 0 {
		t.Fatalf("lease expired despite heartbeats: %+v", s)
	}

	// Stop heartbeating: the task must eventually land on w2, and a late
	// heartbeat from w1 must report it dropped.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if tasks := q.Lease("w2", 1); len(tasks) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("abandoned lease never expired")
		}
		time.Sleep(10 * time.Millisecond)
	}
	renewed, dropped := q.Heartbeat("w1", []string{id})
	if len(renewed) != 0 || len(dropped) != 1 {
		t.Fatalf("late heartbeat: renewed %v dropped %v", renewed, dropped)
	}
}

// TestBoundedRetries drives a task to permanent failure and checks the
// accumulated per-attempt failure log; a fresh enqueue afterwards starts
// over with a clean slate.
func TestBoundedRetries(t *testing.T) {
	st, key := newTestStore(t)
	q := farm.NewQueue(st, farm.Config{MaxAttempts: 2})
	defer q.Close()

	tk, err := q.Enqueue(spec(key))
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 1; attempt <= 2; attempt++ {
		tasks := q.Lease("w1", 1)
		if len(tasks) != 1 || tasks[0].Attempt != attempt {
			t.Fatalf("attempt %d: leased %+v", attempt, tasks)
		}
		if err := q.Fail("w1", tasks[0].ID, "simulated crash"); err != nil {
			t.Fatal(err)
		}
	}
	_, err = waitTicket(t, tk)
	if err == nil {
		t.Fatal("task should have failed permanently")
	}
	for _, want := range []string{"after 2 attempts", "attempt 1 on worker w1: simulated crash", "attempt 2 on worker w1"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("failure log %q missing %q", err, want)
		}
	}
	if s := q.Stats(); s.Failed != 1 {
		t.Fatalf("stats: %+v", s)
	}

	// Permanent failure clears the dedup slot: retrying is possible.
	tk2, err := q.Enqueue(spec(key))
	if err != nil {
		t.Fatal(err)
	}
	tasks := q.Lease("w2", 1)
	if len(tasks) != 1 || tasks[0].Attempt != 1 {
		t.Fatalf("re-enqueued task: %+v", tasks)
	}
	if err := q.Complete("w2", tasks[0].ID, completeJSON(t, st, tasks[0])); err != nil {
		t.Fatal(err)
	}
	if _, err := waitTicket(t, tk2); err != nil {
		t.Fatal(err)
	}
}

// TestCompleteIdempotent uploads the same result three times — twice from
// the original worker, once from a worker whose lease expired long ago —
// and expects every upload to be acknowledged.
func TestCompleteIdempotent(t *testing.T) {
	st, key := newTestStore(t)
	q := farm.NewQueue(st, farm.Config{})
	defer q.Close()

	tk, err := q.Enqueue(spec(key))
	if err != nil {
		t.Fatal(err)
	}
	tasks := q.Lease("w1", 1)
	payload := completeJSON(t, st, tasks[0])
	if err := q.Complete("w1", tasks[0].ID, payload); err != nil {
		t.Fatal(err)
	}
	if err := q.Complete("w1", tasks[0].ID, payload); err != nil {
		t.Fatalf("duplicate upload rejected: %v", err)
	}
	if err := q.Complete("w-stale", tasks[0].ID, payload); err != nil {
		t.Fatalf("stale-worker upload rejected: %v", err)
	}
	if _, err := waitTicket(t, tk); err != nil {
		t.Fatal(err)
	}
	if s := q.Stats(); s.Completed != 1 {
		t.Fatalf("completions double-counted: %+v", s)
	}
	// Failing a completed task is a harmless no-op, not an error.
	if err := q.Fail("w1", tasks[0].ID, "late failure"); err != nil {
		t.Fatal(err)
	}
}

// TestCloseUnblocksWaiters shuts the queue down with tasks queued and
// leased; every ticket must fail promptly with ErrClosed rather than
// waiting out lease TTLs, and leased tasks count as requeued.
func TestCloseUnblocksWaiters(t *testing.T) {
	st, key := newTestStore(t)
	q := farm.NewQueue(st, farm.Config{LeaseTTL: time.Hour})

	tkQueued, err := q.Enqueue(spec(key))
	if err != nil {
		t.Fatal(err)
	}
	sp2 := spec(key)
	sp2.Region = 2
	tkLeased, err := q.Enqueue(sp2)
	if err != nil {
		t.Fatal(err)
	}
	leased := q.Lease("w1", 1)
	if len(leased) != 1 {
		t.Fatal("no lease")
	}

	start := time.Now()
	q.Close()
	for _, tk := range []*farm.Ticket{tkQueued, tkLeased} {
		if _, err := waitTicket(t, tk); !errors.Is(err, farm.ErrClosed) {
			t.Fatalf("ticket error = %v, want ErrClosed", err)
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("close took %v, waiters must not wait for lease TTLs", elapsed)
	}
	if s := q.Stats(); s.RequeuedClose != 1 {
		t.Fatalf("stats: %+v", s)
	}
	if _, err := q.Enqueue(spec(key)); !errors.Is(err, farm.ErrClosed) {
		t.Fatalf("enqueue after close = %v, want ErrClosed", err)
	}
	q.Close() // idempotent
}

// TestConcurrentLeaseHeartbeatResult is the -race test for the same task
// being leased, heartbeated, completed and failed from many goroutines at
// once: exactly one completion must win, the ticket must resolve with a
// valid result, and nothing may deadlock.
func TestConcurrentLeaseHeartbeatResult(t *testing.T) {
	st, key := newTestStore(t)
	q := farm.NewQueue(st, farm.Config{LeaseTTL: 20 * time.Millisecond, SweepEvery: 5 * time.Millisecond})
	defer q.Close()

	tk, err := q.Enqueue(spec(key))
	if err != nil {
		t.Fatal(err)
	}
	// One real payload, computed once.
	payload := completeJSON(t, st, farm.Task{TraceKey: key, Region: 1, Sockets: 1, Warmup: "cold"})

	var wg sync.WaitGroup
	stopc := make(chan struct{})
	hammer := func(worker string) {
		defer wg.Done()
		for {
			select {
			case <-stopc:
				return
			default:
			}
			for _, task := range q.Lease(worker, 2) {
				q.Heartbeat(worker, []string{task.ID})
				if task.Attempt%2 == 0 {
					q.Fail(worker, task.ID, "flaky")
				} else {
					q.Complete(worker, task.ID, payload)
				}
			}
			q.Heartbeat(worker, []string{"task-000001"})
		}
	}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go hammer(string(rune('a' + i)))
	}

	res, err := farm.WaitAll(context.Background(), []*farm.Ticket{tk})
	close(stopc)
	wg.Wait()
	if err != nil {
		// With MaxAttempts retries and random Fail calls the task can
		// legitimately exhaust its attempts; accept either outcome but
		// require it to be the bounded-retry error, not a hang or panic.
		if !strings.Contains(err.Error(), "attempts") {
			t.Fatalf("unexpected error: %v", err)
		}
		return
	}
	if res[1].Counters.Instrs == 0 {
		t.Fatalf("bad result: %+v", res[1])
	}
}

// TestRunLocalWorkerEndToEnd runs real in-process workers against the
// queue and checks the assembled results match a direct local simulation
// bit for bit.
func TestRunLocalWorkerEndToEnd(t *testing.T) {
	st, key := newTestStore(t)
	q := farm.NewQueue(st, farm.Config{})
	defer q.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 2; i++ {
		go farm.RunLocalWorker(ctx, q, st, "test-worker")
	}

	f, err := st.OpenTrace(key)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	a, err := bp.Analyze(f, bp.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	mc := bp.TableIMachine(1)

	farmed, err := a.SimulatePointsWith(farm.QueueRunner{Q: q, TraceKey: key}, mc, bp.MRUWarmup)
	if err != nil {
		t.Fatal(err)
	}
	local, err := a.SimulatePoints(mc, bp.MRUWarmup)
	if err != nil {
		t.Fatal(err)
	}
	if len(farmed) != len(local) {
		t.Fatalf("farmed %d results, local %d", len(farmed), len(local))
	}
	for r, lres := range local {
		fres, ok := farmed[r]
		if !ok {
			t.Fatalf("region %d missing from farmed results", r)
		}
		fb, _ := json.Marshal(fres)
		lb, _ := json.Marshal(lres)
		if !bytes.Equal(fb, lb) {
			t.Fatalf("region %d: farmed %s != local %s", r, fb, lb)
		}
	}
}
