package farm_test

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"barrierpoint/internal/farm"
	"barrierpoint/internal/fault"
)

// fastRetry keeps the retry loop hot enough for unit tests.
var fastRetry = farm.RetryPolicy{Attempts: 4, Base: time.Millisecond, Max: 5 * time.Millisecond}

// TestClientRetriesTransientServerErrors fronts a real farm server with
// a proxy that 503s the first two requests: the client must absorb them
// with backoff and succeed on the third attempt.
func TestClientRetriesTransientServerErrors(t *testing.T) {
	st, _ := newTestStore(t)
	q := farm.NewQueue(st, farm.Config{})
	defer q.Close()
	inner := farm.NewServer(q, st)

	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, "flaky proxy", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	var retries atomic.Int64
	c := &farm.Client{Base: srv.URL, Retry: fastRetry}
	c.OnRetry = func(op string, attempt int, err error) {
		if op != "register" {
			t.Errorf("retried op %q, want register", op)
		}
		retries.Add(1)
	}
	if err := c.Register("retry-test"); err != nil {
		t.Fatalf("register through flaky proxy: %v", err)
	}
	if got := retries.Load(); got != 2 {
		t.Fatalf("OnRetry fired %d times, want 2", got)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3", got)
	}
}

// TestClientDoesNotRetryClientErrors: a 4xx is a protocol disagreement,
// not transient trouble — exactly one request, no retries.
func TestClientDoesNotRetryClientErrors(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "no such endpoint", http.StatusNotFound)
	}))
	defer srv.Close()

	c := &farm.Client{Base: srv.URL, Retry: fastRetry}
	c.OnRetry = func(op string, attempt int, err error) {
		t.Errorf("retried a 4xx (op %s attempt %d: %v)", op, attempt, err)
	}
	if err := c.Register("no-retry-test"); err == nil {
		t.Fatal("404 register reported success")
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1", got)
	}
}

// TestClientRetriesExhaust: when every attempt fails the final transport
// error surfaces after exactly Attempts tries.
func TestClientRetriesExhaust(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "down hard", http.StatusInternalServerError)
	}))
	defer srv.Close()

	c := &farm.Client{Base: srv.URL, Retry: fastRetry}
	err := c.Register("exhaust-test")
	if err == nil {
		t.Fatal("register against a dead server reported success")
	}
	if got := hits.Load(); got != int64(fastRetry.Attempts) {
		t.Fatalf("server saw %d requests, want %d", got, fastRetry.Attempts)
	}
}

// TestClientAbsorbsInjectedRPCFaults drives the fault seam the chaos
// smoke uses: deterministic injected failures on the lease site are
// retried away without the server ever noticing.
func TestClientAbsorbsInjectedRPCFaults(t *testing.T) {
	defer fault.Reset()
	st, key := newTestStore(t)
	q := farm.NewQueue(st, farm.Config{})
	defer q.Close()
	srv := httptest.NewServer(farm.NewServer(q, st))
	defer srv.Close()

	if _, err := q.Enqueue(spec(key)); err != nil {
		t.Fatal(err)
	}

	c := &farm.Client{Base: srv.URL, Retry: fastRetry}
	if err := c.Register("fault-test"); err != nil {
		t.Fatal(err)
	}
	if err := fault.Configure("seed=11;rpc.lease:n=2"); err != nil {
		t.Fatal(err)
	}
	var retries atomic.Int64
	c.OnRetry = func(op string, attempt int, err error) {
		if !errors.Is(err, fault.ErrInjected) {
			t.Errorf("unexpected retry cause: %v", err)
		}
		retries.Add(1)
	}
	tasks, err := c.Lease(4)
	if err != nil {
		t.Fatalf("lease with 2 injected faults: %v", err)
	}
	if len(tasks) != 1 {
		t.Fatalf("leased %d tasks, want 1", len(tasks))
	}
	if got := retries.Load(); got != 2 {
		t.Fatalf("OnRetry fired %d times, want 2", got)
	}
}

// TestClientPerAttemptTimeout: a hung server trips the per-attempt
// deadline (not a global hang), and the timeout is itself retryable.
func TestClientPerAttemptTimeout(t *testing.T) {
	var hits atomic.Int64
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	// LIFO: release the parked handlers first, then Close can reap them.
	defer srv.Close()
	defer close(release)

	c := &farm.Client{
		Base:    srv.URL,
		Timeout: 20 * time.Millisecond,
		Retry:   farm.RetryPolicy{Attempts: 2, Base: time.Millisecond, Max: 2 * time.Millisecond},
	}
	start := time.Now()
	if err := c.Register("timeout-test"); err == nil {
		t.Fatal("register against a hung server reported success")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hung for %v despite per-attempt timeout", elapsed)
	}
	if got := hits.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want 2", got)
	}
}
