package farm

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	bp "barrierpoint"
	"barrierpoint/internal/obs"
	"barrierpoint/internal/store"
)

// Errors surfaced by the queue.
var (
	// ErrClosed reports that the queue was shut down while a task was
	// still outstanding; its waiters fail promptly instead of hanging
	// until lease TTLs expire.
	ErrClosed = errors.New("farm: queue closed")
	// ErrUnknownTask reports a result or heartbeat for a task id the
	// queue does not hold (never enqueued, or pruned after completion in
	// a previous process life).
	ErrUnknownTask = errors.New("farm: unknown task")
	// ErrBadResult reports a Complete payload that does not parse as a
	// RegionResult — a client bug, as opposed to a server-side store
	// failure.
	ErrBadResult = errors.New("farm: bad result payload")
	// ErrServerRestarted reports that the server answering a client's
	// request carries a different queue epoch than the one the client
	// registered with: the coordinator restarted, old worker ids and
	// leases are void, and the client should re-register.
	ErrServerRestarted = errors.New("farm: server restarted (queue epoch changed)")
)

// Spec describes one point-simulation task to enqueue: simulate region
// Region of the stored trace TraceKey on the Table I machine with Sockets
// sockets under the Warmup mode (a bp.ParseWarmup label).
type Spec struct {
	TraceKey string
	Region   int
	Sockets  int
	Warmup   string
	// TraceID is the telemetry trace ID of the job enqueueing this task
	// (see internal/obs); it rides on the task so worker-side spans link
	// back to the coordinator job. Telemetry only — it plays no part in
	// deduplication, so a task shared across jobs keeps the first
	// enqueuer's trace ID.
	TraceID string
}

// Task is the wire form of a leased task handed to a worker.
type Task struct {
	ID       string `json:"id"`
	TraceKey string `json:"trace"`
	Region   int    `json:"region"`
	Sockets  int    `json:"sockets"`
	Warmup   string `json:"warmup"`
	// Artifact is the store artifact name the result will be filed under;
	// informational for workers, authoritative for the server.
	Artifact string `json:"artifact"`
	// Attempt is 1 for the first lease, incremented per retry.
	Attempt int `json:"attempt"`
	// TraceID links the task to the coordinator job that enqueued it
	// (empty for tasks from un-instrumented enqueuers or pre-telemetry
	// WAL journals). Telemetry only.
	TraceID string `json:"trace_id,omitempty"`
}

// task is the queue's internal task state.
type task struct {
	Task
	dedup    string
	leased   bool
	worker   string
	expires  time.Time
	created  time.Time // enqueue (or recovery) time, for task-latency telemetry
	failures []string
	ticket   *Ticket
}

// Ticket is a handle on an enqueued task's eventual result. Tasks
// deduplicated onto the same underlying work share one ticket.
type Ticket struct {
	// Region is the task's region index, for assembling result maps.
	Region int

	done   chan struct{}
	res    bp.RegionResult
	err    error
	cached bool
}

// Done is closed when the result (or a permanent failure) is available.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Result returns the simulated region result; it must only be called
// after Done is closed.
func (t *Ticket) Result() (bp.RegionResult, error) { return t.res, t.err }

// Cached reports that the result came straight from the store without any
// task being queued; it must only be called after Done is closed.
func (t *Ticket) Cached() bool { return t.cached }

// WorkerInfo is a point-in-time view of one registered worker.
type WorkerInfo struct {
	ID        string    `json:"id"`
	Name      string    `json:"name"`
	LastSeen  time.Time `json:"last_seen"`
	Leased    int       `json:"leased"`
	Completed int64     `json:"completed"`
	Failed    int64     `json:"failed"`
}

type workerState struct {
	info WorkerInfo
}

// Stats counts queue activity since construction.
type Stats struct {
	Enqueued      int64 `json:"tasks_enqueued"`
	DedupStore    int64 `json:"dedup_store_hits"`
	DedupInflight int64 `json:"dedup_inflight_hits"`
	Completed     int64 `json:"tasks_completed"`
	Failed        int64 `json:"tasks_failed"`
	Expired       int64 `json:"leases_expired"`
	Retries       int64 `json:"task_retries"`
	RequeuedClose int64 `json:"requeued_on_close"`
	Pending       int   `json:"tasks_pending"`
	Leased        int   `json:"tasks_leased"`
	LiveWorkers   int   `json:"live_workers"`
	// Write-ahead-log activity; all zero for in-memory queues.
	WALAppends     int64 `json:"wal_appends"`
	WALErrors      int64 `json:"wal_errors"`
	WALCompactions int64 `json:"wal_compactions"`
	WALBytes       int64 `json:"wal_bytes"`
}

// Config tunes a Queue.
type Config struct {
	// LeaseTTL is how long a lease lasts without a heartbeat (30s if 0).
	LeaseTTL time.Duration
	// MaxAttempts bounds lease handouts per task before it fails
	// permanently (3 if 0).
	MaxAttempts int
	// SweepEvery is the expired-lease scan interval (LeaseTTL/4 if 0).
	SweepEvery time.Duration
}

func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 30 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = c.LeaseTTL / 4
	}
	return c
}

// Queue is a lease-based work queue of point-simulation tasks over one
// content-addressed store. All methods are safe for concurrent use.
// NewQueue builds an in-memory queue: tasks do not survive a server
// restart, but their results do — completed work lands in the store, so a
// restarted server re-enqueues only the points that never finished.
// NewDurableQueue additionally journals every transition to a write-ahead
// log and rebuilds pending and in-flight tasks from it on startup (see
// wal.go and the package documentation's Durability section).
type Queue struct {
	st  *store.Store
	cfg Config

	// epoch identifies this queue instance: a random tag embedded in
	// worker ids and echoed in protocol responses, so clients detect a
	// coordinator restart (their epoch no longer matches) and re-register
	// instead of carrying void leases. Immutable after construction.
	epoch string

	mu      sync.Mutex
	tasks   map[string]*task // live (queued or leased) tasks by id
	pending []*task          // FIFO of queued tasks
	byDedup map[string]*task // dedup key → live task
	workers map[string]*workerState
	seq     int
	wseq    int
	closed  bool

	// wal, when set, journals every task transition before it is applied;
	// walRecs counts records since the last compaction and recovery holds
	// what replay rebuilt. crashHook is a test seam invoked between a WAL
	// append and its in-memory apply — returning an error simulates a
	// crash exactly on that edge.
	wal       *store.WAL
	walRecs   int
	recovery  Recovery
	crashHook func(op string) error

	stats     Stats
	stopSweep chan struct{}
	sweepDone chan struct{}

	// replay is the decoded-region cache shared by every in-process worker
	// of this queue (see RunLocalWorker), created on first use so queues
	// that never run local workers pay nothing.
	replayOnce sync.Once
	replay     *bp.ReplayCache

	// logger, when set, gives task-attempt failures structured log lines;
	// taskDur, when set (see Instrument), observes enqueue-to-complete
	// latency; workerSpans retains the spans recorded by this queue's
	// in-process workers (RunLocalWorker), queryable by trace ID.
	logger      *slog.Logger
	taskDur     *obs.Histogram
	workerSpans *obs.SpanRecorder
}

// replayCache returns the queue's shared decoded-region replay cache,
// creating it (default budget) on first use.
func (q *Queue) replayCache() *bp.ReplayCache {
	q.replayOnce.Do(func() { q.replay = bp.NewReplayCache(0) })
	return q.replay
}

// NewQueue creates an in-memory queue over st and starts its
// expired-lease sweeper. For a queue that survives restarts, use
// NewDurableQueue.
func NewQueue(st *store.Store, cfg Config) *Queue {
	q := newQueue(st, cfg)
	go q.sweep()
	return q
}

// newQueue builds the queue without starting the sweeper, so
// NewDurableQueue can replay its journal into it first.
func newQueue(st *store.Store, cfg Config) *Queue {
	return &Queue{
		st:          st,
		cfg:         cfg.withDefaults(),
		epoch:       newEpoch(),
		tasks:       make(map[string]*task),
		byDedup:     make(map[string]*task),
		workers:     make(map[string]*workerState),
		stopSweep:   make(chan struct{}),
		sweepDone:   make(chan struct{}),
		workerSpans: obs.NewSpanRecorder(0),
	}
}

// SetLogger directs structured task-failure logging (lease expiries,
// worker-reported failures, permanent exhaustion) to l. Call before the
// queue is shared; nil disables.
func (q *Queue) SetLogger(l *slog.Logger) { q.logger = l }

// Durable reports whether the queue journals its state to a write-ahead
// log.
func (q *Queue) Durable() bool { return q.wal != nil }

// WorkerSpans returns the recorder holding spans from this queue's
// in-process workers (RunLocalWorker) — the coordinator-side view of
// farmed task execution, queryable by job trace ID.
func (q *Queue) WorkerSpans() *obs.SpanRecorder { return q.workerSpans }

// Instrument registers the queue's activity as metric families on reg
// (bp_farm_* and bp_wal_*) and begins observing per-task and per-WAL-op
// latencies. Call it once per queue, before the registry serves scrapes.
func (q *Queue) Instrument(reg *obs.Registry) {
	stat := func(f func(s Stats) float64) func() float64 {
		return func() float64 { return f(q.Stats()) }
	}
	reg.CounterFunc("bp_farm_tasks_enqueued_total", "Tasks enqueued (post-dedup).",
		stat(func(s Stats) float64 { return float64(s.Enqueued) }))
	reg.CounterFunc("bp_farm_dedup_store_total", "Enqueues resolved from the store's point-result cache.",
		stat(func(s Stats) float64 { return float64(s.DedupStore) }))
	reg.CounterFunc("bp_farm_dedup_inflight_total", "Enqueues coalesced onto an identical live task.",
		stat(func(s Stats) float64 { return float64(s.DedupInflight) }))
	reg.CounterFunc("bp_farm_tasks_completed_total", "Tasks completed with a stored result.",
		stat(func(s Stats) float64 { return float64(s.Completed) }))
	reg.CounterFunc("bp_farm_tasks_failed_total", "Tasks failed permanently (attempts exhausted).",
		stat(func(s Stats) float64 { return float64(s.Failed) }))
	reg.CounterFunc("bp_farm_leases_expired_total", "Leases expired without heartbeat.",
		stat(func(s Stats) float64 { return float64(s.Expired) }))
	reg.CounterFunc("bp_farm_task_retries_total", "Failed attempts requeued for retry.",
		stat(func(s Stats) float64 { return float64(s.Retries) }))
	reg.GaugeFunc("bp_farm_tasks_pending", "Tasks queued and unleased.",
		stat(func(s Stats) float64 { return float64(s.Pending) }))
	reg.GaugeFunc("bp_farm_tasks_leased", "Tasks currently out on workers.",
		stat(func(s Stats) float64 { return float64(s.Leased) }))
	reg.GaugeFunc("bp_farm_live_workers", "Workers seen within three lease TTLs.",
		stat(func(s Stats) float64 { return float64(s.LiveWorkers) }))
	reg.CounterFunc("bp_wal_appends_total", "Write-ahead-log records appended.",
		stat(func(s Stats) float64 { return float64(s.WALAppends) }))
	reg.CounterFunc("bp_wal_errors_total", "Write-ahead-log append/compaction errors.",
		stat(func(s Stats) float64 { return float64(s.WALErrors) }))
	reg.CounterFunc("bp_wal_compactions_total", "Write-ahead-log compactions.",
		stat(func(s Stats) float64 { return float64(s.WALCompactions) }))
	reg.GaugeFunc("bp_wal_bytes", "Write-ahead-log size in bytes of intact frames.",
		stat(func(s Stats) float64 { return float64(s.WALBytes) }))
	q.taskDur = reg.Histogram("bp_farm_task_seconds",
		"Farm task latency from enqueue to stored result.", obs.DefLatencyBuckets)
	if q.wal != nil {
		walDur := reg.HistogramVec("bp_wal_op_seconds",
			"Write-ahead-log operation latency.", "op", obs.DefLatencyBuckets)
		q.wal.SetObserver(func(op string, d time.Duration) {
			walDur.With(op).ObserveDuration(d)
		})
	}
}

// newEpoch draws a random instance tag for worker ids and restart
// detection.
func newEpoch() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000" // degraded but functional: restart detection off
	}
	return hex.EncodeToString(b[:])
}

// Epoch identifies this queue instance; it changes on every restart.
func (q *Queue) Epoch() string { return q.epoch }

// LeaseTTL returns the queue's lease duration.
func (q *Queue) LeaseTTL() time.Duration { return q.cfg.LeaseTTL }

func (q *Queue) sweep() {
	defer close(q.sweepDone)
	tick := time.NewTicker(q.cfg.SweepEvery)
	defer tick.Stop()
	for {
		select {
		case <-q.stopSweep:
			return
		case <-tick.C:
			q.mu.Lock()
			q.requeueExpiredLocked(time.Now())
			q.mu.Unlock()
		}
	}
}

// requeueExpiredLocked returns expired leases to the pending queue (or
// fails tasks out of attempts); q.mu must be held.
func (q *Queue) requeueExpiredLocked(now time.Time) {
	for _, t := range q.tasks {
		if !t.leased || now.Before(t.expires) {
			continue
		}
		q.stats.Expired++
		msg := fmt.Sprintf("attempt %d: lease expired on worker %s", t.Attempt, t.worker)
		// A journal error leaves the task leased-and-expired; the next
		// sweep retries the transition.
		_ = q.endAttemptLocked(t, msg)
	}
}

// endAttemptLocked records a failed attempt and either requeues the task
// or fails it permanently; q.mu must be held. The runtime — not replay —
// owns the requeue-vs-fail decision, so the journal records which one was
// taken; if the journal append fails the task is left untouched (still
// leased) and the error returned, and the expiry sweeper retries the
// transition on its next pass.
func (q *Queue) endAttemptLocked(t *task, msg string) error {
	permanent := t.Attempt >= q.cfg.MaxAttempts
	if q.logger != nil {
		q.logger.Warn("farm task attempt failed",
			"task", t.ID,
			"trace_id", t.TraceID,
			"worker", t.worker,
			"attempt", t.Attempt,
			"max_attempts", q.cfg.MaxAttempts,
			"trace", t.TraceKey,
			"region", t.Region,
			"err", msg,
			"permanent", permanent)
	}
	if permanent {
		if err := q.appendWALLocked(walRecord{Op: opFail, ID: t.ID, Msg: msg}); err != nil {
			return err
		}
		t.failures = append(t.failures, msg)
		t.leased = false
		t.worker = ""
		q.finishLocked(t, bp.RegionResult{}, fmt.Errorf(
			"farm: task %s (trace %.12s region %d) failed after %d attempts: %s",
			t.ID, t.TraceKey, t.Region, t.Attempt, joinFailures(t.failures)))
		q.stats.Failed++
		return nil
	}
	if err := q.appendWALLocked(walRecord{Op: opRequeue, ID: t.ID, Msg: msg}); err != nil {
		return err
	}
	t.failures = append(t.failures, msg)
	t.leased = false
	t.worker = ""
	q.stats.Retries++
	q.pending = append(q.pending, t)
	return nil
}

func joinFailures(fs []string) string {
	out := ""
	for i, f := range fs {
		if i > 0 {
			out += "; "
		}
		out += f
	}
	return out
}

// finishLocked resolves a live task's ticket and forgets the task;
// q.mu must be held.
func (q *Queue) finishLocked(t *task, res bp.RegionResult, err error) {
	delete(q.tasks, t.ID)
	delete(q.byDedup, t.dedup)
	// The task may still sit in pending (failed via Fail while queued, or
	// closed); lazily skipped on lease because q.tasks no longer holds it.
	t.ticket.res = res
	t.ticket.err = err
	close(t.ticket.done)
}

// Enqueue places a task on the queue, deduplicating against the store
// (a cached point result resolves the ticket immediately) and against
// identical live tasks (the existing ticket is shared).
func (q *Queue) Enqueue(sp Spec) (*Ticket, error) {
	mc := bp.TableIMachine(sp.Sockets)
	if _, err := bp.ParseWarmup(sp.Warmup); err != nil {
		return nil, err
	}
	artifact := PointArtifact(sp.Region, mc, sp.Warmup)
	dedup := sp.TraceKey + "|" + artifact

	// Store dedup outside the lock: reads are cheap and idempotent.
	if b, err := q.st.GetArtifact(sp.TraceKey, artifact); err == nil {
		var res bp.RegionResult
		if err := json.Unmarshal(b, &res); err == nil {
			q.mu.Lock()
			q.stats.DedupStore++
			q.mu.Unlock()
			tk := &Ticket{Region: sp.Region, done: make(chan struct{}), res: res, cached: true}
			close(tk.done)
			return tk, nil
		}
		// Unparseable artifact: fall through and recompute (the fresh
		// result overwrites it).
	} else if !errors.Is(err, store.ErrNotFound) {
		return nil, err
	}

	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, ErrClosed
	}
	if t, ok := q.byDedup[dedup]; ok {
		q.stats.DedupInflight++
		return t.ticket, nil
	}
	q.seq++
	t := &task{
		Task: Task{
			ID:       fmt.Sprintf("task-%06d", q.seq),
			TraceKey: sp.TraceKey,
			Region:   sp.Region,
			Sockets:  sp.Sockets,
			Warmup:   sp.Warmup,
			Artifact: artifact,
			TraceID:  sp.TraceID,
		},
		dedup:   dedup,
		created: time.Now(),
		ticket:  &Ticket{Region: sp.Region, done: make(chan struct{})},
	}
	// Journal before acknowledging: a crash after this append recovers
	// the task; an append error rejects the enqueue without applying it.
	if err := q.appendWALLocked(walRecord{Op: opEnqueue, Task: &t.Task}); err != nil {
		return nil, err
	}
	q.tasks[t.ID] = t
	q.byDedup[dedup] = t
	q.pending = append(q.pending, t)
	q.stats.Enqueued++
	return t.ticket, nil
}

// Register adds a worker and returns its id. Registration is advisory —
// leasing with an unknown id auto-registers — but gives the worker a
// stable, named identity in /farm/workers.
func (q *Queue) Register(name string) string {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.wseq++
	// The epoch in the id keeps ids from a previous coordinator life from
	// colliding with this one's (wseq restarts at 1 after a recovery).
	id := fmt.Sprintf("w-%s-%04d", q.epoch, q.wseq)
	q.workers[id] = &workerState{info: WorkerInfo{ID: id, Name: name, LastSeen: time.Now()}}
	return id
}

// staleWorkerLocked reports whether id is an epoch-tagged worker id
// minted by a different queue instance. Free-form ids (anything not
// matching "w-<8 hex>-…") are never stale — leasing with an unknown id
// auto-registers, which tests and ad-hoc clients rely on.
func (q *Queue) staleWorkerLocked(id string) bool {
	const tagLen = len("w-") + 8
	if len(id) < tagLen+1 || id[:2] != "w-" || id[tagLen] != '-' {
		return false
	}
	epoch := id[2:tagLen]
	for i := 0; i < len(epoch); i++ {
		c := epoch[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return epoch != q.epoch
}

func (q *Queue) touchWorkerLocked(id string, now time.Time) *workerState {
	w, ok := q.workers[id]
	if !ok {
		w = &workerState{info: WorkerInfo{ID: id, Name: id}}
		q.workers[id] = w
	}
	w.info.LastSeen = now
	return w
}

// Lease hands the worker up to max queued tasks, each leased for
// LeaseTTL. An empty slice means no work is available right now.
func (q *Queue) Lease(workerID string, max int) []Task {
	if max <= 0 {
		max = 1
	}
	now := time.Now()
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil
	}
	if q.staleWorkerLocked(workerID) {
		// An epoch-tagged id from a previous coordinator life: hand it
		// nothing (its client is about to see the epoch change and
		// re-register) rather than leasing work to an identity that is
		// about to be abandoned.
		return nil
	}
	q.touchWorkerLocked(workerID, now)
	q.requeueExpiredLocked(now)
	var out []Task
	for len(out) < max && len(q.pending) > 0 {
		t := q.pending[0]
		q.pending = q.pending[1:]
		if q.tasks[t.ID] != t || t.leased {
			continue // finished or re-leased since it entered pending
		}
		// Journal the lease (with its attempt number, so a compacted log
		// replays to the same count) before handing the task out. On an
		// append error the task goes back to the front of the queue and no
		// more work is handed out this call; if the record did land before
		// the error, recovery sees an in-flight lease and requeues it —
		// both sides converge on "not leased".
		if err := q.appendWALLocked(walRecord{Op: opLease, ID: t.ID, Worker: workerID, Attempt: t.Attempt + 1}); err != nil {
			q.pending = append([]*task{t}, q.pending...)
			break
		}
		t.leased = true
		t.worker = workerID
		t.expires = now.Add(q.cfg.LeaseTTL)
		t.Attempt++
		out = append(out, t.Task)
	}
	return out
}

// Heartbeat renews the worker's leases on the listed tasks. Tasks the
// queue no longer recognizes as leased to this worker come back in
// dropped: the worker should abandon them.
func (q *Queue) Heartbeat(workerID string, ids []string) (renewed, dropped []string) {
	now := time.Now()
	q.mu.Lock()
	defer q.mu.Unlock()
	q.touchWorkerLocked(workerID, now)
	for _, id := range ids {
		t, ok := q.tasks[id]
		if !ok || !t.leased || t.worker != workerID {
			dropped = append(dropped, id)
			continue
		}
		t.expires = now.Add(q.cfg.LeaseTTL)
		renewed = append(renewed, id)
	}
	return renewed, dropped
}

// Complete uploads a task's result. Uploads are idempotent and accepted
// from any worker — simulation is deterministic, so a late result from an
// expired lease is identical to the one that will be (or was) accepted.
// The result is stored as a point artifact before waiters wake, so future
// runs dedup against it.
func (q *Queue) Complete(workerID, id string, resultJSON []byte) error {
	var res bp.RegionResult
	if err := json.Unmarshal(resultJSON, &res); err != nil {
		return fmt.Errorf("task %s: %w: %v", id, ErrBadResult, err)
	}
	q.mu.Lock()
	w := q.touchWorkerLocked(workerID, time.Now())
	t, live := q.tasks[id]
	q.mu.Unlock()
	if !live {
		// Already completed (duplicate upload) or never known. Both are
		// acknowledged: the caller did valid work either way, and
		// distinguishing them would require unbounded task history.
		return nil
	}
	// Store before resolving so a waiter that re-enqueues immediately
	// sees the artifact.
	if err := q.st.PutArtifact(t.TraceKey, t.Artifact, resultJSON); err != nil {
		return err
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if cur, ok := q.tasks[id]; !ok || cur != t {
		return nil // raced with another completion
	}
	// The artifact is already durable in the store; the journal's complete
	// record makes the queue agree. If this append fails the worker gets
	// an error and retries the idempotent upload — and even a crash right
	// here recovers cleanly, because replay re-checks the store for the
	// artifact and resolves the task without re-running it.
	if err := q.appendWALLocked(walRecord{Op: opComplete, ID: id}); err != nil {
		return err
	}
	q.stats.Completed++
	w.info.Completed++
	if !t.created.IsZero() {
		q.taskDur.ObserveDuration(time.Since(t.created))
	}
	q.finishLocked(t, res, nil)
	return nil
}

// Fail reports that the worker could not complete the task. The failure
// is logged on the task, which is retried unless out of attempts.
func (q *Queue) Fail(workerID, id, msg string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	w := q.touchWorkerLocked(workerID, time.Now())
	t, ok := q.tasks[id]
	if !ok {
		return nil // completed elsewhere, or duplicate failure report
	}
	if !t.leased || t.worker != workerID {
		// Not this worker's current lease: either it expired and was
		// already requeued (the expiry logged the attempt), or the task
		// was reassigned. The current lease's outcome governs.
		return nil
	}
	w.info.Failed++
	return q.endAttemptLocked(t, fmt.Sprintf("attempt %d on worker %s: %s", t.Attempt, workerID, msg))
}

// LiveWorkers counts workers seen within three lease TTLs — the signal
// the service layer uses to fall back to local execution when the fleet
// is empty.
func (q *Queue) LiveWorkers() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.liveWorkersLocked(time.Now())
}

func (q *Queue) liveWorkersLocked(now time.Time) int {
	live := 0
	window := 3 * q.cfg.LeaseTTL
	for _, w := range q.workers {
		if now.Sub(w.info.LastSeen) <= window {
			live++
		}
	}
	return live
}

// Workers lists registered workers, most recently seen first.
func (q *Queue) Workers() []WorkerInfo {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]WorkerInfo, 0, len(q.workers))
	for _, w := range q.workers {
		info := w.info
		for _, t := range q.tasks {
			if t.leased && t.worker == info.ID {
				info.Leased++
			}
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].LastSeen.Equal(out[j].LastSeen) {
			return out[i].LastSeen.After(out[j].LastSeen)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Stats returns activity counters and current queue depths.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := q.stats
	for _, t := range q.tasks {
		if t.leased {
			s.Leased++
		} else {
			s.Pending++
		}
	}
	s.LiveWorkers = q.liveWorkersLocked(time.Now())
	if q.wal != nil {
		s.WALBytes = q.wal.Size()
	}
	return s
}

// Close shuts the queue down: leased tasks are requeued (counted in
// Stats.RequeuedClose), every outstanding ticket fails promptly with
// ErrClosed, and the sweeper stops. Close is idempotent. Completed
// results remain in the store, so re-running the same jobs after a
// restart redoes only the points that never finished. A durable queue
// deliberately journals nothing here — its live tasks stay in the
// write-ahead log, so the next NewDurableQueue over the same path
// recovers them; only the file handle is released.
func (q *Queue) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		<-q.sweepDone
		return
	}
	q.closed = true
	for _, t := range q.tasks {
		if t.leased {
			q.stats.RequeuedClose++
			t.leased = false
			t.worker = ""
		}
		q.finishLocked(t, bp.RegionResult{}, ErrClosed)
	}
	q.pending = nil
	if q.wal != nil {
		q.wal.Close()
	}
	close(q.stopSweep)
	q.mu.Unlock()
	<-q.sweepDone
}

// WaitAll blocks until every ticket resolves or ctx is done, assembling
// the per-region result map the reconstruction stage consumes.
func WaitAll(ctx context.Context, tickets []*Ticket) (map[int]bp.RegionResult, error) {
	out := make(map[int]bp.RegionResult, len(tickets))
	for _, tk := range tickets {
		select {
		case <-tk.Done():
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		res, err := tk.Result()
		if err != nil {
			return nil, err
		}
		out[tk.Region] = res
	}
	return out, nil
}
