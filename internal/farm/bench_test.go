package farm_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	bp "barrierpoint"
	"barrierpoint/internal/farm"
	"barrierpoint/internal/store"
	"barrierpoint/internal/tracefile"
	"barrierpoint/internal/workload"
)

// benchTrace records the benchmark workload once per process.
var benchTrace struct {
	data []byte
	sel  []byte
}

func benchSetup(b *testing.B) ([]byte, *bp.Config) {
	b.Helper()
	cfg := bp.DefaultConfig()
	if benchTrace.data == nil {
		var buf bytes.Buffer
		if err := tracefile.Record(&buf, workload.New("npb-is", 8, workload.WithScale(0.1))); err != nil {
			b.Fatal(err)
		}
		benchTrace.data = buf.Bytes()
	}
	return benchTrace.data, &cfg
}

// freshAnalysis loads the benchmark trace into a brand-new store (so no
// per-point artifacts carry over between iterations) and analyzes it.
func freshAnalysis(b *testing.B, data []byte, cfg *bp.Config) (*store.Store, string, *bp.Analysis, func()) {
	b.Helper()
	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	key, _, err := st.PutTrace(bytes.NewReader(data))
	if err != nil {
		b.Fatal(err)
	}
	f, err := st.OpenTrace(key)
	if err != nil {
		b.Fatal(err)
	}
	a, err := bp.Analyze(f, *cfg)
	if err != nil {
		b.Fatal(err)
	}
	return st, key, a, func() { f.Close() }
}

// BenchmarkQueueEnqueueComplete measures the queue's bookkeeping cost per
// task — one enqueue, lease and complete round trip with a synthetic
// payload — with and without the write-ahead log, isolating what
// durability (three fsynced journal appends plus an artifact write per
// round) costs on the coordinator. The spread between the two is the
// number the bpserve -wal flag trades against crash recovery.
func BenchmarkQueueEnqueueComplete(b *testing.B) {
	// A well-formed content key; the queue never opens the trace for
	// bookkeeping, so no recording is needed.
	const key = "abababababababababababababababababababababababababababababababab"
	result, err := json.Marshal(bp.RegionResult{})
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []string{"nowal", "wal"} {
		b.Run(mode, func(b *testing.B) {
			st, err := store.Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			var q *farm.Queue
			if mode == "wal" {
				q, _, err = farm.NewDurableQueue(st, farm.Config{}, filepath.Join(st.Root(), "farm.wal"))
				if err != nil {
					b.Fatal(err)
				}
			} else {
				q = farm.NewQueue(st, farm.Config{})
			}
			defer q.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Distinct regions keep every round a real task (no dedup
				// against earlier artifacts).
				if _, err := q.Enqueue(farm.Spec{TraceKey: key, Region: i, Sockets: 1, Warmup: "cold"}); err != nil {
					b.Fatal(err)
				}
				tasks := q.Lease("bench", 1)
				if len(tasks) != 1 {
					b.Fatal("no task leased")
				}
				if err := q.Complete("bench", tasks[0].ID, result); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulatePointsLocal is the baseline: the in-process pool.
func BenchmarkSimulatePointsLocal(b *testing.B) {
	data, cfg := benchSetup(b)
	_, _, a, done := freshAnalysis(b, data, cfg)
	defer done()
	mc := bp.TableIMachine(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.SimulatePoints(mc, bp.MRUWarmup); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatePointsFarmed runs the same points through the full
// farm machinery — queue, leases, heartbeat bookkeeping, store-artifact
// uploads — with N in-process workers, reporting points/s and the scaling
// efficiency versus a single farmed worker (efficiency_N ≈
// throughput_N / (N · throughput_1) measured per run; the printed
// points/s across the N sub-benchmarks gives the scaling curve). Each
// iteration uses a fresh store so nothing is served from cache.
func BenchmarkSimulatePointsFarmed(b *testing.B) {
	data, cfg := benchSetup(b)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			mc := bp.TableIMachine(1)
			var points int
			var simulating time.Duration
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				st, key, a, done := freshAnalysis(b, data, cfg)
				q := farm.NewQueue(st, farm.Config{})
				ctx, cancel := context.WithCancel(context.Background())
				for w := 0; w < workers; w++ {
					go farm.RunLocalWorker(ctx, q, st, fmt.Sprintf("bench-%d", w))
				}
				b.StartTimer()

				iter := time.Now()
				res, err := a.SimulatePointsWith(farm.QueueRunner{Q: q, TraceKey: key}, mc, bp.MRUWarmup)
				if err != nil {
					b.Fatal(err)
				}
				simulating += time.Since(iter)
				points += len(res)

				b.StopTimer()
				cancel()
				q.Close()
				done()
				b.StartTimer()
			}
			b.ReportMetric(float64(points)/simulating.Seconds(), "points/s")
		})
	}
}
