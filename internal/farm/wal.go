package farm

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	bp "barrierpoint"
	"barrierpoint/internal/store"
)

// This file gives the queue its durability: every state transition is
// journaled to a store.WAL before it is applied in memory, and a restarted
// coordinator replays the journal to rebuild exactly the pending and
// in-flight tasks it was killed with. See doc.go ("Durability") for the
// record format and recovery semantics.

// WAL operation tags. The journal is the source of truth on replay: each
// record describes one applied transition, so replay is a pure fold with
// no dependence on queue configuration (MaxAttempts may even change
// between restarts without invalidating the log).
const (
	opEnqueue  = "enqueue"  // a new task entered the queue (or survived a compaction)
	opLease    = "lease"    // a worker took the task; Attempt is the lease's attempt number
	opRequeue  = "requeue"  // a lease ended in failure/expiry; task back to pending
	opComplete = "complete" // result stored as a store artifact; task done
	opFail     = "fail"     // attempts exhausted; task failed permanently
)

// walRecord is the JSON payload of one WAL frame.
type walRecord struct {
	Op string `json:"op"`
	// Task is set on enqueue records; compaction re-emits live tasks as
	// enqueue records carrying their current Attempt.
	Task *Task `json:"task,omitempty"`
	// Failures carries a task's accumulated per-attempt failure log across
	// compaction.
	Failures []string `json:"failures,omitempty"`
	// ID names the task for lease/requeue/complete/fail records.
	ID string `json:"id,omitempty"`
	// Worker and Attempt describe a lease.
	Worker  string `json:"worker,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	// Msg is the failure message logged by requeue/fail records.
	Msg string `json:"msg,omitempty"`
}

// Recovery reports what a durable queue rebuilt from its journal.
type Recovery struct {
	// Records is the number of intact journal records replayed; Dropped
	// is the byte length of the torn tail (if any) discarded after them.
	Records int   `json:"wal_records"`
	Dropped int64 `json:"wal_dropped_bytes"`
	// Pending tasks were queued (never leased, or requeued) at the crash;
	// Requeued tasks were leased in flight — their workers may be gone, so
	// they re-enter the pending queue immediately.
	Pending  int `json:"tasks_pending"`
	Requeued int `json:"leases_requeued"`
	// StoreHits are recovered tasks whose result artifact already sits in
	// the store (the worker uploaded it, but the crash beat the journal's
	// complete record); they resolve instantly instead of re-running.
	StoreHits int `json:"store_hits"`
	// Completed and Failed count terminal transitions observed in the
	// journal — work that needed nothing at recovery beyond compaction.
	Completed int `json:"tasks_completed"`
	Failed    int `json:"tasks_failed"`
}

// walTask is a task's state as reconstructed from the journal.
type walTask struct {
	Task
	failures []string
	leased   bool
	worker   string
	// seq orders tasks for deterministic requeueing: assigned when a task
	// (re-)enters the pending queue, or when a lease record is replayed
	// (so in-flight tasks requeue in lease order after the pending ones).
	seq int
}

// walState is the fold target of a journal replay.
type walState struct {
	tasks     map[string]*walTask
	nextSeq   int
	completed int
	failed    int
}

func newWALState() *walState {
	return &walState{tasks: make(map[string]*walTask)}
}

// apply folds one journal record into the state. Records that do not
// resolve against the current state (an unknown id, a lease of a finished
// task) are skipped: replay must accept any intact prefix the framing
// layer delivers, including logs from a fuzzer.
func (s *walState) apply(rec walRecord) {
	switch rec.Op {
	case opEnqueue:
		if rec.Task == nil || rec.Task.ID == "" {
			return
		}
		t := &walTask{Task: *rec.Task, failures: rec.Failures, seq: s.nextSeq}
		s.nextSeq++
		s.tasks[t.ID] = t
	case opLease:
		t, ok := s.tasks[rec.ID]
		if !ok {
			return
		}
		t.leased = true
		t.worker = rec.Worker
		if rec.Attempt > 0 {
			t.Attempt = rec.Attempt
		} else {
			t.Attempt++
		}
		t.seq = s.nextSeq
		s.nextSeq++
	case opRequeue:
		t, ok := s.tasks[rec.ID]
		if !ok {
			return
		}
		if rec.Msg != "" {
			t.failures = append(t.failures, rec.Msg)
		}
		t.leased = false
		t.worker = ""
		t.seq = s.nextSeq
		s.nextSeq++
	case opComplete:
		if _, ok := s.tasks[rec.ID]; ok {
			delete(s.tasks, rec.ID)
			s.completed++
		}
	case opFail:
		if _, ok := s.tasks[rec.ID]; ok {
			delete(s.tasks, rec.ID)
			s.failed++
		}
	}
}

// live returns the recovered tasks ordered for requeueing: by seq, which
// interleaves pending tasks in their queue order and puts each in-flight
// lease where its lease record fell in the journal.
func (s *walState) live() []*walTask {
	out := make([]*walTask, 0, len(s.tasks))
	for _, t := range s.tasks {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// replayWALReader folds every intact record of r into a fresh state;
// exposed at reader level so FuzzWALReplay can drive it on raw bytes.
func replayWALReader(r io.Reader) (*walState, int64, int, error) {
	s := newWALState()
	valid, n, err := store.ReplayFrames(r, func(rec []byte) error {
		var wr walRecord
		if err := json.Unmarshal(rec, &wr); err != nil {
			// An intact frame with an undecodable payload was written by
			// someone else entirely; skip it rather than aborting the
			// records around it.
			return nil
		}
		s.apply(wr)
		return nil
	})
	return s, valid, n, err
}

// NewDurableQueue creates a queue whose state is journaled to the
// write-ahead log at walPath. If the log already holds records — the
// normal case after a coordinator crash or restart — they are replayed
// first: tasks that were pending return to the pending queue in order,
// tasks that were leased re-enter pending immediately (the leasing worker
// may be gone; if it is not, its eventual upload is accepted
// idempotently), and tasks whose result artifact already reached the
// store resolve on the spot. The log is then compacted to exactly the
// live state before the queue starts. Recovered tasks carry fresh
// tickets with no waiters; a re-submitted job re-attaches to them through
// Enqueue's TraceKey+artifact dedup.
func NewDurableQueue(st *store.Store, cfg Config, walPath string) (*Queue, Recovery, error) {
	state := newWALState()
	var rec Recovery
	if f, err := os.Open(walPath); err == nil {
		var size, valid int64
		if fi, serr := f.Stat(); serr == nil {
			size = fi.Size()
		}
		state, valid, rec.Records, err = replayWALReader(f)
		f.Close()
		if err != nil {
			return nil, Recovery{}, err
		}
		rec.Dropped = size - valid
	} else if !os.IsNotExist(err) {
		return nil, Recovery{}, fmt.Errorf("farm: opening wal: %w", err)
	}
	rec.Completed = state.completed
	rec.Failed = state.failed

	w, err := store.OpenWAL(walPath)
	if err != nil {
		return nil, Recovery{}, err
	}
	q := newQueue(st, cfg)
	q.wal = w
	for _, wt := range state.live() {
		// A result uploaded between the artifact store write and the
		// journal's complete record shows up here as a live task with a
		// finished artifact: count it done instead of re-simulating (the
		// next Enqueue for this point dedups against the store).
		if b, err := st.GetArtifact(wt.TraceKey, wt.Artifact); err == nil {
			var res bp.RegionResult
			if json.Unmarshal(b, &res) == nil {
				rec.StoreHits++
				continue
			}
		}
		t := &task{
			Task:     wt.Task,
			dedup:    wt.TraceKey + "|" + wt.Artifact,
			failures: wt.failures,
			created:  time.Now(), // latency telemetry restarts at recovery
			ticket:   &Ticket{Region: wt.Region, done: make(chan struct{})},
		}
		if _, dup := q.byDedup[t.dedup]; dup {
			// Two live tasks for one dedup key can only come from a
			// hand-damaged or fuzzed journal; keep the first so the runtime
			// invariant (one live task per key) holds.
			continue
		}
		if wt.leased {
			t.failures = append(t.failures,
				fmt.Sprintf("attempt %d: coordinator restarted while leased to worker %s", wt.Attempt, wt.worker))
			rec.Requeued++
		} else {
			rec.Pending++
		}
		if n := taskSeq(t.ID); n > q.seq {
			q.seq = n
		}
		q.tasks[t.ID] = t
		q.byDedup[t.dedup] = t
		q.pending = append(q.pending, t)
	}
	q.recovery = rec
	if err := q.compactLocked(); err != nil {
		w.Close()
		return nil, Recovery{}, err
	}
	go q.sweep()
	return q, rec, nil
}

// taskSeq extracts the numeric suffix of a "task-%06d" id (0 for any
// other shape — a journal written by another tool still recovers, the id
// sequence just restarts above whatever parses).
func taskSeq(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "task-%d", &n); err != nil || n < 0 {
		return 0
	}
	return n
}

// appendWALLocked journals one record (a no-op for in-memory queues);
// q.mu must be held. The record is durable — framed, checksummed,
// fsynced — before this returns nil, so callers apply the in-memory
// transition only after the journal acknowledged it; on error they must
// leave the in-memory state untouched. When the journal has grown far
// past the live state it is compacted first, so the new record lands in
// the fresh log.
func (q *Queue) appendWALLocked(rec walRecord) error {
	if q.wal == nil {
		return nil
	}
	if q.walRecs >= walCompactMinRecords && q.walRecs >= walCompactFactor*len(q.tasks) {
		if err := q.compactLocked(); err != nil {
			return err
		}
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if err := q.wal.Append(b); err != nil {
		q.stats.WALErrors++
		return err
	}
	q.stats.WALAppends++
	q.walRecs++
	if q.crashHook != nil {
		if err := q.crashHook(rec.Op); err != nil {
			return err
		}
	}
	return nil
}

// Compaction triggers: the journal is rewritten to just the live tasks
// once it holds at least walCompactMinRecords records and at least
// walCompactFactor records per live task (so a large busy queue is not
// compacted while the log is still mostly live state), and always once at
// startup after replay.
const (
	walCompactMinRecords = 1024
	walCompactFactor     = 4
)

// compactLocked rewrites the journal to exactly the live tasks: one
// enqueue record per task (carrying its current attempt count and failure
// log), plus a lease record for each task currently out on a worker.
// q.mu must be held (or the queue not yet shared).
func (q *Queue) compactLocked() error {
	if q.wal == nil {
		return nil
	}
	var payloads [][]byte
	emit := func(rec walRecord) error {
		b, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		payloads = append(payloads, b)
		return nil
	}
	// Pending tasks first, in queue order, then any remaining live tasks
	// (the leased ones) by id: replaying the compacted log must rebuild
	// the same pending order the queue holds now.
	emitted := make(map[string]bool, len(q.tasks))
	var order []*task
	for _, t := range q.pending {
		if q.tasks[t.ID] != t || emitted[t.ID] {
			continue
		}
		emitted[t.ID] = true
		order = append(order, t)
	}
	rest := make([]*task, 0, len(q.tasks))
	for id, t := range q.tasks {
		if !emitted[id] {
			rest = append(rest, t)
		}
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i].ID < rest[j].ID })
	order = append(order, rest...)
	for _, t := range order {
		if err := emit(walRecord{Op: opEnqueue, Task: &t.Task, Failures: t.failures}); err != nil {
			return err
		}
		if t.leased {
			if err := emit(walRecord{Op: opLease, ID: t.ID, Worker: t.worker, Attempt: t.Attempt}); err != nil {
				return err
			}
		}
	}
	if err := q.wal.Rewrite(payloads); err != nil {
		q.stats.WALErrors++
		return err
	}
	q.walRecs = len(payloads)
	q.stats.WALCompactions++
	return nil
}

// Recovery returns what this queue rebuilt from its journal at
// construction (all zeros for in-memory queues and fresh logs).
func (q *Queue) Recovery() Recovery { return q.recovery }
