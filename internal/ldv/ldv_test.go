package ldv

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"barrierpoint/internal/trace"
)

// naiveStackDistance is the O(n²) reference: the number of distinct lines
// accessed since the previous access to line, or -1 if cold.
func naiveStackDistance(history []uint64, line uint64) int {
	seen := make(map[uint64]bool)
	for i := len(history) - 1; i >= 0; i-- {
		if history[i] == line {
			return len(seen)
		}
		seen[history[i]] = true
	}
	return -1
}

func TestProfilerAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := NewProfiler(16)
	var history []uint64
	for i := 0; i < 5000; i++ {
		line := uint64(rng.Intn(64))
		want := naiveStackDistance(history, line)
		dist, cold := p.Access(line)
		if want == -1 {
			if !cold {
				t.Fatalf("access %d line %d: expected cold", i, line)
			}
		} else {
			if cold {
				t.Fatalf("access %d line %d: unexpected cold", i, line)
			}
			if dist != want {
				t.Fatalf("access %d line %d: dist = %d, want %d", i, line, dist, want)
			}
		}
		history = append(history, line)
	}
}

func TestProfilerQuick(t *testing.T) {
	// Property: for arbitrary short traces, the Fenwick profiler matches
	// the naive reference exactly.
	f := func(raw []uint8) bool {
		p := NewProfiler(4)
		var history []uint64
		for _, r := range raw {
			line := uint64(r % 16)
			want := naiveStackDistance(history, line)
			dist, cold := p.Access(line)
			if (want == -1) != cold {
				return false
			}
			if want >= 0 && dist != want {
				return false
			}
			history = append(history, line)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestProfilerSequentialSweep(t *testing.T) {
	// Sweeping N lines cyclically: every revisit has distance N-1.
	const n = 100
	p := NewProfiler(16)
	for i := 0; i < n; i++ {
		if _, cold := p.Access(uint64(i)); !cold {
			t.Fatal("first touch not cold")
		}
	}
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < n; i++ {
			dist, cold := p.Access(uint64(i))
			if cold || dist != n-1 {
				t.Fatalf("pass %d line %d: dist=%d cold=%v, want %d", pass, i, dist, cold, n-1)
			}
		}
	}
	if p.Footprint() != n {
		t.Errorf("Footprint = %d, want %d", p.Footprint(), n)
	}
}

func TestProfilerImmediateReuse(t *testing.T) {
	p := NewProfiler(4)
	p.Access(42)
	dist, cold := p.Access(42)
	if cold || dist != 0 {
		t.Errorf("immediate reuse: dist=%d cold=%v", dist, cold)
	}
}

func TestProfilerReset(t *testing.T) {
	p := NewProfiler(4)
	p.Access(1)
	p.Access(2)
	p.Reset()
	if _, cold := p.Access(1); !cold {
		t.Error("after Reset, access was not cold")
	}
	if p.Footprint() != 1 {
		t.Errorf("Footprint after reset = %d", p.Footprint())
	}
}

func TestProfilerGrowth(t *testing.T) {
	// Exceed the initial hint to exercise Fenwick growth.
	p := NewProfiler(4)
	for i := 0; i < 10000; i++ {
		p.Access(uint64(i % 50))
	}
	dist, cold := p.Access(0)
	if cold || dist != 49 {
		t.Errorf("after growth: dist=%d cold=%v, want 49", dist, cold)
	}
}

func TestBucket(t *testing.T) {
	cases := []struct{ dist, bucket int }{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11},
	}
	for _, c := range cases {
		if got := Bucket(c.dist); got != c.bucket {
			t.Errorf("Bucket(%d) = %d, want %d", c.dist, got, c.bucket)
		}
	}
	if Bucket(math.MaxInt32) >= NumBuckets {
		t.Error("bucket overflow not clamped")
	}
}

func TestBucketLowInverse(t *testing.T) {
	for b := 0; b < 20; b++ {
		if got := Bucket(BucketLow(b)); got != b {
			t.Errorf("Bucket(BucketLow(%d)) = %d", b, got)
		}
	}
}

func TestHistogramNormalized(t *testing.T) {
	var h Histogram
	h.Add(1)
	h.Add(5)
	h.AddCold()
	h.AddCold()
	n := h.Normalized()
	if math.Abs(n.Total()-1) > 1e-12 {
		t.Errorf("normalized total = %v", n.Total())
	}
	if math.Abs(n.Cold-0.5) > 1e-12 {
		t.Errorf("normalized cold = %v", n.Cold)
	}
	// Empty histogram is a fixed point.
	var empty Histogram
	if e := empty.Normalized(); e.Total() != 0 {
		t.Error("empty normalization produced mass")
	}
}

func TestHistogramWeighted(t *testing.T) {
	var h Histogram
	h.Buckets[0] = 1
	h.Buckets[4] = 1
	w := h.Weighted(2)
	if math.Abs(w.Buckets[0]-1) > 1e-12 {
		t.Errorf("bucket 0 weight = %v, want 1", w.Buckets[0])
	}
	if math.Abs(w.Buckets[4]-4) > 1e-12 { // 2^(4/2) = 4
		t.Errorf("bucket 4 weight = %v, want 4", w.Buckets[4])
	}
	// v <= 0 means unweighted.
	u := h.Weighted(0)
	if u.Buckets[4] != 1 {
		t.Errorf("unweighted changed buckets: %v", u.Buckets[4])
	}
}

func TestCollect(t *testing.T) {
	// Two accesses to the same line (distance 0 between them, one other
	// line in between -> distance 1).
	s := &trace.SliceStream{Blocks: []trace.BlockExec{
		{Instrs: 1, Accs: []trace.Access{{Addr: 0}, {Addr: 64}, {Addr: 0}}},
	}}
	h := Collect(s)
	if h.Cold != 2 {
		t.Errorf("cold = %v, want 2", h.Cold)
	}
	if h.Buckets[Bucket(1)] != 1 {
		t.Errorf("distance-1 count = %v", h.Buckets[Bucket(1)])
	}
}

// TestAccessSteadyStateAllocs is the allocation-regression cap for the
// profiling inner loop: once the table and Fenwick tree have grown to the
// working set, Access never allocates.
func TestAccessSteadyStateAllocs(t *testing.T) {
	p := NewProfiler(16)
	for i := 0; i < 4096; i++ { // grow to the working set
		p.Access(uint64(i % 512))
	}
	var i uint64
	allocs := testing.AllocsPerRun(5000, func() {
		p.Access(i % 512)
		i++
	})
	if allocs >= 1 {
		t.Errorf("steady-state Access allocates %.2f times per call, want 0", allocs)
	}
}

// TestHistogramStringLong exercises the builder-based rendering on a full
// histogram (the seed's string concatenation was quadratic here).
func TestHistogramStringLong(t *testing.T) {
	var h Histogram
	for n := range h.Buckets {
		h.Buckets[n] = float64(n + 1)
	}
	h.Cold = 3
	s := h.String()
	if len(s) == 0 || s[0:4] != "ldv{" || s[len(s)-1] != '}' {
		t.Errorf("malformed String: %q", s)
	}
	if want := "2^47:48 cold:3}"; s[len(s)-len(want):] != want {
		t.Errorf("String tail = %q, want %q", s, want)
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	h.Add(0)
	h.AddCold()
	if got := h.String(); got != "ldv{2^0:1 cold:1}" {
		t.Errorf("String = %q", got)
	}
}
