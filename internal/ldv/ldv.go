// Package ldv implements LRU stack distance profiling (Mattson et al., 1970)
// and the power-of-two stack distance histograms ("LRU stack distance
// vectors", LDVs) BarrierPoint uses to characterize the data reuse behaviour
// of inter-barrier regions.
//
// The profiler uses the classic Olken/Fenwick-tree algorithm: every cache
// line's most recent access time is marked in a binary indexed tree, so the
// number of distinct lines touched since the previous access to a given line
// (its LRU stack distance) is a suffix count, computed in O(log n) per
// access.
package ldv

import (
	"fmt"
	"math"
	"strings"

	"barrierpoint/internal/sparse"
	"barrierpoint/internal/trace"
)

// NumBuckets is the number of finite distance buckets: bucket 0 holds
// distance 0 (immediate reuse), bucket n>=1 holds distances in
// [2^(n-1), 2^n - 1]. 48 buckets cover any distance representable here.
const NumBuckets = 48

// Histogram is a power-of-two LRU stack distance histogram. Cold counts
// first-ever accesses to a line, which have no finite stack distance.
type Histogram struct {
	Buckets [NumBuckets]float64
	Cold    float64
}

// Bucket maps a finite stack distance to its histogram bucket index.
func Bucket(dist int) int {
	if dist <= 0 {
		return 0
	}
	b := 1 + int(math.Ilogb(float64(dist)))
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	return b
}

// BucketLow returns the smallest distance stored in bucket b.
func BucketLow(b int) int {
	if b <= 0 {
		return 0
	}
	return 1 << (b - 1)
}

// Add records one access with the given finite stack distance.
func (h *Histogram) Add(dist int) { h.Buckets[Bucket(dist)]++ }

// AddCold records one cold (first-touch) access.
func (h *Histogram) AddCold() { h.Cold++ }

// Total returns the total number of recorded accesses.
func (h *Histogram) Total() float64 {
	s := h.Cold
	for _, c := range h.Buckets {
		s += c
	}
	return s
}

// Weighted returns a copy of h with bucket n scaled by 2^(n/v) — the
// paper's long-latency emphasis (§III-A3). v <= 0 means unweighted.
// The cold bucket receives the maximum weight, as cold accesses reach
// furthest in the hierarchy.
func (h *Histogram) Weighted(v float64) Histogram {
	out := *h
	if v <= 0 {
		return out
	}
	for n := range out.Buckets {
		out.Buckets[n] *= math.Exp2(float64(n) / v)
	}
	out.Cold *= math.Exp2(float64(NumBuckets) / v)
	return out
}

// Normalized returns a copy of h scaled so all entries (including cold)
// sum to 1. An empty histogram normalizes to itself.
func (h *Histogram) Normalized() Histogram {
	out := *h
	t := h.Total()
	if t == 0 {
		return out
	}
	for n := range out.Buckets {
		out.Buckets[n] /= t
	}
	out.Cold /= t
	return out
}

// String renders non-empty buckets for debugging.
func (h *Histogram) String() string {
	var b strings.Builder
	b.WriteString("ldv{")
	first := true
	for n, c := range h.Buckets {
		if c == 0 {
			continue
		}
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "2^%d:%.0f", n, c)
	}
	if h.Cold > 0 {
		if !first {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "cold:%.0f", h.Cold)
	}
	b.WriteByte('}')
	return b.String()
}

// Profiler computes LRU stack distances of a cache line access stream.
// The zero value is not usable; call NewProfiler.
//
// The per-line last-access index is an open-addressing robin-hood table
// (see internal/sparse) rather than a Go map: Access is the innermost loop
// of the profiling pass (one call per memory reference in the trace), and
// the flat table roughly halves its cost while making Reset a metadata
// clear, so profilers pool cleanly across regions (see internal/profile).
type Profiler struct {
	last sparse.Table[int] // line -> most recent access time (1-based)
	bit  []int             // Fenwick tree over access times; bit[0] unused
	time int               // number of accesses processed
}

// NewProfiler returns a profiler expecting roughly hint accesses (the hint
// only pre-sizes internal storage; any number of accesses is supported).
func NewProfiler(hint int) *Profiler {
	if hint < 16 {
		hint = 16
	}
	return &Profiler{
		last: *sparse.NewTable[int](hint / 4),
		bit:  make([]int, hint+1),
	}
}

// Reset clears all profiler state, keeping allocated storage.
func (p *Profiler) Reset() {
	p.last.Reset()
	clear(p.bit)
	p.time = 0
}

func (p *Profiler) bitAdd(i, delta int) {
	for ; i < len(p.bit); i += i & (-i) {
		p.bit[i] += delta
	}
}

func (p *Profiler) bitSum(i int) int { // prefix sum over [1, i]
	s := 0
	for ; i > 0; i -= i & (-i) {
		s += p.bit[i]
	}
	return s
}

// Access processes one access to the given cache line and returns its LRU
// stack distance: the number of distinct other lines touched since the
// previous access to line. cold reports a first-ever access, in which case
// dist is meaningless.
func (p *Profiler) Access(line uint64) (dist int, cold bool) {
	p.time++
	t := p.time
	if t >= len(p.bit) {
		// Grow the Fenwick tree. Zero-extension would corrupt it — a new
		// high node covers a range of existing positions — so rebuild
		// from the active positions (each line's most recent access).
		p.bit = make([]int, 2*len(p.bit))
		p.last.Range(func(_ uint64, at int) {
			p.bitAdd(at, 1)
		})
	}
	prev, seen := p.last.Swap(line, t)
	if seen {
		// Distinct lines accessed strictly after prev: each line's most
		// recent access position is marked, so a suffix count suffices.
		dist = p.bitSum(t-1) - p.bitSum(prev)
		p.bitAdd(prev, -1)
	} else {
		cold = true
	}
	p.bitAdd(t, 1)
	return dist, cold
}

// Footprint returns the number of distinct lines seen so far.
func (p *Profiler) Footprint() int { return p.last.Len() }

// Collect profiles a full stream and returns its LDV. Instruction fetches
// are not included; only data accesses contribute, as in the paper's
// Pintool.
func Collect(s trace.Stream) Histogram {
	var h Histogram
	p := NewProfiler(1024)
	var be trace.BlockExec
	for s.Next(&be) {
		for _, a := range be.Accs {
			d, cold := p.Access(trace.LineAddr(a.Addr))
			if cold {
				h.AddCold()
			} else {
				h.Add(d)
			}
		}
	}
	return h
}
