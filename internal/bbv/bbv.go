// Package bbv implements Basic Block Vectors (Sherwood et al., ASPLOS 2002):
// per-region fingerprints counting, for every static basic block, how many
// instructions that block contributed to the region's dynamic execution.
package bbv

import (
	"fmt"
	"strings"

	"barrierpoint/internal/sparse"
	"barrierpoint/internal/trace"
)

// Vector is a sparse basic block vector: static block ID → dynamic
// instruction count attributed to that block, stored as entries sorted by
// ascending block ID. The flat representation keeps signature construction
// and distance computation allocation-free; FromMap/ToMap are the shims for
// callers that still speak maps.
type Vector []sparse.Entry

// New returns an empty vector.
func New() Vector { return nil }

// FromMap converts a block→count map into a Vector.
func FromMap(m map[int]float64) Vector {
	u := make(map[uint64]float64, len(m))
	for id, c := range m {
		u[uint64(id)] = c
	}
	return Vector(sparse.FromMap(u))
}

// ToMap converts v into a block→count map.
func (v Vector) ToMap() map[int]float64 {
	m := make(map[int]float64, len(v))
	for _, e := range v {
		m[int(e.Key)] = e.Val
	}
	return m
}

// Add records one execution of block id contributing instrs instructions.
// It is an insert-or-update on the sorted entries: constant-time for the
// common loop pattern (re-executing the most recent block), logarithmic
// lookup otherwise. Collect and the profiler accumulate through
// sparse.Accumulator instead, which is O(1) per block regardless of
// insertion order.
func (v *Vector) Add(id, instrs int) {
	k := uint64(id)
	s := *v
	if n := len(s); n > 0 && s[n-1].Key == k {
		s[n-1].Val += float64(instrs)
		return
	}
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid].Key < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s) && s[lo].Key == k {
		s[lo].Val += float64(instrs)
		return
	}
	s = append(s, sparse.Entry{})
	copy(s[lo+1:], s[lo:])
	s[lo] = sparse.Entry{Key: k, Val: float64(instrs)}
	*v = s
}

// Get returns the instruction count attributed to block id.
func (v Vector) Get(id int) float64 { return sparse.Vector(v).Get(uint64(id)) }

// Len returns the number of distinct blocks.
func (v Vector) Len() int { return len(v) }

// Total returns the sum of all entries (the region's instruction count).
func (v Vector) Total() float64 { return sparse.Vector(v).Total() }

// Normalized returns a copy of v scaled so its entries sum to 1.
// A zero vector normalizes to an empty vector.
func (v Vector) Normalized() Vector {
	t := v.Total()
	if t == 0 {
		return nil
	}
	out := make(Vector, len(v))
	for i, e := range v {
		out[i] = sparse.Entry{Key: e.Key, Val: e.Val / t}
	}
	return out
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Keys returns the block IDs present in v in ascending order.
func (v Vector) Keys() []int {
	ks := make([]int, len(v))
	for i, e := range v {
		ks[i] = int(e.Key)
	}
	return ks
}

// ManhattanDistance returns the L1 distance between two vectors, treating
// missing entries as zero. For normalized vectors this lies in [0, 2].
// Both vectors are sorted, so this is a zero-allocation merge join.
func ManhattanDistance(a, b Vector) float64 {
	return sparse.Distance(sparse.Vector(a), sparse.Vector(b))
}

// Collect drains a stream and returns its basic block vector together with
// the total instruction count observed.
func Collect(s trace.Stream) (Vector, uint64) {
	acc := sparse.NewAccumulator(64)
	var be trace.BlockExec
	var instrs uint64
	for s.Next(&be) {
		acc.Add(uint64(be.Block), float64(be.Instrs))
		instrs += uint64(be.Instrs)
	}
	return FromAccumulator(acc), instrs
}

// FromAccumulator extracts the accumulated counts as a sorted Vector. The
// accumulator may be Reset and reused afterwards; this is the profiler's
// per-region extraction step.
func FromAccumulator(acc *sparse.Accumulator) Vector {
	return Vector(acc.AppendSorted(make(sparse.Vector, 0, acc.Len())))
}

// String renders the vector compactly for debugging.
func (v Vector) String() string {
	var b strings.Builder
	b.WriteString("bbv{")
	for i, e := range v {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%.0f", e.Key, e.Val)
	}
	b.WriteByte('}')
	return b.String()
}
