// Package bbv implements Basic Block Vectors (Sherwood et al., ASPLOS 2002):
// per-region fingerprints counting, for every static basic block, how many
// instructions that block contributed to the region's dynamic execution.
package bbv

import (
	"fmt"
	"sort"

	"barrierpoint/internal/trace"
)

// Vector is a sparse basic block vector: static block ID → dynamic
// instruction count attributed to that block.
type Vector map[int]float64

// New returns an empty vector.
func New() Vector { return make(Vector) }

// Add records one execution of block id contributing instrs instructions.
func (v Vector) Add(id, instrs int) { v[id] += float64(instrs) }

// Total returns the sum of all entries (the region's instruction count).
func (v Vector) Total() float64 {
	var s float64
	for _, c := range v {
		s += c
	}
	return s
}

// Normalized returns a copy of v scaled so its entries sum to 1.
// A zero vector normalizes to a zero vector.
func (v Vector) Normalized() Vector {
	out := make(Vector, len(v))
	t := v.Total()
	if t == 0 {
		return out
	}
	for id, c := range v {
		out[id] = c / t
	}
	return out
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	for id, c := range v {
		out[id] = c
	}
	return out
}

// Keys returns the block IDs present in v in ascending order.
func (v Vector) Keys() []int {
	ks := make([]int, 0, len(v))
	for id := range v {
		ks = append(ks, id)
	}
	sort.Ints(ks)
	return ks
}

// ManhattanDistance returns the L1 distance between two vectors, treating
// missing entries as zero. For normalized vectors this lies in [0, 2].
func ManhattanDistance(a, b Vector) float64 {
	var d float64
	for id, av := range a {
		bv := b[id]
		if av > bv {
			d += av - bv
		} else {
			d += bv - av
		}
	}
	for id, bv := range b {
		if _, ok := a[id]; !ok {
			d += bv
		}
	}
	return d
}

// Collect drains a stream and returns its basic block vector together with
// the total instruction count observed.
func Collect(s trace.Stream) (Vector, uint64) {
	v := New()
	var be trace.BlockExec
	var instrs uint64
	for s.Next(&be) {
		v.Add(be.Block, be.Instrs)
		instrs += uint64(be.Instrs)
	}
	return v, instrs
}

// String renders the vector compactly for debugging.
func (v Vector) String() string {
	ks := v.Keys()
	out := "bbv{"
	for i, k := range ks {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%d:%.0f", k, v[k])
	}
	return out + "}"
}
