package bbv

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"barrierpoint/internal/trace"
)

func TestAddTotal(t *testing.T) {
	v := New()
	v.Add(1, 10)
	v.Add(2, 5)
	v.Add(1, 10)
	if v.Total() != 25 {
		t.Errorf("Total = %v, want 25", v.Total())
	}
	if v.Get(1) != 20 || v.Get(2) != 5 {
		t.Errorf("entries wrong: %v", v)
	}
}

// TestAddMatchesMap drives Add with random out-of-order keys and checks the
// sorted flat vector against a map reference.
func TestAddMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	v := New()
	ref := make(map[int]float64)
	for i := 0; i < 2000; i++ {
		id, n := rng.Intn(100), rng.Intn(50)
		v.Add(id, n)
		ref[id] += float64(n)
	}
	if len(v) != len(ref) {
		t.Fatalf("distinct blocks = %d, want %d", len(v), len(ref))
	}
	for i := 1; i < len(v); i++ {
		if v[i-1].Key >= v[i].Key {
			t.Fatalf("entries not strictly sorted at %d: %v >= %v", i, v[i-1].Key, v[i].Key)
		}
	}
	for id, c := range ref {
		if v.Get(id) != c {
			t.Errorf("Get(%d) = %v, want %v", id, v.Get(id), c)
		}
	}
	got := FromMap(ref)
	if ManhattanDistance(v, got) != 0 {
		t.Error("FromMap round trip differs from incremental Add")
	}
}

func TestNormalized(t *testing.T) {
	v := FromMap(map[int]float64{1: 30, 2: 10})
	n := v.Normalized()
	if math.Abs(n.Get(1)-0.75) > 1e-12 || math.Abs(n.Get(2)-0.25) > 1e-12 {
		t.Errorf("Normalized = %v", n)
	}
	// Original unchanged.
	if v.Get(1) != 30 {
		t.Error("Normalized mutated its receiver")
	}
	// Zero vector stays zero.
	if z := New().Normalized(); z.Len() != 0 {
		t.Errorf("zero vector normalized to %v", z)
	}
}

func TestNormalizedSumsToOne(t *testing.T) {
	f := func(counts []uint16) bool {
		v := New()
		any := false
		for i, c := range counts {
			if c > 0 {
				v.Add(i, int(c))
				any = true
			}
		}
		if !any {
			return true
		}
		return math.Abs(v.Normalized().Total()-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClone(t *testing.T) {
	v := FromMap(map[int]float64{1: 2, 3: 4})
	c := v.Clone()
	c[0].Val = 99
	if v.Get(1) != 2 {
		t.Error("Clone shares storage with original")
	}
}

func TestKeys(t *testing.T) {
	v := FromMap(map[int]float64{5: 1, 1: 1, 3: 1})
	ks := v.Keys()
	if len(ks) != 3 || ks[0] != 1 || ks[1] != 3 || ks[2] != 5 {
		t.Errorf("Keys = %v", ks)
	}
}

func TestManhattanDistance(t *testing.T) {
	a := FromMap(map[int]float64{1: 0.5, 2: 0.5})
	b := FromMap(map[int]float64{1: 0.5, 3: 0.5})
	if d := ManhattanDistance(a, b); math.Abs(d-1.0) > 1e-12 {
		t.Errorf("distance = %v, want 1.0", d)
	}
	if d := ManhattanDistance(a, a); d != 0 {
		t.Errorf("self distance = %v", d)
	}
}

// mapManhattan is the seed map-based distance, kept as the reference for
// the merge-join implementation.
func mapManhattan(a, b map[int]float64) float64 {
	var d float64
	for id, av := range a {
		bv := b[id]
		if av > bv {
			d += av - bv
		} else {
			d += bv - av
		}
	}
	for id, bv := range b {
		if _, ok := a[id]; !ok {
			d += bv
		}
	}
	return d
}

func TestManhattanDistanceProperties(t *testing.T) {
	mk := func(xs []uint8) Vector {
		v := New()
		for i, x := range xs {
			if x > 0 {
				v.Add(i, int(x))
			}
		}
		return v.Normalized()
	}
	// Symmetry, bounds, and agreement with the map reference.
	f := func(xs, ys []uint8) bool {
		a, b := mk(xs), mk(ys)
		d1, d2 := ManhattanDistance(a, b), ManhattanDistance(b, a)
		ref := mapManhattan(a.ToMap(), b.ToMap())
		return math.Abs(d1-d2) < 1e-12 && d1 >= 0 && d1 <= 2+1e-12 &&
			math.Abs(d1-ref) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCollect(t *testing.T) {
	s := &trace.SliceStream{Blocks: []trace.BlockExec{
		{Block: 7, Instrs: 4},
		{Block: 7, Instrs: 4},
		{Block: 9, Instrs: 2},
	}}
	v, instrs := Collect(s)
	if instrs != 10 || v.Get(7) != 8 || v.Get(9) != 2 {
		t.Errorf("Collect = %v, %d", v, instrs)
	}
}

// TestCollectMatchesAdd checks the accumulator extraction path against the
// incremental insert path over a permuted block sequence.
func TestCollectMatchesAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var blocks []trace.BlockExec
	want := New()
	for i := 0; i < 500; i++ {
		id, n := rng.Intn(40), 1+rng.Intn(9)
		blocks = append(blocks, trace.BlockExec{Block: id, Instrs: n})
		want.Add(id, n)
	}
	got, _ := Collect(&trace.SliceStream{Blocks: blocks})
	if len(got) != len(want) || ManhattanDistance(got, want) != 0 {
		t.Errorf("Collect differs from Add path")
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Key < got[j].Key }) {
		t.Error("Collect output not sorted")
	}
}

func TestString(t *testing.T) {
	v := FromMap(map[int]float64{2: 3, 1: 1})
	if got := v.String(); got != "bbv{1:1 2:3}" {
		t.Errorf("String = %q", got)
	}
}
