package bbv

import (
	"math"
	"testing"
	"testing/quick"

	"barrierpoint/internal/trace"
)

func TestAddTotal(t *testing.T) {
	v := New()
	v.Add(1, 10)
	v.Add(2, 5)
	v.Add(1, 10)
	if v.Total() != 25 {
		t.Errorf("Total = %v, want 25", v.Total())
	}
	if v[1] != 20 || v[2] != 5 {
		t.Errorf("entries wrong: %v", v)
	}
}

func TestNormalized(t *testing.T) {
	v := Vector{1: 30, 2: 10}
	n := v.Normalized()
	if math.Abs(n[1]-0.75) > 1e-12 || math.Abs(n[2]-0.25) > 1e-12 {
		t.Errorf("Normalized = %v", n)
	}
	// Original unchanged.
	if v[1] != 30 {
		t.Error("Normalized mutated its receiver")
	}
	// Zero vector stays zero.
	if z := New().Normalized(); len(z) != 0 {
		t.Errorf("zero vector normalized to %v", z)
	}
}

func TestNormalizedSumsToOne(t *testing.T) {
	f := func(counts []uint16) bool {
		v := New()
		any := false
		for i, c := range counts {
			if c > 0 {
				v.Add(i, int(c))
				any = true
			}
		}
		if !any {
			return true
		}
		var sum float64
		for _, w := range v.Normalized() {
			sum += w
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClone(t *testing.T) {
	v := Vector{1: 2, 3: 4}
	c := v.Clone()
	c[1] = 99
	if v[1] != 2 {
		t.Error("Clone shares storage with original")
	}
}

func TestKeys(t *testing.T) {
	v := Vector{5: 1, 1: 1, 3: 1}
	ks := v.Keys()
	if len(ks) != 3 || ks[0] != 1 || ks[1] != 3 || ks[2] != 5 {
		t.Errorf("Keys = %v", ks)
	}
}

func TestManhattanDistance(t *testing.T) {
	a := Vector{1: 0.5, 2: 0.5}
	b := Vector{1: 0.5, 3: 0.5}
	if d := ManhattanDistance(a, b); math.Abs(d-1.0) > 1e-12 {
		t.Errorf("distance = %v, want 1.0", d)
	}
	if d := ManhattanDistance(a, a); d != 0 {
		t.Errorf("self distance = %v", d)
	}
}

func TestManhattanDistanceProperties(t *testing.T) {
	mk := func(xs []uint8) Vector {
		v := New()
		for i, x := range xs {
			if x > 0 {
				v.Add(i, int(x))
			}
		}
		return v.Normalized()
	}
	// Symmetry and bounds for normalized vectors.
	f := func(xs, ys []uint8) bool {
		a, b := mk(xs), mk(ys)
		d1, d2 := ManhattanDistance(a, b), ManhattanDistance(b, a)
		return math.Abs(d1-d2) < 1e-12 && d1 >= 0 && d1 <= 2+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCollect(t *testing.T) {
	s := &trace.SliceStream{Blocks: []trace.BlockExec{
		{Block: 7, Instrs: 4},
		{Block: 7, Instrs: 4},
		{Block: 9, Instrs: 2},
	}}
	v, instrs := Collect(s)
	if instrs != 10 || v[7] != 8 || v[9] != 2 {
		t.Errorf("Collect = %v, %d", v, instrs)
	}
}

func TestString(t *testing.T) {
	v := Vector{2: 3, 1: 1}
	if got := v.String(); got != "bbv{1:1 2:3}" {
		t.Errorf("String = %q", got)
	}
}
