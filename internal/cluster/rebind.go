package cluster

// Rebind transfers a selection to a different machine's region weights: the
// cluster assignment and representative regions are kept (barrierpoints are
// fixed units of work, paper §VI-A3), while multipliers and weights are
// recomputed from the new per-region instruction counts. This implements
// the paper's cross-architecture use of barrierpoints (Fig. 6), e.g.
// selecting on 8-core profiles and estimating a 32-core machine.
func Rebind(sel *Result, weights []float64) *Result {
	out := &Result{
		K:             sel.K,
		Assignment:    sel.Assignment,
		RegionWeights: weights,
		BIC:           sel.BIC,
		// Signature-space geometry is weight-independent: the rebound
		// selection keeps the original distances and (via the copied
		// Points) spreads.
		RepDists: sel.RepDists,
	}
	var totalW float64
	for _, w := range weights {
		totalW += w
	}
	clusterW := make(map[int]float64)
	for i, c := range sel.Assignment {
		clusterW[c] += weights[i]
	}
	for _, p := range sel.Points {
		q := p
		if w := weights[p.Region]; w > 0 {
			q.Multiplier = clusterW[p.Cluster] / w
		}
		if totalW > 0 {
			q.Weight = clusterW[p.Cluster] / totalW
		}
		out.Points = append(out.Points, q)
	}
	return out
}
