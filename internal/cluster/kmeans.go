package cluster

import "math"

// rng is a small deterministic PRNG (xorshift*) for k-means seeding.
type rng uint64

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x853C49E6748FEA9B
	}
	r := rng(seed)
	return &r
}

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = rng(x)
	return x * 0x2545F4914F6CDD1D
}

// float returns a uniform float64 in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// KMeansResult holds a single weighted k-means solution.
type KMeansResult struct {
	K          int
	Assignment []int       // point index -> cluster id
	Centroids  [][]float64 // cluster id -> centre
	WCSS       float64     // weighted within-cluster sum of squares
}

// kMeans runs weighted Lloyd's algorithm with k-means++ seeding.
// Weights scale each point's influence on centroids and on WCSS.
func kMeans(points [][]float64, weights []float64, k int, seed uint64, maxIters int) KMeansResult {
	n := len(points)
	if k > n {
		k = n
	}
	dim := len(points[0])
	r := newRNG(seed)

	// k-means++ seeding (weighted). Centroid rows share one backing array
	// so a solution costs two allocations, not k+2.
	backing := make([]float64, 0, k*dim)
	centroids := make([][]float64, 0, k)
	addCentroid := func(p []float64) {
		backing = append(backing, p...) // cap k*dim: never reallocates
		centroids = append(centroids, backing[len(backing)-dim:len(backing):len(backing)])
	}
	d2 := make([]float64, n)
	first := weightedPick(weights, r)
	addCentroid(points[first])
	for len(centroids) < k {
		var total float64
		for i, p := range points {
			d := sqDist(p, centroids[len(centroids)-1])
			if len(centroids) == 1 || d < d2[i] {
				d2[i] = d
			}
			total += d2[i] * weights[i]
		}
		if total == 0 {
			// All remaining points coincide with centroids; duplicate one.
			addCentroid(points[weightedPick(weights, r)])
			continue
		}
		target := r.float() * total
		pick := n - 1
		var acc float64
		for i := range points {
			acc += d2[i] * weights[i]
			if acc >= target {
				pick = i
				break
			}
		}
		addCentroid(points[pick])
	}

	assign := make([]int, n)
	wsum := make([]float64, k) // reused across iterations
	for iter := 0; iter < maxIters; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c := range centroids {
				if d := sqDist(p, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute weighted centroids.
		clear(wsum)
		for c := range centroids {
			for d := 0; d < dim; d++ {
				centroids[c][d] = 0
			}
		}
		for i, p := range points {
			c := assign[i]
			wsum[c] += weights[i]
			for d := 0; d < dim; d++ {
				centroids[c][d] += p[d] * weights[i]
			}
		}
		for c := range centroids {
			if wsum[c] == 0 {
				// Empty cluster: reseed at the point farthest from its
				// centroid (weighted by point weight).
				far, farD := 0, -1.0
				for i, p := range points {
					d := sqDist(p, centroids[assign[i]]) * weights[i]
					if d > farD {
						far, farD = i, d
					}
				}
				copy(centroids[c], points[far])
				continue
			}
			for d := 0; d < dim; d++ {
				centroids[c][d] /= wsum[c]
			}
		}
	}

	var wcss float64
	for i, p := range points {
		wcss += sqDist(p, centroids[assign[i]]) * weights[i]
	}
	return KMeansResult{K: k, Assignment: assign, Centroids: centroids, WCSS: wcss}
}

func weightedPick(weights []float64, r *rng) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	target := r.float() * total
	var acc float64
	for i, w := range weights {
		acc += w
		if acc >= target {
			return i
		}
	}
	return len(weights) - 1
}

// bic scores a clustering with the Bayesian Information Criterion under a
// spherical Gaussian model, as SimPoint does: higher is better; the
// parameter penalty grows with k, trading fit against model size.
func bic(points [][]float64, weights []float64, res KMeansResult) float64 {
	n := len(points)
	dim := len(points[0])
	k := res.K

	var wTotal float64
	for _, w := range weights {
		wTotal += w
	}
	// Cluster weights.
	wc := make([]float64, k)
	for i := range points {
		wc[res.Assignment[i]] += weights[i]
	}
	// Pooled variance estimate, floored at a small fraction of the data's
	// total variance. Without the floor, BIC degenerates for near-
	// duplicate regions (repeated identical kernels): splitting an
	// already-tight blob drives the variance toward zero and the
	// log-likelihood toward +inf, so model selection would always pick
	// maxK. The floor caps the reward for resolving structure finer than
	// 1/1000 of the data spread.
	variance := res.WCSS / math.Max(wTotal-float64(k), 1)
	if floor := dataVariance(points, weights, wTotal) * 1e-3; variance < floor {
		variance = floor
	}
	if variance <= 0 {
		variance = 1e-12
	}
	var loglik float64
	for c := 0; c < k; c++ {
		if wc[c] <= 0 {
			continue
		}
		nc := wc[c]
		loglik += nc*math.Log(nc/wTotal) -
			nc*float64(dim)/2*math.Log(2*math.Pi*variance) -
			(nc-1)/2*float64(dim)
	}
	params := float64(k) * (float64(dim) + 1)
	_ = n
	return loglik - params/2*math.Log(wTotal)
}

// dataVariance returns the weighted variance of the points around their
// weighted mean: the k=1 within-cluster variance, used as the BIC floor.
func dataVariance(points [][]float64, weights []float64, wTotal float64) float64 {
	if wTotal <= 0 {
		return 0
	}
	dim := len(points[0])
	mean := make([]float64, dim)
	for i, p := range points {
		for d := 0; d < dim; d++ {
			mean[d] += p[d] * weights[i]
		}
	}
	for d := 0; d < dim; d++ {
		mean[d] /= wTotal
	}
	var wcss float64
	for i, p := range points {
		wcss += sqDist(p, mean) * weights[i]
	}
	return wcss / wTotal
}
