package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"barrierpoint/internal/signature"
)

// blobSVs builds n signature vectors in g well-separated groups; members of
// a group differ only by a small perturbation.
func blobSVs(n, g int) ([]signature.SV, []float64, []int) {
	svs := make([]signature.SV, n)
	weights := make([]float64, n)
	truth := make([]int, n)
	for i := 0; i < n; i++ {
		grp := i % g
		// Each group occupies its own feature ids.
		svs[i] = signature.FromMap(map[uint64]float64{
			uint64(grp * 10):   0.7,
			uint64(grp*10 + 1): 0.3 - 0.001*float64(i/g%3),
			uint64(grp*10 + 2): 0.001 * float64(i/g%3),
		})
		weights[i] = 1000 + float64(i%7)
		truth[i] = grp
	}
	return svs, weights, truth
}

func TestProjectDeterministic(t *testing.T) {
	sv := signature.FromMap(map[uint64]float64{1: 0.5, 99: 0.5})
	a := Project(sv, 15, 42)
	b := Project(sv, 15, 42)
	for d := range a {
		if a[d] != b[d] {
			t.Fatal("projection not deterministic")
		}
	}
	c := Project(sv, 15, 43)
	same := true
	for d := range a {
		if a[d] != c[d] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical projections")
	}
}

func TestProjectPreservesSeparation(t *testing.T) {
	// Distant sparse vectors stay distant after projection; identical ones
	// coincide.
	a := signature.FromMap(map[uint64]float64{1: 1.0})
	b := signature.FromMap(map[uint64]float64{2: 1.0})
	pa, pb := Project(a, 15, 1), Project(b, 15, 1)
	var d2 float64
	for d := range pa {
		d2 += (pa[d] - pb[d]) * (pa[d] - pb[d])
	}
	if d2 < 1e-4 {
		t.Errorf("distinct vectors projected to distance² %v", d2)
	}
	pa2 := Project(signature.FromMap(map[uint64]float64{1: 1.0}), 15, 1)
	for d := range pa {
		if pa[d] != pa2[d] {
			t.Fatal("identical vectors projected differently")
		}
	}
}

func TestKMeansAssignmentOptimal(t *testing.T) {
	svs, weights, _ := blobSVs(60, 4)
	points := ProjectAll(svs, 8, 7)
	res := kMeans(points, weights, 4, 99, 100)
	for i, p := range points {
		best, bestD := -1, math.Inf(1)
		for c := range res.Centroids {
			if d := sqDist(p, res.Centroids[c]); d < bestD {
				best, bestD = c, d
			}
		}
		if res.Assignment[i] != best {
			t.Fatalf("point %d assigned to %d, nearest centroid is %d", i, res.Assignment[i], best)
		}
	}
}

func TestKMeansRecoversBlobs(t *testing.T) {
	svs, weights, truth := blobSVs(80, 4)
	points := ProjectAll(svs, 10, 3)
	res := kMeans(points, weights, 4, 5, 100)
	// All members of a true group must share a cluster.
	grpCluster := map[int]int{}
	for i := range points {
		g := truth[i]
		if c, ok := grpCluster[g]; ok {
			if res.Assignment[i] != c {
				t.Fatalf("group %d split across clusters", g)
			}
		} else {
			grpCluster[g] = res.Assignment[i]
		}
	}
	if len(grpCluster) != 4 {
		t.Errorf("expected 4 clusters used, got %d", len(grpCluster))
	}
}

func TestWCSSDecreasesWithK(t *testing.T) {
	svs, weights, _ := blobSVs(60, 6)
	points := ProjectAll(svs, 10, 3)
	prev := math.Inf(1)
	for k := 1; k <= 6; k++ {
		res := kMeans(points, weights, k, uint64(k)*3, 100)
		if res.WCSS > prev+1e-9 {
			t.Errorf("WCSS increased at k=%d: %v > %v", k, res.WCSS, prev)
		}
		prev = res.WCSS
	}
}

func TestSelectFindsStructure(t *testing.T) {
	svs, weights, truth := blobSVs(100, 5)
	res, err := Select(svs, weights, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.K < 3 || res.K > 8 {
		t.Errorf("K = %d for 5 true groups", res.K)
	}
	// Multipliers weighted by rep weight must sum to the total weight.
	var sum, total float64
	for _, p := range res.Points {
		sum += p.Multiplier * weights[p.Region]
	}
	for _, w := range weights {
		total += w
	}
	if math.Abs(sum-total)/total > 1e-9 {
		t.Errorf("Σ mult·w_rep = %v, want %v", sum, total)
	}
	// Weights sum to 1.
	var wsum float64
	for _, p := range res.Points {
		wsum += p.Weight
	}
	if math.Abs(wsum-1) > 1e-9 {
		t.Errorf("Σ weights = %v", wsum)
	}
	// Representatives belong to their own cluster.
	for _, p := range res.Points {
		if res.Assignment[p.Region] != p.Cluster {
			t.Errorf("rep %d not in cluster %d", p.Region, p.Cluster)
		}
	}
	_ = truth
}

func TestSelectSingleRegion(t *testing.T) {
	res, err := Select([]signature.SV{signature.FromMap(map[uint64]float64{1: 1.0})}, []float64{5}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 1 || len(res.Points) != 1 || res.Points[0].Multiplier != 1 {
		t.Errorf("singleton selection wrong: %+v", res)
	}
}

func TestSelectErrors(t *testing.T) {
	if _, err := Select(nil, nil, DefaultParams()); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Select([]signature.SV{{}}, []float64{1, 2}, DefaultParams()); err == nil {
		t.Error("mismatched weights accepted")
	}
	bad := DefaultParams()
	bad.Dim = 0
	if _, err := Select([]signature.SV{{}}, []float64{1}, bad); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestSelectDeterministic(t *testing.T) {
	svs, weights, _ := blobSVs(50, 3)
	a, _ := Select(svs, weights, DefaultParams())
	b, _ := Select(svs, weights, DefaultParams())
	if a.K != b.K {
		t.Fatal("non-deterministic K")
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatal("non-deterministic selection")
		}
	}
}

func TestPointFor(t *testing.T) {
	svs, weights, _ := blobSVs(30, 3)
	res, _ := Select(svs, weights, DefaultParams())
	for i := range svs {
		p := res.PointFor(i)
		if p == nil {
			t.Fatalf("region %d has no point", i)
		}
		if p.Cluster != res.Assignment[i] {
			t.Errorf("PointFor(%d) returned cluster %d, assignment says %d", i, p.Cluster, res.Assignment[i])
		}
	}
}

func TestSignificant(t *testing.T) {
	res := &Result{Points: []BarrierPoint{
		{Region: 0, Weight: 0.5},
		{Region: 1, Weight: 0.0005},
		{Region: 2, Weight: 0.4995},
	}}
	sig, insig := res.Significant()
	if len(sig) != 2 || len(insig) != 1 || insig[0].Region != 1 {
		t.Errorf("Significant split wrong: %v | %v", sig, insig)
	}
}

func TestRebind(t *testing.T) {
	svs, weights, _ := blobSVs(40, 4)
	sel, _ := Select(svs, weights, DefaultParams())
	// Double all weights: multipliers must be unchanged (scale-free),
	// assignment identical.
	w2 := make([]float64, len(weights))
	for i, w := range weights {
		w2[i] = 2 * w
	}
	re := Rebind(sel, w2)
	if re.K != sel.K {
		t.Fatal("Rebind changed K")
	}
	for i := range sel.Points {
		if re.Points[i].Region != sel.Points[i].Region {
			t.Fatal("Rebind changed representatives")
		}
		if math.Abs(re.Points[i].Multiplier-sel.Points[i].Multiplier) > 1e-9 {
			t.Errorf("uniform rescale changed multiplier: %v vs %v",
				re.Points[i].Multiplier, sel.Points[i].Multiplier)
		}
	}
}

func TestBICFloorPreventsDegenerateSplits(t *testing.T) {
	// 100 near-identical regions with 5 micro-variants: without the
	// variance floor, BIC degenerates and picks maxK (20); with it, K
	// stays at the actual structure (at most ~6).
	svs := make([]signature.SV, 100)
	weights := make([]float64, 100)
	for i := range svs {
		svs[i] = signature.FromMap(map[uint64]float64{
			1: 0.999 - 1e-6*float64(i%5),
			2: 0.001 + 1e-6*float64(i%5),
		})
		weights[i] = 1
	}
	res, err := Select(svs, weights, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.K > 6 {
		t.Errorf("near-identical regions split into K=%d clusters", res.K)
	}
}

// TestProjectMemoizationExact proves the shared-projector path (memoized
// per-feature rows) is bit-identical to evaluating projEntry directly.
func TestProjectMemoizationExact(t *testing.T) {
	svs, _, _ := blobSVs(40, 4)
	const dim, seed = 15, 42
	got := ProjectAll(svs, dim, seed)
	for i, sv := range svs {
		want := make([]float64, dim)
		for _, e := range sv {
			for d := 0; d < dim; d++ {
				want[d] += e.Val * projEntry(e.Key, d, seed)
			}
		}
		for d := 0; d < dim; d++ {
			if got[i][d] != want[d] {
				t.Fatalf("sv %d dim %d: memoized %v != direct %v", i, d, got[i][d], want[d])
			}
		}
		single := Project(sv, dim, seed)
		for d := 0; d < dim; d++ {
			if single[d] != got[i][d] {
				t.Fatalf("sv %d dim %d: Project differs from ProjectAll", i, d)
			}
		}
	}
}

func TestProjEntryRange(t *testing.T) {
	f := func(feature uint64, dim uint8) bool {
		v := projEntry(feature, int(dim%32), 42)
		return v >= -0.5 && v < 0.5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSelectSpreadAndRepDists(t *testing.T) {
	svs, weights, _ := blobSVs(60, 3)
	res, err := Select(svs, weights, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RepDists) != len(svs) {
		t.Fatalf("RepDists has %d entries for %d regions", len(res.RepDists), len(svs))
	}
	for _, p := range res.Points {
		if res.RepDists[p.Region] != 0 {
			t.Errorf("representative %d has nonzero distance to itself: %v", p.Region, res.RepDists[p.Region])
		}
		if p.Spread < 0 || p.Spread > 2 {
			t.Errorf("cluster %d spread %v outside the L1 range [0, 2]", p.Cluster, p.Spread)
		}
		// Spread is the weighted mean of the members' RepDists.
		var clusterW, want float64
		for i, c := range res.Assignment {
			if c != p.Cluster {
				continue
			}
			clusterW += weights[i]
		}
		for i, c := range res.Assignment {
			if c != p.Cluster || i == p.Region {
				continue
			}
			want += res.RepDists[i] * weights[i] / clusterW
			if res.RepDists[i] != signature.Distance(svs[i], svs[p.Region]) {
				t.Errorf("region %d: RepDists %v != signature distance", i, res.RepDists[i])
			}
		}
		if math.Abs(p.Spread-want) > 1e-12 {
			t.Errorf("cluster %d spread %v, want %v", p.Cluster, p.Spread, want)
		}
	}
	// Members of a blob differ only by tiny perturbations, so spreads must
	// be small but (with 3 perturbation levels per group) mostly nonzero.
	var nonzero int
	for _, p := range res.Points {
		if p.Spread > 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Error("every cluster spread is zero over perturbed blobs")
	}
}
