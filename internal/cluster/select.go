package cluster

import (
	"fmt"
	"math"
	"sort"

	"barrierpoint/internal/signature"
)

// Params are the clustering parameters, mirroring the paper's Table II
// SimPoint settings.
type Params struct {
	Dim         int     // -dim: projected dimensions (15)
	MaxK        int     // -maxK: maximum cluster count (20)
	CoveragePct float64 // -coveragePct: fraction of weight to cover (1.0)
	BICThresh   float64 // fraction of the best BIC accepted for a smaller k
	Seed        uint64  // RNG seed for projection and k-means
	KMeansIters int     // Lloyd iteration cap
	Tries       int     // k-means restarts per k (best WCSS wins)
}

// DefaultParams returns the paper's Table II configuration.
func DefaultParams() Params {
	return Params{
		Dim:         15,
		MaxK:        20,
		CoveragePct: 1.0,
		BICThresh:   0.99,
		Seed:        42,
		KMeansIters: 100,
		Tries:       5,
	}
}

// BarrierPoint is one selected representative region.
type BarrierPoint struct {
	Region     int     // region index of the representative
	Cluster    int     // cluster id
	Multiplier float64 // Σ member instrs / representative instrs (§III-D)
	Weight     float64 // fraction of total program instructions represented
	// Spread is the weight-averaged signature distance (L1, in [0, 2])
	// from the cluster's members to the representative: the within-cluster
	// behavioural heterogeneity the adaptive sampler turns into a variance
	// proxy for clusters with a single simulated member. Selections saved
	// before spreads existed load as 0.
	Spread float64 `json:",omitempty"`
}

// Result is a complete barrierpoint selection for one program.
type Result struct {
	K             int
	Assignment    []int          // region -> cluster
	Points        []BarrierPoint // one per cluster, sorted by region index
	RegionWeights []float64      // the instruction-count weights used
	BIC           []float64      // BIC score per candidate k (index k-1)
	// RepDists holds each region's signature distance (L1) to its cluster
	// representative: the adaptive sampler's runner-up ordering — the
	// unsimulated member closest to the representative is promoted first.
	// Empty for selections saved before distances existed.
	RepDists []float64
}

// PointFor returns the barrierpoint representing region i.
func (r *Result) PointFor(region int) *BarrierPoint {
	c := r.Assignment[region]
	for i := range r.Points {
		if r.Points[i].Cluster == c {
			return &r.Points[i]
		}
	}
	return nil
}

// Significant splits barrierpoints into significant and insignificant sets
// using the paper's 0.1% contribution threshold (Table III).
func (r *Result) Significant() (sig, insig []BarrierPoint) {
	for _, p := range r.Points {
		if p.Weight >= 0.001 {
			sig = append(sig, p)
		} else {
			insig = append(insig, p)
		}
	}
	return sig, insig
}

// Select runs the full clustering pipeline on per-region signature vectors:
// random projection, weighted k-means over k = 1..MaxK, BIC model
// selection, then per-cluster representative and multiplier extraction.
// weights must hold each region's aggregate instruction count.
func Select(svs []signature.SV, weights []float64, p Params) (*Result, error) {
	n := len(svs)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no regions to select from")
	}
	if len(weights) != n {
		return nil, fmt.Errorf("cluster: %d weights for %d regions", len(weights), n)
	}
	if p.Dim < 1 || p.MaxK < 1 {
		return nil, fmt.Errorf("cluster: invalid params dim=%d maxK=%d", p.Dim, p.MaxK)
	}

	points := ProjectAll(svs, p.Dim, p.Seed)

	maxK := p.MaxK
	if maxK > n {
		maxK = n
	}
	tries := p.Tries
	if tries < 1 {
		tries = 1
	}

	results := make([]KMeansResult, maxK+1)
	bics := make([]float64, 0, maxK)
	for k := 1; k <= maxK; k++ {
		best := kMeans(points, weights, k, p.Seed+uint64(k)*7919, p.KMeansIters)
		for t := 1; t < tries; t++ {
			cand := kMeans(points, weights, k, p.Seed+uint64(k)*7919+uint64(t)*104729, p.KMeansIters)
			if cand.WCSS < best.WCSS {
				best = cand
			}
		}
		results[k] = best
		bics = append(bics, bic(points, weights, best))
	}

	// SimPoint-style selection: smallest k whose BIC reaches BICThresh of
	// the way from the worst to the best BIC.
	bestBIC, worstBIC := math.Inf(-1), math.Inf(1)
	for _, b := range bics {
		bestBIC = math.Max(bestBIC, b)
		worstBIC = math.Min(worstBIC, b)
	}
	thresh := worstBIC + p.BICThresh*(bestBIC-worstBIC)
	chosenK := maxK
	for k := 1; k <= maxK; k++ {
		if bics[k-1] >= thresh {
			chosenK = k
			break
		}
	}
	km := results[chosenK]

	res := &Result{
		K:             chosenK,
		Assignment:    km.Assignment,
		RegionWeights: weights,
		BIC:           bics,
	}

	var totalW float64
	for _, w := range weights {
		totalW += w
	}

	// Per cluster: representative = member closest to the centroid, ties
	// broken toward the heavier (longer) region, as weighted SimPoint does.
	res.RepDists = make([]float64, n)
	for c := 0; c < chosenK; c++ {
		rep, repD := -1, math.Inf(1)
		var clusterW float64
		for i := range points {
			if km.Assignment[i] != c {
				continue
			}
			clusterW += weights[i]
			d := sqDist(points[i], km.Centroids[c])
			if rep == -1 || d < repD-1e-12 ||
				(math.Abs(d-repD) <= 1e-12 && weights[i] > weights[rep]) {
				rep, repD = i, d
			}
		}
		if rep == -1 {
			continue // empty cluster: nothing to represent
		}
		// Within-cluster heterogeneity, measured in the original signature
		// space (not the projection): per-member distance to the
		// representative, and its instruction-weighted mean as the
		// cluster's spread.
		var spread float64
		for i := range points {
			if km.Assignment[i] != c || i == rep {
				continue
			}
			d := signature.Distance(svs[i], svs[rep])
			res.RepDists[i] = d
			if clusterW > 0 {
				spread += d * weights[i] / clusterW
			}
		}
		mult := 0.0
		if weights[rep] > 0 {
			mult = clusterW / weights[rep]
		}
		w := 0.0
		if totalW > 0 {
			w = clusterW / totalW
		}
		res.Points = append(res.Points, BarrierPoint{
			Region:     rep,
			Cluster:    c,
			Multiplier: mult,
			Weight:     w,
			Spread:     spread,
		})
	}
	sort.Slice(res.Points, func(i, j int) bool {
		return res.Points[i].Region < res.Points[j].Region
	})
	return res, nil
}
