// Package cluster implements the SimPoint-style region clustering of the
// BarrierPoint methodology: random linear projection of signature vectors
// to a small dimension, weighted k-means with k-means++ seeding, BIC model
// selection over k, and representative ("barrierpoint") plus multiplier
// extraction (paper §III-B, Table II).
package cluster

import "barrierpoint/internal/signature"

// splitmix64 is the hash behind the implicit random projection matrix.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// projEntry returns the projection matrix entry for (feature, dim) in
// [-1, 1), derived deterministically so the matrix never needs to be
// materialized over the (huge, sparse) feature space.
func projEntry(feature uint64, dim int, seed uint64) float64 {
	h := splitmix64(feature ^ splitmix64(uint64(dim)+seed))
	return float64(int64(h))/(1<<63)*0.5 + 0 // in [-0.5, 0.5)
}

// Project maps a sparse signature vector into dim dense dimensions via a
// fixed random ±uniform projection (Table II: dim = 15).
func Project(sv signature.SV, dim int, seed uint64) []float64 {
	out := make([]float64, dim)
	for f, w := range sv {
		for d := 0; d < dim; d++ {
			out[d] += w * projEntry(f, d, seed)
		}
	}
	return out
}

// ProjectAll projects every signature vector.
func ProjectAll(svs []signature.SV, dim int, seed uint64) [][]float64 {
	out := make([][]float64, len(svs))
	for i, sv := range svs {
		out[i] = Project(sv, dim, seed)
	}
	return out
}
