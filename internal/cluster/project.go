// Package cluster implements the SimPoint-style region clustering of the
// BarrierPoint methodology: random linear projection of signature vectors
// to a small dimension, weighted k-means with k-means++ seeding, BIC model
// selection over k, and representative ("barrierpoint") plus multiplier
// extraction (paper §III-B, Table II).
package cluster

import (
	"barrierpoint/internal/signature"
	"barrierpoint/internal/sparse"
)

// splitmix64 is the hash behind the implicit random projection matrix.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// projEntry returns the projection matrix entry for (feature, dim) in
// [-0.5, 0.5), derived deterministically so the matrix never needs to be
// materialized over the (huge, sparse) feature space.
func projEntry(feature uint64, dim int, seed uint64) float64 {
	h := splitmix64(feature ^ splitmix64(uint64(dim)+seed))
	return float64(int64(h)) / (1 << 63) * 0.5
}

// projector evaluates the implicit projection matrix with two
// memoizations: the per-dimension seed hash splitmix64(dim+seed) is
// computed once, and each distinct feature's full projection row is
// computed once and cached. Regions of one program share almost all of
// their features (the same static blocks and LDV buckets recur), so
// projecting n regions costs one row computation per distinct feature
// instead of one hash per feature per region per dimension.
type projector struct {
	seed    uint64
	dimSeed []uint64            // splitmix64(d + seed), per dimension
	rows    sparse.Table[int32] // feature -> row offset in arena
	arena   []float64           // cached rows, dim entries each
}

func newProjector(dim int, seed uint64) *projector {
	pj := &projector{seed: seed, dimSeed: make([]uint64, dim)}
	for d := range pj.dimSeed {
		pj.dimSeed[d] = splitmix64(uint64(d) + seed)
	}
	return pj
}

// row returns the projection row of one feature, computing and caching it
// on first use. Row values are bit-identical to projEntry's.
func (pj *projector) row(feature uint64) []float64 {
	dim := len(pj.dimSeed)
	off, existed := pj.rows.Upsert(feature)
	if !existed {
		*off = int32(len(pj.arena))
		for _, ds := range pj.dimSeed {
			h := splitmix64(feature ^ ds)
			pj.arena = append(pj.arena, float64(int64(h))/(1<<63)*0.5)
		}
	}
	return pj.arena[*off : int(*off)+dim]
}

// project maps sv into out (len(out) dimensions) in one fused pass over
// the sorted entries, accumulating w * row[d] per feature.
func (pj *projector) project(sv signature.SV, out []float64) {
	for d := range out {
		out[d] = 0
	}
	for _, e := range sv {
		row := pj.row(e.Key)
		w := e.Val
		for d, r := range row {
			out[d] += w * r
		}
	}
}

// Project maps a sparse signature vector into dim dense dimensions via a
// fixed random ±uniform projection (Table II: dim = 15).
func Project(sv signature.SV, dim int, seed uint64) []float64 {
	out := make([]float64, dim)
	newProjector(dim, seed).project(sv, out)
	return out
}

// ProjectAll projects every signature vector through one shared projector,
// so each distinct feature's row is derived exactly once.
func ProjectAll(svs []signature.SV, dim int, seed uint64) [][]float64 {
	pj := newProjector(dim, seed)
	backing := make([]float64, dim*len(svs))
	out := make([][]float64, len(svs))
	for i, sv := range svs {
		out[i] = backing[i*dim : (i+1)*dim : (i+1)*dim]
		pj.project(sv, out[i])
	}
	return out
}
