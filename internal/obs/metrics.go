package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Default histogram bounds. Latency buckets span 100µs to 30s — point
// simulations and WAL fsyncs live at the low end, whole farmed estimates
// at the high end. Size buckets span 1KiB to 1GiB in powers of four
// (traces, decoded regions, WAL files).
var (
	DefLatencyBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}
	DefSizeBuckets = []float64{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
		1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30}
)

// metricKind is the Prometheus family type.
type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing count.
type Counter struct{ n atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.n.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution. Buckets are cumulative upper
// bounds; an implicit +Inf bucket always exists. All methods are safe for
// concurrent use.
type Histogram struct {
	upper   []float64 // sorted ascending, exclusive of +Inf
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefLatencyBuckets
	}
	up := append([]float64(nil), buckets...)
	sort.Float64s(up)
	return &Histogram{upper: up, counts: make([]atomic.Uint64, len(up)+1)}
}

// Observe records one sample. A nil histogram is a valid no-op, so
// un-instrumented components can skip the nil checks.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration sample in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// snapshot returns cumulative bucket counts (ending with the +Inf total),
// the sample sum, and the sample count, read in that order so the buckets
// never exceed the count.
func (h *Histogram) snapshot() (cum []uint64, sum float64, count uint64) {
	cum = make([]uint64, len(h.counts))
	var run uint64
	for i := range h.counts {
		run += h.counts[i].Load()
		cum[i] = run
	}
	return cum, math.Float64frombits(h.sumBits.Load()), cum[len(cum)-1]
}

// family is one metric family: a name, help text and type shared by one
// scalar series or one label dimension of series.
type family struct {
	name, help string
	kind       metricKind
	label      string    // label name for vector families; "" for scalars
	buckets    []float64 // histogram families only

	mu     sync.Mutex
	series map[string]any // label value ("" for scalars) → collector
}

// collector kinds stored in family.series.
type funcMetric func() float64

// Registry holds metric families and renders them in Prometheus text
// exposition format. Construct one per server/component with NewRegistry;
// there is no process-global registry.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// validName enforces the Prometheus metric/label name charset.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// newFamily registers a family, panicking on invalid or duplicate names —
// both are programmer errors, caught the first time the code path runs.
func (r *Registry) newFamily(name, help string, kind metricKind, label string, buckets []float64) *family {
	if !validName(name) || (label != "" && !validName(label)) {
		panic(fmt.Sprintf("obs: invalid metric name %q (label %q)", name, label))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[name]; ok {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	f := &family{name: name, help: help, kind: kind, label: label, buckets: buckets,
		series: make(map[string]any)}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

func (f *family) get(labelValue string, mk func() any) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.series[labelValue]; ok {
		return c
	}
	c := mk()
	f.series[labelValue] = c
	return c
}

// Counter registers and returns a scalar counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.newFamily(name, help, counterKind, "", nil)
	return f.get("", func() any { return new(Counter) }).(*Counter)
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for pre-existing atomic counters (service.Stats,
// farm.Stats), which stay the single source of truth.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.newFamily(name, help, counterKind, "", nil)
	f.get("", func() any { return funcMetric(fn) })
}

// Gauge registers and returns a scalar gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.newFamily(name, help, gaugeKind, "", nil)
	return f.get("", func() any { return new(Gauge) }).(*Gauge)
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.newFamily(name, help, gaugeKind, "", nil)
	f.get("", func() any { return funcMetric(fn) })
}

// Histogram registers and returns a scalar histogram over the given
// cumulative upper bounds (DefLatencyBuckets if nil).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.newFamily(name, help, histogramKind, "", buckets)
	return f.get("", func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// HistogramVec is a histogram family partitioned by one label.
type HistogramVec struct{ f *family }

// HistogramVec registers a single-label histogram family.
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	return &HistogramVec{r.newFamily(name, help, histogramKind, label, buckets)}
}

// With returns the histogram for one label value, creating it on first use.
func (v *HistogramVec) With(labelValue string) *Histogram {
	return v.f.get(labelValue, func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}

// CounterVec is a counter family partitioned by one label.
type CounterVec struct{ f *family }

// CounterVec registers a single-label counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return &CounterVec{r.newFamily(name, help, counterKind, label, nil)}
}

// With returns the counter for one label value, creating it on first use.
func (v *CounterVec) With(labelValue string) *Counter {
	return v.f.get(labelValue, func() any { return new(Counter) }).(*Counter)
}

// fmtFloat renders a sample value the way Prometheus clients do.
func fmtFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// value reads a collector's scalar sample.
func sampleValue(c any) float64 {
	switch m := c.(type) {
	case *Counter:
		return float64(m.Value())
	case *Gauge:
		return m.Value()
	case funcMetric:
		return m()
	}
	return math.NaN()
}

// WriteText renders every family in Prometheus text exposition format
// (version 0.0.4). Families are sorted by name and series by label value,
// so the output is deterministic.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	bw := &errWriter{w: w}
	for _, f := range fams {
		f.mu.Lock()
		labels := make([]string, 0, len(f.series))
		for lv := range f.series {
			labels = append(labels, lv)
		}
		sort.Strings(labels)
		series := make([]any, len(labels))
		for i, lv := range labels {
			series[i] = f.series[lv]
		}
		f.mu.Unlock()
		if len(series) == 0 {
			continue
		}
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for i, lv := range labels {
			if h, ok := series[i].(*Histogram); ok {
				writeHistogram(bw, f, lv, h)
				continue
			}
			if f.label == "" {
				fmt.Fprintf(bw, "%s %s\n", f.name, fmtFloat(sampleValue(series[i])))
			} else {
				fmt.Fprintf(bw, "%s{%s=%q} %s\n", f.name, f.label, escapeLabel(lv), fmtFloat(sampleValue(series[i])))
			}
		}
	}
	return bw.err
}

func writeHistogram(w io.Writer, f *family, labelValue string, h *Histogram) {
	cum, sum, count := h.snapshot()
	prefix := "" // extra label rendered before le=
	if f.label != "" {
		prefix = fmt.Sprintf("%s=%q,", f.label, escapeLabel(labelValue))
	}
	for i, upper := range h.upper {
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", f.name, prefix, fmtFloat(upper), cum[i])
	}
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", f.name, prefix, cum[len(cum)-1])
	if f.label == "" {
		fmt.Fprintf(w, "%s_sum %s\n", f.name, fmtFloat(sum))
		fmt.Fprintf(w, "%s_count %d\n", f.name, count)
	} else {
		fmt.Fprintf(w, "%s_sum{%s=%q} %s\n", f.name, f.label, escapeLabel(labelValue), fmtFloat(sum))
		fmt.Fprintf(w, "%s_count{%s=%q} %d\n", f.name, f.label, escapeLabel(labelValue), count)
	}
}

// errWriter latches the first write error so WriteText can report it
// without threading errors through every Fprintf.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, err
}

// Handler serves the registry at GET /metrics in text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}

// Expvar bridges the registry into an expvar map: one key per series
// ("name" or "name{label}"), histograms as {count, sum, buckets}. Publish
// it under a single var so existing expvar consumers see the new metrics
// without any existing key changing shape.
func (r *Registry) Expvar() expvar.Func {
	return expvar.Func(func() any {
		out := make(map[string]any)
		r.mu.Lock()
		fams := append([]*family(nil), r.families...)
		r.mu.Unlock()
		for _, f := range fams {
			f.mu.Lock()
			for lv, c := range f.series {
				key := f.name
				if f.label != "" {
					key = fmt.Sprintf("%s{%s=%q}", f.name, f.label, lv)
				}
				if h, ok := c.(*Histogram); ok {
					cum, sum, count := h.snapshot()
					buckets := make(map[string]uint64, len(cum))
					for i, upper := range h.upper {
						buckets[fmtFloat(upper)] = cum[i]
					}
					buckets["+Inf"] = cum[len(cum)-1]
					out[key] = map[string]any{"count": count, "sum": sum, "buckets": buckets}
				} else {
					out[key] = sampleValue(c)
				}
			}
			f.mu.Unlock()
		}
		return out
	})
}
