package obs

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// NewTraceID mints a random 64-bit trace ID in hex. It identifies one
// service job and everything done on its behalf, locally or on workers.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000" // degraded but functional: IDs collide, nothing breaks
	}
	return hex.EncodeToString(b[:])
}

// Stage is one timed phase of a span. Repeated observations of the same
// stage accumulate (DurationNs sums, Count counts), so a loop stage like
// "adaptive-round" reads as one line with a multiplicity. Stages with
// Concurrent set overlap other stages (e.g. trace decoding performed
// inside profiling and simulation) and are excluded when checking that
// stages partition the span's wall clock.
type Stage struct {
	Name       string `json:"name"`
	DurationNs int64  `json:"duration_ns"`
	Count      int    `json:"count"`
	Concurrent bool   `json:"concurrent,omitempty"`
}

// SpanData is the serializable snapshot of a span, embedded in job
// snapshots (GET /v1/jobs/{id}) and recorded into SpanRecorders.
type SpanData struct {
	TraceID    string            `json:"trace_id"`
	Name       string            `json:"name"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Start      time.Time         `json:"start"`
	End        time.Time         `json:"end,omitzero"`
	DurationNs int64             `json:"duration_ns,omitempty"`
	Stages     []Stage           `json:"stages,omitempty"`
}

// StageSumNs sums the non-concurrent stage durations — the part of the
// span's wall clock the stages account for.
func (d SpanData) StageSumNs() int64 {
	var sum int64
	for _, s := range d.Stages {
		if !s.Concurrent {
			sum += s.DurationNs
		}
	}
	return sum
}

// Span is a mutable, thread-safe span under construction. A nil *Span is
// a valid no-op, so un-instrumented code paths need no branching.
type Span struct {
	mu sync.Mutex
	d  SpanData
}

// NewSpan starts a span now.
func NewSpan(traceID, name string) *Span {
	return &Span{d: SpanData{TraceID: traceID, Name: name, Start: time.Now()}}
}

// TraceID returns the span's trace ID ("" for nil spans).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.d.TraceID
}

// SetAttr attaches a key/value attribute.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.d.Attrs == nil {
		s.d.Attrs = make(map[string]string)
	}
	s.d.Attrs[k] = v
}

func (s *Span) observe(stage string, d time.Duration, concurrent bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.d.Stages {
		if s.d.Stages[i].Name == stage && s.d.Stages[i].Concurrent == concurrent {
			s.d.Stages[i].DurationNs += d.Nanoseconds()
			s.d.Stages[i].Count++
			return
		}
	}
	s.d.Stages = append(s.d.Stages, Stage{
		Name: stage, DurationNs: d.Nanoseconds(), Count: 1, Concurrent: concurrent,
	})
}

// Observe records one timed occurrence of a stage.
func (s *Span) Observe(stage string, d time.Duration) { s.observe(stage, d, false) }

// ObserveConcurrent records stage time that overlapped other stages.
func (s *Span) ObserveConcurrent(stage string, d time.Duration) { s.observe(stage, d, true) }

// StartStage starts timing a stage; the returned func records it.
func (s *Span) StartStage(stage string) func() {
	if s == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { s.Observe(stage, time.Since(t0)) }
}

// Finish stamps the span's end time (idempotent).
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.d.End.IsZero() {
		s.d.End = time.Now()
		s.d.DurationNs = s.d.End.Sub(s.d.Start).Nanoseconds()
	}
}

// Data returns a copy of the span's current state, safe to serialize
// while the span is still being written.
func (s *Span) Data() SpanData {
	if s == nil {
		return SpanData{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.d
	d.Stages = append([]Stage(nil), s.d.Stages...)
	if len(s.d.Attrs) > 0 {
		d.Attrs = make(map[string]string, len(s.d.Attrs))
		for k, v := range s.d.Attrs {
			d.Attrs[k] = v
		}
	}
	return d
}

// SpanRecorder is a bounded ring of finished spans, queryable by trace
// ID — the worker-side evidence that a farmed task ran on behalf of a
// coordinator job. A nil recorder discards records.
type SpanRecorder struct {
	mu    sync.Mutex
	cap   int
	spans []SpanData // oldest first
}

// NewSpanRecorder returns a recorder keeping the last capacity spans
// (256 if <= 0).
func NewSpanRecorder(capacity int) *SpanRecorder {
	if capacity <= 0 {
		capacity = 256
	}
	return &SpanRecorder{cap: capacity}
}

// Record appends a span snapshot, evicting the oldest past capacity.
func (r *SpanRecorder) Record(d SpanData) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans = append(r.spans, d)
	if len(r.spans) > r.cap {
		r.spans = append(r.spans[:0], r.spans[len(r.spans)-r.cap:]...)
	}
}

// Spans returns all retained spans, oldest first.
func (r *SpanRecorder) Spans() []SpanData {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]SpanData(nil), r.spans...)
}

// ByTrace returns the retained spans carrying the given trace ID.
func (r *SpanRecorder) ByTrace(traceID string) []SpanData {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []SpanData
	for _, d := range r.spans {
		if d.TraceID == traceID {
			out = append(out, d)
		}
	}
	return out
}
