// Package obs is the repo's dependency-free telemetry layer: a metrics
// registry rendered in Prometheus text exposition format, job/task spans
// with per-stage timings, and shared structured-logging setup. Every
// server (bpserve, bpworker) and the service/farm/campaign stack report
// through it; it has no dependencies outside the standard library and no
// process-global state, so tests can build as many registries and
// recorders as they like without collisions.
//
// # Metric naming conventions
//
// Metric names follow the Prometheus data model, with one flat namespace
// per process:
//
//   - Coordinator-side series are prefixed bp_ (bp_jobs_submitted_total,
//     bp_farm_tasks_pending, ...); worker-process series are prefixed
//     bpworker_ so a scrape config can tell the two apart even behind one
//     relabeling rule.
//   - Counters end in _total and only ever increase; gauges carry no
//     suffix and report current level (bp_farm_tasks_pending,
//     bp_replay_cache_bytes).
//   - Histograms carry a unit suffix — _seconds for latencies, _bytes for
//     sizes — and expose the standard _bucket{le="..."}/_sum/_count
//     series with cumulative, monotone buckets ending at le="+Inf".
//   - At most one label per family, named for its dimension: job
//     histograms are labeled {kind="analyze|simulate|estimate"}, stage
//     histograms {stage="profile|cluster|..."}, WAL op histograms
//     {op="append|rewrite"}.
//
// # Spans and trace IDs
//
// A trace ID is minted once per service job (service.Manager.Submit) and
// follows the work everywhere it goes: into the job's Span (queryable via
// GET /v1/jobs/{id} and `bptool trace`), onto every farm task the job
// enqueues (farm.Task.TraceID, the X-Bp-Trace-Id(s) HTTP headers), and
// into the span each worker records while simulating that task — so one
// grep over coordinator and worker telemetry reconstructs a distributed
// job end to end. Span stages partition a job's wall clock (profile,
// cluster, simulate-points, reconstruct, adaptive-round, ...); stages
// flagged Concurrent (trace-decode) overlap the others and are excluded
// from the partition sum.
package obs
