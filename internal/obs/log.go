package obs

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
)

// LogFlags is the shared -log-level/-log-json flag pair every server
// registers, so the fleet is configured with one vocabulary.
type LogFlags struct {
	Level string
	JSON  bool
}

// RegisterLogFlags adds the shared logging flags to fs.
func RegisterLogFlags(fs *flag.FlagSet) *LogFlags {
	lf := &LogFlags{}
	fs.StringVar(&lf.Level, "log-level", "info", "log level: debug, info, warn or error")
	fs.BoolVar(&lf.JSON, "log-json", false, "emit logs as JSON lines instead of key=value text")
	return lf
}

// Logger builds the structured logger the flags describe, writing to w.
func (lf *LogFlags) Logger(w io.Writer) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(lf.Level)); err != nil {
		return nil, fmt.Errorf("obs: bad -log-level %q (want debug, info, warn or error)", lf.Level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	if lf.JSON {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(h), nil
}
