package obs

import (
	"flag"
	"io"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// parseText splits exposition output into sample lines keyed by the full
// series name (including labels).
func parseText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("parsing value of %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return sb.String()
}

func TestCountersGaugesAndFuncs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	g := r.Gauge("test_depth", "depth")
	r.CounterFunc("test_fn_total", "fn", func() float64 { return 42 })
	r.GaugeFunc("test_fn_gauge", "fn gauge", func() float64 { return -1.5 })
	c.Add(3)
	c.Inc()
	g.Set(7)
	g.Add(-2.5)

	text := render(t, r)
	samples := parseText(t, text)
	for name, want := range map[string]float64{
		"test_ops_total": 4, "test_depth": 4.5, "test_fn_total": 42, "test_fn_gauge": -1.5,
	} {
		if samples[name] != want {
			t.Errorf("%s = %v, want %v", name, samples[name], want)
		}
	}
	for _, want := range []string{
		"# HELP test_ops_total ops", "# TYPE test_ops_total counter",
		"# TYPE test_depth gauge", "# TYPE test_fn_total counter",
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("missing metadata line %q in:\n%s", want, text)
		}
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	text := render(t, r)
	samples := parseText(t, text)

	// Buckets must be cumulative and monotone, ending at +Inf == count.
	bounds := []string{"0.01", "0.1", "1", "+Inf"}
	prev := -1.0
	for _, le := range bounds {
		key := `test_latency_seconds_bucket{le="` + le + `"}`
		v, ok := samples[key]
		if !ok {
			t.Fatalf("missing bucket %s in:\n%s", key, text)
		}
		if v < prev {
			t.Fatalf("bucket %s = %v < previous %v (not monotone)", key, v, prev)
		}
		prev = v
	}
	if got := samples[`test_latency_seconds_bucket{le="+Inf"}`]; got != 4 {
		t.Errorf("+Inf bucket = %v, want 4", got)
	}
	if got := samples["test_latency_seconds_count"]; got != 4 {
		t.Errorf("count = %v, want 4", got)
	}
	if got := samples["test_latency_seconds_sum"]; got < 5.5 || got > 5.6 {
		t.Errorf("sum = %v, want ~5.555", got)
	}
	if !strings.Contains(text, "# TYPE test_latency_seconds histogram\n") {
		t.Errorf("missing histogram TYPE line in:\n%s", text)
	}
}

func TestHistogramVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("test_stage_seconds", "per-stage", "stage", []float64{1})
	v.With("profile").Observe(0.5)
	v.With("profile").Observe(2)
	v.With("cluster").Observe(0.1)
	samples := parseText(t, render(t, r))
	if got := samples[`test_stage_seconds_bucket{stage="profile",le="1"}`]; got != 1 {
		t.Errorf("profile le=1 bucket = %v, want 1", got)
	}
	if got := samples[`test_stage_seconds_count{stage="profile"}`]; got != 2 {
		t.Errorf("profile count = %v, want 2", got)
	}
	if got := samples[`test_stage_seconds_count{stage="cluster"}`]; got != 1 {
		t.Errorf("cluster count = %v, want 1", got)
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_kind_total", "by kind", "kind")
	v.With("a").Add(2)
	v.With("b").Inc()
	samples := parseText(t, render(t, r))
	if samples[`test_kind_total{kind="a"}`] != 2 || samples[`test_kind_total{kind="b"}`] != 1 {
		t.Errorf("unexpected vec samples: %v", samples)
	}
}

// TestExpvarParity proves the expvar bridge reports exactly the values the
// exposition format serves, for scalars and histograms alike.
func TestExpvarParity(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("par_ops_total", "ops")
	c.Add(9)
	g := r.Gauge("par_level", "level")
	g.Set(3.25)
	h := r.Histogram("par_lat_seconds", "lat", []float64{0.5})
	h.Observe(0.1)
	h.Observe(0.9)

	bridged := r.Expvar()().(map[string]any)
	samples := parseText(t, render(t, r))

	if got := bridged["par_ops_total"].(float64); got != samples["par_ops_total"] {
		t.Errorf("bridge par_ops_total = %v, exposition %v", got, samples["par_ops_total"])
	}
	if got := bridged["par_level"].(float64); got != samples["par_level"] {
		t.Errorf("bridge par_level = %v, exposition %v", got, samples["par_level"])
	}
	hb := bridged["par_lat_seconds"].(map[string]any)
	if got := float64(hb["count"].(uint64)); got != samples["par_lat_seconds_count"] {
		t.Errorf("bridge count = %v, exposition %v", got, samples["par_lat_seconds_count"])
	}
	if got := hb["sum"].(float64); got != samples["par_lat_seconds_sum"] {
		t.Errorf("bridge sum = %v, exposition %v", got, samples["par_lat_seconds_sum"])
	}
	buckets := hb["buckets"].(map[string]uint64)
	if got := float64(buckets["0.5"]); got != samples[`par_lat_seconds_bucket{le="0.5"}`] {
		t.Errorf("bridge bucket 0.5 = %v, exposition %v", got, samples[`par_lat_seconds_bucket{le="0.5"}`])
	}
	if got := float64(buckets["+Inf"]); got != samples[`par_lat_seconds_bucket{le="+Inf"}`] {
		t.Errorf("bridge bucket +Inf = %v, exposition %v", got, samples[`par_lat_seconds_bucket{le="+Inf"}`])
	}
}

func TestInvalidAndDuplicateNamesPanic(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("invalid name", func() { NewRegistry().Counter("bad name", "x") })
	expectPanic("leading digit", func() { NewRegistry().Counter("9bad", "x") })
	expectPanic("duplicate", func() {
		r := NewRegistry()
		r.Counter("dup_total", "x")
		r.Counter("dup_total", "x")
	})
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conc_seconds", "x", []float64{1})
	c := r.Counter("conc_total", "x")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.5)
				c.Inc()
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			r.WriteText(io.Discard)
		}
	}()
	wg.Wait()
	<-done
	samples := parseText(t, render(t, r))
	if samples["conc_seconds_count"] != 8000 || samples["conc_total"] != 8000 {
		t.Errorf("lost samples: %v", samples)
	}
}

func TestNilHistogramObserve(t *testing.T) {
	var h *Histogram
	h.Observe(1) // must not panic
	h.ObserveDuration(time.Second)
}

func TestLogFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	lf := RegisterLogFlags(fs)
	if err := fs.Parse([]string{"-log-level", "debug", "-log-json"}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	l, err := lf.Logger(&sb)
	if err != nil {
		t.Fatal(err)
	}
	l.Debug("hello", "k", "v")
	if !strings.Contains(sb.String(), `"msg":"hello"`) || !strings.Contains(sb.String(), `"k":"v"`) {
		t.Errorf("unexpected JSON log output: %s", sb.String())
	}
	lf.Level = "nope"
	if _, err := lf.Logger(io.Discard); err == nil {
		t.Error("bad level accepted")
	}
}
