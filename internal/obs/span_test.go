package obs

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

func TestNewTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("trace IDs must be 16 hex chars, got %q, %q", a, b)
	}
	if a == b {
		t.Fatalf("trace IDs collide: %q", a)
	}
}

func TestSpanStageAccumulation(t *testing.T) {
	s := NewSpan("abcd", "estimate")
	s.Observe("simulate-points", 10*time.Millisecond)
	s.Observe("simulate-points", 20*time.Millisecond)
	s.Observe("reconstruct", 5*time.Millisecond)
	s.ObserveConcurrent("trace-decode", 100*time.Millisecond)
	s.SetAttr("job", "job-000001")
	s.Finish()
	s.Finish() // idempotent

	d := s.Data()
	if d.TraceID != "abcd" || d.Name != "estimate" {
		t.Fatalf("bad identity: %+v", d)
	}
	if len(d.Stages) != 3 {
		t.Fatalf("want 3 stages, got %+v", d.Stages)
	}
	sp := d.Stages[0]
	if sp.Name != "simulate-points" || sp.Count != 2 || sp.DurationNs != (30*time.Millisecond).Nanoseconds() {
		t.Errorf("simulate-points accumulation wrong: %+v", sp)
	}
	if !d.Stages[2].Concurrent {
		t.Errorf("trace-decode should be concurrent: %+v", d.Stages[2])
	}
	// Concurrent stages are excluded from the wall-clock partition.
	if got, want := d.StageSumNs(), (35 * time.Millisecond).Nanoseconds(); got != want {
		t.Errorf("StageSumNs = %d, want %d", got, want)
	}
	if d.End.IsZero() || d.DurationNs <= 0 {
		t.Errorf("Finish did not stamp end: %+v", d)
	}
	if d.Attrs["job"] != "job-000001" {
		t.Errorf("attrs lost: %+v", d.Attrs)
	}
}

func TestSpanStartStage(t *testing.T) {
	s := NewSpan("t", "n")
	stop := s.StartStage("bind")
	time.Sleep(time.Millisecond)
	stop()
	d := s.Data()
	if len(d.Stages) != 1 || d.Stages[0].Name != "bind" || d.Stages[0].DurationNs <= 0 {
		t.Fatalf("StartStage did not record: %+v", d.Stages)
	}
}

func TestSpanDataIsCopy(t *testing.T) {
	s := NewSpan("t", "n")
	s.Observe("a", time.Millisecond)
	s.SetAttr("k", "v")
	d := s.Data()
	d.Stages[0].DurationNs = 999
	d.Attrs["k"] = "mutated"
	d2 := s.Data()
	if d2.Stages[0].DurationNs == 999 || d2.Attrs["k"] != "v" {
		t.Fatal("Data() shares memory with the span")
	}
}

func TestNilSpanIsNoop(t *testing.T) {
	var s *Span
	s.Observe("x", time.Second)
	s.ObserveConcurrent("x", time.Second)
	s.SetAttr("k", "v")
	s.StartStage("x")()
	s.Finish()
	if s.TraceID() != "" {
		t.Fatal("nil span trace ID not empty")
	}
	if d := s.Data(); len(d.Stages) != 0 {
		t.Fatal("nil span data not empty")
	}
}

func TestSpanRecorderRingAndByTrace(t *testing.T) {
	r := NewSpanRecorder(3)
	for i := 0; i < 5; i++ {
		r.Record(SpanData{TraceID: fmt.Sprintf("t%d", i%2), Name: fmt.Sprintf("s%d", i)})
	}
	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("ring should keep 3, got %d", len(spans))
	}
	if spans[0].Name != "s2" || spans[2].Name != "s4" {
		t.Fatalf("ring kept wrong spans (want oldest-first s2..s4): %+v", spans)
	}
	byT := r.ByTrace("t0")
	if len(byT) != 2 || byT[0].Name != "s2" || byT[1].Name != "s4" {
		t.Fatalf("ByTrace(t0) wrong: %+v", byT)
	}
	if got := r.ByTrace("missing"); len(got) != 0 {
		t.Fatalf("ByTrace(missing) = %+v", got)
	}

	var nilRec *SpanRecorder
	nilRec.Record(SpanData{})
	if nilRec.Spans() != nil || nilRec.ByTrace("x") != nil {
		t.Fatal("nil recorder should discard and return nil")
	}
}

func TestSpanDataJSONRoundTrip(t *testing.T) {
	s := NewSpan("deadbeef", "farm-task")
	s.Observe("simulate", 2*time.Millisecond)
	s.Finish()
	b, err := json.Marshal(s.Data())
	if err != nil {
		t.Fatal(err)
	}
	var d SpanData
	if err := json.Unmarshal(b, &d); err != nil {
		t.Fatal(err)
	}
	if d.TraceID != "deadbeef" || len(d.Stages) != 1 || d.Stages[0].Name != "simulate" {
		t.Fatalf("round trip lost data: %+v", d)
	}
}
