package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentIdenticalPutTrace hammers the Stat/Rename dedup race: many
// goroutines upload byte-identical traces at once. Exactly one key must
// come out, every call must succeed, the stored bytes must be intact, and
// no temp files may survive. (Two writers can both miss the Stat and race
// the Rename; rename-over-same-content is safe because the bytes are
// identical, but every path must still clean up its temp.)
func TestConcurrentIdenticalPutTrace(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := recordBytes(t)

	const n = 16
	keys := make([]string, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			keys[i], _, errs[i] = st.PutTrace(bytes.NewReader(data))
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("put %d: %v", i, errs[i])
		}
		if keys[i] != keys[0] {
			t.Fatalf("put %d produced key %s, put 0 produced %s", i, keys[i], keys[0])
		}
	}
	stored, err := os.ReadFile(st.tracePath(keys[0]))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stored, data) {
		t.Fatal("stored trace differs from uploaded bytes")
	}
	traces, err := st.Traces()
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 {
		t.Fatalf("store holds %d traces, want 1", len(traces))
	}
	assertNoTemps(t, st)
}

// assertNoTemps fails if any .put-* temp file remains anywhere under the
// store's content directories.
func assertNoTemps(t *testing.T, st *Store) {
	t.Helper()
	err := filepath.WalkDir(st.Root(), func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if strings.HasPrefix(d.Name(), ".put-") {
			t.Errorf("leftover temp file %s", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCrashBetweenTempAndRename simulates a writer killed after streaming
// bytes into its temp file but before the rename: the half-written key must
// be invisible to every read API, a re-upload of the same content must
// succeed as a fresh store, and reopening the store must eventually sweep
// the orphan.
func TestCrashBetweenTempAndRename(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	data := recordBytes(t)

	// A TraceWriter that never reaches Commit is exactly the crash state:
	// bytes in `.put-*`, no rename. Drop it on the floor.
	w, err := st.NewTraceWriter()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	tempName := w.tmp.Name()

	key, err := ReaderKey(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if st.HasTrace(key) {
		t.Fatal("half-written trace visible via HasTrace")
	}
	if _, err := st.TracePath(key); err == nil {
		t.Fatal("half-written trace visible via TracePath")
	}
	traces, err := st.Traces()
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 0 {
		t.Fatalf("Traces lists %d entries for a store with only a crashed write", len(traces))
	}

	// The next writer (post-crash restart) stores the same content cleanly.
	k2, existed, err := st.PutTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if k2 != key || existed {
		t.Fatalf("post-crash put: key %s existed %v, want %s false", k2, existed, key)
	}

	// Reopen: a young orphan survives the sweep (it might be a live
	// writer), an old one is reclaimed.
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tempName); err != nil {
		t.Fatal("young temp file swept inside the grace period")
	}
	old := time.Now().Add(-2 * tempMaxAge)
	if err := os.Chtimes(tempName, old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tempName); !os.IsNotExist(err) {
		t.Fatal("aged orphan temp not swept on Open")
	}
	// The committed trace is untouched by the sweep.
	if !st.HasTrace(key) {
		t.Fatal("sweep removed a committed trace")
	}
}

func TestTraceWriterAbort(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w, err := st.NewTraceWriter()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("partial upload")); err != nil {
		t.Fatal(err)
	}
	w.Abort()
	w.Abort() // idempotent
	if _, err := w.Write([]byte("x")); err == nil {
		t.Fatal("Write accepted data after Abort")
	}
	if _, _, err := w.Commit(); err == nil {
		t.Fatal("Commit succeeded after Abort")
	}
	assertNoTemps(t, st)
	traces, _ := st.Traces()
	if len(traces) != 0 {
		t.Fatal("aborted write left a trace behind")
	}
}

func TestProfileCache(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	digest := strings.Repeat("ab", 32)
	blob := []byte("profile bytes")

	if st.HasProfile(digest, "rd1") {
		t.Fatal("empty store has profile")
	}
	if _, err := st.GetProfile(digest, "rd1"); err == nil {
		t.Fatal("GetProfile succeeded on missing entry")
	}
	existed, err := st.PutProfile(digest, "rd1", blob)
	if err != nil || existed {
		t.Fatalf("first put: existed=%v err=%v", existed, err)
	}
	existed, err = st.PutProfile(digest, "rd1", []byte("different bytes, same key"))
	if err != nil || !existed {
		t.Fatalf("second put: existed=%v err=%v", existed, err)
	}
	got, err := st.GetProfile(digest, "rd1")
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("GetProfile after dedup: %q, %v", got, err)
	}
	// A different codec version is a distinct entry.
	if st.HasProfile(digest, "rd2") {
		t.Fatal("codec versions share entries")
	}
	names, err := st.Profiles()
	if err != nil || len(names) != 1 || names[0] != digest+".rd1" {
		t.Fatalf("Profiles() = %v, %v", names, err)
	}
	if err := st.RemoveProfile(digest, "rd1"); err != nil {
		t.Fatal(err)
	}
	if err := st.RemoveProfile(digest, "rd1"); err != nil {
		t.Fatal("removing a missing profile errored")
	}
	if st.HasProfile(digest, "rd1") {
		t.Fatal("profile survives RemoveProfile")
	}

	for _, bad := range [][2]string{{"not-a-digest", "rd1"}, {digest, "RD/1"}, {digest, ""}, {digest, "../evil"}} {
		if _, err := st.PutProfile(bad[0], bad[1], blob); err == nil {
			t.Errorf("PutProfile accepted (%q, %q)", bad[0], bad[1])
		}
	}
}

// TestConcurrentPutProfile: concurrent identical profile writes (ingest of
// overlapping traces) must all succeed, leave exactly one entry, and report
// existed=false to exactly one writer — ingest failure cleanup trusts that
// signal to remove only entries it created, so a double-claim would let a
// failed ingest delete a profile a successful one relies on.
func TestConcurrentPutProfile(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	digest := strings.Repeat("cd", 32)
	blob := bytes.Repeat([]byte{0x42}, 1024)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	existed := make([]bool, len(errs))
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			existed[i], errs[i] = st.PutProfile(digest, "rd1", blob)
		}(i)
	}
	wg.Wait()
	created := 0
	for i, err := range errs {
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		if !existed[i] {
			created++
		}
	}
	if created != 1 {
		t.Fatalf("%d writers reported existed=false, want exactly 1", created)
	}
	got, err := st.GetProfile(digest, "rd1")
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("profile after concurrent puts: %v", err)
	}
	assertNoTemps(t, st)
}
