// Package store is a content-addressed, on-disk store for recorded traces
// and the analysis artifacts derived from them. It is the shared artifact
// layer behind cmd/bptool's -cache flag and cmd/bpserve's job service: both
// address the same trace by the same key and reuse the same cached
// selections and estimates, so the "one-time cost" analysis of the paper's
// Fig. 2 is truly paid once per trace content.
//
// # Layout
//
// A store is a directory:
//
//	<root>/traces/<key>.bptrace        recorded traces, named by content
//	<root>/artifacts/<key>/<name>      derived artifacts for that trace
//
// The key of a trace is the lowercase hex SHA-256 of its file bytes, so a
// byte-identical trace uploaded twice — or recorded independently on two
// machines — lands on the same path and is stored once. Artifacts are named
// by the caller (see internal/service for the naming scheme: selection,
// estimate and ground-truth artifacts keyed by analysis config, machine
// config and warmup mode).
//
// All writes go through a temp file in the destination directory followed
// by an atomic rename, so concurrent writers (several jobs, or a CLI racing
// a server on the same store) can only ever observe absent or complete
// entries, never torn ones.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"barrierpoint/internal/tracefile"
)

// ErrNotFound reports a missing trace or artifact.
var ErrNotFound = errors.New("store: not found")

// KeyLen is the length of a trace key: a lowercase hex SHA-256 digest.
const KeyLen = 2 * sha256.Size

var (
	keyRe      = regexp.MustCompile(`^[0-9a-f]{64}$`)
	artifactRe = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]*$`)
)

// ValidKey reports whether k is a well-formed trace key.
func ValidKey(k string) bool { return keyRe.MatchString(k) }

// HashJSON returns the first 12 hex digits of the SHA-256 of v's
// canonical JSON encoding: the store-wide convention for embedding a
// config's identity in an artifact name (see internal/service and
// internal/farm for the naming schemes). Configs are flat structs of
// scalars, so encoding is deterministic.
func HashJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		// All config types marshal; a failure is a programming error.
		panic(fmt.Sprintf("store: marshaling config: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])[:12]
}

// SanitizeLabel maps a label onto the artifact-name charset ("mru+prev"
// → "mru-prev") so mode strings can appear in artifact names.
func SanitizeLabel(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '_', r == '-':
			return r
		default:
			return '-'
		}
	}, s)
}

// ReaderKey computes the content key of a trace read from r.
func ReaderKey(r io.Reader) (string, error) {
	h := sha256.New()
	if _, err := io.Copy(h, r); err != nil {
		return "", fmt.Errorf("store: hashing trace: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// FileKey computes the content key of the trace file at path.
func FileKey(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	return ReaderKey(f)
}

// Store is a content-addressed trace and artifact store rooted at one
// directory. Methods are safe for concurrent use from multiple goroutines
// (and, thanks to atomic renames, from multiple processes).
type Store struct {
	root string
}

// Open opens (creating if needed) the store rooted at dir.
func Open(dir string) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, "traces"), filepath.Join(dir, "artifacts")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return &Store{root: dir}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

func (s *Store) tracePath(key string) string {
	return filepath.Join(s.root, "traces", key+".bptrace")
}

func (s *Store) artifactDir(key string) string {
	return filepath.Join(s.root, "artifacts", key)
}

// PutTrace stores the trace read from r under its content key, which it
// returns. If a byte-identical trace is already stored, the new copy is
// discarded and existed is true. PutTrace does not validate the trace
// format; callers that accept untrusted bytes should OpenTrace the key
// afterwards and RemoveTrace on failure.
func (s *Store) PutTrace(r io.Reader) (key string, existed bool, err error) {
	tmp, err := os.CreateTemp(filepath.Join(s.root, "traces"), ".put-*")
	if err != nil {
		return "", false, fmt.Errorf("store: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	h := sha256.New()
	if _, err := io.Copy(io.MultiWriter(tmp, h), r); err != nil {
		return "", false, fmt.Errorf("store: writing trace: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		tmp = nil
		return "", false, fmt.Errorf("store: %w", err)
	}
	key = hex.EncodeToString(h.Sum(nil))
	dst := s.tracePath(key)
	if _, err := os.Stat(dst); err == nil {
		os.Remove(tmp.Name())
		tmp = nil
		return key, true, nil
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return "", false, fmt.Errorf("store: %w", err)
	}
	tmp = nil
	return key, false, nil
}

// ImportTrace stores the trace file at path under its content key.
func (s *Store) ImportTrace(path string) (key string, existed bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", false, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	return s.PutTrace(f)
}

// HasTrace reports whether the store holds a trace with the given key.
func (s *Store) HasTrace(key string) bool {
	if !ValidKey(key) {
		return false
	}
	_, err := os.Stat(s.tracePath(key))
	return err == nil
}

// TracePath returns the on-disk path of the stored trace, or ErrNotFound.
func (s *Store) TracePath(key string) (string, error) {
	if !ValidKey(key) {
		return "", fmt.Errorf("store: malformed trace key %q", key)
	}
	p := s.tracePath(key)
	if _, err := os.Stat(p); err != nil {
		return "", fmt.Errorf("store: trace %s: %w", key, ErrNotFound)
	}
	return p, nil
}

// OpenTrace opens the stored trace for streaming replay.
func (s *Store) OpenTrace(key string) (*tracefile.File, error) {
	p, err := s.TracePath(key)
	if err != nil {
		return nil, err
	}
	return tracefile.Open(p)
}

// RemoveTrace deletes a stored trace and all artifacts derived from it.
func (s *Store) RemoveTrace(key string) error {
	if !ValidKey(key) {
		return fmt.Errorf("store: malformed trace key %q", key)
	}
	if err := os.Remove(s.tracePath(key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.RemoveAll(s.artifactDir(key)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Traces lists the keys of all stored traces, sorted.
func (s *Store) Traces() ([]string, error) {
	ents, err := os.ReadDir(filepath.Join(s.root, "traces"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var keys []string
	for _, e := range ents {
		name := e.Name()
		if len(name) == KeyLen+len(".bptrace") && filepath.Ext(name) == ".bptrace" {
			if k := name[:KeyLen]; ValidKey(k) {
				keys = append(keys, k)
			}
		}
	}
	sort.Strings(keys)
	return keys, nil
}

func (s *Store) checkArtifact(key, name string) error {
	if !ValidKey(key) {
		return fmt.Errorf("store: malformed trace key %q", key)
	}
	if !artifactRe.MatchString(name) {
		return fmt.Errorf("store: malformed artifact name %q", name)
	}
	return nil
}

// GetArtifact returns the named artifact cached for the trace, or an error
// wrapping ErrNotFound when it has not been stored.
func (s *Store) GetArtifact(key, name string) ([]byte, error) {
	if err := s.checkArtifact(key, name); err != nil {
		return nil, err
	}
	b, err := os.ReadFile(filepath.Join(s.artifactDir(key), name))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("store: artifact %s/%s: %w", key, name, ErrNotFound)
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return b, nil
}

// HasArtifact reports whether the named artifact is cached for the trace.
func (s *Store) HasArtifact(key, name string) bool {
	if s.checkArtifact(key, name) != nil {
		return false
	}
	_, err := os.Stat(filepath.Join(s.artifactDir(key), name))
	return err == nil
}

// PutArtifact atomically stores the named artifact for the trace,
// overwriting any previous value.
func (s *Store) PutArtifact(key, name string, data []byte) error {
	if err := s.checkArtifact(key, name); err != nil {
		return err
	}
	dir := s.artifactDir(key)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".put-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: writing artifact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Campaign manifests (internal/campaign) are small JSON progress records
// for resumable sweep runs. They live beside the content-addressed data —
// <root>/campaigns/<name> — so a campaign resumes wherever its store
// goes: copy the store to another machine and the sweep picks up from its
// last completed cell there.

func (s *Store) campaignPath(name string) string {
	return filepath.Join(s.root, "campaigns", name)
}

// GetCampaign returns the named campaign manifest, or an error wrapping
// ErrNotFound when no campaign of that name has been saved.
func (s *Store) GetCampaign(name string) ([]byte, error) {
	if !artifactRe.MatchString(name) {
		return nil, fmt.Errorf("store: malformed campaign name %q", name)
	}
	b, err := os.ReadFile(s.campaignPath(name))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("store: campaign %s: %w", name, ErrNotFound)
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return b, nil
}

// PutCampaign atomically stores the named campaign manifest, overwriting
// any previous value.
func (s *Store) PutCampaign(name string, data []byte) error {
	if !artifactRe.MatchString(name) {
		return fmt.Errorf("store: malformed campaign name %q", name)
	}
	dir := filepath.Join(s.root, "campaigns")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".put-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: writing campaign: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.campaignPath(name)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Campaigns lists the saved campaign manifest names, sorted. A store with
// no campaigns yields an empty list, not an error.
func (s *Store) Campaigns() ([]string, error) {
	ents, err := os.ReadDir(filepath.Join(s.root, "campaigns"))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var names []string
	for _, e := range ents {
		if artifactRe.MatchString(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// RemoveArtifact invalidates one cached artifact. Removing an artifact
// that does not exist is not an error.
func (s *Store) RemoveArtifact(key, name string) error {
	if err := s.checkArtifact(key, name); err != nil {
		return err
	}
	if err := os.Remove(filepath.Join(s.artifactDir(key), name)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Artifacts lists the artifact names cached for the trace, sorted. A trace
// with no artifacts yields an empty list, not an error.
func (s *Store) Artifacts(key string) ([]string, error) {
	if !ValidKey(key) {
		return nil, fmt.Errorf("store: malformed trace key %q", key)
	}
	ents, err := os.ReadDir(s.artifactDir(key))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var names []string
	for _, e := range ents {
		if artifactRe.MatchString(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}
