// Package store is a content-addressed, on-disk store for recorded traces
// and the analysis artifacts derived from them. It is the shared artifact
// layer behind cmd/bptool's -cache flag and cmd/bpserve's job service: both
// address the same trace by the same key and reuse the same cached
// selections and estimates, so the "one-time cost" analysis of the paper's
// Fig. 2 is truly paid once per trace content.
//
// # Layout
//
// A store is a directory:
//
//	<root>/traces/<key>.bptrace        recorded traces, named by content
//	<root>/artifacts/<key>/<name>      derived artifacts for that trace
//	<root>/profiles/<digest>.<codec>   per-region profiles, named by region content
//
// The key of a trace is the lowercase hex SHA-256 of its file bytes, so a
// byte-identical trace uploaded twice — or recorded independently on two
// machines — lands on the same path and is stored once. Artifacts are named
// by the caller (see internal/service for the naming scheme: selection,
// estimate and ground-truth artifacts keyed by analysis config, machine
// config and warmup mode).
//
// Per-region profiles are addressed not by trace but by the region's own
// content digest (tracefile.File.RegionDigest) plus the encoding version
// (signature.CodecVersion), so they are shared by every trace containing
// that region and by every clustering configuration — re-clustering with a
// different K or signature variant reuses all of them and pays only
// k-means (see internal/service).
//
// All writes go through a temp file in the destination directory followed
// by an atomic rename, so concurrent writers (several jobs, or a CLI racing
// a server on the same store) can only ever observe absent or complete
// entries, never torn ones. Writes additionally fsync the temp file before
// the rename and the directory after it, so an entry whose write has been
// acknowledged (an upload's 201, a WAL-logged artifact) survives a crash —
// a half-written temp file from a crashed writer is invisible to readers
// and swept on the next Open.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"time"

	"barrierpoint/internal/fault"
	"barrierpoint/internal/tracefile"
)

// ErrNotFound reports a missing trace or artifact.
var ErrNotFound = errors.New("store: not found")

// KeyLen is the length of a trace key: a lowercase hex SHA-256 digest.
const KeyLen = 2 * sha256.Size

var (
	keyRe      = regexp.MustCompile(`^[0-9a-f]{64}$`)
	artifactRe = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]*$`)
)

// ValidKey reports whether k is a well-formed trace key.
func ValidKey(k string) bool { return keyRe.MatchString(k) }

// HashJSON returns the first 12 hex digits of the SHA-256 of v's
// canonical JSON encoding: the store-wide convention for embedding a
// config's identity in an artifact name (see internal/service and
// internal/farm for the naming schemes). Configs are flat structs of
// scalars, so encoding is deterministic.
func HashJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		// All config types marshal; a failure is a programming error.
		panic(fmt.Sprintf("store: marshaling config: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])[:12]
}

// SanitizeLabel maps a label onto the artifact-name charset ("mru+prev"
// → "mru-prev") so mode strings can appear in artifact names.
func SanitizeLabel(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '_', r == '-':
			return r
		default:
			return '-'
		}
	}, s)
}

// ReaderKey computes the content key of a trace read from r.
func ReaderKey(r io.Reader) (string, error) {
	h := sha256.New()
	if _, err := io.Copy(h, r); err != nil {
		return "", fmt.Errorf("store: hashing trace: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// FileKey computes the content key of the trace file at path.
func FileKey(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	return ReaderKey(f)
}

// Store is a content-addressed trace and artifact store rooted at one
// directory. Methods are safe for concurrent use from multiple goroutines
// (and, thanks to atomic renames, from multiple processes).
type Store struct {
	root string
}

// Open opens (creating if needed) the store rooted at dir. Stale temp
// files left behind by crashed writers are swept from the content
// directories; they are invisible to readers either way (nothing lists or
// opens `.put-*` names), so the sweep only reclaims disk.
func Open(dir string) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, "traces"), filepath.Join(dir, "artifacts"), filepath.Join(dir, "profiles")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	s := &Store{root: dir}
	s.sweepTemps()
	return s, nil
}

// tempMaxAge is how old a `.put-*` temp file must be before sweepTemps
// reclaims it. The grace period keeps a concurrent live writer (another
// process mid-PutTrace on the same store) safe from the sweep.
const tempMaxAge = time.Hour

// sweepTemps removes orphaned write temps older than tempMaxAge from the
// traces and profiles directories. Errors are deliberately ignored: the
// sweep is best-effort hygiene, and a failure (permissions, races with
// another sweeper) must not block opening the store.
func (s *Store) sweepTemps() {
	cutoff := time.Now().Add(-tempMaxAge)
	for _, d := range []string{"traces", "profiles"} {
		ents, err := os.ReadDir(filepath.Join(s.root, d))
		if err != nil {
			continue
		}
		for _, e := range ents {
			if !strings.HasPrefix(e.Name(), ".put-") {
				continue
			}
			if info, err := e.Info(); err == nil && info.ModTime().Before(cutoff) {
				os.Remove(filepath.Join(s.root, d, e.Name()))
			}
		}
	}
}

// syncDir fsyncs a directory, making a just-renamed entry durable. An
// unsupported-operation error (some filesystems reject directory fsync) is
// ignored; any other failure is reported.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, errors.ErrUnsupported) {
		return err
	}
	return nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

func (s *Store) tracePath(key string) string {
	return filepath.Join(s.root, "traces", key+".bptrace")
}

func (s *Store) artifactDir(key string) string {
	return filepath.Join(s.root, "artifacts", key)
}

// TraceWriter accumulates one trace into the store: bytes stream into a
// temp file while being hashed, and Commit atomically publishes them under
// the content key. It exists so an ingest pipeline can tee an upload into
// the store while simultaneously decoding it (see service.IngestTrace):
// the caller owns the copy loop instead of handing PutTrace a reader.
// A TraceWriter is single-use and not safe for concurrent Writes.
type TraceWriter struct {
	tmp *os.File
	dir string
	h   io.Writer
	sum func() string
}

// NewTraceWriter starts a trace write. Exactly one of Commit or Abort must
// eventually be called.
func (s *Store) NewTraceWriter() (*TraceWriter, error) {
	dir := filepath.Join(s.root, "traces")
	tmp, err := os.CreateTemp(dir, ".put-*")
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	h := sha256.New()
	return &TraceWriter{
		tmp: tmp,
		dir: dir,
		h:   h,
		sum: func() string { return hex.EncodeToString(h.Sum(nil)) },
	}, nil
}

// Write implements io.Writer.
func (w *TraceWriter) Write(p []byte) (int, error) {
	if w.tmp == nil {
		return 0, fmt.Errorf("store: write after Commit/Abort")
	}
	n, err := w.tmp.Write(p)
	w.h.Write(p[:n])
	if err != nil {
		return n, fmt.Errorf("store: writing trace: %w", err)
	}
	return n, nil
}

// Commit publishes the written bytes under their content key, which it
// returns. If a byte-identical trace is already stored the temp copy is
// discarded and existed is true. The temp file is fsynced before the
// rename and the traces directory after it, so a trace whose Commit has
// returned survives a crash; a crash before Commit leaves only an
// invisible temp file. On error the temp file is cleaned up (no Abort
// needed).
func (w *TraceWriter) Commit() (key string, existed bool, err error) {
	if w.tmp == nil {
		return "", false, fmt.Errorf("store: Commit after Commit/Abort")
	}
	tmp := w.tmp
	w.tmp = nil
	fail := func(err error) (string, bool, error) {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", false, err
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("store: syncing trace: %w", err))
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", false, fmt.Errorf("store: %w", err)
	}
	key = w.sum()
	dst := filepath.Join(w.dir, key+".bptrace")
	if _, err := os.Stat(dst); err == nil {
		os.Remove(tmp.Name())
		return key, true, nil
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return "", false, fmt.Errorf("store: %w", err)
	}
	if err := syncDir(w.dir); err != nil {
		// The rename happened; the entry is visible but not yet known
		// durable. Report the failure rather than pretend durability.
		return "", false, fmt.Errorf("store: syncing traces dir: %w", err)
	}
	return key, false, nil
}

// Abort discards the written bytes. Safe to call after Commit (a no-op).
func (w *TraceWriter) Abort() {
	if w.tmp == nil {
		return
	}
	w.tmp.Close()
	os.Remove(w.tmp.Name())
	w.tmp = nil
}

// PutTrace stores the trace read from r under its content key, which it
// returns. If a byte-identical trace is already stored, the new copy is
// discarded and existed is true. PutTrace does not validate the trace
// format; callers that accept untrusted bytes should OpenTrace the key
// afterwards and RemoveTrace on failure.
func (s *Store) PutTrace(r io.Reader) (key string, existed bool, err error) {
	w, err := s.NewTraceWriter()
	if err != nil {
		return "", false, err
	}
	if _, err := io.Copy(w, r); err != nil {
		w.Abort()
		return "", false, err
	}
	return w.Commit()
}

// ImportTrace stores the trace file at path under its content key.
func (s *Store) ImportTrace(path string) (key string, existed bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", false, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	return s.PutTrace(f)
}

// HasTrace reports whether the store holds a trace with the given key.
func (s *Store) HasTrace(key string) bool {
	if !ValidKey(key) {
		return false
	}
	_, err := os.Stat(s.tracePath(key))
	return err == nil
}

// TracePath returns the on-disk path of the stored trace, or ErrNotFound.
func (s *Store) TracePath(key string) (string, error) {
	if !ValidKey(key) {
		return "", fmt.Errorf("store: malformed trace key %q", key)
	}
	p := s.tracePath(key)
	if _, err := os.Stat(p); err != nil {
		return "", fmt.Errorf("store: trace %s: %w", key, ErrNotFound)
	}
	return p, nil
}

// OpenTrace opens the stored trace for streaming replay.
func (s *Store) OpenTrace(key string) (*tracefile.File, error) {
	p, err := s.TracePath(key)
	if err != nil {
		return nil, err
	}
	return tracefile.Open(p)
}

// RemoveTrace deletes a stored trace and all artifacts derived from it.
func (s *Store) RemoveTrace(key string) error {
	if !ValidKey(key) {
		return fmt.Errorf("store: malformed trace key %q", key)
	}
	if err := os.Remove(s.tracePath(key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.RemoveAll(s.artifactDir(key)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Traces lists the keys of all stored traces, sorted.
func (s *Store) Traces() ([]string, error) {
	ents, err := os.ReadDir(filepath.Join(s.root, "traces"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var keys []string
	for _, e := range ents {
		name := e.Name()
		if len(name) == KeyLen+len(".bptrace") && filepath.Ext(name) == ".bptrace" {
			if k := name[:KeyLen]; ValidKey(k) {
				keys = append(keys, k)
			}
		}
	}
	sort.Strings(keys)
	return keys, nil
}

func (s *Store) checkArtifact(key, name string) error {
	if !ValidKey(key) {
		return fmt.Errorf("store: malformed trace key %q", key)
	}
	if !artifactRe.MatchString(name) {
		return fmt.Errorf("store: malformed artifact name %q", name)
	}
	return nil
}

// GetArtifact returns the named artifact cached for the trace, or an error
// wrapping ErrNotFound when it has not been stored.
func (s *Store) GetArtifact(key, name string) ([]byte, error) {
	if err := s.checkArtifact(key, name); err != nil {
		return nil, err
	}
	if err := fault.Inject("store.get-artifact"); err != nil {
		return nil, err
	}
	b, err := os.ReadFile(filepath.Join(s.artifactDir(key), name))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("store: artifact %s/%s: %w", key, name, ErrNotFound)
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return b, nil
}

// HasArtifact reports whether the named artifact is cached for the trace.
func (s *Store) HasArtifact(key, name string) bool {
	if s.checkArtifact(key, name) != nil {
		return false
	}
	_, err := os.Stat(filepath.Join(s.artifactDir(key), name))
	return err == nil
}

// writeDurable writes data to dir/name via temp-write, fsync, atomic
// rename, directory fsync. It is the one write path behind artifacts,
// campaign manifests and profiles.
func writeDurable(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, ".put-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return fail(fmt.Errorf("store: writing %s: %w", name, err))
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("store: syncing %s: %w", name, err))
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("store: syncing %s: %w", dir, err)
	}
	return nil
}

// writeDurableExcl is writeDurable for create-once entries: the temp file
// is published with os.Link instead of os.Rename, which fails if the name
// already exists, so among concurrent writers of the same name exactly one
// observes existed=false. The losers' bytes are discarded — fine for
// content-addressed entries, where every writer's bytes are equivalent.
func writeDurableExcl(dir, name string, data []byte) (existed bool, err error) {
	tmp, err := os.CreateTemp(dir, ".put-*")
	if err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return false, fmt.Errorf("store: writing %s: %w", name, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return false, fmt.Errorf("store: syncing %s: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	if err := os.Link(tmp.Name(), filepath.Join(dir, name)); err != nil {
		if os.IsExist(err) {
			return true, nil
		}
		return false, fmt.Errorf("store: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return false, fmt.Errorf("store: syncing %s: %w", dir, err)
	}
	return false, nil
}

// PutArtifact atomically stores the named artifact for the trace,
// overwriting any previous value. The write is durable: temp file and
// directory are fsynced around the rename.
func (s *Store) PutArtifact(key, name string, data []byte) error {
	if err := s.checkArtifact(key, name); err != nil {
		return err
	}
	if err := fault.Inject("store.put-artifact"); err != nil {
		return err
	}
	dir := s.artifactDir(key)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return writeDurable(dir, name, data)
}

// Campaign manifests (internal/campaign) are small JSON progress records
// for resumable sweep runs. They live beside the content-addressed data —
// <root>/campaigns/<name> — so a campaign resumes wherever its store
// goes: copy the store to another machine and the sweep picks up from its
// last completed cell there.

func (s *Store) campaignPath(name string) string {
	return filepath.Join(s.root, "campaigns", name)
}

// GetCampaign returns the named campaign manifest, or an error wrapping
// ErrNotFound when no campaign of that name has been saved.
func (s *Store) GetCampaign(name string) ([]byte, error) {
	if !artifactRe.MatchString(name) {
		return nil, fmt.Errorf("store: malformed campaign name %q", name)
	}
	b, err := os.ReadFile(s.campaignPath(name))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("store: campaign %s: %w", name, ErrNotFound)
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return b, nil
}

// PutCampaign atomically stores the named campaign manifest, overwriting
// any previous value. The write is durable: temp file and directory are
// fsynced around the rename.
func (s *Store) PutCampaign(name string, data []byte) error {
	if !artifactRe.MatchString(name) {
		return fmt.Errorf("store: malformed campaign name %q", name)
	}
	dir := filepath.Join(s.root, "campaigns")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return writeDurable(dir, name, data)
}

// Campaigns lists the saved campaign manifest names, sorted. A store with
// no campaigns yields an empty list, not an error.
func (s *Store) Campaigns() ([]string, error) {
	ents, err := os.ReadDir(filepath.Join(s.root, "campaigns"))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var names []string
	for _, e := range ents {
		if artifactRe.MatchString(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// RemoveArtifact invalidates one cached artifact. Removing an artifact
// that does not exist is not an error.
func (s *Store) RemoveArtifact(key, name string) error {
	if err := s.checkArtifact(key, name); err != nil {
		return err
	}
	if err := os.Remove(filepath.Join(s.artifactDir(key), name)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Artifacts lists the artifact names cached for the trace, sorted. A trace
// with no artifacts yields an empty list, not an error.
func (s *Store) Artifacts(key string) ([]string, error) {
	if !ValidKey(key) {
		return nil, fmt.Errorf("store: malformed trace key %q", key)
	}
	ents, err := os.ReadDir(s.artifactDir(key))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var names []string
	for _, e := range ents {
		if artifactRe.MatchString(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}
