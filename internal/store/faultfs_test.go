package store

// Fault-injection tests for the store's durability paths: the WAL's
// append pipeline under short writes and I/O errors (via the WALHooks
// seam), and the campaign manifest putters under concurrent writers and
// crash-left temp files. These prove the invariants the farm queue's
// recovery builds on: an acknowledged record is durable, a failed append
// never buries later records behind garbage, and a reader never observes
// a half-written value.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// faultWriter is a WALHooks.WriteFrame seam that, while armed, writes
// only the first partialBytes of the frame and then fails.
type faultWriter struct {
	mu           sync.Mutex
	armed        bool
	partialBytes int
	closeFile    bool // also close the file, so rollback fails too
	faults       int
}

func (fw *faultWriter) writeFrame(f *os.File, frame []byte) error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if !fw.armed {
		if _, err := f.Write(frame); err != nil {
			return err
		}
		return f.Sync()
	}
	fw.faults++
	if fw.partialBytes > 0 {
		n := fw.partialBytes
		if n > len(frame) {
			n = len(frame)
		}
		f.Write(frame[:n])
		f.Sync()
	}
	if fw.closeFile {
		f.Close()
	}
	return errors.New("injected write fault")
}

func TestWALShortWriteRollsBack(t *testing.T) {
	for _, partial := range []int{0, 3, 11} {
		t.Run(fmt.Sprintf("partial-%d", partial), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "test.wal")
			fw := &faultWriter{partialBytes: partial}
			w, err := OpenWALHooked(path, &WALHooks{WriteFrame: fw.writeFrame})
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Append([]byte("before")); err != nil {
				t.Fatal(err)
			}
			fw.armed = true
			if err := w.Append([]byte("lost-to-fault")); err == nil {
				t.Fatal("faulted append reported success")
			}
			fw.armed = false
			// The failed append rolled back, so this record lands directly
			// after "before" — no garbage in between for replay to trip on.
			if err := w.Append([]byte("after")); err != nil {
				t.Fatalf("append after rollback: %v", err)
			}
			w.Close()
			recs, _ := replayAll(t, path)
			if len(recs) != 2 || string(recs[0]) != "before" || string(recs[1]) != "after" {
				t.Fatalf("replay = %q, want [before after]", recs)
			}
			if fw.faults != 1 {
				t.Fatalf("injected %d faults, want 1", fw.faults)
			}
		})
	}
}

func TestWALBrokenWhenRollbackFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	fw := &faultWriter{partialBytes: 5, closeFile: true}
	w, err := OpenWALHooked(path, &WALHooks{WriteFrame: fw.writeFrame})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("good")); err != nil {
		t.Fatal(err)
	}
	fw.armed = true
	err = w.Append([]byte("doomed"))
	if !errors.Is(err, ErrWALBroken) {
		t.Fatalf("append with failed rollback: %v, want ErrWALBroken", err)
	}
	fw.armed = false
	if err := w.Append([]byte("refused")); !errors.Is(err, ErrWALBroken) {
		t.Fatalf("append on broken wal: %v, want ErrWALBroken", err)
	}

	// Reopening revalidates the tail: the torn frame is truncated away and
	// the good prefix survives.
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append([]byte("recovered")); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	recs, _ := replayAll(t, path)
	if len(recs) != 2 || string(recs[0]) != "good" || string(recs[1]) != "recovered" {
		t.Fatalf("replay after reopen = %q, want [good recovered]", recs)
	}
}

func TestPutCampaignConcurrentWriters(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 8
		rounds  = 25
	)
	payload := func(w, r int) []byte {
		return []byte(fmt.Sprintf(`{"writer":%d,"round":%d,"pad":%q}`, w, r, strings.Repeat("x", 512)))
	}
	valid := make(map[string]bool)
	for w := 0; w < writers; w++ {
		for r := 0; r < rounds; r++ {
			valid[string(payload(w, r))] = true
		}
	}

	var wg sync.WaitGroup
	errc := make(chan error, writers*2)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if err := st.PutCampaign("sweep", payload(w, r)); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	// Concurrent readers must only ever observe complete values.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writers*rounds; i++ {
			b, err := st.GetCampaign("sweep")
			if errors.Is(err, ErrNotFound) {
				continue // nothing stored yet
			}
			if err != nil {
				errc <- err
				return
			}
			if !valid[string(b)] {
				errc <- fmt.Errorf("read a value no writer ever stored: %.60q...", b)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	b, err := st.GetCampaign("sweep")
	if err != nil {
		t.Fatal(err)
	}
	if !valid[string(b)] {
		t.Fatalf("final value was never written by any writer: %.60q", b)
	}
	// The atomic-rename discipline leaves no temp files behind.
	ents, err := os.ReadDir(filepath.Join(st.Root(), "campaigns"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".put-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

func TestCampaignIgnoresCrashedTempFile(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := []byte(`{"state":"complete"}`)
	if err := st.PutCampaign("sweep", want); err != nil {
		t.Fatal(err)
	}
	// Simulate a writer killed between CreateTemp and Rename: a partial
	// temp file sits beside the manifest.
	dir := filepath.Join(st.Root(), "campaigns")
	if err := os.WriteFile(filepath.Join(dir, ".put-1234"), []byte(`{"state":"trunc`), 0o644); err != nil {
		t.Fatal(err)
	}

	b, err := st.GetCampaign("sweep")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, want) {
		t.Fatalf("GetCampaign = %q, want %q", b, want)
	}
	names, err := st.Campaigns()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "sweep" {
		t.Fatalf("Campaigns = %v, want [sweep] (temp file must be invisible)", names)
	}
	// The temp file's name is not even addressable as a campaign.
	if _, err := st.GetCampaign(".put-1234"); err == nil {
		t.Fatal("GetCampaign accepted a temp-file name")
	}
}
