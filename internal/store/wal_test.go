package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// replayAll replays the log at path into a slice of record payloads.
func replayAll(t *testing.T, path string) ([][]byte, int64) {
	t.Helper()
	var recs [][]byte
	valid, n, err := ReplayWAL(path, func(rec []byte) error {
		recs = append(recs, append([]byte(nil), rec...))
		return nil
	})
	if err != nil {
		t.Fatalf("replaying %s: %v", path, err)
	}
	if n != len(recs) {
		t.Fatalf("replay reported %d records, delivered %d", n, len(recs))
	}
	return recs, valid
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "test.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 20; i++ {
		rec := []byte(fmt.Sprintf(`{"op":"test","n":%d}`, i))
		if i == 7 {
			rec = nil // zero-length payloads must round-trip too
		}
		if err := w.Append(rec); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		want = append(want, rec)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, valid := replayAll(t, path)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if valid != fi.Size() {
		t.Errorf("valid prefix %d != file size %d (no torn tail was written)", valid, fi.Size())
	}
}

func TestWALTornTailTruncatedOnOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	cleanSize := w.Size()
	w.Close()

	// Simulate a crash mid-append: a partial frame after the good records.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 0, 0, 0, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Replay sees only the valid prefix...
	recs, valid := replayAll(t, path)
	if len(recs) != 3 || valid != cleanSize {
		t.Fatalf("replay after torn tail: %d records, valid %d; want 3, %d", len(recs), valid, cleanSize)
	}
	// ...and reopening truncates the tail away so appends continue cleanly.
	w2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if w2.Size() != cleanSize {
		t.Fatalf("reopened size %d, want %d", w2.Size(), cleanSize)
	}
	if err := w2.Append([]byte("rec-3")); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	recs, _ = replayAll(t, path)
	if len(recs) != 4 || string(recs[3]) != "rec-3" {
		t.Fatalf("after reopen+append: %d records (last %q), want 4 ending in rec-3", len(recs), recs[len(recs)-1])
	}
}

func TestWALReplayStopsAtCorruptRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Append([]byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frame := int64(8 + len("record-0"))

	// Flip a payload byte of record 2: replay keeps records 0-1 only.
	bad := append([]byte(nil), data...)
	bad[2*frame+8] ^= 0xff
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, valid := replayAll(t, path)
	if len(recs) != 2 || valid != 2*frame {
		t.Fatalf("checksum damage: %d records, valid %d; want 2, %d", len(recs), valid, 2*frame)
	}

	// An absurd length field must stop replay, not allocate 4 GiB.
	bad = append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(bad[3*frame:], 0xfffffff0)
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, _ = replayAll(t, path)
	if len(recs) != 3 {
		t.Fatalf("oversized length: %d records, want 3", len(recs))
	}
}

func TestReplayWALMissingFile(t *testing.T) {
	valid, n, err := ReplayWAL(filepath.Join(t.TempDir(), "nope.wal"), nil)
	if err != nil || valid != 0 || n != 0 {
		t.Fatalf("missing file: valid %d n %d err %v, want all zero", valid, n, err)
	}
}

func TestWALRewriteCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.Append([]byte(fmt.Sprintf("old-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Rewrite([][]byte{[]byte("live-a"), []byte("live-b")}); err != nil {
		t.Fatal(err)
	}
	// The handle keeps working against the new file.
	if err := w.Append([]byte("post")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	recs, _ := replayAll(t, path)
	want := []string{"live-a", "live-b", "post"}
	if len(recs) != len(want) {
		t.Fatalf("after rewrite: %d records, want %d", len(recs), len(want))
	}
	for i, s := range want {
		if string(recs[i]) != s {
			t.Errorf("record %d = %q, want %q", i, recs[i], s)
		}
	}
	// No stray temp files.
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name() != filepath.Base(path) {
			t.Errorf("leftover file %s after rewrite", e.Name())
		}
	}
}
