package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"barrierpoint/internal/tracefile"
	"barrierpoint/internal/workload"
)

// recordBytes records a small workload trace into memory.
func recordBytes(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	prog := workload.New("npb-is", 8, workload.WithScale(0.05))
	if err := tracefile.Record(&buf, prog); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestPutTraceContentAddressing(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := recordBytes(t)

	key, existed, err := st.PutTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if existed {
		t.Error("first put reported existed")
	}
	if !ValidKey(key) {
		t.Fatalf("invalid key %q", key)
	}
	wantKey, err := ReaderKey(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if key != wantKey {
		t.Errorf("PutTrace key %s != ReaderKey %s", key, wantKey)
	}

	// Byte-identical re-upload dedupes.
	key2, existed, err := st.PutTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if key2 != key || !existed {
		t.Errorf("re-put: key %s existed %v, want %s true", key2, existed, key)
	}

	keys, err := st.Traces()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != key {
		t.Errorf("Traces() = %v, want [%s]", keys, key)
	}

	// The stored bytes round-trip exactly.
	p, err := st.TracePath(key)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("stored trace bytes differ from input")
	}

	f, err := st.OpenTrace(key)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Name() != "npb-is" || f.Threads() != 8 {
		t.Errorf("replayed trace is %s/%d threads", f.Name(), f.Threads())
	}

	// No leftover temp files.
	ents, err := os.ReadDir(filepath.Join(st.Root(), "traces"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".put-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

func TestImportTrace(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := recordBytes(t)
	path := filepath.Join(t.TempDir(), "is.bptrace")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	key, existed, err := st.ImportTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if existed {
		t.Error("fresh import reported existed")
	}
	fileKey, err := FileKey(path)
	if err != nil {
		t.Fatal(err)
	}
	if key != fileKey {
		t.Errorf("ImportTrace key %s != FileKey %s", key, fileKey)
	}
	if !st.HasTrace(key) {
		t.Error("HasTrace false after import")
	}
}

func TestArtifacts(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, _, err := st.PutTrace(bytes.NewReader(recordBytes(t)))
	if err != nil {
		t.Fatal(err)
	}

	if _, err := st.GetArtifact(key, "selection-x.json"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing artifact: got %v, want ErrNotFound", err)
	}
	if st.HasArtifact(key, "selection-x.json") {
		t.Error("HasArtifact true before put")
	}

	want := []byte(`{"k":3}`)
	if err := st.PutArtifact(key, "selection-x.json", want); err != nil {
		t.Fatal(err)
	}
	got, err := st.GetArtifact(key, "selection-x.json")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("artifact round-trip: got %q want %q", got, want)
	}

	if err := st.PutArtifact(key, "estimate-y.json", []byte("{}")); err != nil {
		t.Fatal(err)
	}
	names, err := st.Artifacts(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "estimate-y.json" || names[1] != "selection-x.json" {
		t.Errorf("Artifacts() = %v", names)
	}

	// Invalidation: removing one artifact leaves the other, and removing
	// a missing artifact is a no-op.
	if err := st.RemoveArtifact(key, "estimate-y.json"); err != nil {
		t.Fatal(err)
	}
	if st.HasArtifact(key, "estimate-y.json") || !st.HasArtifact(key, "selection-x.json") {
		t.Error("RemoveArtifact removed the wrong artifact")
	}
	if err := st.RemoveArtifact(key, "estimate-y.json"); err != nil {
		t.Errorf("removing a missing artifact: %v", err)
	}

	// Removing the trace removes its artifacts too.
	if err := st.RemoveTrace(key); err != nil {
		t.Fatal(err)
	}
	if st.HasTrace(key) || st.HasArtifact(key, "selection-x.json") {
		t.Error("RemoveTrace left trace or artifacts behind")
	}
}

func TestMalformedKeysAndNames(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"", "abc", "../../etc/passwd", strings.Repeat("Z", KeyLen)} {
		if st.HasTrace(k) {
			t.Errorf("HasTrace(%q) = true", k)
		}
		if _, err := st.TracePath(k); err == nil {
			t.Errorf("TracePath(%q) succeeded", k)
		}
	}
	key := strings.Repeat("a", KeyLen)
	for _, name := range []string{"", ".hidden", "../escape", "a/b", "a b"} {
		if err := st.PutArtifact(key, name, nil); err == nil {
			t.Errorf("PutArtifact(%q) succeeded", name)
		}
		if _, err := st.GetArtifact(key, name); err == nil {
			t.Errorf("GetArtifact(%q) succeeded", name)
		}
	}
}

// TestConcurrentPuts races identical and distinct writers; every put must
// land complete (atomic rename), with identical content stored once.
func TestConcurrentPuts(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := recordBytes(t)
	var wg sync.WaitGroup
	keys := make([]string, 8)
	for i := range keys {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k, _, err := st.PutTrace(bytes.NewReader(data))
			if err != nil {
				t.Error(err)
				return
			}
			keys[i] = k
		}(i)
	}
	wg.Wait()
	for _, k := range keys[1:] {
		if k != keys[0] {
			t.Fatalf("diverging keys: %v", keys)
		}
	}
	all, err := st.Traces()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 {
		t.Errorf("stored %d traces, want 1", len(all))
	}

	var awg sync.WaitGroup
	for i := 0; i < 8; i++ {
		awg.Add(1)
		go func() {
			defer awg.Done()
			if err := st.PutArtifact(keys[0], "sel.json", []byte(`{"v":1}`)); err != nil {
				t.Error(err)
			}
		}()
	}
	awg.Wait()
	got, err := st.GetArtifact(keys[0], "sel.json")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `{"v":1}` {
		t.Errorf("artifact torn: %q", got)
	}
}

func TestCampaignManifests(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Empty store: no campaigns, lookups miss with ErrNotFound.
	if names, err := st.Campaigns(); err != nil || len(names) != 0 {
		t.Fatalf("Campaigns() on empty store = %v, %v", names, err)
	}
	if _, err := st.GetCampaign("sweep-abc.json"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("GetCampaign miss = %v, want ErrNotFound", err)
	}
	// Put / get / overwrite round-trips.
	if err := st.PutCampaign("sweep-abc.json", []byte(`{"cells":{}}`)); err != nil {
		t.Fatal(err)
	}
	if err := st.PutCampaign("sweep-abc.json", []byte(`{"cells":{"a":{}}}`)); err != nil {
		t.Fatal(err)
	}
	b, err := st.GetCampaign("sweep-abc.json")
	if err != nil || string(b) != `{"cells":{"a":{}}}` {
		t.Fatalf("GetCampaign = %q, %v", b, err)
	}
	if err := st.PutCampaign("other.json", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	names, err := st.Campaigns()
	if err != nil || strings.Join(names, " ") != "other.json sweep-abc.json" {
		t.Fatalf("Campaigns() = %v, %v", names, err)
	}
	// Malformed names (path escapes) are rejected both ways.
	for _, bad := range []string{"", "../evil", "a/b", ".hidden"} {
		if err := st.PutCampaign(bad, []byte("x")); err == nil {
			t.Errorf("PutCampaign(%q) accepted", bad)
		}
		if _, err := st.GetCampaign(bad); err == nil {
			t.Errorf("GetCampaign(%q) accepted", bad)
		}
	}
}
