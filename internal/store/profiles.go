package store

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
)

// Per-region profile cache.
//
// Profiles live at <root>/profiles/<digest>.<codec>: digest is the
// region's content digest (tracefile.File.RegionDigest — a hash of the
// region's encoded chunk payloads, independent of which trace file carries
// them) and codec is the blob's encoding version (signature.CodecVersion).
// The profile itself (per-thread BBV + LDV + instruction counts) is
// signature-variant-independent, so this one entry serves every signature
// kind, LDV weighting, thread aggregation, and every clustering K or
// scale: any analysis of any trace containing the region reuses it and
// pays only clustering.

var codecRe = regexp.MustCompile(`^[a-z0-9]{1,16}$`)

func (s *Store) checkProfile(digest, codec string) error {
	if !keyRe.MatchString(digest) {
		return fmt.Errorf("store: malformed region digest %q", digest)
	}
	if !codecRe.MatchString(codec) {
		return fmt.Errorf("store: malformed profile codec %q", codec)
	}
	return nil
}

func (s *Store) profilePath(digest, codec string) string {
	return filepath.Join(s.root, "profiles", digest+"."+codec)
}

// PutProfile stores a region profile under (digest, codec). Profiles are
// content-addressed, so if the entry already exists the write is skipped
// and existed is true — concurrent ingests of overlapping traces simply
// race to be first, and the entry is published exclusively (hard link, not
// rename) so exactly one of the racers observes existed=false. Callers
// therefore get an accurate "this call created the entry" signal, which
// ingest failure cleanup relies on to remove only its own creations. The
// write is durable (fsync around the publish), like every other store
// write.
func (s *Store) PutProfile(digest, codec string, data []byte) (existed bool, err error) {
	if err := s.checkProfile(digest, codec); err != nil {
		return false, err
	}
	if _, err := os.Stat(s.profilePath(digest, codec)); err == nil {
		return true, nil
	}
	return writeDurableExcl(filepath.Join(s.root, "profiles"), digest+"."+codec, data)
}

// GetProfile returns the profile stored under (digest, codec), or an error
// wrapping ErrNotFound. Callers treat any subsequent decode failure as a
// miss and recompute; the store does not interpret the blob.
func (s *Store) GetProfile(digest, codec string) ([]byte, error) {
	if err := s.checkProfile(digest, codec); err != nil {
		return nil, err
	}
	b, err := os.ReadFile(s.profilePath(digest, codec))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("store: profile %s.%s: %w", digest, codec, ErrNotFound)
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return b, nil
}

// HasProfile reports whether a profile is stored under (digest, codec).
func (s *Store) HasProfile(digest, codec string) bool {
	if s.checkProfile(digest, codec) != nil {
		return false
	}
	_, err := os.Stat(s.profilePath(digest, codec))
	return err == nil
}

// RemoveProfile deletes one cached profile. Removing a profile that does
// not exist is not an error.
func (s *Store) RemoveProfile(digest, codec string) error {
	if err := s.checkProfile(digest, codec); err != nil {
		return err
	}
	if err := os.Remove(s.profilePath(digest, codec)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Profiles lists the stored (digest, codec) pairs as "digest.codec" names,
// sorted. An empty cache yields an empty list, not an error.
func (s *Store) Profiles() ([]string, error) {
	ents, err := os.ReadDir(filepath.Join(s.root, "profiles"))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if len(name) > KeyLen+1 && name[KeyLen] == '.' && keyRe.MatchString(name[:KeyLen]) && codecRe.MatchString(name[KeyLen+1:]) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}
