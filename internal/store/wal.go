package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"barrierpoint/internal/fault"
)

// This file is the store's write-ahead-log layer: an append-only record
// file with per-record framing and checksums, used by internal/farm to
// make the work queue's control-plane state durable. It follows the same
// discipline as every other store write — atomic visibility — but where
// PutArtifact and PutCampaign rewrite whole values via temp-file+rename,
// a WAL appends incrementally and fsyncs each record, so a crash at any
// byte offset leaves a valid prefix of records followed by at most one
// torn frame, which open-time validation truncates away.
//
// # Frame format
//
// Each record is framed as
//
//	4 bytes  little-endian uint32   payload length n
//	4 bytes  little-endian uint32   CRC-32C (Castagnoli) of the payload
//	n bytes  payload
//
// Replay reads frames until the first frame that is truncated, oversized
// or fails its checksum; everything after that point is discarded. The
// payload encoding is the caller's business (internal/farm uses JSON).

// walMaxRecord bounds a single record's payload. Real queue records are a
// few hundred bytes; the cap keeps a corrupted length field from forcing
// a pathological allocation during replay.
const walMaxRecord = 16 << 20

// walCRC is the Castagnoli table used for record checksums.
var walCRC = crc32.MakeTable(crc32.Castagnoli)

// ErrWALBroken reports that a WAL hit an append error it could not roll
// back from (the file may end in a torn frame); the log must be reopened
// (revalidating the tail) before further appends.
var ErrWALBroken = errors.New("store: wal broken by failed append")

// walFrame encodes one record into its wire frame.
func walFrame(payload []byte) []byte {
	f := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(f[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(f[4:8], crc32.Checksum(payload, walCRC))
	copy(f[8:], payload)
	return f
}

// ReplayFrames reads WAL frames from r, calling fn for each intact record
// in order. It returns the byte length of the valid prefix and the number
// of records delivered. Reading stops — without error — at the first
// truncated, oversized or checksum-failing frame: a torn tail is the
// expected crash artifact, not corruption worth failing over. An error
// from fn (or from r itself) aborts the replay and is returned.
func ReplayFrames(r io.Reader, fn func(rec []byte) error) (validLen int64, n int, err error) {
	br := &countReader{r: r}
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return validLen, n, nil // clean EOF or torn header: stop at the valid prefix
		}
		size := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if size > walMaxRecord {
			return validLen, n, nil
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(br, payload); err != nil {
			return validLen, n, nil // torn payload
		}
		if crc32.Checksum(payload, walCRC) != sum {
			return validLen, n, nil
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return validLen, n, err
			}
		}
		validLen = br.n
		n++
	}
}

// countReader tracks how many bytes have been consumed from r.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// ReplayWAL replays the log file at path; a missing file is an empty log.
func ReplayWAL(path string, fn func(rec []byte) error) (validLen int64, n int, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	return ReplayFrames(f, fn)
}

// WALHooks intercepts a WAL's write path; it exists purely as a seam for
// fault-injection tests (short writes, append errors, crash points
// between a frame hitting the file and the caller applying it). Nil
// fields mean default behavior.
type WALHooks struct {
	// WriteFrame, if set, replaces the frame write+sync. Returning an
	// error (after optionally writing part of the frame to f) simulates a
	// failed or torn append; the WAL then tries to truncate the partial
	// frame away, exactly as it would after a real short write.
	WriteFrame func(f *os.File, frame []byte) error
}

// WAL is an append-only, checksummed, fsync-per-record log. Appends are
// not internally locked — callers (the farm queue) serialize them under
// their own mutex, which also keeps the log ordered identically to the
// in-memory state transitions it journals.
type WAL struct {
	path   string
	f      *os.File
	size   int64 // bytes of intact frames on disk
	hooks  *WALHooks
	broken bool
	// observer, when set, receives the wall-clock duration of each durable
	// operation: op "append" per Append, "rewrite" per Rewrite (compaction).
	// Telemetry only; it runs after the operation's outcome is decided.
	observer func(op string, d time.Duration)
}

// SetObserver installs a per-operation timing observer (nil to remove).
// Call it before the WAL is shared across goroutines; observers must be
// safe for concurrent use if appends are.
func (w *WAL) SetObserver(fn func(op string, d time.Duration)) { w.observer = fn }

func (w *WAL) observe(op string, t0 time.Time) {
	if w.observer != nil {
		w.observer(op, time.Since(t0))
	}
}

// OpenWAL opens (creating if needed) the log at path for appending. Any
// torn frame left by a crash is truncated away first, so appends always
// start at a record boundary. The parent directory is created if missing.
func OpenWAL(path string) (*WAL, error) { return OpenWALHooked(path, nil) }

// OpenWALHooked is OpenWAL with fault-injection hooks (tests only).
func OpenWALHooked(path string, hooks *WALHooks) (*WAL, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	valid, _, err := ReplayWAL(path, nil)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > valid {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: truncating torn wal tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	return &WAL{path: path, f: f, size: valid, hooks: hooks}, nil
}

// Path returns the log's file path.
func (w *WAL) Path() string { return w.path }

// Size returns the on-disk byte length of intact frames.
func (w *WAL) Size() int64 { return w.size }

// Append durably adds one record: the frame is written and fsynced before
// Append returns, so an acknowledged record survives an immediate crash.
// If the write fails partway, Append rolls the file back to the last
// intact frame; if even that fails the WAL is marked broken and every
// later append returns ErrWALBroken.
func (w *WAL) Append(payload []byte) error {
	if w.broken {
		return ErrWALBroken
	}
	// Fault seam: an injected failure surfaces before any bytes land, so
	// the log stays intact (mirrors a full disk rejecting the write).
	if err := fault.Inject("store.wal.append"); err != nil {
		return err
	}
	defer w.observe("append", time.Now())
	frame := walFrame(payload)
	err := w.writeFrame(frame)
	if err == nil {
		w.size += int64(len(frame))
		return nil
	}
	// Roll back whatever partial frame landed so the next append does not
	// bury later records behind garbage the replay would stop at.
	if terr := w.f.Truncate(w.size); terr != nil {
		w.broken = true
		return fmt.Errorf("store: wal append failed (%v) and rollback failed: %w", err, ErrWALBroken)
	}
	if _, serr := w.f.Seek(w.size, io.SeekStart); serr != nil {
		w.broken = true
		return fmt.Errorf("store: wal append failed (%v) and reseek failed: %w", err, ErrWALBroken)
	}
	return fmt.Errorf("store: wal append: %w", err)
}

func (w *WAL) writeFrame(frame []byte) error {
	if w.hooks != nil && w.hooks.WriteFrame != nil {
		return w.hooks.WriteFrame(w.f, frame)
	}
	if _, err := w.f.Write(frame); err != nil {
		return err
	}
	return w.f.Sync()
}

// Rewrite atomically replaces the log's contents with the given records:
// they are framed into a temp file in the same directory, fsynced, and
// renamed over the log (the store-wide atomic-rewrite pattern), then the
// WAL continues appending to the new file. This is the compaction
// primitive — a crash at any point leaves either the old log or the new
// one, never a mix.
func (w *WAL) Rewrite(payloads [][]byte) error {
	defer w.observe("rewrite", time.Now())
	dir := filepath.Dir(w.path)
	tmp, err := os.CreateTemp(dir, ".wal-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var size int64
	for _, p := range payloads {
		frame := walFrame(p)
		if _, err := tmp.Write(frame); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("store: writing wal: %w", err)
		}
		size += int64(len(frame))
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), w.path); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	serr := syncDir(dir)
	// The rename happened, so the new file is the log either way: swap the
	// handles first, then report a directory-fsync failure. The records are
	// intact and synced in the new file (appends may continue), but the
	// rename itself is not yet known durable — a crash could resurface the
	// pre-compaction log — so the caller must not treat the compaction as
	// committed. Same "report rather than pretend durability" contract as
	// TraceWriter.Commit and writeDurable.
	old := w.f
	w.f = tmp
	w.size = size
	w.broken = false
	old.Close()
	if _, err := w.f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if serr != nil {
		return fmt.Errorf("store: syncing wal dir: %w", serr)
	}
	return nil
}

// Close releases the file handle. The log itself stays on disk — that is
// the point — and can be reopened with OpenWAL.
func (w *WAL) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
