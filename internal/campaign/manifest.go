package campaign

import (
	"encoding/json"
	"errors"
	"fmt"

	"barrierpoint/internal/store"
)

// CellResult holds one completed cell's metrics. Everything here is a
// pure function of store contents and cell coordinates — no timings, no
// execution metadata — so resumed and farmed campaigns reproduce the same
// results byte for byte.
type CellResult struct {
	// TraceKey is the content key of the trace the cell was computed
	// from (empty for in-memory runners with no store).
	TraceKey string `json:"trace_key,omitempty"`

	EstTimeNs float64 `json:"est_time_ns"`
	ActTimeNs float64 `json:"act_time_ns"`
	EstAPKI   float64 `json:"est_apki"`
	ActAPKI   float64 `json:"act_apki"`

	// RunErrPct is the absolute runtime prediction error in percent
	// (paper Figs. 4/7); APKIDelta the absolute DRAM APKI difference.
	RunErrPct float64 `json:"run_err_pct"`
	APKIDelta float64 `json:"apki_delta"`

	// SerialSpeedup and ParallelSpeedup are the paper's Fig. 9
	// instruction-count reductions for this cell's selection.
	SerialSpeedup   float64 `json:"serial_speedup"`
	ParallelSpeedup float64 `json:"parallel_speedup"`

	// CIHalfNs and CIRel are the runtime estimate's confidence half-width
	// (absolute nanoseconds and relative to the estimate); PointsSimulated
	// and AdaptiveRounds account the adaptive sampler's effort, and
	// TargetMet reports whether the spec's target_ci was reached. All zero
	// for cells recorded by versions that predate confidence intervals.
	CIHalfNs        float64 `json:"ci_half_ns,omitempty"`
	CIRel           float64 `json:"ci_rel,omitempty"`
	PointsSimulated int     `json:"points_simulated,omitempty"`
	AdaptiveRounds  int     `json:"adaptive_rounds,omitempty"`
	TargetMet       bool    `json:"target_met,omitempty"`
}

// CellOutcome pairs a cell with its result.
type CellOutcome struct {
	Cell   Cell       `json:"cell"`
	Result CellResult `json:"result"`
}

// Manifest is a campaign's durable progress record; see the package
// documentation for the format and resume semantics.
type Manifest struct {
	Spec Spec   `json:"spec"`
	Hash string `json:"hash"`
	// Traces maps "<workload>/<threads>" to the content key of the trace
	// recorded for that grid row, so a resumed campaign re-records
	// nothing that is already in the store.
	Traces map[string]string `json:"traces,omitempty"`
	// Cells maps Cell.ID to the completed result.
	Cells map[string]CellResult `json:"cells"`
}

// NewManifest returns an empty manifest for the spec.
func NewManifest(spec Spec) *Manifest {
	return &Manifest{
		Spec:   spec,
		Hash:   spec.Hash(),
		Traces: map[string]string{},
		Cells:  map[string]CellResult{},
	}
}

// LoadManifest reads the spec's manifest from the store, returning a
// fresh empty manifest when none has been written yet.
func LoadManifest(st *store.Store, spec Spec) (*Manifest, error) {
	b, err := st.GetCampaign(spec.ManifestName())
	if errors.Is(err, store.ErrNotFound) {
		return NewManifest(spec), nil
	}
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("campaign: manifest %s is corrupt: %w", spec.ManifestName(), err)
	}
	// The hash is embedded in the filename, so a mismatch means the file
	// was tampered with or written by incompatible code — refuse to
	// resume from it rather than silently recomputing or, worse, reusing
	// cells from a different grid.
	if m.Hash != spec.Hash() {
		return nil, fmt.Errorf("campaign: manifest %s has hash %s, spec has %s — delete it to start over",
			spec.ManifestName(), m.Hash, spec.Hash())
	}
	if m.Traces == nil {
		m.Traces = map[string]string{}
	}
	if m.Cells == nil {
		m.Cells = map[string]CellResult{}
	}
	return &m, nil
}

// Save atomically writes the manifest to the store (temp file + rename,
// like every other store write), so a campaign killed mid-save leaves
// either the previous manifest or the new one, never a torn file.
func (m *Manifest) Save(st *store.Store) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("campaign: marshaling manifest: %w", err)
	}
	return st.PutCampaign(m.Spec.ManifestName(), b)
}
