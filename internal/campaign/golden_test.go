package campaign

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// golden compares got against testdata/<name>.golden, rewriting the file
// when the test runs with -update (the internal/report convention).
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run `go test ./internal/campaign -update` to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output does not match %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// fixtureOutcome builds a deterministic 4-cell campaign with hand-written
// metrics, exercising every matrix column plus the aggregate row.
func fixtureOutcome() *Outcome {
	spec := Spec{
		Name:      "fixture",
		Workloads: []string{"npb-ft", "npb-is"},
		Threads:   []int{8, 32},
		Warmups:   []string{"cold"},
		Scale:     0.25,
	}
	spec.ApplyDefaults()
	out := &Outcome{Spec: spec}
	for i, c := range spec.Expand() {
		f := float64(i + 1)
		res := CellResult{
			TraceKey:        fmt.Sprintf("%064d", i),
			EstTimeNs:       1.204e6 * f,
			ActTimeNs:       1.25e6 * f,
			EstAPKI:         0.50 * f,
			ActAPKI:         0.45 * f,
			RunErrPct:       1.55 * f,
			APKIDelta:       0.05 * f,
			SerialSpeedup:   10.4 * f,
			ParallelSpeedup: 41.5 * f,
		}
		// The first cell stays CI-less (a pre-interval manifest entry);
		// the rest carry error bars, covering both rendering branches.
		if i > 0 {
			res.CIHalfNs = 2.5e4 * f
			res.CIRel = res.CIHalfNs / res.EstTimeNs
			res.PointsSimulated = 10 + i
			res.AdaptiveRounds = i
			res.TargetMet = true
		}
		out.Cells = append(out.Cells, CellOutcome{c, res})
	}
	return out
}

func render(t *testing.T, o *Outcome, format string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := RenderMatrix(&buf, o.Matrix(), format); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestGoldenMatrixText(t *testing.T) {
	golden(t, "matrix_text", render(t, fixtureOutcome(), "text"))
}

func TestGoldenMatrixMarkdown(t *testing.T) {
	golden(t, "matrix_markdown", render(t, fixtureOutcome(), "markdown"))
}

func TestGoldenMatrixJSON(t *testing.T) {
	golden(t, "matrix_json", render(t, fixtureOutcome(), "json"))
}

func TestGoldenMatrixEmpty(t *testing.T) {
	spec := fixtureOutcome().Spec
	golden(t, "matrix_empty_json", render(t, &Outcome{Spec: spec}, "json"))
}

func TestRenderMatrixUnknownFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderMatrix(&buf, fixtureOutcome().Matrix(), "yaml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}
