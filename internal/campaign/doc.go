// Package campaign turns the paper's evaluation sweep into a first-class,
// resumable operation: a declarative Spec (workloads × thread counts ×
// machine configs × signature variants × warmup modes, at one workload
// scale) expands into a grid of cells, each cell runs through the analysis
// service (internal/service) as an estimate plus a ground-truth simulate
// job, and the completed grid aggregates into an accuracy/speedup matrix
// rendered by internal/report. Reproducing the paper's Figures 4 and 7 is
// the degenerate case: one signature, one warmup mode, the paper's
// benchmark suite at 8 and 32 threads (see internal/experiments).
//
// # Spec
//
// A spec is JSON (unknown fields are rejected, so typos fail loudly):
//
//	{
//	  "name": "fig4-mini",
//	  "workloads": ["npb-is", "npb-ft"],
//	  "threads": [8, 32],
//	  "sockets": [0],
//	  "signatures": ["combine"],
//	  "warmups": ["cold", "mru+prev"],
//	  "scale": 0.25,
//	  "target_ci": 0.02,
//	  "exec": "auto"
//	}
//
// Sockets size the Table I machine; 0 (the default) derives the socket
// count from the thread count. Signatures use the service vocabulary
// ("bbv", "reuse_dist", "combine"), warmups likewise ("cold", "mru",
// "mru+prev") plus "perfect", which only in-memory runners (the
// experiments harness) accept. A positive target_ci makes every estimate
// adaptive — extra regions are promoted to detailed simulation until the
// runtime estimate's relative confidence interval reaches the target (see
// internal/adaptive) — and joins the identity hash, since it changes cell
// results. Exec selects how each cell's barrierpoint simulations run —
// "local", "farm" or "auto" — and, by design, never affects cell results,
// only where the work happens.
//
// # Manifest and resume semantics
//
// A campaign records progress in a manifest stored in the same
// content-addressed store as the traces and artifacts it depends on, under
//
//	<store>/campaigns/<name>-<hash>.json
//
// where <hash> is store.HashJSON of the spec's identity — everything that
// determines cell results (workloads, threads, sockets, signatures,
// warmups, scale, target_ci) and nothing that does not (name, exec). A local
// campaign and a farmed one therefore share a manifest, and editing any
// result-affecting spec field lands on a fresh manifest instead of
// silently reusing stale cells.
//
// The manifest holds the spec, the identity hash, the content keys of the
// traces recorded so far (one per workload × thread count), and one entry
// per completed cell:
//
//	{
//	  "spec": { ... },
//	  "hash": "2c8be23a71d4",
//	  "traces": { "npb-is/8": "3fe0…" },
//	  "cells": { "npb-is-8t-s0-combine-cold": { "trace_key": "3fe0…",
//	             "est_time_ns": …, "run_err_pct": …, … } }
//	}
//
// The manifest is rewritten (atomically, via the store's temp-file +
// rename convention) after every completed cell. A campaign killed at any
// point — including SIGKILL mid-cell — therefore resumes from its last
// completed cell: on restart, cells present in the manifest are served
// from it without touching the service, traces listed in the manifest are
// not re-recorded, and only the remaining cells run. Cells are keyed by
// their coordinates (Cell.ID), and each records the trace content key it
// was computed from, so the manifest is a pure function of store contents
// plus spec identity.
//
// Two invariants make interrupted and distributed runs trustworthy:
//
//   - A resumed campaign's matrix is byte-identical to an uninterrupted
//     one: cell results come from the manifest verbatim, the matrix
//     contains no timestamps, durations or execution metadata, and cells
//     render in deterministic grid order.
//   - A farmed campaign's matrix is byte-identical to a local one: farm
//     and local execution share the per-point result cache and produce
//     byte-identical estimate artifacts (see internal/farm), and exec mode
//     is excluded from the manifest identity.
//
// Even without a manifest entry, a re-run cell is cheap: every expensive
// stage behind it (selection, per-point simulations, estimate, ground
// truth) is cached in the store by content key and config hash, so the
// service answers from artifacts instead of recomputing. The manifest adds
// skip-the-service resumability and a durable record of the sweep.
package campaign
