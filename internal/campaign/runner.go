package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	bp "barrierpoint"
	"barrierpoint/internal/service"
	"barrierpoint/internal/stats"
	"barrierpoint/internal/workload"
)

// newWorkload constructs a benchmark, turning workload.New's panic on
// unknown names into an error (Validate normally catches this earlier).
func newWorkload(name string, threads int, scale float64) (bp.Program, error) {
	if !workload.Exists(name) {
		return nil, fmt.Errorf("campaign: unknown benchmark %q", name)
	}
	return workload.New(name, threads, workload.WithScale(scale)), nil
}

// CellRunner computes one cell's result. Implementations must be pure in
// the cell's coordinates: the same cell always yields the same result, no
// matter when, where or how often it runs.
type CellRunner interface {
	RunCell(c Cell) (CellResult, error)
}

// ServiceRunner dispatches cells through a service.Manager over its
// content-addressed store. Traces are recorded into the store once per
// workload × thread count; each cell then becomes one estimate job (with
// the spec's exec mode: local pool, farm queue, or auto) plus one
// ground-truth simulate job. Every expensive stage lands in the store's
// artifact cache, so re-running a cell — after a crash, or from a sibling
// campaign sharing the store — is answered from artifacts, not recomputed.
type ServiceRunner struct {
	M *service.Manager
	// Exec is forwarded to estimate requests: "", "auto", "local" or
	// "farm". It changes where work runs, never what it produces.
	Exec string
	// TargetCI is forwarded to estimate requests (see Spec.TargetCI);
	// callers must set it from the spec that hashed the manifest, since a
	// different target produces different cell results.
	TargetCI float64
	// Log, when non-nil, receives one line per finished service job with
	// the job's ID, telemetry trace ID and wall clock — the handle for
	// correlating a campaign cell with coordinator spans (/v1/jobs/{id},
	// bptool trace) and worker-side farm-task spans. Telemetry only: cell
	// results and the manifest never carry trace IDs.
	Log io.Writer

	mu     sync.Mutex
	traces map[string]string // "<workload>/<threads>" → trace content key
}

// Seed primes the runner's trace-key cache from a manifest, skipping keys
// the store no longer holds, so a resumed campaign re-records nothing
// that survived the interruption.
func (r *ServiceRunner) Seed(traces map[string]string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.traces == nil {
		r.traces = make(map[string]string)
	}
	for k, key := range traces {
		if r.M.Store().HasTrace(key) {
			r.traces[k] = key
		}
	}
}

// Traces returns a copy of the trace keys recorded so far, for persisting
// into a manifest.
func (r *ServiceRunner) Traces() map[string]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]string, len(r.traces))
	for k, v := range r.traces {
		out[k] = v
	}
	return out
}

// ensureTrace records the cell's workload into the store (once per
// workload × thread count — workload generation is deterministic, so the
// content key is stable) and returns its content key. The recording goes
// through the manager's streaming ingest, so per-region profiles are
// computed and cached while the trace is still being generated: the
// estimate jobs that follow start with a warm profile cache.
func (r *ServiceRunner) ensureTrace(c Cell) (string, error) {
	id := fmt.Sprintf("%s/%d", c.Workload, c.Threads)
	r.mu.Lock()
	if r.traces == nil {
		r.traces = make(map[string]string)
	}
	if key, ok := r.traces[id]; ok {
		r.mu.Unlock()
		return key, nil
	}
	r.mu.Unlock()

	prog, err := newWorkload(c.Workload, c.Threads, c.Scale)
	if err != nil {
		return "", err
	}
	// Stream the recording straight into the store; byte-identical
	// content already filed (a previous run, a sibling campaign) is
	// discarded at commit, and its cached region profiles are reused.
	pr, pw := io.Pipe()
	go func() { pw.CloseWithError(bp.RecordTrace(pw, prog)) }()
	res, err := r.M.IngestTrace(pr)
	if err != nil {
		// Unblock the recorder if ingest bailed before draining the
		// pipe (e.g. a failed temp-file write), or it leaks.
		pr.CloseWithError(err)
		return "", fmt.Errorf("campaign: recording %s: %w", id, err)
	}
	key := res.Key
	r.mu.Lock()
	r.traces[id] = key
	r.mu.Unlock()
	return key, nil
}

// RunCell computes one cell: estimate and ground truth as service jobs,
// accuracy metrics from their results, speedups from the cached
// selection.
func (r *ServiceRunner) RunCell(c Cell) (CellResult, error) {
	if c.Warmup == WarmupPerfect {
		return CellResult{}, fmt.Errorf("campaign: warmup %q needs in-memory full-simulation results; run the cell through the experiments harness instead", c.Warmup)
	}
	key, err := r.ensureTrace(c)
	if err != nil {
		return CellResult{}, err
	}

	// Estimate and ground truth are independent; submit both and let the
	// manager's pool overlap them. The manager dedups against sibling
	// cells sharing a machine config (the simulate job is warmup- and
	// signature-independent).
	est, err := r.runJob(service.Request{
		Kind:      service.KindEstimate,
		Trace:     key,
		Signature: c.Signature,
		MaxK:      c.MaxK,
		Sockets:   c.Sockets,
		Warmup:    c.Warmup,
		Exec:      r.Exec,
		TargetCI:  r.TargetCI,
	})
	if err != nil {
		return CellResult{}, err
	}
	act, err := r.runJob(service.Request{
		Kind:    service.KindSimulate,
		Trace:   key,
		Sockets: c.Sockets,
	})
	if err != nil {
		return CellResult{}, err
	}

	serial, parallel, err := r.speedups(key, c)
	if err != nil {
		return CellResult{}, err
	}
	res := CellResult{
		TraceKey:        key,
		EstTimeNs:       est.TimeNs,
		ActTimeNs:       act.TimeNs,
		EstAPKI:         est.DRAMAPKI,
		ActAPKI:         act.DRAMAPKI,
		RunErrPct:       stats.AbsPctErr(est.TimeNs, act.TimeNs),
		APKIDelta:       math.Abs(est.DRAMAPKI - act.DRAMAPKI),
		SerialSpeedup:   serial,
		ParallelSpeedup: parallel,
	}
	// Artifacts cached by versions without intervals carry no CI block;
	// the cell then simply renders without error bars.
	if est.CI != nil {
		res.CIHalfNs = est.CI.TimeHalfNs
		res.CIRel = est.CI.TimeRel
		res.PointsSimulated = est.CI.PointsSimulated
		res.AdaptiveRounds = est.CI.AdaptiveRounds
		res.TargetMet = est.CI.TargetMet
	}
	return res, nil
}

// runJob submits one request and waits for its terminal state.
func (r *ServiceRunner) runJob(req service.Request) (service.EstimateResult, error) {
	snap, err := r.M.Submit(req)
	if err != nil {
		return service.EstimateResult{}, fmt.Errorf("campaign: submitting %s job: %w", req.Kind, err)
	}
	snap, err = r.M.Wait(context.Background(), snap.ID)
	if err != nil {
		return service.EstimateResult{}, err
	}
	if r.Log != nil {
		dur := snap.Finished.Sub(snap.Started).Round(time.Millisecond)
		fmt.Fprintf(r.Log, "job %s %s trace_id=%s status=%s dur=%v\n",
			snap.ID, req.Kind, snap.TraceID, snap.Status, dur)
	}
	if snap.Status != service.StatusDone {
		return service.EstimateResult{}, fmt.Errorf("campaign: %s job %s failed: %s", req.Kind, snap.ID, snap.Error)
	}
	var res service.EstimateResult
	if err := json.Unmarshal(snap.Result, &res); err != nil {
		return service.EstimateResult{}, fmt.Errorf("campaign: parsing %s result: %w", req.Kind, err)
	}
	return res, nil
}

// speedups reads the selection the estimate job cached and derives the
// cell's Fig. 9 instruction-count reductions from it — no profiling, no
// simulation, just the stored artifact bound to the stored trace.
func (r *ServiceRunner) speedups(key string, c Cell) (serial, parallel float64, err error) {
	cfg, err := service.ConfigFor(c.Signature, c.MaxK)
	if err != nil {
		return 0, 0, err
	}
	selBytes, err := service.CachedSelection(r.M.Store(), key, cfg)
	if err != nil {
		return 0, 0, fmt.Errorf("campaign: reading selection for cell %s: %w", c.ID(), err)
	}
	sel, err := bp.LoadSelection(bytes.NewReader(selBytes))
	if err != nil {
		return 0, 0, err
	}
	f, err := r.M.Store().OpenTrace(key)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	a, err := sel.Bind(f)
	if err != nil {
		return 0, 0, err
	}
	return a.SerialSpeedup(), a.ParallelSpeedup(), nil
}
