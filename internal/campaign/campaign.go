package campaign

import (
	"fmt"
	"io"

	"barrierpoint/internal/store"
)

// Runner executes a campaign resumably over a store: cells already in the
// spec's manifest are served from it without recomputation, each newly
// computed cell is appended to the manifest atomically, and the walk
// follows Spec.Expand order so every run of the same spec renders the
// same matrix.
type Runner struct {
	Store *store.Store
	Cells CellRunner
	// Log receives per-cell progress lines (nil discards them). Progress
	// goes here, never into the matrix, so interrupted, resumed, local
	// and farmed runs stay byte-comparable on their primary output.
	Log io.Writer
	// MaxCells, when > 0, stops the run after that many newly computed
	// cells, leaving the manifest primed for a later resume. Used by
	// chunked runs and by tests that simulate a mid-campaign kill.
	MaxCells int
}

// Outcome is a finished (or deliberately interrupted) campaign run.
type Outcome struct {
	Spec Spec
	// Cells holds the completed cells in grid order.
	Cells []CellOutcome
	// Resumed counts cells served from the manifest; Computed counts
	// cells run this invocation.
	Resumed  int
	Computed int
	// Incomplete reports that MaxCells stopped the run with grid cells
	// still missing.
	Incomplete bool
}

// Run expands the spec and brings its manifest to completion. On error
// the manifest keeps every cell completed so far, so the campaign resumes
// from there — exactly as it would after a kill.
func (r *Runner) Run(spec Spec) (*Outcome, error) {
	spec.ApplyDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	man, err := LoadManifest(r.Store, spec)
	if err != nil {
		return nil, err
	}
	if s, ok := r.Cells.(interface{ Seed(map[string]string) }); ok {
		s.Seed(man.Traces)
	}
	cells := spec.Expand()
	out := &Outcome{Spec: spec}
	for i, c := range cells {
		id := c.ID()
		if res, ok := man.Cells[id]; ok {
			out.Cells = append(out.Cells, CellOutcome{c, res})
			out.Resumed++
			r.logf("[%d/%d] %s: resumed from manifest", i+1, len(cells), id)
			continue
		}
		if r.MaxCells > 0 && out.Computed >= r.MaxCells {
			out.Incomplete = true
			r.logf("stopping after %d computed cells (%d of %d done); rerun to resume", out.Computed, len(out.Cells), len(cells))
			break
		}
		res, err := r.Cells.RunCell(c)
		if err != nil {
			return nil, fmt.Errorf("campaign: cell %s: %w", id, err)
		}
		man.Cells[id] = res
		if tr, ok := r.Cells.(interface{ Traces() map[string]string }); ok {
			man.Traces = tr.Traces()
		}
		if err := man.Save(r.Store); err != nil {
			return nil, err
		}
		out.Cells = append(out.Cells, CellOutcome{c, res})
		out.Computed++
		r.logf("[%d/%d] %s: runtime err %.2f%%, APKI diff %.3f, serial speedup %.1fx",
			i+1, len(cells), id, res.RunErrPct, res.APKIDelta, res.SerialSpeedup)
	}
	return out, nil
}

func (r *Runner) logf(format string, args ...any) {
	if r.Log != nil {
		fmt.Fprintf(r.Log, format+"\n", args...)
	}
}

// RunGrid expands and runs a spec synchronously with no store and no
// manifest: the in-process core used by the experiments harness (the
// paper's Fig. 4/7 rows are campaign grids over the harness runner) and
// by tests.
func RunGrid(spec Spec, runner CellRunner) ([]CellOutcome, error) {
	spec.ApplyDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cells := spec.Expand()
	out := make([]CellOutcome, 0, len(cells))
	for _, c := range cells {
		res, err := runner.RunCell(c)
		if err != nil {
			return nil, fmt.Errorf("campaign: cell %s: %w", c.ID(), err)
		}
		out = append(out, CellOutcome{c, res})
	}
	return out, nil
}
