package campaign

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"barrierpoint/internal/farm"
	"barrierpoint/internal/service"
	"barrierpoint/internal/store"
)

// testSpec is a small 2-cell campaign (one workload, two warmup modes)
// that still exercises trace recording, both job kinds and the manifest.
func testSpec(name string) Spec {
	return Spec{
		Name:      name,
		Workloads: []string{"npb-is"},
		Threads:   []int{8},
		Warmups:   []string{"cold", "mru"},
		Scale:     0.05,
	}
}

func newStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func newManager(t *testing.T, st *store.Store) *service.Manager {
	t.Helper()
	m := service.New(st, 2, 0)
	t.Cleanup(func() { m.Shutdown(context.Background()) })
	return m
}

// renderAll renders the matrix in every format, concatenated, so one
// comparison covers text, markdown and JSON byte-identity at once.
func renderAll(t *testing.T, o *Outcome) string {
	t.Helper()
	var buf bytes.Buffer
	for _, f := range []string{"text", "markdown", "json"} {
		if err := RenderMatrix(&buf, o.Matrix(), f); err != nil {
			t.Fatal(err)
		}
	}
	return buf.String()
}

func TestSpecValidate(t *testing.T) {
	good := testSpec("ok")
	good.ApplyDefaults()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := map[string]func(*Spec){
		"no-workloads":     func(s *Spec) { s.Workloads = nil },
		"unknown-workload": func(s *Spec) { s.Workloads = []string{"spec-gcc"} },
		"no-threads":       func(s *Spec) { s.Threads = nil },
		"bad-threads":      func(s *Spec) { s.Threads = []int{12} },
		"zero-scale":       func(s *Spec) { s.Scale = 0; s.ApplyDefaults(); s.Scale = 0 },
		"negative-scale":   func(s *Spec) { s.Scale = -1 },
		"bad-warmup":       func(s *Spec) { s.Warmups = []string{"lukewarm"} },
		"bad-signature":    func(s *Spec) { s.Signatures = []string{"tlbv"} },
		"bad-exec":         func(s *Spec) { s.Exec = "cluster" },
		"negative-sockets": func(s *Spec) { s.Sockets = []int{-1} },
		"orphan-sockets":   func(s *Spec) { s.Sockets = []int{4} }, // 32 cores, but only 8-thread traces
		"negative-ci":      func(s *Spec) { s.TargetCI = -0.1 },
		"huge-ci":          func(s *Spec) { s.TargetCI = 1.5 },
		"negative-max-k":   func(s *Spec) { s.MaxKs = []int{-3} },
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			s := testSpec("bad")
			s.ApplyDefaults()
			mutate(&s)
			if err := s.Validate(); err == nil {
				t.Fatalf("invalid spec accepted: %+v", s)
			}
		})
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	_, err := Load(strings.NewReader(`{"workloads":["npb-is"],"threads":[8],"wormups":["cold"]}`))
	if err == nil || !strings.Contains(err.Error(), "wormups") {
		t.Fatalf("typo field accepted or unnamed: %v", err)
	}
}

func TestExpandDeterministic(t *testing.T) {
	s := Spec{
		Workloads:  []string{"npb-ft", "npb-is"},
		Threads:    []int{8, 32},
		Signatures: []string{"combine"},
		Warmups:    []string{"cold", "mru+prev"},
		Scale:      0.25,
	}
	s.ApplyDefaults()
	var ids []string
	for _, c := range s.Expand() {
		ids = append(ids, c.ID())
	}
	want := []string{
		"npb-ft-8t-s0-combine-cold", "npb-ft-8t-s0-combine-mru-prev",
		"npb-ft-32t-s0-combine-cold", "npb-ft-32t-s0-combine-mru-prev",
		"npb-is-8t-s0-combine-cold", "npb-is-8t-s0-combine-mru-prev",
		"npb-is-32t-s0-combine-cold", "npb-is-32t-s0-combine-mru-prev",
	}
	if strings.Join(ids, " ") != strings.Join(want, " ") {
		t.Fatalf("expand order:\n got %v\nwant %v", ids, want)
	}
}

func TestSpecHashIgnoresNameAndExec(t *testing.T) {
	a := testSpec("a")
	a.ApplyDefaults()
	b := testSpec("b")
	b.Exec = service.ExecFarm
	b.ApplyDefaults()
	if a.Hash() != b.Hash() {
		t.Fatal("name/exec changed the identity hash — farmed campaigns cannot resume local manifests")
	}
	c := testSpec("a")
	c.Scale = 0.1
	c.ApplyDefaults()
	if a.Hash() == c.Hash() {
		t.Fatal("scale change kept the identity hash — stale cells would be reused")
	}
	d := testSpec("a")
	d.TargetCI = 0.05
	d.ApplyDefaults()
	if a.Hash() == d.Hash() {
		t.Fatal("target_ci change kept the identity hash — adaptive and plain cells would share a manifest")
	}
}

// TestMaxKsAxis pins the compatibility contract of the max_ks sweep
// dimension: specs that don't use it hash and expand exactly as before
// the field existed (old manifests resume, old cell IDs match), while a
// sweep multiplies the grid and marks only the override cells.
func TestMaxKsAxis(t *testing.T) {
	a := testSpec("a")
	a.ApplyDefaults()
	// An empty (vs nil) slice must not move the hash either — both mean
	// "no sweep" and must resume pre-field manifests.
	b := testSpec("a")
	b.MaxKs = []int{}
	b.ApplyDefaults()
	if a.Hash() != b.Hash() {
		t.Fatal("empty max_ks changed the identity hash — old manifests would not resume")
	}
	c := testSpec("a")
	c.MaxKs = []int{7}
	c.ApplyDefaults()
	if a.Hash() == c.Hash() {
		t.Fatal("max_ks change kept the identity hash — stale clusterings would be reused")
	}

	// Without a sweep, cells carry MaxK 0 and their IDs have no -k suffix.
	for _, cell := range a.Expand() {
		if cell.MaxK != 0 || strings.Contains(cell.ID(), "-k") {
			t.Fatalf("default spec produced max-k cell %q", cell.ID())
		}
	}
	// A sweep multiplies the grid; only explicit overrides get the suffix.
	s := testSpec("sweep")
	s.MaxKs = []int{0, 7}
	s.ApplyDefaults()
	cells := s.Expand()
	if len(cells) != 2*len(a.Expand()) {
		t.Fatalf("2-value max_ks sweep produced %d cells, want %d", len(cells), 2*len(a.Expand()))
	}
	var ids []string
	for _, cell := range cells {
		ids = append(ids, cell.ID())
	}
	want := []string{
		"npb-is-8t-s0-combine-cold", "npb-is-8t-s0-combine-mru",
		"npb-is-8t-s0-combine-cold-k7", "npb-is-8t-s0-combine-mru-k7",
	}
	if strings.Join(ids, " ") != strings.Join(want, " ") {
		t.Fatalf("max_ks expand order:\n got %v\nwant %v", ids, want)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	st := newStore(t)
	spec := testSpec("round")
	spec.ApplyDefaults()
	m, err := LoadManifest(st, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Cells) != 0 {
		t.Fatal("fresh manifest has cells")
	}
	m.Cells["some-cell"] = CellResult{RunErrPct: 1.5}
	m.Traces["npb-is/8"] = strings.Repeat("ab", 32)
	if err := m.Save(st); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadManifest(st, spec)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Cells["some-cell"].RunErrPct != 1.5 || m2.Traces["npb-is/8"] == "" {
		t.Fatalf("manifest did not round-trip: %+v", m2)
	}
	// A manifest whose recorded hash mismatches its spec is refused.
	m2.Hash = "000000000000"
	if err := m2.Save(st); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(st, spec); err == nil {
		t.Fatal("hash-mismatched manifest accepted")
	}
}

// countingRunner wraps a CellRunner and counts computations per cell,
// forwarding the trace seeding hooks so manifests keep working.
type countingRunner struct {
	inner *ServiceRunner
	runs  map[string]int
}

func (r *countingRunner) RunCell(c Cell) (CellResult, error) {
	r.runs[c.ID()]++
	return r.inner.RunCell(c)
}
func (r *countingRunner) Seed(tr map[string]string) { r.inner.Seed(tr) }
func (r *countingRunner) Traces() map[string]string { return r.inner.Traces() }

// TestInterruptedCampaignResumesByteIdentical is the subsystem's
// acceptance test: a campaign stopped after its first completed cell (the
// on-disk state a SIGKILL between cells leaves behind) and resumed by a
// fresh process must produce a matrix byte-identical to an uninterrupted
// run, with the finished cell served from the manifest and never
// recomputed.
func TestInterruptedCampaignResumesByteIdentical(t *testing.T) {
	spec := testSpec("resume")

	// Reference: uninterrupted run in its own store.
	stA := newStore(t)
	outA, err := (&Runner{Store: stA, Cells: &ServiceRunner{M: newManager(t, stA)}}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if outA.Resumed != 0 || outA.Computed != 2 || outA.Incomplete {
		t.Fatalf("reference run: %+v", outA)
	}
	ref := renderAll(t, outA)

	// Interrupted run: a second store, stopped after one computed cell.
	stB := newStore(t)
	out1, err := (&Runner{Store: stB, Cells: &ServiceRunner{M: newManager(t, stB)}, MaxCells: 1}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if out1.Computed != 1 || !out1.Incomplete {
		t.Fatalf("interrupted run: %+v", out1)
	}
	doneID := out1.Cells[0].Cell.ID()

	// Resume with a fresh manager and runner — no in-process state
	// survives, exactly like a new process over the same store.
	counting := &countingRunner{inner: &ServiceRunner{M: newManager(t, stB)}, runs: map[string]int{}}
	out2, err := (&Runner{Store: stB, Cells: counting}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Resumed != 1 || out2.Computed != 1 || out2.Incomplete {
		t.Fatalf("resumed run: %+v", out2)
	}
	if n := counting.runs[doneID]; n != 0 {
		t.Fatalf("finished cell %s was recomputed %d times on resume", doneID, n)
	}
	if got := renderAll(t, out2); got != ref {
		t.Fatalf("resumed matrix differs from uninterrupted run:\n--- resumed ---\n%s\n--- reference ---\n%s", got, ref)
	}

	// A third run resumes everything and computes nothing.
	counting2 := &countingRunner{inner: &ServiceRunner{M: newManager(t, stB)}, runs: map[string]int{}}
	out3, err := (&Runner{Store: stB, Cells: counting2}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if out3.Resumed != 2 || out3.Computed != 0 || len(counting2.runs) != 0 {
		t.Fatalf("fully-resumed run recomputed cells: %+v runs=%v", out3, counting2.runs)
	}
	if got := renderAll(t, out3); got != ref {
		t.Fatal("fully-resumed matrix differs from reference")
	}
}

// TestFarmedCampaignMatchesLocal: the same spec run locally and through
// the farm (two in-process workers on the distributed queue) must render
// byte-identical matrices.
func TestFarmedCampaignMatchesLocal(t *testing.T) {
	spec := testSpec("exec")

	stL := newStore(t)
	outL, err := (&Runner{Store: stL, Cells: &ServiceRunner{M: newManager(t, stL), Exec: service.ExecLocal}}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	stF := newStore(t)
	mF := newManager(t, stF)
	q := farm.NewQueue(stF, farm.Config{})
	mF.SetFarm(q)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 2; i++ {
		go farm.RunLocalWorker(ctx, q, stF, "camp-test")
	}
	specF := spec
	specF.Exec = service.ExecFarm
	outF, err := (&Runner{Store: stF, Cells: &ServiceRunner{M: mF, Exec: service.ExecFarm}}).Run(specF)
	if err != nil {
		t.Fatal(err)
	}
	if got := mF.Stats().Farmed; got != 2 {
		t.Fatalf("jobs_farmed = %d, want 2 (one per cell estimate)", got)
	}
	if local, farmed := renderAll(t, outL), renderAll(t, outF); local != farmed {
		t.Fatalf("farmed matrix differs from local:\n--- farmed ---\n%s\n--- local ---\n%s", farmed, local)
	}
}

// TestAdaptiveCampaignCells: a spec with target_ci produces cells carrying
// confidence accounting, and the matrix renders the estimate with an error
// bar. Determinism still holds: two runs over fresh stores render
// byte-identically.
func TestAdaptiveCampaignCells(t *testing.T) {
	spec := testSpec("adaptive")
	spec.Warmups = []string{"mru"}
	spec.TargetCI = 0.2
	spec.ApplyDefaults()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}

	run := func() (*Outcome, string) {
		st := newStore(t)
		out, err := (&Runner{Store: st, Cells: &ServiceRunner{M: newManager(t, st), TargetCI: spec.TargetCI}}).Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		return out, renderAll(t, out)
	}
	out, ref := run()
	for _, co := range out.Cells {
		res := co.Result
		if res.CIRel <= 0 || res.CIHalfNs <= 0 {
			t.Fatalf("cell %s has no confidence interval: %+v", co.Cell.ID(), res)
		}
		if res.PointsSimulated <= 0 {
			t.Fatalf("cell %s reports no simulated points: %+v", co.Cell.ID(), res)
		}
		if res.TargetMet && res.CIRel > spec.TargetCI {
			t.Fatalf("cell %s met the target but rel CI %.4f exceeds %.4f", co.Cell.ID(), res.CIRel, spec.TargetCI)
		}
	}
	if !strings.Contains(ref, "±") {
		t.Fatal("adaptive matrix renders without error bars")
	}
	if _, again := run(); again != ref {
		t.Fatal("adaptive campaign matrices differ across fresh stores")
	}
}

// TestServiceRunnerRejectsPerfectWarmup: "perfect" is harness-only.
func TestServiceRunnerRejectsPerfectWarmup(t *testing.T) {
	st := newStore(t)
	r := &ServiceRunner{M: newManager(t, st)}
	_, err := r.RunCell(Cell{Workload: "npb-is", Threads: 8, Signature: "combine", Warmup: WarmupPerfect, Scale: 0.05})
	if err == nil || !strings.Contains(err.Error(), "perfect") {
		t.Fatalf("perfect warmup accepted by the service runner: %v", err)
	}
}
