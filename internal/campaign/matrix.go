package campaign

import (
	"fmt"
	"io"

	"barrierpoint/internal/report"
	"barrierpoint/internal/stats"
)

// Matrix aggregates completed cells into the campaign's accuracy/speedup
// table: one row per cell in grid order plus an aggregate row (mean
// errors, harmonic-mean speedups, matching the paper's Fig. 9
// convention). The rendering depends only on cell metrics — never on
// timing, exec mode or resume history — so an interrupted-and-resumed or
// farmed campaign renders byte-identically to an uninterrupted local one.
func Matrix(spec Spec, cells []CellOutcome) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Campaign %s: accuracy and speedup over %d cells", spec.Name, len(cells)),
		"workload", "threads", "sockets", "signature", "warmup",
		"runtime err (%)", "APKI diff", "serial speedup", "parallel speedup",
		"est time (ms)", "actual time (ms)")
	var errs, apki, serial, parallel []float64
	for _, co := range cells {
		c, res := co.Cell, co.Result
		t.AddRow(c.Workload,
			fmt.Sprintf("%d", c.Threads),
			fmt.Sprintf("%d", c.EffectiveSockets()),
			c.Signature, c.Warmup,
			fmt.Sprintf("%.2f", res.RunErrPct),
			fmt.Sprintf("%.3f", res.APKIDelta),
			fmt.Sprintf("%.1f", res.SerialSpeedup),
			fmt.Sprintf("%.1f", res.ParallelSpeedup),
			fmt.Sprintf("%.3f", res.EstTimeNs/1e6),
			fmt.Sprintf("%.3f", res.ActTimeNs/1e6))
		errs = append(errs, res.RunErrPct)
		apki = append(apki, res.APKIDelta)
		serial = append(serial, res.SerialSpeedup)
		parallel = append(parallel, res.ParallelSpeedup)
	}
	if len(cells) > 0 {
		t.AddRow("aggregate", "", "", "", "",
			fmt.Sprintf("%.2f", stats.Mean(errs)),
			fmt.Sprintf("%.3f", stats.Mean(apki)),
			fmt.Sprintf("%.1f", stats.HarmonicMean(serial)),
			fmt.Sprintf("%.1f", stats.HarmonicMean(parallel)),
			"", "")
	}
	return t
}

// Matrix renders the outcome's completed cells.
func (o *Outcome) Matrix() *report.Table { return Matrix(o.Spec, o.Cells) }

// RenderMatrix writes a matrix table in the named format: "text" (the
// default), "markdown" or "json".
func RenderMatrix(w io.Writer, t *report.Table, format string) error {
	switch format {
	case "", "text":
		t.Render(w)
	case "markdown":
		_, _ = fmt.Fprint(w, t.Markdown())
	case "json":
		_, _ = fmt.Fprint(w, t.JSON())
	default:
		return fmt.Errorf("campaign: unknown output format %q (want text, markdown or json)", format)
	}
	return nil
}
