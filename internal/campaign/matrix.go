package campaign

import (
	"fmt"
	"io"

	"barrierpoint/internal/report"
	"barrierpoint/internal/stats"
)

// Matrix aggregates completed cells into the campaign's accuracy/speedup
// table: one row per cell in grid order plus an aggregate row (mean
// errors, harmonic-mean speedups, matching the paper's Fig. 9
// convention). The rendering depends only on cell metrics — never on
// timing, exec mode or resume history — so an interrupted-and-resumed or
// farmed campaign renders byte-identically to an uninterrupted local one.
func Matrix(spec Spec, cells []CellOutcome) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Campaign %s: accuracy and speedup over %d cells", spec.Name, len(cells)),
		"workload", "threads", "sockets", "signature", "warmup",
		"runtime err (%)", "APKI diff", "serial speedup", "parallel speedup",
		"est time (ms)", "actual time (ms)", "CI (±%)")
	var errs, apki, serial, parallel []float64
	for _, co := range cells {
		c, res := co.Cell, co.Result
		// Cells recorded before confidence intervals have CIRel == 0 and
		// render with a plain estimate and an empty CI column.
		ci := ""
		if res.CIRel > 0 {
			ci = report.FormatMetric(res.CIRel*100, 2)
		}
		t.AddRow(c.Workload,
			fmt.Sprintf("%d", c.Threads),
			fmt.Sprintf("%d", c.EffectiveSockets()),
			c.Signature, c.Warmup,
			report.FormatMetric(res.RunErrPct, 2),
			report.FormatMetric(res.APKIDelta, 3),
			report.FormatMetric(res.SerialSpeedup, 1),
			report.FormatMetric(res.ParallelSpeedup, 1),
			report.FormatInterval(res.EstTimeNs/1e6, res.CIHalfNs/1e6, 3),
			report.FormatMetric(res.ActTimeNs/1e6, 3),
			ci)
		errs = append(errs, res.RunErrPct)
		apki = append(apki, res.APKIDelta)
		serial = append(serial, res.SerialSpeedup)
		parallel = append(parallel, res.ParallelSpeedup)
	}
	if len(cells) > 0 {
		t.AddRow("aggregate", "", "", "", "",
			report.FormatMetric(stats.Mean(errs), 2),
			report.FormatMetric(stats.Mean(apki), 3),
			report.FormatMetric(stats.HarmonicMean(serial), 1),
			report.FormatMetric(stats.HarmonicMean(parallel), 1),
			"", "", "")
	}
	return t
}

// Matrix renders the outcome's completed cells.
func (o *Outcome) Matrix() *report.Table { return Matrix(o.Spec, o.Cells) }

// RenderMatrix writes a matrix table in the named format: "text" (the
// default), "markdown" or "json".
func RenderMatrix(w io.Writer, t *report.Table, format string) error {
	switch format {
	case "", "text":
		t.Render(w)
	case "markdown":
		_, _ = fmt.Fprint(w, t.Markdown())
	case "json":
		_, _ = fmt.Fprint(w, t.JSON())
	default:
		return fmt.Errorf("campaign: unknown output format %q (want text, markdown or json)", format)
	}
	return nil
}
