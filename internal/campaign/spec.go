package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	bp "barrierpoint"
	"barrierpoint/internal/service"
	"barrierpoint/internal/store"
	"barrierpoint/internal/workload"
)

// WarmupPerfect is the extra warmup label specs may use alongside the
// service vocabulary: estimate from the full simulation's own region
// results (the paper's "perfect warmup" baseline, Fig. 4). Only runners
// with in-memory ground truth accept it; ServiceRunner rejects it.
const WarmupPerfect = "perfect"

// Spec declares a sweep: the cross product of workloads, thread counts,
// machine configs (socket counts), signature variants and warmup modes,
// at one workload scale. See the package documentation for the JSON form
// and field semantics.
type Spec struct {
	Name      string   `json:"name"`
	Workloads []string `json:"workloads"`
	Threads   []int    `json:"threads"`
	// Sockets lists Table I machine sizes; 0 derives the socket count
	// from the thread count (threads/8). Defaults to [0].
	Sockets    []int    `json:"sockets,omitempty"`
	Signatures []string `json:"signatures,omitempty"` // default ["combine"]
	// MaxKs lists maximum-cluster-count overrides to sweep; 0 (the default)
	// is the paper's clustering default. The per-region profiles are keyed
	// by region content, independent of MaxK, so a MaxKs sweep profiles
	// each trace once and pays only k-means per extra value.
	MaxKs   []int    `json:"max_ks,omitempty"`  // default [0]
	Warmups []string `json:"warmups,omitempty"` // default ["mru+prev"]
	Scale   float64  `json:"scale,omitempty"`   // default 1.0
	// TargetCI, when positive, makes every estimate adaptive: the service
	// promotes extra regions to detailed simulation until the runtime
	// estimate's relative confidence interval reaches the target (see
	// internal/adaptive). It changes cell results, so it is part of the
	// identity hash; zero (the default) is the plain one-rep-per-cluster
	// estimate and hashes identically to specs written before the field
	// existed.
	TargetCI float64 `json:"target_ci,omitempty"`
	// Exec selects where cells' barrierpoint simulations run: "auto"
	// (default), "local" or "farm". Exec never affects results, so it is
	// excluded from the spec's identity hash.
	Exec string `json:"exec,omitempty"`
}

// Load parses, defaults and validates a JSON spec. Unknown fields are
// rejected so a typo in a sweep definition fails instead of silently
// shrinking the grid.
func Load(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("campaign: parsing spec: %w", err)
	}
	s.ApplyDefaults()
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// ApplyDefaults fills the optional dimensions with their single-value
// defaults so Expand and Validate see a fully specified grid.
func (s *Spec) ApplyDefaults() {
	if s.Name == "" {
		s.Name = "campaign"
	}
	if len(s.Sockets) == 0 {
		s.Sockets = []int{0}
	}
	if len(s.Signatures) == 0 {
		s.Signatures = []string{"combine"}
	}
	if len(s.Warmups) == 0 {
		s.Warmups = []string{bp.MRUPrevWarmup.String()}
	}
	if s.Scale == 0 {
		s.Scale = 1.0
	}
}

// Validate rejects malformed specs with errors that name the offending
// value: unknown benchmarks, bad thread counts, non-positive scales,
// unknown warmup/signature/exec labels, and socket counts that cannot
// host any of the spec's thread counts.
func (s *Spec) Validate() error {
	if len(s.Workloads) == 0 {
		return fmt.Errorf("campaign: spec %q has no workloads", s.Name)
	}
	for _, w := range s.Workloads {
		if !workload.Exists(w) {
			return fmt.Errorf("campaign: unknown benchmark %q (known: %s)",
				w, strings.Join(workload.Names(), ", "))
		}
	}
	if len(s.Threads) == 0 {
		return fmt.Errorf("campaign: spec %q has no thread counts", s.Name)
	}
	for _, th := range s.Threads {
		if th < 8 || th > 64 || th%8 != 0 {
			return fmt.Errorf("campaign: threads must be a multiple of 8 in [8, 64], got %d", th)
		}
	}
	for _, sk := range s.Sockets {
		if sk < 0 {
			return fmt.Errorf("campaign: sockets must be >= 0 (0 derives from threads), got %d", sk)
		}
		if sk == 0 {
			continue
		}
		// An explicit socket count must host at least one of the spec's
		// thread counts; cells whose threads mismatch are skipped by
		// Expand rather than failing mid-run.
		ok := false
		for _, th := range s.Threads {
			if sk*8 == th {
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("campaign: %d sockets (%d cores) matches none of the thread counts %v", sk, sk*8, s.Threads)
		}
	}
	if !(s.Scale > 0) { // also catches NaN
		return fmt.Errorf("campaign: scale must be > 0, got %v", s.Scale)
	}
	if s.TargetCI < 0 || s.TargetCI >= 1 || s.TargetCI != s.TargetCI {
		return fmt.Errorf("campaign: target_ci must be in [0, 1), got %v", s.TargetCI)
	}
	for _, sig := range s.Signatures {
		if _, err := service.ParseSignature(sig); err != nil {
			return fmt.Errorf("campaign: %w", err)
		}
	}
	for _, k := range s.MaxKs {
		if k < 0 {
			return fmt.Errorf("campaign: max_ks entries must be >= 0 (0 is the default clustering), got %d", k)
		}
	}
	for _, wm := range s.Warmups {
		if wm == WarmupPerfect {
			continue
		}
		if _, err := bp.ParseWarmup(wm); err != nil {
			return fmt.Errorf("campaign: %w (or %q)", err, WarmupPerfect)
		}
	}
	switch s.Exec {
	case "", service.ExecAuto, service.ExecLocal, service.ExecFarm:
	default:
		return fmt.Errorf("campaign: unknown exec mode %q (want auto, local or farm)", s.Exec)
	}
	return nil
}

// identity covers exactly the fields that determine cell results. Name
// (presentation) and Exec (placement) are excluded: a renamed spec hashes
// the same, and a farmed campaign resumes a local one's manifest.
type identity struct {
	Workloads  []string `json:"workloads"`
	Threads    []int    `json:"threads"`
	Sockets    []int    `json:"sockets"`
	Signatures []string `json:"signatures"`
	Warmups    []string `json:"warmups"`
	Scale      float64  `json:"scale"`
	// omitempty keeps zero-target specs on the hash they had before the
	// field existed, so old manifests still resume. Same for MaxKs: a spec
	// without a max_ks sweep hashes as it always did.
	TargetCI float64 `json:"target_ci,omitempty"`
	MaxKs    []int   `json:"max_ks,omitempty"`
}

// Hash returns the spec's identity hash (see store.HashJSON).
func (s Spec) Hash() string {
	return store.HashJSON(identity{s.Workloads, s.Threads, s.Sockets, s.Signatures, s.Warmups, s.Scale, s.TargetCI, s.MaxKs})
}

// ManifestName is the store-side manifest filename of this spec.
func (s Spec) ManifestName() string {
	name := s.Name
	if name == "" {
		name = "campaign"
	}
	return fmt.Sprintf("%s-%s.json", store.SanitizeLabel(name), s.Hash())
}

// Cell is one point of the expanded grid.
type Cell struct {
	Workload  string  `json:"workload"`
	Threads   int     `json:"threads"`
	Sockets   int     `json:"sockets"` // 0 = derived from Threads
	Signature string  `json:"signature"`
	MaxK      int     `json:"max_k,omitempty"` // 0 = default clustering
	Warmup    string  `json:"warmup"`
	Scale     float64 `json:"scale"`
}

// ID is the cell's manifest key: its grid coordinates, in the store's
// artifact-name charset. Scale is spec-wide and already part of the
// manifest's identity hash, so it does not reappear here. The MaxK
// suffix appears only for explicit overrides, so default-clustering cell
// IDs (and the manifests naming them) are unchanged from older versions.
func (c Cell) ID() string {
	id := fmt.Sprintf("%s-%dt-s%d-%s-%s", c.Workload, c.Threads, c.Sockets,
		store.SanitizeLabel(c.Signature), store.SanitizeLabel(c.Warmup))
	if c.MaxK > 0 {
		id += fmt.Sprintf("-k%d", c.MaxK)
	}
	return id
}

// EffectiveSockets is the Table I machine size the cell simulates.
func (c Cell) EffectiveSockets() int {
	if c.Sockets != 0 {
		return c.Sockets
	}
	return c.Threads / 8
}

// Expand enumerates the grid in deterministic order: workloads outermost,
// then threads, sockets, signatures, max-k overrides, warmups. (Explicit
// socket counts that cannot host a thread count are skipped; Validate
// guarantees each matches at least one.) Every resumed or re-run campaign
// walks cells in exactly this order, which is what makes matrices
// comparable byte for byte.
func (s Spec) Expand() []Cell {
	maxKs := s.MaxKs
	if len(maxKs) == 0 {
		maxKs = []int{0}
	}
	var cells []Cell
	for _, w := range s.Workloads {
		for _, th := range s.Threads {
			for _, sk := range s.Sockets {
				if sk != 0 && sk*8 != th {
					continue
				}
				for _, sig := range s.Signatures {
					for _, k := range maxKs {
						for _, wm := range s.Warmups {
							cells = append(cells, Cell{
								Workload:  w,
								Threads:   th,
								Sockets:   sk,
								Signature: sig,
								MaxK:      k,
								Warmup:    wm,
								Scale:     s.Scale,
							})
						}
					}
				}
			}
		}
	}
	return cells
}
