package profile

import (
	"testing"

	"barrierpoint/internal/bbv"
	"barrierpoint/internal/ldv"
	"barrierpoint/internal/workload"
)

func TestRegionMatchesDirectCollection(t *testing.T) {
	p := workload.New("npb-ft", 8, workload.WithScale(0.1))
	r := p.Region(5)
	rd := Region(r, 8)
	for tid := 0; tid < 8; tid++ {
		wantBBV, wantInstrs := bbv.Collect(p.Region(5).Thread(tid))
		if rd.ThreadInstrs[tid] != wantInstrs {
			t.Errorf("thread %d instrs = %d, want %d", tid, rd.ThreadInstrs[tid], wantInstrs)
		}
		if bbv.ManhattanDistance(rd.BBV[tid], wantBBV) != 0 {
			t.Errorf("thread %d BBV mismatch", tid)
		}
		wantLDV := ldv.Collect(p.Region(5).Thread(tid))
		if rd.LDV[tid] != wantLDV {
			t.Errorf("thread %d LDV mismatch", tid)
		}
	}
}

func TestProgramParallelConsistent(t *testing.T) {
	p := workload.New("npb-is", 8, workload.WithScale(0.1))
	rds := Program(p)
	if len(rds) != p.Regions() {
		t.Fatalf("%d profiles for %d regions", len(rds), p.Regions())
	}
	// Every region profile equals a serially collected one.
	for i := 0; i < p.Regions(); i += 3 {
		want := Region(p.Region(i), p.Threads())
		if rds[i].TotalInstrs != want.TotalInstrs {
			t.Errorf("region %d total instrs differ", i)
		}
		for tid := 0; tid < p.Threads(); tid++ {
			if rds[i].LDV[tid] != want.LDV[tid] {
				t.Errorf("region %d thread %d LDV differs", i, tid)
			}
		}
	}
}

func TestTotalsAndWeights(t *testing.T) {
	p := workload.New("npb-ft", 8, workload.WithScale(0.1))
	rds := Program(p)
	total := TotalInstrs(rds)
	weights := Weights(rds)
	var sum uint64
	for i, rd := range rds {
		if weights[i] != float64(rd.TotalInstrs) {
			t.Errorf("weight %d mismatch", i)
		}
		sum += rd.TotalInstrs
	}
	if total != sum {
		t.Errorf("TotalInstrs = %d, want %d", total, sum)
	}
	if total == 0 {
		t.Error("empty program profile")
	}
}
