// Package profile is the stand-in for the paper's Pin-based instrumentation:
// a single functional pass over a program's trace streams that produces, for
// every inter-barrier region, per-thread basic block vectors and LRU stack
// distance vectors, plus instruction counts.
//
// Profiles are microarchitecture-independent: they are computed from the
// trace alone. Regions are profiled concurrently (they are independent by
// construction), with results ordered deterministically by region index.
package profile

import (
	"runtime"
	"sync"

	"barrierpoint/internal/bbv"
	"barrierpoint/internal/ldv"
	"barrierpoint/internal/signature"
	"barrierpoint/internal/sparse"
	"barrierpoint/internal/trace"
)

// Profiling scratch state, pooled across regions: the LDV profiler's
// last-access table and Fenwick tree, and the BBV accumulator, are the two
// big per-region structures. Both reset to clean state without releasing
// storage, so the steady-state profiling pass allocates only the retained
// per-region results. Objects are Reset before Put, never after Get.
var (
	profilerPool = sync.Pool{New: func() any { return ldv.NewProfiler(4096) }}
	accPool      = sync.Pool{New: func() any { return sparse.NewAccumulator(256) }}
)

// Region profiles one region of a program.
func Region(r trace.Region, threads int) *signature.RegionData {
	rd := &signature.RegionData{
		BBV:          make([]bbv.Vector, threads),
		LDV:          make([]ldv.Histogram, threads),
		ThreadInstrs: make([]uint64, threads),
	}
	acc := accPool.Get().(*sparse.Accumulator)
	p := profilerPool.Get().(*ldv.Profiler)
	for t := 0; t < threads; t++ {
		s := r.Thread(t)
		var h ldv.Histogram
		var be trace.BlockExec
		var instrs uint64
		for s.Next(&be) {
			acc.Add(uint64(be.Block), float64(be.Instrs))
			instrs += uint64(be.Instrs)
			for _, a := range be.Accs {
				d, cold := p.Access(trace.LineAddr(a.Addr))
				if cold {
					h.AddCold()
				} else {
					h.Add(d)
				}
			}
		}
		rd.BBV[t] = bbv.FromAccumulator(acc)
		acc.Reset()
		p.Reset()
		rd.LDV[t] = h
		rd.ThreadInstrs[t] = instrs
		rd.TotalInstrs += instrs
	}
	accPool.Put(acc)
	profilerPool.Put(p)
	return rd
}

// Program profiles every region of a program, in parallel across regions.
func Program(p trace.Program) []*signature.RegionData {
	n := p.Regions()
	out := make([]*signature.RegionData, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = Region(p.Region(i), p.Threads())
			}
		}()
	}
	wg.Wait()
	return out
}

// TotalInstrs sums aggregate instruction counts over all regions.
func TotalInstrs(rds []*signature.RegionData) uint64 {
	var t uint64
	for _, rd := range rds {
		t += rd.TotalInstrs
	}
	return t
}

// Weights extracts the per-region aggregate instruction counts as float64
// clustering weights.
func Weights(rds []*signature.RegionData) []float64 {
	w := make([]float64, len(rds))
	for i, rd := range rds {
		w[i] = float64(rd.TotalInstrs)
	}
	return w
}
