// Package profile is the stand-in for the paper's Pin-based instrumentation:
// a single functional pass over a program's trace streams that produces, for
// every inter-barrier region, per-thread basic block vectors and LRU stack
// distance vectors, plus instruction counts.
//
// Profiles are microarchitecture-independent: they are computed from the
// trace alone. Regions are profiled concurrently (they are independent by
// construction), with results ordered deterministically by region index.
package profile

import (
	"runtime"
	"sync"

	"barrierpoint/internal/bbv"
	"barrierpoint/internal/ldv"
	"barrierpoint/internal/signature"
	"barrierpoint/internal/trace"
)

// Region profiles one region of a program.
func Region(r trace.Region, threads int) *signature.RegionData {
	rd := &signature.RegionData{
		BBV:          make([]bbv.Vector, threads),
		LDV:          make([]ldv.Histogram, threads),
		ThreadInstrs: make([]uint64, threads),
	}
	for t := 0; t < threads; t++ {
		s := r.Thread(t)
		v := bbv.New()
		var h ldv.Histogram
		p := ldv.NewProfiler(4096)
		var be trace.BlockExec
		var instrs uint64
		for s.Next(&be) {
			v.Add(be.Block, be.Instrs)
			instrs += uint64(be.Instrs)
			for _, a := range be.Accs {
				d, cold := p.Access(trace.LineAddr(a.Addr))
				if cold {
					h.AddCold()
				} else {
					h.Add(d)
				}
			}
		}
		rd.BBV[t] = v
		rd.LDV[t] = h
		rd.ThreadInstrs[t] = instrs
		rd.TotalInstrs += instrs
	}
	return rd
}

// Program profiles every region of a program, in parallel across regions.
func Program(p trace.Program) []*signature.RegionData {
	n := p.Regions()
	out := make([]*signature.RegionData, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = Region(p.Region(i), p.Threads())
			}
		}()
	}
	wg.Wait()
	return out
}

// TotalInstrs sums aggregate instruction counts over all regions.
func TotalInstrs(rds []*signature.RegionData) uint64 {
	var t uint64
	for _, rd := range rds {
		t += rd.TotalInstrs
	}
	return t
}

// Weights extracts the per-region aggregate instruction counts as float64
// clustering weights.
func Weights(rds []*signature.RegionData) []float64 {
	w := make([]float64, len(rds))
	for i, rd := range rds {
		w[i] = float64(rd.TotalInstrs)
	}
	return w
}
