// Package experiments regenerates every table and figure of the paper's
// evaluation section (§V-VI) on the synthetic workload suite and the Go
// timing simulator. Each ExpXxx method returns a rendered report; the
// Harness memoizes the expensive artifacts (full detailed simulations and
// region profiles) across experiments.
package experiments

import (
	"fmt"
	"sync"

	bp "barrierpoint"
	"barrierpoint/internal/profile"
	"barrierpoint/internal/signature"
	"barrierpoint/internal/workload"
)

// CoreCounts are the two machine sizes of the paper's Table I.
var CoreCounts = []int{8, 32}

// Harness caches workloads, profiles and full ("ground truth") simulations
// per benchmark and core count.
type Harness struct {
	// Scale shrinks workload iteration counts for fast runs (1.0 = the
	// paper-shaped configuration; tests and benches use smaller values).
	Scale float64
	// Warmup selects the warmup technique for the paper's §VI-B results.
	Warmup bp.WarmupMode
	// Benches restricts the benchmark set (nil = all).
	Benches []string

	mu     sync.Mutex
	progs  map[progKey]bp.Program
	fulls  map[progKey][]bp.RegionResult
	profs  map[progKey][]*signature.RegionData
	points map[pointsKey]map[int]bp.RegionResult
}

type progKey struct {
	bench string
	cores int
}

type pointsKey struct {
	bench  string
	cores  int
	warmup bp.WarmupMode
	label  string
}

// New returns a harness at the given workload scale with the MRU+previous-
// regions warmup (the adaptation of the paper's §IV technique to our
// shorter regions; see DESIGN.md).
func New(scale float64) *Harness {
	return &Harness{
		Scale:  scale,
		Warmup: bp.MRUPrevWarmup,
		progs:  make(map[progKey]bp.Program),
		fulls:  make(map[progKey][]bp.RegionResult),
		profs:  make(map[progKey][]*signature.RegionData),
		points: make(map[pointsKey]map[int]bp.RegionResult),
	}
}

// BenchNames returns the benchmark set this harness runs.
func (h *Harness) BenchNames() []string {
	if h.Benches != nil {
		return h.Benches
	}
	return workload.Names()
}

// Machine returns the Table I machine for a core count (8 or 32).
func (h *Harness) Machine(cores int) bp.MachineConfig {
	return bp.TableIMachine(cores / 8)
}

// Program returns the (cached) workload instance.
func (h *Harness) Program(bench string, cores int) bp.Program {
	h.mu.Lock()
	defer h.mu.Unlock()
	k := progKey{bench, cores}
	if p, ok := h.progs[k]; ok {
		return p
	}
	p := workload.New(bench, cores, workload.WithScale(h.Scale))
	h.progs[k] = p
	return p
}

// Full returns the (cached) full detailed simulation of a benchmark.
func (h *Harness) Full(bench string, cores int) []bp.RegionResult {
	p := h.Program(bench, cores)
	h.mu.Lock()
	k := progKey{bench, cores}
	if r, ok := h.fulls[k]; ok {
		h.mu.Unlock()
		return r
	}
	h.mu.Unlock()
	r, err := bp.SimulateFull(p, h.Machine(cores))
	if err != nil {
		panic(fmt.Sprintf("experiments: full simulation of %s/%d: %v", bench, cores, err))
	}
	h.mu.Lock()
	h.fulls[k] = r
	h.mu.Unlock()
	return r
}

// Profiles returns the (cached) per-region profiles of a benchmark.
func (h *Harness) Profiles(bench string, cores int) []*signature.RegionData {
	p := h.Program(bench, cores)
	h.mu.Lock()
	k := progKey{bench, cores}
	if r, ok := h.profs[k]; ok {
		h.mu.Unlock()
		return r
	}
	h.mu.Unlock()
	r := profile.Program(p)
	h.mu.Lock()
	h.profs[k] = r
	h.mu.Unlock()
	return r
}

// Analysis runs barrierpoint selection for a benchmark under cfg, reusing
// cached profiles.
func (h *Harness) Analysis(bench string, cores int, cfg bp.Config) *bp.Analysis {
	a, err := bp.AnalyzeWithProfiles(h.Program(bench, cores), cfg, h.Profiles(bench, cores))
	if err != nil {
		panic(fmt.Sprintf("experiments: analysis of %s/%d: %v", bench, cores, err))
	}
	return a
}

// DefaultAnalysis is Analysis with the paper's default configuration.
func (h *Harness) DefaultAnalysis(bench string, cores int) *bp.Analysis {
	return h.Analysis(bench, cores, bp.DefaultConfig())
}

// Points simulates the barrierpoints of an analysis under a warmup mode,
// caching by (bench, cores, warmup, label). label distinguishes analyses
// with different selections (e.g. cross-validated ones).
func (h *Harness) Points(bench string, cores int, a *bp.Analysis, mode bp.WarmupMode, label string) map[int]bp.RegionResult {
	k := pointsKey{bench, cores, mode, label}
	h.mu.Lock()
	if r, ok := h.points[k]; ok {
		h.mu.Unlock()
		return r
	}
	h.mu.Unlock()
	r, err := a.SimulatePoints(h.Machine(cores), mode)
	if err != nil {
		panic(fmt.Sprintf("experiments: point simulation of %s/%d: %v", bench, cores, err))
	}
	h.mu.Lock()
	h.points[k] = r
	h.mu.Unlock()
	return r
}
