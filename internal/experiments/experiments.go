package experiments

import (
	"fmt"
	"math"
	"strings"

	bp "barrierpoint"
	"barrierpoint/internal/campaign"
	"barrierpoint/internal/cluster"
	"barrierpoint/internal/report"
	"barrierpoint/internal/service"
	"barrierpoint/internal/signature"
	"barrierpoint/internal/stats"
)

// Table1 renders the simulated system characteristics (paper Table I).
func (h *Harness) Table1() *report.Table {
	t := report.NewTable("Table I: simulated system characteristics", "Component", "Parameters")
	cfg := h.Machine(8)
	t.AddRow("Processor", fmt.Sprintf("1 and 4 sockets, %d cores per socket", cfg.CoresPerSocket))
	t.AddRow("Core", fmt.Sprintf("%.2f GHz, %d-way issue, %d-entry ROB", cfg.FreqGHz, cfg.IssueWidth, cfg.ROB))
	t.AddRow("Branch predictor", fmt.Sprintf("gshare, %d cycles penalty", cfg.MispredictPenalty))
	t.AddRow("L1-I", fmt.Sprintf("%d KB, %d way, %d cycle access time", cfg.L1I.SizeBytes>>10, cfg.L1I.Ways, cfg.L1I.Latency))
	t.AddRow("L1-D", fmt.Sprintf("%d KB, %d way, %d cycle access time", cfg.L1D.SizeBytes>>10, cfg.L1D.Ways, cfg.L1D.Latency))
	t.AddRow("L2 cache", fmt.Sprintf("%d KB per core, %d way, %d cycle", cfg.L2.SizeBytes>>10, cfg.L2.Ways, cfg.L2.Latency))
	t.AddRow("L3 cache", fmt.Sprintf("%d MB per %d cores, %d way, %d cycle", cfg.L3.SizeBytes>>20, cfg.CoresPerSocket, cfg.L3.Ways, cfg.L3.Latency))
	t.AddRow("Main memory", fmt.Sprintf("%.0f ns access time, %.0f GB/s per socket", cfg.MemLatencyNs, cfg.MemBWGBs))
	return t
}

// Table2 renders the clustering parameters (paper Table II).
func (h *Harness) Table2() *report.Table {
	p := cluster.DefaultParams()
	t := report.NewTable("Table II: SimPoint-style clustering parameters", "Parameter", "Value")
	t.AddRow("-dim (number of projected dimensions)", fmt.Sprintf("%d", p.Dim))
	t.AddRow("-maxK (maximum number of clusters)", fmt.Sprintf("%d", p.MaxK))
	t.AddRow("-fixedLength (clusters are not normalized)", "off")
	t.AddRow("-coveragePct (percent coverage)", fmt.Sprintf("%g (100%%)", p.CoveragePct))
	t.AddRow("BIC threshold", fmt.Sprintf("%g", p.BICThresh))
	return t
}

// Fig1 counts dynamically executed barriers per benchmark at 8 and 32
// threads (paper Figure 1). The barrier count is thread-count independent.
func (h *Harness) Fig1() *report.Table {
	t := report.NewTable("Figure 1: total number of dynamically executed barriers",
		"benchmark", "8 threads", "32 threads")
	for _, b := range h.BenchNames() {
		t.AddRow(b,
			fmt.Sprintf("%d", h.Program(b, 8).Regions()),
			fmt.Sprintf("%d", h.Program(b, 32).Regions()))
	}
	return t
}

// Fig3Data is one per-region sample of the paper's Figure 3.
type Fig3Data struct {
	Region           int
	TimeNs           float64 // region duration in the full simulation
	ActualIPC        float64
	ReconstructedIPC float64
	IsBarrierPoint   bool
}

// Fig3 reproduces the paper's Figure 3 for npb-ft on the 32-core machine:
// per-region aggregate IPC from the full simulation, the IPC series rebuilt
// from barrierpoint representatives, and the selected barrierpoints.
func (h *Harness) Fig3() ([]Fig3Data, *report.Table) {
	const bench, cores = "npb-ft", 32
	full := h.Full(bench, cores)
	a := h.DefaultAnalysis(bench, cores)
	perfect := a.PerfectWarmup(full)

	isBP := make(map[int]bool)
	for _, p := range a.BarrierPoints() {
		isBP[p.Region] = true
	}
	out := make([]Fig3Data, len(full))
	for i, r := range full {
		rep := perfect[a.Selection.PointFor(i).Region]
		out[i] = Fig3Data{
			Region:           i,
			TimeNs:           r.TimeNs,
			ActualIPC:        r.IPC(),
			ReconstructedIPC: rep.IPC(),
			IsBarrierPoint:   isBP[i],
		}
	}
	t := report.NewTable("Figure 3: npb-ft (32 cores) aggregate IPC, reconstructed IPC, barrierpoints",
		"region", "time (ns)", "IPC", "reconstructed IPC", "barrierpoint")
	for _, d := range out {
		mark := ""
		if d.IsBarrierPoint {
			mark = "*"
		}
		t.AddRow(fmt.Sprintf("%d", d.Region), fmt.Sprintf("%.0f", d.TimeNs),
			fmt.Sprintf("%.2f", d.ActualIPC), fmt.Sprintf("%.2f", d.ReconstructedIPC), mark)
	}
	return out, t
}

// ErrRow is one benchmark's accuracy entry for Figures 4 and 7.
type ErrRow struct {
	Bench     string
	RunErr    [2]float64 // abs runtime % error at 8 and 32 cores
	APKIDelta [2]float64 // abs DRAM APKI difference at 8 and 32 cores
}

// AccuracySpec is the campaign spec whose grid is the paper's accuracy
// evaluation (Figs. 4 and 7): every benchmark of the harness crossed with
// the Table I core counts, under one warmup mode ("perfect" for Fig. 4,
// the §IV technique for Fig. 7).
func (h *Harness) AccuracySpec(warmup string) campaign.Spec {
	return campaign.Spec{
		Name:      "paper-accuracy-" + warmup,
		Workloads: h.BenchNames(),
		Threads:   CoreCounts,
		Warmups:   []string{warmup},
		Scale:     h.Scale,
	}
}

// errRows computes runtime error and APKI difference per benchmark by
// expanding the accuracy campaign spec and running its grid against the
// in-memory harness — the same cells bpcamp would dispatch through the
// service tier, minus the store.
func (h *Harness) errRows(mode bp.WarmupMode, perfect bool) []ErrRow {
	warmup := mode.String()
	if perfect {
		warmup = campaign.WarmupPerfect
	}
	outcomes, err := campaign.RunGrid(h.AccuracySpec(warmup), harnessRunner{h})
	if err != nil {
		panic(err)
	}
	// Expand order is workloads outermost, threads inner, so each
	// benchmark's cells arrive contiguously in CoreCounts order.
	var rows []ErrRow
	for i, o := range outcomes {
		ci := i % len(CoreCounts)
		if ci == 0 {
			rows = append(rows, ErrRow{Bench: o.Cell.Workload})
		}
		row := &rows[len(rows)-1]
		row.RunErr[ci] = o.Result.RunErrPct
		row.APKIDelta[ci] = o.Result.APKIDelta
	}
	return rows
}

// harnessRunner adapts the in-memory Harness to campaign.CellRunner: the
// full simulation is the harness' cached ground truth, and "perfect"
// warmup estimates from its region results directly.
type harnessRunner struct{ h *Harness }

// RunCell implements campaign.CellRunner.
func (r harnessRunner) RunCell(c campaign.Cell) (campaign.CellResult, error) {
	h := r.h
	cfg, err := service.ParseSignature(c.Signature)
	if err != nil {
		return campaign.CellResult{}, err
	}
	full := h.Full(c.Workload, c.Threads)
	a := h.Analysis(c.Workload, c.Threads, cfg)
	var results map[int]bp.RegionResult
	if c.Warmup == campaign.WarmupPerfect {
		results = a.PerfectWarmup(full)
	} else {
		mode, err := bp.ParseWarmup(c.Warmup)
		if err != nil {
			return campaign.CellResult{}, err
		}
		results = h.Points(c.Workload, c.Threads, a, mode, "default")
	}
	est, err := a.EstimateFrom(results)
	if err != nil {
		return campaign.CellResult{}, err
	}
	act := bp.ActualFrom(full)
	return campaign.CellResult{
		EstTimeNs:       est.TimeNs,
		ActTimeNs:       act.TimeNs,
		EstAPKI:         est.DRAMAPKI(),
		ActAPKI:         act.DRAMAPKI(),
		RunErrPct:       stats.AbsPctErr(est.TimeNs, act.TimeNs),
		APKIDelta:       math.Abs(est.DRAMAPKI() - act.DRAMAPKI()),
		SerialSpeedup:   a.SerialSpeedup(),
		ParallelSpeedup: a.ParallelSpeedup(),
	}, nil
}

func errTable(title string, rows []ErrRow) *report.Table {
	t := report.NewTable(title,
		"benchmark", "runtime err 8c (%)", "runtime err 32c (%)", "APKI diff 8c", "APKI diff 32c")
	var e8, e32 []float64
	for _, r := range rows {
		t.AddRow(r.Bench,
			fmt.Sprintf("%.2f", r.RunErr[0]), fmt.Sprintf("%.2f", r.RunErr[1]),
			fmt.Sprintf("%.3f", r.APKIDelta[0]), fmt.Sprintf("%.3f", r.APKIDelta[1]))
		e8 = append(e8, r.RunErr[0])
		e32 = append(e32, r.RunErr[1])
	}
	all := append(append([]float64(nil), e8...), e32...)
	t.AddRow("average", fmt.Sprintf("%.2f", stats.Mean(e8)), fmt.Sprintf("%.2f", stats.Mean(e32)), "", "")
	t.AddRow("overall avg / max",
		fmt.Sprintf("%.2f", stats.Mean(all)), fmt.Sprintf("%.2f", stats.Max(all)), "", "")
	return t
}

// Fig4 evaluates barrierpoint selection with perfect warmup (paper Fig. 4):
// absolute runtime prediction error and absolute DRAM APKI difference.
func (h *Harness) Fig4() ([]ErrRow, *report.Table) {
	rows := h.errRows(0, true)
	return rows, errTable("Figure 4: prediction error with perfect warmup", rows)
}

// Fig7 is Fig4 with the §IV warmup technique instead of perfect warmup
// (paper Fig. 7).
func (h *Harness) Fig7() ([]ErrRow, *report.Table) {
	rows := h.errRows(h.Warmup, false)
	return rows, errTable(fmt.Sprintf("Figure 7: prediction error with %s warmup", h.Warmup), rows)
}

// Fig5Variants are the signature configurations of the paper's Figure 5.
var Fig5Variants = []bp.SignatureOptions{
	{Kind: signature.BBVOnly},
	{Kind: signature.LDVOnly},
	{Kind: signature.LDVOnly, LDVWeightV: 2},
	{Kind: signature.LDVOnly, LDVWeightV: 5},
	{Kind: signature.Combined},
	{Kind: signature.Combined, LDVWeightV: 2},
	{Kind: signature.Combined, LDVWeightV: 5},
}

// Fig5MaxKs are the cluster count caps swept in the paper's Figure 5.
var Fig5MaxKs = []int{1, 5, 10, 20}

// Fig5 sweeps similarity metric and maxK, reporting the average absolute
// runtime prediction error across benchmarks and core counts with perfect
// warmup (paper Fig. 5).
func (h *Harness) Fig5() *report.Table {
	headers := []string{"variant"}
	for _, k := range Fig5MaxKs {
		headers = append(headers, fmt.Sprintf("maxK=%d", k))
	}
	t := report.NewTable("Figure 5: avg abs runtime error (%) by similarity metric and maxK", headers...)
	for _, v := range Fig5Variants {
		row := []string{v.Label()}
		for _, maxK := range Fig5MaxKs {
			cfg := bp.DefaultConfig()
			cfg.Signature = v
			cfg.Cluster.MaxK = maxK
			var errs []float64
			for _, b := range h.BenchNames() {
				for _, cores := range CoreCounts {
					full := h.Full(b, cores)
					a := h.Analysis(b, cores, cfg)
					est, err := a.EstimateFrom(a.PerfectWarmup(full))
					if err != nil {
						panic(err)
					}
					errs = append(errs, stats.AbsPctErr(est.TimeNs, bp.ActualFrom(full).TimeNs))
				}
			}
			row = append(row, fmt.Sprintf("%.2f", stats.Mean(errs)))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig6 cross-validates barrierpoints across core counts (paper Fig. 6):
// regions selected from X-core signatures predict the Y-core machine.
func (h *Harness) Fig6() *report.Table {
	t := report.NewTable("Figure 6: barrierpoint selection cross-validation (abs runtime % error)",
		"benchmark", "8c using 8c SVs", "8c using 32c SVs", "32c using 8c SVs", "32c using 32c SVs")
	for _, b := range h.BenchNames() {
		row := []string{b}
		for _, simCores := range CoreCounts {
			full := h.Full(b, simCores)
			act := bp.ActualFrom(full)
			for _, svCores := range CoreCounts {
				aSV := h.DefaultAnalysis(b, svCores)
				// Transfer the selection to the simulated machine's
				// region weights.
				weights := make([]float64, len(h.Profiles(b, simCores)))
				for i, rd := range h.Profiles(b, simCores) {
					weights[i] = float64(rd.TotalInstrs)
				}
				sel := cluster.Rebind(aSV.Selection, weights)
				transferred := &bp.Analysis{
					Program:   h.Program(b, simCores),
					Config:    bp.DefaultConfig(),
					Profiles:  h.Profiles(b, simCores),
					Selection: sel,
				}
				est, err := transferred.EstimateFrom(transferred.PerfectWarmup(full))
				if err != nil {
					panic(err)
				}
				row = append(row, fmt.Sprintf("%.2f", stats.AbsPctErr(est.TimeNs, act.TimeNs)))
			}
		}
		// Reorder: the paper lists (8c/8cSV, 8c/32cSV, 32c/8cSV, 32c/32cSV);
		// the loop above produced exactly that order.
		t.AddRow(row...)
	}
	return t
}

// Table3 lists, per benchmark and core count, the total barrier count,
// significant barrierpoints with their multipliers, and the insignificant
// barrierpoint summary (paper Table III).
func (h *Harness) Table3() *report.Table {
	t := report.NewTable("Table III: selected barrierpoints and multipliers",
		"application", "cores", "barriers", "significant bps", "insig: n/mult/weight", "barrierpoints (multiplier)")
	for _, b := range h.BenchNames() {
		for _, cores := range CoreCounts {
			a := h.DefaultAnalysis(b, cores)
			sig, insig := a.Selection.Significant()
			var insigMult, insigW float64
			for _, p := range insig {
				insigMult += p.Multiplier
				insigW += p.Weight
			}
			var bps []string
			for _, p := range sig {
				bps = append(bps, fmt.Sprintf("%d (%.1f)", p.Region, p.Multiplier))
			}
			t.AddRow(b, fmt.Sprintf("%d", cores),
				fmt.Sprintf("%d", h.Program(b, cores).Regions()),
				fmt.Sprintf("%d", len(sig)),
				fmt.Sprintf("%d / %.1f / %.1e", len(insig), insigMult, insigW),
				strings.Join(bps, " "))
		}
	}
	return t
}

// Fig8Row is one benchmark's relative scaling entry.
type Fig8Row struct {
	Bench     string
	Actual    float64 // measured 8-core time / 32-core time
	Predicted float64 // BarrierPoint-estimated ratio
}

// Fig8 compares actual and BarrierPoint-predicted 8→32-core speedups
// (paper Fig. 8). Estimates use the harness warmup mode end to end.
func (h *Harness) Fig8() ([]Fig8Row, *report.Table) {
	var rows []Fig8Row
	t := report.NewTable("Figure 8: relative scaling, 8-core vs 32-core speedup",
		"benchmark", "actual", "predicted")
	for _, b := range h.BenchNames() {
		var est [2]float64
		var act [2]float64
		for ci, cores := range CoreCounts {
			full := h.Full(b, cores)
			a := h.DefaultAnalysis(b, cores)
			results := h.Points(b, cores, a, h.Warmup, "default")
			e, err := a.EstimateFrom(results)
			if err != nil {
				panic(err)
			}
			est[ci] = e.TimeNs
			act[ci] = bp.ActualFrom(full).TimeNs
		}
		r := Fig8Row{Bench: b, Actual: act[0] / act[1], Predicted: est[0] / est[1]}
		rows = append(rows, r)
		t.AddRow(b, fmt.Sprintf("%.2f", r.Actual), fmt.Sprintf("%.2f", r.Predicted))
	}
	return rows, t
}

// Fig9Row is one benchmark+cores simulation speedup entry.
type Fig9Row struct {
	Bench             string
	Cores             int
	SerialSpeedup     float64
	ParallelSpeedup   float64
	ResourceReduction float64
}

// Fig9 reports the serial and parallel simulation speedups and the machine
// resource reduction of the BarrierPoint methodology (paper Fig. 9 and the
// 78× resource claim).
func (h *Harness) Fig9() ([]Fig9Row, *report.Table) {
	var rows []Fig9Row
	t := report.NewTable("Figure 9: simulation speedups (instruction count reduction)",
		"benchmark", "cores", "serial speedup", "parallel speedup", "resource reduction")
	var serial, parallel, res []float64
	for _, b := range h.BenchNames() {
		for _, cores := range CoreCounts {
			a := h.DefaultAnalysis(b, cores)
			r := Fig9Row{
				Bench:             b,
				Cores:             cores,
				SerialSpeedup:     a.SerialSpeedup(),
				ParallelSpeedup:   a.ParallelSpeedup(),
				ResourceReduction: a.ResourceReduction(),
			}
			rows = append(rows, r)
			serial = append(serial, r.SerialSpeedup)
			parallel = append(parallel, r.ParallelSpeedup)
			res = append(res, r.ResourceReduction)
			t.AddRow(b, fmt.Sprintf("%d", cores),
				fmt.Sprintf("%.1f", r.SerialSpeedup),
				fmt.Sprintf("%.1f", r.ParallelSpeedup),
				fmt.Sprintf("%.1f", r.ResourceReduction))
		}
	}
	t.AddRow("harmonic mean", "",
		fmt.Sprintf("%.1f", stats.HarmonicMean(serial)),
		fmt.Sprintf("%.1f", stats.HarmonicMean(parallel)), "")
	t.AddRow("max", "",
		fmt.Sprintf("%.1f", stats.Max(serial)),
		fmt.Sprintf("%.1f", stats.Max(parallel)), "")
	t.AddRow("avg resource reduction", "", "", "",
		fmt.Sprintf("%.1f", stats.Mean(res)))
	return rows, t
}

// AblationScaling quantifies the value of instruction-count scaling in the
// reconstruction (paper §VI-A: 0.6% → 19.4% error without it).
func (h *Harness) AblationScaling() *report.Table {
	t := report.NewTable("Ablation: reconstruction with and without multiplier scaling (abs runtime % error, perfect warmup)",
		"benchmark", "cores", "scaled", "unscaled")
	var sc, un []float64
	for _, b := range h.BenchNames() {
		for _, cores := range CoreCounts {
			full := h.Full(b, cores)
			a := h.DefaultAnalysis(b, cores)
			perfect := a.PerfectWarmup(full)
			act := bp.ActualFrom(full)
			est, err := a.EstimateFrom(perfect)
			if err != nil {
				panic(err)
			}
			estU, err := bp.EstimateUnscaled(a.Selection, perfect)
			if err != nil {
				panic(err)
			}
			e1 := stats.AbsPctErr(est.TimeNs, act.TimeNs)
			e2 := stats.AbsPctErr(estU.TimeNs, act.TimeNs)
			sc, un = append(sc, e1), append(un, e2)
			t.AddRow(b, fmt.Sprintf("%d", cores), fmt.Sprintf("%.2f", e1), fmt.Sprintf("%.2f", e2))
		}
	}
	t.AddRow("average", "", fmt.Sprintf("%.2f", stats.Mean(sc)), fmt.Sprintf("%.2f", stats.Mean(un)))
	return t
}

// AblationThreads compares per-thread concatenation against summation when
// combining multi-threaded signature vectors (paper §III-A4).
func (h *Harness) AblationThreads() *report.Table {
	t := report.NewTable("Ablation: per-thread SV concatenation vs summation (abs runtime % error, perfect warmup)",
		"benchmark", "cores", "concat", "sum")
	var ce, se []float64
	for _, b := range h.BenchNames() {
		for _, cores := range CoreCounts {
			full := h.Full(b, cores)
			act := bp.ActualFrom(full)
			var errs [2]float64
			for vi, sum := range []bool{false, true} {
				cfg := bp.DefaultConfig()
				cfg.Signature.SumThreads = sum
				a := h.Analysis(b, cores, cfg)
				est, err := a.EstimateFrom(a.PerfectWarmup(full))
				if err != nil {
					panic(err)
				}
				errs[vi] = stats.AbsPctErr(est.TimeNs, act.TimeNs)
			}
			ce, se = append(ce, errs[0]), append(se, errs[1])
			t.AddRow(b, fmt.Sprintf("%d", cores), fmt.Sprintf("%.2f", errs[0]), fmt.Sprintf("%.2f", errs[1]))
		}
	}
	t.AddRow("average", "", fmt.Sprintf("%.2f", stats.Mean(ce)), fmt.Sprintf("%.2f", stats.Mean(se)))
	return t
}

// AblationWarmup compares warmup strategies end to end.
func (h *Harness) AblationWarmup() *report.Table {
	t := report.NewTable("Ablation: warmup strategies (abs runtime % error)",
		"benchmark", "cores", "perfect", "cold", "mru", "mru+prev")
	modes := []bp.WarmupMode{bp.ColdWarmup, bp.MRUWarmup, bp.MRUPrevWarmup}
	sums := make([][]float64, 4)
	for _, b := range h.BenchNames() {
		for _, cores := range CoreCounts {
			full := h.Full(b, cores)
			a := h.DefaultAnalysis(b, cores)
			act := bp.ActualFrom(full)
			row := []string{b, fmt.Sprintf("%d", cores)}
			est, err := a.EstimateFrom(a.PerfectWarmup(full))
			if err != nil {
				panic(err)
			}
			e := stats.AbsPctErr(est.TimeNs, act.TimeNs)
			sums[0] = append(sums[0], e)
			row = append(row, fmt.Sprintf("%.2f", e))
			for mi, mode := range modes {
				est, err := a.EstimateFrom(h.Points(b, cores, a, mode, "default"))
				if err != nil {
					panic(err)
				}
				e := stats.AbsPctErr(est.TimeNs, act.TimeNs)
				sums[mi+1] = append(sums[mi+1], e)
				row = append(row, fmt.Sprintf("%.2f", e))
			}
			t.AddRow(row...)
		}
	}
	avg := []string{"average", ""}
	for _, s := range sums {
		avg = append(avg, fmt.Sprintf("%.2f", stats.Mean(s)))
	}
	t.AddRow(avg...)
	return t
}
