package experiments

import (
	"strings"
	"testing"

	bp "barrierpoint"
)

// testHarness is a fast harness: two small benchmarks at reduced scale.
func testHarness() *Harness {
	h := New(0.25)
	h.Benches = []string{"npb-ft", "npb-is"}
	return h
}

func TestHarnessCaching(t *testing.T) {
	h := testHarness()
	p1 := h.Program("npb-ft", 8)
	p2 := h.Program("npb-ft", 8)
	if p1 != p2 {
		t.Error("Program not cached")
	}
	f1 := h.Full("npb-ft", 8)
	f2 := h.Full("npb-ft", 8)
	if &f1[0] != &f2[0] {
		t.Error("Full not cached")
	}
	r1 := h.Profiles("npb-ft", 8)
	r2 := h.Profiles("npb-ft", 8)
	if r1[0] != r2[0] {
		t.Error("Profiles not cached")
	}
}

func TestMachineSelection(t *testing.T) {
	h := testHarness()
	if h.Machine(8).Cores() != 8 || h.Machine(32).Cores() != 32 {
		t.Error("machine core counts wrong")
	}
}

func TestStaticTables(t *testing.T) {
	h := testHarness()
	t1 := h.Table1().String()
	for _, want := range []string{"2.66 GHz", "8 MB", "65 ns"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
	t2 := h.Table2().String()
	if !strings.Contains(t2, "15") || !strings.Contains(t2, "20") {
		t.Error("Table II missing dim/maxK")
	}
}

func TestFig1(t *testing.T) {
	h := testHarness()
	out := h.Fig1().String()
	if !strings.Contains(out, "npb-ft") || !strings.Contains(out, "34") {
		t.Errorf("Fig1 missing ft barrier count:\n%s", out)
	}
}

func TestFig3(t *testing.T) {
	h := testHarness()
	data, tbl := h.Fig3()
	if len(data) == 0 || tbl == nil {
		t.Fatal("empty Fig3")
	}
	anyBP := false
	for _, d := range data {
		if d.ActualIPC <= 0 {
			t.Errorf("region %d has non-positive IPC", d.Region)
		}
		if d.IsBarrierPoint {
			anyBP = true
		}
	}
	if !anyBP {
		t.Error("no barrierpoints marked")
	}
}

func TestFig4AndFig9(t *testing.T) {
	h := testHarness()
	rows, tbl := h.Fig4()
	if len(rows) != 2 {
		t.Fatalf("Fig4 rows = %d", len(rows))
	}
	if tbl.String() == "" {
		t.Error("empty Fig4 table")
	}
	// is is exactly reconstructible even at reduced scale.
	for _, r := range rows {
		if r.Bench == "npb-is" && r.RunErr[0] > 0.5 {
			t.Errorf("npb-is error %.2f%%", r.RunErr[0])
		}
	}
	frows, _ := h.Fig9()
	if len(frows) != 4 { // 2 benches × 2 core counts
		t.Fatalf("Fig9 rows = %d", len(frows))
	}
	for _, r := range frows {
		if r.SerialSpeedup < 1 || r.ParallelSpeedup < r.SerialSpeedup {
			t.Errorf("%s/%d: speedups inconsistent: %+v", r.Bench, r.Cores, r)
		}
	}
}

func TestFig8(t *testing.T) {
	h := testHarness()
	rows, _ := h.Fig8()
	for _, r := range rows {
		if r.Actual <= 0 || r.Predicted <= 0 {
			t.Errorf("%s: non-positive speedups %+v", r.Bench, r)
		}
		// At the reduced test scale regions are very short and warmup
		// error is amplified, so only order-of-magnitude agreement is
		// checked here; paper-shape agreement is validated at scale 1.
		rel := r.Predicted / r.Actual
		if rel < 0.3 || rel > 3 {
			t.Errorf("%s: predicted/actual scaling ratio %.2f", r.Bench, rel)
		}
	}
}

func TestTable3(t *testing.T) {
	h := testHarness()
	out := h.Table3().String()
	if !strings.Contains(out, "npb-is") {
		t.Error("Table III missing benchmarks")
	}
}

func TestFig6(t *testing.T) {
	h := testHarness()
	out := h.Fig6().String()
	if !strings.Contains(out, "npb-ft") {
		t.Errorf("Fig6 missing rows:\n%s", out)
	}
}

func TestAblations(t *testing.T) {
	h := testHarness()
	if out := h.AblationScaling().String(); !strings.Contains(out, "unscaled") {
		t.Error("scaling ablation malformed")
	}
	if out := h.AblationThreads().String(); !strings.Contains(out, "sum") {
		t.Error("threads ablation malformed")
	}
}

func TestWarmupDefault(t *testing.T) {
	if New(1).Warmup != bp.MRUPrevWarmup {
		t.Error("default warmup is not MRU+prev")
	}
}
