// Package fault is the repository's fault-injection harness: a registry
// of named injection points ("sites") that tests, smoke scripts and the
// chaos CI jobs arm with error or latency rules. Production code calls
// [Inject] (or an [Injector]'s Inject method) at each seam it wants to be
// testable under failure; when no rule is armed the call is a single
// atomic load, so the sites cost nothing in normal operation.
//
// # Site naming
//
// A site name is "<layer>.<operation>", lower-case, dot-separated:
//
//	rpc.register    farm.Client worker registration
//	rpc.lease       farm.Client task lease
//	rpc.heartbeat   farm.Client lease renewal
//	rpc.result      farm.Client result upload (Complete and Fail)
//	rpc.fetch       farm.Client trace download
//	store.put-artifact   store.Store artifact write
//	store.get-artifact   store.Store artifact read
//	store.wal.append     store.WAL record append (farm queue + job journal)
//
// Rules match a site either exactly or by "prefix.*" glob ("rpc.*" arms
// every client RPC). To add a site, pick a name following the scheme
// above, call fault.Inject(name) at the top of the operation (before any
// side effect, so an injected failure is indistinguishable from the real
// one), list it here, and — if the site guards a retried operation —
// cover it in a flaky-path test.
//
// # Rule specs
//
// Rules are armed from a spec string (the -fault flag on bpserve and
// bpworker): semicolon-separated "site:opts" clauses, options
// comma-separated:
//
//	p=0.1       fail ~10% of hits (deterministic PRNG, see seed)
//	n=3         fail the first 3 hits, then pass
//	delay=50ms  sleep before deciding (latency injection; combines with
//	            p/n, or stands alone as pure latency)
//	seed=42     per-injector PRNG seed (global option, first clause wins)
//
// Example: "seed=7;rpc.lease:p=0.1;rpc.result:p=0.1,delay=5ms".
//
// Probabilistic rules draw from a deterministic PRNG seeded once per
// injector, so a given spec produces the same failure sequence on every
// run — chaos smokes are reproducible, not flaky.
package fault
