package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the sentinel wrapped by every injected failure, so
// tests can tell a synthetic error from a real one with errors.Is.
var ErrInjected = errors.New("fault: injected failure")

// Rule arms one injection site (or a "prefix.*" family of sites). Zero
// P and N with a non-zero Delay makes a pure latency rule.
type Rule struct {
	// Site matches an injection point exactly, or every point under a
	// prefix when it ends in ".*" (e.g. "rpc.*").
	Site string
	// P is the per-hit failure probability in [0, 1], drawn from the
	// injector's deterministic PRNG.
	P float64
	// N fails the first N hits of the site unconditionally, then passes.
	N int
	// Delay is slept on every hit before the pass/fail decision.
	Delay time.Duration
}

func (r Rule) matches(site string) bool {
	if p, ok := strings.CutSuffix(r.Site, "*"); ok {
		return strings.HasPrefix(site, p)
	}
	return r.Site == site
}

// Injector is one armed set of rules. The zero value is valid and
// disarmed; every Inject on it is a single atomic load.
type Injector struct {
	armed atomic.Bool

	mu       sync.Mutex
	rules    []Rule
	rng      *rand.Rand
	hits     map[string]int
	injected map[string]int
}

// New returns an injector whose probabilistic rules draw from a PRNG
// seeded with seed — the same spec and seed reproduce the same failure
// sequence.
func New(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// Arm adds one rule and enables the injector.
func (in *Injector) Arm(r Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = append(in.rules, r)
	in.armed.Store(true)
}

// Reset disarms the injector and clears its rules and counters.
func (in *Injector) Reset() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.armed.Store(false)
	in.rules = nil
	in.hits = nil
	in.injected = nil
}

// Seed replaces the injector's PRNG (Configure's seed= option).
func (in *Injector) Seed(seed int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rng = rand.New(rand.NewSource(seed))
}

// Inject is called by production code at a named seam: it returns nil
// when the site passes and a synthetic error (wrapping ErrInjected) when
// an armed rule decides the hit fails. Disarmed injectors decide in one
// atomic load with no allocation.
func (in *Injector) Inject(site string) error {
	if !in.armed.Load() {
		return nil
	}
	in.mu.Lock()
	var rule *Rule
	for i := range in.rules {
		if in.rules[i].matches(site) {
			rule = &in.rules[i]
			break
		}
	}
	if rule == nil {
		in.mu.Unlock()
		return nil
	}
	if in.hits == nil {
		in.hits = make(map[string]int)
		in.injected = make(map[string]int)
	}
	in.hits[site]++
	hit := in.hits[site]
	fail := false
	if rule.N > 0 {
		rule.N--
		fail = true
	} else if rule.P > 0 {
		if in.rng == nil {
			in.rng = rand.New(rand.NewSource(1))
		}
		fail = in.rng.Float64() < rule.P
	}
	if fail {
		in.injected[site]++
	}
	delay := rule.Delay
	in.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if fail {
		return fmt.Errorf("%w at %s (hit %d)", ErrInjected, site, hit)
	}
	return nil
}

// Hits returns how often the site was consulted while armed; Injected
// returns how many of those hits failed.
func (in *Injector) Hits(site string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[site]
}

// Injected returns the number of failures injected at site.
func (in *Injector) Injected(site string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected[site]
}

// InjectedTotal returns the number of failures injected across all sites.
func (in *Injector) InjectedTotal() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, v := range in.injected {
		n += v
	}
	return n
}

// Configure resets the injector and arms it from a spec string (see the
// package documentation): semicolon-separated "site:opts" clauses with
// comma-separated options p=, n=, delay=, plus a global seed= clause.
// An empty spec just resets. Unknown options or malformed values are
// errors — a chaos run with a typoed spec must fail loudly, not run
// fault-free.
func (in *Injector) Configure(spec string) error {
	in.Reset()
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if v, ok := strings.CutPrefix(clause, "seed="); ok {
			seed, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return fmt.Errorf("fault: seed %q: %v", v, err)
			}
			in.Seed(seed)
			continue
		}
		site, opts, ok := strings.Cut(clause, ":")
		if !ok || site == "" {
			return fmt.Errorf("fault: clause %q: want site:opts", clause)
		}
		r := Rule{Site: site}
		for _, opt := range strings.Split(opts, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(opt), "=")
			if !ok {
				return fmt.Errorf("fault: option %q in clause %q: want key=value", opt, clause)
			}
			var err error
			switch k {
			case "p":
				r.P, err = strconv.ParseFloat(v, 64)
				if err == nil && (r.P < 0 || r.P > 1) {
					err = fmt.Errorf("probability out of [0, 1]")
				}
			case "n":
				r.N, err = strconv.Atoi(v)
				if err == nil && r.N < 0 {
					err = fmt.Errorf("negative count")
				}
			case "delay":
				r.Delay, err = time.ParseDuration(v)
				if err == nil && r.Delay < 0 {
					err = fmt.Errorf("negative delay")
				}
			default:
				err = fmt.Errorf("unknown option")
			}
			if err != nil {
				return fmt.Errorf("fault: option %q in clause %q: %v", opt, clause, err)
			}
		}
		if r.P == 0 && r.N == 0 && r.Delay == 0 {
			return fmt.Errorf("fault: clause %q arms nothing (want p=, n= or delay=)", clause)
		}
		in.Arm(r)
	}
	return nil
}

// Default is the process-wide injector the production seams consult via
// the package-level Inject; the -fault flags on bpserve and bpworker
// configure it.
var Default = New(1)

// Inject consults the Default injector.
func Inject(site string) error { return Default.Inject(site) }

// Configure arms the Default injector from a spec string.
func Configure(spec string) error { return Default.Configure(spec) }

// Reset disarms the Default injector (tests that configure it must
// clean up after themselves).
func Reset() { Default.Reset() }
