package fault

import (
	"errors"
	"testing"
	"time"
)

func TestDisarmedInjectsNothing(t *testing.T) {
	in := New(1)
	for i := 0; i < 1000; i++ {
		if err := in.Inject("rpc.lease"); err != nil {
			t.Fatalf("disarmed injector failed: %v", err)
		}
	}
	if in.Hits("rpc.lease") != 0 {
		t.Fatal("disarmed injector counted hits")
	}
}

func TestCountRule(t *testing.T) {
	in := New(1)
	in.Arm(Rule{Site: "store.put-artifact", N: 3})
	var failed int
	for i := 0; i < 10; i++ {
		if err := in.Inject("store.put-artifact"); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("injected error does not wrap ErrInjected: %v", err)
			}
			failed++
		}
	}
	if failed != 3 {
		t.Fatalf("n=3 rule injected %d failures", failed)
	}
	if in.Injected("store.put-artifact") != 3 || in.Hits("store.put-artifact") != 10 {
		t.Fatalf("counters: injected=%d hits=%d",
			in.Injected("store.put-artifact"), in.Hits("store.put-artifact"))
	}
}

func TestProbabilityRuleIsDeterministic(t *testing.T) {
	seq := func(seed int64) []bool {
		in := New(seed)
		in.Arm(Rule{Site: "rpc.*", P: 0.3})
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.Inject("rpc.lease") != nil
		}
		return out
	}
	a, b := seq(42), seq(42)
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
		if a[i] {
			fails++
		}
	}
	// 200 draws at p=0.3: anything in [20, 100] is a sane realization;
	// the point is a nonzero, non-total failure rate.
	if fails < 20 || fails > 100 {
		t.Fatalf("p=0.3 injected %d/200 failures", fails)
	}
	c := seq(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestPrefixMatchAndFirstRuleWins(t *testing.T) {
	in := New(1)
	in.Arm(Rule{Site: "rpc.lease", N: 1})
	in.Arm(Rule{Site: "rpc.*", P: 1})
	if err := in.Inject("rpc.lease"); err == nil {
		t.Fatal("exact rule (n=1) should fail the first hit")
	}
	if err := in.Inject("rpc.lease"); err != nil {
		t.Fatalf("exact rule exhausted, but hit still failed (prefix rule must not shadow): %v", err)
	}
	if err := in.Inject("rpc.result"); err == nil {
		t.Fatal("prefix rule p=1 should fail rpc.result")
	}
	if err := in.Inject("store.wal.append"); err != nil {
		t.Fatalf("unmatched site failed: %v", err)
	}
}

func TestConfigureSpec(t *testing.T) {
	in := New(1)
	if err := in.Configure("seed=7; rpc.lease:p=0.5 ; store.put-artifact:n=2,delay=1ms"); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	if err := in.Inject("store.put-artifact"); err == nil {
		t.Fatal("n=2 rule passed its first hit")
	}
	if time.Since(t0) < time.Millisecond {
		t.Fatal("delay=1ms did not sleep")
	}
	// Reconfiguring replaces everything.
	if err := in.Configure(""); err != nil {
		t.Fatal(err)
	}
	if err := in.Inject("store.put-artifact"); err != nil {
		t.Fatalf("reset injector still armed: %v", err)
	}

	for _, bad := range []string{
		"rpc.lease",            // no options
		"rpc.lease:p=2",        // probability out of range
		"rpc.lease:n=-1",       // negative count
		"rpc.lease:wat=1",      // unknown option
		"rpc.lease:p",          // malformed option
		":p=0.5",               // empty site
		"seed=x",               // malformed seed
		"rpc.lease:delay=-1ms", // negative delay
	} {
		if err := in.Configure(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}

func TestPureLatencyRule(t *testing.T) {
	in := New(1)
	in.Arm(Rule{Site: "rpc.fetch", Delay: 2 * time.Millisecond})
	t0 := time.Now()
	if err := in.Inject("rpc.fetch"); err != nil {
		t.Fatalf("latency-only rule failed the hit: %v", err)
	}
	if time.Since(t0) < 2*time.Millisecond {
		t.Fatal("latency rule did not delay")
	}
}
