package tracefile

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"barrierpoint/internal/trace"
	"barrierpoint/internal/workload"
)

// drainAny is drain for arbitrary streams (the cache returns blocksStream,
// not chunkStream).
func drainAny(s trace.Stream) []trace.BlockExec {
	var out []trace.BlockExec
	var be trace.BlockExec
	for s.Next(&be) {
		cp := be
		cp.Accs = append([]trace.Access(nil), be.Accs...)
		out = append(out, cp)
	}
	return out
}

// TestRegionCacheBitIdentical replays every region of a recorded workload
// through the cache and compares block-for-block with the uncached stream,
// for both raw and gzip traces, twice (cold then warm).
func TestRegionCacheBitIdentical(t *testing.T) {
	for _, gz := range []bool{false, true} {
		t.Run(fmt.Sprintf("gzip=%v", gz), func(t *testing.T) {
			prog := workload.New("npb-ft", 4, workload.WithScale(0.05))
			f := record(t, prog, WithGzip(gz))
			c := NewRegionCache(64 << 20)
			cp := c.Program(f, "test-trace-id")

			if cp.Name() != f.Name() || cp.Threads() != f.Threads() || cp.Regions() != f.Regions() {
				t.Fatal("cached program metadata differs")
			}
			for pass := 0; pass < 2; pass++ {
				for r := 0; r < f.Regions(); r++ {
					for tid := 0; tid < f.Threads(); tid++ {
						want := drainAny(f.Region(r).Thread(tid))
						got := drainAny(cp.Region(r).Thread(tid))
						if len(got) != len(want) {
							t.Fatalf("pass %d region %d thread %d: %d blocks, want %d", pass, r, tid, len(got), len(want))
						}
						for i := range want {
							if want[i].Block != got[i].Block || want[i].Instrs != got[i].Instrs ||
								want[i].Branch != got[i].Branch || want[i].Taken != got[i].Taken ||
								len(want[i].Accs) != len(got[i].Accs) {
								t.Fatalf("pass %d region %d thread %d block %d differs", pass, r, tid, i)
							}
							for j := range want[i].Accs {
								if want[i].Accs[j] != got[i].Accs[j] {
									t.Fatalf("pass %d region %d thread %d block %d acc %d differs", pass, r, tid, i, j)
								}
							}
						}
					}
				}
			}
			st := c.Stats()
			if st.Hits == 0 || st.Misses != int64(f.Regions()) {
				t.Errorf("stats = %+v, want %d misses and some hits", st, f.Regions())
			}
		})
	}
}

// TestRegionCacheSharedAcrossOpens proves the content keying: two separate
// File instances over the same bytes share entries when given the same id.
func TestRegionCacheSharedAcrossOpens(t *testing.T) {
	prog := workload.New("npb-is", 2, workload.WithScale(0.05))
	f1 := record(t, prog)
	f2 := record(t, prog)
	c := NewRegionCache(64 << 20)
	p1 := c.Program(f1, "same-id")
	p2 := c.Program(f2, "same-id")
	drainAny(p1.Region(0).Thread(0))
	drainAny(p2.Region(0).Thread(0))
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want exactly one decode shared across opens", st)
	}
}

// TestRegionCacheEviction bounds the cache below the trace size and checks
// the byte budget holds while replay stays correct.
func TestRegionCacheEviction(t *testing.T) {
	prog := workload.New("npb-ft", 4, workload.WithScale(0.1))
	f := record(t, prog)

	// Measure one region's decoded size to pick a budget of ~2 regions.
	_, size, err := decodeRegion(f, 0, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	c := NewRegionCache(2*size + size/2)
	cp := c.Program(f, "evict-test")
	for r := 0; r < f.Regions(); r++ {
		drainAny(cp.Region(r).Thread(0))
	}
	st := c.Stats()
	if st.Bytes > st.MaxBytes {
		t.Errorf("cache holds %d bytes over budget %d", st.Bytes, st.MaxBytes)
	}
	if st.Evictions == 0 {
		t.Error("no evictions despite undersized budget")
	}
	// Replay after heavy eviction is still correct.
	want := drainAny(f.Region(0).Thread(1))
	got := drainAny(cp.Region(0).Thread(1))
	if len(want) != len(got) {
		t.Fatalf("post-eviction replay differs: %d vs %d blocks", len(got), len(want))
	}
}

// countingProgram counts Thread calls that reach the underlying program,
// to observe how much decode and stream work the cache performs.
type countingProgram struct {
	trace.Program
	threadCalls int
}

func (p *countingProgram) Region(i int) trace.Region {
	return countingRegion{p: p, r: p.Program.Region(i)}
}

type countingRegion struct {
	p *countingProgram
	r trace.Region
}

func (r countingRegion) Thread(tid int) trace.Stream {
	r.p.threadCalls++
	return r.r.Thread(tid)
}

// TestRegionCacheOversizedRegion: a region larger than the whole budget is
// never materialized (the decode aborts at the budget) and never retained;
// every replay streams directly instead of re-attempting the decode.
func TestRegionCacheOversizedRegion(t *testing.T) {
	prog := workload.New("npb-is", 2, workload.WithScale(0.05))
	f := record(t, prog)
	under := &countingProgram{Program: f}
	c := NewRegionCache(1) // 1 byte: nothing fits
	cp := c.Program(under, "tiny")
	want := drainAny(f.Region(0).Thread(0))
	got := drainAny(cp.Region(0).Thread(0))
	if len(want) != len(got) {
		t.Fatal("oversized region replay differs")
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("oversized region retained: %+v", st)
	}
	for pass := 0; pass < 2; pass++ {
		for tid := 0; tid < f.Threads(); tid++ {
			w := drainAny(f.Region(0).Thread(tid))
			g := drainAny(cp.Region(0).Thread(tid))
			if len(w) != len(g) {
				t.Fatalf("pass %d thread %d: %d blocks, want %d", pass, tid, len(g), len(w))
			}
		}
	}
	// One decode attempt ever, aborted inside thread 0 (1 underlying
	// call), then one direct stream per replay (the first included) — not
	// a fresh decode attempt per Thread call.
	if want := 1 + 1 + 2*f.Threads(); under.threadCalls != want {
		t.Errorf("underlying Thread calls = %d, want %d (one aborted decode, then direct streams)", under.threadCalls, want)
	}
}

// TestRegionCacheConcurrent hammers one cache from many goroutines (run
// under -race) and checks single-flight decoding: every region is decoded
// at most once while concurrent replays are in flight.
func TestRegionCacheConcurrent(t *testing.T) {
	prog := workload.New("npb-ft", 4, workload.WithScale(0.05))
	f := record(t, prog)
	c := NewRegionCache(256 << 20)
	cp := c.Program(f, "conc")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < f.Regions(); r++ {
				for tid := 0; tid < f.Threads(); tid++ {
					n := len(drainAny(cp.Region(r).Thread(tid)))
					if tid == 0 && n == 0 {
						t.Errorf("goroutine %d region %d: empty replay", g, r)
					}
					_ = n
				}
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Misses != int64(f.Regions()) {
		t.Errorf("misses = %d, want %d (single-flight decode)", st.Misses, f.Regions())
	}
}

// errStream reports an error after one block, mimicking a corrupt chunk.
type errStream struct{ n int }

func (s *errStream) Next(be *trace.BlockExec) bool {
	if s.n > 0 {
		return false
	}
	s.n++
	*be = trace.BlockExec{Block: 1, Instrs: 1}
	return true
}
func (s *errStream) Err() error { return errors.New("synthetic corruption") }

type errRegion struct{}

func (errRegion) Thread(int) trace.Stream { return &errStream{} }

type errProgram struct{}

func (errProgram) Name() string            { return "err" }
func (errProgram) Threads() int            { return 1 }
func (errProgram) Regions() int            { return 1 }
func (errProgram) Region(int) trace.Region { return errRegion{} }

// TestRegionCacheDecodeErrorFallsBack: failed decodes are not cached and
// replay falls back to the underlying stream, preserving Err reporting;
// the failure is remembered, so later replays skip the decode attempt.
func TestRegionCacheDecodeErrorFallsBack(t *testing.T) {
	under := &countingProgram{Program: errProgram{}}
	c := NewRegionCache(1 << 20)
	cp := c.Program(under, "bad")
	for i := 0; i < 2; i++ {
		s := cp.Region(0).Thread(0)
		drainAny(s)
		es, ok := s.(interface{ Err() error })
		if !ok || es.Err() == nil {
			t.Errorf("replay %d: fallback stream lost its Err reporting", i)
		}
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("failed decode retained: %+v", st)
	}
	// First replay: one decode attempt plus the direct fallback stream;
	// second replay: direct stream only, no re-decode.
	if under.threadCalls != 3 {
		t.Errorf("underlying Thread calls = %d, want 3 (decode once, then stream directly)", under.threadCalls)
	}
}

// TestCachedReplayZeroAllocs is the allocation-regression cap of the
// ISSUE: a warm cached replay — stream handle included — performs zero
// allocations.
func TestCachedReplayZeroAllocs(t *testing.T) {
	prog := workload.New("npb-is", 2, workload.WithScale(0.05))
	f := record(t, prog)
	c := NewRegionCache(256 << 20)
	cp := c.Program(f, "alloc-test")
	var be trace.BlockExec
	warm := func() {
		s := cp.Region(0).Thread(0)
		for s.Next(&be) {
		}
	}
	warm() // populate the cache and the stream pool
	allocs := testing.AllocsPerRun(200, warm)
	if allocs >= 1 {
		t.Errorf("warm cached replay allocates %.1f times per run, want 0", allocs)
	}
}

// TestChunkStreamSteadyStateAllocs caps the cache-miss decode path: once a
// stream's scratch buffers have grown, each Next is allocation-free.
func TestChunkStreamSteadyStateAllocs(t *testing.T) {
	prog := workload.New("npb-is", 2, workload.WithScale(0.05))
	for _, gz := range []bool{false, true} {
		f := record(t, prog, WithGzip(gz))
		s, err := f.stream(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		var be trace.BlockExec
		if !s.Next(&be) { // grow scratch on the first block
			t.Fatal("empty stream")
		}
		allocs := testing.AllocsPerRun(500, func() {
			if !s.done {
				s.Next(&be)
			}
		})
		if allocs >= 1 {
			t.Errorf("gzip=%v: steady-state Next allocates %.1f times, want 0", gz, allocs)
		}
		if s.Err() != nil {
			t.Fatal(s.Err())
		}
	}
}
