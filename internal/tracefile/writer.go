package tracefile

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"barrierpoint/internal/trace"
)

// Options configures recording.
type Options struct {
	// Gzip compresses every chunk independently. Files shrink by roughly
	// the entropy of the access patterns; random access is preserved
	// because no chunk depends on another.
	Gzip bool
	// Version selects the on-disk format: 2 (default) writes the
	// streamable layout, 1 writes the legacy layout. Version 1 exists for
	// compatibility tests only; it replays identically but cannot be
	// profiled during upload.
	Version int
}

// Option mutates recording Options.
type Option func(*Options)

// WithGzip enables or disables per-chunk gzip compression.
func WithGzip(on bool) Option {
	return func(o *Options) { o.Gzip = on }
}

// WithVersion selects the format version (1 or 2). Use only to produce
// legacy files for compatibility testing; new recordings should stay on
// the default.
func WithVersion(v int) Option {
	return func(o *Options) { o.Version = v }
}

// Record writes p to w in the binary trace format (see doc.go). It is a
// single forward pass: every region's thread streams are drained in order,
// so w never needs to seek and memory stays O(largest chunk encoding).
// The default version 2 layout is self-framing on the way in, so a reader
// on the other end of a pipe can decode regions as they arrive
// (DecodeStream) while the trailing index still serves random access.
func Record(w io.Writer, p trace.Program, opts ...Option) error {
	o := Options{Version: 2}
	for _, f := range opts {
		f(&o)
	}
	if o.Version != 1 && o.Version != 2 {
		return fmt.Errorf("tracefile: unsupported format version %d", o.Version)
	}
	threads, regions := p.Threads(), p.Regions()
	if threads <= 0 {
		return fmt.Errorf("tracefile: program %q has %d threads", p.Name(), threads)
	}

	var flags byte
	if o.Gzip {
		flags |= flagGzip
	}
	meta := binary.AppendUvarint(nil, uint64(len(p.Name())))
	meta = append(meta, p.Name()...)
	meta = binary.AppendUvarint(meta, uint64(threads))
	meta = binary.AppendUvarint(meta, uint64(regions))
	meta = append(meta, flags)

	hdr := magicV1
	if o.Version == 2 {
		hdr = magicV2
	}
	if _, err := io.WriteString(w, hdr); err != nil {
		return fmt.Errorf("tracefile: writing header: %w", err)
	}
	offset := int64(magicLen)
	if o.Version == 2 {
		// Streaming header: the footer metadata, up front, so a pipe
		// consumer knows the trace's shape before the first chunk.
		if _, err := w.Write(meta); err != nil {
			return fmt.Errorf("tracefile: writing header: %w", err)
		}
		offset += int64(len(meta))
	}

	lengths := make([]uint64, 0, regions*threads)
	var raw []byte // reused chunk encoding buffer
	var zbuf bytes.Buffer
	var zw *gzip.Writer
	if o.Gzip {
		zw = gzip.NewWriter(&zbuf)
	}
	var pfx [binary.MaxVarintLen64]byte
	for r := 0; r < regions; r++ {
		region := p.Region(r)
		for t := 0; t < threads; t++ {
			var err error
			raw, err = encodeChunk(raw[:0], region.Thread(t))
			if err != nil {
				return fmt.Errorf("tracefile: encoding region %d thread %d: %w", r, t, err)
			}
			chunk := raw
			if o.Gzip {
				zbuf.Reset()
				zw.Reset(&zbuf)
				if _, err := zw.Write(raw); err != nil {
					return fmt.Errorf("tracefile: compressing region %d thread %d: %w", r, t, err)
				}
				if err := zw.Close(); err != nil {
					return fmt.Errorf("tracefile: compressing region %d thread %d: %w", r, t, err)
				}
				chunk = zbuf.Bytes()
			}
			if o.Version == 2 {
				n := binary.PutUvarint(pfx[:], uint64(len(chunk)))
				if _, err := w.Write(pfx[:n]); err != nil {
					return fmt.Errorf("tracefile: writing region %d thread %d: %w", r, t, err)
				}
				offset += int64(n)
			}
			if _, err := w.Write(chunk); err != nil {
				return fmt.Errorf("tracefile: writing region %d thread %d: %w", r, t, err)
			}
			lengths = append(lengths, uint64(len(chunk)))
			offset += int64(len(chunk))
		}
	}

	// Trailing index: footer (the same metadata block plus the payload
	// lengths), its offset, and the trailer magic.
	footer := meta
	for _, n := range lengths {
		footer = binary.AppendUvarint(footer, n)
	}
	if _, err := w.Write(footer); err != nil {
		return fmt.Errorf("tracefile: writing footer: %w", err)
	}
	var tail [tailLen]byte
	binary.LittleEndian.PutUint64(tail[:8], uint64(offset))
	trailer := trailerMagicV1
	if o.Version == 2 {
		trailer = trailerMagicV2
	}
	copy(tail[8:], trailer)
	if _, err := w.Write(tail[:]); err != nil {
		return fmt.Errorf("tracefile: writing trailer: %w", err)
	}
	return nil
}

// RecordFile records p into a new file at path, replacing any existing
// file. On error the partial file is removed.
func RecordFile(path string, p trace.Program, opts ...Option) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("tracefile: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	if err := Record(bw, p, opts...); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := bw.Flush(); err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		os.Remove(path)
		return fmt.Errorf("tracefile: %w", err)
	}
	return nil
}
