package tracefile

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"barrierpoint/internal/trace"
)

// Options configures recording.
type Options struct {
	// Gzip compresses every chunk independently. Files shrink by roughly
	// the entropy of the access patterns; random access is preserved
	// because no chunk depends on another.
	Gzip bool
}

// Option mutates recording Options.
type Option func(*Options)

// WithGzip enables or disables per-chunk gzip compression.
func WithGzip(on bool) Option {
	return func(o *Options) { o.Gzip = on }
}

// Record writes p to w in the binary trace format (see doc.go). It is a
// single forward pass: every region's thread streams are drained in order,
// so w never needs to seek and memory stays O(largest chunk encoding).
func Record(w io.Writer, p trace.Program, opts ...Option) error {
	var o Options
	for _, f := range opts {
		f(&o)
	}
	threads, regions := p.Threads(), p.Regions()
	if threads <= 0 {
		return fmt.Errorf("tracefile: program %q has %d threads", p.Name(), threads)
	}

	if _, err := io.WriteString(w, magic); err != nil {
		return fmt.Errorf("tracefile: writing header: %w", err)
	}
	offset := int64(magicLen)

	lengths := make([]uint64, 0, regions*threads)
	var raw []byte // reused chunk encoding buffer
	var zbuf bytes.Buffer
	var zw *gzip.Writer
	if o.Gzip {
		zw = gzip.NewWriter(&zbuf)
	}
	for r := 0; r < regions; r++ {
		region := p.Region(r)
		for t := 0; t < threads; t++ {
			var err error
			raw, err = encodeChunk(raw[:0], region.Thread(t))
			if err != nil {
				return fmt.Errorf("tracefile: encoding region %d thread %d: %w", r, t, err)
			}
			chunk := raw
			if o.Gzip {
				zbuf.Reset()
				zw.Reset(&zbuf)
				if _, err := zw.Write(raw); err != nil {
					return fmt.Errorf("tracefile: compressing region %d thread %d: %w", r, t, err)
				}
				if err := zw.Close(); err != nil {
					return fmt.Errorf("tracefile: compressing region %d thread %d: %w", r, t, err)
				}
				chunk = zbuf.Bytes()
			}
			if _, err := w.Write(chunk); err != nil {
				return fmt.Errorf("tracefile: writing region %d thread %d: %w", r, t, err)
			}
			lengths = append(lengths, uint64(len(chunk)))
			offset += int64(len(chunk))
		}
	}

	// Trailing index: footer, its offset, and the trailer magic.
	footer := binary.AppendUvarint(nil, uint64(len(p.Name())))
	footer = append(footer, p.Name()...)
	footer = binary.AppendUvarint(footer, uint64(threads))
	footer = binary.AppendUvarint(footer, uint64(regions))
	var flags byte
	if o.Gzip {
		flags |= flagGzip
	}
	footer = append(footer, flags)
	for _, n := range lengths {
		footer = binary.AppendUvarint(footer, n)
	}
	if _, err := w.Write(footer); err != nil {
		return fmt.Errorf("tracefile: writing footer: %w", err)
	}
	var tail [tailLen]byte
	binary.LittleEndian.PutUint64(tail[:8], uint64(offset))
	copy(tail[8:], trailerMagic)
	if _, err := w.Write(tail[:]); err != nil {
		return fmt.Errorf("tracefile: writing trailer: %w", err)
	}
	return nil
}

// RecordFile records p into a new file at path, replacing any existing
// file. On error the partial file is removed.
func RecordFile(path string, p trace.Program, opts ...Option) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("tracefile: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	if err := Record(bw, p, opts...); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := bw.Flush(); err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		os.Remove(path)
		return fmt.Errorf("tracefile: %w", err)
	}
	return nil
}
