package tracefile

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"barrierpoint/internal/profile"
	"barrierpoint/internal/signature"
	"barrierpoint/internal/trace"
	"barrierpoint/internal/workload"
)

// record writes p to a temp file and opens it back, failing the test on any
// error and closing the file at cleanup.
func record(t *testing.T, p trace.Program, opts ...Option) *File {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.bpt")
	if err := RecordFile(path, p, opts...); err != nil {
		t.Fatalf("RecordFile: %v", err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// drain collects every block of a stream, deep-copying Accs (streams reuse
// the backing array).
func drain(t *testing.T, s trace.Stream) []trace.BlockExec {
	t.Helper()
	var out []trace.BlockExec
	var be trace.BlockExec
	for s.Next(&be) {
		cp := be
		cp.Accs = append([]trace.Access(nil), be.Accs...)
		out = append(out, cp)
	}
	if cs, ok := s.(*chunkStream); ok && cs.Err() != nil {
		t.Fatalf("stream error: %v", cs.Err())
	}
	return out
}

// handBuilt exercises encoder edge cases the synthetic workloads do not:
// negative block deltas, backwards and huge address jumps, more than eight
// accesses per block (multi-byte write mask), zero-access blocks and all
// branch-flag combinations.
func handBuilt() *trace.SliceProgram {
	manyAccs := make([]trace.Access, 19)
	for i := range manyAccs {
		manyAccs[i] = trace.Access{Addr: uint64(i) * 0x1234567, Write: i%3 == 0}
	}
	return &trace.SliceProgram{
		ProgName:   "hand-built",
		NumThreads: 2,
		Rgns: []*trace.SliceRegion{
			{Threads: [][]trace.BlockExec{
				{
					{Block: 900, Instrs: 7, Branch: true, Taken: true,
						Accs: []trace.Access{{Addr: 1 << 45, Write: true}, {Addr: 64}}},
					{Block: 3, Instrs: 0, Branch: true, Taken: false}, // negative delta, no accesses
					{Block: 3, Instrs: 1, Accs: manyAccs},
				},
				nil, // thread 1 idle in region 0
			}},
			{Threads: [][]trace.BlockExec{
				nil,
				{{Block: 1, Instrs: 1000000, Accs: []trace.Access{{Addr: ^uint64(0) - 63}}}},
			}},
		},
	}
}

func TestRoundTripHandBuilt(t *testing.T) {
	for _, gz := range []bool{false, true} {
		p := handBuilt()
		f := record(t, p, WithGzip(gz))
		if f.Name() != p.Name() || f.Threads() != p.Threads() || f.Regions() != p.Regions() {
			t.Fatalf("gzip=%v: metadata = (%q,%d,%d), want (%q,%d,%d)", gz,
				f.Name(), f.Threads(), f.Regions(), p.Name(), p.Threads(), p.Regions())
		}
		if f.Gzipped() != gz {
			t.Errorf("Gzipped() = %v, want %v", f.Gzipped(), gz)
		}
		for r := 0; r < p.Regions(); r++ {
			for tid := 0; tid < p.Threads(); tid++ {
				got := drain(t, f.Region(r).Thread(tid))
				want := drain(t, p.Region(r).Thread(tid))
				if !reflect.DeepEqual(got, want) {
					t.Errorf("gzip=%v region %d thread %d:\n got %+v\nwant %+v", gz, r, tid, got, want)
				}
			}
		}
		if err := f.Verify(); err != nil {
			t.Errorf("Verify: %v", err)
		}
	}
}

func TestThreadRestartable(t *testing.T) {
	f := record(t, handBuilt())
	r := f.Region(0)
	first := drain(t, r.Thread(0))
	second := drain(t, r.Thread(0)) // Region.Thread restarts per contract
	if !reflect.DeepEqual(first, second) {
		t.Fatal("re-requested thread stream differs from first pass")
	}
}

func TestEmptyProgram(t *testing.T) {
	p := &trace.SliceProgram{ProgName: "empty", NumThreads: 3}
	f := record(t, p)
	if f.Regions() != 0 || f.Threads() != 3 || f.Name() != "empty" {
		t.Fatalf("metadata = (%q,%d,%d)", f.Name(), f.Threads(), f.Regions())
	}
}

func TestRecordRejectsZeroThreads(t *testing.T) {
	p := &trace.SliceProgram{ProgName: "bad"}
	if err := Record(&bytes.Buffer{}, p); err == nil {
		t.Fatal("Record accepted a 0-thread program")
	}
}

func TestRecordRejectsOversizedBlock(t *testing.T) {
	// The reader bounds per-block access counts at maxAccs; the writer
	// must refuse such blocks instead of recording a file that would
	// silently truncate on replay.
	p := &trace.SliceProgram{
		ProgName:   "huge",
		NumThreads: 1,
		Rgns: []*trace.SliceRegion{{Threads: [][]trace.BlockExec{
			{{Block: 1, Instrs: 1, Accs: make([]trace.Access, maxAccs+1)}},
		}}},
	}
	if err := Record(&bytes.Buffer{}, p); err == nil {
		t.Fatal("Record accepted a block with more than maxAccs accesses")
	}
}

// TestRoundTripSuiteSignatures is the round-trip property test over the
// whole workload suite: for every benchmark and several thread counts, the
// recorded-then-replayed program must produce byte-identical per-region
// profiles (BBVs, LDVs, instruction counts) and hence identical signature
// vectors.
func TestRoundTripSuiteSignatures(t *testing.T) {
	threadCounts := []int{8, 16}
	if testing.Short() {
		threadCounts = []int{8}
	}
	for wi, name := range workload.Names() {
		for _, threads := range threadCounts {
			t.Run(name+"/"+string(rune('0'+threads/8))+"sock", func(t *testing.T) {
				t.Parallel()
				prog := workload.New(name, threads, workload.WithScale(0.05))
				gz := (wi+threads)%2 == 0 // alternate compression across cases
				f := record(t, prog, WithGzip(gz))

				want := profile.Program(prog)
				got := profile.Program(f)
				if len(got) != len(want) {
					t.Fatalf("replay has %d region profiles, want %d", len(got), len(want))
				}
				for r := range want {
					if !reflect.DeepEqual(got[r], want[r]) {
						t.Fatalf("region %d profile differs after replay", r)
					}
				}

				// Signature vectors are a deterministic function of the
				// profiles (sorted flat construction), so identical
				// profiles must produce entry-for-entry identical SVs.
				wantSV, wantW := signature.BuildAll(want, signature.Default())
				gotSV, gotW := signature.BuildAll(got, signature.Default())
				if !reflect.DeepEqual(gotW, wantW) {
					t.Fatal("signature weights differ after replay")
				}
				for r := range wantSV {
					if len(gotSV[r]) != len(wantSV[r]) {
						t.Fatalf("region %d: SV has %d features, want %d", r, len(gotSV[r]), len(wantSV[r]))
					}
					for i, e := range wantSV[r] {
						g := gotSV[r][i]
						if g.Key != e.Key || math.Abs(g.Val-e.Val) > 1e-12 {
							t.Fatalf("region %d feature %#x: SV entry %+v, want %+v", r, e.Key, g, e)
						}
					}
				}
			})
		}
	}
}

func TestOpenErrors(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, data []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	var buf bytes.Buffer
	if err := Record(&buf, handBuilt()); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"too-short":   good[:10],
		"bad-magic":   append([]byte("XXTRACE1"), good[8:]...),
		"bad-trailer": append(append([]byte{}, good[:len(good)-1]...), 'X'),
		"truncated":   good[:len(good)-20],
	}
	// Footer offset pointing past the end.
	broken := append([]byte{}, good...)
	copy(broken[len(broken)-16:], []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	cases["bad-footer-offset"] = broken

	for name, data := range cases {
		if _, err := Open(write(name, data)); err == nil {
			t.Errorf("%s: Open succeeded on corrupt input", name)
		}
	}
	if _, err := Open(filepath.Join(dir, "does-not-exist")); err == nil {
		t.Error("Open succeeded on missing file")
	}
}

func TestVerifyDetectsChunkCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := Record(&buf, handBuilt(), WithGzip(true)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	intact, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the first chunk's deflate payload (the
	// first bytes are the gzip header, whose MTIME field is not checked).
	data[(intact.off[0]+intact.end[0])/2] ^= 0xff
	f, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatalf("NewReader: %v", err) // index itself is intact
	}
	if err := f.Verify(); err == nil {
		t.Fatal("Verify passed on corrupt chunk data")
	}
}

// TestReplayMemoryIsPerRegion asserts the acceptance criterion that
// replayed profiling allocates O(region) memory: draining one region of a
// recorded trace costs a bounded number of allocations no matter how many
// regions the file holds (34 for npb-ft vs 3601 for npb-sp — a 100x region
// count must not change per-region replay allocations materially).
func TestReplayMemoryIsPerRegion(t *testing.T) {
	allocsPerRegion := func(name string) float64 {
		prog := workload.New(name, 8, workload.WithScale(0.05))
		f := record(t, prog)
		var be trace.BlockExec
		return testing.AllocsPerRun(10, func() {
			for tid := 0; tid < f.Threads(); tid++ {
				s := f.Region(0).Thread(tid)
				for s.Next(&be) {
				}
			}
		})
	}
	small := allocsPerRegion("npb-ft") // 34 regions
	large := allocsPerRegion("npb-sp") // 3601 regions
	// Per-stream cost is a handful of fixed-size objects (section reader,
	// bufio buffer, stream state, access slice): ~5 allocs per thread.
	const maxPerThread = 16
	if small > 8*maxPerThread || large > 8*maxPerThread {
		t.Fatalf("region replay allocates too much: npb-ft %.0f, npb-sp %.0f allocs", small, large)
	}
	if large > 4*small+8 {
		t.Fatalf("replay allocations scale with program size: %.0f (34 regions) vs %.0f (3601 regions)", small, large)
	}
}

// BenchmarkReplayRegion measures streaming one recorded region off disk.
// Its allocs/op report is the benchmark evidence that replay memory is
// O(region): the figure is a small constant (bufio buffer + stream state
// per thread) and independent of the file's total region count.
func BenchmarkReplayRegion(b *testing.B) {
	prog := workload.New("npb-ft", 8, workload.WithScale(0.1))
	path := filepath.Join(b.TempDir(), "trace.bpt")
	if err := RecordFile(path, prog); err != nil {
		b.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	b.ReportAllocs()
	b.ResetTimer()
	var be trace.BlockExec
	for i := 0; i < b.N; i++ {
		r := f.Region(i % f.Regions())
		for tid := 0; tid < f.Threads(); tid++ {
			s := r.Thread(tid)
			for s.Next(&be) {
			}
		}
	}
}

func BenchmarkRecord(b *testing.B) {
	prog := workload.New("npb-ft", 8, workload.WithScale(0.1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Record(&buf, prog); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}
