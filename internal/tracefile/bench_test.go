package tracefile

import (
	"path/filepath"
	"testing"

	"barrierpoint/internal/trace"
	"barrierpoint/internal/workload"
)

// benchFile records a scaled npb-ft trace once per benchmark.
func benchFile(b *testing.B, gz bool) *File {
	b.Helper()
	path := filepath.Join(b.TempDir(), "bench.bptrace")
	prog := workload.New("npb-ft", 8, workload.WithScale(0.2))
	if err := RecordFile(path, prog, WithGzip(gz)); err != nil {
		b.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { f.Close() })
	return f
}

// replayRegion drains every thread of one region.
func replayRegion(r trace.Region, threads int) (blocks int) {
	var be trace.BlockExec
	for t := 0; t < threads; t++ {
		s := r.Thread(t)
		for s.Next(&be) {
			blocks++
		}
	}
	return blocks
}

// BenchmarkUncachedReplay is the cold path: one region streamed 8x, each
// replay re-reading and re-decoding its chunks from the file.
func BenchmarkUncachedReplay(b *testing.B) {
	f := benchFile(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for rep := 0; rep < 8; rep++ {
			if replayRegion(f.Region(3), f.Threads()) == 0 {
				b.Fatal("empty region")
			}
		}
	}
}

// BenchmarkRegionCacheReplay is the identical workload through a warm
// RegionCache: the region is decoded once outside the timed section, then
// every replay is served zero-copy from memory. The ratio to
// BenchmarkUncachedReplay is the repeated-replay speedup reported in
// BENCH_5.json.
func BenchmarkRegionCacheReplay(b *testing.B) {
	f := benchFile(b, true)
	c := NewRegionCache(0)
	p := c.Program(f, "bench-trace")
	if replayRegion(p.Region(3), f.Threads()) == 0 { // warm the cache
		b.Fatal("empty region")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for rep := 0; rep < 8; rep++ {
			replayRegion(p.Region(3), f.Threads())
		}
	}
}
