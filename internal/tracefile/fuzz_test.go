package tracefile

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"barrierpoint/internal/trace"
	"barrierpoint/internal/workload"
)

// The fuzz targets guard the reader's promise: arbitrary bytes — a
// corrupted trailing index, truncated chunks, bad varints, hostile chunk
// counts — must produce an error (or a truncated stream with Err set),
// never a panic or a pathological allocation. Seeds are recorded example
// traces plus deliberately damaged variants steering the fuzzer at the
// index- and chunk-parsing code; `go test -run TestUpdateFuzzCorpus
// -update-corpus` rewrites the committed corpus under testdata/fuzz.

// fuzzSeeds returns recorded example traces: the hand-built edge-case
// program (plain and gzip) and a small real workload recording.
func fuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	var seeds [][]byte
	rec := func(p trace.Program, opts ...Option) {
		var buf bytes.Buffer
		if err := Record(&buf, p, opts...); err != nil {
			tb.Fatalf("recording seed: %v", err)
		}
		seeds = append(seeds, buf.Bytes())
	}
	rec(handBuilt())
	rec(handBuilt(), WithGzip(true))
	rec(handBuilt(), WithVersion(1))
	rec(handBuilt(), WithGzip(true), WithVersion(1))
	rec(workload.New("npb-is", 8, workload.WithScale(0.01)))
	return seeds
}

// corrupt derives damaged variants of a valid trace: truncations that cut
// chunks and the trailing index, and byte flips in the trailer offset,
// the footer varints and the first chunk.
func corrupt(seed []byte) [][]byte {
	if len(seed) < magicLen+tailLen+8 {
		return nil
	}
	var out [][]byte
	for _, n := range []int{len(seed) / 2, len(seed) - 1, len(seed) - tailLen, magicLen + 1} {
		if n > 0 && n < len(seed) {
			out = append(out, seed[:n])
		}
	}
	flip := func(off int, mask byte) {
		b := append([]byte(nil), seed...)
		b[off] ^= mask
		out = append(out, b)
	}
	flip(len(seed)-tailLen, 0xff)   // trailer footer-offset low byte
	flip(len(seed)-tailLen-1, 0x80) // last footer byte (a chunk-length varint)
	flip(len(seed)-tailLen-2, 0xff) // deeper footer varint damage
	flip(magicLen, 0xff)            // first chunk byte (decode-time corruption)
	flip(magicLen+1, 0x80)          // varint continuation bit inside a chunk
	return out
}

func allSeeds(tb testing.TB) [][]byte {
	var all [][]byte
	for _, s := range fuzzSeeds(tb) {
		all = append(all, s)
		all = append(all, corrupt(s)...)
	}
	return all
}

// FuzzOpen hammers the index parser: NewReader must reject damaged input
// with an error, never panic, and accepted files must report sane
// metadata.
func FuzzOpen(f *testing.F) {
	for _, s := range allSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tf, err := NewReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return // rejected: the only acceptable failure mode
		}
		if tf.Threads() <= 0 {
			t.Fatalf("accepted file with %d threads", tf.Threads())
		}
		if tf.Regions() < 0 {
			t.Fatalf("accepted file with %d regions", tf.Regions())
		}
	})
}

// FuzzReplay goes further: any file the reader accepts is fully decoded,
// chunk by chunk. Corrupt chunk contents must surface as stream errors
// (or clean truncation), never as panics or unbounded allocations.
func FuzzReplay(f *testing.F) {
	for _, s := range allSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tf, err := NewReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		var be trace.BlockExec
		for r := 0; r < tf.Regions(); r++ {
			region := tf.Region(r)
			for tid := 0; tid < tf.Threads(); tid++ {
				s := region.Thread(tid)
				for s.Next(&be) {
					if len(be.Accs) > maxAccs {
						t.Fatalf("region %d thread %d: block with %d accesses escaped the cap", r, tid, len(be.Accs))
					}
				}
				// A decode error is fine; it just must be reported, not
				// swallowed by a panic.
				_ = s.(*chunkStream).Err()
			}
		}
	})
}

// FuzzDecodeStream covers the incremental path: hostile bytes fed to the
// streaming decoder must error out (or drain, for v1 magic), never panic
// or allocate unboundedly, and any region it does deliver must replay
// without panicking.
func FuzzDecodeStream(f *testing.F) {
	for _, s := range allSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var be trace.BlockExec
		_, _ = DecodeStream(bytes.NewReader(data), func(rc RegionChunks) error {
			region := rc.Region()
			for tid := range rc.Chunks {
				s := region.Thread(tid)
				for s.Next(&be) {
					if len(be.Accs) > maxAccs {
						t.Fatalf("region %d thread %d: block with %d accesses escaped the cap", rc.Index, tid, len(be.Accs))
					}
				}
			}
			return nil
		})
	})
}

var updateCorpus = flag.Bool("update-corpus", false, "rewrite the committed fuzz seed corpus under testdata/fuzz")

// TestUpdateFuzzCorpus regenerates the committed seed corpus (in the Go
// fuzzing corpus-file encoding) from the recorded example traces, so CI
// fuzz smoke runs start from meaningful inputs even before any local
// fuzzing cache exists. Run with -update-corpus to rewrite.
func TestUpdateFuzzCorpus(t *testing.T) {
	if !*updateCorpus {
		t.Skip("run with -update-corpus to rewrite testdata/fuzz")
	}
	// The committed corpus stays lean: every recorded seed, but corrupted
	// variants only of the small hand-built traces (the fuzz targets
	// f.Add the full variant set in-memory anyway).
	seeds := fuzzSeeds(t)
	lean := append([][]byte(nil), seeds...)
	for _, s := range seeds[:4] {
		lean = append(lean, corrupt(s)...)
	}
	for _, target := range []string{"FuzzOpen", "FuzzReplay", "FuzzDecodeStream"} {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, s := range lean {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(s)))
			path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}
