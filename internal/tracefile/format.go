package tracefile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"barrierpoint/internal/trace"
)

// File format constants; see doc.go for the layout. Version 2 adds a
// streaming header after the magic and an inline uvarint length prefix
// before every chunk, so consumers can decode region-by-region as bytes
// arrive; version 1 remains fully readable.
const (
	magicV1        = "BPTRACE1"
	trailerMagicV1 = "BPTIDX1\n"
	magicV2        = "BPTRACE2"
	trailerMagicV2 = "BPTIDX2\n"
	magicLen       = 8
	tailLen        = 16 // uint64 footer offset + trailer magic

	flagGzip = 1 << 0

	// maxAccs bounds the per-block access count a reader will accept,
	// protecting against pathological allocations from corrupt headers.
	maxAccs = 1 << 20
)

// encodeChunk appends the encoding of one thread stream to buf and returns
// the extended slice. Delta predictors reset per chunk so that every chunk
// decodes independently. Blocks exceeding maxAccs are rejected here, at
// record time: the reader enforces the same bound, and a file that records
// but silently truncates on replay would break the bit-for-bit guarantee.
func encodeChunk(buf []byte, s trace.Stream) ([]byte, error) {
	var (
		prevBlock int64
		prevAddr  uint64
		be        trace.BlockExec
	)
	for s.Next(&be) {
		if len(be.Accs) > maxAccs {
			return nil, fmt.Errorf("block %d has %d accesses (max %d)", be.Block, len(be.Accs), maxAccs)
		}
		hdr := uint64(len(be.Accs)) << 2
		if be.Branch {
			hdr |= 2
		}
		if be.Taken {
			hdr |= 1
		}
		buf = binary.AppendUvarint(buf, hdr)
		buf = binary.AppendVarint(buf, int64(be.Block)-prevBlock)
		prevBlock = int64(be.Block)
		buf = binary.AppendUvarint(buf, uint64(be.Instrs))
		if len(be.Accs) > 0 {
			var mask byte
			for i, a := range be.Accs {
				if a.Write {
					mask |= 1 << (i % 8)
				}
				if i%8 == 7 {
					buf = append(buf, mask)
					mask = 0
				}
			}
			if len(be.Accs)%8 != 0 {
				buf = append(buf, mask)
			}
			for _, a := range be.Accs {
				buf = binary.AppendVarint(buf, int64(a.Addr-prevAddr))
				prevAddr = a.Addr
			}
		}
	}
	return buf, nil
}

// chunkStream decodes one chunk back into a trace.Stream. It reads lazily
// from r (a bounded view of the file, already decompressed if needed), so
// its memory footprint is one bufio buffer regardless of chunk size.
type chunkStream struct {
	br        *bufio.Reader
	cr        *chunkReader // pooled readers, returned when the stream ends
	prevBlock int64
	prevAddr  uint64
	accs      []trace.Access
	writeMask []byte
	err       error
	done      bool
}

func newChunkStream(r io.Reader) *chunkStream {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	return &chunkStream{br: br}
}

// Next implements trace.Stream. The Accs backing array is reused between
// calls, as the Stream contract allows. Decoding errors terminate the
// stream and are reported by Err.
func (s *chunkStream) Next(be *trace.BlockExec) bool {
	if s.done {
		return false
	}
	hdr, err := binary.ReadUvarint(s.br)
	if err != nil {
		s.done = true
		if err != io.EOF { // EOF at a record boundary is the clean end
			s.fail(err)
		} else {
			s.releaseReader()
		}
		return false
	}
	naccs := hdr >> 2
	if naccs > maxAccs {
		s.fail(fmt.Errorf("block declares %d accesses (max %d)", naccs, maxAccs))
		return false
	}
	delta, err := binary.ReadVarint(s.br)
	if err != nil {
		s.fail(err)
		return false
	}
	s.prevBlock += delta
	instrs, err := binary.ReadUvarint(s.br)
	if err != nil {
		s.fail(err)
		return false
	}
	*be = trace.BlockExec{
		Block:  int(s.prevBlock),
		Instrs: int(instrs),
		Branch: hdr&2 != 0,
		Taken:  hdr&1 != 0,
	}
	if naccs == 0 {
		be.Accs = nil
		return true
	}
	maskLen := int(naccs+7) / 8
	if cap(s.writeMask) < maskLen {
		s.writeMask = make([]byte, maskLen)
	}
	mask := s.writeMask[:maskLen]
	if _, err := io.ReadFull(s.br, mask); err != nil {
		s.fail(err)
		return false
	}
	if cap(s.accs) < int(naccs) {
		s.accs = make([]trace.Access, naccs)
	}
	accs := s.accs[:naccs]
	for i := range accs {
		d, err := binary.ReadVarint(s.br)
		if err != nil {
			s.fail(err)
			return false
		}
		s.prevAddr += uint64(d)
		accs[i] = trace.Access{
			Addr:  s.prevAddr,
			Write: mask[i/8]&(1<<(i%8)) != 0,
		}
	}
	be.Accs = accs
	return true
}

func (s *chunkStream) fail(err error) {
	s.done = true
	if s.err == nil {
		s.err = fmt.Errorf("tracefile: corrupt chunk: %w", err)
	}
	s.releaseReader()
}

// releaseReader returns the pooled chunk readers once the stream has no
// further use for them (clean EOF or decode failure). The stream object
// itself — including the Err state — stays valid for the caller.
func (s *chunkStream) releaseReader() {
	if s.cr != nil {
		chunkReaderPool.Put(s.cr)
		s.cr = nil
		s.br = nil
	}
}

// Err reports the first decoding error encountered, if any. A truncated or
// corrupt chunk ends the stream early; callers that need integrity
// guarantees should check Err after draining (File.Verify does).
func (s *chunkStream) Err() error { return s.err }

var _ trace.Stream = (*chunkStream)(nil)
