package tracefile

import (
	"container/list"
	"errors"
	"sync"
	"time"
	"unsafe"

	"barrierpoint/internal/trace"
)

// DefaultRegionCacheBytes is the default RegionCache budget: 256 MiB of
// decoded blocks, a few dozen scaled-down regions or a handful of
// full-size ones.
const DefaultRegionCacheBytes int64 = 256 << 20

// RegionCache is a bounded, content-keyed LRU cache of fully decoded
// inter-barrier regions. Replaying a region from a recorded trace costs a
// gunzip plus a varint decode of every chunk, and the pipeline replays the
// same regions many times over — warmup capture walks the prefix before
// every selected point, estimate and ground-truth jobs revisit identical
// regions, and campaign grids sweep many configurations over one trace.
// The cache pays the decode once and serves every later replay from
// memory as a zero-copy, zero-allocation trace.Stream.
//
// # Keys and identity
//
// Entries are keyed by (id, region index), where id is a caller-chosen
// content identity for the whole trace — by convention the store's
// SHA-256 trace key. Because the id names the trace bytes, any two Files
// opened over byte-identical traces (separate jobs, separate opens, the
// same store) share cache entries. Callers without a content key must
// pass an id unique to the program instance.
//
// # Bounds and eviction
//
// The cache is bounded in bytes of decoded block and access data
// (maxBytes; see NewRegionCache). Insertion evicts least-recently-used
// entries until the new total fits. A single region larger than the whole
// budget is never fully materialized: its decode aborts as soon as the
// accumulated size passes the budget, the region is remembered as
// uncacheable, and its replays — including the first — stream directly
// from the underlying Program. Decodes are single-flight: concurrent
// requests for one region (the profiler replays regions in parallel)
// perform one decode and share the result; each in-flight decode holds at
// most maxBytes of transient memory.
//
// # Equivalence
//
// A cached replay yields the exact BlockExec sequence of the underlying
// stream — same blocks, instruction counts, access addresses, write flags
// and branch bits — so signatures, selections, estimates and simulation
// results are bit-identical with and without the cache. Decode errors are
// never cached: a region whose chunks fail to decode is remembered as
// uncacheable and falls back to direct streaming, preserving the uncached
// error surface (Stream.Err).
//
// The zero value is not usable; call NewRegionCache. A nil *RegionCache
// is a valid no-op: Program returns its argument unwrapped.
type RegionCache struct {
	mu      sync.Mutex
	max     int64
	bytes   int64
	ll      *list.List // front = most recently used; values are *cacheEntry
	entries map[regionKey]*list.Element
	// skip records regions that must never be cached: their decode failed,
	// or was aborted because the region alone exceeds the whole byte
	// budget. Replays of a skipped region stream directly from the
	// underlying Program, so an oversized region costs one aborted decode
	// ever — not a decode attempt per Thread call. Entries are a few bytes
	// each and accrue only for pathological regions, so the set itself is
	// unbounded.
	skip map[regionKey]struct{}

	hits, misses, evictions, decodeNs int64
}

type regionKey struct {
	id     string
	region int
}

// cacheEntry is one decoded region. ready is closed when the decode
// completes; threads, size and err are immutable afterwards.
type cacheEntry struct {
	key     regionKey
	ready   chan struct{}
	threads [][]trace.BlockExec
	size    int64
	err     error
}

// CacheStats is a point-in-time snapshot of cache activity.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"`
	// DecodeNs is the cumulative wall-clock time spent decoding regions
	// (cache-miss work), including failed and budget-aborted decodes.
	DecodeNs int64 `json:"decode_ns"`
}

// NewRegionCache returns a cache bounded to maxBytes of decoded region
// data (DefaultRegionCacheBytes if maxBytes <= 0).
func NewRegionCache(maxBytes int64) *RegionCache {
	if maxBytes <= 0 {
		maxBytes = DefaultRegionCacheBytes
	}
	return &RegionCache{
		max:     maxBytes,
		ll:      list.New(),
		entries: make(map[regionKey]*list.Element),
		skip:    make(map[regionKey]struct{}),
	}
}

// Stats returns current cache counters.
func (c *RegionCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   len(c.entries),
		Bytes:     c.bytes,
		MaxBytes:  c.max,
		DecodeNs:  c.decodeNs,
	}
}

// Program returns a view of p whose regions replay through the cache,
// keyed by the trace identity id (conventionally the store's SHA-256
// trace key). A nil cache or empty id returns p unchanged.
func (c *RegionCache) Program(p trace.Program, id string) trace.Program {
	if c == nil || id == "" {
		return p
	}
	cp := &cachedProgram{c: c, p: p, id: id}
	// Region wrappers are preallocated so Region+Thread on a warm cache is
	// allocation-free.
	cp.regions = make([]cachedRegion, p.Regions())
	for i := range cp.regions {
		cp.regions[i] = cachedRegion{cp: cp, idx: i}
	}
	return cp
}

type cachedProgram struct {
	c       *RegionCache
	p       trace.Program
	id      string
	regions []cachedRegion
}

func (cp *cachedProgram) Name() string { return cp.p.Name() }
func (cp *cachedProgram) Threads() int { return cp.p.Threads() }
func (cp *cachedProgram) Regions() int { return cp.p.Regions() }
func (cp *cachedProgram) Region(i int) trace.Region {
	return &cp.regions[i]
}

type cachedRegion struct {
	cp  *cachedProgram
	idx int
}

// Thread implements trace.Region. On a cache hit (or after waiting out an
// in-flight decode) the returned stream iterates the decoded blocks with
// zero copies and zero allocations; for uncacheable regions (decode
// failure, or larger than the whole budget) it falls back to the
// underlying region's stream so error reporting and decode cost match
// uncached replay.
func (r *cachedRegion) Thread(tid int) trace.Stream {
	e := r.cp.c.region(r.cp.p, r.cp.id, r.idx)
	if e == nil || e.err != nil {
		return r.cp.p.Region(r.idx).Thread(tid)
	}
	s := blocksStreamPool.Get().(*blocksStream)
	s.blocks = e.threads[tid]
	s.pos = 0
	s.served = false
	return s
}

// region returns the decoded entry for one region, decoding at most once
// per key across concurrent callers. A nil return means the region is
// known uncacheable and the caller must stream it directly.
func (c *RegionCache) region(p trace.Program, id string, idx int) *cacheEntry {
	k := regionKey{id, idx}
	c.mu.Lock()
	if _, ok := c.skip[k]; ok {
		c.misses++
		c.mu.Unlock()
		return nil
	}
	if el, ok := c.entries[k]; ok {
		e := el.Value.(*cacheEntry)
		c.ll.MoveToFront(el)
		c.hits++
		c.mu.Unlock()
		<-e.ready
		return e
	}
	e := &cacheEntry{key: k, ready: make(chan struct{})}
	el := c.ll.PushFront(e)
	c.entries[k] = el
	c.misses++
	c.mu.Unlock()

	t0 := time.Now()
	threads, size, err := decodeRegion(p, idx, c.max)
	decodeDur := time.Since(t0)

	// Publish the result and account its size in one critical section:
	// eviction skips entries whose ready channel is still open, so closing
	// it under the same lock that adds the size keeps the byte accounting
	// consistent with the LRU contents.
	c.mu.Lock()
	c.decodeNs += decodeDur.Nanoseconds()
	e.threads, e.size, e.err = threads, size, err
	if err != nil {
		// Never retain failures (including budget-aborted decodes);
		// current waiters fall back to direct streams, and the skip mark
		// sends every later replay straight to the underlying stream.
		delete(c.entries, k)
		c.ll.Remove(el)
		c.skip[k] = struct{}{}
	} else {
		c.bytes += size
		c.evictLocked(el)
	}
	close(e.ready)
	c.mu.Unlock()
	return e
}

// evictLocked drops least-recently-used decoded entries until the budget
// holds, never evicting keep or entries still decoding (their size is
// unaccounted until they finish).
func (c *RegionCache) evictLocked(keep *list.Element) {
	for c.bytes > c.max {
		el := c.ll.Back()
		for el != nil && (el == keep || !decoded(el.Value.(*cacheEntry))) {
			el = el.Prev()
		}
		if el == nil {
			return
		}
		e := el.Value.(*cacheEntry)
		delete(c.entries, e.key)
		c.ll.Remove(el)
		c.bytes -= e.size
		c.evictions++
	}
}

func decoded(e *cacheEntry) bool {
	select {
	case <-e.ready:
		return true
	default:
		return false
	}
}

// errRegionTooLarge aborts a decode whose accumulated size passes the
// cache budget, so an oversized region never materializes more than the
// budget in memory before being rejected.
var errRegionTooLarge = errors.New("tracefile: decoded region exceeds replay cache budget")

// decodeRegion drains every thread stream of one region into flat block
// arrays, aborting with errRegionTooLarge once the decoded size exceeds
// limit. Each thread's accesses are packed into a single arena slice so a
// decoded region is two allocations per thread, laid out contiguously for
// replay.
func decodeRegion(p trace.Program, idx int, limit int64) ([][]trace.BlockExec, int64, error) {
	threads := p.Threads()
	r := p.Region(idx)
	out := make([][]trace.BlockExec, threads)
	var size int64
	const blockBytes = int64(unsafe.Sizeof(trace.BlockExec{}))
	const accBytes = int64(unsafe.Sizeof(trace.Access{}))
	var starts []int // scratch: per-block arena offsets
	for t := 0; t < threads; t++ {
		s := r.Thread(t)
		var (
			blocks []trace.BlockExec
			arena  []trace.Access
			be     trace.BlockExec
		)
		starts = starts[:0]
		for s.Next(&be) {
			size += blockBytes + int64(len(be.Accs))*accBytes
			if size > limit {
				return nil, 0, errRegionTooLarge
			}
			starts = append(starts, len(arena))
			arena = append(arena, be.Accs...)
			be.Accs = nil
			blocks = append(blocks, be)
		}
		if es, ok := s.(interface{ Err() error }); ok {
			if err := es.Err(); err != nil {
				return nil, 0, err
			}
		}
		for i := range blocks {
			end := len(arena)
			if i+1 < len(blocks) {
				end = starts[i+1]
			}
			blocks[i].Accs = arena[starts[i]:end:end]
		}
		out[t] = blocks
	}
	return out, size, nil
}

// blocksStream replays a decoded block array. Access slices point into the
// cached arena (zero-copy), which the Stream contract permits: consumers
// must finish with Accs before the next call and must not mutate it.
//
// Stream headers are pooled: the call to Next that reports exhaustion
// returns the header to the pool, so a full cached replay performs zero
// allocations. Per the trace.Stream contract a stream is dead once Next
// has returned false; calling Next again after that is unsupported (it
// may observe an unrelated stream's state).
type blocksStream struct {
	blocks []trace.BlockExec
	pos    int
	served bool // true once exhaustion has been reported and self returned
}

var blocksStreamPool = sync.Pool{New: func() any { return new(blocksStream) }}

// Next implements trace.Stream.
func (s *blocksStream) Next(be *trace.BlockExec) bool {
	if s.pos < len(s.blocks) {
		*be = s.blocks[s.pos]
		s.pos++
		return true
	}
	if !s.served {
		s.served = true
		s.blocks = nil
		blocksStreamPool.Put(s)
	}
	return false
}

var (
	_ trace.Program = (*cachedProgram)(nil)
	_ trace.Region  = (*cachedRegion)(nil)
	_ trace.Stream  = (*blocksStream)(nil)
)
