// Package tracefile persists trace.Program executions as compact binary
// files and replays them with O(region) memory: every inter-barrier region
// streams straight off disk through the trace.Stream interface, so recorded
// traces feed the profiler, warmup capturer and timing simulator exactly
// like in-memory programs — including region-parallel execution, because
// chunks are independently addressable and os.File supports concurrent
// ReadAt.
//
// # File layout (version 2, the default)
//
//	+--------------------------------------------------------------+
//	| magic "BPTRACE2" (8 bytes)                                    |
//	+--------------------------------------------------------------+
//	| streaming header: nameLen, name, threads, regions, flags      |
//	+--------------------------------------------------------------+
//	| len | chunk[region 0][thread 0]                               |
//	| len | chunk[region 0][thread 1]                               |
//	| ...                                                           |
//	| len | chunk[region R-1][thread T-1]                           |
//	+--------------------------------------------------------------+
//	| footer (see below)                                            |
//	+--------------------------------------------------------------+
//	| footer offset (uint64 little-endian, 8 bytes)                 |
//	| trailer magic "BPTIDX2\n" (8 bytes)                           |
//	+--------------------------------------------------------------+
//
// Chunks are laid out region-major: all T thread streams of region 0, then
// region 1, and so on. Version 2 duplicates the footer metadata in a
// streaming header right after the magic and prefixes every chunk with its
// uvarint byte length, so a consumer reading from a pipe or network body
// (DecodeStream) knows each region's extent the moment its bytes arrive —
// no seeking, no waiting for the trailer. The trailing footer remains the
// random-access index: Open seeks to the end, validates the trailer magic,
// reads the footer offset and parses the footer to learn the chunk
// boundaries, exactly as in version 1. Appending the index lets Record
// work on a pure io.Writer in one pass, without buffering the whole
// program; DecodeStream cross-checks the footer against the streaming
// header and the inline lengths, so a truncated or spliced stream is
// rejected, not silently accepted.
//
// Version 1 ("BPTRACE1"/"BPTIDX1\n") is the same layout minus the
// streaming header and the inline length prefixes. It remains fully
// readable — Open handles both — and Record(WithVersion(1)) still writes
// it; it just cannot be decoded incrementally, so a v1 upload is stored
// first and profiled later.
//
// # Footer
//
// All integers below are unsigned varints (encoding/binary Uvarint) unless
// noted:
//
//	nameLen, name bytes      program name
//	threads                  thread count T
//	regions                  region count R
//	flags (1 raw byte)       bit 0: chunks are gzip-compressed
//	R*T chunk lengths        compressed byte length of every chunk,
//	                         region-major, in file order
//
// Chunk byte offsets are not stored; they are the prefix sums of the
// lengths, starting immediately after the 8-byte magic. The footer is
// self-validating: the lengths must sum exactly to footerOffset-8.
//
// # Chunk encoding
//
// A chunk is the dynamic basic block sequence of one thread within one
// region. With the gzip flag set, each chunk is an independent gzip stream
// (so random access never decompresses neighbouring chunks); otherwise it
// is the raw encoding. Per trace.BlockExec, the encoding is:
//
//	hdr      uvarint: len(Accs)<<2 | Branch<<1 | Taken
//	block    varint (zigzag): Block delta vs the previous record's Block
//	instrs   uvarint: Instrs
//	writes   ceil(len(Accs)/8) raw bytes: Access.Write bits, LSB-first
//	addrs    len(Accs) varints (zigzag): Access.Addr delta vs the
//	         previous access address (carried across records)
//
// Both delta predictors (previous block id, previous access address) start
// at zero at the beginning of every chunk, so chunks decode independently.
// Delta coding makes the common patterns — loop bodies re-executing the
// same block, sequential and strided sweeps — encode in one or two bytes
// per field. End of chunk is end of data: a clean EOF at a record boundary
// terminates the stream.
//
// # Content addressing
//
// A trace file's identity is the SHA-256 of its bytes. The encoding above
// is deterministic — chunk order, varint widths and delta predictors are
// fully determined by the program — so recording the same program twice
// (with the same gzip setting) produces byte-identical files and therefore
// the same address. internal/store exploits this: traces are filed as
// traces/<sha256>.bptrace, and every derived artifact (selection, estimate,
// ground truth) is cached under that key plus a hash of the parameters it
// depends on, making the expensive analysis stages cacheable by content.
// Note the gzip flag changes the bytes, so a compressed and an uncompressed
// recording of one program are distinct store entries by design.
//
// Regions are content-addressed too: RegionDigest (and the Digest field of
// DecodeStream's RegionChunks) is a SHA-256 over the region's chunk
// payloads plus the parameters that determine how they decode (gzip flag,
// thread count). The digest is deliberately independent of the container —
// a v1 and a v2 recording of the same program agree region by region, and
// DecodeStream computes it incrementally while Open computes it by random
// access, to the same value. internal/service keys per-region BBV+LDV
// profiles by (region digest, signature codec version), which is what lets
// a streaming upload profile regions mid-transfer and lets re-clustering
// with different knobs (max K, scale, signature variant) reuse every
// cached profile and pay only k-means.
//
// # Replay caching
//
// Replay is a cold decode by default: every Region/Thread call re-reads,
// re-inflates (for gzip traces) and re-varint-decodes its chunk. Decoding
// state is pooled process-wide — gzip inflaters and bufio buffers are
// reused across streams — so even cold replay allocates only per-stream
// bookkeeping. For workloads that replay regions repeatedly (warmup
// capture, estimate+simulate pairs, campaign grids), RegionCache keeps
// fully decoded regions in a byte-bounded LRU keyed by trace content, and
// serves them as zero-copy, zero-allocation streams; see RegionCache for
// the keying, bounding and equivalence contract. The cache defaults to
// DefaultRegionCacheBytes (256 MiB) and is exposed as -replay-cache-mb on
// cmd/bpserve and cmd/bpworker, and as barrierpoint.NewReplayCache in the
// public API.
//
// # Versioning
//
// The format version lives in the leading magic ("BPTRACE1", "BPTRACE2")
// and the trailer magic ("BPTIDX1\n", "BPTIDX2\n"). Incompatible revisions
// bump the digit in both; Open rejects files whose magics it does not
// recognize, and the flags byte leaves room for backward-compatible
// feature bits. Decode failures caused by the input bytes (rather than the
// source reader) are tagged with ErrFormat, so transport layers can tell
// "you sent garbage" from "the connection broke".
package tracefile
