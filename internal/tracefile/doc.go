// Package tracefile persists trace.Program executions as compact binary
// files and replays them with O(region) memory: every inter-barrier region
// streams straight off disk through the trace.Stream interface, so recorded
// traces feed the profiler, warmup capturer and timing simulator exactly
// like in-memory programs — including region-parallel execution, because
// chunks are independently addressable and os.File supports concurrent
// ReadAt.
//
// # File layout (version 1)
//
//	+--------------------------------------------------------------+
//	| magic "BPTRACE1" (8 bytes)                                    |
//	+--------------------------------------------------------------+
//	| chunk[region 0][thread 0]                                     |
//	| chunk[region 0][thread 1]                                     |
//	| ...                                                           |
//	| chunk[region R-1][thread T-1]                                 |
//	+--------------------------------------------------------------+
//	| footer (see below)                                            |
//	+--------------------------------------------------------------+
//	| footer offset (uint64 little-endian, 8 bytes)                 |
//	| trailer magic "BPTIDX1\n" (8 bytes)                           |
//	+--------------------------------------------------------------+
//
// Chunks are laid out region-major: all T thread streams of region 0, then
// region 1, and so on. A reader seeks to the end, validates the trailer
// magic, reads the footer offset, and parses the footer — the trailing
// index — to learn the chunk boundaries. Appending the index instead of
// prepending it lets Record work on a pure io.Writer in one pass, without
// buffering the whole program or seeking.
//
// # Footer
//
// All integers below are unsigned varints (encoding/binary Uvarint) unless
// noted:
//
//	nameLen, name bytes      program name
//	threads                  thread count T
//	regions                  region count R
//	flags (1 raw byte)       bit 0: chunks are gzip-compressed
//	R*T chunk lengths        compressed byte length of every chunk,
//	                         region-major, in file order
//
// Chunk byte offsets are not stored; they are the prefix sums of the
// lengths, starting immediately after the 8-byte magic. The footer is
// self-validating: the lengths must sum exactly to footerOffset-8.
//
// # Chunk encoding
//
// A chunk is the dynamic basic block sequence of one thread within one
// region. With the gzip flag set, each chunk is an independent gzip stream
// (so random access never decompresses neighbouring chunks); otherwise it
// is the raw encoding. Per trace.BlockExec, the encoding is:
//
//	hdr      uvarint: len(Accs)<<2 | Branch<<1 | Taken
//	block    varint (zigzag): Block delta vs the previous record's Block
//	instrs   uvarint: Instrs
//	writes   ceil(len(Accs)/8) raw bytes: Access.Write bits, LSB-first
//	addrs    len(Accs) varints (zigzag): Access.Addr delta vs the
//	         previous access address (carried across records)
//
// Both delta predictors (previous block id, previous access address) start
// at zero at the beginning of every chunk, so chunks decode independently.
// Delta coding makes the common patterns — loop bodies re-executing the
// same block, sequential and strided sweeps — encode in one or two bytes
// per field. End of chunk is end of data: a clean EOF at a record boundary
// terminates the stream.
//
// # Content addressing
//
// A trace file's identity is the SHA-256 of its bytes. The encoding above
// is deterministic — chunk order, varint widths and delta predictors are
// fully determined by the program — so recording the same program twice
// (with the same gzip setting) produces byte-identical files and therefore
// the same address. internal/store exploits this: traces are filed as
// traces/<sha256>.bptrace, and every derived artifact (selection, estimate,
// ground truth) is cached under that key plus a hash of the parameters it
// depends on, making the expensive analysis stages cacheable by content.
// Note the gzip flag changes the bytes, so a compressed and an uncompressed
// recording of one program are distinct store entries by design.
//
// # Replay caching
//
// Replay is a cold decode by default: every Region/Thread call re-reads,
// re-inflates (for gzip traces) and re-varint-decodes its chunk. Decoding
// state is pooled process-wide — gzip inflaters and bufio buffers are
// reused across streams — so even cold replay allocates only per-stream
// bookkeeping. For workloads that replay regions repeatedly (warmup
// capture, estimate+simulate pairs, campaign grids), RegionCache keeps
// fully decoded regions in a byte-bounded LRU keyed by trace content, and
// serves them as zero-copy, zero-allocation streams; see RegionCache for
// the keying, bounding and equivalence contract. The cache defaults to
// DefaultRegionCacheBytes (256 MiB) and is exposed as -replay-cache-mb on
// cmd/bpserve and cmd/bpworker, and as barrierpoint.NewReplayCache in the
// public API.
//
// # Versioning
//
// The format version lives in the leading magic ("BPTRACE1") and the
// trailer magic ("BPTIDX1\n"). Incompatible revisions bump the digit in
// both; Open rejects files whose magics it does not recognize, and the
// flags byte leaves room for backward-compatible feature bits.
package tracefile
