package tracefile

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"

	"barrierpoint/internal/trace"
	"barrierpoint/internal/workload"
)

// collectStream runs DecodeStream over data and returns the info plus every
// region callback, failing the test on decode error.
func collectStream(t *testing.T, data []byte) (StreamInfo, []RegionChunks) {
	t.Helper()
	var regions []RegionChunks
	info, err := DecodeStream(bytes.NewReader(data), func(rc RegionChunks) error {
		regions = append(regions, rc)
		return nil
	})
	if err != nil {
		t.Fatalf("DecodeStream: %v", err)
	}
	return info, regions
}

func TestDecodeStreamRoundTrip(t *testing.T) {
	for _, gz := range []bool{false, true} {
		p := handBuilt()
		var buf bytes.Buffer
		if err := Record(&buf, p, WithGzip(gz)); err != nil {
			t.Fatal(err)
		}
		info, regions := collectStream(t, buf.Bytes())
		if !info.Streamed {
			t.Fatalf("gzip=%v: v2 stream not streamed", gz)
		}
		if info.Name != p.Name() || info.Threads != p.Threads() || info.Regions != p.Regions() || info.Gzip != gz {
			t.Fatalf("gzip=%v: info = %+v", gz, info)
		}
		if len(regions) != p.Regions() {
			t.Fatalf("gzip=%v: %d region callbacks, want %d", gz, len(regions), p.Regions())
		}
		for i, rc := range regions {
			if rc.Index != i {
				t.Fatalf("region callback %d has index %d", i, rc.Index)
			}
			if rc.Gzip != gz {
				t.Fatalf("region %d Gzip = %v, want %v", i, rc.Gzip, gz)
			}
			// Replay of the in-memory region must equal the original.
			mem := rc.Region()
			for tid := 0; tid < p.Threads(); tid++ {
				got := drain(t, mem.Thread(tid))
				want := drain(t, p.Region(i).Thread(tid))
				if !reflect.DeepEqual(got, want) {
					t.Errorf("gzip=%v region %d thread %d: streamed replay differs", gz, i, tid)
				}
			}
		}
	}
}

// TestStreamDigestMatchesFile is the content-addressing keystone: the digest
// computed incrementally during upload equals the digest computed later by
// random access over the stored file, and only then can profiles cached at
// ingest be found by analyze.
func TestStreamDigestMatchesFile(t *testing.T) {
	for _, gz := range []bool{false, true} {
		p := workload.New("npb-ft", 4, workload.WithScale(0.05))
		var buf bytes.Buffer
		if err := Record(&buf, p, WithGzip(gz)); err != nil {
			t.Fatal(err)
		}
		data := buf.Bytes()
		_, regions := collectStream(t, data)
		f, err := NewReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			t.Fatal(err)
		}
		for i, rc := range regions {
			want, err := f.RegionDigest(i)
			if err != nil {
				t.Fatalf("RegionDigest(%d): %v", i, err)
			}
			if rc.Digest != want {
				t.Fatalf("gzip=%v region %d: stream digest %s, file digest %s", gz, i, rc.Digest, want)
			}
		}
	}
}

// TestDigestIndependentOfPlacement asserts that a region's digest does not
// depend on which trace carries it: the same region content recorded in two
// different programs (different neighbors, different file offsets) digests
// identically, while differing content digests differently.
func TestDigestIndependentOfPlacement(t *testing.T) {
	rgn := func(block int) *trace.SliceRegion {
		return &trace.SliceRegion{Threads: [][]trace.BlockExec{
			{{Block: block, Instrs: 10, Accs: []trace.Access{{Addr: 0x1000}}}},
			{{Block: block + 1, Instrs: 3}},
		}}
	}
	a := &trace.SliceProgram{ProgName: "a", NumThreads: 2, Rgns: []*trace.SliceRegion{rgn(1), rgn(7)}}
	b := &trace.SliceProgram{ProgName: "b", NumThreads: 2, Rgns: []*trace.SliceRegion{rgn(99), rgn(7), rgn(1)}}
	digests := func(p trace.Program) []string {
		var buf bytes.Buffer
		if err := Record(&buf, p); err != nil {
			t.Fatal(err)
		}
		f, err := NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, f.Regions())
		for i := range out {
			if out[i], err = f.RegionDigest(i); err != nil {
				t.Fatal(err)
			}
		}
		return out
	}
	da, db := digests(a), digests(b)
	if da[1] != db[1] || da[0] != db[2] {
		t.Error("identical region content digests differently across traces")
	}
	if da[0] == da[1] || da[0] == db[0] {
		t.Error("distinct region content collided")
	}
}

// TestDecodeStreamV1Fallback: version-1 bytes carry no inline framing, so
// DecodeStream must drain them fully (the tee'd store copy depends on it)
// and report Streamed=false without invoking the callback.
func TestDecodeStreamV1Fallback(t *testing.T) {
	var buf bytes.Buffer
	if err := Record(&buf, handBuilt(), WithVersion(1)); err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(buf.Bytes())
	info, err := DecodeStream(r, func(RegionChunks) error {
		t.Fatal("callback invoked for v1 input")
		return nil
	})
	if err != nil {
		t.Fatalf("DecodeStream: %v", err)
	}
	if info.Streamed {
		t.Fatal("v1 input reported as streamed")
	}
	if r.Len() != 0 {
		t.Fatalf("v1 input not drained: %d bytes left", r.Len())
	}
}

// TestV1StillReadable: files recorded in the legacy layout open, replay and
// verify exactly as before the version bump.
func TestV1StillReadable(t *testing.T) {
	p := handBuilt()
	for _, gz := range []bool{false, true} {
		f := record(t, p, WithGzip(gz), WithVersion(1))
		if f.Version() != 1 {
			t.Fatalf("Version() = %d, want 1", f.Version())
		}
		if f.Name() != p.Name() || f.Threads() != p.Threads() || f.Regions() != p.Regions() {
			t.Fatalf("v1 metadata = (%q,%d,%d)", f.Name(), f.Threads(), f.Regions())
		}
		for r := 0; r < p.Regions(); r++ {
			for tid := 0; tid < p.Threads(); tid++ {
				if !reflect.DeepEqual(drain(t, f.Region(r).Thread(tid)), drain(t, p.Region(r).Thread(tid))) {
					t.Errorf("v1 gzip=%v region %d thread %d differs", gz, r, tid)
				}
			}
		}
		if err := f.Verify(); err != nil {
			t.Errorf("v1 Verify: %v", err)
		}
	}
}

// TestV1V2DigestsAgree: the region digest covers encoded payloads, not file
// framing, so the same program recorded in both versions shares digests —
// profiles cached from a v2 upload serve analyses of an equivalent v1 file.
func TestV1V2DigestsAgree(t *testing.T) {
	p := handBuilt()
	open := func(version int) *File {
		var buf bytes.Buffer
		if err := Record(&buf, p, WithVersion(version)); err != nil {
			t.Fatal(err)
		}
		f, err := NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	f1, f2 := open(1), open(2)
	for i := 0; i < p.Regions(); i++ {
		d1, err1 := f1.RegionDigest(i)
		d2, err2 := f2.RegionDigest(i)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if d1 != d2 {
			t.Fatalf("region %d: v1 digest %s != v2 digest %s", i, d1, d2)
		}
	}
}

func TestDecodeStreamErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Record(&buf, handBuilt()); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	nop := func(RegionChunks) error { return nil }

	t.Run("bad-magic", func(t *testing.T) {
		data := append([]byte("XXTRACE9"), good[8:]...)
		if _, err := DecodeStream(bytes.NewReader(data), nop); err == nil {
			t.Fatal("accepted bad magic")
		}
	})
	t.Run("truncated-mid-chunk", func(t *testing.T) {
		if _, err := DecodeStream(bytes.NewReader(good[:len(good)/2]), nop); err == nil {
			t.Fatal("accepted truncated stream")
		}
	})
	t.Run("missing-trailer", func(t *testing.T) {
		if _, err := DecodeStream(bytes.NewReader(good[:len(good)-tailLen]), nop); err == nil {
			t.Fatal("accepted stream without trailer")
		}
	})
	t.Run("corrupt-footer-length", func(t *testing.T) {
		data := append([]byte(nil), good...)
		data[len(data)-tailLen-1] ^= 0x01 // last footer byte: a chunk length
		if _, err := DecodeStream(bytes.NewReader(data), nop); err == nil {
			t.Fatal("accepted footer disagreeing with stream")
		}
	})
	t.Run("callback-error-aborts", func(t *testing.T) {
		sentinel := errors.New("stop")
		calls := 0
		_, err := DecodeStream(bytes.NewReader(good), func(RegionChunks) error {
			calls++
			return sentinel
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("err = %v, want sentinel", err)
		}
		if calls != 1 {
			t.Fatalf("callback ran %d times after erroring", calls)
		}
	})
	t.Run("short-read-source", func(t *testing.T) {
		// A reader that errors mid-stream (a dropped upload connection).
		r := io.MultiReader(bytes.NewReader(good[:20]), iotest{})
		if _, err := DecodeStream(r, nop); err == nil {
			t.Fatal("accepted stream that died mid-transfer")
		}
	})
	t.Run("huge-header-counts", func(t *testing.T) {
		// Regression: a ~20-byte upload whose header claims the maximum
		// thread and region counts parseMeta admits. Sizing any allocation
		// from those counts either panics (threads*regions overflows a
		// slice cap) or commits gigabytes before a single payload byte has
		// been read; the decoder must instead fail on the missing first
		// chunk.
		for _, counts := range [][2]uint64{
			{1 << 20, 1 << 40}, // cap overflow: panic before the fix
			{1 << 20, 1 << 17}, // 1 TiB worth of uint64 lengths if pre-sized
		} {
			hdr := []byte(magicV2)
			hdr = append(hdr, 1, 'x') // name "x"
			hdr = binary.AppendUvarint(hdr, counts[0])
			hdr = binary.AppendUvarint(hdr, counts[1])
			hdr = append(hdr, 0) // flags
			_, err := DecodeStream(bytes.NewReader(hdr), nop)
			if !errors.Is(err, ErrFormat) {
				t.Fatalf("counts %v: err = %v, want ErrFormat", counts, err)
			}
		}
	})
}

// iotest is a reader that always fails, standing in for a dropped network
// connection.
type iotest struct{}

func (iotest) Read([]byte) (int, error) { return 0, errors.New("connection reset") }
