package tracefile

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"io"

	"barrierpoint/internal/trace"
)

// ErrFormat tags every DecodeStream failure caused by the input bytes —
// bad magic, truncation, framing that disagrees with the trailing index —
// as opposed to errors propagated from the caller's callback. Servers use
// it to answer a malformed upload with a client error instead of a 500.
var ErrFormat = errors.New("tracefile: malformed trace")

// errf builds an ErrFormat-wrapped decode error; errw additionally keeps
// the causing read error in the chain, so callers can still recognize the
// source reader's sentinel failures (e.g. *http.MaxBytesError from a
// capped upload body) through errors.As.
func errf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrFormat, fmt.Sprintf(format, args...))
}

func errw(err error, format string, args ...any) error {
	return fmt.Errorf("%w: %s: %w", ErrFormat, fmt.Sprintf(format, args...), err)
}

// digestTag versions the region content digest framing. Bump it if the
// framing below ever changes, so stale cached profiles can never be
// mistaken for current ones.
const digestTag = "bprgn1"

// maxStreamName bounds the name length a streaming decoder will accept
// before it has a footer to sanity-check against.
const maxStreamName = 1 << 16

// regionDigester accumulates the canonical region content digest: the tag,
// the gzip flag, the thread count, then every chunk as uvarint(len) +
// payload. RegionDigest (random access over a File) and DecodeStream
// (incremental, over a pipe) both produce digests through this one
// framing, which is what lets a profile computed mid-upload be found
// later by a reader that only has the stored file. The digest covers the
// encoded payload bytes — not the decoded accesses — so it is independent
// of where the region sits in its file and of the format version carrying
// it.
type regionDigester struct{ h hash.Hash }

func newRegionDigester(gz bool, threads int) *regionDigester {
	h := sha256.New()
	var flags byte
	if gz {
		flags = flagGzip
	}
	var buf [len(digestTag) + 1 + binary.MaxVarintLen64]byte
	n := copy(buf[:], digestTag)
	buf[n] = flags
	n++
	n += binary.PutUvarint(buf[n:], uint64(threads))
	h.Write(buf[:n])
	return &regionDigester{h: h}
}

func (d *regionDigester) beginChunk(size uint64) {
	var buf [binary.MaxVarintLen64]byte
	d.h.Write(buf[:binary.PutUvarint(buf[:], size)])
}

func (d *regionDigester) Write(p []byte) (int, error) { return d.h.Write(p) }

func (d *regionDigester) sum() string { return hex.EncodeToString(d.h.Sum(nil)) }

// StreamInfo describes a trace consumed by DecodeStream.
type StreamInfo struct {
	Name    string
	Threads int
	Regions int
	Gzip    bool
	// Streamed reports whether regions were decoded incrementally. It is
	// false for version-1 input, which has no inline framing: the bytes
	// were drained in full (so an upstream tee still completes) but the
	// callback never ran and the other fields are zero; the caller must
	// profile from the stored file instead.
	Streamed bool
}

// RegionChunks is one region's encoded payload, handed to the DecodeStream
// callback the moment the region's last byte arrives. The callee owns
// Chunks; the decoder never reuses them.
type RegionChunks struct {
	Index  int      // region index, 0-based, in trace order
	Digest string   // content digest; equals File.RegionDigest(Index) on the stored bytes
	Gzip   bool     // whether Chunks are gzip-compressed
	Chunks [][]byte // one encoded (possibly gzipped) chunk per thread
}

// Region returns an in-memory trace.Region replaying the chunks. Decoding
// goes through the same pooled chunk readers as File replay, so a region
// profiled during upload and the same region profiled later from the
// stored file observe bit-identical streams.
func (rc RegionChunks) Region() trace.Region {
	return &memRegion{chunks: rc.Chunks, gz: rc.Gzip}
}

type memRegion struct {
	chunks [][]byte
	gz     bool
}

func (r *memRegion) Thread(tid int) trace.Stream {
	if tid < 0 || tid >= len(r.chunks) {
		panic(fmt.Sprintf("tracefile: thread %d out of range [0,%d)", tid, len(r.chunks)))
	}
	b := r.chunks[tid]
	s, err := openChunkStream(bytes.NewReader(b), 0, int64(len(b)), r.gz)
	if err != nil {
		return &chunkStream{err: fmt.Errorf("tracefile: thread %d: %w", tid, err), done: true}
	}
	return s
}

var _ trace.Region = (*memRegion)(nil)

// DecodeStream consumes one trace from r — typically the request body of
// an upload, tee'd so the same bytes also land in the store — invoking fn
// once per region as soon as that region is complete. For version-2 input
// the whole stream is consumed and validated: chunk framing, the trailing
// footer's agreement with the streaming header, and the footer's chunk
// lengths against what was actually read, so a corrupt or truncated
// upload fails here rather than surfacing at first replay. An error from
// fn aborts the decode and is returned as-is.
//
// Version-1 input cannot be decoded incrementally (its chunk boundaries
// exist only in the trailing footer); it is drained to EOF and reported
// with Streamed=false so the caller can fall back to profiling from the
// stored file.
func DecodeStream(r io.Reader, fn func(RegionChunks) error) (StreamInfo, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, magicLen)
	if _, err := io.ReadFull(br, head); err != nil {
		return StreamInfo{}, errw(err, "reading header")
	}
	switch string(head) {
	case magicV1:
		if _, err := io.Copy(io.Discard, br); err != nil {
			return StreamInfo{}, fmt.Errorf("tracefile: draining v1 stream: %w", err)
		}
		return StreamInfo{}, nil
	case magicV2:
	default:
		return StreamInfo{}, errf("bad magic %q (not a trace file, or unsupported version)", head)
	}
	name, threads, regions, flags, err := parseMeta(br, maxStreamName)
	if err != nil {
		return StreamInfo{}, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	info := StreamInfo{
		Name:     string(name),
		Threads:  int(threads),
		Regions:  int(regions),
		Gzip:     flags&flagGzip != 0,
		Streamed: true,
	}
	pos := int64(magicLen) + int64(metaLen(name, threads, regions))
	// Never size an allocation from the header's thread/region counts: they
	// are untrusted (threads*regions can exceed any sane cap, or overflow
	// int outright) and nothing backs them yet. Both lengths and chunks grow
	// by append, so their growth is bounded by bytes actually read — a
	// crafted header with huge counts hits EOF on its first missing chunk.
	var lengths []uint64
	for ri := 0; ri < info.Regions; ri++ {
		d := newRegionDigester(info.Gzip, info.Threads)
		chunks := make([][]byte, 0, min(info.Threads, 64))
		for t := 0; t < info.Threads; t++ {
			n, err := binary.ReadUvarint(br)
			if err != nil {
				return info, errw(err, "region %d thread %d: reading chunk length", ri, t)
			}
			d.beginChunk(n)
			// Grow-as-read: a lying length prefix hits EOF before it can
			// force a giant allocation.
			var buf bytes.Buffer
			if _, err := io.CopyN(io.MultiWriter(&buf, d), br, int64(n)); err != nil {
				return info, errw(err, "region %d thread %d: reading chunk", ri, t)
			}
			chunks = append(chunks, buf.Bytes())
			lengths = append(lengths, n)
			pos += int64(uvarintLen(n)) + int64(n)
		}
		if err := fn(RegionChunks{Index: ri, Digest: d.sum(), Gzip: info.Gzip, Chunks: chunks}); err != nil {
			return info, err
		}
	}

	// What remains is the trailing index. Validate it against the streamed
	// prefix: the upload is rejected before commit if the two disagree.
	rest, err := io.ReadAll(br)
	if err != nil {
		return info, errw(err, "reading footer")
	}
	if len(rest) < tailLen {
		return info, errf("truncated trailer")
	}
	tail := rest[len(rest)-tailLen:]
	if string(tail[8:]) != trailerMagicV2 {
		return info, errf("bad trailer magic %q (truncated file?)", tail[8:])
	}
	if got := int64(binary.LittleEndian.Uint64(tail[:8])); got != pos {
		return info, errf("footer offset %d, but chunks ended at %d", got, pos)
	}
	fr := bytes.NewReader(rest[:len(rest)-tailLen])
	fname, fthreads, fregions, fflags, err := parseMeta(fr, len(rest))
	if err != nil {
		return info, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if !bytes.Equal(fname, name) || fthreads != threads || fregions != regions || fflags != flags {
		return info, errf("footer disagrees with streaming header (corrupt stream)")
	}
	for i := range lengths {
		n, err := binary.ReadUvarint(fr)
		if err != nil || n != lengths[i] {
			return info, errf("footer length for chunk %d disagrees with stream", i)
		}
	}
	if fr.Len() != 0 {
		return info, errf("%d trailing bytes after footer", fr.Len())
	}
	return info, nil
}
