package tracefile

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"

	"barrierpoint/internal/trace"
)

// File is a recorded trace opened for replay. It implements trace.Program;
// regions stream straight off the underlying reader, so holding a File
// costs O(index), not O(trace). Region and Thread may be used concurrently
// from multiple goroutines (reads go through io.ReaderAt).
type File struct {
	ra      io.ReaderAt
	closer  io.Closer
	name    string
	version int
	threads int
	regions int
	gzip    bool
	// off and end bound chunk i's payload: [off[i], end[i]). In version 1
	// chunks abut; in version 2 each payload is preceded by its inline
	// uvarint length prefix, so off[i] > end[i-1].
	off, end []int64
}

// Open opens the trace file at path for replay.
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tracefile: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("tracefile: %w", err)
	}
	tf, err := NewReader(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	tf.closer = f
	return tf, nil
}

// NewReader opens a trace stored in an arbitrary io.ReaderAt of the given
// total size (a memory buffer, an mmap, a remote object). Both format
// versions are accepted. The caller keeps ownership of ra; Close on the
// returned File is a no-op.
func NewReader(ra io.ReaderAt, size int64) (*File, error) {
	if size < magicLen+tailLen {
		return nil, fmt.Errorf("tracefile: file too short (%d bytes)", size)
	}
	head := make([]byte, magicLen)
	if _, err := ra.ReadAt(head, 0); err != nil {
		return nil, fmt.Errorf("tracefile: reading header: %w", err)
	}
	var version int
	switch string(head) {
	case magicV1:
		version = 1
	case magicV2:
		version = 2
	default:
		return nil, fmt.Errorf("tracefile: bad magic %q (not a trace file, or unsupported version)", head)
	}
	tail := make([]byte, tailLen)
	if _, err := ra.ReadAt(tail, size-tailLen); err != nil {
		return nil, fmt.Errorf("tracefile: reading trailer: %w", err)
	}
	wantTrailer := trailerMagicV1
	if version == 2 {
		wantTrailer = trailerMagicV2
	}
	if string(tail[8:]) != wantTrailer {
		return nil, fmt.Errorf("tracefile: bad trailer magic %q (truncated file?)", tail[8:])
	}
	footerOff := int64(binary.LittleEndian.Uint64(tail[:8]))
	if footerOff < magicLen || footerOff > size-tailLen {
		return nil, fmt.Errorf("tracefile: footer offset %d out of range [%d, %d]", footerOff, magicLen, size-tailLen)
	}

	footer := make([]byte, size-tailLen-footerOff)
	if _, err := ra.ReadAt(footer, footerOff); err != nil {
		return nil, fmt.Errorf("tracefile: reading footer: %w", err)
	}
	fr := bytes.NewReader(footer)
	name, threads, regions, flags, err := parseMeta(fr, len(footer))
	if err != nil {
		return nil, err
	}

	nchunks := regions * threads
	if nchunks > uint64(len(footer)) { // each length takes >= 1 footer byte
		return nil, fmt.Errorf("tracefile: corrupt footer: %d chunks exceed footer size", nchunks)
	}
	off := make([]int64, nchunks)
	end := make([]int64, nchunks)
	pos := int64(magicLen)
	if version == 2 {
		pos += int64(metaLen(name, threads, regions))
	}
	for i := uint64(0); i < nchunks; i++ {
		n, err := binary.ReadUvarint(fr)
		if err != nil {
			return nil, fmt.Errorf("tracefile: corrupt footer: chunk %d length: %w", i, err)
		}
		if version == 2 {
			pos += int64(uvarintLen(n))
		}
		off[i] = pos
		end[i] = pos + int64(n)
		if end[i] < off[i] || end[i] > footerOff {
			return nil, fmt.Errorf("tracefile: corrupt footer: chunk %d overruns footer", i)
		}
		pos = end[i]
	}
	if pos != footerOff {
		return nil, fmt.Errorf("tracefile: corrupt footer: chunks end at %d, footer starts at %d", pos, footerOff)
	}
	f := &File{
		ra:      ra,
		name:    string(name),
		version: version,
		threads: int(threads),
		regions: int(regions),
		gzip:    flags&flagGzip != 0,
		off:     off,
		end:     end,
	}
	if version == 2 {
		// The streaming header duplicates the footer metadata so uploads
		// can profile before the index arrives; the two copies must agree.
		if err := f.checkHeader(name, threads, regions, flags); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// parseMeta decodes the shared metadata block (name, threads, regions,
// flags) used verbatim by the v2 streaming header and both footers. limit
// bounds the accepted name length.
func parseMeta(fr io.ByteReader, limit int) (name []byte, threads, regions uint64, flags byte, err error) {
	nameLen, err := binary.ReadUvarint(fr)
	if err != nil || nameLen > uint64(limit) {
		return nil, 0, 0, 0, fmt.Errorf("tracefile: corrupt metadata: bad name length")
	}
	name = make([]byte, nameLen)
	if r, ok := fr.(io.Reader); ok {
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, 0, 0, 0, fmt.Errorf("tracefile: corrupt metadata: %w", err)
		}
	} else {
		for i := range name {
			b, err := fr.ReadByte()
			if err != nil {
				return nil, 0, 0, 0, fmt.Errorf("tracefile: corrupt metadata: %w", err)
			}
			name[i] = b
		}
	}
	threads, err = binary.ReadUvarint(fr)
	if err != nil || threads == 0 || threads > 1<<20 {
		return nil, 0, 0, 0, fmt.Errorf("tracefile: corrupt metadata: bad thread count")
	}
	regions, err = binary.ReadUvarint(fr)
	if err != nil || regions > 1<<40 {
		return nil, 0, 0, 0, fmt.Errorf("tracefile: corrupt metadata: bad region count")
	}
	flags, err = fr.ReadByte()
	if err != nil {
		return nil, 0, 0, 0, fmt.Errorf("tracefile: corrupt metadata: %w", err)
	}
	return name, threads, regions, flags, nil
}

// metaLen returns the encoded size of the metadata block.
func metaLen(name []byte, threads, regions uint64) int {
	return uvarintLen(uint64(len(name))) + len(name) + uvarintLen(threads) + uvarintLen(regions) + 1
}

// uvarintLen returns the encoded length of n as a uvarint.
func uvarintLen(n uint64) int {
	l := 1
	for n >= 0x80 {
		n >>= 7
		l++
	}
	return l
}

// checkHeader re-reads the v2 streaming header and verifies it matches the
// footer metadata, so a reader and a streaming consumer of the same bytes
// can never disagree about the trace's shape.
func (f *File) checkHeader(name []byte, threads, regions uint64, flags byte) error {
	hdr := make([]byte, metaLen(name, threads, regions))
	if _, err := f.ra.ReadAt(hdr, magicLen); err != nil {
		return fmt.Errorf("tracefile: reading streaming header: %w", err)
	}
	hr := bytes.NewReader(hdr)
	hname, hthreads, hregions, hflags, err := parseMeta(hr, len(hdr))
	if err != nil {
		return err
	}
	if !bytes.Equal(hname, name) || hthreads != threads || hregions != regions || hflags != flags {
		return fmt.Errorf("tracefile: streaming header disagrees with footer (corrupt file)")
	}
	return nil
}

// Close releases the underlying file handle (if Open created one). Streams
// obtained from the File must not be used after Close.
func (f *File) Close() error {
	if f.closer == nil {
		return nil
	}
	err := f.closer.Close()
	f.closer = nil
	return err
}

// Name implements trace.Program.
func (f *File) Name() string { return f.name }

// Threads implements trace.Program.
func (f *File) Threads() int { return f.threads }

// Regions implements trace.Program.
func (f *File) Regions() int { return f.regions }

// Gzipped reports whether chunks are gzip-compressed.
func (f *File) Gzipped() bool { return f.gzip }

// Version reports the on-disk format version (1 or 2). Only version 2
// carries the streaming header and inline chunk framing that DecodeStream
// needs; version 1 files replay identically but cannot be consumed
// incrementally.
func (f *File) Version() int { return f.version }

// RegionDigest returns the content digest of region i: the SHA-256 of the
// region's encoded chunk payloads under the canonical framing (see
// digestRegion). Two regions digest equal exactly when they replay
// identically, independent of which trace file — or format version —
// carries them, so per-region derived artifacts (profiles) content-address
// across traces.
func (f *File) RegionDigest(i int) (string, error) {
	if i < 0 || i >= f.regions {
		return "", fmt.Errorf("tracefile: region %d out of range [0,%d)", i, f.regions)
	}
	d := newRegionDigester(f.gzip, f.threads)
	for t := 0; t < f.threads; t++ {
		c := i*f.threads + t
		n := f.end[c] - f.off[c]
		d.beginChunk(uint64(n))
		if _, err := io.Copy(d, io.NewSectionReader(f.ra, f.off[c], n)); err != nil {
			return "", fmt.Errorf("tracefile: digesting region %d thread %d: %w", i, t, err)
		}
	}
	return d.sum(), nil
}

// Region implements trace.Program. The returned Region reads its chunks
// lazily; materializing it costs no trace decoding.
func (f *File) Region(i int) trace.Region {
	if i < 0 || i >= f.regions {
		panic(fmt.Sprintf("tracefile: region %d out of range [0,%d)", i, f.regions))
	}
	return &fileRegion{f: f, idx: i}
}

// sectReader is a resettable equivalent of io.SectionReader, so a pooled
// chunkReader carries no per-stream allocations.
type sectReader struct {
	ra       io.ReaderAt
	off, end int64
}

func (r *sectReader) Read(p []byte) (int, error) {
	if r.off >= r.end {
		return 0, io.EOF
	}
	if max := r.end - r.off; int64(len(p)) > max {
		p = p[:max]
	}
	n, err := r.ra.ReadAt(p, r.off)
	r.off += int64(n)
	return n, err
}

// chunkReader bundles the readers a replay stream needs — the bounded file
// view, its bufio buffer, and (for compressed traces) the gzip inflater
// plus its own bufio buffer. A fresh gzip.Reader costs ~40 KiB of window
// and Huffman state per chunk, and the seed allocated one per thread per
// region per replay; the pool reuses them across every stream opened by
// any File in the process. chunkStream returns its reader to the pool when
// the stream is exhausted or fails (abandoned streams are simply collected
// by the GC and the pool refills on demand).
type chunkReader struct {
	sect sectReader
	br   *bufio.Reader // over sect
	zr   gzip.Reader   // over br (gzip traces only)
	zbr  *bufio.Reader // over zr (gzip traces only)
}

var chunkReaderPool = sync.Pool{New: func() any {
	return &chunkReader{
		br:  bufio.NewReader(nil),
		zbr: bufio.NewReader(nil),
	}
}}

// openChunkStream builds a pooled-reader decode stream over the payload
// bytes [off, end) of ra, inflating when gz is set. This is the single
// path behind File replay and the in-memory regions DecodeStream hands to
// the ingest profiler, so the two cannot decode differently.
func openChunkStream(ra io.ReaderAt, off, end int64, gz bool) (*chunkStream, error) {
	cr := chunkReaderPool.Get().(*chunkReader)
	cr.sect = sectReader{ra: ra, off: off, end: end}
	cr.br.Reset(&cr.sect)
	src := cr.br
	if gz {
		if err := cr.zr.Reset(cr.br); err != nil {
			chunkReaderPool.Put(cr)
			return nil, err
		}
		cr.zbr.Reset(&cr.zr)
		src = cr.zbr
	}
	s := newChunkStream(src)
	s.cr = cr
	return s, nil
}

// Verify fully decodes every chunk, checking the encoding end to end.
// Replay itself never requires this; it exists for integrity checks
// (bptool info -verify) and tests.
func (f *File) Verify() error {
	var be trace.BlockExec
	for r := 0; r < f.regions; r++ {
		for t := 0; t < f.threads; t++ {
			s, err := f.stream(r, t)
			if err != nil {
				return err
			}
			for s.Next(&be) {
			}
			if err := s.Err(); err != nil {
				return fmt.Errorf("tracefile: region %d thread %d: %w", r, t, err)
			}
		}
	}
	return nil
}

func (f *File) stream(region, tid int) (*chunkStream, error) {
	i := region*f.threads + tid
	s, err := openChunkStream(f.ra, f.off[i], f.end[i], f.gzip)
	if err != nil {
		return nil, fmt.Errorf("tracefile: region %d thread %d: %w", region, tid, err)
	}
	return s, nil
}

// fileRegion is one on-disk inter-barrier region.
type fileRegion struct {
	f   *File
	idx int
}

// Thread implements trace.Region. Each call opens a fresh stream over the
// thread's chunk; a failure to even open the chunk (corrupt gzip header)
// yields an empty stream whose Err reports the cause.
func (r *fileRegion) Thread(tid int) trace.Stream {
	if tid < 0 || tid >= r.f.threads {
		panic(fmt.Sprintf("tracefile: thread %d out of range [0,%d)", tid, r.f.threads))
	}
	s, err := r.f.stream(r.idx, tid)
	if err != nil {
		return &chunkStream{err: err, done: true}
	}
	return s
}

var (
	_ trace.Program = (*File)(nil)
	_ trace.Region  = (*fileRegion)(nil)
)
