package tracefile

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"

	"barrierpoint/internal/trace"
)

// File is a recorded trace opened for replay. It implements trace.Program;
// regions stream straight off the underlying reader, so holding a File
// costs O(index), not O(trace). Region and Thread may be used concurrently
// from multiple goroutines (reads go through io.ReaderAt).
type File struct {
	ra      io.ReaderAt
	closer  io.Closer
	name    string
	threads int
	regions int
	gzip    bool
	// offs holds regions*threads+1 prefix-summed chunk offsets; chunk i
	// occupies [offs[i], offs[i+1]).
	offs []int64
}

// Open opens the trace file at path for replay.
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tracefile: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("tracefile: %w", err)
	}
	tf, err := NewReader(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	tf.closer = f
	return tf, nil
}

// NewReader opens a trace stored in an arbitrary io.ReaderAt of the given
// total size (a memory buffer, an mmap, a remote object). The caller keeps
// ownership of ra; Close on the returned File is a no-op.
func NewReader(ra io.ReaderAt, size int64) (*File, error) {
	if size < magicLen+tailLen {
		return nil, fmt.Errorf("tracefile: file too short (%d bytes)", size)
	}
	head := make([]byte, magicLen)
	if _, err := ra.ReadAt(head, 0); err != nil {
		return nil, fmt.Errorf("tracefile: reading header: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("tracefile: bad magic %q (not a trace file, or unsupported version)", head)
	}
	tail := make([]byte, tailLen)
	if _, err := ra.ReadAt(tail, size-tailLen); err != nil {
		return nil, fmt.Errorf("tracefile: reading trailer: %w", err)
	}
	if string(tail[8:]) != trailerMagic {
		return nil, fmt.Errorf("tracefile: bad trailer magic %q (truncated file?)", tail[8:])
	}
	footerOff := int64(binary.LittleEndian.Uint64(tail[:8]))
	if footerOff < magicLen || footerOff > size-tailLen {
		return nil, fmt.Errorf("tracefile: footer offset %d out of range [%d, %d]", footerOff, magicLen, size-tailLen)
	}

	footer := make([]byte, size-tailLen-footerOff)
	if _, err := ra.ReadAt(footer, footerOff); err != nil {
		return nil, fmt.Errorf("tracefile: reading footer: %w", err)
	}
	fr := bytes.NewReader(footer)
	nameLen, err := binary.ReadUvarint(fr)
	if err != nil || nameLen > uint64(len(footer)) {
		return nil, fmt.Errorf("tracefile: corrupt footer: bad name length")
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(fr, name); err != nil {
		return nil, fmt.Errorf("tracefile: corrupt footer: %w", err)
	}
	threads, err := binary.ReadUvarint(fr)
	if err != nil || threads == 0 || threads > 1<<20 {
		return nil, fmt.Errorf("tracefile: corrupt footer: bad thread count")
	}
	regions, err := binary.ReadUvarint(fr)
	if err != nil || regions > 1<<40 {
		return nil, fmt.Errorf("tracefile: corrupt footer: bad region count")
	}
	flags, err := fr.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("tracefile: corrupt footer: %w", err)
	}

	nchunks := regions * threads
	if nchunks > uint64(len(footer)) { // each length takes >= 1 footer byte
		return nil, fmt.Errorf("tracefile: corrupt footer: %d chunks exceed footer size", nchunks)
	}
	offs := make([]int64, nchunks+1)
	offs[0] = magicLen
	for i := uint64(0); i < nchunks; i++ {
		n, err := binary.ReadUvarint(fr)
		if err != nil {
			return nil, fmt.Errorf("tracefile: corrupt footer: chunk %d length: %w", i, err)
		}
		offs[i+1] = offs[i] + int64(n)
		if offs[i+1] < offs[i] || offs[i+1] > footerOff {
			return nil, fmt.Errorf("tracefile: corrupt footer: chunk %d overruns footer", i)
		}
	}
	if offs[nchunks] != footerOff {
		return nil, fmt.Errorf("tracefile: corrupt footer: chunks end at %d, footer starts at %d", offs[nchunks], footerOff)
	}
	return &File{
		ra:      ra,
		name:    string(name),
		threads: int(threads),
		regions: int(regions),
		gzip:    flags&flagGzip != 0,
		offs:    offs,
	}, nil
}

// Close releases the underlying file handle (if Open created one). Streams
// obtained from the File must not be used after Close.
func (f *File) Close() error {
	if f.closer == nil {
		return nil
	}
	err := f.closer.Close()
	f.closer = nil
	return err
}

// Name implements trace.Program.
func (f *File) Name() string { return f.name }

// Threads implements trace.Program.
func (f *File) Threads() int { return f.threads }

// Regions implements trace.Program.
func (f *File) Regions() int { return f.regions }

// Gzipped reports whether chunks are gzip-compressed.
func (f *File) Gzipped() bool { return f.gzip }

// Region implements trace.Program. The returned Region reads its chunks
// lazily; materializing it costs no trace decoding.
func (f *File) Region(i int) trace.Region {
	if i < 0 || i >= f.regions {
		panic(fmt.Sprintf("tracefile: region %d out of range [0,%d)", i, f.regions))
	}
	return &fileRegion{f: f, idx: i}
}

// sectReader is a resettable equivalent of io.SectionReader, so a pooled
// chunkReader carries no per-stream allocations.
type sectReader struct {
	ra       io.ReaderAt
	off, end int64
}

func (r *sectReader) Read(p []byte) (int, error) {
	if r.off >= r.end {
		return 0, io.EOF
	}
	if max := r.end - r.off; int64(len(p)) > max {
		p = p[:max]
	}
	n, err := r.ra.ReadAt(p, r.off)
	r.off += int64(n)
	return n, err
}

// chunkReader bundles the readers a replay stream needs — the bounded file
// view, its bufio buffer, and (for compressed traces) the gzip inflater
// plus its own bufio buffer. A fresh gzip.Reader costs ~40 KiB of window
// and Huffman state per chunk, and the seed allocated one per thread per
// region per replay; the pool reuses them across every stream opened by
// any File in the process. chunkStream returns its reader to the pool when
// the stream is exhausted or fails (abandoned streams are simply collected
// by the GC and the pool refills on demand).
type chunkReader struct {
	sect sectReader
	br   *bufio.Reader // over sect
	zr   gzip.Reader   // over br (gzip traces only)
	zbr  *bufio.Reader // over zr (gzip traces only)
}

var chunkReaderPool = sync.Pool{New: func() any {
	return &chunkReader{
		br:  bufio.NewReader(nil),
		zbr: bufio.NewReader(nil),
	}
}}

// Verify fully decodes every chunk, checking the encoding end to end.
// Replay itself never requires this; it exists for integrity checks
// (bptool info -verify) and tests.
func (f *File) Verify() error {
	var be trace.BlockExec
	for r := 0; r < f.regions; r++ {
		for t := 0; t < f.threads; t++ {
			s, err := f.stream(r, t)
			if err != nil {
				return err
			}
			for s.Next(&be) {
			}
			if err := s.Err(); err != nil {
				return fmt.Errorf("tracefile: region %d thread %d: %w", r, t, err)
			}
		}
	}
	return nil
}

func (f *File) stream(region, tid int) (*chunkStream, error) {
	i := region*f.threads + tid
	cr := chunkReaderPool.Get().(*chunkReader)
	cr.sect = sectReader{ra: f.ra, off: f.offs[i], end: f.offs[i+1]}
	cr.br.Reset(&cr.sect)
	src := cr.br
	if f.gzip {
		if err := cr.zr.Reset(cr.br); err != nil {
			chunkReaderPool.Put(cr)
			return nil, fmt.Errorf("tracefile: region %d thread %d: %w", region, tid, err)
		}
		cr.zbr.Reset(&cr.zr)
		src = cr.zbr
	}
	s := newChunkStream(src)
	s.cr = cr
	return s, nil
}

// fileRegion is one on-disk inter-barrier region.
type fileRegion struct {
	f   *File
	idx int
}

// Thread implements trace.Region. Each call opens a fresh stream over the
// thread's chunk; a failure to even open the chunk (corrupt gzip header)
// yields an empty stream whose Err reports the cause.
func (r *fileRegion) Thread(tid int) trace.Stream {
	if tid < 0 || tid >= r.f.threads {
		panic(fmt.Sprintf("tracefile: thread %d out of range [0,%d)", tid, r.f.threads))
	}
	s, err := r.f.stream(r.idx, tid)
	if err != nil {
		return &chunkStream{err: err, done: true}
	}
	return s
}

var (
	_ trace.Program = (*File)(nil)
	_ trace.Region  = (*fileRegion)(nil)
)
