package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestVarianceAndStdErr(t *testing.T) {
	// Hand-computed: xs = {2, 4, 4, 4, 5, 5, 7, 9}, mean 5, sample var 32/7.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got, want := Variance(xs), 32.0/7.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if got, want := StdErr(xs), math.Sqrt(32.0/7.0/8.0); math.Abs(got-want) > 1e-12 {
		t.Errorf("StdErr = %v, want %v", got, want)
	}
	if Variance(nil) != 0 || Variance([]float64{3}) != 0 {
		t.Error("Variance of <2 samples should be 0")
	}
	if StdErr(nil) != 0 || StdErr([]float64{3}) != 0 {
		t.Error("StdErr of <2 samples should be 0")
	}
}

func TestVarianceShiftInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(20)
		xs := make([]float64, n)
		shifted := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
			shifted[i] = xs[i] + 1e6
		}
		v, sv := Variance(xs), Variance(shifted)
		if math.Abs(v-sv) > 1e-6*(1+v) {
			t.Fatalf("trial %d: variance not shift invariant: %v vs %v", trial, v, sv)
		}
	}
}

func TestTCritical(t *testing.T) {
	cases := []struct {
		dof, conf, want float64
	}{
		{1, 0.95, 12.706},
		{2, 0.95, 4.303},
		{9, 0.95, 2.262},
		{30, 0.95, 2.042},
		{31, 0.95, 1.960},   // beyond the table: normal quantile
		{1e9, 0.95, 1.960},  // asymptotic
		{0, 0.95, 1.960},    // proxy variance, no measured samples
		{2.9, 0.95, 4.303},  // fractional dof rounds down (conservative)
		{5, 0.90, 2.015},
		{5, 0.99, 4.032},
	}
	for _, c := range cases {
		got, err := TCritical(c.dof, c.conf)
		if err != nil {
			t.Fatalf("TCritical(%v, %v): %v", c.dof, c.conf, err)
		}
		if got != c.want {
			t.Errorf("TCritical(%v, %v) = %v, want %v", c.dof, c.conf, got, c.want)
		}
	}
	if _, err := TCritical(5, 0.85); err == nil {
		t.Error("unsupported confidence accepted")
	}
}

func TestTCriticalMonotoneInDof(t *testing.T) {
	prev := math.Inf(1)
	for dof := 1.0; dof <= 35; dof++ {
		c, err := TCritical(dof, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if c > prev {
			t.Fatalf("TCritical not non-increasing at dof=%v: %v > %v", dof, c, prev)
		}
		prev = c
	}
}

func TestTInterval(t *testing.T) {
	iv, err := TInterval(10, 0.5, 10, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2.262 * 0.5; math.Abs(iv.Half-want) > 1e-12 {
		t.Errorf("Half = %v, want %v", iv.Half, want)
	}
	if !iv.Covers(10) || !iv.Covers(iv.Lo()) || !iv.Covers(iv.Hi()) {
		t.Error("interval must cover its center and bounds")
	}
	if iv.Covers(iv.Hi() + 1e-9) {
		t.Error("interval covers a point above its upper bound")
	}
	if got := iv.Rel(); math.Abs(got-iv.Half/10) > 1e-15 {
		t.Errorf("Rel = %v", got)
	}
	// Degenerate inputs: no width, never an error.
	if iv, err := TInterval(5, 0, 100, 0.95); err != nil || iv.Half != 0 {
		t.Errorf("zero stderr: %v, %v", iv, err)
	}
	if iv, err := TInterval(5, 1, 1, 0.95); err != nil || iv.Half != 0 {
		t.Errorf("single sample: %v, %v", iv, err)
	}
}

func TestIntervalRelZeroCenter(t *testing.T) {
	if (Interval{Center: 0, Half: 3}).Rel() != 0 {
		t.Error("Rel of zero-centered interval should be 0")
	}
}

func TestWeightedSumVarianceExact(t *testing.T) {
	v, err := WeightedSumVariance([]float64{2, 3}, []float64{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if want := 4.0*1 + 9*4; v != want {
		t.Errorf("WeightedSumVariance = %v, want %v", v, want)
	}
	if _, err := WeightedSumVariance([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

// TestWeightedSumVariancePropertyMonteCarlo quick-checks the propagation
// formula against a naive Monte Carlo estimate: draw independent gaussians
// X_i ~ N(mu_i, var_i), form Σ w_i·X_i many times, and compare the empirical
// variance of the sums with the propagated one. Randomized but fully
// deterministic (fixed seed), so a failure is reproducible.
func TestWeightedSumVariancePropertyMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const samples = 200_000
	for trial := 0; trial < 8; trial++ {
		k := 1 + rng.Intn(6)
		ws := make([]float64, k)
		vars := make([]float64, k)
		mus := make([]float64, k)
		for i := 0; i < k; i++ {
			ws[i] = rng.Float64()*4 - 2 // include negative weights
			sd := rng.Float64()*3 + 0.1
			vars[i] = sd * sd
			mus[i] = rng.Float64() * 10
		}
		want, err := WeightedSumVariance(ws, vars)
		if err != nil {
			t.Fatal(err)
		}

		sums := make([]float64, samples)
		for s := 0; s < samples; s++ {
			var total float64
			for i := 0; i < k; i++ {
				total += ws[i] * (mus[i] + rng.NormFloat64()*math.Sqrt(vars[i]))
			}
			sums[s] = total
		}
		got := Variance(sums)
		// Var of a sample variance is ~2σ⁴/n; 5 sigma on 200k samples is
		// well under 2% relative. Allow 3%.
		if want > 0 && math.Abs(got-want)/want > 0.03 {
			t.Errorf("trial %d (k=%d): Monte Carlo variance %v vs propagated %v", trial, k, got, want)
		}
	}
}
