// Package stats provides the small statistical helpers used by the
// experiment harness: means, absolute percentage errors, and summaries.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// HarmonicMean returns the harmonic mean of xs; entries must be positive.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += 1 / x
	}
	return float64(len(xs)) / s
}

// Max returns the maximum of xs (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		m = math.Max(m, x)
	}
	return m
}

// Min returns the minimum of xs (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		m = math.Min(m, x)
	}
	return m
}

// Median returns the median of xs (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// AbsPctErr returns |est-actual|/actual × 100. It returns 0 when actual is
// zero and est is zero, and +Inf when only actual is zero.
func AbsPctErr(est, actual float64) float64 {
	if actual == 0 {
		if est == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(est-actual) / math.Abs(actual) * 100
}

// Summary describes a sample compactly.
type Summary struct {
	N              int
	Mean, Min, Max float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{N: len(xs), Mean: Mean(xs), Min: Min(xs), Max: Max(xs)}
}

// String renders the summary.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f min=%.3f max=%.3f", s.N, s.Mean, s.Min, s.Max)
}
