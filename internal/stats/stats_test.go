package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeans(t *testing.T) {
	xs := []float64{1, 2, 4}
	if Mean(xs) != 7.0/3 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	want := 3.0 / (1 + 0.5 + 0.25)
	if math.Abs(HarmonicMean(xs)-want) > 1e-12 {
		t.Errorf("HarmonicMean = %v, want %v", HarmonicMean(xs), want)
	}
	if Mean(nil) != 0 || HarmonicMean(nil) != 0 {
		t.Error("empty means not zero")
	}
	if HarmonicMean([]float64{1, 0}) != 0 {
		t.Error("harmonic mean with zero entry should be 0")
	}
}

func TestHarmonicLEArithmetic(t *testing.T) {
	f := func(raw []uint16) bool {
		var xs []float64
		for _, r := range raw {
			xs = append(xs, float64(r)+1)
		}
		if len(xs) == 0 {
			return true
		}
		return HarmonicMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{5, 1, 9, 3}
	if Min(xs) != 1 || Max(xs) != 9 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if Median(xs) != 4 {
		t.Errorf("Median = %v", Median(xs))
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median wrong")
	}
	if Min(nil) != 0 || Max(nil) != 0 || Median(nil) != 0 {
		t.Error("empty min/max/median not zero")
	}
}

func TestAbsPctErr(t *testing.T) {
	if AbsPctErr(110, 100) != 10 {
		t.Errorf("AbsPctErr = %v", AbsPctErr(110, 100))
	}
	if AbsPctErr(90, 100) != 10 {
		t.Errorf("AbsPctErr = %v", AbsPctErr(90, 100))
	}
	if AbsPctErr(0, 0) != 0 {
		t.Error("0/0 should be 0")
	}
	if !math.IsInf(AbsPctErr(1, 0), 1) {
		t.Error("x/0 should be +Inf")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String")
	}
}
