package stats

import (
	"fmt"
	"math"
)

// Variance returns the unbiased (n-1 denominator) sample variance of xs.
// It returns 0 for fewer than two samples.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdErr returns the standard error of the mean of xs: sqrt(Variance/n).
// It returns 0 for fewer than two samples.
func StdErr(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return math.Sqrt(Variance(xs) / float64(len(xs)))
}

// WeightedSumVariance propagates independent per-term variances through the
// weighted sum Σ w_i·X_i: Var(Σ w_i·X_i) = Σ w_i²·Var(X_i). This is the
// SMARTS-style propagation step of the adaptive sampler: each cluster's
// contribution is an independently estimated term scaled by its remaining
// instruction weight.
func WeightedSumVariance(weights, variances []float64) (float64, error) {
	if len(weights) != len(variances) {
		return 0, fmt.Errorf("stats: %d weights for %d variances", len(weights), len(variances))
	}
	var v float64
	for i, w := range weights {
		v += w * w * variances[i]
	}
	return v, nil
}

// tTable holds two-sided Student-t critical values indexed by degrees of
// freedom 1..30; rows beyond 30 fall through to the asymptotic normal
// quantile. Values are the standard t-distribution table.
var tTable = map[float64][30]float64{
	0.90: {6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
		1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
		1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697},
	0.95: {12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042},
	0.99: {63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
		3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
		2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750},
}

// zTable holds the asymptotic (normal) two-sided critical values used for
// large degrees of freedom.
var zTable = map[float64]float64{0.90: 1.645, 0.95: 1.960, 0.99: 2.576}

// Confidences lists the supported two-sided confidence levels.
func Confidences() []float64 { return []float64{0.90, 0.95, 0.99} }

// TCritical returns the two-sided Student-t critical value for the given
// degrees of freedom and confidence level (0.90, 0.95 or 0.99). Fractional
// degrees of freedom (Welch–Satterthwaite) round down conservatively;
// dof <= 0 and dof > 30 both use the asymptotic normal quantile — the
// former because a proxy variance with no measured samples has no
// small-sample correction to apply.
func TCritical(dof, confidence float64) (float64, error) {
	row, ok := tTable[confidence]
	if !ok {
		return 0, fmt.Errorf("stats: unsupported confidence %v (want 0.90, 0.95 or 0.99)", confidence)
	}
	if dof <= 0 || math.IsInf(dof, 1) || dof > 30 {
		return zTable[confidence], nil
	}
	d := int(dof)
	if d < 1 {
		d = 1
	}
	return row[d-1], nil
}

// Interval is a symmetric confidence interval around a point estimate.
type Interval struct {
	Center float64
	Half   float64 // half-width, >= 0
}

// Lo returns the interval's lower bound.
func (iv Interval) Lo() float64 { return iv.Center - iv.Half }

// Hi returns the interval's upper bound.
func (iv Interval) Hi() float64 { return iv.Center + iv.Half }

// Rel returns the relative half-width |Half/Center| (0 when Center is 0).
func (iv Interval) Rel() float64 {
	if iv.Center == 0 {
		return 0
	}
	return math.Abs(iv.Half / iv.Center)
}

// Covers reports whether x lies within the interval (inclusive).
func (iv Interval) Covers(x float64) bool {
	return x >= iv.Lo() && x <= iv.Hi()
}

// String renders the interval as "center ± half".
func (iv Interval) String() string {
	return fmt.Sprintf("%.6g ± %.3g", iv.Center, iv.Half)
}

// TInterval returns the two-sided Student-t confidence interval of a sample
// of n observations with the given mean and standard error: mean ± t·se with
// n-1 degrees of freedom. n <= 1 yields a degenerate zero-width interval.
func TInterval(mean, stderr float64, n int, confidence float64) (Interval, error) {
	if n <= 1 || stderr == 0 {
		return Interval{Center: mean}, nil
	}
	t, err := TCritical(float64(n-1), confidence)
	if err != nil {
		return Interval{}, err
	}
	return Interval{Center: mean, Half: t * stderr}, nil
}
