// Package report renders experiment results as aligned ASCII tables and
// simple horizontal bar charts, so every paper table and figure can be
// regenerated as text.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// FormatMetric renders a metric value with a fixed number of decimals —
// the single formatting path for every numeric cell in campaign matrices
// and report tables, so text, markdown and JSON renderings of the same
// value can never drift apart.
func FormatMetric(v float64, prec int) string {
	return strconv.FormatFloat(v, 'f', prec, 64)
}

// FormatInterval renders "v ± half" at the given precision; a zero or
// negative half-width degrades to the plain metric (no error bar known).
func FormatInterval(v, half float64, prec int) string {
	if half <= 0 {
		return FormatMetric(v, prec)
	}
	return FormatMetric(v, prec) + " ± " + FormatMetric(half, prec)
}

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(format string, args ...any) {
	t.AddRow(strings.Split(fmt.Sprintf(format, args...), "\t")...)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Headers)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total-2))
	for _, r := range t.Rows {
		line(r)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "**%s**\n\n", t.Title)
	}
	fmt.Fprintf(&sb, "| %s |\n", strings.Join(t.Headers, " | "))
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(&sb, "| %s |\n", strings.Join(seps, " | "))
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "| %s |\n", strings.Join(r, " | "))
	}
	return sb.String()
}

// JSON renders the table as indented JSON: an object with "title",
// "headers" and "rows", all cells as strings. Encoding is deterministic
// (field order is fixed, cells are pre-formatted strings), so two tables
// with equal contents render byte-identically — the property the campaign
// tier relies on to compare resumed and farmed runs.
func (t *Table) JSON() string {
	doc := struct {
		Title   string     `json:"title,omitempty"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}{t.Title, t.Headers, t.Rows}
	if doc.Rows == nil {
		doc.Rows = [][]string{}
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		// Strings always marshal; a failure is a programming error.
		panic(fmt.Sprintf("report: marshaling table: %v", err))
	}
	return string(b) + "\n"
}

// Bar renders one horizontal bar of a chart: the label, a bar scaled to
// width characters at value/max, and the numeric value.
func Bar(w io.Writer, label string, value, max float64, width int) {
	n := 0
	if max > 0 {
		n = int(value / max * float64(width))
	}
	if n > width {
		n = width
	}
	if n < 0 {
		n = 0
	}
	fmt.Fprintf(w, "%-28s |%s%s| %.3g\n", label,
		strings.Repeat("#", n), strings.Repeat(" ", width-n), value)
}

// BarChart renders a labeled chart of values with a shared scale.
func BarChart(w io.Writer, title string, labels []string, values []float64, width int) {
	fmt.Fprintln(w, title)
	var max float64
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	for i := range labels {
		Bar(w, labels[i], values[i], max, width)
	}
}
