package report

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// golden compares got against testdata/<name>.golden, rewriting the file
// when the test runs with -update.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run `go test ./internal/report -update` to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output does not match %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// fixtureTable builds a deterministic table exercising alignment: ragged
// cell widths, a dropped extra cell, a padded short row, and formatting via
// AddRowf.
func fixtureTable() *Table {
	t := NewTable("Figure 0: fixture selection", "benchmark", "barrierpoints", "error (%)")
	t.AddRow("npb-ft", "9", "0.3")
	t.AddRow("parsec-bodytrack", "12", "1.25", "dropped")
	t.AddRow("npb-is")
	t.AddRowf("npb-sp\t%d\t%.2f", 17, 0.51)
	return t
}

func TestGoldenTableRender(t *testing.T) {
	golden(t, "table_render", fixtureTable().String())
}

func TestGoldenTableNoTitle(t *testing.T) {
	tbl := fixtureTable()
	tbl.Title = ""
	golden(t, "table_no_title", tbl.String())
}

func TestGoldenTableMarkdown(t *testing.T) {
	golden(t, "table_markdown", fixtureTable().Markdown())
}

func TestGoldenTableJSON(t *testing.T) {
	golden(t, "table_json", fixtureTable().JSON())
}

func TestGoldenTableJSONEmpty(t *testing.T) {
	golden(t, "table_json_empty", NewTable("", "a", "b").JSON())
}

func TestGoldenBarChart(t *testing.T) {
	var sb strings.Builder
	BarChart(&sb, "serial speedup", []string{"npb-ft", "npb-is", "npb-sp"},
		[]float64{3.7, 1.0, 21.4}, 40)
	Bar(&sb, "clamped-over-max", 30, 10, 40)
	Bar(&sb, "zero-max", 5, 0, 40)
	golden(t, "barchart", sb.String())
}
