package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("Title", "a", "bbbb")
	tbl.AddRow("x", "1")
	tbl.AddRow("longer", "2")
	out := tbl.String()
	if !strings.Contains(out, "Title") || !strings.Contains(out, "longer") {
		t.Errorf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
}

func TestTableRowClamping(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.AddRow("1", "2", "3") // extra cell dropped
	tbl.AddRow("only")        // short row padded
	if len(tbl.Rows[0]) != 2 || len(tbl.Rows[1]) != 2 {
		t.Errorf("rows not normalized: %v", tbl.Rows)
	}
	if tbl.Rows[1][1] != "" {
		t.Error("missing cell not empty")
	}
}

func TestTableAddRowf(t *testing.T) {
	tbl := NewTable("", "x", "y")
	tbl.AddRowf("%d\t%.1f", 3, 2.5)
	if tbl.Rows[0][0] != "3" || tbl.Rows[0][1] != "2.5" {
		t.Errorf("AddRowf row = %v", tbl.Rows[0])
	}
}

func TestMarkdown(t *testing.T) {
	tbl := NewTable("T", "a", "b")
	tbl.AddRow("1", "2")
	md := tbl.Markdown()
	for _, want := range []string{"**T**", "| a | b |", "| --- | --- |", "| 1 | 2 |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestBarClamps(t *testing.T) {
	var sb strings.Builder
	Bar(&sb, "x", 5, 10, 20)
	out := sb.String()
	if strings.Count(out, "#") != 10 {
		t.Errorf("half bar should have 10 #: %q", out)
	}
	sb.Reset()
	Bar(&sb, "x", 50, 10, 20) // over max: clamp to width
	if strings.Count(sb.String(), "#") != 20 {
		t.Errorf("over-max bar not clamped: %q", sb.String())
	}
	sb.Reset()
	Bar(&sb, "x", 1, 0, 20) // zero max: no bar
	if strings.Count(sb.String(), "#") != 0 {
		t.Errorf("zero-max bar not empty: %q", sb.String())
	}
}

func TestBarChart(t *testing.T) {
	var sb strings.Builder
	BarChart(&sb, "chart", []string{"a", "b"}, []float64{1, 2}, 10)
	out := sb.String()
	if !strings.Contains(out, "chart") || strings.Count(out, "\n") != 3 {
		t.Errorf("chart output wrong:\n%s", out)
	}
}

func TestFormatMetric(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		prec int
		want string
	}{
		{1.23456, 2, "1.23"},
		{1.235, 2, "1.24"},
		{-0.5, 3, "-0.500"},
		{0, 1, "0.0"},
		{1e6, 0, "1000000"},
	} {
		if got := FormatMetric(tc.v, tc.prec); got != tc.want {
			t.Errorf("FormatMetric(%v, %d) = %q, want %q", tc.v, tc.prec, got, tc.want)
		}
	}
}

func TestFormatInterval(t *testing.T) {
	if got, want := FormatInterval(12.345, 0.067, 2), "12.35 ± 0.07"; got != want {
		t.Errorf("FormatInterval = %q, want %q", got, want)
	}
	// No known error bar degrades to the plain metric.
	if got, want := FormatInterval(12.345, 0, 2), "12.35"; got != want {
		t.Errorf("FormatInterval with zero half = %q, want %q", got, want)
	}
	if got, want := FormatInterval(12.345, -1, 2), "12.35"; got != want {
		t.Errorf("FormatInterval with negative half = %q, want %q", got, want)
	}
}
