package service

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"barrierpoint/internal/profile"
	"barrierpoint/internal/signature"
	"barrierpoint/internal/store"
	"barrierpoint/internal/trace"
	"barrierpoint/internal/tracefile"
)

// Per-region profile cache plumbing.
//
// Region profiles (per-thread BBV + LDV + instruction counts) are keyed in
// the store by (region content digest, codec version) — see
// store.PutProfile. The digest is computed from the region's encoded chunk
// payloads (tracefile.File.RegionDigest), so a profile cached while a
// trace streamed in (Manager.IngestTrace) is found by any later analysis
// of any trace containing that region. The profile is independent of every
// signature and clustering knob (signature.Options are applied by
// signature.Build after the fact), so re-clustering with a different K,
// scale or signature variant reuses all profiles and pays only k-means.

// ProfileStats reports where an analysis's region profiles came from.
type ProfileStats struct {
	Regions  int `json:"regions"`
	Cached   int `json:"cached"`
	Computed int `json:"computed"`
}

func (s *ProfileStats) add(o ProfileStats) {
	s.Regions += o.Regions
	s.Cached += o.Cached
	s.Computed += o.Computed
}

// cachedProfile loads and decodes the profile for one region digest. A
// missing entry or an undecodable blob (foreign bytes, torn write from a
// pre-fsync store version) is a miss, never an error: the caller
// recomputes and overwrites.
func cachedProfile(st *store.Store, digest string) *signature.RegionData {
	blob, err := st.GetProfile(digest, signature.CodecVersion)
	if err != nil {
		return nil
	}
	rd, err := signature.DecodeRegionData(blob)
	if err != nil {
		return nil
	}
	return rd
}

// profileRegion profiles one region and caches the result under its
// digest, reporting whether this call created the store entry (false when
// a concurrent writer got there first). Cache-write failures fail the
// call: a store that cannot write profiles will not get further than the
// selection artifact either, and failing here keeps the ingest/analyze
// invariants ("by 201 the profiles are in the store") honest.
func profileRegion(st *store.Store, r trace.Region, threads int, digest string) (*signature.RegionData, bool, error) {
	rd := profile.Region(r, threads)
	existed, err := st.PutProfile(digest, signature.CodecVersion, signature.EncodeRegionData(rd))
	if err != nil {
		return nil, false, err
	}
	return rd, !existed, nil
}

// profilesFor collects the per-region profiles of an open trace, serving
// each region from the profile cache and computing + caching misses, in
// parallel across regions like profile.Program. Results are ordered by
// region index and bit-identical to a direct profiling pass (the codec
// round-trips exact float bits), so selections built from them match the
// cold path byte for byte. prog is the replay view to profile misses
// through (the caller's replay-cache wrapper of f, or f itself).
func profilesFor(st *store.Store, f *tracefile.File, prog trace.Program) ([]*signature.RegionData, ProfileStats, error) {
	n := f.Regions()
	out := make([]*signature.RegionData, n)
	stats := ProfileStats{Regions: n}
	var cached, computed atomic.Int64

	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				mu.Lock()
				failed := firstErr != nil
				mu.Unlock()
				if failed {
					continue
				}
				digest, err := f.RegionDigest(i)
				if err == nil {
					if rd := cachedProfile(st, digest); rd != nil {
						out[i] = rd
						cached.Add(1)
						continue
					}
					out[i], _, err = profileRegion(st, prog.Region(i), f.Threads(), digest)
					if err == nil {
						computed.Add(1)
						continue
					}
				}
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("service: profiling region %d: %w", i, err)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, stats, firstErr
	}
	stats.Cached = int(cached.Load())
	stats.Computed = int(computed.Load())
	return out, stats, nil
}
