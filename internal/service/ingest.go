package service

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"barrierpoint/internal/signature"
	"barrierpoint/internal/tracefile"
)

// IngestResult describes one trace upload consumed by IngestTrace.
type IngestResult struct {
	Key     string `json:"key"`     // content key of the stored trace
	Existed bool   `json:"existed"` // the store already held these bytes
	// Streamed reports the upload was decoded incrementally (version-2
	// format): per-region profiles were computed and cached while the body
	// was still transferring, so by the time the caller sees this result a
	// subsequent analyze pays zero profiling. Version-1 uploads are stored
	// and validated but not profiled in flight.
	Streamed bool   `json:"streamed"`
	Name     string `json:"name"`
	Threads  int    `json:"threads"`
	Regions  int    `json:"regions"`
	// ProfilesCached counts regions whose profile was already in the store
	// (re-upload of shared content); ProfilesComputed counts profiles this
	// ingest computed and cached.
	ProfilesCached   int `json:"profiles_cached"`
	ProfilesComputed int `json:"profiles_computed"`
}

// IngestTrace consumes one trace upload: the bytes are hashed and
// persisted through a durable store.TraceWriter while, concurrently, each
// region is profiled the moment its last byte arrives and the profile is
// cached under the region's content digest. On success the trace is
// committed and every region profile is already in the store — an
// analyze submitted right after returns with 0 freshly-profiled regions.
//
// Failure leaves no partial state: a decode error, a profiling error or a
// commit error aborts the trace write (the temp file is removed, the key
// never becomes visible) and removes exactly the profile entries this
// call created — profiles that pre-existed (shared region content) are
// untouched, as is everything else in the store.
//
// Version-1 uploads carry no inline framing, so they are stored, then
// validated by reopening the committed file; profiling happens lazily at
// first analyze instead.
func (m *Manager) IngestTrace(r io.Reader) (IngestResult, error) {
	tw, err := m.st.NewTraceWriter()
	if err != nil {
		return IngestResult{}, err
	}
	var (
		createdMu sync.Mutex
		created   []string // digests whose profile entry this ingest created
	)
	committed := false
	defer func() {
		if committed {
			return
		}
		tw.Abort()
		// Mirror RemoveTrace cleanup: a failed upload must not orphan
		// profile artifacts for a trace that was never stored. PutProfile
		// publishes exclusively, so each digest here was created by this
		// ingest alone — cleanup cannot race another ingest's claim of
		// creation. One narrow window remains: a concurrent ingest of
		// overlapping region content may have counted one of these entries
		// as a cache hit before we remove it; its trace's first analyze
		// recomputes the profile from the stored bytes, so the result is
		// unchanged and the cache self-heals.
		createdMu.Lock()
		defer createdMu.Unlock()
		for _, d := range created {
			_ = m.st.RemoveProfile(d, signature.CodecVersion)
		}
	}()

	var cached, computed atomic.Int64
	var (
		errMu   sync.Mutex
		profErr error
	)
	setErr := func(err error) {
		errMu.Lock()
		if profErr == nil {
			profErr = err
		}
		errMu.Unlock()
	}
	getErr := func() error {
		errMu.Lock()
		defer errMu.Unlock()
		return profErr
	}

	// Profiling runs on a bounded pool beside the decode; the small channel
	// buffer gives backpressure, so a fast uploader cannot queue unbounded
	// decoded regions ahead of the profilers.
	workers := runtime.GOMAXPROCS(0)
	work := make(chan tracefile.RegionChunks, workers)
	var wg sync.WaitGroup
	var closeOnce sync.Once
	closeWork := func() { closeOnce.Do(func() { close(work) }) }
	// Drain the pool on every exit, including a panic out of DecodeStream
	// or the tee'd writer: an HTTP server recovers handler panics, and a
	// stranded pool of workers per bad request would accumulate silently.
	// Registered after the cleanup defer above so the workers are gone
	// (LIFO order) before cleanup reads the digests they created.
	defer func() {
		closeWork()
		wg.Wait()
	}()
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rc := range work {
				if getErr() != nil {
					continue
				}
				if m.st.HasProfile(rc.Digest, signature.CodecVersion) {
					cached.Add(1)
					continue
				}
				_, createdNow, err := profileRegion(m.st, rc.Region(), len(rc.Chunks), rc.Digest)
				if err != nil {
					setErr(fmt.Errorf("service: profiling region %d during ingest: %w", rc.Index, err))
					continue
				}
				computed.Add(1)
				if createdNow {
					createdMu.Lock()
					created = append(created, rc.Digest)
					createdMu.Unlock()
				}
			}
		}()
	}

	info, derr := tracefile.DecodeStream(io.TeeReader(r, tw), func(rc tracefile.RegionChunks) error {
		if err := getErr(); err != nil {
			return err // a profiler failed; stop consuming the upload
		}
		work <- rc
		return nil
	})
	closeWork()
	wg.Wait()
	if derr == nil {
		derr = getErr()
	}
	if derr != nil {
		return IngestResult{}, derr
	}

	key, existed, err := tw.Commit()
	if err != nil {
		return IngestResult{}, err
	}
	committed = true
	res := IngestResult{
		Key:              key,
		Existed:          existed,
		Streamed:         info.Streamed,
		Name:             info.Name,
		Threads:          info.Threads,
		Regions:          info.Regions,
		ProfilesCached:   int(cached.Load()),
		ProfilesComputed: int(computed.Load()),
	}
	if !info.Streamed {
		// Legacy v1 bytes were stored unvalidated (no inline framing to
		// check); reopen the committed file so a corrupt upload is rejected
		// now, not at first analyze.
		f, err := m.st.OpenTrace(key)
		if err != nil {
			if !existed {
				_ = m.st.RemoveTrace(key)
			}
			return IngestResult{}, fmt.Errorf("%w: uploaded v1 trace does not parse: %v", tracefile.ErrFormat, err)
		}
		res.Name, res.Threads, res.Regions = f.Name(), f.Threads(), f.Regions()
		f.Close()
	}
	m.ingestedTraces.Add(1)
	m.ingestedProfiles.Add(computed.Load())
	m.profileCacheHits.Add(cached.Load())
	m.profileComputed.Add(computed.Load())
	return res, nil
}
