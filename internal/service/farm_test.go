package service

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"barrierpoint/internal/farm"
)

// submitAndWait runs one job to completion.
func submitAndWait(t *testing.T, m *Manager, req Request) Snapshot {
	t.Helper()
	snap, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	snap, err = m.Wait(ctx, snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestFarmedEstimateMatchesLocal is the subsystem's acceptance test: the
// same estimate computed through the farm (two in-process workers over
// the distributed queue) and computed locally on a completely separate
// store must produce byte-identical result payloads.
func TestFarmedEstimateMatchesLocal(t *testing.T) {
	// Farm side: manager + queue + two workers sharing the server store.
	st, key := newTestStore(t)
	q := farm.NewQueue(st, farm.Config{})
	m := New(st, 2, 0)
	m.SetFarm(q)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 2; i++ {
		go farm.RunLocalWorker(ctx, q, st, "svc-test")
	}
	defer m.Shutdown(context.Background())

	req := Request{Kind: KindEstimate, Trace: key, Warmup: "mru", Exec: ExecFarm}
	farmed := submitAndWait(t, m, req)
	if farmed.Status != StatusDone {
		t.Fatalf("farmed job failed: %s", farmed.Error)
	}
	if got := m.Stats().Farmed; got != 1 {
		t.Fatalf("jobs_farmed = %d, want 1", got)
	}

	// Local side: fresh store (same trace content → same key), no farm.
	st2, key2 := newTestStore(t)
	if key2 != key {
		t.Fatalf("trace keys differ: %s vs %s", key2, key)
	}
	m2 := New(st2, 2, 0)
	defer m2.Shutdown(context.Background())
	local := submitAndWait(t, m2, Request{Kind: KindEstimate, Trace: key2, Warmup: "mru", Exec: ExecLocal})
	if local.Status != StatusDone {
		t.Fatalf("local job failed: %s", local.Error)
	}

	if !bytes.Equal(farmed.Result, local.Result) {
		t.Fatalf("farmed estimate differs from local:\nfarmed: %s\nlocal:  %s", farmed.Result, local.Result)
	}
}

// TestFarmedEstimateSurvivesWorkerLoss kills a worker mid-run: a doomed
// worker leases the first task and vanishes, its lease expires, and the
// live workers complete the requeued task — with the final estimate still
// byte-identical to pure local execution.
func TestFarmedEstimateSurvivesWorkerLoss(t *testing.T) {
	st, key := newTestStore(t)
	q := farm.NewQueue(st, farm.Config{LeaseTTL: 100 * time.Millisecond, SweepEvery: 10 * time.Millisecond})
	m := New(st, 2, 0)
	m.SetFarm(q)
	defer m.Shutdown(context.Background())

	snap, err := m.Submit(Request{Kind: KindEstimate, Trace: key, Warmup: "mru", Exec: ExecFarm})
	if err != nil {
		t.Fatal(err)
	}

	// The doomed worker grabs the first task the job enqueues and never
	// comes back — simulating a worker killed mid-simulation.
	deadline := time.Now().Add(20 * time.Second)
	for {
		if tasks := q.Lease("doomed", 1); len(tasks) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never enqueued a task")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Only now do live workers join; one of them will pick up the
	// requeued task after the doomed lease expires.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 2; i++ {
		go farm.RunLocalWorker(ctx, q, st, "survivor")
	}

	wctx, wcancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer wcancel()
	done, err := m.Wait(wctx, snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != StatusDone {
		t.Fatalf("farmed job failed: %s", done.Error)
	}
	if s := q.Stats(); s.Expired == 0 {
		t.Fatalf("doomed lease never expired — requeue path not exercised: %+v", s)
	}

	st2, key2 := newTestStore(t)
	m2 := New(st2, 2, 0)
	defer m2.Shutdown(context.Background())
	local := submitAndWait(t, m2, Request{Kind: KindEstimate, Trace: key2, Warmup: "mru"})
	if !bytes.Equal(done.Result, local.Result) {
		t.Fatalf("estimate after worker loss differs from local:\nfarmed: %s\nlocal:  %s", done.Result, local.Result)
	}
}

// TestShutdownRequeuesFarmedTasks is the graceful-shutdown fix: a farmed
// job blocked on a queue with no workers must not pin Shutdown until
// lease TTLs expire — the expired shutdown context closes the queue,
// requeues/fails the in-flight tasks, and the job fails promptly.
func TestShutdownRequeuesFarmedTasks(t *testing.T) {
	st, key := newTestStore(t)
	q := farm.NewQueue(st, farm.Config{LeaseTTL: time.Hour}) // TTL must not govern shutdown latency
	m := New(st, 2, 0)
	m.SetFarm(q)

	snap, err := m.Submit(Request{Kind: KindEstimate, Trace: key, Warmup: "cold", Exec: ExecFarm})
	if err != nil {
		t.Fatal(err)
	}
	// Let the job start and enqueue its tasks; lease one with a phantom
	// worker so the queue holds both queued and leased tasks.
	deadline := time.Now().Add(20 * time.Second)
	for {
		if tasks := q.Lease("phantom", 1); len(tasks) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never enqueued a task")
		}
		time.Sleep(2 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = m.Shutdown(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("shutdown took %v — leases abandoned until TTL expiry", elapsed)
	}
	// The blocked job observed the queue closure and failed cleanly.
	got, ok := m.Get(snap.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	if got.Status != StatusFailed || got.Error == "" {
		t.Fatalf("job after shutdown: %+v", got)
	}
	if s := q.Stats(); s.RequeuedClose != 1 {
		t.Fatalf("leased task not requeued on close: %+v", s)
	}
}

// TestFarmedEstimateResumesRecoveredQueue is the durability acceptance
// test at the service layer: a coordinator dies with a farmed estimate's
// tasks queued and in flight, a new coordinator rebuilds the queue from
// the write-ahead log, the re-submitted job re-attaches to every
// recovered task instead of re-enqueueing, and the finished estimate is
// byte-identical to a run that was never interrupted.
func TestFarmedEstimateResumesRecoveredQueue(t *testing.T) {
	st, key := newTestStore(t)
	walPath := filepath.Join(st.Root(), "farm.wal")
	cfg := farm.Config{LeaseTTL: time.Hour} // recovery, not TTL expiry, must requeue the lease

	q1, rec, err := farm.NewDurableQueue(st, cfg, walPath)
	if err != nil {
		t.Fatal(err)
	}
	if rec != (farm.Recovery{}) {
		t.Fatalf("fresh wal reported recovery %+v", rec)
	}
	m1 := New(st, 2, 0)
	m1.SetFarm(q1)

	// First life: the job enqueues its per-point tasks, a phantom worker
	// leases one, no one ever completes anything.
	req := Request{Kind: KindEstimate, Trace: key, Warmup: "mru", Exec: ExecFarm}
	if _, err := m1.Submit(req); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		if tasks := q1.Lease("phantom", 1); len(tasks) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never enqueued a task")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The coordinator "dies": an expired shutdown context tears it down
	// without waiting for the farmed job. Close journals nothing — the
	// queued and leased tasks stay in the log for the next life. (The job
	// may have been mid-enqueue when it died; whatever made it into the
	// journal — read after Close, when the count is final — must recover.)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	err = m1.Shutdown(ctx)
	cancel()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("first-life Shutdown = %v, want DeadlineExceeded", err)
	}
	enqueuedBefore := q1.Stats().Enqueued

	// Second life: replay the journal.
	q2, rec, err := farm.NewDurableQueue(st, cfg, walPath)
	if err != nil {
		t.Fatal(err)
	}
	if int64(rec.Pending+rec.Requeued) != enqueuedBefore {
		t.Fatalf("recovered %d+%d tasks, want all %d enqueued before the crash",
			rec.Pending, rec.Requeued, enqueuedBefore)
	}
	if rec.Requeued != 1 {
		t.Fatalf("recovery = %+v, want the phantom's lease requeued", rec)
	}
	m2 := New(st, 2, 0)
	m2.SetFarm(q2)
	defer m2.Shutdown(context.Background())
	if got := m2.Stats().FarmRecovered; got != enqueuedBefore {
		t.Fatalf("farm_tasks_recovered = %d, want %d", got, enqueuedBefore)
	}

	// Re-submitting the same request must re-attach to every recovered
	// task, not duplicate it. No workers run yet, so the dedup count is
	// exact once the job's enqueue pass finishes.
	snap, err := m2.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(20 * time.Second)
	for q2.Stats().DedupInflight != enqueuedBefore {
		if time.Now().After(deadline) {
			t.Fatalf("re-submit deduped %d tasks onto the %d recovered ones (stats %+v)",
				q2.Stats().DedupInflight, enqueuedBefore, q2.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}

	wctx, wcancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer wcancel()
	for i := 0; i < 2; i++ {
		go farm.RunLocalWorker(wctx, q2, st, "second-life")
	}
	done, err := m2.Wait(wctx, snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != StatusDone {
		t.Fatalf("resumed job failed: %s", done.Error)
	}

	// And the interruption left no trace in the result: byte-identical to
	// a never-crashed local run on a fresh store.
	st2, key2 := newTestStore(t)
	m3 := New(st2, 2, 0)
	defer m3.Shutdown(context.Background())
	local := submitAndWait(t, m3, Request{Kind: KindEstimate, Trace: key2, Warmup: "mru", Exec: ExecLocal})
	if local.Status != StatusDone {
		t.Fatalf("local job failed: %s", local.Error)
	}
	if !bytes.Equal(done.Result, local.Result) {
		t.Fatalf("recovered estimate differs from uninterrupted local run:\nrecovered: %s\nlocal:     %s",
			done.Result, local.Result)
	}
}

// TestExecValidation covers the new request field.
func TestExecValidation(t *testing.T) {
	st, key := newTestStore(t)
	m := New(st, 1, 0)
	defer m.Shutdown(context.Background())

	if _, err := m.Submit(Request{Kind: KindEstimate, Trace: key, Exec: "cluster"}); err == nil {
		t.Fatal("unknown exec mode accepted")
	}
	// Forced farm without an attached queue is an error...
	if _, err := m.Submit(Request{Kind: KindEstimate, Trace: key, Exec: ExecFarm}); err == nil {
		t.Fatal("exec=farm accepted without a farm queue")
	}
	// ...as is farming a job kind that has no per-point decomposition.
	for _, kind := range []Kind{KindAnalyze, KindSimulate} {
		if _, err := m.Submit(Request{Kind: kind, Trace: key, Exec: ExecFarm}); err == nil {
			t.Fatalf("exec=farm accepted for %s job", kind)
		}
	}
	// ...but auto and local run fine.
	for _, exec := range []string{"", ExecAuto, ExecLocal} {
		snap := submitAndWait(t, m, Request{Kind: KindEstimate, Trace: key, Warmup: "cold", Exec: exec})
		if snap.Status != StatusDone {
			t.Fatalf("exec %q: %s", exec, snap.Error)
		}
	}
}

// TestAutoFallsBackToLocal proves the fallback: with a farm attached but
// no live workers, an auto-exec estimate runs on the local pool (and
// caches per-point results in the store).
func TestAutoFallsBackToLocal(t *testing.T) {
	st, key := newTestStore(t)
	q := farm.NewQueue(st, farm.Config{})
	m := New(st, 1, 0)
	m.SetFarm(q)
	defer m.Shutdown(context.Background())

	snap := submitAndWait(t, m, Request{Kind: KindEstimate, Trace: key, Warmup: "cold"})
	if snap.Status != StatusDone {
		t.Fatalf("auto job failed: %s", snap.Error)
	}
	if got := m.Stats().Farmed; got != 0 {
		t.Fatalf("job farmed with no workers (jobs_farmed = %d)", got)
	}
	// Local execution populated the shared per-point cache.
	names, err := st.Artifacts(key)
	if err != nil {
		t.Fatal(err)
	}
	points := 0
	for _, n := range names {
		if len(n) > 5 && n[:5] == "point" {
			points++
		}
	}
	if points == 0 {
		t.Fatal("local execution did not cache point results")
	}
}
