package service

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"barrierpoint/internal/farm"
)

// metricValues renders the manager's registry through its expvar bridge
// and returns the flat name → value view (histograms appear as objects
// and are skipped here; read them from the raw map when needed).
func metricValues(t *testing.T, m *Manager) map[string]float64 {
	t.Helper()
	var raw map[string]json.RawMessage
	if err := json.Unmarshal([]byte(m.Metrics().Expvar().String()), &raw); err != nil {
		t.Fatalf("expvar bridge is not valid JSON: %v", err)
	}
	out := make(map[string]float64, len(raw))
	for name, v := range raw {
		var f float64
		if err := json.Unmarshal(v, &f); err == nil {
			out[name] = f
		}
	}
	return out
}

// TestJobSpanAndStageTimings checks the coordinator half of the telemetry
// pipeline on a local estimate: the job gets a trace ID at Submit, its
// snapshot carries a finished span whose sequential stages partition the
// wall clock, and the per-job metrics advance.
func TestJobSpanAndStageTimings(t *testing.T) {
	st, key := newTestStore(t)
	m := New(st, 1, 0)
	defer m.Shutdown(context.Background())

	snap, err := m.Submit(Request{Kind: KindEstimate, Trace: key, Warmup: "mru"})
	if err != nil {
		t.Fatal(err)
	}
	if snap.TraceID == "" {
		t.Fatal("Submit minted no trace ID")
	}
	done, err := m.Wait(context.Background(), snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != StatusDone {
		t.Fatalf("job failed: %s", done.Error)
	}
	if done.TraceID != snap.TraceID {
		t.Fatalf("trace ID changed across snapshots: %s vs %s", done.TraceID, snap.TraceID)
	}
	sp := done.Span
	if sp == nil {
		t.Fatal("finished job has no span")
	}
	if sp.TraceID != done.TraceID {
		t.Fatalf("span trace ID %s != job trace ID %s", sp.TraceID, done.TraceID)
	}
	if sp.End.IsZero() || sp.DurationNs <= 0 {
		t.Fatalf("span not finished: %+v", sp)
	}

	// A cold estimate profiles, clusters, binds the selection, and runs
	// the adaptive loop; every one of those stages must have been timed.
	got := make(map[string]bool)
	for _, stg := range sp.Stages {
		got[stg.Name] = true
		if stg.DurationNs < 0 {
			t.Fatalf("negative stage duration: %+v", stg)
		}
	}
	for _, want := range []string{"profile", "cluster", "bind", "simulate-points", "reconstruct"} {
		if !got[want] {
			t.Fatalf("span is missing stage %q; have %v", want, sp.Stages)
		}
	}
	// Sequential stages partition the job's wall clock: their sum cannot
	// exceed it (concurrent stages like trace-decode are excluded).
	if sum := sp.StageSumNs(); sum > sp.DurationNs {
		t.Fatalf("sequential stages (%d ns) exceed span wall clock (%d ns)", sum, sp.DurationNs)
	}

	// The recorder holds the span under its trace ID, and the counters
	// advanced.
	if spans := m.Spans().ByTrace(done.TraceID); len(spans) == 0 {
		t.Fatal("span recorder has nothing under the job's trace ID")
	}
	vals := metricValues(t, m)
	if vals["bp_jobs_submitted_total"] < 1 || vals["bp_jobs_done_total"] < 1 {
		t.Fatalf("job counters did not advance: %v", vals)
	}
	if vals["bp_cold_analyses_total"] < 1 {
		t.Fatalf("cold analysis counter did not advance: %v", vals)
	}
}

// TestFarmedJobTraceIDReachesWorkers is the end-to-end trace-propagation
// test: a farmed estimate's trace ID, minted at Submit, must come back on
// the worker-side farm-task spans — one trace ID across coordinator and
// fleet.
func TestFarmedJobTraceIDReachesWorkers(t *testing.T) {
	st, key := newTestStore(t)
	q := farm.NewQueue(st, farm.Config{})
	m := New(st, 2, 0)
	m.SetFarm(q)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 2; i++ {
		go farm.RunLocalWorker(ctx, q, st, "telemetry-test")
	}
	defer m.Shutdown(context.Background())

	snap := submitAndWait(t, m, Request{Kind: KindEstimate, Trace: key, Warmup: "mru", Exec: ExecFarm})
	if snap.Status != StatusDone {
		t.Fatalf("farmed job failed: %s", snap.Error)
	}
	if snap.TraceID == "" {
		t.Fatal("farmed job has no trace ID")
	}
	workerSpans := q.WorkerSpans().ByTrace(snap.TraceID)
	if len(workerSpans) == 0 {
		t.Fatalf("no worker spans carry the job's trace ID %s", snap.TraceID)
	}
	for _, ws := range workerSpans {
		if ws.Name != "farm-task" {
			t.Fatalf("unexpected worker span name %q", ws.Name)
		}
		var simulated bool
		for _, stg := range ws.Stages {
			if stg.Name == "simulate" && stg.DurationNs >= 0 {
				simulated = true
			}
		}
		if !simulated {
			t.Fatalf("worker span has no simulate stage: %+v", ws)
		}
	}

	// Queue instrumentation (wired by SetFarm) sees the completed tasks.
	vals := metricValues(t, m)
	if vals["bp_farm_tasks_completed_total"] < 1 {
		t.Fatalf("farm task counter did not advance: %v", vals)
	}
	if vals["bp_jobs_farmed_total"] != 1 {
		t.Fatalf("farmed jobs counter = %v, want 1", vals["bp_jobs_farmed_total"])
	}

	// The exposition text agrees with the expvar bridge for the same
	// counter (one source of truth behind two views).
	var text strings.Builder
	if err := m.Metrics().WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "bp_farm_tasks_completed_total") {
		t.Fatal("exposition text is missing bp_farm_tasks_completed_total")
	}
}
