package service

import (
	"bytes"
	"context"
	"runtime"
	"testing"
	"time"

	bp "barrierpoint"
	"barrierpoint/internal/store"
	"barrierpoint/internal/tracefile"
	"barrierpoint/internal/workload"
)

// recordTrace serializes a small recorded workload.
func recordTrace(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tracefile.Record(&buf, workload.New("npb-is", 8, workload.WithScale(0.05))); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newManager(t *testing.T) (*Manager, *store.Store) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := New(st, 2, 0)
	t.Cleanup(func() { m.Shutdown(context.Background()) })
	return m, st
}

// TestIngestProfilesDuringUpload is the tentpole acceptance test: a
// streaming upload leaves every region profile in the store, so the
// analyze that follows computes zero profiles — and still produces a
// selection byte-identical to a fully cold analysis of the same bytes.
func TestIngestProfilesDuringUpload(t *testing.T) {
	data := recordTrace(t)

	// Cold reference: plain PutTrace (no profiling) + analyze.
	mCold, stCold := newManager(t)
	keyCold, _, err := stCold.PutTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	cfg := bp.DefaultConfig()
	coldSel, _, coldStats, err := AnalyzeCachedProfiled(stCold, keyCold, cfg, mCold.replay, nil)
	if err != nil {
		t.Fatal(err)
	}
	if coldStats.Computed != coldStats.Regions || coldStats.Regions == 0 {
		t.Fatalf("cold analysis stats %+v, want all regions computed", coldStats)
	}

	// Streaming ingest: profiles land during the upload.
	m, st := newManager(t)
	res, err := m.IngestTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Streamed || res.Existed {
		t.Fatalf("ingest result %+v, want streamed fresh upload", res)
	}
	if res.Key != keyCold {
		t.Fatalf("ingest key %s, cold key %s", res.Key, keyCold)
	}
	if res.Regions == 0 || res.ProfilesComputed != res.Regions || res.ProfilesCached != 0 {
		t.Fatalf("ingest profiled %d/%d regions (%d cached), want all fresh", res.ProfilesComputed, res.Regions, res.ProfilesCached)
	}
	if res.Name != "npb-is" || res.Threads != 8 {
		t.Fatalf("ingest metadata %q/%d threads", res.Name, res.Threads)
	}

	sel, cached, stats, err := AnalyzeCachedProfiled(st, res.Key, cfg, m.replay, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first analyze after ingest hit the selection cache")
	}
	if stats.Computed != 0 || stats.Cached != stats.Regions || stats.Regions != res.Regions {
		t.Fatalf("analyze after ingest stats %+v, want 0 computed", stats)
	}
	if !bytes.Equal(sel, coldSel) {
		t.Fatal("selection from cached profiles differs from cold-path selection")
	}

	// Re-uploading identical bytes dedups the trace and hits every profile.
	res2, err := m.IngestTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Existed || res2.ProfilesComputed != 0 || res2.ProfilesCached != res.Regions {
		t.Fatalf("re-ingest result %+v, want full dedup", res2)
	}
}

// TestReclusterReusesProfiles: changing only the clustering's MaxK must
// reuse 100% of the cached region profiles — the re-analysis pays only
// k-means.
func TestReclusterReusesProfiles(t *testing.T) {
	m, st := newManager(t)
	res, err := m.IngestTrace(bytes.NewReader(recordTrace(t)))
	if err != nil {
		t.Fatal(err)
	}
	cfgA, err := ConfigFor("", 0)
	if err != nil {
		t.Fatal(err)
	}
	selA, _, statsA, err := AnalyzeCachedProfiled(st, res.Key, cfgA, m.replay, nil)
	if err != nil {
		t.Fatal(err)
	}
	if statsA.Computed != 0 {
		t.Fatalf("first analyze computed %d profiles after streaming ingest", statsA.Computed)
	}

	cfgB, err := ConfigFor("", 7)
	if err != nil {
		t.Fatal(err)
	}
	if SelectionArtifact(cfgA) == SelectionArtifact(cfgB) {
		t.Fatal("different MaxK landed on the same selection artifact")
	}
	selB, cached, statsB, err := AnalyzeCachedProfiled(st, res.Key, cfgB, m.replay, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("re-cluster hit the other config's selection artifact")
	}
	if statsB.Computed != 0 || statsB.Cached != statsB.Regions {
		t.Fatalf("re-cluster stats %+v, want 100%% profile reuse", statsB)
	}
	// Different MaxK is allowed to (and here does not have to) change the
	// selection; what matters is both parse and neither re-profiled.
	for _, sel := range [][]byte{selA, selB} {
		if _, err := bp.LoadSelection(bytes.NewReader(sel)); err != nil {
			t.Fatal(err)
		}
	}

	// The signature variant, too, shares profiles: RegionData is
	// variant-independent (Options apply at Build time).
	cfgC, err := ConfigFor("bbv", 0)
	if err != nil {
		t.Fatal(err)
	}
	_, _, statsC, err := AnalyzeCachedProfiled(st, res.Key, cfgC, m.replay, nil)
	if err != nil {
		t.Fatal(err)
	}
	if statsC.Computed != 0 {
		t.Fatalf("bbv re-analysis computed %d profiles, want 0", statsC.Computed)
	}
}

// TestIngestFailureLeavesNoOrphans: an upload that dies mid-transfer must
// leave the store exactly as it was — no trace under the key, and no
// profile artifacts from the regions that had already been profiled
// before the stream broke.
func TestIngestFailureLeavesNoOrphans(t *testing.T) {
	data := recordTrace(t)
	m, st := newManager(t)

	// Truncate mid-stream: early regions arrive complete (and are
	// profiled), then the decode fails.
	if _, err := m.IngestTrace(bytes.NewReader(data[:len(data)*3/4])); err == nil {
		t.Fatal("truncated ingest succeeded")
	}
	traces, err := st.Traces()
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 0 {
		t.Fatalf("failed ingest left traces %v", traces)
	}
	profiles, err := st.Profiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 0 {
		t.Fatalf("failed ingest orphaned profiles %v", profiles)
	}

	// But pre-existing profiles survive a failed re-upload of overlapping
	// content.
	res, err := m.IngestTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.IngestTrace(bytes.NewReader(data[:len(data)*3/4])); err == nil {
		t.Fatal("truncated ingest succeeded")
	}
	profiles, err = st.Profiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != res.Regions {
		t.Fatalf("failed re-upload disturbed the profile cache: %d profiles, want %d", len(profiles), res.Regions)
	}
}

// panicReader stands in for an upload body whose Read panics (e.g. a
// buggy middleware wrapper), the worst-case failure of the decode path.
type panicReader struct{}

func (panicReader) Read([]byte) (int, error) { panic("upload body exploded") }

// TestIngestPanicDrainsWorkers: a panic out of the decode path must
// propagate but not strand the profiler pool — net/http recovers handler
// panics, so stranded workers would otherwise accumulate silently, one
// pool per bad request.
func TestIngestPanicDrainsWorkers(t *testing.T) {
	m, _ := newManager(t)
	before := runtime.NumGoroutine()
	const rounds = 4
	for i := 0; i < rounds; i++ {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("ingest swallowed the reader panic")
				}
			}()
			m.IngestTrace(panicReader{})
		}()
	}
	// Workers exit asynchronously after the channel close; give them a
	// moment. Pre-fix this leaked rounds*GOMAXPROCS goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before+2 {
		t.Fatalf("goroutines grew from %d to %d after %d panicking ingests", before, got, rounds)
	}
}

// TestIngestV1Fallback: a legacy v1 upload stores and validates but does
// not profile in flight; corrupt v1 bytes are rejected and not stored.
func TestIngestV1Fallback(t *testing.T) {
	var buf bytes.Buffer
	if err := tracefile.Record(&buf, workload.New("npb-is", 8, workload.WithScale(0.05)), tracefile.WithVersion(1)); err != nil {
		t.Fatal(err)
	}
	m, st := newManager(t)
	res, err := m.IngestTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Streamed || res.ProfilesComputed != 0 {
		t.Fatalf("v1 ingest result %+v", res)
	}
	if res.Name != "npb-is" || res.Threads != 8 || res.Regions == 0 {
		t.Fatalf("v1 ingest metadata %+v", res)
	}
	if !st.HasTrace(res.Key) {
		t.Fatal("v1 trace not stored")
	}

	// Corrupt v1 bytes: stored bytes fail validation, key must not linger.
	bad := append([]byte(nil), buf.Bytes()...)
	bad[len(bad)-3] ^= 0xff // inside the trailer
	if _, err := m.IngestTrace(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupt v1 ingest succeeded")
	}
	traces, err := st.Traces()
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 {
		t.Fatalf("store holds %d traces after corrupt upload, want 1", len(traces))
	}
}

// TestManagerMaxK: the MaxK override flows into validation, dedup and
// artifacts.
func TestManagerMaxK(t *testing.T) {
	m, _ := newManager(t)
	res, err := m.IngestTrace(bytes.NewReader(recordTrace(t)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(Request{Kind: KindAnalyze, Trace: res.Key, MaxK: -1}); err == nil {
		t.Error("negative max_k accepted")
	}
	if _, err := m.Submit(Request{Kind: KindSimulate, Trace: res.Key, MaxK: 5}); err == nil {
		t.Error("max_k accepted for simulate")
	}
	a, err := m.Submit(Request{Kind: KindAnalyze, Trace: res.Key})
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Submit(Request{Kind: KindAnalyze, Trace: res.Key, MaxK: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.ID == b.ID {
		t.Fatal("distinct MaxK coalesced onto one job")
	}
	for _, id := range []string{a.ID, b.ID} {
		snap, err := m.Wait(context.Background(), id)
		if err != nil || snap.Status != StatusDone {
			t.Fatalf("job %s: err=%v status=%s error=%s", id, err, snap.Status, snap.Error)
		}
	}
	// Both jobs ran over the ingest-warmed profile cache: the span attrs CI
	// greps for must report zero freshly computed profiles.
	for _, id := range []string{a.ID, b.ID} {
		snap, _ := m.Get(id)
		if snap.Span == nil {
			t.Fatalf("job %s has no span", id)
		}
		if got := snap.Span.Attrs["profiles_computed"]; got != "0" {
			t.Errorf("job %s profiles_computed attr = %q, want 0", id, got)
		}
		if got := snap.Span.Attrs["profiles_cached"]; got == "" || got == "0" {
			t.Errorf("job %s profiles_cached attr = %q, want > 0", id, got)
		}
	}
	if s := m.Stats(); s.ProfileComputed != int64(res.Regions) || s.ProfileCacheHits < int64(2*res.Regions) {
		t.Errorf("manager stats %+v after ingest + two warm analyses", s)
	}
}
