package service

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	bp "barrierpoint"
	"barrierpoint/internal/store"
)

// This file gives the job manager its durability: every job lifecycle
// transition is journaled to a store.WAL before Submit acknowledges or a
// worker moves on, and a restarted coordinator replays the journal to
// rebuild exactly the jobs it was killed with — same IDs, same trace
// IDs. Jobs whose result artifact already landed in the content-
// addressed store resolve on the spot (the crash beat the journal's done
// record, not the work); the rest re-enter the queue and recompute
// through the same artifact caches, so recovered results are
// byte-identical to an uninterrupted run. The design mirrors
// internal/farm/wal.go, which does the same for individual farm tasks.

// Journal operation tags.
const (
	jopSubmit  = "submit"  // job accepted (or re-emitted by compaction)
	jopRunning = "running" // a worker picked the job up
	jopStage   = "stage"   // one pipeline stage completed
	jopDone    = "done"    // result stored; Artifact names where
	jopFailed  = "failed"  // terminal failure with its message
)

// journalRecord is the JSON payload of one job-journal WAL frame.
type journalRecord struct {
	Op string `json:"op"`
	ID string `json:"id"`
	// Req, CfgHash, TraceKey, TraceID and CreatedNs describe the job on
	// submit records; compaction re-emits them for every retained job.
	Req       *Request `json:"req,omitempty"`
	CfgHash   string   `json:"cfg,omitempty"`
	TraceID   string   `json:"trace_id,omitempty"`
	CreatedNs int64    `json:"created_ns,omitempty"`
	// Stage names the completed stage on stage records (observability
	// and crash-point granularity; replay does not depend on it).
	Stage string `json:"stage,omitempty"`
	// Artifact names the store artifact holding the result on done
	// records — the journal never embeds result bytes, it points into
	// the content-addressed store.
	Artifact string `json:"artifact,omitempty"`
	Cached   bool   `json:"cached,omitempty"`
	// Error carries the failure message on failed records.
	Error      string `json:"error,omitempty"`
	FinishedNs int64  `json:"finished_ns,omitempty"`
}

// JobRecovery reports what a journaled manager rebuilt at startup.
type JobRecovery struct {
	// Records is the number of intact journal records replayed; Dropped
	// is the byte length of the torn tail (if any) discarded after them.
	Records int   `json:"journal_records"`
	Dropped int64 `json:"journal_dropped_bytes"`
	// Resolved jobs were live at the crash but their result artifact was
	// already in the store — they complete instantly, without recompute.
	Resolved int `json:"jobs_resolved"`
	// Requeued jobs were queued or running at the crash and re-entered
	// the queue under their original IDs.
	Requeued int `json:"jobs_requeued"`
	// Terminal jobs had finished (done or failed) before the crash and
	// are restored for status polling.
	Terminal int `json:"jobs_terminal"`
	// Unrecoverable jobs no longer validate (e.g. their trace left the
	// store); they are restored as failed rather than silently dropped.
	Unrecoverable int `json:"jobs_unrecoverable"`
}

// journalJob is one job's state as folded from the journal.
type journalJob struct {
	id        string
	req       Request
	traceID   string
	createdNs int64
	terminal  bool
	failed    bool
	cached    bool
	artifact  string
	errMsg    string
	finishNs  int64
}

// journalState is the fold target of a journal replay.
type journalState struct {
	jobs  map[string]*journalJob
	order []string
}

// applyJournal folds one record into the state. Records that do not
// resolve against the current state (an unknown id, a malformed payload)
// are skipped: replay must accept any intact prefix the framing layer
// delivers.
func (s *journalState) apply(rec journalRecord) {
	switch rec.Op {
	case jopSubmit:
		if rec.ID == "" || rec.Req == nil {
			return
		}
		if _, dup := s.jobs[rec.ID]; dup {
			return
		}
		s.jobs[rec.ID] = &journalJob{
			id: rec.ID, req: *rec.Req, traceID: rec.TraceID, createdNs: rec.CreatedNs,
		}
		s.order = append(s.order, rec.ID)
	case jopDone:
		if j, ok := s.jobs[rec.ID]; ok {
			j.terminal, j.failed = true, false
			j.artifact, j.cached, j.finishNs = rec.Artifact, rec.Cached, rec.FinishedNs
		}
	case jopFailed:
		if j, ok := s.jobs[rec.ID]; ok {
			j.terminal, j.failed = true, true
			j.errMsg, j.finishNs = rec.Error, rec.FinishedNs
		}
	case jopRunning, jopStage:
		// Progress markers: a job that got this far but no further is
		// still live and re-enqueues. Nothing to fold.
	}
}

// replayJournalReader folds every intact record of r into a fresh state.
func replayJournalReader(r io.Reader) (*journalState, int64, int, error) {
	s := &journalState{jobs: make(map[string]*journalJob)}
	valid, n, err := store.ReplayFrames(r, func(rec []byte) error {
		var jr journalRecord
		if err := json.Unmarshal(rec, &jr); err != nil {
			return nil // foreign frame; skip, keep the records around it
		}
		s.apply(jr)
		return nil
	})
	return s, valid, n, err
}

// EnableJournal makes the manager's job state durable: lifecycle records
// are journaled to the write-ahead log at path, and any records already
// there — the normal case after a crash or restart — are replayed first.
// Replayed jobs keep their original IDs and trace IDs: terminal jobs are
// restored for status polling (results reloaded from their store
// artifacts), live jobs whose artifact already landed resolve
// immediately, and the rest re-enter the queue. The log is then
// compacted to exactly the retained state.
//
// Call it once, after SetFarm (recovered estimates may farm their
// points) and before the first Submit.
func (m *Manager) EnableJournal(path string) (JobRecovery, error) {
	state := &journalState{jobs: make(map[string]*journalJob)}
	var rec JobRecovery
	if f, err := os.Open(path); err == nil {
		var size, valid int64
		if fi, serr := f.Stat(); serr == nil {
			size = fi.Size()
		}
		state, valid, rec.Records, err = replayJournalReader(f)
		f.Close()
		if err != nil {
			return JobRecovery{}, err
		}
		rec.Dropped = size - valid
	} else if !os.IsNotExist(err) {
		return JobRecovery{}, fmt.Errorf("service: opening job journal: %w", err)
	}

	w, err := store.OpenWAL(path)
	if err != nil {
		return JobRecovery{}, err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		w.Close()
		return JobRecovery{}, ErrClosed
	}
	m.journal = w
	m.journalRecs = rec.Records
	for _, id := range state.order {
		jj := state.jobs[id]
		if n := jobSeq(id); n > m.seq {
			m.seq = n
		}
		j := &job{
			id:      jj.id,
			req:     jj.req,
			created: time.Unix(0, jj.createdNs),
			done:    make(chan struct{}),
			traceID: jj.traceID,
		}
		switch {
		case jj.terminal && jj.failed:
			j.recovered = true
			j.status = StatusFailed
			j.err = jj.errMsg
			j.finished = time.Unix(0, jj.finishNs)
			close(j.done)
			rec.Terminal++
		case jj.terminal:
			j.recovered = true
			b, err := m.st.GetArtifact(jj.req.Trace, jj.artifact)
			if err != nil {
				// The journal says done but the artifact is gone (a wiped or
				// partial store): the work needs redoing, so fall through to
				// the live-job path.
				m.recoverLiveLocked(j, &rec)
				break
			}
			j.status = StatusDone
			j.result = json.RawMessage(b)
			j.artifact = jj.artifact
			j.cached = jj.cached
			j.finished = time.Unix(0, jj.finishNs)
			close(j.done)
			rec.Terminal++
		default:
			m.recoverLiveLocked(j, &rec)
		}
		m.jobs[j.id] = j
		m.order = append(m.order, j.id)
	}
	m.recovered.Store(int64(rec.Resolved + rec.Requeued + rec.Terminal))
	m.jobRecovery = rec
	if err := m.compactJournalLocked(); err != nil {
		m.journal = nil
		w.Close()
		return JobRecovery{}, err
	}
	return rec, nil
}

// recoverLiveLocked restores one non-terminal journal job: resolve it
// from the store if its result artifact already landed, otherwise
// re-validate and re-enqueue it under its original ID. m.mu must be
// held. The job is marked recovered either way — it crossed a restart.
func (m *Manager) recoverLiveLocked(j *job, rec *JobRecovery) {
	j.recovered = true
	cfg, mode, dedup, err := m.validate(j.req)
	if err != nil {
		j.status = StatusFailed
		j.err = fmt.Sprintf("not recoverable after restart: %v", err)
		j.finished = time.Now()
		close(j.done)
		rec.Unrecoverable++
		return
	}
	j.cfg, j.mode, j.dedup = cfg, mode, dedup
	if name, err := m.artifactFor(j.req, cfg, mode); err == nil && name != "" {
		if b, aerr := m.st.GetArtifact(j.req.Trace, name); aerr == nil {
			// The worker (or this coordinator's dying breath) stored the
			// result, but the crash beat the done record: the job is done,
			// only the journal didn't know yet.
			j.status = StatusDone
			j.result = json.RawMessage(b)
			j.artifact = name
			j.cached = true
			j.finished = time.Now()
			close(j.done)
			rec.Resolved++
			return
		}
	}
	if prev, dup := m.inflight[dedup]; dup {
		// Two live journal jobs with one dedup key can only come from a
		// hand-damaged journal; coalesce onto the first like Submit would.
		j.status = StatusFailed
		j.err = fmt.Sprintf("duplicate of recovered job %s", prev.id)
		j.finished = time.Now()
		close(j.done)
		rec.Unrecoverable++
		return
	}
	if len(m.queue) == cap(m.queue) {
		j.status = StatusFailed
		j.err = "job queue full at recovery"
		j.finished = time.Now()
		close(j.done)
		rec.Unrecoverable++
		return
	}
	j.status = StatusQueued
	m.queue <- j // cannot block: len < cap observed under m.mu, workers only drain
	m.inflight[dedup] = j
	rec.Requeued++
}

// artifactFor names the store artifact a request's result lands in (the
// same name execute computes), so recovery can probe the store for work
// that finished before the crash.
func (m *Manager) artifactFor(req Request, cfg bp.Config, mode bp.WarmupMode) (string, error) {
	switch req.Kind {
	case KindAnalyze:
		return SelectionArtifact(cfg), nil
	case KindEstimate, KindSimulate:
		f, err := m.st.OpenTrace(req.Trace)
		if err != nil {
			return "", err
		}
		threads := f.Threads()
		f.Close()
		mc, err := MachineFor(threads, req.Sockets)
		if err != nil {
			return "", err
		}
		if req.Kind == KindSimulate {
			return ActualArtifact(mc), nil
		}
		return AdaptiveEstimateArtifact(cfg, mc, mode, req.TargetCI), nil
	}
	return "", fmt.Errorf("service: unknown job kind %q", req.Kind)
}

// jobSeq extracts the numeric suffix of a "job-%06d" id (0 for any other
// shape), so recovered managers continue the ID sequence past every
// replayed job instead of reissuing IDs.
func jobSeq(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "job-%d", &n); err != nil || n < 0 {
		return 0
	}
	return n
}

// submitRecord builds a job's submit journal record.
func submitRecord(j *job, cfgHash string) journalRecord {
	req := j.req
	return journalRecord{
		Op: jopSubmit, ID: j.id, Req: &req, CfgHash: cfgHash,
		TraceID: j.traceID, CreatedNs: j.created.UnixNano(),
	}
}

// appendJournalLocked journals one record (a no-op for in-memory
// managers); m.mu must be held. The record is durable — framed,
// checksummed, fsynced — before this returns nil. Once the journal has
// grown far past the retained job set it is compacted first, so the new
// record lands in the fresh log.
func (m *Manager) appendJournalLocked(rec journalRecord) error {
	if m.journal == nil || m.journalClosed {
		return nil
	}
	if m.journalRecs >= journalCompactMinRecords && m.journalRecs >= journalCompactFactor*(len(m.jobs)+1) {
		if err := m.compactJournalLocked(); err != nil {
			return err
		}
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if err := m.journal.Append(b); err != nil {
		m.journalErrors++
		return err
	}
	m.journalAppends++
	m.journalRecs++
	return nil
}

// journalBestEffortLocked appends a progress or terminal record, eating
// the error: by the time these records are written the durable truth —
// the request in the submit record and the result artifact in the store
// — already exists, so recovery reaches the same state with or without
// them. Failing the job over a telemetry-grade append would turn a disk
// hiccup into a lost result. Errors still count in journalErrors.
func (m *Manager) journalBestEffortLocked(rec journalRecord) {
	_ = m.appendJournalLocked(rec)
}

// Compaction triggers: the journal is rewritten to the retained jobs
// once it holds at least journalCompactMinRecords records and at least
// journalCompactFactor records per retained job, and always once at
// startup after replay. Jobs pruned from the retention window drop out
// of the journal at the next compaction, so the log tracks the
// manager's bounded memory, not its full history.
const (
	journalCompactMinRecords = 1024
	journalCompactFactor     = 4
)

// compactJournalLocked rewrites the journal to exactly the retained
// jobs: a submit record per job, plus its terminal record where one
// applies. m.mu must be held (or the manager not yet shared).
func (m *Manager) compactJournalLocked() error {
	if m.journal == nil || m.journalClosed {
		return nil
	}
	var payloads [][]byte
	emit := func(rec journalRecord) error {
		b, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		payloads = append(payloads, b)
		return nil
	}
	for _, id := range m.order {
		j, ok := m.jobs[id]
		if !ok {
			continue
		}
		if err := emit(submitRecord(j, hashJSON(j.cfg))); err != nil {
			return err
		}
		switch j.status {
		case StatusDone:
			if err := emit(journalRecord{
				Op: jopDone, ID: j.id, Artifact: j.artifact, Cached: j.cached,
				FinishedNs: j.finished.UnixNano(),
			}); err != nil {
				return err
			}
		case StatusFailed:
			if err := emit(journalRecord{
				Op: jopFailed, ID: j.id, Error: j.err, FinishedNs: j.finished.UnixNano(),
			}); err != nil {
				return err
			}
		}
	}
	if err := m.journal.Rewrite(payloads); err != nil {
		m.journalErrors++
		return err
	}
	m.journalRecs = len(payloads)
	m.journalCompactions++
	return nil
}

// closeJournalLocked journals nothing further and releases the file; the
// log itself stays on disk for the next life. m.mu must be held.
func (m *Manager) closeJournalLocked() {
	if m.journal == nil || m.journalClosed {
		return
	}
	m.journalClosed = true
	m.journal.Close()
}

// JournalStats describes the job journal's activity for health surfaces.
type JournalStats struct {
	Durable     bool  `json:"durable"`
	Bytes       int64 `json:"bytes"`
	Appends     int64 `json:"appends"`
	Errors      int64 `json:"errors"`
	Compactions int64 `json:"compactions"`
}

// JournalStats returns the job journal's activity counters (zero-valued
// when no journal is enabled).
func (m *Manager) JournalStats() JournalStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := JournalStats{
		Appends:     m.journalAppends,
		Errors:      m.journalErrors,
		Compactions: m.journalCompactions,
	}
	if m.journal != nil {
		s.Durable = true
		s.Bytes = m.journal.Size()
	}
	return s
}

// JobRecovery returns what this manager rebuilt from its job journal at
// EnableJournal (all zeros without a journal or with a fresh log).
func (m *Manager) JobRecovery() JobRecovery {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jobRecovery
}
