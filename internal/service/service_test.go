package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	bp "barrierpoint"
	"barrierpoint/internal/store"
	"barrierpoint/internal/tracefile"
	"barrierpoint/internal/workload"
)

// newTestStore opens a fresh store holding one small recorded trace and
// returns it with the trace's content key.
func newTestStore(t *testing.T) (*store.Store, string) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	prog := workload.New("npb-is", 8, workload.WithScale(0.05))
	if err := tracefile.Record(&buf, prog); err != nil {
		t.Fatal(err)
	}
	key, _, err := st.PutTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return st, key
}

// TestAnalyzeCachedSkipsProfiling is the acceptance test for the artifact
// cache: a second analyze of the same trace must return byte-identical
// selection data without invoking the profiler. analyzeFn (bp.Analyze, the
// only route into profile.Program here) is swapped for a failing stub, so
// any profiling attempt on the cached path fails the test.
func TestAnalyzeCachedSkipsProfiling(t *testing.T) {
	st, key := newTestStore(t)
	cfg := bp.DefaultConfig()

	cold, cached, err := AnalyzeCached(st, key, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first analyze reported cached")
	}

	orig := analyzeFn
	defer func() { analyzeFn = orig }()
	analyzeFn = func(st *store.Store, f *tracefile.File, p bp.Program, cfg bp.Config, obsrv bp.StageObserver) (*bp.Analysis, ProfileStats, error) {
		t.Error("cached path invoked the profiler")
		return orig(st, f, p, cfg, obsrv)
	}

	warm, cached, err := AnalyzeCached(st, key, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Error("second analyze missed the cache")
	}
	if !bytes.Equal(cold, warm) {
		t.Error("cached selection bytes differ from the cold run")
	}

	// The bytes are a loadable selection.
	sel, err := bp.LoadSelection(bytes.NewReader(warm))
	if err != nil {
		t.Fatal(err)
	}
	if sel.Program != "npb-is" || sel.Threads != 8 || len(sel.Points) == 0 {
		t.Errorf("selection %s/%d threads, %d points", sel.Program, sel.Threads, len(sel.Points))
	}

	// A different signature config is a different artifact: it must not
	// hit the combine-config cache (and with the stub in place, reaching
	// the profiler is expected — restore first).
	analyzeFn = orig
	bbvCfg, err := ParseSignature("bbv")
	if err != nil {
		t.Fatal(err)
	}
	_, cached, err = AnalyzeCached(st, key, bbvCfg)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("bbv config hit the combine cache")
	}
}

// TestReplayCacheSharedAcrossJobs proves one manager cache serves every
// job over a trace: after an estimate and a ground-truth simulate of the
// same trace, the decoded-region cache has hits (regions decoded by the
// first job replayed from memory by the second), and the results are the
// same as a cache-disabled manager's over an identical store.
func TestReplayCacheSharedAcrossJobs(t *testing.T) {
	runBoth := func(t *testing.T, disable bool) (est, act json.RawMessage, stats bp.ReplayCacheStats) {
		st, key := newTestStore(t)
		m := New(st, 2, 0)
		if disable {
			m.SetReplayCacheBytes(-1)
		}
		defer m.Shutdown(context.Background())
		for _, kind := range []Kind{KindEstimate, KindSimulate} {
			snap, err := m.Submit(Request{Kind: kind, Trace: key, Warmup: "mru"})
			if err != nil {
				t.Fatal(err)
			}
			done, err := m.Wait(context.Background(), snap.ID)
			if err != nil || done.Status != StatusDone {
				t.Fatalf("%s job: err=%v status=%s error=%s", kind, err, done.Status, done.Error)
			}
			if kind == KindEstimate {
				est = done.Result
			} else {
				act = done.Result
			}
		}
		return est, act, m.ReplayCacheStats()
	}
	estC, actC, stats := runBoth(t, false)
	if stats.Hits == 0 || stats.Misses == 0 {
		t.Errorf("replay cache unused across jobs: %+v", stats)
	}
	estU, actU, statsU := runBoth(t, true)
	if statsU.Hits != 0 || statsU.Misses != 0 {
		t.Errorf("disabled cache reports activity: %+v", statsU)
	}
	if !bytes.Equal(estC, estU) || !bytes.Equal(actC, actU) {
		t.Error("cached and uncached job results differ")
	}
}

// TestConcurrentSubmitDedup race-submits N identical analyze jobs; they
// must coalesce onto one job, run the analysis exactly once, and hand
// every submitter an identical result. Run under -race in CI.
func TestConcurrentSubmitDedup(t *testing.T) {
	st, key := newTestStore(t)
	m := New(st, 4, 0)
	defer m.Shutdown(context.Background())

	// Slow the analysis down (and count invocations) so every submission
	// below lands while the first job is still in flight; otherwise the
	// tiny test trace analyzes faster than goroutines spawn and later
	// submissions would exercise the store cache instead of dedup.
	var calls atomic.Int32
	orig := analyzeFn
	defer func() { analyzeFn = orig }()
	analyzeFn = func(st *store.Store, f *tracefile.File, p bp.Program, cfg bp.Config, obsrv bp.StageObserver) (*bp.Analysis, ProfileStats, error) {
		calls.Add(1)
		time.Sleep(100 * time.Millisecond)
		return orig(st, f, p, cfg, obsrv)
	}

	const n = 16
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			snap, err := m.Submit(Request{Kind: KindAnalyze, Trace: key})
			if err != nil {
				t.Error(err)
				return
			}
			ids[i] = snap.ID
		}(i)
	}
	wg.Wait()

	for _, id := range ids[1:] {
		if id != ids[0] {
			t.Fatalf("dedup failed: job ids %v", ids)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	results := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			snap, err := m.Wait(ctx, ids[i])
			if err != nil {
				t.Error(err)
				return
			}
			if snap.Status != StatusDone {
				t.Errorf("job status %s: %s", snap.Status, snap.Error)
				return
			}
			results[i] = snap.Result
		}(i)
	}
	wg.Wait()

	for i := 1; i < n; i++ {
		if !bytes.Equal(results[i], results[0]) {
			t.Fatalf("result %d differs from result 0", i)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("analysis ran %d times, want 1", got)
	}
	if got := m.Stats().ColdAnalyses; got != 1 {
		t.Errorf("cold analyses = %d, want 1", got)
	}
	if got := m.Stats().Submitted; got != 1 {
		t.Errorf("jobs submitted = %d, want 1 (rest deduped)", got)
	}
	if got := m.Stats().Deduped; got != n-1 {
		t.Errorf("jobs deduped = %d, want %d", got, n-1)
	}
}

// TestCrossKindSingleFlight races an analyze job against estimate jobs
// with different warmup modes on a fresh trace: their dedup keys differ,
// but the underlying profiling must still run exactly once (AnalyzeCached
// is single-flight per trace and config).
func TestCrossKindSingleFlight(t *testing.T) {
	st, key := newTestStore(t)
	m := New(st, 4, 0)
	defer m.Shutdown(context.Background())

	var calls atomic.Int32
	orig := analyzeFn
	defer func() { analyzeFn = orig }()
	analyzeFn = func(st *store.Store, f *tracefile.File, p bp.Program, cfg bp.Config, obsrv bp.StageObserver) (*bp.Analysis, ProfileStats, error) {
		calls.Add(1)
		time.Sleep(50 * time.Millisecond)
		return orig(st, f, p, cfg, obsrv)
	}

	reqs := []Request{
		{Kind: KindAnalyze, Trace: key},
		{Kind: KindEstimate, Trace: key, Warmup: "cold"},
		{Kind: KindEstimate, Trace: key, Warmup: "mru"},
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	ids := make([]string, len(reqs))
	for i, req := range reqs {
		snap, err := m.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = snap.ID
	}
	for _, id := range ids {
		snap, err := m.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Status != StatusDone {
			t.Fatalf("job %s failed: %s", id, snap.Error)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("profiling ran %d times across job kinds, want 1", got)
	}
}

// TestEstimateAndSimulateJobs drives the two simulation job kinds end to
// end, then checks their repeat submissions hit the artifact cache.
func TestEstimateAndSimulateJobs(t *testing.T) {
	st, key := newTestStore(t)
	m := New(st, 2, 0)
	defer m.Shutdown(context.Background())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	run := func(req Request) Snapshot {
		t.Helper()
		snap, err := m.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		snap, err = m.Wait(ctx, snap.ID)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Status != StatusDone {
			t.Fatalf("job %s failed: %s", snap.ID, snap.Error)
		}
		return snap
	}

	est := run(Request{Kind: KindEstimate, Trace: key, Warmup: "mru"})
	var er EstimateResult
	if err := json.Unmarshal(est.Result, &er); err != nil {
		t.Fatal(err)
	}
	if er.TimeNs <= 0 || er.IPC <= 0 || er.Cores != 8 || er.Warmup != "mru" {
		t.Errorf("estimate result %+v", er)
	}

	act := run(Request{Kind: KindSimulate, Trace: key})
	var ar EstimateResult
	if err := json.Unmarshal(act.Result, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.TimeNs <= 0 || ar.Warmup != "" {
		t.Errorf("simulate result %+v", ar)
	}

	// Estimate vs ground truth should be in the same ballpark (the paper
	// reports low single-digit % error; allow a loose 50% here).
	if ratio := er.TimeNs / ar.TimeNs; ratio < 0.5 || ratio > 1.5 {
		t.Errorf("estimate %.0f ns vs actual %.0f ns (ratio %.2f)", er.TimeNs, ar.TimeNs, ratio)
	}

	// Repeats are pure cache hits with byte-identical payloads.
	est2 := run(Request{Kind: KindEstimate, Trace: key, Warmup: "mru"})
	if !est2.Cached || !bytes.Equal(est2.Result, est.Result) {
		t.Error("repeat estimate was not a byte-identical cache hit")
	}
	act2 := run(Request{Kind: KindSimulate, Trace: key})
	if !act2.Cached || !bytes.Equal(act2.Result, act.Result) {
		t.Error("repeat simulate was not a byte-identical cache hit")
	}
}

func TestSubmitValidation(t *testing.T) {
	st, key := newTestStore(t)
	m := New(st, 1, 0)
	defer m.Shutdown(context.Background())

	cases := []Request{
		{Kind: "explode", Trace: key},
		{Kind: KindAnalyze, Trace: "0000"},
		{Kind: KindAnalyze, Trace: key, Signature: "vibes"},
		{Kind: KindEstimate, Trace: key, Warmup: "lukewarm"},
		{Kind: KindEstimate, Trace: key, Sockets: -1},
		// Machine/trace core mismatch: 4 sockets = 32 cores vs 8 threads,
		// rejected at submission.
		{Kind: KindEstimate, Trace: key, Sockets: 4},
		{Kind: KindSimulate, Trace: key, Sockets: 2},
	}
	for _, req := range cases {
		if _, err := m.Submit(req); err == nil {
			t.Errorf("Submit(%+v) succeeded, want error", req)
		}
	}
}

// TestDedupIgnoresIrrelevantFields checks the dedup key covers only what
// a kind consumes: requests differing in fields the job ignores (or in
// equivalent socket spellings) coalesce onto one job.
func TestDedupIgnoresIrrelevantFields(t *testing.T) {
	st, key := newTestStore(t)
	m := New(st, 1, 0)
	defer m.Shutdown(context.Background())

	// Stall the single worker on a slowed analysis so every submission
	// below happens while its predecessors are still queued or running.
	orig := analyzeFn
	defer func() { analyzeFn = orig }()
	analyzeFn = func(st *store.Store, f *tracefile.File, p bp.Program, cfg bp.Config, obsrv bp.StageObserver) (*bp.Analysis, ProfileStats, error) {
		time.Sleep(100 * time.Millisecond)
		return orig(st, f, p, cfg, obsrv)
	}
	block, err := m.Submit(Request{Kind: KindAnalyze, Trace: key})
	if err != nil {
		t.Fatal(err)
	}

	// Analyze ignores warmup and sockets; sockets 0 normalizes to 1 for
	// an 8-thread trace; simulate ignores warmup and signature.
	pairs := [][2]Request{
		{{Kind: KindAnalyze, Trace: key}, {Kind: KindAnalyze, Trace: key, Warmup: "mru", Sockets: 1}},
		{{Kind: KindEstimate, Trace: key, Sockets: 0}, {Kind: KindEstimate, Trace: key, Sockets: 1}},
		{{Kind: KindSimulate, Trace: key}, {Kind: KindSimulate, Trace: key, Warmup: "mru", Signature: "bbv"}},
	}
	for _, p := range pairs {
		a, err := m.Submit(p[0])
		if err != nil {
			t.Fatal(err)
		}
		b, err := m.Submit(p[1])
		if err != nil {
			t.Fatal(err)
		}
		if a.ID != b.ID {
			t.Errorf("requests %+v and %+v got distinct jobs %s, %s", p[0], p[1], a.ID, b.ID)
		}
	}

	// But an estimate with a different warmup is genuinely different work.
	a, err := m.Submit(Request{Kind: KindEstimate, Trace: key, Warmup: "cold"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Submit(Request{Kind: KindEstimate, Trace: key, Warmup: "mru"})
	if err != nil {
		t.Fatal(err)
	}
	if a.ID == b.ID {
		t.Error("estimates with different warmup modes were coalesced")
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for _, id := range []string{block.ID, a.ID, b.ID} {
		if snap, err := m.Wait(ctx, id); err != nil || snap.Status != StatusDone {
			t.Fatalf("job %s: err %v status %s %s", id, err, snap.Status, snap.Error)
		}
	}
}

func TestShutdown(t *testing.T) {
	st, key := newTestStore(t)
	m := New(st, 2, 0)

	snap, err := m.Submit(Request{Kind: KindAnalyze, Trace: key})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Queued work finished before shutdown returned.
	got, ok := m.Get(snap.ID)
	if !ok || !got.Terminal() {
		t.Errorf("job after shutdown: ok=%v status=%s", ok, got.Status)
	}
	if _, err := m.Submit(Request{Kind: KindAnalyze, Trace: key}); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after shutdown: %v, want ErrClosed", err)
	}
	// Shutdown is idempotent.
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestArtifactNamesDisambiguate(t *testing.T) {
	cfg := bp.DefaultConfig()
	mc1, mc4 := bp.TableIMachine(1), bp.TableIMachine(4)
	names := map[string]bool{
		SelectionArtifact(cfg):                       true,
		EstimateArtifact(cfg, mc1, bp.ColdWarmup):    true,
		EstimateArtifact(cfg, mc1, bp.MRUWarmup):     true,
		EstimateArtifact(cfg, mc1, bp.MRUPrevWarmup): true,
		EstimateArtifact(cfg, mc4, bp.MRUWarmup):     true,
		ActualArtifact(mc1):                          true,
		ActualArtifact(mc4):                          true,
	}
	if len(names) != 7 {
		t.Errorf("artifact names collide: %v", names)
	}
	cfg2 := cfg
	cfg2.Cluster.Seed = 7
	if SelectionArtifact(cfg) == SelectionArtifact(cfg2) {
		t.Error("selection name ignores clustering params")
	}
}

// TestAdaptiveEstimateJob: an estimate with a CI target promotes extra
// regions, reports the confidence block, lands on its own artifact (plain
// and adaptive estimates of one trace coexist), and repeats are cache hits.
func TestAdaptiveEstimateJob(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	prog := workload.New("npb-ft", 8, workload.WithScale(0.1))
	if err := tracefile.Record(&buf, prog); err != nil {
		t.Fatal(err)
	}
	key, _, err := st.PutTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	m := New(st, 2, 0)
	defer m.Shutdown(context.Background())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	run := func(req Request) Snapshot {
		t.Helper()
		snap, err := m.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		snap, err = m.Wait(ctx, snap.ID)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Status != StatusDone {
			t.Fatalf("job %s failed: %s", snap.ID, snap.Error)
		}
		return snap
	}

	plain := run(Request{Kind: KindEstimate, Trace: key, Warmup: "mru"})
	var pr EstimateResult
	if err := json.Unmarshal(plain.Result, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.CI == nil {
		t.Fatal("plain estimate has no confidence block")
	}
	if pr.CI.AdaptiveRounds != 0 || pr.CI.TargetCI != 0 {
		t.Errorf("plain estimate CI block %+v", pr.CI)
	}
	if pr.CI.TimeHalfNs <= 0 || pr.CI.Confidence != 0.95 {
		t.Errorf("plain estimate CI block %+v", pr.CI)
	}

	adaptive := run(Request{Kind: KindEstimate, Trace: key, Warmup: "mru", TargetCI: 0.05})
	var ar EstimateResult
	if err := json.Unmarshal(adaptive.Result, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.CI == nil {
		t.Fatal("adaptive estimate has no confidence block")
	}
	if !ar.CI.TargetMet || ar.CI.TimeRel > 0.05 {
		t.Errorf("adaptive run missed its target: %+v", ar.CI)
	}
	if ar.CI.PointsSimulated <= pr.CI.PointsSimulated {
		t.Errorf("adaptive run simulated %d points, plain %d: expected promotions",
			ar.CI.PointsSimulated, pr.CI.PointsSimulated)
	}
	if ar.CI.AdaptiveRounds < 1 {
		t.Errorf("adaptive run reports %d rounds", ar.CI.AdaptiveRounds)
	}
	if s := m.Stats(); s.AdaptiveRounds < 1 || s.AdaptivePromoted < 1 {
		t.Errorf("manager stats missing adaptive counters: %+v", s)
	}

	// The adaptive artifact is distinct from the plain one, and repeats of
	// either are byte-identical cache hits.
	if bytes.Equal(plain.Result, adaptive.Result) {
		t.Error("plain and adaptive estimates share a payload")
	}
	again := run(Request{Kind: KindEstimate, Trace: key, Warmup: "mru", TargetCI: 0.05})
	if !again.Cached || !bytes.Equal(again.Result, adaptive.Result) {
		t.Error("repeat adaptive estimate was not a byte-identical cache hit")
	}

	// Validation: out-of-range targets and non-estimate kinds are rejected.
	if _, err := m.Submit(Request{Kind: KindEstimate, Trace: key, TargetCI: -0.1}); err == nil {
		t.Error("negative target ci accepted")
	}
	if _, err := m.Submit(Request{Kind: KindEstimate, Trace: key, TargetCI: 1.5}); err == nil {
		t.Error("target ci >= 1 accepted")
	}
	if _, err := m.Submit(Request{Kind: KindAnalyze, Trace: key, TargetCI: 0.05}); err == nil {
		t.Error("target ci on an analyze job accepted")
	}
}
