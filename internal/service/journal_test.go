package service

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"barrierpoint/internal/farm"
	"barrierpoint/internal/store"
)

// journaledManager builds a manager with a fresh journal at path.
func journaledManager(t *testing.T, st *store.Store, path string) *Manager {
	t.Helper()
	m := New(st, 2, 0)
	if _, err := m.EnableJournal(path); err != nil {
		t.Fatal(err)
	}
	return m
}

// frameBoundaries returns every byte offset in a WAL file that lies on a
// record boundary, including 0 and the full length — the set of crash
// points a torn-tail truncation can leave behind.
func frameBoundaries(t *testing.T, path string) []int64 {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	offs := []int64{0}
	for off := 0; off+8 <= len(raw); {
		size := int(binary.LittleEndian.Uint32(raw[off : off+4]))
		off += 8 + size
		if off > len(raw) {
			t.Fatalf("journal ends mid-frame at %d/%d", off, len(raw))
		}
		offs = append(offs, int64(off))
	}
	return offs
}

// TestJournalCrashPointRecovery is the tentpole's acceptance test: run
// journaled jobs to completion, then simulate a crash at every record
// boundary of the journal by replaying each prefix into a fresh manager
// over the same (warm) store. Every job whose submit record survived the
// crash must come back under its original ID with a byte-identical
// result; jobs whose submit record was lost never existed (the crash
// beat the 202).
func TestJournalCrashPointRecovery(t *testing.T) {
	st, key := newTestStore(t)
	jdir := t.TempDir()
	m := journaledManager(t, st, filepath.Join(jdir, "jobs.wal"))

	want := map[string]Snapshot{}
	for _, req := range []Request{
		{Kind: KindAnalyze, Trace: key},
		{Kind: KindEstimate, Trace: key, Warmup: "cold"},
	} {
		snap := submitAndWait(t, m, req)
		if snap.Status != StatusDone {
			t.Fatalf("%s job failed: %s", req.Kind, snap.Error)
		}
		want[snap.ID] = snap
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	full := filepath.Join(jdir, "jobs.wal")
	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	bounds := frameBoundaries(t, full)
	if len(bounds) < 4 {
		t.Fatalf("journal holds only %d frames; expected a richer lifecycle", len(bounds)-1)
	}

	for i, cut := range bounds {
		prefix := filepath.Join(jdir, fmt.Sprintf("crash-%03d.wal", i))
		if err := os.WriteFile(prefix, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		m2 := New(st, 2, 0)
		rec, err := m2.EnableJournal(prefix)
		if err != nil {
			t.Fatalf("crash point %d: %v", i, err)
		}
		present := 0
		for id, orig := range want {
			snap, ok := m2.Get(id)
			if !ok {
				continue // submit record was past the crash point
			}
			present++
			if !snap.Recovered && snap.Status != StatusDone {
				t.Errorf("crash point %d: job %s neither terminal nor marked recovered", i, id)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			got, err := m2.Wait(ctx, id)
			cancel()
			if err != nil {
				t.Fatalf("crash point %d: waiting for %s: %v", i, id, err)
			}
			if got.Status != StatusDone {
				t.Fatalf("crash point %d: job %s recovered as %s: %s", i, id, got.Status, got.Error)
			}
			if !bytes.Equal(got.Result, orig.Result) {
				t.Fatalf("crash point %d: job %s result differs after recovery", i, id)
			}
		}
		if got := rec.Resolved + rec.Requeued + rec.Terminal; got != present {
			t.Errorf("crash point %d: recovery accounted %d jobs, %d present", i, got, present)
		}
		// The store is warm, so nothing should ever need requeue-and-wait
		// at the last boundary: the full journal restores pure terminals.
		if i == len(bounds)-1 && rec.Terminal != len(want) {
			t.Errorf("full journal restored %d terminal jobs, want %d", rec.Terminal, len(want))
		}
		if err := m2.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestJournalColdStoreRecomputes rebuilds from a journal holding only
// submit records against a store holding only the trace — the worst
// crash (no result artifacts survived). Every job must recompute through
// the normal pipeline and land byte-identical to the uninterrupted run.
func TestJournalColdStoreRecomputes(t *testing.T) {
	st, key := newTestStore(t)
	jdir := t.TempDir()
	m := journaledManager(t, st, filepath.Join(jdir, "jobs.wal"))
	reqs := []Request{
		{Kind: KindAnalyze, Trace: key},
		{Kind: KindEstimate, Trace: key, Warmup: "mru"},
	}
	want := map[string]Snapshot{}
	for _, req := range reqs {
		snap := submitAndWait(t, m, req)
		if snap.Status != StatusDone {
			t.Fatalf("%s job failed: %s", req.Kind, snap.Error)
		}
		want[snap.ID] = snap
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Keep only the submit records: the crash happened before any work.
	subs := filepath.Join(jdir, "submits.wal")
	w, err := store.OpenWAL(subs)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = store.ReplayWAL(filepath.Join(jdir, "jobs.wal"), func(rec []byte) error {
		var jr journalRecord
		if err := json.Unmarshal(rec, &jr); err != nil {
			return err
		}
		if jr.Op == jopSubmit {
			return w.Append(rec)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Fresh store: same trace content → same key, zero artifacts.
	st2, key2 := newTestStore(t)
	if key2 != key {
		t.Fatalf("trace keys differ: %s vs %s", key2, key)
	}
	m2 := New(st2, 2, 0)
	rec, err := m2.EnableJournal(subs)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Shutdown(context.Background())
	if rec.Requeued != len(want) {
		t.Fatalf("cold recovery requeued %d jobs, want %d (%+v)", rec.Requeued, len(want), rec)
	}
	if m2.Stats().Recovered != int64(len(want)) {
		t.Fatalf("jobs_recovered = %d, want %d", m2.Stats().Recovered, len(want))
	}
	for id, orig := range want {
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		got, err := m2.Wait(ctx, id)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != StatusDone {
			t.Fatalf("job %s recomputed as %s: %s", id, got.Status, got.Error)
		}
		if !got.Recovered {
			t.Errorf("job %s not marked recovered", id)
		}
		if !bytes.Equal(got.Result, orig.Result) {
			t.Fatalf("job %s recomputed result differs from original", id)
		}
	}
}

// TestJournalShutdownOrdering proves the drain contract: after a clean
// Shutdown every job has a terminal journal record, so the next life
// restores pure terminal state with nothing to re-run.
func TestJournalShutdownOrdering(t *testing.T) {
	st, key := newTestStore(t)
	path := filepath.Join(t.TempDir(), "jobs.wal")
	m := journaledManager(t, st, path)
	snap := submitAndWait(t, m, Request{Kind: KindEstimate, Trace: key, Warmup: "cold"})
	if snap.Status != StatusDone {
		t.Fatalf("job failed: %s", snap.Error)
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The journal must already hold the terminal record — no in-memory
	// state survives this point.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	state, _, _, err := replayJournalReader(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	jj, ok := state.jobs[snap.ID]
	if !ok || !jj.terminal || jj.failed {
		t.Fatalf("journal state after clean shutdown: %+v", jj)
	}
	// Appending after close must be refused, not crash.
	m.mu.Lock()
	if err := m.appendJournalLocked(journalRecord{Op: jopStage, ID: snap.ID}); err != nil {
		t.Errorf("append after close returned %v, want nil no-op", err)
	}
	m.mu.Unlock()

	m2 := New(st, 2, 0)
	rec, err := m2.EnableJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Shutdown(context.Background())
	if rec.Terminal != 1 || rec.Requeued != 0 || rec.Resolved != 0 {
		t.Fatalf("clean-shutdown journal recovered as %+v, want 1 terminal", rec)
	}
}

// TestJournalRecoveryConcurrentSubmitStress floods a recovering manager
// with concurrent submits — some identical to recovered jobs (they must
// coalesce onto the original IDs), some fresh — under the race detector.
func TestJournalRecoveryConcurrentSubmitStress(t *testing.T) {
	st, key := newTestStore(t)
	jdir := t.TempDir()

	// Craft a journal of live (never-finished) jobs directly.
	reqs := []Request{
		{Kind: KindAnalyze, Trace: key},
		{Kind: KindEstimate, Trace: key, Warmup: "cold"},
		{Kind: KindEstimate, Trace: key, Warmup: "mru"},
		{Kind: KindSimulate, Trace: key},
	}
	path := filepath.Join(jdir, "jobs.wal")
	w, err := store.OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, len(reqs))
	for i := range reqs {
		ids[i] = fmt.Sprintf("job-%06d", i+1)
		req := reqs[i]
		b, err := json.Marshal(journalRecord{
			Op: jopSubmit, ID: ids[i], Req: &req,
			TraceID: fmt.Sprintf("trace-%d", i+1), CreatedNs: int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	m := New(st, 2, 0)
	rec, err := m.EnableJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Shutdown(context.Background())
	if rec.Requeued != len(reqs) {
		t.Fatalf("requeued %d, want %d (%+v)", rec.Requeued, len(reqs), rec)
	}

	// Hammer the recovering manager: resubmits of the recovered requests
	// must dedup onto the recovered IDs, fresh requests get fresh IDs.
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			req := reqs[g%len(reqs)]
			snap, err := m.Submit(req)
			if err != nil {
				errs <- err
				return
			}
			if want := ids[g%len(reqs)]; snap.ID != want {
				// Dedup coalesces onto live jobs only: if the workers already
				// finished the recovered job, an identical submit legitimately
				// mints a fresh job that completes from the cached artifacts.
				if got, ok := m.Get(want); !ok || got.Status != StatusDone {
					errs <- fmt.Errorf("resubmit of recovered request got id %s, want %s (status %s)", snap.ID, want, got.Status)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := m.Submit(Request{Kind: KindEstimate, Trace: key, Warmup: "mru+prev"}); err != nil {
			errs <- err
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	for _, snap := range m.Jobs() {
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		got, err := m.Wait(ctx, snap.ID)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != StatusDone {
			t.Fatalf("job %s: %s: %s", got.ID, got.Status, got.Error)
		}
	}
	// Recovered jobs all ran: the gauge-backing counter saw each one.
	if got := m.Stats().Recovered; got != int64(len(reqs)) {
		t.Fatalf("jobs_recovered = %d, want %d", got, len(reqs))
	}
}

// TestJournalSubmitAfterRecoveryContinuesIDs proves a recovered manager
// never reissues an ID a previous life already acknowledged.
func TestJournalSubmitAfterRecoveryContinuesIDs(t *testing.T) {
	st, key := newTestStore(t)
	path := filepath.Join(t.TempDir(), "jobs.wal")
	m := journaledManager(t, st, path)
	first := submitAndWait(t, m, Request{Kind: KindAnalyze, Trace: key})
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	m2 := New(st, 2, 0)
	if _, err := m2.EnableJournal(path); err != nil {
		t.Fatal(err)
	}
	defer m2.Shutdown(context.Background())
	second := submitAndWait(t, m2, Request{Kind: KindEstimate, Trace: key, Warmup: "cold"})
	if second.ID == first.ID {
		t.Fatalf("recovered manager reissued id %s", first.ID)
	}
	if jobSeq(second.ID) <= jobSeq(first.ID) {
		t.Fatalf("id sequence went backwards: %s after %s", second.ID, first.ID)
	}
}

// TestAutoFallsBackMidRunWhenFarmFails covers the degradation seam: auto
// mode picks the farm (a live worker is registered), the farm then fails
// mid-job, and the job must complete locally — byte-identical to a pure
// local run — rather than fail.
func TestAutoFallsBackMidRunWhenFarmFails(t *testing.T) {
	st, key := newTestStore(t)
	q := farm.NewQueue(st, farm.Config{})
	m := New(st, 1, 0)
	m.SetFarm(q)
	defer m.Shutdown(context.Background())

	// A registered (never-leasing) worker makes auto mode choose the
	// farm; closing the queue underneath makes every enqueue fail.
	q.Register("ghost-worker")
	q.Close()

	snap := submitAndWait(t, m, Request{Kind: KindEstimate, Trace: key, Warmup: "cold", Exec: ExecAuto})
	if snap.Status != StatusDone {
		t.Fatalf("auto job failed instead of falling back: %s", snap.Error)
	}
	if got := m.farmFallbacks.Load(); got != 1 {
		t.Fatalf("farm_fallbacks = %d, want 1", got)
	}
	if snap.Span == nil || snap.Span.Attrs["farm_fallback"] == "" {
		t.Fatal("fallback not recorded on the job span")
	}

	st2, key2 := newTestStore(t)
	m2 := New(st2, 1, 0)
	defer m2.Shutdown(context.Background())
	local := submitAndWait(t, m2, Request{Kind: KindEstimate, Trace: key2, Warmup: "cold", Exec: ExecLocal})
	if !bytes.Equal(snap.Result, local.Result) {
		t.Fatal("fallback result differs from pure local execution")
	}
}
