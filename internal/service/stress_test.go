package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	bp "barrierpoint"
	"barrierpoint/internal/store"
	"barrierpoint/internal/tracefile"
)

// TestSubmitShutdownRace is the manager's concurrency stress test, meant
// to run under -race (CI does): many goroutines submitting identical and
// distinct requests race a Shutdown. The invariants:
//
//   - no deadlock: Shutdown returns without the context expiring, which
//     also proves the worker pool drained (no leaked workers — Shutdown
//     blocks on wg.Wait);
//   - no double-run of deduped work: the profiler runs at most once per
//     distinct analysis config, no matter how many identical requests
//     were in flight (single-flight + store cache);
//   - every accepted job reaches a terminal state, and submissions after
//     the race fail with ErrClosed.
func TestSubmitShutdownRace(t *testing.T) {
	st, key := newTestStore(t)

	// Count real profiling runs per signature label.
	var mu sync.Mutex
	analyzeCalls := map[string]int{}
	orig := analyzeFn
	defer func() { analyzeFn = orig }()
	analyzeFn = func(st *store.Store, f *tracefile.File, p bp.Program, cfg bp.Config, obsrv bp.StageObserver) (*bp.Analysis, ProfileStats, error) {
		mu.Lock()
		analyzeCalls[cfg.Signature.Label()]++
		mu.Unlock()
		return orig(st, f, p, cfg, obsrv)
	}

	m := New(st, 4, 256)
	// Identical requests ("" and "combine" normalize to the same config)
	// interleave with distinct ones across signatures, kinds and warmup
	// modes.
	reqs := []Request{
		{Kind: KindAnalyze, Trace: key},
		{Kind: KindAnalyze, Trace: key, Signature: "combine"},
		{Kind: KindAnalyze, Trace: key, Signature: "bbv"},
		{Kind: KindAnalyze, Trace: key, Signature: "reuse_dist"},
		{Kind: KindEstimate, Trace: key, Warmup: "cold"},
		{Kind: KindEstimate, Trace: key, Warmup: "mru"},
		{Kind: KindSimulate, Trace: key},
	}

	const goroutines, perG = 12, 10
	var (
		wg       sync.WaitGroup
		accepted sync.Map
		rejected atomic.Int64
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				snap, err := m.Submit(reqs[(g+i)%len(reqs)])
				if err != nil {
					if !errors.Is(err, ErrClosed) && !errors.Is(err, ErrBusy) {
						t.Errorf("Submit: unexpected error %v", err)
					}
					rejected.Add(1)
					continue
				}
				accepted.Store(snap.ID, struct{}{})
			}
		}(g)
	}

	// Let some submissions land, then shut down while others still race.
	time.Sleep(2 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- m.Shutdown(ctx) }()
	wg.Wait()
	select {
	case err := <-shutdownErr:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(150 * time.Second):
		t.Fatal("Shutdown never returned: deadlock")
	}

	// Every accepted job drained to a terminal state.
	nAccepted := 0
	accepted.Range(func(id, _ any) bool {
		nAccepted++
		snap, ok := m.Get(id.(string))
		if !ok {
			t.Errorf("accepted job %s vanished", id)
		} else if !snap.Terminal() {
			t.Errorf("job %s left in state %s after Shutdown", id, snap.Status)
		} else if snap.Status == StatusFailed {
			t.Errorf("job %s failed: %s", id, snap.Error)
		}
		return true
	})
	if nAccepted == 0 {
		t.Fatal("shutdown won every race — no job was ever accepted; stress proved nothing")
	}
	t.Logf("accepted %d jobs, rejected %d (closed/busy)", nAccepted, rejected.Load())

	// Deduped work ran once: at most one profiling pass per distinct
	// analysis config (estimates share the analyze stage via
	// AnalyzeCached, so they add no extra runs).
	mu.Lock()
	defer mu.Unlock()
	for label, n := range analyzeCalls {
		if n > 1 {
			t.Errorf("config %q profiled %d times — deduped job double-ran", label, n)
		}
	}

	// The manager is closed for good; no worker is left to pick anything
	// up.
	if _, err := m.Submit(Request{Kind: KindAnalyze, Trace: key}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Shutdown = %v, want ErrClosed", err)
	}
}

// TestSubmitShutdownRaceRepeated reruns the race a few times with tiny
// worker pools and queue depths, the geometry where lost wakeups and
// send-on-closed bugs hide.
func TestSubmitShutdownRaceRepeated(t *testing.T) {
	st, key := newTestStore(t)
	for round := 0; round < 5; round++ {
		m := New(st, 1, 2)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, err := m.Submit(Request{Kind: KindAnalyze, Trace: key})
				if err != nil && !errors.Is(err, ErrClosed) && !errors.Is(err, ErrBusy) {
					t.Errorf("Submit: %v", err)
				}
			}()
		}
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		if err := m.Shutdown(ctx); err != nil {
			t.Fatalf("round %d: Shutdown: %v", round, err)
		}
		cancel()
		wg.Wait()
	}
}
