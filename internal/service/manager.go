package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	bp "barrierpoint"
	"barrierpoint/internal/adaptive"
	"barrierpoint/internal/farm"
	"barrierpoint/internal/obs"
	"barrierpoint/internal/store"
)

// Kind is a job type.
type Kind string

// Job kinds: the three expensive pipeline stages a client can request.
const (
	// KindAnalyze profiles and clusters a trace, producing its selection.
	KindAnalyze Kind = "analyze"
	// KindSimulate runs the ground-truth full detailed simulation.
	KindSimulate Kind = "simulate"
	// KindEstimate simulates only the barrierpoints (analyzing first if no
	// selection is cached) and reconstructs whole-program metrics.
	KindEstimate Kind = "estimate"
)

// Status is a job lifecycle state.
type Status string

// Job states, in order.
const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// Request describes a job to run against a stored trace.
type Request struct {
	Kind  Kind   `json:"kind"`
	Trace string `json:"trace"` // content key of a stored trace
	// Signature selects the analysis config: "bbv", "reuse_dist" or
	// "combine" (default).
	Signature string `json:"signature,omitempty"`
	// MaxK overrides the clustering's maximum cluster count for analyze and
	// estimate jobs; 0 keeps the paper default. Re-clustering a profiled
	// trace with a different MaxK reuses every cached region profile and
	// pays only k-means (the profile cache is keyed by region content, not
	// by clustering parameters).
	MaxK int `json:"max_k,omitempty"`
	// Sockets sizes the Table I machine for simulate/estimate; 0 derives
	// it from the trace's thread count.
	Sockets int `json:"sockets,omitempty"`
	// Warmup is the estimate warmup mode: "cold" (default), "mru" or
	// "mru+prev".
	Warmup string `json:"warmup,omitempty"`
	// Exec selects how an estimate's barrierpoint simulations run:
	// "auto" (default: farm when live workers are registered, local
	// otherwise), "local" (in-process pool), or "farm" (force the
	// distributed queue; such a job waits for workers to join).
	Exec string `json:"exec,omitempty"`
	// TargetCI, for estimate jobs, asks for adaptive sampling: additional
	// regions are promoted to detailed simulation until the runtime
	// estimate's 95% confidence interval has a relative half-width of at
	// most this value (e.g. 0.02 for ±2%), or the selection is exhausted.
	// 0 runs the standard one-point-per-cluster estimate; intervals are
	// reported either way.
	TargetCI float64 `json:"ci,omitempty"`
}

// Snapshot is a point-in-time copy of a job's state, safe to serialize.
type Snapshot struct {
	ID      string  `json:"id"`
	Request Request `json:"request"`
	Status  Status  `json:"status"`
	Error   string  `json:"error,omitempty"`
	// Cached reports that the job's result came from the store without
	// recomputation.
	Cached   bool            `json:"cached"`
	Result   json.RawMessage `json:"result,omitempty"`
	Created  time.Time       `json:"created"`
	Started  time.Time       `json:"started,omitzero"`
	Finished time.Time       `json:"finished,omitzero"`
	// TraceID is the job's telemetry trace ID, minted at Submit and
	// propagated onto every farm task run on the job's behalf.
	TraceID string `json:"trace_id,omitempty"`
	// Recovered reports that the job crossed a coordinator restart: it
	// was replayed from the job journal as live work and either resolved
	// from the store or re-enqueued under its original ID.
	Recovered bool `json:"recovered,omitempty"`
	// Span is the job's stage-timing span: per-stage durations (profile,
	// cluster, simulate-points, reconstruct, adaptive-round, ...) that
	// partition the job's wall clock, plus concurrent stages (trace-decode)
	// that overlap them. Present once the job has started.
	Span *obs.SpanData `json:"span,omitempty"`
}

// Terminal reports whether the job has finished (successfully or not).
func (s Snapshot) Terminal() bool { return s.Status == StatusDone || s.Status == StatusFailed }

// Stats counts manager activity since construction.
type Stats struct {
	Submitted    int64 `json:"jobs_submitted"`
	Deduped      int64 `json:"jobs_deduped"`
	Done         int64 `json:"jobs_done"`
	Failed       int64 `json:"jobs_failed"`
	CacheHits    int64 `json:"cache_hits"`
	ColdAnalyses int64 `json:"cold_analyses"`
	Farmed       int64 `json:"jobs_farmed"`
	// FarmRecovered counts tasks the attached farm queue rebuilt from its
	// write-ahead log at startup (pending + requeued in-flight leases).
	FarmRecovered int64 `json:"farm_tasks_recovered"`
	// Recovered counts jobs replayed live from the job journal at startup
	// (resolved from the store or re-enqueued under their original IDs).
	Recovered int64 `json:"jobs_recovered"`
	// AdaptiveRounds and AdaptivePromoted count promotion rounds and
	// promoted regions across all CI-targeted estimate jobs.
	AdaptiveRounds   int64 `json:"adaptive_rounds"`
	AdaptivePromoted int64 `json:"adaptive_promoted"`
	// ProfileCacheHits and ProfileComputed count region profiles served
	// from the content-addressed profile cache vs. computed (and cached),
	// across cold analyses and streaming ingests.
	ProfileCacheHits int64 `json:"profile_cache_hits"`
	ProfileComputed  int64 `json:"profile_computed"`
	// IngestedTraces and IngestedProfiles count streaming trace uploads and
	// the region profiles they stored while bytes were still arriving.
	IngestedTraces   int64 `json:"ingested_traces"`
	IngestedProfiles int64 `json:"ingested_profiles"`
}

// Errors returned by Submit.
var (
	ErrClosed = errors.New("service: manager is shut down")
	ErrBusy   = errors.New("service: job queue is full")
)

type job struct {
	id                         string
	req                        Request
	dedup                      string
	cfg                        bp.Config
	mode                       bp.WarmupMode
	status                     Status
	err                        string
	cached                     bool
	result                     json.RawMessage
	created, started, finished time.Time
	done                       chan struct{}
	traceID                    string
	span                       *obs.Span // set when the job starts running
	// artifact is the store artifact name the result landed in (set by
	// execute); the journal's done record points at it instead of
	// embedding bytes.
	artifact string
	// recovered marks a job replayed live from the job journal.
	recovered bool
}

// maxRetained bounds the finished jobs kept for status polling: once
// exceeded, the oldest terminal jobs (and their result payloads) are
// dropped. In-flight jobs are never dropped, so a long-running server's
// memory stays proportional to its queue, not its history.
const maxRetained = 1024

// Manager runs jobs asynchronously on a bounded worker pool over one
// store. Identical requests (same kind, trace and parameters) submitted
// while one is queued or running coalesce onto a single job, and the
// profiling stage itself is additionally single-flight per (trace,
// analysis config) across job kinds (see AnalyzeCached) — combined with
// the store's artifact cache, every expensive stage runs at most once per
// (trace, parameters).
type Manager struct {
	st *store.Store
	// replay is the manager's shared region replay cache: every job that
	// replays a stored trace — a cold analyze, an estimate's warmup and
	// point simulations, a ground-truth simulate — decodes regions through
	// it, keyed by trace content. An estimate+simulate pair over one trace
	// therefore decodes each region once, not once per job.
	replay *bp.ReplayCache
	farm   *farm.Queue // nil until SetFarm; estimates then stay local
	queue  chan *job
	wg     sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string
	inflight map[string]*job // dedup key → queued or running job
	seq      int
	closed   bool

	// Job journal (EnableJournal): lifecycle records appended under m.mu
	// so the log's order matches the in-memory transitions it mirrors.
	journal                                           *store.WAL
	journalClosed                                     bool
	journalRecs                                       int
	journalAppends, journalErrors, journalCompactions int64
	jobRecovery                                       JobRecovery

	submitted, deduped, done, failed, cacheHits, coldAnalyses, farmed   atomic.Int64
	farmRecovered, adaptiveRounds, adaptivePromoted, recovered          atomic.Int64
	farmFallbacks                                                       atomic.Int64
	profileCacheHits, profileComputed, ingestedTraces, ingestedProfiles atomic.Int64

	// Telemetry: reg serves GET /metrics (the atomics above stay the
	// source of truth, bridged in via CounterFuncs); jobDur and stageDur
	// are the per-kind job and per-stage latency histograms; spans retains
	// finished job spans for bptool trace and debugging.
	reg      *obs.Registry
	jobDur   *obs.HistogramVec
	stageDur *obs.HistogramVec
	spans    *obs.SpanRecorder
}

// New starts a manager with the given worker count (GOMAXPROCS if <= 0)
// and queue depth (256 if <= 0).
func New(st *store.Store, workers, depth int) *Manager {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if depth <= 0 {
		depth = 256
	}
	m := &Manager{
		st:       st,
		replay:   bp.NewReplayCache(0), // DefaultReplayCacheBytes
		queue:    make(chan *job, depth),
		jobs:     make(map[string]*job),
		inflight: make(map[string]*job),
		reg:      obs.NewRegistry(),
		spans:    obs.NewSpanRecorder(0),
	}
	m.registerMetrics()
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			for j := range m.queue {
				m.run(j)
			}
		}()
	}
	return m
}

// registerMetrics bridges the manager's counters and caches into its
// metrics registry. The atomics remain the single source of truth; every
// bp_jobs_*/bp_replay_* family reads them at scrape time.
func (m *Manager) registerMetrics() {
	r := m.reg
	counter := func(name, help string, a *atomic.Int64) {
		r.CounterFunc(name, help, func() float64 { return float64(a.Load()) })
	}
	counter("bp_jobs_submitted_total", "Jobs accepted by Submit (dedup hits excluded).", &m.submitted)
	counter("bp_jobs_deduped_total", "Submissions coalesced onto an in-flight identical job.", &m.deduped)
	counter("bp_jobs_done_total", "Jobs finished successfully.", &m.done)
	counter("bp_jobs_failed_total", "Jobs finished in error.", &m.failed)
	counter("bp_job_cache_hits_total", "Jobs answered from the artifact store without recomputation.", &m.cacheHits)
	counter("bp_cold_analyses_total", "Profiling+clustering runs (selection cache misses).", &m.coldAnalyses)
	counter("bp_jobs_farmed_total", "Estimate jobs whose points ran on the distributed queue.", &m.farmed)
	counter("bp_farm_tasks_recovered_total", "Tasks rebuilt from the farm write-ahead log at startup.", &m.farmRecovered)
	counter("bp_jobs_recovered_total", "Jobs restored from the job journal at startup (already terminal, resolved from the store, or re-enqueued).", &m.recovered)
	counter("bp_farm_fallbacks_total", "Auto-mode estimates that fell back to local execution after a farm error.", &m.farmFallbacks)
	counter("bp_adaptive_rounds_total", "Adaptive promotion rounds across all CI-targeted estimates.", &m.adaptiveRounds)
	counter("bp_adaptive_promoted_total", "Regions promoted to detailed simulation by the adaptive sampler.", &m.adaptivePromoted)
	counter("bp_profile_cache_hits_total", "Region profiles served from the content-addressed profile cache.", &m.profileCacheHits)
	counter("bp_profile_computed_total", "Region profiles computed (and cached) on profile-cache misses.", &m.profileComputed)
	counter("bp_ingest_traces_total", "Traces ingested through the streaming upload path.", &m.ingestedTraces)
	counter("bp_ingest_profiles_total", "Region profiles stored during streaming ingest, while the upload was still transferring.", &m.ingestedProfiles)

	cache := func(name, help string, f func(s bp.ReplayCacheStats) float64, gauge bool) {
		fn := func() float64 { return f(m.ReplayCacheStats()) }
		if gauge {
			r.GaugeFunc(name, help, fn)
		} else {
			r.CounterFunc(name, help, fn)
		}
	}
	cache("bp_replay_cache_hits_total", "Replay cache region hits.",
		func(s bp.ReplayCacheStats) float64 { return float64(s.Hits) }, false)
	cache("bp_replay_cache_misses_total", "Replay cache region misses (decodes).",
		func(s bp.ReplayCacheStats) float64 { return float64(s.Misses) }, false)
	cache("bp_replay_cache_evictions_total", "Replay cache LRU evictions.",
		func(s bp.ReplayCacheStats) float64 { return float64(s.Evictions) }, false)
	cache("bp_replay_decode_seconds_total", "Cumulative wall-clock seconds spent decoding regions.",
		func(s bp.ReplayCacheStats) float64 { return float64(s.DecodeNs) / 1e9 }, false)
	cache("bp_replay_cache_bytes", "Decoded bytes currently held by the replay cache.",
		func(s bp.ReplayCacheStats) float64 { return float64(s.Bytes) }, true)
	cache("bp_replay_cache_max_bytes", "Replay cache byte budget.",
		func(s bp.ReplayCacheStats) float64 { return float64(s.MaxBytes) }, true)
	cache("bp_replay_cache_entries", "Regions currently held by the replay cache.",
		func(s bp.ReplayCacheStats) float64 { return float64(s.Entries) }, true)

	m.jobDur = r.HistogramVec("bp_job_seconds", "Job wall-clock latency by kind.",
		"kind", obs.DefLatencyBuckets)
	m.stageDur = r.HistogramVec("bp_job_stage_seconds", "Pipeline stage latency by stage.",
		"stage", obs.DefLatencyBuckets)
}

// Metrics returns the manager's metrics registry; servers mount
// Metrics().Handler() at GET /metrics and may register their own series
// on it.
func (m *Manager) Metrics() *obs.Registry { return m.reg }

// Spans returns the recorder of finished job spans, newest last.
func (m *Manager) Spans() *obs.SpanRecorder { return m.spans }

// Store returns the manager's artifact store.
func (m *Manager) Store() *store.Store { return m.st }

// SetFarm attaches a distributed work queue; estimates may then farm
// their barrierpoint simulations out to registered workers. Call it once,
// before the first Submit. A durable queue (farm.NewDurableQueue) may
// arrive already holding tasks recovered from its write-ahead log; a
// re-submitted estimate job re-attaches to them through the queue's
// TraceKey+artifact dedup in Enqueue, so a coordinator restart loses no
// queued or in-flight simulation work.
func (m *Manager) SetFarm(q *farm.Queue) {
	m.farm = q
	if q != nil {
		rec := q.Recovery()
		m.farmRecovered.Store(int64(rec.Pending + rec.Requeued))
		q.Instrument(m.reg)
	}
}

// Farm returns the attached work queue, or nil when execution is
// local-only.
func (m *Manager) Farm() *farm.Queue { return m.farm }

// SetReplayCacheBytes resizes the manager's region replay cache budget:
// 0 restores the default (bp.DefaultReplayCacheBytes), negative disables
// caching. Call it once, before the first Submit.
func (m *Manager) SetReplayCacheBytes(n int64) {
	if n < 0 {
		m.replay = nil
		return
	}
	m.replay = bp.NewReplayCache(n)
}

// ReplayCacheStats returns the replay cache's activity counters (zeros
// when caching is disabled).
func (m *Manager) ReplayCacheStats() bp.ReplayCacheStats { return m.replay.Stats() }

// Stats returns activity counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Submitted:        m.submitted.Load(),
		Deduped:          m.deduped.Load(),
		Done:             m.done.Load(),
		Failed:           m.failed.Load(),
		CacheHits:        m.cacheHits.Load(),
		ColdAnalyses:     m.coldAnalyses.Load(),
		Farmed:           m.farmed.Load(),
		FarmRecovered:    m.farmRecovered.Load(),
		Recovered:        m.recovered.Load(),
		AdaptiveRounds:   m.adaptiveRounds.Load(),
		AdaptivePromoted: m.adaptivePromoted.Load(),
		ProfileCacheHits: m.profileCacheHits.Load(),
		ProfileComputed:  m.profileComputed.Load(),
		IngestedTraces:   m.ingestedTraces.Load(),
		IngestedProfiles: m.ingestedProfiles.Load(),
	}
}

// validate parses and normalizes a request, returning the analysis config,
// warmup mode and the job's deduplication key. The key covers exactly the
// parameters the kind consumes — an analyze ignores warmup and sockets, a
// simulate ignores warmup and the analysis config, and sockets are
// normalized against the trace's thread count — so requests that differ
// only in irrelevant or equivalent fields coalesce onto one job.
func (m *Manager) validate(req Request) (bp.Config, bp.WarmupMode, string, error) {
	if !m.st.HasTrace(req.Trace) {
		return bp.Config{}, 0, "", fmt.Errorf("service: trace %q: %w", req.Trace, store.ErrNotFound)
	}
	cfg, err := ConfigFor(req.Signature, req.MaxK)
	if err != nil {
		return bp.Config{}, 0, "", err
	}
	if req.MaxK > 0 && req.Kind == KindSimulate {
		// Ground truth does not cluster; rejecting keeps the dedup key honest.
		return bp.Config{}, 0, "", fmt.Errorf("service: max_k applies only to analyze and estimate jobs, not %q", req.Kind)
	}
	mode, err := ParseWarmup(req.Warmup)
	if err != nil {
		return bp.Config{}, 0, "", err
	}
	if req.TargetCI < 0 || req.TargetCI >= 1 {
		return bp.Config{}, 0, "", fmt.Errorf("service: target ci %v out of range [0, 1)", req.TargetCI)
	}
	if req.TargetCI > 0 && req.Kind != KindEstimate {
		return bp.Config{}, 0, "", fmt.Errorf("service: target ci applies only to estimate jobs, not %q", req.Kind)
	}
	switch req.Exec {
	case "", ExecAuto, ExecLocal:
	case ExecFarm:
		if req.Kind != KindEstimate {
			// Analyze is one profiling pass and simulate is a sequential
			// ground-truth run — neither decomposes into farmable points.
			// Rejecting rather than silently running locally keeps the
			// API honest.
			return bp.Config{}, 0, "", fmt.Errorf("service: exec %q applies only to estimate jobs, not %q", req.Exec, req.Kind)
		}
		if m.farm == nil {
			return bp.Config{}, 0, "", errors.New("service: farm execution requested but no farm queue is attached")
		}
	default:
		return bp.Config{}, 0, "", fmt.Errorf("service: unknown exec mode %q (want auto, local or farm)", req.Exec)
	}
	var dedup string
	switch req.Kind {
	case KindAnalyze:
		dedup = fmt.Sprintf("%s|%s|%s", req.Kind, req.Trace, hashJSON(cfg))
	case KindSimulate, KindEstimate:
		f, err := m.st.OpenTrace(req.Trace)
		if err != nil {
			return bp.Config{}, 0, "", err
		}
		threads := f.Threads()
		f.Close()
		mc, err := MachineFor(threads, req.Sockets)
		if err != nil {
			return bp.Config{}, 0, "", err
		}
		if req.Kind == KindSimulate {
			dedup = fmt.Sprintf("%s|%s|%d", req.Kind, req.Trace, mc.Sockets)
		} else {
			// Exec modes produce bit-identical results but very different
			// latencies (a forced farm job waits for workers), so they do
			// not coalesce; the estimate artifact still dedups the actual
			// compute across modes. The CI target is part of the identity:
			// tighter targets simulate more regions and land on different
			// artifacts.
			dedup = fmt.Sprintf("%s|%s|%s|%d|%s|%s|%g", req.Kind, req.Trace, hashJSON(cfg), mc.Sockets, mode, normalizeExec(req.Exec), req.TargetCI)
		}
	default:
		return bp.Config{}, 0, "", fmt.Errorf("service: unknown job kind %q", req.Kind)
	}
	return cfg, mode, dedup, nil
}

// Exec mode labels for Request.Exec.
const (
	ExecAuto  = "auto"
	ExecLocal = "local"
	ExecFarm  = "farm"
)

func normalizeExec(s string) string {
	if s == "" {
		return ExecAuto
	}
	return s
}

// Submit queues a job, or returns the in-flight job already running the
// identical request. The returned snapshot has at least StatusQueued.
func (m *Manager) Submit(req Request) (Snapshot, error) {
	cfg, mode, dedup, err := m.validate(req)
	if err != nil {
		return Snapshot{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Snapshot{}, ErrClosed
	}
	if j, ok := m.inflight[dedup]; ok {
		m.deduped.Add(1)
		return m.snapshotLocked(j), nil
	}
	// Reject before journaling: under m.mu only Submit (and recovery)
	// produce into the queue, and workers only drain it, so observing
	// len < cap here makes the send below non-blocking.
	if len(m.queue) == cap(m.queue) {
		return Snapshot{}, ErrBusy
	}
	m.seq++
	j := &job{
		id:      fmt.Sprintf("job-%06d", m.seq),
		req:     req,
		dedup:   dedup,
		cfg:     cfg,
		mode:    mode,
		status:  StatusQueued,
		created: time.Now(),
		done:    make(chan struct{}),
		traceID: obs.NewTraceID(),
	}
	// Journal-before-ack: a job is accepted only once its submit record
	// is durable, so every acknowledged job survives a crash. (A crash
	// after the append but before the client reads the response re-runs
	// work that was never acked — harmless, the artifacts dedup.)
	if err := m.appendJournalLocked(submitRecord(j, hashJSON(cfg))); err != nil {
		m.seq--
		return Snapshot{}, fmt.Errorf("service: journaling job: %w", err)
	}
	m.queue <- j
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.inflight[dedup] = j
	m.submitted.Add(1)
	return m.snapshotLocked(j), nil
}

// Get returns the current state of a job.
func (m *Manager) Get(id string) (Snapshot, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, false
	}
	return m.snapshotLocked(j), true
}

// Jobs lists all jobs in submission order.
func (m *Manager) Jobs() []Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Snapshot, len(m.order))
	for i, id := range m.order {
		out[i] = m.snapshotLocked(m.jobs[id])
	}
	return out
}

// Wait blocks until the job reaches a terminal state or ctx is done.
func (m *Manager) Wait(ctx context.Context, id string) (Snapshot, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Snapshot{}, fmt.Errorf("service: unknown job %q", id)
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return Snapshot{}, ctx.Err()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.snapshotLocked(j), nil
}

// Shutdown stops accepting jobs, lets queued and running jobs finish, and
// returns when the pool has drained or ctx expires. During the drain the
// farm queue (if attached) keeps leasing and accepting results, so
// in-flight farmed jobs finish normally as workers stream their tasks
// back. If ctx expires first, the farm queue is closed: leased tasks are
// requeued and every farmed job blocked on them fails promptly with
// farm.ErrClosed instead of hanging until lease TTLs expire — their
// completed points are already cached in the store, so a retry after
// restart redoes only the unfinished ones. A durable farm queue keeps its
// live tasks journaled in the write-ahead log across Close, so the next
// coordinator recovers them outright.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.queue)
	}
	m.mu.Unlock()
	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		if m.farm != nil {
			m.farm.Close()
		}
		// Every worker has exited, so every final done/failed record is
		// already journaled; only now is the journal closed. (Closing
		// earlier would race job completion against the WAL handle.)
		m.mu.Lock()
		m.closeJournalLocked()
		m.mu.Unlock()
		return nil
	case <-ctx.Done():
	}
	if m.farm != nil {
		m.farm.Close()
		// Closing the queue unblocks farm waits; give the pool a short
		// grace to observe the failures and drain cleanly.
		select {
		case <-drained:
		case <-time.After(time.Second):
		}
	}
	// The drain timed out: workers may still be appending, so the journal
	// handle stays open and the exit looks like a crash to the next life —
	// which is exactly the case replay is built for. Unfinished jobs
	// re-enqueue or resolve from the store on restart.
	return ctx.Err()
}

// pruneLocked evicts the oldest terminal jobs past the retention bound;
// m.mu must be held. Eviction skips over still-queued or running jobs.
func (m *Manager) pruneLocked() {
	excess := len(m.jobs) - maxRetained
	if excess <= 0 {
		return
	}
	kept := m.order[:0]
	for _, id := range m.order {
		j := m.jobs[id]
		if excess > 0 && (j.status == StatusDone || j.status == StatusFailed) {
			delete(m.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

// snapshotLocked copies a job's state; m.mu must be held.
func (m *Manager) snapshotLocked(j *job) Snapshot {
	s := Snapshot{
		ID:        j.id,
		Request:   j.req,
		Status:    j.status,
		Error:     j.err,
		Cached:    j.cached,
		Result:    j.result,
		Created:   j.created,
		Started:   j.started,
		Finished:  j.finished,
		TraceID:   j.traceID,
		Recovered: j.recovered,
	}
	if j.span != nil {
		d := j.span.Data()
		s.Span = &d
	}
	return s
}

// run executes one job on a worker goroutine.
func (m *Manager) run(j *job) {
	m.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	j.span = obs.NewSpan(j.traceID, string(j.req.Kind))
	j.span.SetAttr("job", j.id)
	if j.recovered {
		// The marker bptool trace and debug surfaces show for jobs that
		// crossed a coordinator restart.
		j.span.SetAttr("recovered", "true")
	}
	m.journalBestEffortLocked(journalRecord{Op: jopRunning, ID: j.id})
	m.mu.Unlock()

	// Region decoding happens inside profiling and simulation, so its time
	// is attributed as a concurrent stage: the delta in the replay cache's
	// cumulative decode clock across the job's execution. The clock is
	// shared, so jobs running at the same time over one cache may attribute
	// each other's decodes — fine for a concurrent (non-partition) stage.
	decode0 := m.ReplayCacheStats().DecodeNs
	result, cached, err := m.execute(j)
	if d := m.ReplayCacheStats().DecodeNs - decode0; d > 0 {
		j.span.ObserveConcurrent("trace-decode", time.Duration(d))
	}
	j.span.Finish()
	m.jobDur.With(string(j.req.Kind)).ObserveDuration(time.Since(j.started))
	m.spans.Record(j.span.Data())

	m.mu.Lock()
	j.finished = time.Now()
	j.cached = cached
	if err != nil {
		j.status = StatusFailed
		j.err = err.Error()
		m.journalBestEffortLocked(journalRecord{
			Op: jopFailed, ID: j.id, Error: j.err, FinishedNs: j.finished.UnixNano()})
	} else {
		j.status = StatusDone
		j.result = result
		// Best-effort: the result artifact is already durable in the store,
		// so recovery resolves this job even if the done record never lands.
		m.journalBestEffortLocked(journalRecord{
			Op: jopDone, ID: j.id, Artifact: j.artifact, Cached: cached,
			FinishedNs: j.finished.UnixNano()})
	}
	delete(m.inflight, j.dedup)
	m.pruneLocked()
	m.mu.Unlock()
	if err != nil {
		m.failed.Add(1)
	} else {
		m.done.Add(1)
	}
	if cached {
		m.cacheHits.Add(1)
	}
	close(j.done)
}

// stageObserver feeds one job's stage timings to both its span and the
// manager-wide per-stage histogram.
func (m *Manager) stageObserver(j *job) bp.StageObserver {
	return func(stage string, d time.Duration) {
		j.span.Observe(stage, d)
		m.stageDur.With(stage).ObserveDuration(d)
		m.mu.Lock()
		m.journalBestEffortLocked(journalRecord{Op: jopStage, ID: j.id, Stage: stage})
		m.mu.Unlock()
	}
}

// execute dispatches on the job kind. The cached return value reports that
// the job's own result artifact was already in the store.
func (m *Manager) execute(j *job) (json.RawMessage, bool, error) {
	obsrv := m.stageObserver(j)
	switch j.req.Kind {
	case KindAnalyze:
		j.artifact = SelectionArtifact(j.cfg)
		sel, cached, stats, err := AnalyzeCachedProfiled(m.st, j.req.Trace, j.cfg, m.replay, obsrv)
		if err != nil {
			return nil, false, err
		}
		if !cached {
			m.coldAnalyses.Add(1)
			m.recordProfileStats(j, stats)
		}
		return json.RawMessage(sel), cached, nil

	case KindEstimate:
		// One open serves machine sizing and simulation; only a cold
		// selection miss inside AnalyzeCached opens the trace again.
		f, err := m.st.OpenTrace(j.req.Trace)
		if err != nil {
			return nil, false, err
		}
		defer f.Close()
		mc, err := MachineFor(f.Threads(), j.req.Sockets)
		if err != nil {
			return nil, false, err
		}
		name := AdaptiveEstimateArtifact(j.cfg, mc, j.mode, j.req.TargetCI)
		j.artifact = name
		if b, err := m.st.GetArtifact(j.req.Trace, name); err == nil {
			return json.RawMessage(b), true, nil
		} else if !errors.Is(err, store.ErrNotFound) {
			return nil, false, err
		}
		selBytes, selCached, stats, err := AnalyzeCachedProfiled(m.st, j.req.Trace, j.cfg, m.replay, obsrv)
		if err != nil {
			return nil, false, err
		}
		if !selCached {
			m.coldAnalyses.Add(1)
			m.recordProfileStats(j, stats)
		}
		bind0 := time.Now()
		sel, err := bp.LoadSelection(bytes.NewReader(selBytes))
		if err != nil {
			return nil, false, err
		}
		// Bind the selection to the cached replay view: warmup capture and
		// the local point runner then replay decoded regions from memory.
		a, err := sel.Bind(m.replay.Program(f, j.req.Trace))
		if err != nil {
			return nil, false, err
		}
		obsrv("bind", time.Since(bind0))
		// The adaptive controller drives the same runner the plain estimate
		// would use, so promotions farm out (and cache per point) exactly
		// like the initial barrierpoints. With no target it just attaches
		// intervals to the standard one-point-per-cluster estimate.
		res, err := adaptive.Run(a, m.pointRunner(j), mc, j.mode,
			adaptive.Options{TargetRel: j.req.TargetCI, Observer: obsrv})
		if err != nil {
			return nil, false, err
		}
		m.adaptiveRounds.Add(int64(len(res.Rounds)))
		m.adaptivePromoted.Add(int64(len(res.Simulated) - len(a.Selection.Points)))
		return m.putResult(j.req.Trace, name, newIntervalResult(
			res.Estimate, mc, j.mode.String(), len(res.Simulated), len(res.Rounds), j.req.TargetCI, res.Met))

	case KindSimulate:
		f, err := m.st.OpenTrace(j.req.Trace)
		if err != nil {
			return nil, false, err
		}
		defer f.Close()
		mc, err := MachineFor(f.Threads(), j.req.Sockets)
		if err != nil {
			return nil, false, err
		}
		name := ActualArtifact(mc)
		j.artifact = name
		if b, err := m.st.GetArtifact(j.req.Trace, name); err == nil {
			return json.RawMessage(b), true, nil
		} else if !errors.Is(err, store.ErrNotFound) {
			return nil, false, err
		}
		sim0 := time.Now()
		full, err := bp.SimulateFull(m.replay.Program(f, j.req.Trace), mc)
		obsrv("simulate-full", time.Since(sim0))
		if err != nil {
			return nil, false, err
		}
		return m.putResult(j.req.Trace, name, newEstimateResult(bp.ActualFrom(full), mc, ""))

	default:
		return nil, false, fmt.Errorf("service: unknown job kind %q", j.req.Kind)
	}
}

// recordProfileStats attributes a cold analysis's profile-cache activity
// to the job's span (profiles_cached / profiles_computed, the numbers the
// CI smoke greps for) and to the manager-wide counters.
func (m *Manager) recordProfileStats(j *job, stats ProfileStats) {
	j.span.SetAttr("profiles_cached", fmt.Sprintf("%d", stats.Cached))
	j.span.SetAttr("profiles_computed", fmt.Sprintf("%d", stats.Computed))
	m.profileCacheHits.Add(int64(stats.Cached))
	m.profileComputed.Add(int64(stats.Computed))
}

// pointRunner picks the execution strategy for a job's barrierpoint
// simulations: the distributed queue when the job forces it or when auto
// mode sees live workers, otherwise the local pool — in both cases behind
// the store's per-point result cache, so farm runs, local runs and bptool
// -cache runs all share per-point work. Farm tasks themselves dedup
// against the same artifacts inside the queue.
func (m *Manager) pointRunner(j *job) bp.PointRunner {
	local := func() bp.PointRunner {
		return &farm.CachedRunner{St: m.st, TraceKey: j.req.Trace, Inner: bp.LocalRunner{}}
	}
	useFarm := false
	switch normalizeExec(j.req.Exec) {
	case ExecFarm:
		useFarm = m.farm != nil
	case ExecAuto:
		useFarm = m.farm != nil && m.farm.LiveWorkers() > 0
	}
	if !useFarm {
		return local()
	}
	m.farmed.Add(1)
	fr := farm.QueueRunner{Q: m.farm, TraceKey: j.req.Trace, TraceID: j.traceID}
	if normalizeExec(j.req.Exec) == ExecFarm {
		// Forced farm mode fails loudly rather than quietly running local.
		return fr
	}
	// Auto mode degrades gracefully: a farm-side failure (queue closed,
	// task attempts exhausted against a flaky fleet) falls back to local
	// execution instead of failing the job. Points that completed on the
	// farm are already cached per artifact, so the fallback recomputes
	// only what the fleet never finished.
	return &fallbackRunner{primary: fr, fallback: local(), onFallback: func(err error) {
		m.farmFallbacks.Add(1)
		j.span.SetAttr("farm_fallback", err.Error())
	}}
}

// fallbackRunner tries its primary point runner and, on error, reruns
// the request on the fallback (auto-mode farm → local degradation).
type fallbackRunner struct {
	primary, fallback bp.PointRunner
	onFallback        func(error)
}

func (r *fallbackRunner) RunPoints(p bp.Program, regions []int, mc bp.MachineConfig, mode bp.WarmupMode) (map[int]bp.RegionResult, error) {
	out, err := r.primary.RunPoints(p, regions, mc, mode)
	if err == nil {
		return out, nil
	}
	if r.onFallback != nil {
		r.onFallback(err)
	}
	return r.fallback.RunPoints(p, regions, mc, mode)
}

// putResult serializes, caches and returns a job result artifact.
func (m *Manager) putResult(key, name string, v any) (json.RawMessage, bool, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, false, err
	}
	if err := m.st.PutArtifact(key, name, b); err != nil {
		return nil, false, err
	}
	return json.RawMessage(b), false, nil
}
