// Package service is the analysis service behind cmd/bpserve and cmd/bptool
// -cache: cached single-flight access to the expensive BarrierPoint pipeline
// stages over a content-addressed store (see internal/store), plus an async
// job manager (see manager.go) that runs them on a bounded worker pool.
//
// # Cache keys
//
// Every artifact is keyed first by the trace's content key (SHA-256 of the
// trace file) and then by a name encoding everything the artifact depends
// on:
//
//	selection-<sig>-<cfgh>.json     barrierpoint selection; <sig> is the
//	                                signature label (e.g. "combine"),
//	                                <cfgh> hashes the full analysis config
//	                                (signature options + clustering params)
//	estimate-<mch>-<warmup>-<cfgh>.json
//	                                reconstructed estimate; <mch> hashes
//	                                the machine config, <warmup> is the
//	                                warmup mode label
//	actual-<mch>.json               ground-truth full-simulation metrics
//
// Hashes are the first 12 hex digits of the SHA-256 of the config's
// canonical JSON, so any parameter change — clustering seed, cache sizes,
// core count — lands on a distinct artifact, while repeat requests with
// identical parameters always hit the cache.
package service

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"time"

	bp "barrierpoint"
	"barrierpoint/internal/reconstruct"
	"barrierpoint/internal/store"
	"barrierpoint/internal/tracefile"
)

// analyzeFn is the profiling+clustering entry point. It is a variable so
// tests can prove the cached path never re-profiles: the cache-hit test
// swaps in a function that fails the test if invoked (this is the only
// route into region profiling here).
var analyzeFn = analyzeProfiled

// analyzeProfiled is the default analysis path: per-region profiles come
// from the store's content-addressed profile cache when present (profilesFor
// computes and caches the misses), then clustering runs over them. With a
// fully warm profile cache — the normal state right after a streaming
// upload — the reported stage is "profile-cache" instead of "profile",
// because no profiling happened: the analysis paid only decode + k-means.
// Either way the resulting selection is byte-identical to a cold pass
// (the profile codec round-trips exact float bits).
func analyzeProfiled(st *store.Store, f *tracefile.File, prog bp.Program, cfg bp.Config, obsrv bp.StageObserver) (*bp.Analysis, ProfileStats, error) {
	t0 := time.Now()
	profiles, stats, err := profilesFor(st, f, prog)
	if err != nil {
		return nil, stats, err
	}
	if obsrv != nil {
		stage := "profile"
		if stats.Regions > 0 && stats.Computed == 0 {
			stage = "profile-cache"
		}
		obsrv(stage, time.Since(t0))
	}
	t1 := time.Now()
	a, err := bp.AnalyzeWithProfiles(prog, cfg, profiles)
	if obsrv != nil {
		obsrv("cluster", time.Since(t1))
	}
	return a, stats, err
}

// hashJSON is the store-wide artifact config hash (see store.HashJSON).
func hashJSON(v any) string { return store.HashJSON(v) }

// SelectionArtifact names the cached selection artifact for an analysis
// config.
func SelectionArtifact(cfg bp.Config) string {
	return fmt.Sprintf("selection-%s-%s.json", sanitize(cfg.Signature.Label()), hashJSON(cfg))
}

// EstimateArtifact names the cached estimate artifact for a machine,
// warmup mode and analysis config.
func EstimateArtifact(cfg bp.Config, mc bp.MachineConfig, mode bp.WarmupMode) string {
	return fmt.Sprintf("estimate-%s-%s-%s.json", hashJSON(mc), sanitize(mode.String()), hashJSON(cfg))
}

// AdaptiveEstimateArtifact names the cached estimate artifact for an
// adaptive run targeting the given relative CI: a distinct artifact per
// target, since tighter targets simulate more regions and produce
// different (better) estimates. A zero target is the plain estimate.
func AdaptiveEstimateArtifact(cfg bp.Config, mc bp.MachineConfig, mode bp.WarmupMode, targetCI float64) string {
	if targetCI <= 0 {
		return EstimateArtifact(cfg, mc, mode)
	}
	return fmt.Sprintf("estimate-%s-%s-%s-ci%s.json",
		hashJSON(mc), sanitize(mode.String()), hashJSON(cfg), sanitize(fmt.Sprintf("%g", targetCI)))
}

// ActualArtifact names the cached ground-truth (full simulation) artifact
// for a machine config.
func ActualArtifact(mc bp.MachineConfig) string {
	return fmt.Sprintf("actual-%s.json", hashJSON(mc))
}

// sanitize maps a label onto the store's artifact-name charset ("mru+prev"
// → "mru-prev").
func sanitize(s string) string { return store.SanitizeLabel(s) }

// ParseWarmup parses a warmup mode label as printed by WarmupMode.String.
// It delegates to bp.ParseWarmup so the CLI, service and farm protocols
// share one vocabulary.
func ParseWarmup(s string) (bp.WarmupMode, error) {
	return bp.ParseWarmup(s)
}

// ParseSignature maps a signature label ("bbv", "reuse_dist", "combine")
// onto an analysis config; empty means the paper's default.
func ParseSignature(s string) (bp.Config, error) {
	cfg := bp.DefaultConfig()
	switch s {
	case "", "combine":
		cfg.Signature.Kind = bp.Combined
	case "bbv":
		cfg.Signature.Kind = bp.BBVOnly
	case "reuse_dist":
		cfg.Signature.Kind = bp.LDVOnly
	default:
		return bp.Config{}, fmt.Errorf("service: unknown signature %q (want bbv, reuse_dist or combine)", s)
	}
	return cfg, nil
}

// ConfigFor maps a signature label and an optional MaxK override (0 keeps
// the paper default) onto an analysis config. MaxK changes only the
// clustering parameters, so two configs differing in MaxK share every
// cached region profile and differ only in k-means work and artifacts.
func ConfigFor(signature string, maxK int) (bp.Config, error) {
	cfg, err := ParseSignature(signature)
	if err != nil {
		return bp.Config{}, err
	}
	if maxK < 0 {
		return bp.Config{}, fmt.Errorf("service: max_k %d out of range (want >= 0)", maxK)
	}
	if maxK > 0 {
		cfg.Cluster.MaxK = maxK
	}
	return cfg, nil
}

// CachedSelection returns the cached selection artifact for the trace and
// config without computing anything: an error wrapping store.ErrNotFound
// when the analysis has not run yet.
func CachedSelection(st *store.Store, key string, cfg bp.Config) ([]byte, error) {
	return st.GetArtifact(key, SelectionArtifact(cfg))
}

// analyzeFlights tracks in-flight selection computations so concurrent
// callers — an analyze job racing an estimate job, or several estimate
// jobs with different warmup modes over a fresh trace — profile each
// (trace, config) at most once per process; late arrivals wait and then
// read the artifact the first caller stored.
var (
	analyzeMu      sync.Mutex
	analyzeFlights = make(map[string]chan struct{})
)

// AnalyzeCached returns the serialized barrierpoint selection for the
// stored trace, analyzing and caching on miss. On a hit the bytes come
// straight from the store — the trace is not opened and profiling does not
// run — and cached is true. Computation is single-flight per (store,
// trace, config) within the process. The returned bytes parse with
// bp.LoadSelection.
func AnalyzeCached(st *store.Store, key string, cfg bp.Config) (sel []byte, cached bool, err error) {
	return AnalyzeCachedReplay(st, key, cfg, nil)
}

// AnalyzeCachedReplay is AnalyzeCached with a replay cache: a cold
// analysis decodes each region through rc (keyed by the trace's content
// key), so a following estimate or simulate over the same cache replays
// regions without touching the trace file. A nil rc streams from disk.
func AnalyzeCachedReplay(st *store.Store, key string, cfg bp.Config, rc *bp.ReplayCache) (sel []byte, cached bool, err error) {
	return AnalyzeCachedObserved(st, key, cfg, rc, nil)
}

// AnalyzeCachedObserved is AnalyzeCachedReplay with stage telemetry: a
// cold analysis reports its profiling ("profile", or "profile-cache" when
// every region profile was served from the store) and "cluster" stage
// durations to obsrv. Cache hits and waits on another caller's in-flight
// computation report nothing — no profiling ran in this call. The
// observer never influences the computed selection.
func AnalyzeCachedObserved(st *store.Store, key string, cfg bp.Config, rc *bp.ReplayCache, obsrv bp.StageObserver) (sel []byte, cached bool, err error) {
	sel, cached, _, err = AnalyzeCachedProfiled(st, key, cfg, rc, obsrv)
	return sel, cached, err
}

// AnalyzeCachedProfiled is AnalyzeCachedObserved, additionally reporting
// where a cold analysis's region profiles came from. A selection-artifact
// hit (cached=true) returns zero stats: nothing was profiled or even
// fetched from the profile cache. A cold run right after a streaming
// upload reports Computed==0 — every profile was already in the store.
func AnalyzeCachedProfiled(st *store.Store, key string, cfg bp.Config, rc *bp.ReplayCache, obsrv bp.StageObserver) (sel []byte, cached bool, stats ProfileStats, err error) {
	name := SelectionArtifact(cfg)
	flightKey := st.Root() + "|" + key + "|" + name
	for {
		if b, err := st.GetArtifact(key, name); err == nil {
			return b, true, ProfileStats{}, nil
		} else if !errors.Is(err, store.ErrNotFound) {
			return nil, false, ProfileStats{}, err
		}
		analyzeMu.Lock()
		if ch, ok := analyzeFlights[flightKey]; ok {
			analyzeMu.Unlock()
			<-ch // someone is computing this selection; wait, then re-check
			continue
		}
		ch := make(chan struct{})
		analyzeFlights[flightKey] = ch
		analyzeMu.Unlock()

		sel, stats, err := computeSelection(st, key, cfg, name, rc, obsrv)
		analyzeMu.Lock()
		delete(analyzeFlights, flightKey)
		analyzeMu.Unlock()
		close(ch)
		return sel, false, stats, err
	}
}

// computeSelection runs the cold path: profile (through the per-region
// profile cache), cluster, serialize, cache.
func computeSelection(st *store.Store, key string, cfg bp.Config, name string, rc *bp.ReplayCache, obsrv bp.StageObserver) ([]byte, ProfileStats, error) {
	f, err := st.OpenTrace(key)
	if err != nil {
		return nil, ProfileStats{}, err
	}
	defer f.Close()
	a, stats, err := analyzeFn(st, f, rc.Program(f, key), cfg, obsrv)
	if err != nil {
		return nil, stats, err
	}
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		return nil, stats, err
	}
	if err := st.PutArtifact(key, name, buf.Bytes()); err != nil {
		return nil, stats, err
	}
	return buf.Bytes(), stats, nil
}

// EstimateResult is the serialized form of a whole-program estimate, used
// both as the cached artifact and as the job result payload.
type EstimateResult struct {
	TimeNs   float64 `json:"time_ns"`
	Cycles   float64 `json:"cycles"`
	Instrs   float64 `json:"instrs"`
	DRAMAccs float64 `json:"dram_accs"`
	IPC      float64 `json:"ipc"`
	DRAMAPKI float64 `json:"dram_apki"`
	Warmup   string  `json:"warmup,omitempty"` // empty for ground truth
	Cores    int     `json:"cores"`
	Sockets  int     `json:"sockets"`
	// CI is the estimate's confidence report; nil for ground-truth results
	// and for artifacts cached by versions that predate intervals.
	CI *CIResult `json:"ci,omitempty"`
}

// CIResult is the confidence block attached to every estimate: symmetric
// interval half-widths at the stated confidence level, plus the adaptive
// sampler's effort accounting.
type CIResult struct {
	Confidence float64 `json:"confidence"`
	TimeHalfNs float64 `json:"time_half_ns"`
	TimeRel    float64 `json:"time_rel"`
	IPCHalf    float64 `json:"ipc_half"`
	APKIHalf   float64 `json:"apki_half"`
	// PointsSimulated counts the regions simulated in detail (selected
	// barrierpoints plus adaptive promotions).
	PointsSimulated int `json:"points_simulated"`
	// AdaptiveRounds counts promotion rounds (0 for a plain estimate).
	AdaptiveRounds int `json:"adaptive_rounds"`
	// TargetCI echoes the requested relative CI; TargetMet reports whether
	// the run reached it (false when the selection was exhausted first).
	TargetCI  float64 `json:"target_ci,omitempty"`
	TargetMet bool    `json:"target_met,omitempty"`
}

// newEstimateResult flattens a bp.Estimate with its derived metrics.
func newEstimateResult(e bp.Estimate, mc bp.MachineConfig, warmup string) EstimateResult {
	return EstimateResult{
		TimeNs:   e.TimeNs,
		Cycles:   e.Cycles,
		Instrs:   e.Instrs,
		DRAMAccs: e.DRAMAccs,
		IPC:      e.IPC(),
		DRAMAPKI: e.DRAMAPKI(),
		Warmup:   warmup,
		Cores:    mc.Cores(),
		Sockets:  mc.Sockets,
	}
}

// newIntervalResult is newEstimateResult plus the confidence block from an
// interval estimate and the adaptive run's effort accounting.
func newIntervalResult(ie reconstruct.IntervalEstimate, mc bp.MachineConfig, warmup string, points, rounds int, targetCI float64, met bool) EstimateResult {
	res := newEstimateResult(ie.Estimate, mc, warmup)
	res.CI = &CIResult{
		Confidence:      ie.Confidence,
		TimeHalfNs:      ie.Margin.TimeNs,
		TimeRel:         ie.RelTime(),
		IPCHalf:         ie.IPCInterval().Half,
		APKIHalf:        ie.APKIInterval().Half,
		PointsSimulated: points,
		AdaptiveRounds:  rounds,
		TargetCI:        targetCI,
		TargetMet:       met,
	}
	return res
}

// MachineFor sizes a Table I machine for a trace with the given thread
// count: sockets as given, or derived from the threads when 0. It
// validates that the machine's core count matches the trace.
func MachineFor(threads, sockets int) (bp.MachineConfig, error) {
	if sockets == 0 {
		if threads%8 != 0 {
			return bp.MachineConfig{}, fmt.Errorf("service: trace has %d threads, not a multiple of 8", threads)
		}
		sockets = threads / 8
	}
	mc := bp.TableIMachine(sockets)
	if mc.Cores() != threads {
		return bp.MachineConfig{}, fmt.Errorf("service: machine with %d sockets has %d cores but trace has %d threads",
			sockets, mc.Cores(), threads)
	}
	return mc, nil
}
