package signature

import (
	"math"
	"testing"
	"testing/quick"

	"barrierpoint/internal/bbv"
	"barrierpoint/internal/ldv"
)

func mkData(threads int) *RegionData {
	rd := &RegionData{
		BBV:          make([]bbv.Vector, threads),
		LDV:          make([]ldv.Histogram, threads),
		ThreadInstrs: make([]uint64, threads),
	}
	for t := 0; t < threads; t++ {
		v := bbv.New()
		v.Add(1, 10*(t+1))
		v.Add(2, 5)
		rd.BBV[t] = v
		var h ldv.Histogram
		h.Add(1)
		h.Add(100)
		h.AddCold()
		rd.LDV[t] = h
		rd.ThreadInstrs[t] = uint64(10*(t+1) + 5)
		rd.TotalInstrs += rd.ThreadInstrs[t]
	}
	return rd
}

func mass(sv SV) float64 { return sv.Total() }

func TestBuildNormalization(t *testing.T) {
	for _, kind := range []Kind{BBVOnly, LDVOnly, Combined} {
		sv := Build(mkData(4), Options{Kind: kind})
		if len(sv) == 0 {
			t.Fatalf("%v: empty signature", kind)
		}
		if math.Abs(mass(sv)-1) > 1e-9 {
			t.Errorf("%v: mass = %v, want 1", kind, mass(sv))
		}
	}
}

func TestBuildKindsSelectFeatures(t *testing.T) {
	rd := mkData(2)
	bOnly := Build(rd, Options{Kind: BBVOnly})
	lOnly := Build(rd, Options{Kind: LDVOnly})
	comb := Build(rd, Options{Kind: Combined})
	if Distance(bOnly, lOnly) < 1.99 {
		t.Error("BBV-only and LDV-only signatures share features")
	}
	if len(comb) != len(bOnly)+len(lOnly) {
		t.Errorf("combined has %d features, want %d", len(comb), len(bOnly)+len(lOnly))
	}
}

func TestSumVsConcat(t *testing.T) {
	// Imbalanced threads: concatenation separates them, summation hides it.
	rd1 := mkData(2)
	// rd2 swaps the two threads' BBVs.
	rd2 := mkData(2)
	rd2.BBV[0], rd2.BBV[1] = rd2.BBV[1], rd2.BBV[0]
	concat1 := Build(rd1, Options{Kind: BBVOnly})
	concat2 := Build(rd2, Options{Kind: BBVOnly})
	if Distance(concat1, concat2) == 0 {
		t.Error("concatenated SVs identical despite per-thread swap")
	}
	sum1 := Build(rd1, Options{Kind: BBVOnly, SumThreads: true})
	sum2 := Build(rd2, Options{Kind: BBVOnly, SumThreads: true})
	if d := Distance(sum1, sum2); d > 1e-9 {
		t.Errorf("summed SVs differ (%v) despite identical aggregate", d)
	}
}

func TestLDVWeighting(t *testing.T) {
	rd := mkData(1)
	plain := Build(rd, Options{Kind: LDVOnly})
	weighted := Build(rd, Options{Kind: LDVOnly, LDVWeightV: 2})
	if Distance(plain, weighted) == 0 {
		t.Error("weighting changed nothing")
	}
	if math.Abs(mass(weighted)-1) > 1e-9 {
		t.Error("weighted SV not normalized")
	}
}

func TestDistanceProperties(t *testing.T) {
	f := func(seedA, seedB uint8) bool {
		mk := func(seed uint8) SV {
			rd := mkData(int(seed%3) + 1)
			rd.BBV[0].Add(int(seed), 7)
			return Build(rd, Options{Kind: Combined})
		}
		a, b := mk(seedA), mk(seedB)
		dAB, dBA := Distance(a, b), Distance(b, a)
		return math.Abs(dAB-dBA) < 1e-12 && dAB >= 0 && dAB <= 2+1e-9 && Distance(a, a) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestBuildWideBlockKeys: block IDs at or past 2^48 are truncated into the
// 48-bit feature field by key(); Build must still emit a sorted,
// duplicate-free SV with colliding features summed (the map-era
// semantics), not a silently mis-ordered vector that breaks the merge-join
// Distance.
func TestBuildWideBlockKeys(t *testing.T) {
	rd := &RegionData{
		BBV: []bbv.Vector{bbv.FromMap(map[int]float64{
			5:                      1,
			9:                      2,
			int(uint64(1)<<48 | 5): 3, // truncates to feature 5
		})},
	}
	sv := Build(rd, Options{Kind: BBVOnly})
	if !sortedStrict(sv) {
		t.Fatalf("Build emitted an unsorted SV: %v", sv)
	}
	if len(sv) != 2 {
		t.Fatalf("Build emitted %d entries, want 2 (colliding features merged): %v", len(sv), sv)
	}
	wantKeys := []uint64{key(0, 0, 5), key(0, 0, 9)}
	wantVals := []float64{4.0 / 6, 2.0 / 6}
	for i := range sv {
		if sv[i].Key != wantKeys[i] || math.Abs(sv[i].Val-wantVals[i]) > 1e-12 {
			t.Errorf("sv[%d] = %+v, want key %#x val %v", i, sv[i], wantKeys[i], wantVals[i])
		}
	}
}

func TestIdenticalRegionsZeroDistance(t *testing.T) {
	a := Build(mkData(4), Default())
	b := Build(mkData(4), Default())
	if d := Distance(a, b); d > 1e-12 {
		t.Errorf("identical regions have distance %v", d)
	}
}

// TestDistanceZeroAllocs is the allocation-regression cap of the ISSUE:
// the merge-join Distance never allocates.
func TestDistanceZeroAllocs(t *testing.T) {
	a := Build(mkData(4), Default())
	b := Build(mkData(3), Default())
	var sink float64
	allocs := testing.AllocsPerRun(1000, func() {
		sink += Distance(a, b)
	})
	if allocs != 0 {
		t.Errorf("Distance allocates %.2f times per call, want 0", allocs)
	}
	_ = sink
}

func TestLabels(t *testing.T) {
	cases := []struct {
		o    Options
		want string
	}{
		{Options{Kind: BBVOnly}, "bbv"},
		{Options{Kind: LDVOnly}, "reuse_dist"},
		{Options{Kind: LDVOnly, LDVWeightV: 2}, "reuse_dist-1_2"},
		{Options{Kind: Combined, LDVWeightV: 5}, "combine-1_5"},
		{Options{Kind: Combined, SumThreads: true}, "combine-sum"},
	}
	for _, c := range cases {
		if got := c.o.Label(); got != c.want {
			t.Errorf("Label = %q, want %q", got, c.want)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind has empty name")
	}
}

// refBuild is a direct port of the seed's map-based Build, kept as the
// equivalence reference for the flat sorted pipeline.
func refBuild(rd *RegionData, o Options) map[uint64]float64 {
	sv := make(map[uint64]float64)
	threads := len(rd.BBV)
	useBBV := o.Kind == BBVOnly || o.Kind == Combined
	useLDV := o.Kind == LDVOnly || o.Kind == Combined
	for t := 0; t < threads; t++ {
		slot := t
		if o.SumThreads {
			slot = 0
		}
		if useBBV {
			for id, w := range rd.BBV[t].Normalized().ToMap() {
				sv[key(0, slot, uint64(id))] += w
			}
		}
		if useLDV {
			h := rd.LDV[t]
			if o.LDVWeightV > 0 {
				h = h.Weighted(o.LDVWeightV)
			}
			h = h.Normalized()
			for n, w := range h.Buckets {
				if w != 0 {
					sv[key(1, slot, uint64(n))] += w
				}
			}
			if h.Cold != 0 {
				sv[key(1, slot, uint64(ldv.NumBuckets))] += h.Cold
			}
		}
	}
	var total float64
	for _, w := range sv {
		total += w
	}
	if total > 0 {
		for k := range sv {
			sv[k] /= total
		}
	}
	return sv
}

// TestBuildMatchesMapReference proves the flat pipeline is equivalent to
// the seed's map-based construction across kinds, weighting and thread
// aggregation modes.
func TestBuildMatchesMapReference(t *testing.T) {
	opts := []Options{
		{Kind: BBVOnly},
		{Kind: LDVOnly},
		{Kind: Combined},
		{Kind: Combined, LDVWeightV: 2},
		{Kind: Combined, SumThreads: true},
		{Kind: BBVOnly, SumThreads: true},
	}
	for _, o := range opts {
		for _, threads := range []int{1, 2, 4} {
			rd := mkData(threads)
			got := Build(rd, o)
			want := FromMap(refBuild(rd, o))
			if len(got) != len(want) {
				t.Errorf("%v threads=%d: %d features, want %d", o, threads, len(got), len(want))
				continue
			}
			if d := Distance(got, want); d > 1e-12 {
				t.Errorf("%v threads=%d: distance to reference = %v", o, threads, d)
			}
			for i := 1; i < len(got); i++ {
				if got[i-1].Key >= got[i].Key {
					t.Fatalf("%v threads=%d: SV not strictly sorted at %d", o, threads, i)
				}
			}
		}
	}
}

func TestBuildAll(t *testing.T) {
	rds := []*RegionData{mkData(2), mkData(2), mkData(3)}
	svs, weights := BuildAll(rds, Default())
	if len(svs) != 3 || len(weights) != 3 {
		t.Fatal("wrong lengths")
	}
	for i, rd := range rds {
		if weights[i] != float64(rd.TotalInstrs) {
			t.Errorf("weight %d = %v", i, weights[i])
		}
	}
}
