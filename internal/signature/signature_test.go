package signature

import (
	"math"
	"testing"
	"testing/quick"

	"barrierpoint/internal/bbv"
	"barrierpoint/internal/ldv"
)

func mkData(threads int) *RegionData {
	rd := &RegionData{
		BBV:          make([]bbv.Vector, threads),
		LDV:          make([]ldv.Histogram, threads),
		ThreadInstrs: make([]uint64, threads),
	}
	for t := 0; t < threads; t++ {
		v := bbv.New()
		v.Add(1, 10*(t+1))
		v.Add(2, 5)
		rd.BBV[t] = v
		var h ldv.Histogram
		h.Add(1)
		h.Add(100)
		h.AddCold()
		rd.LDV[t] = h
		rd.ThreadInstrs[t] = uint64(10*(t+1) + 5)
		rd.TotalInstrs += rd.ThreadInstrs[t]
	}
	return rd
}

func mass(sv SV) float64 {
	var s float64
	for _, w := range sv {
		s += w
	}
	return s
}

func TestBuildNormalization(t *testing.T) {
	for _, kind := range []Kind{BBVOnly, LDVOnly, Combined} {
		sv := Build(mkData(4), Options{Kind: kind})
		if len(sv) == 0 {
			t.Fatalf("%v: empty signature", kind)
		}
		if math.Abs(mass(sv)-1) > 1e-9 {
			t.Errorf("%v: mass = %v, want 1", kind, mass(sv))
		}
	}
}

func TestBuildKindsSelectFeatures(t *testing.T) {
	rd := mkData(2)
	bOnly := Build(rd, Options{Kind: BBVOnly})
	lOnly := Build(rd, Options{Kind: LDVOnly})
	comb := Build(rd, Options{Kind: Combined})
	if Distance(bOnly, lOnly) < 1.99 {
		t.Error("BBV-only and LDV-only signatures share features")
	}
	if len(comb) != len(bOnly)+len(lOnly) {
		t.Errorf("combined has %d features, want %d", len(comb), len(bOnly)+len(lOnly))
	}
}

func TestSumVsConcat(t *testing.T) {
	// Imbalanced threads: concatenation separates them, summation hides it.
	rd1 := mkData(2)
	// rd2 swaps the two threads' BBVs.
	rd2 := mkData(2)
	rd2.BBV[0], rd2.BBV[1] = rd2.BBV[1], rd2.BBV[0]
	concat1 := Build(rd1, Options{Kind: BBVOnly})
	concat2 := Build(rd2, Options{Kind: BBVOnly})
	if Distance(concat1, concat2) == 0 {
		t.Error("concatenated SVs identical despite per-thread swap")
	}
	sum1 := Build(rd1, Options{Kind: BBVOnly, SumThreads: true})
	sum2 := Build(rd2, Options{Kind: BBVOnly, SumThreads: true})
	if d := Distance(sum1, sum2); d > 1e-9 {
		t.Errorf("summed SVs differ (%v) despite identical aggregate", d)
	}
}

func TestLDVWeighting(t *testing.T) {
	rd := mkData(1)
	plain := Build(rd, Options{Kind: LDVOnly})
	weighted := Build(rd, Options{Kind: LDVOnly, LDVWeightV: 2})
	if Distance(plain, weighted) == 0 {
		t.Error("weighting changed nothing")
	}
	if math.Abs(mass(weighted)-1) > 1e-9 {
		t.Error("weighted SV not normalized")
	}
}

func TestDistanceProperties(t *testing.T) {
	f := func(seedA, seedB uint8) bool {
		mk := func(seed uint8) SV {
			rd := mkData(int(seed%3) + 1)
			rd.BBV[0].Add(int(seed), 7)
			return Build(rd, Options{Kind: Combined})
		}
		a, b := mk(seedA), mk(seedB)
		dAB, dBA := Distance(a, b), Distance(b, a)
		return math.Abs(dAB-dBA) < 1e-12 && dAB >= 0 && dAB <= 2+1e-9 && Distance(a, a) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIdenticalRegionsZeroDistance(t *testing.T) {
	a := Build(mkData(4), Default())
	b := Build(mkData(4), Default())
	if d := Distance(a, b); d > 1e-12 {
		t.Errorf("identical regions have distance %v", d)
	}
}

func TestLabels(t *testing.T) {
	cases := []struct {
		o    Options
		want string
	}{
		{Options{Kind: BBVOnly}, "bbv"},
		{Options{Kind: LDVOnly}, "reuse_dist"},
		{Options{Kind: LDVOnly, LDVWeightV: 2}, "reuse_dist-1_2"},
		{Options{Kind: Combined, LDVWeightV: 5}, "combine-1_5"},
		{Options{Kind: Combined, SumThreads: true}, "combine-sum"},
	}
	for _, c := range cases {
		if got := c.o.Label(); got != c.want {
			t.Errorf("Label = %q, want %q", got, c.want)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind has empty name")
	}
}

func TestBuildAll(t *testing.T) {
	rds := []*RegionData{mkData(2), mkData(2), mkData(3)}
	svs, weights := BuildAll(rds, Default())
	if len(svs) != 3 || len(weights) != 3 {
		t.Fatal("wrong lengths")
	}
	for i, rd := range rds {
		if weights[i] != float64(rd.TotalInstrs) {
			t.Errorf("weight %d = %v", i, weights[i])
		}
	}
}
