// Package signature builds the Signature Vectors (SVs) of the BarrierPoint
// methodology (paper §III-A): per inter-barrier region, per-thread BBVs
// and/or LRU stack distance vectors are individually normalized, optionally
// weighted, and concatenated — across threads and across metric kinds —
// into a single sparse vector characterizing the region's behaviour.
package signature

import (
	"fmt"

	"barrierpoint/internal/bbv"
	"barrierpoint/internal/ldv"
)

// Kind selects which program characteristics enter the signature.
type Kind int

// Signature kinds, matching the paper's Figure 5 series.
const (
	// BBVOnly uses code signatures only ("bbv").
	BBVOnly Kind = iota
	// LDVOnly uses LRU stack distance vectors only ("reuse_dist").
	LDVOnly
	// Combined concatenates both ("combine") — the paper's default.
	Combined
)

// String returns the paper's series label for the kind.
func (k Kind) String() string {
	switch k {
	case BBVOnly:
		return "bbv"
	case LDVOnly:
		return "reuse_dist"
	case Combined:
		return "combine"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Options configures signature construction.
type Options struct {
	Kind Kind
	// LDVWeightV is the v in the paper's 2^(n/v) stack distance bucket
	// weighting. 0 disables weighting (the paper's default).
	LDVWeightV float64
	// SumThreads aggregates per-thread vectors by summation instead of
	// concatenation — the rejected alternative of §III-A4, kept as an
	// ablation.
	SumThreads bool
}

// Label renders the options as the paper's Figure 5 series name, e.g.
// "combine-1_2" for Combined with v=2.
func (o Options) Label() string {
	l := o.Kind.String()
	if o.LDVWeightV > 0 {
		l += fmt.Sprintf("-1_%d", int(o.LDVWeightV))
	}
	if o.SumThreads {
		l += "-sum"
	}
	return l
}

// Default returns the paper's default configuration: combined signatures,
// unweighted LDVs, per-thread concatenation.
func Default() Options { return Options{Kind: Combined} }

// SV is a sparse signature vector. Keys are feature identifiers unique
// across threads and metric kinds; values are normalized weights.
type SV map[uint64]float64

// Feature key layout: | kind (1 bit) | thread (15 bits) | feature (48 bits) |
const (
	featBits   = 48
	threadBits = 15
	kindShift  = featBits + threadBits
)

func key(kind, thread int, feature uint64) uint64 {
	return uint64(kind)<<kindShift | uint64(thread)<<featBits | feature&((1<<featBits)-1)
}

// RegionData is the per-thread profile of one region, as produced by the
// profiler.
type RegionData struct {
	BBV          []bbv.Vector    // per thread
	LDV          []ldv.Histogram // per thread
	ThreadInstrs []uint64
	TotalInstrs  uint64
}

// Build constructs the signature vector of one region. Each (thread, kind)
// sub-vector is L1-normalized before concatenation; the final vector is
// L1-normalized overall, so regions of different lengths compare by
// intrinsic behaviour only (paper §III-B).
func Build(rd *RegionData, o Options) SV {
	sv := make(SV)
	threads := len(rd.BBV)
	useBBV := o.Kind == BBVOnly || o.Kind == Combined
	useLDV := o.Kind == LDVOnly || o.Kind == Combined

	for t := 0; t < threads; t++ {
		slot := t
		if o.SumThreads {
			slot = 0
		}
		if useBBV {
			n := rd.BBV[t].Normalized()
			for id, w := range n {
				sv[key(0, slot, uint64(id))] += w
			}
		}
		if useLDV {
			h := rd.LDV[t]
			if o.LDVWeightV > 0 {
				h = h.Weighted(o.LDVWeightV)
			}
			h = h.Normalized()
			for n, w := range h.Buckets {
				if w != 0 {
					sv[key(1, slot, uint64(n))] += w
				}
			}
			if h.Cold != 0 {
				sv[key(1, slot, uint64(ldv.NumBuckets))] += h.Cold
			}
		}
	}

	// Overall L1 normalization.
	var total float64
	for _, w := range sv {
		total += w
	}
	if total > 0 {
		for k := range sv {
			sv[k] /= total
		}
	}
	return sv
}

// BuildAll constructs signature vectors for every region, plus the region
// weights (aggregate instruction counts) used by weighted clustering.
func BuildAll(rds []*RegionData, o Options) (svs []SV, weights []float64) {
	svs = make([]SV, len(rds))
	weights = make([]float64, len(rds))
	for i, rd := range rds {
		svs[i] = Build(rd, o)
		weights[i] = float64(rd.TotalInstrs)
	}
	return svs, weights
}

// Distance returns the L1 (Manhattan) distance between two signature
// vectors; for normalized vectors it lies in [0, 2].
func Distance(a, b SV) float64 {
	var d float64
	for k, av := range a {
		bv := b[k]
		if av > bv {
			d += av - bv
		} else {
			d += bv - av
		}
	}
	for k, bv := range b {
		if _, ok := a[k]; !ok {
			d += bv
		}
	}
	return d
}
