// Package signature builds the Signature Vectors (SVs) of the BarrierPoint
// methodology (paper §III-A): per inter-barrier region, per-thread BBVs
// and/or LRU stack distance vectors are individually normalized, optionally
// weighted, and concatenated — across threads and across metric kinds —
// into a single sparse vector characterizing the region's behaviour.
package signature

import (
	"fmt"

	"barrierpoint/internal/bbv"
	"barrierpoint/internal/ldv"
	"barrierpoint/internal/sparse"
)

// Kind selects which program characteristics enter the signature.
type Kind int

// Signature kinds, matching the paper's Figure 5 series.
const (
	// BBVOnly uses code signatures only ("bbv").
	BBVOnly Kind = iota
	// LDVOnly uses LRU stack distance vectors only ("reuse_dist").
	LDVOnly
	// Combined concatenates both ("combine") — the paper's default.
	Combined
)

// String returns the paper's series label for the kind.
func (k Kind) String() string {
	switch k {
	case BBVOnly:
		return "bbv"
	case LDVOnly:
		return "reuse_dist"
	case Combined:
		return "combine"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Options configures signature construction.
type Options struct {
	Kind Kind
	// LDVWeightV is the v in the paper's 2^(n/v) stack distance bucket
	// weighting. 0 disables weighting (the paper's default).
	LDVWeightV float64
	// SumThreads aggregates per-thread vectors by summation instead of
	// concatenation — the rejected alternative of §III-A4, kept as an
	// ablation.
	SumThreads bool
}

// Label renders the options as the paper's Figure 5 series name, e.g.
// "combine-1_2" for Combined with v=2.
func (o Options) Label() string {
	l := o.Kind.String()
	if o.LDVWeightV > 0 {
		l += fmt.Sprintf("-1_%d", int(o.LDVWeightV))
	}
	if o.SumThreads {
		l += "-sum"
	}
	return l
}

// Default returns the paper's default configuration: combined signatures,
// unweighted LDVs, per-thread concatenation.
func Default() Options { return Options{Kind: Combined} }

// SV is a sparse signature vector: entries sorted by ascending feature key.
// Keys are feature identifiers unique across threads and metric kinds;
// values are normalized weights. The flat sorted form makes Distance a
// zero-allocation merge join and lets projection memoize per-feature rows
// (see internal/cluster); FromMap is the shim for map-speaking callers.
type SV = sparse.Vector

// FromMap converts a feature→weight map into a sorted SV.
func FromMap(m map[uint64]float64) SV { return sparse.FromMap(m) }

// Feature key layout: | kind (1 bit) | thread (15 bits) | feature (48 bits) |
const (
	featBits   = 48
	threadBits = 15
	kindShift  = featBits + threadBits
)

func key(kind, thread int, feature uint64) uint64 {
	return uint64(kind)<<kindShift | uint64(thread)<<featBits | feature&((1<<featBits)-1)
}

// RegionData is the per-thread profile of one region, as produced by the
// profiler.
type RegionData struct {
	BBV          []bbv.Vector    // per thread
	LDV          []ldv.Histogram // per thread
	ThreadInstrs []uint64
	TotalInstrs  uint64
}

// Build constructs the signature vector of one region. Each (thread, kind)
// sub-vector is L1-normalized before concatenation; the final vector is
// L1-normalized overall, so regions of different lengths compare by
// intrinsic behaviour only (paper §III-B).
//
// In the default concatenation mode the feature keys of successive
// (kind, thread) sub-vectors are strictly increasing — kind is the top key
// bit and BBV entries are already sorted per thread — so the SV is emitted
// sorted in one pass with a single exact-size allocation. SumThreads folds
// every thread into slot 0 and therefore accumulates through scratch
// storage before sorting.
func Build(rd *RegionData, o Options) SV {
	if o.SumThreads {
		return buildSummed(rd, o)
	}
	threads := len(rd.BBV)
	useBBV := o.Kind == BBVOnly || o.Kind == Combined
	useLDV := o.Kind == LDVOnly || o.Kind == Combined

	n := 0
	if useBBV {
		for t := 0; t < threads; t++ {
			n += rd.BBV[t].Len()
		}
	}
	if useLDV {
		n += threads * (ldv.NumBuckets + 1)
	}
	sv := make(SV, 0, n)

	if useBBV {
		for t := 0; t < threads; t++ {
			v := rd.BBV[t]
			total := v.Total()
			if total == 0 {
				continue
			}
			for _, e := range v {
				sv = append(sv, sparse.Entry{Key: key(0, t, e.Key), Val: e.Val / total})
			}
		}
	}
	if useLDV {
		for t := 0; t < threads; t++ {
			sv = appendLDV(sv, &rd.LDV[t], t, o)
		}
	}
	// BBV block keys wider than featBits are truncated by key(), which can
	// break the emitted order and collide features; restore the sorted
	// invariant (colliding features sum, the map-era semantics). Ordinary
	// traces never take this branch — block IDs are far below 2^48 — so the
	// fast path pays one sortedness scan.
	if !sortedStrict(sv) {
		sv = sparse.SortMerge(sv)
	}
	normalize(sv)
	return sv
}

// sortedStrict reports whether sv's keys are strictly increasing.
func sortedStrict(sv SV) bool {
	for i := 1; i < len(sv); i++ {
		if sv[i-1].Key >= sv[i].Key {
			return false
		}
	}
	return true
}

// appendLDV appends thread slot's weighted, normalized LDV entries in
// bucket order (cold last, matching its key ldv.NumBuckets).
func appendLDV(sv SV, h *ldv.Histogram, slot int, o Options) SV {
	hh := *h
	if o.LDVWeightV > 0 {
		hh = hh.Weighted(o.LDVWeightV)
	}
	hh = hh.Normalized()
	for n, w := range hh.Buckets {
		if w != 0 {
			sv = append(sv, sparse.Entry{Key: key(1, slot, uint64(n)), Val: w})
		}
	}
	if hh.Cold != 0 {
		sv = append(sv, sparse.Entry{Key: key(1, slot, uint64(ldv.NumBuckets)), Val: hh.Cold})
	}
	return sv
}

// buildSummed is the SumThreads ablation path: every thread lands on slot
// 0, so features collide across threads and are accumulated before the
// final sort and normalization.
func buildSummed(rd *RegionData, o Options) SV {
	threads := len(rd.BBV)
	useBBV := o.Kind == BBVOnly || o.Kind == Combined
	useLDV := o.Kind == LDVOnly || o.Kind == Combined

	acc := sparse.NewAccumulator(64)
	for t := 0; t < threads; t++ {
		if useBBV {
			v := rd.BBV[t]
			total := v.Total()
			if total != 0 {
				for _, e := range v {
					acc.Add(key(0, 0, e.Key), e.Val/total)
				}
			}
		}
		if useLDV {
			hh := rd.LDV[t]
			if o.LDVWeightV > 0 {
				hh = hh.Weighted(o.LDVWeightV)
			}
			hh = hh.Normalized()
			for n, w := range hh.Buckets {
				if w != 0 {
					acc.Add(key(1, 0, uint64(n)), w)
				}
			}
			if hh.Cold != 0 {
				acc.Add(key(1, 0, uint64(ldv.NumBuckets)), hh.Cold)
			}
		}
	}
	sv := acc.AppendSorted(make(SV, 0, acc.Len()))
	normalize(sv)
	return sv
}

// normalize applies the overall L1 normalization in place.
func normalize(sv SV) {
	var total float64
	for _, e := range sv {
		total += e.Val
	}
	if total > 0 {
		for i := range sv {
			sv[i].Val /= total
		}
	}
}

// BuildAll constructs signature vectors for every region, plus the region
// weights (aggregate instruction counts) used by weighted clustering.
func BuildAll(rds []*RegionData, o Options) (svs []SV, weights []float64) {
	svs = make([]SV, len(rds))
	weights = make([]float64, len(rds))
	for i, rd := range rds {
		svs[i] = Build(rd, o)
		weights[i] = float64(rd.TotalInstrs)
	}
	return svs, weights
}

// Distance returns the L1 (Manhattan) distance between two signature
// vectors; for normalized vectors it lies in [0, 2]. Both vectors are
// sorted, so this is a zero-allocation merge join.
func Distance(a, b SV) float64 { return sparse.Distance(a, b) }
