package signature

import (
	"encoding/binary"
	"fmt"
	"math"

	"barrierpoint/internal/bbv"
	"barrierpoint/internal/ldv"
	"barrierpoint/internal/sparse"
)

// CodecVersion names the RegionData wire encoding. It is part of the
// profile-cache key (store profiles are filed as <region digest>.<codec>),
// so bumping it on any incompatible change below automatically invalidates
// every cached profile instead of mis-decoding it.
const CodecVersion = "rd1"

// codecMagic leads every encoded RegionData so a foreign blob fails fast.
const codecMagic = "bprd1\n"

// EncodeRegionData serializes rd for the store's per-region profile cache.
// Floats are stored as their exact IEEE-754 bits, never formatted, so a
// decoded profile is bit-identical to the freshly computed one — the
// property that lets cached-profile analyses promise byte-identical
// selections and estimates.
//
// RegionData is deliberately signature-variant-independent (Options — kind,
// LDV weighting, thread aggregation — are applied later by Build), so one
// encoded profile per region content serves every signature variant and
// every clustering configuration.
func EncodeRegionData(rd *RegionData) []byte {
	threads := len(rd.BBV)
	n := len(codecMagic) + 2*binary.MaxVarintLen64
	for t := 0; t < threads; t++ {
		n += 2*binary.MaxVarintLen64 + len(rd.BBV[t])*(binary.MaxVarintLen64+8) + (ldv.NumBuckets+1)*8
	}
	buf := make([]byte, 0, n)
	buf = append(buf, codecMagic...)
	buf = binary.AppendUvarint(buf, uint64(threads))
	buf = binary.AppendUvarint(buf, rd.TotalInstrs)
	for t := 0; t < threads; t++ {
		buf = binary.AppendUvarint(buf, rd.ThreadInstrs[t])
		v := rd.BBV[t]
		buf = binary.AppendUvarint(buf, uint64(len(v)))
		for _, e := range v {
			buf = binary.AppendUvarint(buf, e.Key)
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Val))
		}
		h := &rd.LDV[t]
		for _, w := range h.Buckets {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(w))
		}
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(h.Cold))
	}
	return buf
}

// DecodeRegionData parses an EncodeRegionData blob. Any structural damage —
// wrong magic, truncation, trailing bytes, out-of-order BBV keys — is an
// error; callers treat a failed decode as a cache miss and recompute.
func DecodeRegionData(data []byte) (*RegionData, error) {
	d := codecDecoder{buf: data}
	if len(data) < len(codecMagic) || string(data[:len(codecMagic)]) != codecMagic {
		return nil, fmt.Errorf("signature: not an encoded region profile")
	}
	d.pos = len(codecMagic)
	threads, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if threads == 0 || threads > 1<<20 {
		return nil, fmt.Errorf("signature: corrupt profile: %d threads", threads)
	}
	rd := &RegionData{
		BBV:          make([]bbv.Vector, threads),
		LDV:          make([]ldv.Histogram, threads),
		ThreadInstrs: make([]uint64, threads),
	}
	if rd.TotalInstrs, err = d.uvarint(); err != nil {
		return nil, err
	}
	for t := uint64(0); t < threads; t++ {
		if rd.ThreadInstrs[t], err = d.uvarint(); err != nil {
			return nil, err
		}
		nv, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if nv > uint64(len(data)) { // each entry takes ≥ 9 bytes
			return nil, fmt.Errorf("signature: corrupt profile: BBV declares %d entries", nv)
		}
		v := make(bbv.Vector, nv)
		var prev uint64
		for i := range v {
			k, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			if i > 0 && k <= prev {
				return nil, fmt.Errorf("signature: corrupt profile: BBV keys out of order")
			}
			prev = k
			val, err := d.float()
			if err != nil {
				return nil, err
			}
			v[i] = sparse.Entry{Key: k, Val: val}
		}
		rd.BBV[t] = v
		h := &rd.LDV[t]
		for i := range h.Buckets {
			if h.Buckets[i], err = d.float(); err != nil {
				return nil, err
			}
		}
		if h.Cold, err = d.float(); err != nil {
			return nil, err
		}
	}
	if d.pos != len(data) {
		return nil, fmt.Errorf("signature: corrupt profile: %d trailing bytes", len(data)-d.pos)
	}
	return rd, nil
}

type codecDecoder struct {
	buf []byte
	pos int
}

func (d *codecDecoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("signature: corrupt profile: truncated varint")
	}
	d.pos += n
	return v, nil
}

func (d *codecDecoder) float() (float64, error) {
	if d.pos+8 > len(d.buf) {
		return 0, fmt.Errorf("signature: corrupt profile: truncated float")
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.pos:]))
	d.pos += 8
	return v, nil
}
