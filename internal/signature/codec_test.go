package signature

import (
	"math"
	"reflect"
	"testing"

	"barrierpoint/internal/bbv"
	"barrierpoint/internal/ldv"
	"barrierpoint/internal/sparse"
)

func sampleRegionData() *RegionData {
	rd := &RegionData{
		BBV: []bbv.Vector{
			{{Key: 3, Val: 17.5}, {Key: 9, Val: 0.25}, {Key: 1 << 40, Val: 1e-17}},
			nil, // idle thread
		},
		LDV:          make([]ldv.Histogram, 2),
		ThreadInstrs: []uint64{12345, 0},
		TotalInstrs:  12345,
	}
	rd.LDV[0].Buckets[0] = 0.1
	rd.LDV[0].Buckets[ldv.NumBuckets-1] = 1.0 / 3.0 // not exactly representable in decimal
	rd.LDV[0].Cold = 42
	return rd
}

func TestRegionDataRoundTrip(t *testing.T) {
	rd := sampleRegionData()
	got, err := DecodeRegionData(EncodeRegionData(rd))
	if err != nil {
		t.Fatalf("DecodeRegionData: %v", err)
	}
	// nil and empty BBV are equivalent; normalize for comparison.
	if len(got.BBV[1]) == 0 {
		got.BBV[1] = nil
	}
	if !reflect.DeepEqual(got, rd) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, rd)
	}
	// The decoded profile must build bit-identical signatures.
	for _, o := range []Options{{Kind: Combined}, {Kind: BBVOnly}, {Kind: LDVOnly}, {Kind: Combined, LDVWeightV: 2}, {Kind: Combined, SumThreads: true}} {
		a, b := Build(rd, o), Build(got, o)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("options %v: signature from decoded profile differs", o)
		}
	}
}

func TestRegionDataExactFloatBits(t *testing.T) {
	rd := sampleRegionData()
	// Values chosen to break any formatting-based codec.
	rd.BBV[0][0].Val = math.Nextafter(1, 2)
	rd.LDV[0].Buckets[7] = math.SmallestNonzeroFloat64
	got, err := DecodeRegionData(EncodeRegionData(rd))
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got.BBV[0][0].Val) != math.Float64bits(rd.BBV[0][0].Val) {
		t.Fatal("BBV value bits changed in round trip")
	}
	if math.Float64bits(got.LDV[0].Buckets[7]) != math.Float64bits(rd.LDV[0].Buckets[7]) {
		t.Fatal("LDV bucket bits changed in round trip")
	}
}

func TestDecodeRegionDataRejectsCorrupt(t *testing.T) {
	good := EncodeRegionData(sampleRegionData())
	cases := map[string][]byte{
		"empty":      nil,
		"bad-magic":  append([]byte("xxxxx\n"), good[6:]...),
		"truncated":  good[:len(good)-3],
		"trailing":   append(append([]byte(nil), good...), 0),
		"not-a-blob": []byte("bprd1\nhello"),
	}
	// Out-of-order BBV keys: swap the first two entries of thread 0.
	reordered := sampleRegionData()
	reordered.BBV[0][0], reordered.BBV[0][1] = sparse.Entry{Key: 9, Val: 1}, sparse.Entry{Key: 3, Val: 2}
	cases["unsorted-bbv"] = EncodeRegionData(reordered)

	for name, data := range cases {
		if _, err := DecodeRegionData(data); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
}
