package sim

// branchPredictor is a gshare predictor: the per-branch PC is XORed with a
// global history register to index a table of 2-bit saturating counters.
// It stands in for the paper's Pentium M (Dothan) predictor with the same
// 8-cycle mispredict penalty.
type branchPredictor struct {
	table   []uint8
	mask    uint32
	history uint32
}

const branchTableBits = 12

func newBranchPredictor() *branchPredictor {
	n := 1 << branchTableBits
	t := make([]uint8, n)
	for i := range t {
		t[i] = 1 // weakly not-taken
	}
	return &branchPredictor{table: t, mask: uint32(n - 1)}
}

// predict runs one branch through the predictor, updates its state, and
// reports whether the branch was mispredicted.
func (b *branchPredictor) predict(pc int, taken bool) (mispredict bool) {
	idx := (uint32(pc) ^ b.history) & b.mask
	ctr := b.table[idx]
	predTaken := ctr >= 2
	if taken && ctr < 3 {
		b.table[idx] = ctr + 1
	} else if !taken && ctr > 0 {
		b.table[idx] = ctr - 1
	}
	b.history = ((b.history << 1) | boolBit(taken)) & b.mask
	return predTaken != taken
}

func boolBit(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func (b *branchPredictor) reset() {
	for i := range b.table {
		b.table[i] = 1
	}
	b.history = 0
}
