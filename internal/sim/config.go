// Package sim implements a deterministic multi-core timing simulator: the
// substrate standing in for the paper's modified Sniper 5.0.
//
// The model is an interval-style approximation of a 4-wide superscalar core
// (dispatch-width base cost, a bounded outstanding-miss window providing
// memory-level parallelism, and a fixed branch mispredict penalty) on top of
// a full cache hierarchy: private L1I/L1D/L2 per core, a shared, inclusive
// L3 per socket with an MSI directory over the private caches, and a DRAM
// channel per socket with both fixed latency and bandwidth-induced queueing.
// Cores are interleaved in fixed round-robin cycle quanta, so shared-state
// interactions are deterministic and approximately time-ordered.
package sim

import "fmt"

// CacheConfig describes one cache level.
type CacheConfig struct {
	SizeBytes int // total capacity
	Ways      int // associativity
	Latency   int // access latency in cycles
}

// Sets returns the number of sets (SizeBytes / 64-byte lines / Ways).
func (c CacheConfig) Sets() int {
	s := c.SizeBytes / 64 / c.Ways
	if s < 1 {
		s = 1
	}
	return s
}

// Lines returns the total line capacity.
func (c CacheConfig) Lines() int { return c.SizeBytes / 64 }

// Config describes a simulated machine.
type Config struct {
	Sockets        int // processor sockets
	CoresPerSocket int // cores per socket

	FreqGHz           float64 // core clock
	IssueWidth        int     // dispatch width (instructions/cycle)
	ROB               int     // reorder buffer entries (reporting only)
	MLP               int     // max outstanding long-latency misses per core
	MispredictPenalty int     // branch mispredict penalty, cycles

	L1I CacheConfig
	L1D CacheConfig
	L2  CacheConfig
	L3  CacheConfig // per socket, shared by its cores

	MemLatencyNs float64 // DRAM access latency
	MemBWGBs     float64 // DRAM bandwidth per socket, GB/s

	RemoteL3Extra int // extra cycles for a cross-socket L3/home access

	BarrierBase      int // barrier cost, cycles
	BarrierPerThread int // additional barrier cost per participating core

	QuantumCycles uint64 // round-robin interleaving quantum
}

// Cores returns the total core count.
func (c Config) Cores() int { return c.Sockets * c.CoresPerSocket }

// MemLatencyCycles converts DRAM latency to core cycles.
func (c Config) MemLatencyCycles() uint64 {
	return uint64(c.MemLatencyNs * c.FreqGHz)
}

// MemBusyCyclesPerLine is how many cycles one 64-byte line transfer occupies
// a socket's DRAM channel.
func (c Config) MemBusyCyclesPerLine() uint64 {
	bytesPerCycle := c.MemBWGBs / c.FreqGHz // GB/s over Gcycle/s = bytes/cycle
	if bytesPerCycle <= 0 {
		return 1
	}
	busy := uint64(64.0 / bytesPerCycle)
	if busy < 1 {
		busy = 1
	}
	return busy
}

// BarrierCycles is the global synchronization cost appended to each region.
func (c Config) BarrierCycles() uint64 {
	return uint64(c.BarrierBase + c.BarrierPerThread*c.Cores())
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Sockets < 1 || c.CoresPerSocket < 1:
		return fmt.Errorf("sim: need at least one socket and core, got %d×%d", c.Sockets, c.CoresPerSocket)
	case c.Cores() > 64:
		return fmt.Errorf("sim: directory sharer mask supports at most 64 cores, got %d", c.Cores())
	case c.IssueWidth < 1:
		return fmt.Errorf("sim: issue width must be >= 1, got %d", c.IssueWidth)
	case c.MLP < 1:
		return fmt.Errorf("sim: MLP must be >= 1, got %d", c.MLP)
	case c.FreqGHz <= 0:
		return fmt.Errorf("sim: frequency must be positive, got %g", c.FreqGHz)
	case c.QuantumCycles < 1:
		return fmt.Errorf("sim: quantum must be >= 1 cycle")
	}
	for _, cc := range []struct {
		name string
		c    CacheConfig
	}{{"L1I", c.L1I}, {"L1D", c.L1D}, {"L2", c.L2}, {"L3", c.L3}} {
		if cc.c.SizeBytes < 64 || cc.c.Ways < 1 {
			return fmt.Errorf("sim: cache %s misconfigured: %+v", cc.name, cc.c)
		}
		if cc.c.Sets()&(cc.c.Sets()-1) != 0 {
			return fmt.Errorf("sim: cache %s set count %d not a power of two", cc.name, cc.c.Sets())
		}
	}
	return nil
}

// TableI returns the paper's Table I machine with the given socket count
// (1 socket = 8 cores, 4 sockets = 32 cores).
func TableI(sockets int) Config {
	return Config{
		Sockets:           sockets,
		CoresPerSocket:    8,
		FreqGHz:           2.66,
		IssueWidth:        4,
		ROB:               128,
		MLP:               8,
		MispredictPenalty: 8,
		L1I:               CacheConfig{SizeBytes: 32 << 10, Ways: 4, Latency: 4},
		L1D:               CacheConfig{SizeBytes: 32 << 10, Ways: 8, Latency: 4},
		L2:                CacheConfig{SizeBytes: 256 << 10, Ways: 8, Latency: 8},
		L3:                CacheConfig{SizeBytes: 8 << 20, Ways: 16, Latency: 30},
		MemLatencyNs:      65,
		MemBWGBs:          8,
		RemoteL3Extra:     45,
		BarrierBase:       150,
		BarrierPerThread:  10,
		QuantumCycles:     10000,
	}
}

// Tiny returns a scaled-down machine for fast tests: same structure, small
// caches, low latencies.
func Tiny(cores int) Config {
	cfg := Config{
		Sockets:           1,
		CoresPerSocket:    cores,
		FreqGHz:           2.0,
		IssueWidth:        4,
		ROB:               64,
		MLP:               4,
		MispredictPenalty: 8,
		L1I:               CacheConfig{SizeBytes: 4 << 10, Ways: 2, Latency: 2},
		L1D:               CacheConfig{SizeBytes: 4 << 10, Ways: 4, Latency: 2},
		L2:                CacheConfig{SizeBytes: 32 << 10, Ways: 4, Latency: 6},
		L3:                CacheConfig{SizeBytes: 256 << 10, Ways: 8, Latency: 20},
		MemLatencyNs:      60,
		MemBWGBs:          8,
		RemoteL3Extra:     40,
		BarrierBase:       200,
		BarrierPerThread:  20,
		QuantumCycles:     5000,
	}
	if cores > 8 {
		cfg.Sockets = (cores + 7) / 8
		cfg.CoresPerSocket = cores / cfg.Sockets
	}
	return cfg
}
