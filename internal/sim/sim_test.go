package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"barrierpoint/internal/trace"
)

func TestConfigValidate(t *testing.T) {
	good := TableI(1)
	if err := good.Validate(); err != nil {
		t.Fatalf("Table I config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Sockets = 0 },
		func(c *Config) { c.CoresPerSocket = 0 },
		func(c *Config) { c.Sockets = 9; c.CoresPerSocket = 8 }, // > 64 cores
		func(c *Config) { c.IssueWidth = 0 },
		func(c *Config) { c.MLP = 0 },
		func(c *Config) { c.FreqGHz = 0 },
		func(c *Config) { c.QuantumCycles = 0 },
		func(c *Config) { c.L1D.Ways = 0 },
		func(c *Config) { c.L2.SizeBytes = 96 << 10 }, // non-power-of-two sets
	}
	for i, mut := range cases {
		c := TableI(1)
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestConfigDerived(t *testing.T) {
	c := TableI(1)
	if c.Cores() != 8 {
		t.Errorf("Cores = %d", c.Cores())
	}
	if c4 := TableI(4); c4.Cores() != 32 {
		t.Errorf("4-socket Cores = %d", c4.Cores())
	}
	if got := c.MemLatencyCycles(); got != 172 {
		t.Errorf("MemLatencyCycles = %d", got)
	}
	if c.MemBusyCyclesPerLine() == 0 {
		t.Error("zero bus occupancy")
	}
	if c.L3.Lines() != (8<<20)/64 {
		t.Errorf("L3 lines = %d", c.L3.Lines())
	}
	if c.L1D.Sets() != 64 {
		t.Errorf("L1D sets = %d", c.L1D.Sets())
	}
}

func TestCacheInsertLookup(t *testing.T) {
	c := newCache(CacheConfig{SizeBytes: 8 * 64, Ways: 2, Latency: 1}) // 4 sets × 2 ways
	if c.lookup(5) != nil {
		t.Fatal("lookup on empty cache hit")
	}
	c.insert(5, stateShared)
	l := c.lookup(5)
	if l == nil || l.state != stateShared {
		t.Fatal("inserted line not found")
	}
	if c.occupancy() != 1 {
		t.Errorf("occupancy = %d", c.occupancy())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(CacheConfig{SizeBytes: 2 * 64, Ways: 2, Latency: 1}) // 1 set × 2 ways
	c.insert(10, stateShared)
	c.insert(20, stateShared)
	c.lookup(10) // refresh 10; 20 becomes LRU
	victim, vstate, evicted := c.insert(30, stateModified)
	if !evicted || victim != 20 || vstate != stateShared {
		t.Fatalf("evicted %d (%d, %v), want 20", victim, vstate, evicted)
	}
	if c.lookup(10) == nil || c.lookup(30) == nil || c.lookup(20) != nil {
		t.Error("post-eviction contents wrong")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := newCache(CacheConfig{SizeBytes: 4 * 64, Ways: 4, Latency: 1})
	c.insert(7, stateModified)
	if st := c.invalidate(7); st != stateModified {
		t.Errorf("invalidate returned %d", st)
	}
	if c.lookup(7) != nil {
		t.Error("line still present after invalidate")
	}
	if st := c.invalidate(7); st != stateInvalid {
		t.Errorf("double invalidate returned %d", st)
	}
}

func TestBranchPredictorLearnsLoop(t *testing.T) {
	b := newBranchPredictor()
	miss := 0
	for i := 0; i < 1000; i++ {
		if b.predict(42, true) {
			miss++
		}
	}
	if miss > 20 {
		t.Errorf("loop branch mispredicted %d/1000 times", miss)
	}
	// Alternating unpredictable-ish pattern on a fresh predictor should
	// mispredict much more than a constant one.
	b2 := newBranchPredictor()
	missAlt := 0
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		if b2.predict(42, rng.Intn(2) == 0) {
			missAlt++
		}
	}
	if missAlt < 5*miss {
		t.Errorf("random pattern (%d misses) not clearly worse than loop (%d)", missAlt, miss)
	}
}

// seqRegion builds a single-kernel test region: each thread sweeps lines
// [tid*linesPer, (tid+1)*linesPer) `sweeps` times.
func seqRegion(threads, linesPer, sweeps int, write bool) *trace.SliceRegion {
	r := &trace.SliceRegion{Threads: make([][]trace.BlockExec, threads)}
	for tid := 0; tid < threads; tid++ {
		var blocks []trace.BlockExec
		base := uint64(tid * linesPer * trace.LineSize)
		for s := 0; s < sweeps; s++ {
			for i := 0; i < linesPer; i++ {
				blocks = append(blocks, trace.BlockExec{
					Block:  1,
					Instrs: 8,
					Accs:   []trace.Access{{Addr: base + uint64(i*trace.LineSize), Write: write}},
					Branch: true,
					Taken:  true,
				})
			}
		}
		r.Threads[tid] = blocks
	}
	return r
}

func TestRunRegionBasics(t *testing.T) {
	m := New(Tiny(2))
	res := m.RunRegion(seqRegion(2, 16, 4, false))
	if res.Cycles == 0 || res.TimeNs <= 0 {
		t.Fatal("no time passed")
	}
	wantInstrs := uint64(2 * 16 * 4 * 8)
	if res.Counters.Instrs != wantInstrs {
		t.Errorf("instrs = %d, want %d", res.Counters.Instrs, wantInstrs)
	}
	if res.ThreadInstrs[0] != wantInstrs/2 || res.ThreadInstrs[1] != wantInstrs/2 {
		t.Errorf("per-thread instrs wrong: %v", res.ThreadInstrs)
	}
	if res.Counters.L1DAccesses != 2*16*4 {
		t.Errorf("accesses = %d", res.Counters.L1DAccesses)
	}
	// 16 lines per thread: only the first sweep misses (L1 holds them).
	if res.Counters.L1DMisses != 2*16 {
		t.Errorf("L1D misses = %d, want %d", res.Counters.L1DMisses, 2*16)
	}
	if res.Counters.DRAMAccs != 2*16 {
		t.Errorf("DRAM accesses = %d, want %d", res.Counters.DRAMAccs, 2*16)
	}
}

func TestBarrierAlignsCores(t *testing.T) {
	m := New(Tiny(4))
	// Thread 0 does 10x the work of the others.
	r := &trace.SliceRegion{Threads: make([][]trace.BlockExec, 4)}
	for tid := 0; tid < 4; tid++ {
		n := 10
		if tid == 0 {
			n = 100
		}
		for i := 0; i < n; i++ {
			r.Threads[tid] = append(r.Threads[tid], trace.BlockExec{Block: tid, Instrs: 4})
		}
	}
	m.RunRegion(r)
	c0 := m.core[0].cycle
	for _, co := range m.core {
		if co.cycle != c0 {
			t.Fatalf("cores not barrier-aligned: %d vs %d", co.cycle, c0)
		}
	}
}

func TestRegionTimeDominatedBySlowestThread(t *testing.T) {
	m := New(Tiny(2))
	balanced := m.RunRegion(seqRegion(2, 8, 50, false))
	m.Reset()
	// Same total work, all on thread 0.
	skew := &trace.SliceRegion{Threads: make([][]trace.BlockExec, 2)}
	for s := 0; s < 100; s++ {
		for i := 0; i < 8; i++ {
			skew.Threads[0] = append(skew.Threads[0], trace.BlockExec{
				Block: 1, Instrs: 8,
				Accs: []trace.Access{{Addr: uint64(i * 64)}},
			})
		}
	}
	skewed := m.RunRegion(skew)
	if skewed.Cycles <= balanced.Cycles {
		t.Errorf("skewed region (%d cyc) not slower than balanced (%d cyc)", skewed.Cycles, balanced.Cycles)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() RegionResult {
		m := New(Tiny(4))
		var last RegionResult
		for i := 0; i < 5; i++ {
			last = m.RunRegion(seqRegion(4, 32, 3, i%2 == 0))
		}
		return last
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Counters != b.Counters {
		t.Errorf("non-deterministic simulation: %+v vs %+v", a, b)
	}
}

func TestInclusionInvariant(t *testing.T) {
	m := New(Tiny(4))
	rng := rand.New(rand.NewSource(3))
	// Random traffic with sharing and eviction pressure.
	r := &trace.SliceRegion{Threads: make([][]trace.BlockExec, 4)}
	for tid := 0; tid < 4; tid++ {
		for i := 0; i < 3000; i++ {
			addr := uint64(rng.Intn(32768)) * trace.LineSize
			r.Threads[tid] = append(r.Threads[tid], trace.BlockExec{
				Block: tid*16 + rng.Intn(3), Instrs: 6,
				Accs:   []trace.Access{{Addr: addr, Write: rng.Intn(3) == 0}},
				Branch: true, Taken: rng.Intn(2) == 0,
			})
		}
	}
	m.RunRegion(r)
	if err := m.CheckInclusion(); err != nil {
		t.Fatal(err)
	}
}

func TestMSISingleWriter(t *testing.T) {
	m := New(Tiny(4))
	const line = uint64(1000)
	addr := line * trace.LineSize
	// All cores read, then core 2 writes.
	read := &trace.SliceRegion{Threads: make([][]trace.BlockExec, 4)}
	for tid := 0; tid < 4; tid++ {
		read.Threads[tid] = [][]trace.BlockExec{{{Block: 1, Instrs: 4, Accs: []trace.Access{{Addr: addr}}}}}[0]
	}
	m.RunRegion(read)
	for c := 0; c < 4; c++ {
		if !m.L1DHas(c, line) {
			t.Fatalf("core %d missing shared line after read", c)
		}
	}
	write := &trace.SliceRegion{Threads: make([][]trace.BlockExec, 4)}
	write.Threads[2] = []trace.BlockExec{{Block: 2, Instrs: 4, Accs: []trace.Access{{Addr: addr, Write: true}}}}
	for tid := 0; tid < 4; tid++ {
		if tid != 2 {
			write.Threads[tid] = nil
		}
	}
	res := m.RunRegion(write)
	if res.Counters.Invals == 0 && res.Counters.Upgrades == 0 {
		t.Error("write to shared line caused no coherence action")
	}
	for c := 0; c < 4; c++ {
		has := m.L1DHas(c, line) || m.L2Has(c, line)
		if c == 2 && !has {
			t.Error("writer lost its line")
		}
		if c != 2 && has {
			t.Errorf("core %d still holds line after remote write", c)
		}
	}
}

func TestDirtyOwnerFetch(t *testing.T) {
	m := New(Tiny(2))
	const addr = uint64(77 * trace.LineSize)
	w := &trace.SliceRegion{Threads: [][]trace.BlockExec{
		{{Block: 1, Instrs: 4, Accs: []trace.Access{{Addr: addr, Write: true}}}},
		nil,
	}}
	m.RunRegion(w)
	// Core 1 reads the dirty line: must succeed and downgrade ownership.
	r := &trace.SliceRegion{Threads: [][]trace.BlockExec{
		nil,
		{{Block: 2, Instrs: 4, Accs: []trace.Access{{Addr: addr}}}},
	}}
	res := m.RunRegion(r)
	if res.Counters.Invals == 0 {
		t.Error("dirty remote fetch caused no invalidation")
	}
	if !m.L1DHas(1, 77) {
		t.Error("reader did not obtain the line")
	}
}

func TestColdVsWarmTiming(t *testing.T) {
	// The same region is faster on a warm machine.
	cold := New(Tiny(2))
	r1 := cold.RunRegion(seqRegion(2, 64, 2, false))
	r2 := cold.RunRegion(seqRegion(2, 64, 2, false))
	if r2.Cycles >= r1.Cycles {
		t.Errorf("second (warm) run not faster: %d vs %d", r2.Cycles, r1.Cycles)
	}
	if r2.Counters.DRAMAccs != 0 {
		t.Errorf("warm run still accessed DRAM %d times", r2.Counters.DRAMAccs)
	}
}

func TestDRAMBandwidthQueue(t *testing.T) {
	cfg := Tiny(1)
	l := newLLC(cfg.L3)
	// Back-to-back transfers at the same cycle queue up.
	lat1 := l.memAccess(0, 100, 20)
	lat2 := l.memAccess(0, 100, 20)
	lat3 := l.memAccess(0, 100, 20)
	if lat1 != 100 || lat2 != 120 || lat3 != 140 {
		t.Errorf("queueing latencies = %d, %d, %d", lat1, lat2, lat3)
	}
	// A transfer after the queue drains sees base latency.
	if lat := l.memAccess(10000, 100, 20); lat != 100 {
		t.Errorf("post-drain latency = %d", lat)
	}
}

func TestWarmAccessNoCountersNoTime(t *testing.T) {
	m := New(Tiny(2))
	before := m.Counters()
	for i := 0; i < 100; i++ {
		m.WarmAccess(0, uint64(i), i%2 == 0)
	}
	if m.Counters() != before {
		t.Error("warm accesses moved counters")
	}
	if m.core[0].cycle != 0 {
		t.Error("warm accesses advanced the clock")
	}
	if m.L2Occupancy(0) == 0 {
		t.Error("warm accesses did not fill caches")
	}
}

func TestWarmRegionEquivalentState(t *testing.T) {
	// WarmRegion leaves the same cache contents as RunRegion for a
	// single-threaded partitioned sweep.
	r := seqRegion(1, 64, 2, true)
	mRun := New(Tiny(1))
	mRun.RunRegion(r)
	mWarm := New(Tiny(1))
	mWarm.WarmRegion(seqRegion(1, 64, 2, true))
	for line := uint64(0); line < 64; line++ {
		if mRun.L2Has(0, line) != mWarm.L2Has(0, line) {
			t.Fatalf("line %d: run/warm L2 contents differ", line)
		}
	}
	if got := mWarm.Counters(); got != (Counters{}) {
		t.Errorf("WarmRegion moved counters: %+v", got)
	}
	_ = r
}

func TestReset(t *testing.T) {
	m := New(Tiny(2))
	m.RunRegion(seqRegion(2, 32, 2, true))
	m.Reset()
	if m.Counters() != (Counters{}) {
		t.Error("counters survive Reset")
	}
	if m.L2Occupancy(0) != 0 || m.LLCOccupancy(0) != 0 {
		t.Error("cache contents survive Reset")
	}
	if m.core[0].cycle != 0 {
		t.Error("clock survives Reset")
	}
}

func TestRemoteSocketTraffic(t *testing.T) {
	cfg := Tiny(16) // 2 sockets × 8 cores
	if cfg.Sockets < 2 {
		t.Skip("need multi-socket config")
	}
	m := New(cfg)
	r := &trace.SliceRegion{Threads: make([][]trace.BlockExec, 16)}
	rng := rand.New(rand.NewSource(5))
	for tid := 0; tid < 16; tid++ {
		for i := 0; i < 500; i++ {
			r.Threads[tid] = append(r.Threads[tid], trace.BlockExec{
				Block: tid, Instrs: 4,
				Accs: []trace.Access{{Addr: uint64(rng.Intn(1 << 26))}},
			})
		}
	}
	res := m.RunRegion(r)
	if res.Counters.RemoteL3 == 0 {
		t.Error("no cross-socket traffic on a 2-socket machine")
	}
	if err := m.CheckInclusion(); err != nil {
		t.Fatal(err)
	}
}

func TestCountersMonotoneSanity(t *testing.T) {
	// Property: misses never exceed accesses; DRAM never exceeds
	// 2x L3 misses + L3 misses (fetch + writeback bound).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New(Tiny(2))
		r := &trace.SliceRegion{Threads: make([][]trace.BlockExec, 2)}
		for tid := 0; tid < 2; tid++ {
			for i := 0; i < 200; i++ {
				r.Threads[tid] = append(r.Threads[tid], trace.BlockExec{
					Block: rng.Intn(8), Instrs: 1 + rng.Intn(16),
					Accs: []trace.Access{{
						Addr:  uint64(rng.Intn(1 << 22)),
						Write: rng.Intn(2) == 0,
					}},
					Branch: true, Taken: rng.Intn(2) == 0,
				})
			}
		}
		res := m.RunRegion(r)
		c := res.Counters
		return c.L1DMisses <= c.L1DAccesses &&
			c.L2Misses <= c.L1DMisses &&
			c.L3Misses <= c.L2Misses+c.Upgrades &&
			c.DRAMAccs <= 2*c.L3Misses+1 &&
			res.Cycles > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestRegionResultMetrics(t *testing.T) {
	r := RegionResult{
		Cycles:   1000,
		Counters: Counters{Instrs: 4000, DRAMAccs: 8},
	}
	if r.IPC() != 4.0 {
		t.Errorf("IPC = %v", r.IPC())
	}
	if r.DRAMAPKI() != 2.0 {
		t.Errorf("APKI = %v", r.DRAMAPKI())
	}
	if r.Instrs() != 4000 {
		t.Errorf("Instrs = %v", r.Instrs())
	}
	var zero RegionResult
	if zero.IPC() != 0 || zero.DRAMAPKI() != 0 {
		t.Error("zero-value metrics not zero")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid config did not panic")
		}
	}()
	New(Config{})
}
