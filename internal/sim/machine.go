package sim

import (
	"fmt"
	"math/bits"

	"barrierpoint/internal/trace"
)

// Counters aggregates event counts. All counts are machine-wide unless
// stated otherwise.
type Counters struct {
	Instrs      uint64 // instructions retired
	L1DAccesses uint64
	L1DMisses   uint64
	L1IMisses   uint64
	L2Misses    uint64 // private-hierarchy misses reaching the LLC
	L3Misses    uint64 // LLC misses (DRAM line fetches)
	DRAMAccs    uint64 // DRAM transfers: fetches plus dirty writebacks
	Upgrades    uint64 // S→M upgrades requiring directory action
	Invals      uint64 // private lines invalidated by coherence
	RemoteL3    uint64 // accesses homed on another socket
	Mispredicts uint64
}

func (c *Counters) sub(prev Counters) Counters {
	return Counters{
		Instrs:      c.Instrs - prev.Instrs,
		L1DAccesses: c.L1DAccesses - prev.L1DAccesses,
		L1DMisses:   c.L1DMisses - prev.L1DMisses,
		L1IMisses:   c.L1IMisses - prev.L1IMisses,
		L2Misses:    c.L2Misses - prev.L2Misses,
		L3Misses:    c.L3Misses - prev.L3Misses,
		DRAMAccs:    c.DRAMAccs - prev.DRAMAccs,
		Upgrades:    c.Upgrades - prev.Upgrades,
		Invals:      c.Invals - prev.Invals,
		RemoteL3:    c.RemoteL3 - prev.RemoteL3,
		Mispredicts: c.Mispredicts - prev.Mispredicts,
	}
}

// RegionResult reports the detailed simulation of one inter-barrier region.
type RegionResult struct {
	Cycles       uint64   // region duration including the closing barrier
	TimeNs       float64  // Cycles converted at the core clock
	ThreadInstrs []uint64 // instructions retired per thread
	Counters     Counters // event deltas for this region
}

// Instrs returns the aggregate instruction count.
func (r RegionResult) Instrs() uint64 { return r.Counters.Instrs }

// IPC returns aggregate instructions per cycle over the region.
func (r RegionResult) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Counters.Instrs) / float64(r.Cycles)
}

// DRAMAPKI returns DRAM accesses per kilo-instruction.
func (r RegionResult) DRAMAPKI() float64 {
	if r.Counters.Instrs == 0 {
		return 0
	}
	return 1000 * float64(r.Counters.DRAMAccs) / float64(r.Counters.Instrs)
}

// core is the per-core microarchitectural state.
type core struct {
	id     int
	socket int
	cycle  uint64 // local clock
	frac   uint64 // sub-cycle dispatch remainder, 1/256 cycle units

	l1i *cache
	l1d *cache
	l2  *cache
	bp  *branchPredictor

	// outstanding holds completion cycles of in-flight long-latency
	// accesses, bounding memory-level parallelism.
	outstanding []uint64
}

// Machine is a simulated multi-core system. Microarchitectural state
// (caches, predictors, DRAM queues, clocks) persists across RunRegion
// calls, so running all regions in order is a full detailed simulation.
type Machine struct {
	cfg  Config
	core []*core
	llc  []*llcSlice // one per socket

	ctr        Counters
	functional bool // true during warmup replay: no timing, no counters

	memLatency uint64
	memBusy    uint64
}

// New builds a machine from cfg. It panics on invalid configuration
// (configuration is programmer input, not runtime data).
func New(cfg Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Machine{
		cfg:        cfg,
		memLatency: cfg.MemLatencyCycles(),
		memBusy:    cfg.MemBusyCyclesPerLine(),
	}
	for s := 0; s < cfg.Sockets; s++ {
		m.llc = append(m.llc, newLLC(cfg.L3))
	}
	for c := 0; c < cfg.Cores(); c++ {
		m.core = append(m.core, &core{
			id:          c,
			socket:      c / cfg.CoresPerSocket,
			l1i:         newCache(cfg.L1I),
			l1d:         newCache(cfg.L1D),
			l2:          newCache(cfg.L2),
			bp:          newBranchPredictor(),
			outstanding: make([]uint64, 0, cfg.MLP),
		})
	}
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Counters returns cumulative event counts since construction or Reset.
func (m *Machine) Counters() Counters { return m.ctr }

// Reset restores the machine to its post-construction state.
func (m *Machine) Reset() {
	for _, c := range m.core {
		c.l1i.reset()
		c.l1d.reset()
		c.l2.reset()
		c.bp.reset()
		c.cycle = 0
		c.frac = 0
		c.outstanding = c.outstanding[:0]
	}
	for _, l := range m.llc {
		l.reset()
	}
	m.ctr = Counters{}
}

// homeSocket maps a line address to the socket owning its LLC slice and
// directory entry. Bits above the set index spread lines evenly.
func (m *Machine) homeSocket(line uint64) int {
	if m.cfg.Sockets == 1 {
		return 0
	}
	return int((line >> 14) % uint64(m.cfg.Sockets))
}

// invalidatePrivate removes a line from core c's private hierarchy,
// returning true if a modified copy was destroyed (i.e. data had to be
// written back to the LLC).
func (m *Machine) invalidatePrivate(c int, line uint64) (wasModified bool) {
	co := m.core[c]
	s1 := co.l1d.invalidate(line)
	s2 := co.l2.invalidate(line)
	if s1 != stateInvalid || s2 != stateInvalid {
		if !m.functional {
			m.ctr.Invals++
		}
	}
	return s1 == stateModified || s2 == stateModified
}

// llcAccess handles a private-hierarchy miss: directory actions, LLC
// lookup, DRAM on miss, and inclusive back-invalidation on LLC eviction.
// It returns the latency beyond the private levels.
func (m *Machine) llcAccess(c int, line uint64, write bool, now uint64) uint64 {
	home := m.homeSocket(line)
	slice := m.llc[home]
	lat := uint64(m.cfg.L3.Latency)
	if home != m.core[c].socket {
		lat += uint64(m.cfg.RemoteL3Extra)
		if !m.functional {
			m.ctr.RemoteL3++
		}
	}

	if dl := slice.lookup(line); dl != nil {
		// Present in LLC. Resolve coherence with other private caches.
		if dl.owner >= 0 && int(dl.owner) != c {
			// Dirty in another core: fetch via writeback.
			m.invalidatePrivate(int(dl.owner), line)
			dl.dirty = true
			dl.sharers &^= 1 << uint(dl.owner)
			dl.owner = -1
			lat += uint64(m.cfg.L2.Latency) + uint64(m.cfg.L3.Latency)/2
		}
		if write {
			// Invalidate all other sharers; this core becomes owner.
			mask := dl.sharers &^ (1 << uint(c))
			for mask != 0 {
				o := trailingZeros(mask)
				mask &^= 1 << uint(o)
				m.invalidatePrivate(o, line)
			}
			dl.sharers = 1 << uint(c)
			dl.owner = int8(c)
			dl.dirty = true
		} else {
			dl.sharers |= 1 << uint(c)
			if dl.owner == int8(c) {
				// Still owner from an earlier write.
			} else {
				dl.owner = -1
			}
		}
		return lat
	}

	// LLC miss: fetch the line from DRAM.
	if !m.functional {
		m.ctr.L3Misses++
		m.ctr.DRAMAccs++
		lat += slice.memAccess(now, m.memLatency, m.memBusy)
	}
	v := slice.victim(line)
	if v.valid {
		// Inclusive LLC: destroy all private copies of the victim.
		mask := v.sharers
		dirty := v.dirty
		for mask != 0 {
			o := trailingZeros(mask)
			mask &^= 1 << uint(o)
			if m.invalidatePrivate(o, v.tag) {
				dirty = true
			}
		}
		if dirty && !m.functional {
			m.ctr.DRAMAccs++ // writeback to memory
			slice.memAccess(now, 0, m.memBusy)
		}
	}
	slice.place(v, line, c, write)
	return lat
}

// privateFill inserts a line into a private cache, handling victim
// writeback bookkeeping (victim data moves down: L1→L2 or L2→LLC).
func (m *Machine) fillL2(c int, line uint64, state uint8) {
	co := m.core[c]
	victim, vstate, evicted := co.l2.insert(line, state)
	if !evicted {
		return
	}
	// L2 inclusive of L1: drop the L1 copy, inheriting its dirtiness.
	if co.l1d.invalidate(victim) == stateModified {
		vstate = stateModified
	}
	// Update the directory: this core no longer holds victim.
	home := m.homeSocket(victim)
	if dl := m.llc[home].lookup(victim); dl != nil {
		dl.sharers &^= 1 << uint(c)
		if dl.owner == int8(c) {
			dl.owner = -1
		}
		if vstate == stateModified {
			dl.dirty = true
		}
	}
	// If the LLC already evicted the victim the data is lost to memory;
	// that writeback was accounted when the LLC victimized it.
}

func (m *Machine) fillL1D(c int, line uint64, state uint8) {
	co := m.core[c]
	victim, vstate, evicted := co.l1d.insert(line, state)
	if !evicted {
		return
	}
	if vstate == stateModified {
		// Write back into L2 (which holds the line by inclusion).
		if l2 := co.l2.peek(victim); l2 != nil {
			l2.state = stateModified
		}
	}
}

// dataAccess runs one data reference through the hierarchy and returns its
// total latency in cycles. now is the issuing core's current cycle.
func (m *Machine) dataAccess(c int, addr uint64, write bool, now uint64) uint64 {
	line := trace.LineAddr(addr)
	co := m.core[c]
	if !m.functional {
		m.ctr.L1DAccesses++
	}

	if l := co.l1d.lookup(line); l != nil {
		if write && l.state != stateModified {
			// Upgrade through the directory.
			if !m.functional {
				m.ctr.Upgrades++
			}
			lat := m.llcAccess(c, line, true, now)
			l.state = stateModified
			if l2 := co.l2.peek(line); l2 != nil {
				l2.state = stateModified
			}
			return uint64(m.cfg.L1D.Latency) + lat
		}
		return uint64(m.cfg.L1D.Latency)
	}
	if !m.functional {
		m.ctr.L1DMisses++
	}

	if l := co.l2.lookup(line); l != nil {
		if write && l.state != stateModified {
			if !m.functional {
				m.ctr.Upgrades++
			}
			lat := m.llcAccess(c, line, true, now)
			l.state = stateModified
			m.fillL1D(c, line, stateModified)
			return uint64(m.cfg.L2.Latency) + lat
		}
		m.fillL1D(c, line, l.state)
		return uint64(m.cfg.L2.Latency)
	}
	if !m.functional {
		m.ctr.L2Misses++
	}

	lat := uint64(m.cfg.L2.Latency) + m.llcAccess(c, line, write, now)
	st := stateShared
	if write {
		st = stateModified
	}
	m.fillL2(c, line, st)
	m.fillL1D(c, line, st)
	return lat
}

// codeBase places instruction lines far above any workload data.
const codeBase = uint64(1) << 56

// ifetch models the instruction fetch of one basic block through the L1I.
// Misses are charged a flat L2 latency (instruction lines are not kept
// coherent; they are read-only).
func (m *Machine) ifetch(c int, block int) uint64 {
	line := trace.LineAddr(codeBase + uint64(block)*trace.LineSize)
	co := m.core[c]
	if co.l1i.lookup(line) != nil {
		return 0
	}
	if !m.functional {
		m.ctr.L1IMisses++
	}
	co.l1i.insert(line, stateShared)
	return uint64(m.cfg.L2.Latency)
}

// execBlock advances core c's clock across one basic block execution.
func (m *Machine) execBlock(c int, be *trace.BlockExec) {
	co := m.core[c]
	m.ctr.Instrs += uint64(be.Instrs)

	// Dispatch: instrs/width cycles, accumulated with 1/256 precision.
	co.frac += uint64(be.Instrs) * 256 / uint64(m.cfg.IssueWidth)
	co.cycle += co.frac >> 8
	co.frac &= 255

	co.cycle += m.ifetch(c, be.Block)

	l1lat := uint64(m.cfg.L1D.Latency)
	for i := range be.Accs {
		a := &be.Accs[i]
		lat := m.dataAccess(c, a.Addr, a.Write, co.cycle)
		if lat <= l1lat {
			continue // pipelined L1 hit: no stall
		}
		// Long-latency access: enters the outstanding-miss window.
		if len(co.outstanding) >= m.cfg.MLP {
			// Window full: stall until the earliest miss returns.
			earliest := 0
			for j := 1; j < len(co.outstanding); j++ {
				if co.outstanding[j] < co.outstanding[earliest] {
					earliest = j
				}
			}
			if co.outstanding[earliest] > co.cycle {
				co.cycle = co.outstanding[earliest]
			}
			co.outstanding[earliest] = co.outstanding[len(co.outstanding)-1]
			co.outstanding = co.outstanding[:len(co.outstanding)-1]
		}
		co.outstanding = append(co.outstanding, co.cycle+lat)
	}

	if be.Branch {
		if co.bp.predict(be.Block, be.Taken) {
			m.ctr.Mispredicts++
			co.cycle += uint64(m.cfg.MispredictPenalty)
		}
	}
}

// drain waits for core c's outstanding misses (barrier semantics).
func (m *Machine) drain(c int) {
	co := m.core[c]
	for _, t := range co.outstanding {
		if t > co.cycle {
			co.cycle = t
		}
	}
	co.outstanding = co.outstanding[:0]
}

// RunRegion simulates one inter-barrier region in detail: every thread's
// stream runs on its core, interleaved in round-robin cycle quanta; the
// region ends with a global barrier. Machine state persists, so calling
// RunRegion for every region of a program in order is the full detailed
// ("ground truth") simulation.
func (m *Machine) RunRegion(r trace.Region) RegionResult {
	n := m.cfg.Cores()
	// All cores re-start together at the latest core clock (barrier
	// semantics from the previous region, or zero on a fresh machine).
	var start uint64
	for _, co := range m.core {
		if co.cycle > start {
			start = co.cycle
		}
	}
	prev := m.ctr
	threadInstrs := make([]uint64, n)

	streams := make([]trace.Stream, n)
	done := make([]bool, n)
	active := 0
	for t := 0; t < n; t++ {
		streams[t] = r.Thread(t)
		m.core[t].cycle = start
		m.core[t].frac = 0
		active++
	}

	var be trace.BlockExec
	quantumEnd := start + m.cfg.QuantumCycles
	for active > 0 {
		for c := 0; c < n; c++ {
			if done[c] {
				continue
			}
			co := m.core[c]
			for co.cycle < quantumEnd {
				if !streams[c].Next(&be) {
					m.drain(c)
					done[c] = true
					active--
					break
				}
				threadInstrs[c] += uint64(be.Instrs)
				m.execBlock(c, &be)
			}
		}
		quantumEnd += m.cfg.QuantumCycles
	}

	var end uint64
	for _, co := range m.core {
		if co.cycle > end {
			end = co.cycle
		}
	}
	end += m.cfg.BarrierCycles()
	for _, co := range m.core {
		co.cycle = end
	}

	cycles := end - start
	return RegionResult{
		Cycles:       cycles,
		TimeNs:       float64(cycles) / m.cfg.FreqGHz,
		ThreadInstrs: threadInstrs,
		Counters:     m.ctr.sub(prev),
	}
}

// WarmAccess replays one access functionally: caches and directory update
// through the normal coherent path, but no cycles pass and no counters
// move. line is a line address (not a byte address).
func (m *Machine) WarmAccess(c int, line uint64, write bool) {
	m.functional = true
	m.dataAccess(c, line<<trace.LineShift, write, m.core[c].cycle)
	m.functional = false
}

// CheckInclusion verifies the inclusive-hierarchy invariant: every line in
// a private L1D/L2 must be present in its home LLC slice with this core in
// the sharer mask. It is used by tests and returns the first violation.
func (m *Machine) CheckInclusion() error {
	for _, co := range m.core {
		for _, pc := range []*cache{co.l1d, co.l2} {
			for i := range pc.lines {
				ln := &pc.lines[i]
				if ln.state == stateInvalid {
					continue
				}
				dl := m.llc[m.homeSocket(ln.tag)].lookup(ln.tag)
				if dl == nil {
					return fmt.Errorf("sim: core %d holds line %#x absent from LLC", co.id, ln.tag)
				}
				if dl.sharers&(1<<uint(co.id)) == 0 {
					return fmt.Errorf("sim: core %d holds line %#x but directory mask %#x omits it", co.id, ln.tag, dl.sharers)
				}
			}
		}
	}
	return nil
}

// trailingZeros returns the index of the lowest set bit of x (x != 0).
func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }

// Introspection helpers: cache occupancy and content queries, used by tests
// and warmup validation tooling.

// L1DOccupancy returns the number of valid lines in core c's L1D.
func (m *Machine) L1DOccupancy(c int) int { return m.core[c].l1d.occupancy() }

// L2Occupancy returns the number of valid lines in core c's L2.
func (m *Machine) L2Occupancy(c int) int { return m.core[c].l2.occupancy() }

// LLCOccupancy returns the number of valid lines in socket s's LLC slice.
func (m *Machine) LLCOccupancy(s int) int { return m.llc[s].occupancy() }

// L2Has reports whether core c's L2 holds the given line address.
func (m *Machine) L2Has(c int, line uint64) bool { return m.core[c].l2.peek(line) != nil }

// L1DHas reports whether core c's L1D holds the given line address.
func (m *Machine) L1DHas(c int, line uint64) bool { return m.core[c].l1d.peek(line) != nil }

// LLCHas reports whether the home slice holds the given line address.
func (m *Machine) LLCHas(line uint64) bool {
	s := m.llc[m.homeSocket(line)]
	set := s.set(line)
	for i := range set {
		if set[i].valid && set[i].tag == line {
			return true
		}
	}
	return false
}

// WarmRegion functionally executes an entire region: caches, directory,
// branch predictors and instruction caches update through the normal paths,
// but no cycles pass and no counters move. It implements MRRL-style
// previous-region warmup for core structures ahead of a short barrierpoint.
// Threads are interleaved round-robin in small block chunks so shared-cache
// contents end up mixed across cores, as they would under concurrent
// execution.
func (m *Machine) WarmRegion(r trace.Region) {
	m.functional = true
	defer func() { m.functional = false }()

	const chunk = 32 // block executions per thread per turn
	n := m.cfg.Cores()
	streams := make([]trace.Stream, n)
	done := make([]bool, n)
	active := n
	for c := 0; c < n; c++ {
		streams[c] = r.Thread(c)
	}
	var be trace.BlockExec
	for active > 0 {
		for c := 0; c < n; c++ {
			if done[c] {
				continue
			}
			for b := 0; b < chunk; b++ {
				if !streams[c].Next(&be) {
					done[c] = true
					active--
					break
				}
				m.ifetch(c, be.Block)
				for i := range be.Accs {
					m.dataAccess(c, be.Accs[i].Addr, be.Accs[i].Write, m.core[c].cycle)
				}
				if be.Branch {
					m.core[c].bp.predict(be.Block, be.Taken)
				}
			}
		}
	}
}
