package sim

// dirLine is one way of one LLC set, carrying MSI directory state for the
// private caches above it: a sharer bitmask over cores and a dirty-owner.
type dirLine struct {
	tag     uint64
	lastUse uint64
	sharers uint64 // bit c set: core c's private hierarchy may hold the line
	owner   int8   // core holding the line Modified, or -1
	valid   bool
	dirty   bool // line differs from memory (needs writeback on eviction)
}

// llcSlice is one socket's shared, inclusive L3 with an integrated
// directory, plus that socket's DRAM channel bandwidth model.
type llcSlice struct {
	lines   []dirLine
	ways    int
	setMask uint64
	useCtr  uint64

	memFree uint64 // cycle at which the DRAM channel is next free
}

func newLLC(cfg CacheConfig) *llcSlice {
	sets := cfg.Sets()
	return &llcSlice{
		lines:   make([]dirLine, sets*cfg.Ways),
		ways:    cfg.Ways,
		setMask: uint64(sets - 1),
	}
}

func (l *llcSlice) set(line uint64) []dirLine {
	s := int(line&l.setMask) * l.ways
	return l.lines[s : s+l.ways]
}

// lookup finds a line and refreshes LRU. Returns nil if absent.
func (l *llcSlice) lookup(line uint64) *dirLine {
	set := l.set(line)
	for i := range set {
		if set[i].valid && set[i].tag == line {
			l.useCtr++
			set[i].lastUse = l.useCtr
			return &set[i]
		}
	}
	return nil
}

// victim selects the way a new line would take: an invalid way if one
// exists, otherwise the LRU way. The caller handles back-invalidation of
// the victim before reusing it.
func (l *llcSlice) victim(line uint64) *dirLine {
	set := l.set(line)
	vi := 0
	for i := range set {
		if !set[i].valid {
			return &set[i]
		}
		if set[i].lastUse < set[vi].lastUse {
			vi = i
		}
	}
	return &set[vi]
}

// place overwrites way v with a fresh line.
func (l *llcSlice) place(v *dirLine, line uint64, core int, write bool) {
	l.useCtr++
	*v = dirLine{
		tag:     line,
		lastUse: l.useCtr,
		sharers: 1 << uint(core),
		owner:   -1,
		valid:   true,
		dirty:   write,
	}
	if write {
		v.owner = int8(core)
	}
}

// memAccess models one DRAM line transfer issued at cycle now: fixed
// latency plus queueing behind earlier transfers on this socket's channel.
// It returns the total latency seen by the requester.
func (l *llcSlice) memAccess(now, latency, busy uint64) uint64 {
	start := now
	if l.memFree > start {
		start = l.memFree
	}
	l.memFree = start + busy
	return (start - now) + latency
}

func (l *llcSlice) reset() {
	for i := range l.lines {
		l.lines[i] = dirLine{}
	}
	l.useCtr = 0
	l.memFree = 0
}

// occupancy counts valid lines.
func (l *llcSlice) occupancy() int {
	n := 0
	for i := range l.lines {
		if l.lines[i].valid {
			n++
		}
	}
	return n
}
