package sim

// Coherence states for lines in private caches (MSI without E; the S state
// also covers clean-exclusive).
const (
	stateInvalid uint8 = iota
	stateShared
	stateModified
)

// cacheLine is one way of one set.
type cacheLine struct {
	tag     uint64 // full line address (tag+index kept whole for simplicity)
	lastUse uint64 // LRU timestamp
	state   uint8
}

// cache is a set-associative, LRU-replacement cache. It stores full line
// addresses in tag so lookups and invalidations need no address reassembly.
type cache struct {
	lines   []cacheLine // sets*ways, row-major by set
	ways    int
	setMask uint64
	useCtr  uint64
}

func newCache(cfg CacheConfig) *cache {
	sets := cfg.Sets()
	return &cache{
		lines:   make([]cacheLine, sets*cfg.Ways),
		ways:    cfg.Ways,
		setMask: uint64(sets - 1),
	}
}

func (c *cache) set(line uint64) []cacheLine {
	s := int(line&c.setMask) * c.ways
	return c.lines[s : s+c.ways]
}

// lookup finds a line and refreshes its LRU position.
// It returns nil when the line is not present.
func (c *cache) lookup(line uint64) *cacheLine {
	set := c.set(line)
	for i := range set {
		if set[i].state != stateInvalid && set[i].tag == line {
			c.useCtr++
			set[i].lastUse = c.useCtr
			return &set[i]
		}
	}
	return nil
}

// peek finds a line without touching LRU state.
func (c *cache) peek(line uint64) *cacheLine {
	set := c.set(line)
	for i := range set {
		if set[i].state != stateInvalid && set[i].tag == line {
			return &set[i]
		}
	}
	return nil
}

// insert places a line (assumed absent) with the given state, evicting the
// LRU way if the set is full. It returns the evicted line and its state;
// evicted is false when an invalid way was available.
func (c *cache) insert(line uint64, state uint8) (victim uint64, victimState uint8, evicted bool) {
	set := c.set(line)
	vi := 0
	for i := range set {
		if set[i].state == stateInvalid {
			vi = i
			evicted = false
			goto place
		}
		if set[i].lastUse < set[vi].lastUse {
			vi = i
		}
	}
	victim, victimState, evicted = set[vi].tag, set[vi].state, true
place:
	c.useCtr++
	set[vi] = cacheLine{tag: line, lastUse: c.useCtr, state: state}
	return victim, victimState, evicted
}

// invalidate removes a line if present, returning its prior state.
func (c *cache) invalidate(line uint64) uint8 {
	set := c.set(line)
	for i := range set {
		if set[i].state != stateInvalid && set[i].tag == line {
			st := set[i].state
			set[i].state = stateInvalid
			return st
		}
	}
	return stateInvalid
}

// reset invalidates the whole cache.
func (c *cache) reset() {
	for i := range c.lines {
		c.lines[i] = cacheLine{}
	}
	c.useCtr = 0
}

// occupancy counts valid lines (used by tests and inclusion checks).
func (c *cache) occupancy() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].state != stateInvalid {
			n++
		}
	}
	return n
}
