// Package trace defines the microarchitecture-independent execution trace
// model that all of BarrierPoint consumes.
//
// A Program is a barrier-synchronized multi-threaded application: an ordered
// sequence of inter-barrier Regions, each of which exposes one instruction
// and memory-access Stream per thread. The same streams are consumed by the
// profiler (BBV/LDV collection), the warmup capturer (MRU line tracking) and
// the timing simulator, which guarantees that signatures are functions of the
// program alone — never of the machine they are later simulated on.
package trace

// LineSize is the cache line size in bytes used throughout the system.
// The paper's Table I machines use 64-byte lines.
const LineSize = 64

// LineShift is log2(LineSize).
const LineShift = 6

// LineAddr maps a byte address to its cache line address.
func LineAddr(addr uint64) uint64 { return addr >> LineShift }

// Access is a single data memory reference.
type Access struct {
	Addr  uint64 // byte address
	Write bool   // true for stores, false for loads
}

// BlockExec is one dynamic execution of a static basic block: the unit of
// work delivered by a Stream. Streams may reuse the Accs backing array
// between calls; consumers must finish with Accs before requesting the next
// block.
type BlockExec struct {
	Block  int      // static basic block identifier (program-unique)
	Instrs int      // instructions retired by this block execution
	Accs   []Access // data accesses issued by this block execution
	Branch bool     // block ends in a conditional branch
	Taken  bool     // branch outcome, meaningful only if Branch
}

// Stream yields the dynamic basic block sequence of one thread within one
// inter-barrier region.
type Stream interface {
	// Next fills be with the next block execution and reports whether one
	// was available. Once Next returns false the stream is exhausted and
	// dead: callers must not call Next again. Implementations may recycle
	// the stream's storage at that point (the replay cache pools its
	// stream headers), so a post-exhaustion Next can observe an unrelated
	// stream's state.
	Next(be *BlockExec) bool
}

// Region is one inter-barrier region: the work done by every thread between
// two consecutive global barriers.
type Region interface {
	// Thread returns a fresh Stream for thread tid in [0, Threads).
	// Thread may be called multiple times; each call restarts the stream.
	Thread(tid int) Stream
}

// Program is a barrier-synchronized multi-threaded application.
type Program interface {
	// Name identifies the workload (e.g. "npb-ft").
	Name() string
	// Threads is the number of application threads (= cores used).
	Threads() int
	// Regions is the number of inter-barrier regions. The parallel region
	// of interest is delimited by global barriers on both sides, so this
	// equals the dynamic barrier count of the ROI.
	Regions() int
	// Region returns region i in [0, Regions). Regions are independent
	// value objects; generating region i never requires generating i-1.
	Region(i int) Region
}

// EmptyStream is a Stream with no blocks.
type EmptyStream struct{}

// Next always reports false.
func (EmptyStream) Next(*BlockExec) bool { return false }

// SliceStream adapts a pre-materialized block slice into a Stream.
// It is primarily useful in tests.
type SliceStream struct {
	Blocks []BlockExec
	pos    int
}

// Next copies the next stored block into be.
func (s *SliceStream) Next(be *BlockExec) bool {
	if s.pos >= len(s.Blocks) {
		return false
	}
	*be = s.Blocks[s.pos]
	s.pos++
	return true
}

// SliceRegion is a Region backed by per-thread block slices, for tests.
type SliceRegion struct {
	Threads [][]BlockExec
}

// Thread returns a stream over the stored blocks of thread tid.
func (r *SliceRegion) Thread(tid int) Stream {
	return &SliceStream{Blocks: r.Threads[tid]}
}

// SliceProgram is a fully materialized Program, for tests.
type SliceProgram struct {
	ProgName   string
	NumThreads int
	Rgns       []*SliceRegion
}

// Name returns the program name.
func (p *SliceProgram) Name() string { return p.ProgName }

// Threads returns the thread count.
func (p *SliceProgram) Threads() int { return p.NumThreads }

// Regions returns the region count.
func (p *SliceProgram) Regions() int { return len(p.Rgns) }

// Region returns region i.
func (p *SliceProgram) Region(i int) Region { return p.Rgns[i] }

// CountInstrs drains a stream and returns its total instruction count.
func CountInstrs(s Stream) uint64 {
	var be BlockExec
	var n uint64
	for s.Next(&be) {
		n += uint64(be.Instrs)
	}
	return n
}

// RegionInstrs returns per-thread and total instruction counts of a region.
func RegionInstrs(r Region, threads int) (perThread []uint64, total uint64) {
	perThread = make([]uint64, threads)
	for t := 0; t < threads; t++ {
		perThread[t] = CountInstrs(r.Thread(t))
		total += perThread[t]
	}
	return perThread, total
}

// ConcatRegion chains several regions into one: each thread runs the
// sub-regions back to back. It is the building block for region coalescing
// (merging many tiny inter-barrier regions into analyzable units, the
// extension the paper sketches for npb-ua-like workloads).
type ConcatRegion struct {
	Parts []Region
}

// Thread returns a stream chaining the thread's streams of every part.
func (r *ConcatRegion) Thread(tid int) Stream {
	ss := make([]Stream, len(r.Parts))
	for i, p := range r.Parts {
		ss[i] = p.Thread(tid)
	}
	return &chainStream{streams: ss}
}

type chainStream struct {
	streams []Stream
	idx     int
}

// Next implements Stream.
func (s *chainStream) Next(be *BlockExec) bool {
	for s.idx < len(s.streams) {
		if s.streams[s.idx].Next(be) {
			return true
		}
		s.idx++
	}
	return false
}

// CoalescedProgram groups a program's regions into fixed-size windows of
// consecutive regions, reducing the region count by Factor. Sampling then
// operates on super-regions; reconstruction semantics are unchanged because
// a super-region is still barrier-delimited on both sides (interior
// barriers execute inside the unit of work).
type CoalescedProgram struct {
	Base   Program
	Factor int
}

// Name labels the coalesced view.
func (p *CoalescedProgram) Name() string { return p.Base.Name() + "-coalesced" }

// Threads is the base program's thread count.
func (p *CoalescedProgram) Threads() int { return p.Base.Threads() }

// Regions is ceil(base regions / Factor).
func (p *CoalescedProgram) Regions() int {
	return (p.Base.Regions() + p.Factor - 1) / p.Factor
}

// Region returns super-region i.
func (p *CoalescedProgram) Region(i int) Region {
	lo := i * p.Factor
	hi := lo + p.Factor
	if hi > p.Base.Regions() {
		hi = p.Base.Regions()
	}
	parts := make([]Region, 0, hi-lo)
	for r := lo; r < hi; r++ {
		parts = append(parts, p.Base.Region(r))
	}
	if len(parts) == 1 {
		return parts[0]
	}
	return &ConcatRegion{Parts: parts}
}

// Coalesce wraps p so that factor consecutive inter-barrier regions form
// one sampling unit. factor < 2 returns p unchanged.
func Coalesce(p Program, factor int) Program {
	if factor < 2 {
		return p
	}
	return &CoalescedProgram{Base: p, Factor: factor}
}
