package trace

import (
	"testing"
	"testing/quick"
)

func TestLineAddr(t *testing.T) {
	cases := []struct {
		addr, line uint64
	}{
		{0, 0}, {1, 0}, {63, 0}, {64, 1}, {65, 1}, {127, 1}, {128, 2},
		{1 << 40, 1 << 34},
	}
	for _, c := range cases {
		if got := LineAddr(c.addr); got != c.line {
			t.Errorf("LineAddr(%d) = %d, want %d", c.addr, got, c.line)
		}
	}
}

func TestLineAddrProperties(t *testing.T) {
	// Same-line addresses map to the same line; addresses 64 apart differ.
	f := func(addr uint64) bool {
		base := addr &^ uint64(LineSize-1)
		return LineAddr(base) == LineAddr(base+LineSize-1) &&
			LineAddr(base)+1 == LineAddr(base+LineSize)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSliceStream(t *testing.T) {
	blocks := []BlockExec{
		{Block: 1, Instrs: 10},
		{Block: 2, Instrs: 20, Accs: []Access{{Addr: 64}}},
		{Block: 1, Instrs: 10},
	}
	s := &SliceStream{Blocks: blocks}
	var be BlockExec
	var got []int
	for s.Next(&be) {
		got = append(got, be.Block)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 1 {
		t.Errorf("unexpected block sequence %v", got)
	}
	if s.Next(&be) {
		t.Error("exhausted stream returned another block")
	}
}

func TestEmptyStream(t *testing.T) {
	var be BlockExec
	if (EmptyStream{}).Next(&be) {
		t.Error("EmptyStream.Next returned true")
	}
}

func TestCountInstrs(t *testing.T) {
	s := &SliceStream{Blocks: []BlockExec{{Instrs: 5}, {Instrs: 7}, {Instrs: 1}}}
	if got := CountInstrs(s); got != 13 {
		t.Errorf("CountInstrs = %d, want 13", got)
	}
	if got := CountInstrs(EmptyStream{}); got != 0 {
		t.Errorf("CountInstrs(empty) = %d, want 0", got)
	}
}

func TestSliceProgram(t *testing.T) {
	p := &SliceProgram{
		ProgName:   "toy",
		NumThreads: 2,
		Rgns: []*SliceRegion{
			{Threads: [][]BlockExec{{{Instrs: 3}}, {{Instrs: 4}, {Instrs: 5}}}},
			{Threads: [][]BlockExec{{}, {{Instrs: 1}}}},
		},
	}
	if p.Name() != "toy" || p.Threads() != 2 || p.Regions() != 2 {
		t.Fatalf("program metadata wrong: %q %d %d", p.Name(), p.Threads(), p.Regions())
	}
	per, total := RegionInstrs(p.Region(0), 2)
	if per[0] != 3 || per[1] != 9 || total != 12 {
		t.Errorf("RegionInstrs = %v, %d; want [3 9], 12", per, total)
	}
	per, total = RegionInstrs(p.Region(1), 2)
	if per[0] != 0 || per[1] != 1 || total != 1 {
		t.Errorf("RegionInstrs = %v, %d; want [0 1], 1", per, total)
	}
}

func TestSliceRegionRestartable(t *testing.T) {
	r := &SliceRegion{Threads: [][]BlockExec{{{Instrs: 2}, {Instrs: 3}}}}
	if a, b := CountInstrs(r.Thread(0)), CountInstrs(r.Thread(0)); a != b || a != 5 {
		t.Errorf("re-created streams differ: %d vs %d", a, b)
	}
}
