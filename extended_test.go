package barrierpoint_test

import (
	"testing"

	bp "barrierpoint"
	"barrierpoint/internal/stats"
	"barrierpoint/internal/trace"
	"barrierpoint/internal/workload"
)

// TestUACoalescing exercises the paper's future-work extension: npb-ua has
// ~7800 tiny regions, far beyond what the paper's implementation handled;
// coalescing consecutive regions into windows makes it samplable with the
// unchanged pipeline.
func TestUACoalescing(t *testing.T) {
	if testing.Short() {
		t.Skip("ua coalescing skipped in -short mode")
	}
	base := workload.New("npb-ua", 8, workload.WithScale(0.5))
	if base.Regions() != 7603 {
		t.Fatalf("ua has %d regions, want 7603", base.Regions())
	}
	prog := trace.Coalesce(base, 19) // one super-region per adaptive step
	if got := prog.Regions(); got != 401 {
		t.Fatalf("coalesced ua has %d regions, want 401", got)
	}
	mc := bp.TableIMachine(1)
	full, err := bp.SimulateFull(prog, mc)
	if err != nil {
		t.Fatal(err)
	}
	a, err := bp.Analyze(prog, bp.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if n := len(a.BarrierPoints()); n > 25 {
		t.Errorf("coalesced ua selected %d barrierpoints", n)
	}
	est, err := a.EstimateFrom(a.PerfectWarmup(full))
	if err != nil {
		t.Fatal(err)
	}
	act := bp.ActualFrom(full)
	if e := stats.AbsPctErr(est.TimeNs, act.TimeNs); e > 5 {
		t.Errorf("coalesced ua error %.2f%%", e)
	}
	if a.SerialSpeedup() < 5 {
		t.Errorf("coalesced ua serial speedup %.1f", a.SerialSpeedup())
	}
}

// TestCoalesceEquivalence: a coalesced program executes exactly the same
// work as the base program.
func TestCoalesceEquivalence(t *testing.T) {
	base := workload.New("npb-ft", 8, workload.WithScale(0.1))
	co := trace.Coalesce(base, 5)
	var baseInstrs, coInstrs uint64
	for i := 0; i < base.Regions(); i++ {
		_, n := trace.RegionInstrs(base.Region(i), 8)
		baseInstrs += n
	}
	for i := 0; i < co.Regions(); i++ {
		_, n := trace.RegionInstrs(co.Region(i), 8)
		coInstrs += n
	}
	if baseInstrs != coInstrs {
		t.Errorf("coalescing changed work: %d vs %d", coInstrs, baseInstrs)
	}
	if trace.Coalesce(base, 1) != trace.Program(base) {
		t.Error("factor 1 should return the base program")
	}
}

// TestEPDegenerate: a single-region program degenerates to one barrierpoint
// with multiplier 1 and exact reconstruction.
func TestEPDegenerate(t *testing.T) {
	prog := workload.New("npb-ep", 8, workload.WithScale(0.25))
	if prog.Regions() != 1 {
		t.Fatalf("ep has %d regions", prog.Regions())
	}
	mc := bp.TableIMachine(1)
	full, err := bp.SimulateFull(prog, mc)
	if err != nil {
		t.Fatal(err)
	}
	a, err := bp.Analyze(prog, bp.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pts := a.BarrierPoints()
	if len(pts) != 1 || pts[0].Multiplier != 1 || pts[0].Region != 0 {
		t.Fatalf("ep selection = %+v", pts)
	}
	est, err := a.EstimateFrom(a.PerfectWarmup(full))
	if err != nil {
		t.Fatal(err)
	}
	if est.TimeNs != bp.ActualFrom(full).TimeNs {
		t.Error("single-region reconstruction not exact")
	}
	if s := a.SerialSpeedup(); s != 1 {
		t.Errorf("ep serial speedup %v, want 1 (no sampling benefit)", s)
	}
}
