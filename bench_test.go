// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation section. Each benchmark regenerates its experiment on
// a reduced-scale workload suite (region counts and phase structure
// unchanged; iteration counts scaled), reporting wall time per full
// regeneration. Run the paper-shaped version with:
//
//	go run ./cmd/bpexp -all
package barrierpoint_test

import (
	"path/filepath"
	"testing"
	"time"

	bp "barrierpoint"
	"barrierpoint/internal/experiments"
	"barrierpoint/internal/obs"
	"barrierpoint/internal/service"
	"barrierpoint/internal/signature"
	"barrierpoint/internal/store"
	"barrierpoint/internal/workload"
)

// benchScale keeps `go test -bench=.` to a few minutes for the whole file.
const benchScale = 0.2

// benchSubset is used for the heaviest sweeps.
var benchSubset = []string{"npb-ft", "npb-is", "npb-lu"}

func newBenchHarness(subset bool) *experiments.Harness {
	h := experiments.New(benchScale)
	if subset {
		h.Benches = benchSubset
	}
	return h
}

func BenchmarkTable1(b *testing.B) {
	h := newBenchHarness(true)
	for i := 0; i < b.N; i++ {
		_ = h.Table1().String()
	}
}

func BenchmarkTable2(b *testing.B) {
	h := newBenchHarness(true)
	for i := 0; i < b.N; i++ {
		_ = h.Table2().String()
	}
}

func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newBenchHarness(false)
		_ = h.Fig1().String()
	}
}

func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newBenchHarness(true)
		_, tbl := h.Fig3()
		_ = tbl.String()
	}
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newBenchHarness(true)
		_, tbl := h.Fig4()
		_ = tbl.String()
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newBenchHarness(true)
		_ = h.Fig5().String()
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newBenchHarness(true)
		_ = h.Fig6().String()
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newBenchHarness(true)
		_, tbl := h.Fig7()
		_ = tbl.String()
	}
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newBenchHarness(true)
		_, tbl := h.Fig8()
		_ = tbl.String()
	}
}

func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newBenchHarness(true)
		_, tbl := h.Fig9()
		_ = tbl.String()
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newBenchHarness(true)
		_ = h.Table3().String()
	}
}

// Component-level benchmarks: the costs behind the methodology.

// BenchmarkFullSimulation measures the detailed simulation BarrierPoint
// replaces (the denominator of the Fig. 9 speedups).
func BenchmarkFullSimulation(b *testing.B) {
	prog := workload.New("npb-ft", 8, workload.WithScale(benchScale))
	mc := bp.TableIMachine(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bp.SimulateFull(prog, mc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfiling measures the one-time instrumentation pass (the
// paper's 20-30x-slowdown Pintool stand-in).
func BenchmarkProfiling(b *testing.B) {
	prog := workload.New("npb-ft", 8, workload.WithScale(benchScale))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bp.Analyze(prog, bp.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInstrumentedProfile is BenchmarkProfiling with the telemetry
// observer live: every stage lands in a span and a latency histogram,
// exactly as a bpserve job records it. Its delta against
// BenchmarkProfiling bounds the instrumentation overhead.
func BenchmarkInstrumentedProfile(b *testing.B) {
	prog := workload.New("npb-ft", 8, workload.WithScale(benchScale))
	reg := obs.NewRegistry()
	stageDur := reg.HistogramVec("bench_stage_seconds", "per-stage latency", "stage", obs.DefLatencyBuckets)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		span := obs.NewSpan(obs.NewTraceID(), "bench")
		obsrv := func(stage string, d time.Duration) {
			span.Observe(stage, d)
			stageDur.With(stage).ObserveDuration(d)
		}
		if _, err := bp.AnalyzeObserved(prog, bp.DefaultConfig(), obsrv); err != nil {
			b.Fatal(err)
		}
		span.Finish()
	}
}

// newBenchStore files a recorded npb-ft trace in a fresh content-addressed
// store, returning the store and the trace's key.
func newBenchStore(b *testing.B) (*store.Store, string) {
	b.Helper()
	dir := b.TempDir()
	st, err := store.Open(filepath.Join(dir, "store"))
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(dir, "ft.bptrace")
	prog := workload.New("npb-ft", 8, workload.WithScale(benchScale))
	if err := bp.SaveTrace(path, prog); err != nil {
		b.Fatal(err)
	}
	key, _, err := st.ImportTrace(path)
	if err != nil {
		b.Fatal(err)
	}
	return st, key
}

// BenchmarkAnalyzeColdStore measures analyze throughput through the store
// with the selection artifact AND every cached region profile invalidated
// each iteration: the full profile+cluster cost plus artifact writes.
// Compare to BenchmarkAnalyzeCachedStore for the artifact cache's speedup
// and to BenchmarkRecluster for the profile cache's.
func BenchmarkAnalyzeColdStore(b *testing.B) {
	st, key := newBenchStore(b)
	cfg := bp.DefaultConfig()
	name := service.SelectionArtifact(cfg)
	f, err := st.OpenTrace(key)
	if err != nil {
		b.Fatal(err)
	}
	digests := make([]string, f.Regions())
	distinct := make(map[string]bool)
	for i := range digests {
		if digests[i], err = f.RegionDigest(i); err != nil {
			b.Fatal(err)
		}
		distinct[digests[i]] = true
	}
	f.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.RemoveArtifact(key, name); err != nil {
			b.Fatal(err)
		}
		for _, d := range digests {
			if err := st.RemoveProfile(d, signature.CodecVersion); err != nil {
				b.Fatal(err)
			}
		}
		_, cached, stats, err := service.AnalyzeCachedProfiled(st, key, cfg, nil, nil)
		if err != nil || cached {
			b.Fatalf("cold analyze: cached=%v err=%v", cached, err)
		}
		// Repeated region content dedups within the run; every distinct
		// region must still have been profiled fresh.
		if stats.Computed != len(distinct) {
			b.Fatalf("cold analyze computed %d profiles, want %d distinct", stats.Computed, len(distinct))
		}
	}
}

// BenchmarkAnalyzeCachedStore measures the repeat-request path: every
// iteration is a store hit that returns the selection without opening the
// trace or profiling.
func BenchmarkAnalyzeCachedStore(b *testing.B) {
	st, key := newBenchStore(b)
	cfg := bp.DefaultConfig()
	if _, _, err := service.AnalyzeCached(st, key, cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, cached, err := service.AnalyzeCached(st, key, cfg); err != nil || !cached {
			b.Fatalf("cached analyze: cached=%v err=%v", cached, err)
		}
	}
}

// BenchmarkRecluster measures re-clustering over a warm profile cache:
// the per-region profiles are content-addressed, so after one analysis
// (or a streaming upload) a request with a different clustering config —
// here MaxK — reuses every cached profile and pays only k-means plus the
// artifact write. The gap to BenchmarkAnalyzeColdStore is the profiling
// cost the cache removes.
func BenchmarkRecluster(b *testing.B) {
	st, key := newBenchStore(b)
	// One cold analysis fills the content-addressed profile cache.
	if _, cached, err := service.AnalyzeCached(st, key, bp.DefaultConfig()); err != nil || cached {
		b.Fatalf("warm-up analyze: cached=%v err=%v", cached, err)
	}
	cfg, err := service.ConfigFor("", 7)
	if err != nil {
		b.Fatal(err)
	}
	name := service.SelectionArtifact(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.RemoveArtifact(key, name); err != nil {
			b.Fatal(err)
		}
		_, cached, stats, err := service.AnalyzeCachedProfiled(st, key, cfg, nil, nil)
		if err != nil || cached {
			b.Fatalf("recluster: cached=%v err=%v", cached, err)
		}
		if stats.Computed != 0 || stats.Cached != stats.Regions {
			b.Fatalf("recluster profiled %d/%d regions fresh, want all %d from cache",
				stats.Computed, stats.Regions, stats.Regions)
		}
	}
}

// BenchmarkBarrierPointSimulation measures the sampled path: barrierpoints
// only, MRU-warmed, in parallel.
func BenchmarkBarrierPointSimulation(b *testing.B) {
	prog := workload.New("npb-ft", 8, workload.WithScale(benchScale))
	mc := bp.TableIMachine(1)
	a, err := bp.Analyze(prog, bp.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.SimulatePoints(mc, bp.MRUWarmup); err != nil {
			b.Fatal(err)
		}
	}
}
