// Package barrierpoint is a Go implementation of the BarrierPoint sampled
// simulation methodology for barrier-synchronized multi-threaded
// applications (Carlson, Heirman, Van Craeynest, Eeckhout — "BarrierPoint:
// Sampled Simulation of Multi-Threaded Applications", ISPASS 2014).
//
// The flow mirrors the paper's Figure 2:
//
//  1. Analyze profiles a program's inter-barrier regions
//     (microarchitecture-independently: per-thread basic block vectors and
//     LRU stack distance vectors), clusters them SimPoint-style, and
//     selects representative regions — barrierpoints — with multipliers.
//  2. SimulatePoints runs only the barrierpoints in detail (in parallel,
//     each on its own machine, warmed by MRU cache-line replay).
//  3. Estimate reconstructs whole-program execution time and other
//     metrics as Σ metric_j · multiplier_j.
//
// SimulateFull provides the ground-truth detailed simulation used to
// validate estimates, and the package exposes speedup/resource accounting
// matching the paper's Figure 9.
//
// Programs need not live in memory: SaveTrace/RecordTrace persist any
// Program as a compact binary trace file, and OpenTrace replays one with
// regions streaming straight off disk (O(region) memory), producing
// bit-identical signatures, selections and simulation results. This is the
// record/replay path for analyzing traces captured elsewhere — see
// internal/tracefile for the file format and cmd/bptool's record and info
// subcommands for the CLI.
//
// Because the analysis is a pure function of the trace bytes, its outputs
// cache by content: TraceKey addresses a recorded trace by the SHA-256 of
// its file, and the analysis service (internal/store, internal/service,
// cmd/bpserve, bptool -cache) files selections and estimates under that
// key plus a hash of every parameter they depend on — analysis config for
// selections, machine config and warmup mode for estimates. Repeat
// analyses of byte-identical traces are cache hits that never re-profile;
// the paper's "one-time cost" (Fig. 2) is paid once per trace content.
//
// The same content keys drive in-memory replay caching: a ReplayCache
// (NewReplayCache, OpenTraceCached) holds fully decoded regions of
// recorded traces in a byte-bounded LRU, so pipeline stages that revisit
// regions — warmup capture before SimulatePoints, estimate plus ground
// truth over one trace — decode each region once and replay it zero-copy.
// Cached and uncached replays produce bit-identical results.
package barrierpoint

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"barrierpoint/internal/cluster"
	"barrierpoint/internal/profile"
	"barrierpoint/internal/reconstruct"
	"barrierpoint/internal/signature"
	"barrierpoint/internal/sim"
	"barrierpoint/internal/trace"
	"barrierpoint/internal/tracefile"
	"barrierpoint/internal/warmup"
)

// Re-exported types: the public API surface in one place.
type (
	// Program is a barrier-synchronized multi-threaded application trace.
	Program = trace.Program
	// Region is one inter-barrier region of a Program.
	Region = trace.Region
	// Stream is one thread's dynamic basic block sequence within a Region.
	Stream = trace.Stream
	// BlockExec is one dynamic basic block execution.
	BlockExec = trace.BlockExec
	// Access is one data memory reference.
	Access = trace.Access

	// MachineConfig describes a simulated machine (see sim.TableI).
	MachineConfig = sim.Config
	// CacheConfig describes one cache level.
	CacheConfig = sim.CacheConfig
	// RegionResult is the detailed simulation result of one region.
	RegionResult = sim.RegionResult

	// SignatureOptions selects the region similarity metric (BBV, LDV,
	// combined; LDV weighting; thread combination).
	SignatureOptions = signature.Options
	// ClusterParams are the SimPoint-style clustering parameters.
	ClusterParams = cluster.Params
	// BarrierPoint is one selected representative region.
	BarrierPoint = cluster.BarrierPoint
	// Selection is a complete clustering and barrierpoint selection.
	Selection = cluster.Result
	// Estimate is a reconstructed whole-program prediction.
	Estimate = reconstruct.Estimate

	// TraceFile is a recorded trace opened for replay; it implements
	// Program with regions streaming off disk.
	TraceFile = tracefile.File
	// TraceOption configures trace recording (see WithTraceGzip).
	TraceOption = tracefile.Option
)

// WithTraceGzip enables or disables per-chunk gzip compression when
// recording a trace.
func WithTraceGzip(on bool) TraceOption { return tracefile.WithGzip(on) }

// Signature kind constants, re-exported for configuration.
const (
	BBVOnly  = signature.BBVOnly
	LDVOnly  = signature.LDVOnly
	Combined = signature.Combined
)

// TableIMachine returns the paper's Table I machine configuration with the
// given socket count (1 → 8 cores, 4 → 32 cores).
func TableIMachine(sockets int) MachineConfig { return sim.TableI(sockets) }

// Config bundles the analysis parameters.
type Config struct {
	Signature SignatureOptions
	Cluster   ClusterParams
}

// DefaultConfig returns the paper's defaults: combined (BBV+LDV)
// signatures, unweighted LDVs, per-thread concatenation, dim=15, maxK=20.
func DefaultConfig() Config {
	return Config{
		Signature: signature.Default(),
		Cluster:   cluster.DefaultParams(),
	}
}

// Analysis is the one-time, microarchitecture-independent analysis of a
// program: its region profiles and the barrierpoint selection.
type Analysis struct {
	Program   Program
	Config    Config
	Profiles  []*signature.RegionData
	Selection *Selection
}

// StageObserver receives the wall-clock duration of each named pipeline
// stage as it completes. A nil observer is valid and records nothing;
// observers must not influence results — they are telemetry only.
type StageObserver func(stage string, d time.Duration)

// Analyze profiles every inter-barrier region of p and selects
// barrierpoints. This is the "one-time cost" path of the paper's Fig. 2.
func Analyze(p Program, cfg Config) (*Analysis, error) {
	return AnalyzeObserved(p, cfg, nil)
}

// AnalyzeObserved is Analyze with per-stage timing: "profile" covers
// BBV/LDV collection across all inter-barrier regions, "cluster" covers
// signature assembly and barrierpoint selection.
func AnalyzeObserved(p Program, cfg Config, obsrv StageObserver) (*Analysis, error) {
	t0 := time.Now()
	profiles := profile.Program(p)
	if obsrv != nil {
		obsrv("profile", time.Since(t0))
	}
	t1 := time.Now()
	a, err := analyzeProfiles(p, cfg, profiles)
	if obsrv != nil {
		obsrv("cluster", time.Since(t1))
	}
	return a, err
}

// AnalyzeWithProfiles runs selection over pre-collected profiles (e.g. to
// explore signature options without re-profiling).
func AnalyzeWithProfiles(p Program, cfg Config, profiles []*signature.RegionData) (*Analysis, error) {
	return analyzeProfiles(p, cfg, profiles)
}

func analyzeProfiles(p Program, cfg Config, profiles []*signature.RegionData) (*Analysis, error) {
	svs, weights := signature.BuildAll(profiles, cfg.Signature)
	sel, err := cluster.Select(svs, weights, cfg.Cluster)
	if err != nil {
		return nil, fmt.Errorf("barrierpoint: selection failed: %w", err)
	}
	return &Analysis{Program: p, Config: cfg, Profiles: profiles, Selection: sel}, nil
}

// BarrierPoints returns the selected representative regions.
func (a *Analysis) BarrierPoints() []BarrierPoint { return a.Selection.Points }

// TotalInstrs returns the program's aggregate instruction count. It works
// both for freshly analyzed programs and for selections restored via
// LoadSelection/Bind (which carry region weights but no profiles).
func (a *Analysis) TotalInstrs() uint64 {
	if a.Profiles != nil {
		return profile.TotalInstrs(a.Profiles)
	}
	var t float64
	for _, w := range a.Selection.RegionWeights {
		t += w
	}
	return uint64(t)
}

// pointInstrs returns the aggregate instruction counts of each
// barrierpoint region.
func (a *Analysis) pointInstrs() []uint64 {
	out := make([]uint64, len(a.Selection.Points))
	for i, p := range a.Selection.Points {
		if a.Profiles != nil {
			out[i] = a.Profiles[p.Region].TotalInstrs
		} else {
			out[i] = uint64(a.Selection.RegionWeights[p.Region])
		}
	}
	return out
}

// SerialSpeedup is the paper's Fig. 9 serial speedup: the reduction in
// aggregate instruction count when simulating only barrierpoints
// back-to-back instead of the whole program.
func (a *Analysis) SerialSpeedup() float64 {
	var bp uint64
	for _, n := range a.pointInstrs() {
		bp += n
	}
	if bp == 0 {
		return 0
	}
	return float64(a.TotalInstrs()) / float64(bp)
}

// ParallelSpeedup is the paper's Fig. 9 parallel speedup: total instruction
// count over the largest single barrierpoint, i.e. the latency reduction
// with unlimited simulation machines.
func (a *Analysis) ParallelSpeedup() float64 {
	var max uint64
	for _, n := range a.pointInstrs() {
		if n > max {
			max = n
		}
	}
	if max == 0 {
		return 0
	}
	return float64(a.TotalInstrs()) / float64(max)
}

// ResourceReduction is the factor fewer simulation machines BarrierPoint
// needs compared to simulating every inter-barrier region in parallel
// (Bryan et al.), i.e. regions / barrierpoints.
func (a *Analysis) ResourceReduction() float64 {
	if len(a.Selection.Points) == 0 {
		return 0
	}
	return float64(len(a.Selection.Assignment)) / float64(len(a.Selection.Points))
}

// SimulateFull runs the complete detailed ("ground truth") simulation of p
// on a fresh machine: every region in order, with persistent state.
func SimulateFull(p Program, mc MachineConfig) ([]RegionResult, error) {
	if p.Threads() != mc.Cores() {
		return nil, fmt.Errorf("barrierpoint: program has %d threads but machine has %d cores", p.Threads(), mc.Cores())
	}
	m := sim.New(mc)
	out := make([]RegionResult, p.Regions())
	for i := 0; i < p.Regions(); i++ {
		out[i] = m.RunRegion(p.Region(i))
	}
	return out, nil
}

// WarmupMode selects how barrierpoint simulations initialize
// microarchitectural state.
type WarmupMode int

const (
	// ColdWarmup starts every barrierpoint on empty caches (baseline).
	ColdWarmup WarmupMode = iota
	// MRUWarmup replays each core's captured most-recently-used lines
	// before detailed simulation — the paper's §IV technique.
	MRUWarmup
	// MRUPrevWarmup is MRUWarmup plus a functional execution of the
	// window of regions preceding the barrierpoint, which additionally
	// warms branch predictors and instruction caches (MRRL-style). The
	// window spans one full phase cycle of the benchmarks, so every
	// kernel's predictor entries are re-trained. The paper notes
	// core-structure warmup is unnecessary for multi-million-instruction
	// regions; our scaled-down regions are short enough that it matters.
	MRUPrevWarmup
)

// prevWarmupWindow is the number of preceding regions MRUPrevWarmup replays
// functionally: wide enough to cover one full time step (phase cycle) of
// every workload in the suite, so each static kernel re-trains its branch
// predictor entries before detailed simulation.
const prevWarmupWindow = 12

// ParseWarmup parses a warmup mode label as printed by WarmupMode.String.
// It is the single vocabulary shared by the CLI, the service API and the
// farm task protocol.
func ParseWarmup(s string) (WarmupMode, error) {
	switch s {
	case "", "cold":
		return ColdWarmup, nil
	case "mru":
		return MRUWarmup, nil
	case "mru+prev":
		return MRUPrevWarmup, nil
	default:
		return 0, fmt.Errorf("barrierpoint: unknown warmup mode %q (want cold, mru or mru+prev)", s)
	}
}

// String names the mode.
func (w WarmupMode) String() string {
	switch w {
	case ColdWarmup:
		return "cold"
	case MRUWarmup:
		return "mru"
	case MRUPrevWarmup:
		return "mru+prev"
	default:
		return fmt.Sprintf("WarmupMode(%d)", int(w))
	}
}

// PointRunner executes the detailed simulation of a set of selected
// barrierpoint regions. It is the execution-strategy seam of the pipeline:
// LocalRunner (the default) runs the points on an in-process worker pool,
// while internal/farm provides runners that cache per-point results in a
// content-addressed store or distribute the points across a fleet of
// bpworker machines. All runners must produce bit-identical RegionResults
// for the same program, machine and warmup mode — each point is simulated
// on a fresh machine whose warmup state depends only on the trace prefix
// before the point, never on which other points run or where.
type PointRunner interface {
	// RunPoints simulates each listed region of p in detail and returns
	// the results keyed by region index. regions may contain duplicates;
	// implementations must cover every listed region.
	RunPoints(p Program, regions []int, mc MachineConfig, mode WarmupMode) (map[int]RegionResult, error)
}

// LocalRunner is the default PointRunner: a bounded in-process worker pool
// of Workers goroutines (GOMAXPROCS if <= 0) draining a shared queue of
// barrierpoints. With MRU warmup, one functional pass over the program
// captures every point's snapshot before simulation starts.
type LocalRunner struct {
	Workers int
}

// RunPoints implements PointRunner on the local worker pool.
func (lr LocalRunner) RunPoints(p Program, regions []int, mc MachineConfig, mode WarmupMode) (map[int]RegionResult, error) {
	if p.Threads() != mc.Cores() {
		return nil, fmt.Errorf("barrierpoint: program has %d threads but machine has %d cores", p.Threads(), mc.Cores())
	}
	var snaps map[int]warmup.Snapshot
	if mode == MRUWarmup || mode == MRUPrevWarmup {
		capacity := mc.L3.Lines() * mc.Sockets // largest total shared LLC
		snaps = warmup.Capture(p, regions, capacity)
	}

	// Bounded worker pool: at most Workers goroutines drain a shared
	// queue of barrierpoints, rather than spawning one goroutine per point
	// gated by a semaphore — large selections would otherwise park
	// thousands of goroutines on the semaphore and churn the scheduler.
	out := make(map[int]RegionResult, len(regions))
	var mu sync.Mutex
	var wg sync.WaitGroup
	workers := lr.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(regions) {
		workers = len(regions)
	}
	next := make(chan int, len(regions))
	for _, r := range regions {
		next <- r
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range next {
				res := runPoint(p, r, mc, mode, snaps[r])
				mu.Lock()
				out[r] = res
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return out, nil
}

// runPoint simulates one barrierpoint on a fresh machine with the given
// warmup snapshot. This is the single code path behind LocalRunner and
// SimulatePoint, so in-process and farmed execution cannot diverge.
func runPoint(p Program, region int, mc MachineConfig, mode WarmupMode, snap warmup.Snapshot) RegionResult {
	m := sim.New(mc)
	if mode == MRUWarmup || mode == MRUPrevWarmup {
		warmup.Replay(m, snap)
	}
	if mode == MRUPrevWarmup {
		for q := region - prevWarmupWindow; q < region; q++ {
			if q >= 0 {
				m.WarmRegion(p.Region(q))
			}
		}
	}
	return m.RunRegion(p.Region(region))
}

// SimulatePoint runs the detailed simulation of a single selected region,
// producing a RegionResult bit-identical to the one SimulatePoints would
// compute for that region: the warmup snapshot captured at a region's
// entry is a pure function of the trace prefix before it, so simulating
// one point in isolation — on another machine, in another process —
// yields exactly the local result. This is the unit of work a farm worker
// (cmd/bpworker) executes.
func SimulatePoint(p Program, region int, mc MachineConfig, mode WarmupMode) (RegionResult, error) {
	if p.Threads() != mc.Cores() {
		return RegionResult{}, fmt.Errorf("barrierpoint: program has %d threads but machine has %d cores", p.Threads(), mc.Cores())
	}
	if region < 0 || region >= p.Regions() {
		return RegionResult{}, fmt.Errorf("barrierpoint: region %d out of range [0, %d)", region, p.Regions())
	}
	var snap warmup.Snapshot
	if mode == MRUWarmup || mode == MRUPrevWarmup {
		capacity := mc.L3.Lines() * mc.Sockets
		snap = warmup.Capture(p, []int{region}, capacity)[region]
	}
	return runPoint(p, region, mc, mode, snap), nil
}

// SimulatePoints runs the selected barrierpoints in detail, each on its own
// fresh machine, in parallel across available CPUs. With MRUWarmup, one
// functional pass over the program captures per-core MRU cache lines at
// each barrierpoint entry; each machine replays its snapshot first.
func (a *Analysis) SimulatePoints(mc MachineConfig, mode WarmupMode) (map[int]RegionResult, error) {
	return a.SimulatePointsWith(LocalRunner{}, mc, mode)
}

// SimulatePointsWith runs the selected barrierpoints through an explicit
// execution strategy: LocalRunner for the in-process pool, or a
// store-backed or farm-distributed runner from internal/farm.
func (a *Analysis) SimulatePointsWith(runner PointRunner, mc MachineConfig, mode WarmupMode) (map[int]RegionResult, error) {
	if a.Program.Threads() != mc.Cores() {
		return nil, fmt.Errorf("barrierpoint: program has %d threads but machine has %d cores", a.Program.Threads(), mc.Cores())
	}
	regions := make([]int, len(a.Selection.Points))
	for i, p := range a.Selection.Points {
		regions[i] = p.Region
	}
	return runner.RunPoints(a.Program, regions, mc, mode)
}

// EstimateFrom reconstructs whole-program metrics from barrierpoint
// results (metric_app = Σ metric_j · mult_j).
func (a *Analysis) EstimateFrom(results map[int]RegionResult) (Estimate, error) {
	return reconstruct.Reconstruct(a.Selection, results)
}

// Estimate is the one-call convenience: simulate barrierpoints under the
// given machine and warmup mode, then reconstruct whole-program metrics.
func (a *Analysis) Estimate(mc MachineConfig, mode WarmupMode) (Estimate, error) {
	return a.EstimateWith(LocalRunner{}, mc, mode)
}

// EstimateWith is Estimate with an explicit point execution strategy.
// Reconstruction sums the per-point results in selection order, so any two
// runners that simulate the same points bit-identically — as all runners
// must — produce bit-identical estimates.
func (a *Analysis) EstimateWith(runner PointRunner, mc MachineConfig, mode WarmupMode) (Estimate, error) {
	res, err := a.SimulatePointsWith(runner, mc, mode)
	if err != nil {
		return Estimate{}, err
	}
	return a.EstimateFrom(res)
}

// ActualFrom sums ground-truth per-region results for error comparison.
func ActualFrom(results []RegionResult) Estimate { return reconstruct.Actual(results) }

// PerfectWarmup extracts barrierpoint results out of a full simulation —
// the paper's perfect-warmup evaluation mode isolating selection error.
func (a *Analysis) PerfectWarmup(full []RegionResult) map[int]RegionResult {
	return reconstruct.PerfectWarmupResults(a.Selection, full)
}

// EstimateUnscaled reconstructs whole-program metrics using raw cluster
// member counts instead of instruction-count multipliers — the §VI-A
// ablation showing why scaling matters (0.6% vs 19.4% error in the paper).
func EstimateUnscaled(sel *Selection, results map[int]RegionResult) (Estimate, error) {
	return reconstruct.ReconstructUnscaled(sel, results)
}
