module barrierpoint

go 1.24
