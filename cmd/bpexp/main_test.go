package main

import (
	"strings"
	"testing"
)

func exec(t *testing.T, args ...string) (stdout, stderr string) {
	t.Helper()
	var out, errOut strings.Builder
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run(%v) = %v\nstderr:\n%s", args, err, errOut.String())
	}
	return out.String(), errOut.String()
}

func TestTable1(t *testing.T) {
	out, stderr := exec(t, "-exp", "table1")
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "L3 cache") {
		t.Errorf("table1 output unexpected:\n%s", out)
	}
	if !strings.Contains(stderr, "[table1 done in") {
		t.Errorf("progress timing missing from stderr:\n%s", stderr)
	}
}

func TestTable2Markdown(t *testing.T) {
	out, _ := exec(t, "-exp", "table2", "-markdown", "-q")
	if !strings.Contains(out, "**Table II") || !strings.Contains(out, "| --- | --- |") {
		t.Errorf("markdown table2 output unexpected:\n%s", out)
	}
}

func TestQuietSuppressesTiming(t *testing.T) {
	_, stderr := exec(t, "-exp", "table2", "-q")
	if strings.Contains(stderr, "done in") {
		t.Errorf("-q did not suppress timing:\n%s", stderr)
	}
}

func TestFig1BenchSubset(t *testing.T) {
	out, _ := exec(t, "-exp", "fig1", "-bench", "npb-ft,npb-is", "-q")
	if !strings.Contains(out, "npb-ft") || !strings.Contains(out, "npb-is") {
		t.Errorf("fig1 missing requested benches:\n%s", out)
	}
	if strings.Contains(out, "npb-sp") {
		t.Errorf("fig1 includes benches outside -bench subset:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"unknown-exp":    {"-exp", "fig99"},
		"no-args":        {},
		"bad-flag":       {"-nope"},
		"zero-scale":     {"-exp", "table1", "-scale", "0"},
		"negative-scale": {"-exp", "table1", "-scale", "-0.5"},
		"nan-scale":      {"-exp", "table1", "-scale", "NaN"},
		"unknown-bench":  {"-exp", "fig1", "-bench", "npb-ft,spec-gcc"},
	} {
		t.Run(name, func(t *testing.T) {
			var out, errOut strings.Builder
			err := run(args, &out, &errOut)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error", args)
			}
			switch name {
			case "zero-scale", "negative-scale", "nan-scale":
				if !strings.Contains(err.Error(), "-scale must be > 0") {
					t.Errorf("scale error not explicit: %v", err)
				}
			case "unknown-bench":
				if !strings.Contains(err.Error(), `"spec-gcc"`) || !strings.Contains(err.Error(), "npb-ft") {
					t.Errorf("unknown-bench error should name the bad value and the known set: %v", err)
				}
			}
		})
	}
}
