// Command bpexp regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	bpexp -exp fig4               # one experiment
//	bpexp -all                    # everything, in paper order
//	bpexp -all -scale 0.25        # scaled-down workloads (faster)
//	bpexp -exp fig9 -bench npb-sp # restrict the benchmark set
//	bpexp -all -markdown          # markdown tables (for EXPERIMENTS.md)
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"barrierpoint/internal/experiments"
	"barrierpoint/internal/report"
	"barrierpoint/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "bpexp: %v\n", err)
		os.Exit(2)
	}
}

// run parses flags and executes the requested experiments; it is the
// testable entry point of the tool.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("bpexp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp      = fs.String("exp", "", "experiment to run: table1 table2 table3 fig1 fig3 fig4 fig5 fig6 fig7 fig8 fig9 ablation-scaling ablation-threads ablation-warmup")
		all      = fs.Bool("all", false, "run every experiment in paper order")
		scale    = fs.Float64("scale", 1.0, "workload scale factor (1.0 = paper-shaped)")
		bench    = fs.String("bench", "", "comma-separated benchmark subset (default: all)")
		markdown = fs.Bool("markdown", false, "render tables as markdown")
		quiet    = fs.Bool("q", false, "suppress progress timing")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	// Validate before constructing anything: a non-positive scale yields
	// empty or degenerate workloads, and workload.New panics on unknown
	// names deep inside an experiment.
	if !(*scale > 0) { // also rejects NaN
		return fmt.Errorf("-scale must be > 0, got %v", *scale)
	}
	h := experiments.New(*scale)
	if *bench != "" {
		names := strings.Split(*bench, ",")
		for _, n := range names {
			if !workload.Exists(n) {
				return fmt.Errorf("unknown benchmark %q (known: %s)", n, strings.Join(workload.Names(), ", "))
			}
		}
		h.Benches = names
	}

	render := func(t *report.Table) {
		if *markdown {
			fmt.Fprintln(stdout, t.Markdown())
		} else {
			t.Render(stdout)
			fmt.Fprintln(stdout)
		}
	}

	run1 := func(name string) error {
		start := time.Now()
		switch name {
		case "table1":
			render(h.Table1())
		case "table2":
			render(h.Table2())
		case "table3":
			render(h.Table3())
		case "fig1":
			render(h.Fig1())
		case "fig3":
			_, t := h.Fig3()
			render(t)
		case "fig4":
			_, t := h.Fig4()
			render(t)
		case "fig5":
			render(h.Fig5())
		case "fig6":
			render(h.Fig6())
		case "fig7":
			_, t := h.Fig7()
			render(t)
		case "fig8":
			_, t := h.Fig8()
			render(t)
		case "fig9":
			_, t := h.Fig9()
			render(t)
		case "ablation-scaling":
			render(h.AblationScaling())
		case "ablation-threads":
			render(h.AblationThreads())
		case "ablation-warmup":
			render(h.AblationWarmup())
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		if !*quiet {
			fmt.Fprintf(stderr, "[%s done in %v]\n", name, time.Since(start).Round(time.Millisecond))
		}
		return nil
	}

	switch {
	case *all:
		for _, name := range []string{
			"table1", "table2", "fig1", "fig3", "fig4", "fig5", "fig6",
			"table3", "fig7", "fig8", "fig9",
			"ablation-scaling", "ablation-threads", "ablation-warmup",
		} {
			if err := run1(name); err != nil {
				return err
			}
		}
		return nil
	case *exp != "":
		return run1(*exp)
	default:
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -exp or -all")
	}
}
