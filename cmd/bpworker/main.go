// Command bpworker is a farm worker: it registers with a bpserve server,
// pulls leased point-simulation tasks over the HTTP/JSON farm protocol
// (see internal/farm), fetches any trace it is missing into its own
// content-addressed store, simulates each point, and uploads the results.
// Workers are stateless and interchangeable — start as many as there are
// machines, kill them at will; the server's lease queue requeues whatever
// a lost worker was holding.
//
// Usage:
//
//	bpworker -server http://bpserve:8080 -store /var/cache/bpworker
//	bpworker -server http://bpserve:8080 -concurrency 8 -name rack3-07
//
// A worker batches up to -concurrency tasks per lease, simulates them in
// parallel, and heartbeats all held leases at a third of the server's
// lease TTL. On SIGINT/SIGTERM it stops leasing, finishes what it holds,
// and exits — nothing is abandoned mid-lease unless the process is
// killed, and even then the server requeues after the TTL.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	bp "barrierpoint"
	"barrierpoint/internal/farm"
	"barrierpoint/internal/store"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "bpworker: %v\n", err)
		os.Exit(1)
	}
}

// lockedWriter serializes writes: tasks simulate (and log) on concurrent
// goroutines, and io.Writer implementations are not generally safe for
// concurrent use.
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// run is the testable entry point: it serves tasks until ctx is done, the
// -max-tasks budget is spent, or the queue stays empty past -idle-exit.
func run(ctx context.Context, args []string, stderr io.Writer) error {
	stderr = &lockedWriter{w: stderr}
	fs := flag.NewFlagSet("bpworker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		server      = fs.String("server", "http://127.0.0.1:8080", "bpserve base URL")
		storeDir    = fs.String("store", "bpworker-store", "local content-addressed trace store")
		name        = fs.String("name", "", "worker name shown in /farm/workers (default: hostname)")
		concurrency = fs.Int("concurrency", 0, "tasks simulated in parallel (0 = GOMAXPROCS)")
		poll        = fs.Duration("poll", 500*time.Millisecond, "sleep between empty lease polls")
		maxTasks    = fs.Int("max-tasks", 0, "exit after attempting this many tasks (0 = run forever)")
		idleExit    = fs.Duration("idle-exit", 0, "exit after the queue stays empty this long (0 = never)")
		replayMB    = fs.Int64("replay-cache-mb", 256, "decoded-region replay cache budget, MiB (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}
	if *name == "" {
		if h, err := os.Hostname(); err == nil {
			*name = h
		} else {
			*name = "bpworker"
		}
	}
	if *concurrency <= 0 {
		*concurrency = runtime.GOMAXPROCS(0)
	}

	st, err := store.Open(*storeDir)
	if err != nil {
		return err
	}
	c := &farm.Client{Base: *server}

	// The server may still be starting (CI launches both at once), or may
	// be mid-restart when we need to re-register: retry registration
	// briefly before giving up.
	register := func() error {
		for attempt := 0; ; attempt++ {
			err := c.Register(*name)
			if err == nil {
				return nil
			}
			if attempt >= 20 || ctx.Err() != nil {
				return fmt.Errorf("registering with %s: %w", *server, err)
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(250 * time.Millisecond):
			}
		}
	}
	if err := register(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "bpworker: registered as %s (%s) with %s, concurrency %d\n",
		c.Worker, *name, *server, *concurrency)

	var rc *bp.ReplayCache
	if *replayMB > 0 {
		rc = bp.NewReplayCache(*replayMB << 20)
	}
	w := &worker{client: c, st: st, rc: rc, stderr: stderr}
	w.startHeartbeats()
	defer w.stopHeartbeats()

	attempted := 0
	idleSince := time.Time{}
	for ctx.Err() == nil {
		want := *concurrency
		if *maxTasks > 0 && *maxTasks-attempted < want {
			want = *maxTasks - attempted
		}
		tasks, err := c.Lease(want)
		if err != nil {
			if errors.Is(err, farm.ErrServerRestarted) {
				// The coordinator restarted: our worker id and leases are
				// void, but its write-ahead log already requeued whatever
				// we held. Re-register under the new epoch and keep
				// serving instead of exiting mid-fleet. Results of tasks
				// still simulating upload fine — completion is accepted
				// idempotently from any worker id.
				fmt.Fprintln(stderr, "bpworker: coordinator restarted, re-registering")
				if rerr := register(); rerr != nil {
					return rerr
				}
				fmt.Fprintf(stderr, "bpworker: re-registered as %s\n", c.Worker)
				continue
			}
			// Transient server trouble (including the restart window while
			// the new coordinator comes up): back off and retry rather
			// than dying mid-fleet.
			fmt.Fprintf(stderr, "bpworker: lease: %v\n", err)
			select {
			case <-ctx.Done():
			case <-time.After(*poll):
			}
			continue
		}
		if len(tasks) == 0 {
			if idleSince.IsZero() {
				idleSince = time.Now()
			} else if *idleExit > 0 && time.Since(idleSince) >= *idleExit {
				fmt.Fprintf(stderr, "bpworker: idle for %v, exiting\n", *idleExit)
				return nil
			}
			select {
			case <-ctx.Done():
			case <-time.After(*poll):
			}
			continue
		}
		idleSince = time.Time{}
		attempted += len(tasks)
		w.process(tasks)
		if *maxTasks > 0 && attempted >= *maxTasks {
			fmt.Fprintf(stderr, "bpworker: attempted %d tasks, exiting\n", attempted)
			return nil
		}
	}
	// Signal received after all held tasks finished (process waits for
	// its batch): a clean exit, nothing left leased.
	fmt.Fprintln(stderr, "bpworker: shutting down")
	return nil
}

// worker holds the shared state of one bpworker process: the protocol
// client, the local trace store, and the set of currently-held task ids
// the heartbeat loop renews.
type worker struct {
	client *farm.Client
	st     *store.Store
	rc     *bp.ReplayCache // decoded-region cache shared across tasks
	stderr io.Writer

	mu       sync.Mutex
	held     map[string]bool
	hbCancel context.CancelFunc
	hbDone   chan struct{}
}

func (w *worker) hold(ids []string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.held == nil {
		w.held = make(map[string]bool)
	}
	for _, id := range ids {
		w.held[id] = true
	}
}

func (w *worker) release(id string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.held, id)
}

func (w *worker) heldIDs() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]string, 0, len(w.held))
	for id := range w.held {
		out = append(out, id)
	}
	return out
}

// startHeartbeats renews every held lease at a third of the TTL so slow
// simulations are never reassigned while the worker is alive. The loop
// deliberately does not watch the signal context: on SIGINT the worker
// finishes the tasks it holds, and their leases must stay renewed until
// that drain completes (stopHeartbeats runs after the main loop exits).
func (w *worker) startHeartbeats() {
	hctx, cancel := context.WithCancel(context.Background())
	w.hbCancel = cancel
	w.hbDone = make(chan struct{})
	interval := w.client.LeaseTTL / 3
	if interval <= 0 {
		interval = 10 * time.Second
	}
	go func() {
		defer close(w.hbDone)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-hctx.Done():
				return
			case <-tick.C:
				ids := w.heldIDs()
				if len(ids) == 0 {
					continue
				}
				dropped, err := w.client.Heartbeat(ids)
				if err != nil {
					fmt.Fprintf(w.stderr, "bpworker: heartbeat: %v\n", err)
					continue
				}
				for _, id := range dropped {
					// The server reassigned these (e.g. after a network
					// partition outlasted the TTL); stop renewing. Any
					// result we still upload is accepted idempotently.
					w.release(id)
				}
			}
		}
	}()
}

func (w *worker) stopHeartbeats() {
	if w.hbCancel != nil {
		w.hbCancel()
		<-w.hbDone
	}
}

// process simulates one leased batch in parallel and uploads every
// outcome before returning.
func (w *worker) process(tasks []farm.Task) {
	ids := make([]string, len(tasks))
	for i, t := range tasks {
		ids[i] = t.ID
	}
	w.hold(ids)
	// Prefetch each distinct trace once: a fresh worker leasing a batch
	// of tasks for one trace must not download it -concurrency times in
	// parallel. Errors are left for runTask's own fetch (a cheap no-op
	// retry) so they are reported per task.
	prefetched := make(map[string]bool)
	for _, t := range tasks {
		if !prefetched[t.TraceKey] {
			prefetched[t.TraceKey] = true
			if err := w.client.FetchTrace(w.st, t.TraceKey); err != nil {
				fmt.Fprintf(w.stderr, "bpworker: prefetching trace %.12s: %v\n", t.TraceKey, err)
			}
		}
	}
	var wg sync.WaitGroup
	for _, t := range tasks {
		wg.Add(1)
		go func(t farm.Task) {
			defer wg.Done()
			defer w.release(t.ID)
			if err := w.runTask(t); err != nil {
				fmt.Fprintf(w.stderr, "bpworker: task %s: %v\n", t.ID, err)
			}
		}(t)
	}
	wg.Wait()
}

// runTask executes one task end to end: ensure the trace is local,
// simulate the point, upload the result. Fetch and simulation errors are
// reported as task failures (consuming one of the task's bounded
// attempts — another worker may succeed). An upload error is NOT a task
// failure: the compute succeeded, so the worker retries the idempotent
// upload a few times and otherwise lets the lease expire and the task be
// redone, rather than burning attempts on server-side trouble.
func (w *worker) runTask(t farm.Task) error {
	start := time.Now()
	res, err := func() (bp.RegionResult, error) {
		if err := w.client.FetchTrace(w.st, t.TraceKey); err != nil {
			return bp.RegionResult{}, err
		}
		return farm.ExecuteTaskCached(w.st, t, w.rc)
	}()
	if err != nil {
		if ferr := w.client.Fail(t.ID, err.Error()); ferr != nil {
			fmt.Fprintf(w.stderr, "bpworker: reporting failure of %s: %v\n", t.ID, ferr)
		}
		return err
	}
	var uploadErr error
	for attempt := 0; attempt < 3; attempt++ {
		if uploadErr = w.client.Complete(t.ID, res); uploadErr == nil {
			break
		}
		time.Sleep(time.Duration(attempt+1) * 100 * time.Millisecond)
	}
	if uploadErr != nil {
		return fmt.Errorf("uploading result: %w", uploadErr)
	}
	fmt.Fprintf(w.stderr, "bpworker: %s done (trace %.12s region %d, attempt %d, %v)\n",
		t.ID, t.TraceKey, t.Region, t.Attempt, time.Since(start).Round(time.Millisecond))
	return nil
}
