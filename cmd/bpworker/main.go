// Command bpworker is a farm worker: it registers with a bpserve server,
// pulls leased point-simulation tasks over the HTTP/JSON farm protocol
// (see internal/farm), fetches any trace it is missing into its own
// content-addressed store, simulates each point, and uploads the results.
// Workers are stateless and interchangeable — start as many as there are
// machines, kill them at will; the server's lease queue requeues whatever
// a lost worker was holding.
//
// Usage:
//
//	bpworker -server http://bpserve:8080 -store /var/cache/bpworker
//	bpworker -server http://bpserve:8080 -concurrency 8 -name rack3-07
//	bpworker -server http://bpserve:8080 -metrics-addr :9101 -pprof
//
// A worker batches up to -concurrency tasks per lease, simulates them in
// parallel, and heartbeats all held leases at a third of the server's
// lease TTL. On SIGINT/SIGTERM it stops leasing, finishes what it holds,
// and exits — nothing is abandoned mid-lease unless the process is
// killed, and even then the server requeues after the TTL.
//
// With -metrics-addr the worker serves GET /metrics (Prometheus text
// format, bpworker_-prefixed series) and GET /debug/spans (recent
// per-task spans as JSON, each carrying the submitting job's trace ID);
// -pprof additionally mounts net/http/pprof under /debug/pprof/ on the
// same listener.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	bp "barrierpoint"
	"barrierpoint/internal/farm"
	"barrierpoint/internal/fault"
	"barrierpoint/internal/obs"
	"barrierpoint/internal/store"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "bpworker: %v\n", err)
		os.Exit(1)
	}
}

// lockedWriter serializes writes: tasks simulate (and log) on concurrent
// goroutines, and io.Writer implementations are not generally safe for
// concurrent use.
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// run is the testable entry point: it serves tasks until ctx is done, the
// -max-tasks budget is spent, or the queue stays empty past -idle-exit.
func run(ctx context.Context, args []string, stderr io.Writer) error {
	stderr = &lockedWriter{w: stderr}
	fs := flag.NewFlagSet("bpworker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		server      = fs.String("server", "http://127.0.0.1:8080", "bpserve base URL")
		storeDir    = fs.String("store", "bpworker-store", "local content-addressed trace store")
		name        = fs.String("name", "", "worker name shown in /farm/workers (default: hostname)")
		concurrency = fs.Int("concurrency", 0, "tasks simulated in parallel (0 = GOMAXPROCS)")
		poll        = fs.Duration("poll", 500*time.Millisecond, "sleep between empty lease polls")
		maxTasks    = fs.Int("max-tasks", 0, "exit after settling this many tasks (0 = run forever); transient RPC trouble retries instead of burning budget")
		idleExit    = fs.Duration("idle-exit", 0, "exit after the queue stays empty this long (0 = never)")
		replayMB    = fs.Int64("replay-cache-mb", 256, "decoded-region replay cache budget, MiB (0 disables)")
		metricsAddr = fs.String("metrics-addr", "", "serve /metrics and /debug/spans on this address (empty disables)")
		pprofOn     = fs.Bool("pprof", false, "mount net/http/pprof on the -metrics-addr listener")
		faultSpec   = fs.String("fault", "", "fault-injection spec, e.g. 'rpc.lease:p=0.1;rpc.result:p=0.1' (chaos testing; see internal/fault)")
	)
	lf := obs.RegisterLogFlags(fs)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}
	logger, err := lf.Logger(stderr)
	if err != nil {
		return err
	}
	if *name == "" {
		if h, err := os.Hostname(); err == nil {
			*name = h
		} else {
			*name = "bpworker"
		}
	}
	if *concurrency <= 0 {
		*concurrency = runtime.GOMAXPROCS(0)
	}

	if err := fault.Configure(*faultSpec); err != nil {
		return err
	}
	if *faultSpec != "" {
		logger.Warn("fault injection armed", "spec", *faultSpec)
	}

	st, err := store.Open(*storeDir)
	if err != nil {
		return err
	}
	c := &farm.Client{Base: *server}

	var rc *bp.ReplayCache
	if *replayMB > 0 {
		rc = bp.NewReplayCache(*replayMB << 20)
	}
	w := newWorker(c, st, rc, logger)
	c.OnRetry = func(op string, attempt int, err error) {
		w.rpcRetries.Inc()
		logger.Debug("rpc retrying", "op", op, "attempt", attempt, "err", err)
	}

	if *metricsAddr != "" {
		// Fail fast on a bad or taken address rather than silently running
		// without telemetry.
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer ln.Close()
		go http.Serve(ln, w.metricsMux(*pprofOn)) //nolint:errcheck // closed on return
		logger.Info("metrics listening", "addr", ln.Addr().String(), "pprof", *pprofOn)
	}

	// The server may still be starting (CI launches both at once), or may
	// be mid-restart when we need to re-register: retry registration
	// briefly before giving up.
	register := func() error {
		for attempt := 0; ; attempt++ {
			err := c.Register(*name)
			if err == nil {
				return nil
			}
			if attempt >= 20 || ctx.Err() != nil {
				return fmt.Errorf("registering with %s: %w", *server, err)
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(250 * time.Millisecond):
			}
		}
	}
	if err := register(); err != nil {
		return err
	}
	logger.Info("registered as "+c.Worker,
		"worker", c.Worker, "name", *name, "server", *server, "concurrency", *concurrency)

	w.startHeartbeats()
	defer w.stopHeartbeats()

	settled := 0
	idleSince := time.Time{}
	// Lease failures back off exponentially (reset on any success) so a
	// down or flapping coordinator sees a thinning poll rate, not a
	// constant hammer, and the worker never exits on transient trouble.
	leaseDelay := *poll
	maxLeaseDelay := 10 * time.Second
	if *poll > maxLeaseDelay {
		maxLeaseDelay = *poll
	}
	for ctx.Err() == nil {
		want := *concurrency
		if *maxTasks > 0 && *maxTasks-settled < want {
			want = *maxTasks - settled
		}
		tasks, err := c.Lease(want)
		if err != nil {
			if errors.Is(err, farm.ErrServerRestarted) {
				// The coordinator restarted: our worker id and leases are
				// void, but its write-ahead log already requeued whatever
				// we held. Re-register under the new epoch and keep
				// serving instead of exiting mid-fleet. Results of tasks
				// still simulating upload fine — completion is accepted
				// idempotently from any worker id.
				logger.Warn("coordinator restarted, re-registering", "server", *server)
				if rerr := register(); rerr != nil {
					return rerr
				}
				logger.Info("re-registered as "+c.Worker, "worker", c.Worker)
				continue
			}
			// Transient server trouble (including the restart window while
			// the new coordinator comes up): back off and retry rather
			// than dying mid-fleet. Only ctx cancellation ends the loop.
			logger.Warn("lease failed", "backoff", leaseDelay.String(), "err", err)
			select {
			case <-ctx.Done():
			case <-time.After(leaseDelay):
			}
			if leaseDelay *= 2; leaseDelay > maxLeaseDelay {
				leaseDelay = maxLeaseDelay
			}
			continue
		}
		leaseDelay = *poll
		if len(tasks) == 0 {
			if idleSince.IsZero() {
				idleSince = time.Now()
			} else if *idleExit > 0 && time.Since(idleSince) >= *idleExit {
				logger.Info(fmt.Sprintf("idle for %v, exiting", *idleExit))
				return nil
			}
			select {
			case <-ctx.Done():
			case <-time.After(*poll):
			}
			continue
		}
		idleSince = time.Time{}
		// Only settled tasks — an outcome (result or failure report)
		// durably delivered to the server — consume -max-tasks budget.
		// A task whose upload failed even after the client's own retries
		// is left for its lease to lapse and does not count: transient
		// RPC trouble must not drain the budget and stop the worker early.
		settled += w.process(tasks)
		if *maxTasks > 0 && settled >= *maxTasks {
			logger.Info(fmt.Sprintf("settled %d tasks, exiting", settled))
			return nil
		}
	}
	// Signal received after all held tasks finished (process waits for
	// its batch): a clean exit, nothing left leased.
	logger.Info("shutting down")
	return nil
}

// worker holds the shared state of one bpworker process: the protocol
// client, the local trace store, the set of currently-held task ids the
// heartbeat loop renews, and the process telemetry (bpworker_-prefixed
// metrics registry plus a bounded ring of per-task spans).
type worker struct {
	client *farm.Client
	st     *store.Store
	rc     *bp.ReplayCache // decoded-region cache shared across tasks
	logger *slog.Logger

	reg        *obs.Registry
	spans      *obs.SpanRecorder
	completed  *obs.Counter
	failed     *obs.Counter
	rpcRetries *obs.Counter
	taskDur    *obs.Histogram
	fetchDur   *obs.Histogram

	mu       sync.Mutex
	held     map[string]bool
	hbCancel context.CancelFunc
	hbDone   chan struct{}
}

func newWorker(c *farm.Client, st *store.Store, rc *bp.ReplayCache, logger *slog.Logger) *worker {
	w := &worker{client: c, st: st, rc: rc, logger: logger}
	r := obs.NewRegistry()
	w.reg = r
	w.spans = obs.NewSpanRecorder(0)
	w.completed = r.Counter("bpworker_tasks_completed_total", "Tasks simulated and uploaded successfully.")
	w.failed = r.Counter("bpworker_tasks_failed_total", "Tasks whose fetch or simulation failed (failure reported to the server).")
	w.rpcRetries = r.Counter("bp_rpc_retries_total", "Farm RPC attempts that failed transiently and were retried with backoff.")
	w.taskDur = r.Histogram("bpworker_task_seconds", "End-to-end task latency: trace fetch, simulation, upload.", obs.DefLatencyBuckets)
	w.fetchDur = r.Histogram("bpworker_trace_fetch_seconds", "Trace fetch latency (cache-hit fetches are near-zero).", obs.DefLatencyBuckets)
	r.GaugeFunc("bpworker_replay_cache_bytes", "Decoded-region replay cache resident bytes.", func() float64 {
		return float64(rc.Stats().Bytes)
	})
	r.GaugeFunc("bpworker_replay_cache_entries", "Decoded-region replay cache resident regions.", func() float64 {
		return float64(rc.Stats().Entries)
	})
	r.GaugeFunc("bpworker_held_leases", "Task leases currently held (renewed by the heartbeat loop).", func() float64 {
		w.mu.Lock()
		defer w.mu.Unlock()
		return float64(len(w.held))
	})
	return w
}

// metricsMux is the worker's observability surface: Prometheus metrics,
// recent task spans, and (optionally) pprof.
func (w *worker) metricsMux(withPprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", w.reg.Handler())
	mux.HandleFunc("/debug/spans", func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		json.NewEncoder(rw).Encode(w.spans.Spans()) //nolint:errcheck // best-effort debug endpoint
	})
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func (w *worker) hold(ids []string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.held == nil {
		w.held = make(map[string]bool)
	}
	for _, id := range ids {
		w.held[id] = true
	}
}

func (w *worker) release(id string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.held, id)
}

func (w *worker) heldIDs() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]string, 0, len(w.held))
	for id := range w.held {
		out = append(out, id)
	}
	return out
}

// startHeartbeats renews every held lease at a third of the TTL so slow
// simulations are never reassigned while the worker is alive. The loop
// deliberately does not watch the signal context: on SIGINT the worker
// finishes the tasks it holds, and their leases must stay renewed until
// that drain completes (stopHeartbeats runs after the main loop exits).
func (w *worker) startHeartbeats() {
	hctx, cancel := context.WithCancel(context.Background())
	w.hbCancel = cancel
	w.hbDone = make(chan struct{})
	interval := w.client.LeaseTTL / 3
	if interval <= 0 {
		interval = 10 * time.Second
	}
	go func() {
		defer close(w.hbDone)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-hctx.Done():
				return
			case <-tick.C:
				ids := w.heldIDs()
				if len(ids) == 0 {
					continue
				}
				dropped, err := w.client.Heartbeat(ids)
				if err != nil {
					w.logger.Warn("heartbeat failed", "err", err)
					continue
				}
				for _, id := range dropped {
					// The server reassigned these (e.g. after a network
					// partition outlasted the TTL); stop renewing. Any
					// result we still upload is accepted idempotently.
					w.release(id)
				}
			}
		}
	}()
}

func (w *worker) stopHeartbeats() {
	if w.hbCancel != nil {
		w.hbCancel()
		<-w.hbDone
	}
}

// process simulates one leased batch in parallel and uploads every
// outcome before returning. It returns how many tasks settled — i.e.
// had an outcome (success or failure) delivered to the server.
func (w *worker) process(tasks []farm.Task) int {
	ids := make([]string, len(tasks))
	for i, t := range tasks {
		ids[i] = t.ID
	}
	w.hold(ids)
	// Prefetch each distinct trace once: a fresh worker leasing a batch
	// of tasks for one trace must not download it -concurrency times in
	// parallel. Errors are left for runTask's own fetch (a cheap no-op
	// retry) so they are reported per task.
	prefetched := make(map[string]bool)
	for _, t := range tasks {
		if !prefetched[t.TraceKey] {
			prefetched[t.TraceKey] = true
			t0 := time.Now()
			if err := w.client.FetchTrace(w.st, t.TraceKey); err != nil {
				w.logger.Warn("trace prefetch failed", "trace", t.TraceKey, "err", err)
			}
			w.fetchDur.ObserveDuration(time.Since(t0))
		}
	}
	var wg sync.WaitGroup
	settled := make([]bool, len(tasks))
	for i, t := range tasks {
		wg.Add(1)
		go func(i int, t farm.Task) {
			defer wg.Done()
			defer w.release(t.ID)
			done, err := w.runTask(t)
			settled[i] = done
			if err != nil {
				w.logger.Warn("task failed",
					"task", t.ID, "trace_id", t.TraceID, "trace", t.TraceKey,
					"region", t.Region, "attempt", t.Attempt, "settled", done, "err", err)
			}
		}(i, t)
	}
	wg.Wait()
	n := 0
	for _, ok := range settled {
		if ok {
			n++
		}
	}
	return n
}

// runTask executes one task end to end: ensure the trace is local,
// simulate the point, upload the result. Fetch and simulation errors are
// reported as task failures (consuming one of the task's bounded
// attempts — another worker may succeed). An upload error is NOT a task
// failure: the compute succeeded, so after the client's own retry budget
// is exhausted the worker lets the lease expire and the task be redone,
// rather than burning attempts on server-side trouble.
//
// The returned bool says whether the task settled — its outcome (result
// or failure report) was durably delivered to the server. A task whose
// upload or failure report could not be delivered is unsettled: its
// lease lapses and the server reassigns it.
//
// Each task is recorded as a "farm-task" span carrying the submitting
// job's trace ID (if the coordinator supplied one) with fetch, simulate
// and upload stages — the worker-side half of the job's end-to-end trace.
func (w *worker) runTask(t farm.Task) (bool, error) {
	start := time.Now()
	span := obs.NewSpan(t.TraceID, "farm-task")
	span.SetAttr("task", t.ID)
	span.SetAttr("worker", w.client.Worker)
	defer func() {
		span.Finish()
		w.spans.Record(span.Data())
	}()
	res, err := func() (bp.RegionResult, error) {
		stop := span.StartStage("fetch")
		err := w.client.FetchTrace(w.st, t.TraceKey)
		stop()
		if err != nil {
			return bp.RegionResult{}, err
		}
		stop = span.StartStage("simulate")
		defer stop()
		return farm.ExecuteTaskCached(w.st, t, w.rc)
	}()
	if err != nil {
		span.SetAttr("error", err.Error())
		w.failed.Inc()
		if ferr := w.client.Fail(t, err.Error()); ferr != nil {
			w.logger.Warn("reporting failure failed", "task", t.ID, "err", ferr)
			return false, err
		}
		return true, err
	}
	stop := span.StartStage("upload")
	uploadErr := w.client.Complete(t, res)
	stop()
	if uploadErr != nil {
		span.SetAttr("error", uploadErr.Error())
		return false, fmt.Errorf("uploading result: %w", uploadErr)
	}
	w.completed.Inc()
	w.taskDur.ObserveDuration(time.Since(start))
	w.logger.Info("task done",
		"task", t.ID, "trace_id", t.TraceID, "trace", t.TraceKey, "region", t.Region,
		"attempt", t.Attempt, "dur", time.Since(start).Round(time.Millisecond).String())
	return true, nil
}
