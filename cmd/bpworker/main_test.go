package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"barrierpoint/internal/farm"
	"barrierpoint/internal/fault"
	"barrierpoint/internal/store"
	"barrierpoint/internal/tracefile"
	"barrierpoint/internal/workload"
)

// newFarm spins up a queue, its HTTP server and a server-side store
// holding one small trace.
func newFarm(t *testing.T) (*farm.Queue, *httptest.Server, *store.Store, string) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tracefile.Record(&buf, workload.New("npb-is", 8, workload.WithScale(0.05))); err != nil {
		t.Fatal(err)
	}
	key, _, err := st.PutTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	q := farm.NewQueue(st, farm.Config{LeaseTTL: 5 * time.Second})
	srv := httptest.NewServer(farm.NewServer(q, st))
	t.Cleanup(srv.Close)
	t.Cleanup(q.Close)
	return q, srv, st, key
}

// TestWorkerProcessesTasks runs the real bpworker loop against a real
// farm server: it must register, fetch the trace it does not have,
// simulate both enqueued points in one batch, upload the results, and
// exit when its task budget is spent.
func TestWorkerProcessesTasks(t *testing.T) {
	q, srv, st, key := newFarm(t)

	var tickets []*farm.Ticket
	for _, region := range []int{1, 2} {
		tk, err := q.Enqueue(farm.Spec{TraceKey: key, Region: region, Sockets: 1, Warmup: "mru"})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}

	workerStore := filepath.Join(t.TempDir(), "wstore")
	var stderr bytes.Buffer
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	err := run(ctx, []string{
		"-server", srv.URL,
		"-store", workerStore,
		"-name", "unit-test-worker",
		"-concurrency", "2",
		"-poll", "10ms",
		"-max-tasks", "2",
	}, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}

	res, err := farm.WaitAll(context.Background(), tickets)
	if err != nil {
		t.Fatalf("tickets unresolved: %v\nstderr:\n%s", err, stderr.String())
	}
	// The worker's results must be bit-identical to server-local compute.
	for _, region := range []int{1, 2} {
		want, err := farm.ExecuteTask(st, farm.Task{TraceKey: key, Region: region, Sockets: 1, Warmup: "mru"})
		if err != nil {
			t.Fatal(err)
		}
		got := res[region]
		if got.Cycles != want.Cycles || got.Counters != want.Counters {
			t.Fatalf("region %d: worker %+v != local %+v", region, got, want)
		}
	}

	// The worker fetched the trace into its own store and showed up in
	// the fleet listing.
	wst, err := store.Open(workerStore)
	if err != nil {
		t.Fatal(err)
	}
	if !wst.HasTrace(key) {
		t.Fatal("worker never cached the trace locally")
	}
	workers := q.Workers()
	if len(workers) != 1 || workers[0].Name != "unit-test-worker" || workers[0].Completed != 2 {
		t.Fatalf("fleet state: %+v", workers)
	}
	if !strings.Contains(stderr.String(), "registered as") {
		t.Fatalf("missing registration log:\n%s", stderr.String())
	}
}

// TestWorkerSurvivesCoordinatorRestart restarts the coordinator under a
// live worker: after finishing one task the worker's next lease hits a
// queue from a new life (new epoch). It must detect the restart,
// re-register, and keep working — not exit.
func TestWorkerSurvivesCoordinatorRestart(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tracefile.Record(&buf, workload.New("npb-is", 8, workload.WithScale(0.05))); err != nil {
		t.Fatal(err)
	}
	key, _, err := st.PutTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	// The coordinator's handler is swappable, so a "restart" keeps the URL
	// the worker connected to.
	q1 := farm.NewQueue(st, farm.Config{LeaseTTL: 5 * time.Second})
	var handler atomic.Value
	handler.Store(farm.NewServer(q1, st))
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(http.Handler).ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)

	tk1, err := q1.Enqueue(farm.Spec{TraceKey: key, Region: 1, Sockets: 1, Warmup: "mru"})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	var stderr bytes.Buffer
	workerErr := make(chan error, 1)
	go func() {
		workerErr <- run(ctx, []string{
			"-server", srv.URL,
			"-store", filepath.Join(t.TempDir(), "wstore"),
			"-name", "restart-test-worker",
			"-poll", "10ms",
			"-max-tasks", "2",
		}, &stderr)
	}()

	select {
	case <-tk1.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("first task unresolved; stderr:\n%s", stderr.String())
	}
	if _, err := tk1.Result(); err != nil {
		t.Fatalf("first task failed: %v", err)
	}

	// Restart: a brand-new queue (new epoch) behind the same URL.
	q2 := farm.NewQueue(st, farm.Config{LeaseTTL: 5 * time.Second})
	t.Cleanup(q2.Close)
	handler.Store(farm.NewServer(q2, st))
	q1.Close()
	tk2, err := q2.Enqueue(farm.Spec{TraceKey: key, Region: 2, Sockets: 1, Warmup: "mru"})
	if err != nil {
		t.Fatal(err)
	}

	select {
	case <-tk2.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("task after restart unresolved; stderr:\n%s", stderr.String())
	}
	if _, err := tk2.Result(); err != nil {
		t.Fatalf("task after restart failed: %v", err)
	}
	if err := <-workerErr; err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "coordinator restarted, re-registering") {
		t.Fatalf("worker never logged the restart:\n%s", stderr.String())
	}
	if workers := q2.Workers(); len(workers) != 1 || workers[0].Completed != 1 {
		t.Fatalf("second-life fleet state: %+v", workers)
	}
}

// TestWorkerIdleExit checks the -idle-exit escape hatch used by CI.
func TestWorkerIdleExit(t *testing.T) {
	_, srv, _, _ := newFarm(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var stderr bytes.Buffer
	start := time.Now()
	err := run(ctx, []string{
		"-server", srv.URL,
		"-store", filepath.Join(t.TempDir(), "wstore"),
		"-poll", "10ms",
		"-idle-exit", "100ms",
	}, &stderr)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if time.Since(start) > 20*time.Second {
		t.Fatal("idle exit did not trigger")
	}
}

// TestWorkerReportsFailure gives the worker a task naming a trace the
// server does not serve; the worker must report the failure (consuming an
// attempt) rather than wedging.
func TestWorkerReportsFailure(t *testing.T) {
	q, srv, _, key := newFarm(t)
	// Region beyond the trace makes ExecuteTask fail after a successful
	// trace fetch.
	tk, err := q.Enqueue(farm.Spec{TraceKey: key, Region: 1 << 20, Sockets: 1, Warmup: "cold"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var stderr bytes.Buffer
	if err := run(ctx, []string{
		"-server", srv.URL,
		"-store", filepath.Join(t.TempDir(), "wstore"),
		"-poll", "10ms",
		"-max-tasks", "3", // MaxAttempts defaults to 3: drive it to permanent failure
	}, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	select {
	case <-tk.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("ticket unresolved; stderr:\n%s", stderr.String())
	}
	if _, err := tk.Result(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("want out-of-range failure log, got %v", err)
	}
}

// syncBuf is a bytes.Buffer safe to read while the worker goroutine is
// still writing to it.
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestWorkerMetricsAndSpans runs the worker with its observability
// listener enabled: tasks enqueued with a trace ID must surface in the
// worker's /debug/spans under that ID (the HTTP protocol carried it on
// the task), and /metrics must expose bpworker_ series reflecting the
// completed work. The endpoints are scraped while the worker is alive —
// the listener closes when run returns.
func TestWorkerMetricsAndSpans(t *testing.T) {
	q, srv, _, key := newFarm(t)

	const traceID = "feedc0defeedc0de"
	for _, region := range []int{1, 2} {
		if _, err := q.Enqueue(farm.Spec{TraceKey: key, Region: region, Sockets: 1, Warmup: "mru", TraceID: traceID}); err != nil {
			t.Fatal(err)
		}
	}

	var stderr syncBuf
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-server", srv.URL,
			"-store", filepath.Join(t.TempDir(), "wstore"),
			"-name", "obs-test-worker",
			"-poll", "10ms",
			"-metrics-addr", "127.0.0.1:0",
		}, &stderr)
	}()

	// The worker logs the listener's resolved address; fish it out.
	var addr string
	deadline := time.Now().Add(30 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("metrics listener never logged; stderr:\n%s", stderr.String())
		}
		for _, field := range strings.Fields(stderr.String()) {
			if v, ok := strings.CutPrefix(field, "addr="); ok {
				addr = v
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Poll /debug/spans until both farm-task spans carry the enqueuer's
	// trace ID end to end.
	var spans []struct {
		TraceID string `json:"trace_id"`
		Name    string `json:"name"`
		Stages  []struct {
			Name string `json:"name"`
		} `json:"stages"`
	}
	deadline = time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/debug/spans")
		if err != nil {
			t.Fatal(err)
		}
		spans = spans[:0]
		err = json.NewDecoder(resp.Body).Decode(&spans)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(spans) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker recorded %d spans, want 2; stderr:\n%s", len(spans), stderr.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, sp := range spans {
		if sp.TraceID != traceID {
			t.Fatalf("span trace ID %q, want %q", sp.TraceID, traceID)
		}
		if sp.Name != "farm-task" {
			t.Fatalf("span name %q", sp.Name)
		}
		stages := make(map[string]bool)
		for _, st := range sp.Stages {
			stages[st.Name] = true
		}
		for _, want := range []string{"fetch", "simulate", "upload"} {
			if !stages[want] {
				t.Fatalf("span missing stage %q: %+v", want, sp)
			}
		}
	}

	// /metrics reflects the two completed tasks.
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"bpworker_tasks_completed_total 2",
		"bpworker_tasks_failed_total 0",
		"bpworker_task_seconds_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}
}

// TestWorkerUploadFailureDoesNotBurnBudget knocks out the result
// endpoint long enough to exhaust the client's own retry budget: the
// task must stay UNSETTLED (its lease lapses, -max-tasks is not
// consumed) and the worker must re-lease and deliver it once the
// endpoint recovers — exiting only then, with the budget spent on the
// one settled task.
func TestWorkerUploadFailureDoesNotBurnBudget(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tracefile.Record(&buf, workload.New("npb-is", 8, workload.WithScale(0.05))); err != nil {
		t.Fatal(err)
	}
	key, _, err := st.PutTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Short lease + fast sweep so the unsettled task requeues quickly.
	q := farm.NewQueue(st, farm.Config{LeaseTTL: 300 * time.Millisecond, SweepEvery: 20 * time.Millisecond})
	t.Cleanup(q.Close)
	inner := farm.NewServer(q, st)

	// The first 5 uploads fail: the client's default budget is 4 attempts
	// per call, so the first runTask exhausts it and returns unsettled;
	// the re-leased attempt's second upload try gets through.
	var resultHits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/farm/result" && resultHits.Add(1) <= 5 {
			http.Error(w, `{"error":"result storage down"}`, http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)

	tk, err := q.Enqueue(farm.Spec{TraceKey: key, Region: 1, Sockets: 1, Warmup: "mru"})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	var stderr bytes.Buffer
	err = run(ctx, []string{
		"-server", srv.URL,
		"-store", filepath.Join(t.TempDir(), "wstore"),
		"-name", "upload-retry-worker",
		"-concurrency", "1",
		"-poll", "10ms",
		"-max-tasks", "1",
	}, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}

	select {
	case <-tk.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("ticket unresolved after worker exit; stderr:\n%s", stderr.String())
	}
	if _, err := tk.Result(); err != nil {
		t.Fatalf("task failed: %v\nstderr:\n%s", err, stderr.String())
	}
	if got := resultHits.Load(); got < 6 {
		t.Fatalf("result endpoint saw %d hits, want >= 6 (client retries + re-lease)", got)
	}
	workers := q.Workers()
	if len(workers) != 1 || workers[0].Completed != 1 {
		t.Fatalf("fleet state: %+v", workers)
	}
	log := stderr.String()
	if !strings.Contains(log, "settled 1 tasks, exiting") {
		t.Fatalf("worker exited before settling its budget:\n%s", log)
	}
	if !strings.Contains(log, "uploading result") {
		t.Fatalf("missing unsettled-upload warning:\n%s", log)
	}
}

// TestWorkerFaultFlagRetriesInjectedErrors boots the worker with -fault
// arming deterministic lease failures: the injected errors must be
// absorbed by the client's retry loop (counted in bp_rpc_retries_total)
// without the worker exiting or the task failing.
func TestWorkerFaultFlagRetriesInjectedErrors(t *testing.T) {
	q, srv, _, key := newFarm(t)
	tk, err := q.Enqueue(farm.Spec{TraceKey: key, Region: 1, Sockets: 1, Warmup: "mru"})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	var stderr bytes.Buffer
	err = run(ctx, []string{
		"-server", srv.URL,
		"-store", filepath.Join(t.TempDir(), "wstore"),
		"-name", "fault-flag-worker",
		"-poll", "10ms",
		"-max-tasks", "1",
		"-fault", "seed=5;rpc.lease:n=2",
	}, &stderr)
	fault.Reset() // the flag arms the process-wide injector; disarm for other tests
	if err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}
	if _, err := tk.Result(); err != nil {
		t.Fatalf("task failed under injected lease faults: %v", err)
	}
	if !strings.Contains(stderr.String(), "fault injection armed") {
		t.Fatalf("missing fault-armed log:\n%s", stderr.String())
	}
}
