// Command benchjson converts `go test -bench` output into a compact JSON
// benchmark record: op name → ns/op, B/op, allocs/op plus any custom
// b.ReportMetric units (averaged over repeated -count runs). It backs the
// CI benchmark artifact (BENCH_<n>.json) that seeds the project's
// measured-performance trajectory.
//
// Usage:
//
//	go test -run '^$' -bench ... -benchmem | go run ./cmd/benchjson -out BENCH_7.json
//	go run ./cmd/benchjson -in bench.txt -out BENCH_7.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// Metrics is the averaged record of one benchmark op.
type Metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	Samples     int     `json:"samples"`
	// Extra holds custom b.ReportMetric units ("rounds/op",
	// "points/op", ...), averaged like the standard three, keyed by unit.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Output is the BENCH_<n>.json document shape.
type Output struct {
	Note       string             `json:"note,omitempty"`
	Benchmarks map[string]Metrics `json:"benchmarks"`
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in   = fs.String("in", "", "benchmark output file (default: stdin)")
		out  = fs.String("out", "", "JSON destination (default: stdout)")
		note = fs.String("note", "", "free-form note embedded in the document")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}

	src := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	o, err := parse(src)
	if err != nil {
		return err
	}
	o.Note = *note
	b, err := json.MarshalIndent(o, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if *out != "" {
		return os.WriteFile(*out, b, 0o644)
	}
	_, err = stdout.Write(b)
	return err
}

// parse accumulates every benchmark result line of r, averaging repeated
// runs of the same op (go test -count=N emits one line per run).
func parse(r io.Reader) (Output, error) {
	type acc struct {
		ns, b, allocs float64
		extra         map[string]float64
		n             int
	}
	sums := make(map[string]*acc)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// Benchmark<Name>-<procs>  N  <val> ns/op  [<val> B/op  <val> allocs/op]
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			name = name[:i]
		}
		a := sums[name]
		if a == nil {
			a = &acc{}
			sums[name] = a
		}
		got := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				a.ns += v
				got = true
			case "B/op":
				a.b += v
			case "allocs/op":
				a.allocs += v
			default:
				// b.ReportMetric emits "<val> <unit>/op" for custom units.
				if strings.HasSuffix(unit, "/op") {
					if a.extra == nil {
						a.extra = make(map[string]float64)
					}
					a.extra[unit] += v
				}
			}
		}
		if got {
			a.n++
		}
	}
	if err := sc.Err(); err != nil {
		return Output{}, err
	}
	if len(sums) == 0 {
		return Output{}, fmt.Errorf("no benchmark result lines found")
	}
	o := Output{Benchmarks: make(map[string]Metrics, len(sums))}
	for name, a := range sums {
		if a.n == 0 {
			continue
		}
		m := Metrics{
			NsPerOp:     a.ns / float64(a.n),
			BPerOp:      a.b / float64(a.n),
			AllocsPerOp: a.allocs / float64(a.n),
			Samples:     a.n,
		}
		if a.extra != nil {
			m.Extra = make(map[string]float64, len(a.extra))
			for unit, sum := range a.extra {
				m.Extra[unit] = sum / float64(a.n)
			}
		}
		o.Benchmarks[name] = m
	}
	return o, nil
}
