package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: barrierpoint
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkProfiling              	      45	  22735103 ns/op	21747235 B/op	    4984 allocs/op
BenchmarkProfiling              	      44	  23146040 ns/op	21747243 B/op	    4986 allocs/op
BenchmarkRegionCacheReplay-8    	    1000	     91000 ns/op	       0 B/op	       0 allocs/op
BenchmarkTable1-8               	       2	 500000000 ns/op
BenchmarkAdaptiveTargetCI-8     	       4	 120000000 ns/op	         5.000 rounds/op	        29.00 points/op
BenchmarkAdaptiveTargetCI-8     	       4	 118000000 ns/op	         5.000 rounds/op	        27.00 points/op
PASS
ok  	barrierpoint	18.030s
`

func TestParse(t *testing.T) {
	o, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %+v", len(o.Benchmarks), o.Benchmarks)
	}
	p := o.Benchmarks["BenchmarkProfiling"]
	if p.Samples != 2 || math.Abs(p.NsPerOp-22940571.5) > 1 || math.Abs(p.AllocsPerOp-4985) > 0.01 {
		t.Errorf("BenchmarkProfiling averaged wrong: %+v", p)
	}
	r := o.Benchmarks["BenchmarkRegionCacheReplay"]
	if r.Samples != 1 || r.NsPerOp != 91000 || r.AllocsPerOp != 0 {
		t.Errorf("BenchmarkRegionCacheReplay wrong: %+v", r)
	}
	if tb := o.Benchmarks["BenchmarkTable1"]; tb.NsPerOp != 5e8 {
		t.Errorf("BenchmarkTable1 wrong: %+v", tb)
	}
	if tb := o.Benchmarks["BenchmarkTable1"]; tb.Extra != nil {
		t.Errorf("BenchmarkTable1 has custom metrics: %+v", tb)
	}
	// Custom b.ReportMetric units average like the standard columns.
	ad := o.Benchmarks["BenchmarkAdaptiveTargetCI"]
	if ad.Samples != 2 || ad.Extra["rounds/op"] != 5 || ad.Extra["points/op"] != 28 {
		t.Errorf("BenchmarkAdaptiveTargetCI custom metrics wrong: %+v", ad)
	}
}

func TestParseEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\n")); err == nil {
		t.Error("no-result input accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH.json")
	var stdout, stderr bytes.Buffer
	err := run([]string{"-out", out, "-note", "test run"}, strings.NewReader(sample), &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var o Output
	if err := json.Unmarshal(b, &o); err != nil {
		t.Fatal(err)
	}
	if o.Note != "test run" || len(o.Benchmarks) != 4 {
		t.Errorf("document wrong: %+v", o)
	}
	if o.Benchmarks["BenchmarkAdaptiveTargetCI"].Extra["rounds/op"] != 5 {
		t.Errorf("custom metric lost in round-trip: %+v", o.Benchmarks["BenchmarkAdaptiveTargetCI"])
	}
}
